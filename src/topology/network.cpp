#include "fbdcsim/topology/network.h"

#include <stdexcept>

#include "fbdcsim/core/rng.h"
#include "fbdcsim/faults/fault_plan.h"

namespace fbdcsim::topology {

const char* to_string(SwitchKind kind) {
  switch (kind) {
    case SwitchKind::kRsw: return "RSW";
    case SwitchKind::kCsw: return "CSW";
    case SwitchKind::kFc: return "FC";
    case SwitchKind::kSiteAgg: return "SiteAgg";
    case SwitchKind::kDr: return "DR";
  }
  return "?";
}

std::size_t Network::node_key(NodeRef node) const {
  return node.kind == NodeRef::Kind::kHost ? node.index
                                           : num_hosts_ + node.index;
}

std::span<const SwitchId> Network::csws_of(core::ClusterId cluster) const {
  return csw_by_cluster_.at(cluster.value());
}

std::span<const SwitchId> Network::fcs_of(core::DatacenterId dc) const {
  return fc_by_dc_.at(dc.value());
}

std::span<const SwitchId> Network::siteaggs_of(core::SiteId site) const {
  return siteagg_by_site_.at(site.value());
}

std::span<const LinkId> Network::links_from(NodeRef node) const {
  return out_links_.at(node_key(node));
}

LinkId Network::find_link(NodeRef from, NodeRef to) const {
  for (const LinkId lid : links_from(from)) {
    if (links_[lid.value()].to == to) return lid;
  }
  throw std::logic_error{"Network::find_link: nodes not directly connected"};
}

class NetworkBuild {
 public:
  NetworkBuild(Network& net, std::size_t num_hosts, std::size_t est_switches) : net_{net} {
    net_.num_hosts_ = num_hosts;
    net_.out_links_.resize(num_hosts + est_switches);
  }

  SwitchId add_switch(SwitchKind kind, core::RackId rack, core::ClusterId cluster,
                      core::DatacenterId dc, core::SiteId site) {
    const SwitchId id{static_cast<std::uint32_t>(net_.switches_.size())};
    net_.switches_.push_back(Switch{id, kind, rack, cluster, dc, site});
    const std::size_t key = net_.num_hosts_ + id.value();
    if (key >= net_.out_links_.size()) net_.out_links_.resize(key + 1);
    return id;
  }

  LinkId add_link(NodeRef from, NodeRef to, core::DataRate capacity) {
    const LinkId id{static_cast<std::uint32_t>(net_.links_.size())};
    net_.links_.push_back(Link{id, from, to, capacity});
    net_.out_links_.at(net_.node_key(from)).push_back(id);
    return id;
  }

  /// Adds both directions and returns the forward link.
  LinkId add_duplex(NodeRef a, NodeRef b, core::DataRate capacity) {
    const LinkId forward = add_link(a, b, capacity);
    add_link(b, a, capacity);
    return forward;
  }

 private:
  Network& net_;
};

Network FourPostBuilder::build(const Fleet& fleet) const {
  Network net;
  const std::size_t est_switches =
      fleet.num_racks() + fleet.clusters().size() * static_cast<std::size_t>(config_.csws_per_cluster) +
      fleet.datacenters().size() * (static_cast<std::size_t>(config_.fcs_per_datacenter) + 1) +
      fleet.sites().size() * static_cast<std::size_t>(config_.siteaggs_per_site);
  NetworkBuild b{net, fleet.num_hosts(), est_switches};

  net.rsw_by_rack_.assign(fleet.num_racks(), SwitchId::invalid());
  net.csw_by_cluster_.resize(fleet.clusters().size());
  net.fc_by_dc_.resize(fleet.datacenters().size());
  net.siteagg_by_site_.resize(fleet.sites().size());
  net.dr_by_dc_.assign(fleet.datacenters().size(), SwitchId::invalid());
  net.host_uplink_.assign(fleet.num_hosts(), LinkId::invalid());
  net.host_downlink_.assign(fleet.num_hosts(), LinkId::invalid());

  // RSWs and access links.
  for (const Rack& rack : fleet.racks()) {
    const SwitchId rsw =
        b.add_switch(SwitchKind::kRsw, rack.id, rack.cluster, rack.datacenter, rack.site);
    net.rsw_by_rack_[rack.id.value()] = rsw;
    for (const core::HostId host : rack.hosts) {
      net.host_uplink_[host.value()] =
          b.add_link(NodeRef::host(host), NodeRef::sw(rsw), config_.access);
      net.host_downlink_[host.value()] =
          b.add_link(NodeRef::sw(rsw), NodeRef::host(host), config_.access);
    }
  }

  // CSWs; RSW <-> CSW uplinks.
  for (const Cluster& cluster : fleet.clusters()) {
    auto& csws = net.csw_by_cluster_[cluster.id.value()];
    for (int i = 0; i < config_.csws_per_cluster; ++i) {
      csws.push_back(b.add_switch(SwitchKind::kCsw, core::RackId::invalid(), cluster.id,
                                  cluster.datacenter, cluster.site));
    }
    for (const core::RackId rid : cluster.racks) {
      const SwitchId rsw = net.rsw_by_rack_[rid.value()];
      for (const SwitchId csw : csws) {
        for (int u = 0; u < config_.uplinks_per_csw; ++u) {
          b.add_duplex(NodeRef::sw(rsw), NodeRef::sw(csw), config_.rsw_to_csw);
        }
      }
    }
  }

  // FC layer per datacenter; CSW <-> FC.
  for (const Datacenter& dc : fleet.datacenters()) {
    auto& fcs = net.fc_by_dc_[dc.id.value()];
    for (int i = 0; i < config_.fcs_per_datacenter; ++i) {
      fcs.push_back(b.add_switch(SwitchKind::kFc, core::RackId::invalid(),
                                 core::ClusterId::invalid(), dc.id, dc.site));
    }
    for (const core::ClusterId cid : dc.clusters) {
      for (const SwitchId csw : net.csw_by_cluster_[cid.value()]) {
        for (const SwitchId fc : fcs) {
          b.add_duplex(NodeRef::sw(csw), NodeRef::sw(fc), config_.csw_to_fc);
        }
      }
    }
  }

  // Site aggregation per site; CSW <-> SiteAgg for every CSW in the site.
  for (const Site& site : fleet.sites()) {
    auto& aggs = net.siteagg_by_site_[site.id.value()];
    for (int i = 0; i < config_.siteaggs_per_site; ++i) {
      aggs.push_back(b.add_switch(SwitchKind::kSiteAgg, core::RackId::invalid(),
                                  core::ClusterId::invalid(), core::DatacenterId::invalid(),
                                  site.id));
    }
    for (const core::DatacenterId did : site.datacenters) {
      for (const core::ClusterId cid : fleet.datacenter(did).clusters) {
        for (const SwitchId csw : net.csw_by_cluster_[cid.value()]) {
          for (const SwitchId agg : aggs) {
            b.add_duplex(NodeRef::sw(csw), NodeRef::sw(agg), config_.csw_to_siteagg);
          }
        }
      }
    }
  }

  // One DR per datacenter; CSW <-> DR; DR <-> DR across sites (backbone).
  for (const Datacenter& dc : fleet.datacenters()) {
    const SwitchId dr = b.add_switch(SwitchKind::kDr, core::RackId::invalid(),
                                     core::ClusterId::invalid(), dc.id, dc.site);
    net.dr_by_dc_[dc.id.value()] = dr;
    for (const core::ClusterId cid : dc.clusters) {
      for (const SwitchId csw : net.csw_by_cluster_[cid.value()]) {
        b.add_duplex(NodeRef::sw(csw), NodeRef::sw(dr), config_.csw_to_dr);
      }
    }
  }
  for (const Datacenter& a : fleet.datacenters()) {
    for (const Datacenter& bdc : fleet.datacenters()) {
      if (a.id.value() < bdc.id.value() && a.site != bdc.site) {
        b.add_duplex(NodeRef::sw(net.dr_by_dc_[a.id.value()]),
                     NodeRef::sw(net.dr_by_dc_[bdc.id.value()]), config_.csw_to_dr);
      }
    }
  }

  return net;
}

namespace {

/// Deterministic ECMP choice: hash the 5-tuple with a per-hop salt.
std::size_t ecmp_pick(const core::FiveTuple& tuple, std::uint64_t salt, std::size_t n) {
  const std::uint64_t h = core::splitmix64(std::hash<core::FiveTuple>{}(tuple) ^ salt);
  return static_cast<std::size_t>(h % n);
}

}  // namespace

std::vector<LinkId> Router::route(core::HostId src, core::HostId dst,
                                  const core::FiveTuple& tuple) const {
  return route(src, dst, tuple, core::TimePoint::zero(), nullptr);
}

std::vector<LinkId> Router::route(core::HostId src, core::HostId dst,
                                  const core::FiveTuple& tuple, core::TimePoint at,
                                  const faults::FaultPlan* plan) const {
  const bool faulted = plan != nullptr && plan->enabled();
  // ECMP pick among `choices` downstream of `from`, skipping choices whose
  // first-hop link is failed (all choices when fault-free, or when every
  // first hop is down).
  const auto pick = [&](std::span<const SwitchId> choices, std::uint64_t salt,
                        NodeRef from) -> SwitchId {
    if (!faulted) return choices[ecmp_pick(tuple, salt, choices.size())];
    std::vector<SwitchId> live;
    live.reserve(choices.size());
    for (const SwitchId c : choices) {
      const LinkId hop = network_->find_link(from, NodeRef::sw(c));
      if (!plan->link_failed(hop, at)) live.push_back(c);
    }
    if (live.empty()) return choices[ecmp_pick(tuple, salt, choices.size())];
    return live[ecmp_pick(tuple, salt, live.size())];
  };

  std::vector<LinkId> path;
  if (src == dst) return path;

  const Host& s = fleet_->host(src);
  const Host& d = fleet_->host(dst);
  const SwitchId rsw_s = network_->rsw_of(s.rack);
  const SwitchId rsw_d = network_->rsw_of(d.rack);

  path.push_back(network_->access_uplink(src));
  if (s.rack == d.rack) {
    path.push_back(network_->access_downlink(dst));
    return path;
  }

  const core::Locality loc = fleet_->locality(src, dst);
  if (loc == core::Locality::kIntraCluster) {
    const auto csws = network_->csws_of(s.cluster);
    const SwitchId csw = pick(csws, 0x1, NodeRef::sw(rsw_s));
    path.push_back(network_->find_link(NodeRef::sw(rsw_s), NodeRef::sw(csw)));
    path.push_back(network_->find_link(NodeRef::sw(csw), NodeRef::sw(rsw_d)));
  } else if (loc == core::Locality::kIntraDatacenter) {
    const auto csws_s = network_->csws_of(s.cluster);
    const auto csws_d = network_->csws_of(d.cluster);
    const auto fcs = network_->fcs_of(s.datacenter);
    const SwitchId csw_s = pick(csws_s, 0x2, NodeRef::sw(rsw_s));
    const SwitchId fc = pick(fcs, 0x3, NodeRef::sw(csw_s));
    const SwitchId csw_d = pick(csws_d, 0x4, NodeRef::sw(fc));
    path.push_back(network_->find_link(NodeRef::sw(rsw_s), NodeRef::sw(csw_s)));
    path.push_back(network_->find_link(NodeRef::sw(csw_s), NodeRef::sw(fc)));
    path.push_back(network_->find_link(NodeRef::sw(fc), NodeRef::sw(csw_d)));
    path.push_back(network_->find_link(NodeRef::sw(csw_d), NodeRef::sw(rsw_d)));
  } else if (s.site == d.site) {
    // Inter-datacenter, intra-site: via site aggregation.
    const auto csws_s = network_->csws_of(s.cluster);
    const auto csws_d = network_->csws_of(d.cluster);
    const auto aggs = network_->siteaggs_of(s.site);
    const SwitchId csw_s = pick(csws_s, 0x5, NodeRef::sw(rsw_s));
    const SwitchId agg = pick(aggs, 0x6, NodeRef::sw(csw_s));
    const SwitchId csw_d = pick(csws_d, 0x7, NodeRef::sw(agg));
    path.push_back(network_->find_link(NodeRef::sw(rsw_s), NodeRef::sw(csw_s)));
    path.push_back(network_->find_link(NodeRef::sw(csw_s), NodeRef::sw(agg)));
    path.push_back(network_->find_link(NodeRef::sw(agg), NodeRef::sw(csw_d)));
    path.push_back(network_->find_link(NodeRef::sw(csw_d), NodeRef::sw(rsw_d)));
  } else {
    // Inter-site: via datacenter routers and the backbone.
    const auto csws_s = network_->csws_of(s.cluster);
    const auto csws_d = network_->csws_of(d.cluster);
    const SwitchId csw_s = pick(csws_s, 0x8, NodeRef::sw(rsw_s));
    const SwitchId dr_s = network_->dr_of(s.datacenter);
    const SwitchId dr_d = network_->dr_of(d.datacenter);
    const SwitchId csw_d = pick(csws_d, 0x9, NodeRef::sw(dr_d));
    path.push_back(network_->find_link(NodeRef::sw(rsw_s), NodeRef::sw(csw_s)));
    path.push_back(network_->find_link(NodeRef::sw(csw_s), NodeRef::sw(dr_s)));
    path.push_back(network_->find_link(NodeRef::sw(dr_s), NodeRef::sw(dr_d)));
    path.push_back(network_->find_link(NodeRef::sw(dr_d), NodeRef::sw(csw_d)));
    path.push_back(network_->find_link(NodeRef::sw(csw_d), NodeRef::sw(rsw_d)));
  }
  path.push_back(network_->access_downlink(dst));
  return path;
}

}  // namespace fbdcsim::topology
