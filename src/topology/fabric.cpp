#include "fbdcsim/topology/fabric.h"

namespace fbdcsim::topology {

Network FabricBuilder::build(const Fleet& fleet) const {
  // The Fabric is a folded Clos with the same level structure as the 4-post
  // design (TOR / pod aggregation / datacenter aggregation); reuse the
  // FourPost builder with Fabric fan-outs and link speeds. The key
  // provisioning difference — no pod-level oversubscription — comes from the
  // higher uplink speed and spine count.
  FourPostConfig cfg;
  cfg.access = config_.access;
  cfg.rsw_to_csw = config_.tor_to_fabric;
  cfg.csw_to_fc = config_.fabric_to_spine;
  cfg.csw_to_siteagg = config_.fabric_to_spine;
  cfg.csw_to_dr = config_.fabric_to_spine;
  cfg.csws_per_cluster = config_.fabric_switches_per_pod;
  cfg.fcs_per_datacenter = config_.spines_per_plane;
  return FourPostBuilder{cfg}.build(fleet);
}

}  // namespace fbdcsim::topology
