#include "fbdcsim/topology/entities.h"

#include <stdexcept>
#include <unordered_map>

#include "fbdcsim/topology/addressing.h"

namespace fbdcsim::topology {

const char* to_string(ClusterType type) {
  switch (type) {
    case ClusterType::kFrontend: return "Frontend";
    case ClusterType::kCache: return "Cache";
    case ClusterType::kHadoop: return "Hadoop";
    case ClusterType::kDatabase: return "DB";
    case ClusterType::kService: return "Service";
  }
  return "?";
}

HostId Fleet::host_by_addr(core::Ipv4Addr addr) const {
  const auto coords = AddressPlan::coordinates_of(addr);
  if (!coords) return HostId::invalid();
  if (coords->dc_index >= datacenters_.size()) return HostId::invalid();
  // Rack index within DC -> global rack id via the DC's cluster list.
  std::uint32_t remaining = coords->rack_in_dc;
  for (const ClusterId cid : datacenters_[coords->dc_index].clusters) {
    const auto& cl = clusters_[cid.value()];
    if (remaining < cl.racks.size()) {
      const auto& rk = racks_[cl.racks[remaining].value()];
      if (coords->host_in_rack < rk.hosts.size()) return rk.hosts[coords->host_in_rack];
      return HostId::invalid();
    }
    remaining -= static_cast<std::uint32_t>(cl.racks.size());
  }
  return HostId::invalid();
}

std::vector<HostId> Fleet::hosts_with_role(HostRole role) const {
  std::vector<HostId> out;
  for (const Host& h : hosts_) {
    if (h.role == role) out.push_back(h.id);
  }
  return out;
}

std::vector<HostId> Fleet::hosts_with_role_in_cluster(HostRole role, ClusterId cluster) const {
  std::vector<HostId> out;
  for (const RackId rid : clusters_.at(cluster.value()).racks) {
    const Rack& rk = racks_[rid.value()];
    if (rk.role != role) continue;
    out.insert(out.end(), rk.hosts.begin(), rk.hosts.end());
  }
  return out;
}

core::Locality Fleet::locality(HostId src, HostId dst) const {
  const Host& a = host(src);
  const Host& b = host(dst);
  if (a.rack == b.rack) return core::Locality::kIntraRack;
  if (a.cluster == b.cluster) return core::Locality::kIntraCluster;
  if (a.datacenter == b.datacenter) return core::Locality::kIntraDatacenter;
  return core::Locality::kInterDatacenter;
}

SiteId FleetBuilder::add_site(std::string name) {
  const SiteId id{static_cast<std::uint32_t>(fleet_.sites_.size())};
  fleet_.sites_.push_back(Site{id, std::move(name), {}});
  return id;
}

DatacenterId FleetBuilder::add_datacenter(SiteId site) {
  const DatacenterId id{static_cast<std::uint32_t>(fleet_.datacenters_.size())};
  fleet_.datacenters_.push_back(Datacenter{id, site, {}});
  fleet_.sites_.at(site.value()).datacenters.push_back(id);
  return id;
}

ClusterId FleetBuilder::add_cluster(DatacenterId dc, ClusterType type) {
  const ClusterId id{static_cast<std::uint32_t>(fleet_.clusters_.size())};
  const SiteId site = fleet_.datacenters_.at(dc.value()).site;
  fleet_.clusters_.push_back(Cluster{id, dc, site, type, {}});
  fleet_.datacenters_.at(dc.value()).clusters.push_back(id);
  return id;
}

RackId FleetBuilder::add_rack(ClusterId cluster, HostRole role) {
  const RackId id{static_cast<std::uint32_t>(fleet_.racks_.size())};
  const Cluster& cl = fleet_.clusters_.at(cluster.value());
  fleet_.racks_.push_back(Rack{id, cluster, cl.datacenter, cl.site, role, {}});
  fleet_.clusters_.at(cluster.value()).racks.push_back(id);
  return id;
}

HostId FleetBuilder::add_host(RackId rack) {
  const HostId id{static_cast<std::uint32_t>(fleet_.hosts_.size())};
  Rack& rk = fleet_.racks_.at(rack.value());

  // Rack index within its datacenter, in cluster declaration order. Needed
  // for the location-encoding address.
  const auto& dc = fleet_.datacenters_.at(rk.datacenter.value());
  std::uint32_t rack_in_dc = 0;
  bool found = false;
  for (const ClusterId cid : dc.clusters) {
    const auto& cl = fleet_.clusters_[cid.value()];
    for (const RackId rid : cl.racks) {
      if (rid == rack) {
        found = true;
        break;
      }
      ++rack_in_dc;
    }
    if (found) break;
  }
  if (!found) throw std::logic_error{"FleetBuilder: rack not in its datacenter"};

  const auto host_in_rack = static_cast<std::uint32_t>(rk.hosts.size());
  const core::Ipv4Addr addr =
      AddressPlan::address_for(rk.datacenter.value(), rack_in_dc, host_in_rack);

  fleet_.hosts_.push_back(Host{id, rack, rk.cluster, rk.datacenter, rk.site, rk.role, addr});
  rk.hosts.push_back(id);
  return id;
}

RackId FleetBuilder::add_rack_of(ClusterId cluster, HostRole role, std::size_t num_hosts) {
  const RackId rack = add_rack(cluster, role);
  for (std::size_t i = 0; i < num_hosts; ++i) add_host(rack);
  return rack;
}

Fleet FleetBuilder::build() { return std::move(fleet_); }

}  // namespace fbdcsim::topology
