#include "fbdcsim/topology/path_delay.h"

namespace fbdcsim::topology {

int hops_beyond_rsw(const Fleet& fleet, core::HostId src, core::HostId dst) {
  const Host& a = fleet.host(src);
  const Host& b = fleet.host(dst);
  if (a.rack == b.rack) return 0;
  if (a.cluster == b.cluster) return 2;  // via one CSW
  if (a.datacenter == b.datacenter) return 4;  // via CSW -> FC -> CSW'
  if (a.site == b.site) return 4;  // via CSW -> SiteAgg -> CSW'
  return 5;  // via CSW -> DR -> DR' -> CSW'
}

core::Duration one_way_beyond_rsw(const Fleet& fleet, core::HostId src, core::HostId dst,
                                  core::Duration per_hop,
                                  core::Duration inter_site_extra) {
  const int hops = hops_beyond_rsw(fleet, src, dst);
  core::Duration delay = core::Duration::nanos(hops * per_hop.count_nanos());
  if (fleet.host(src).site != fleet.host(dst).site) delay = delay + inter_site_extra;
  return delay;
}

}  // namespace fbdcsim::topology
