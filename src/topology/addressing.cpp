#include "fbdcsim/topology/addressing.h"

#include <stdexcept>

namespace fbdcsim::topology {

namespace {
// 10.0.0.0/8 with 24 payload bits: dc(5) | rack_in_dc(11) | host_in_rack(8).
constexpr std::uint32_t kBase = 0x0A000000;
constexpr std::uint32_t kDcBits = 5;
constexpr std::uint32_t kRackBits = 11;
constexpr std::uint32_t kHostBits = 8;
constexpr std::uint32_t kDcMax = (1u << kDcBits) - 1;
constexpr std::uint32_t kRackMax = (1u << kRackBits) - 1;
constexpr std::uint32_t kHostMax = (1u << kHostBits) - 1;
}  // namespace

core::Ipv4Addr AddressPlan::address_for(std::uint32_t dc_index, std::uint32_t rack_in_dc,
                                        std::uint32_t host_in_rack) {
  if (dc_index > kDcMax || rack_in_dc > kRackMax || host_in_rack > kHostMax) {
    throw std::out_of_range{"AddressPlan: coordinates exceed addressing capacity"};
  }
  return core::Ipv4Addr{kBase | (dc_index << (kRackBits + kHostBits)) |
                        (rack_in_dc << kHostBits) | host_in_rack};
}

std::optional<AddressPlan::Coordinates> AddressPlan::coordinates_of(core::Ipv4Addr addr) {
  if ((addr.value() & 0xFF000000) != kBase) return std::nullopt;
  const std::uint32_t payload = addr.value() & 0x00FFFFFF;
  return Coordinates{
      payload >> (kRackBits + kHostBits),
      (payload >> kHostBits) & kRackMax,
      payload & kHostMax,
  };
}

}  // namespace fbdcsim::topology
