#include "fbdcsim/topology/standard_fleet.h"

#include <stdexcept>

namespace fbdcsim::topology {

namespace {

void fill_cluster(FleetBuilder& b, ClusterId cluster, ClusterType type,
                  const StandardFleetConfig& cfg, std::size_t racks) {
  switch (type) {
    case ClusterType::kFrontend: {
      // Scale the standard mix to the requested rack count.
      const double scale =
          static_cast<double>(racks) / static_cast<double>(cfg.racks_per_cluster);
      auto scaled = [scale](std::size_t n) {
        const auto v = static_cast<std::size_t>(static_cast<double>(n) * scale + 0.5);
        return v > 0 ? v : std::size_t{1};
      };
      std::size_t web = scaled(cfg.frontend_web_racks);
      std::size_t cache = scaled(cfg.frontend_cache_racks);
      std::size_t mf = scaled(cfg.frontend_multifeed_racks);
      while (web + cache + mf > racks && web > 1) --web;
      while (web + cache + mf > racks && cache > 1) --cache;
      const std::size_t slb = racks - web - cache - mf;
      for (std::size_t i = 0; i < web; ++i)
        b.add_rack_of(cluster, core::HostRole::kWeb, cfg.hosts_per_rack);
      for (std::size_t i = 0; i < cache; ++i)
        b.add_rack_of(cluster, core::HostRole::kCacheFollower, cfg.hosts_per_rack);
      for (std::size_t i = 0; i < mf; ++i)
        b.add_rack_of(cluster, core::HostRole::kMultifeed, cfg.hosts_per_rack);
      for (std::size_t i = 0; i < slb; ++i)
        b.add_rack_of(cluster, core::HostRole::kSlb, cfg.hosts_per_rack);
      break;
    }
    case ClusterType::kCache:
      for (std::size_t i = 0; i < racks; ++i)
        b.add_rack_of(cluster, core::HostRole::kCacheLeader, cfg.hosts_per_rack);
      break;
    case ClusterType::kHadoop:
      for (std::size_t i = 0; i < racks; ++i)
        b.add_rack_of(cluster, core::HostRole::kHadoop, cfg.hosts_per_rack);
      break;
    case ClusterType::kDatabase:
      for (std::size_t i = 0; i < racks; ++i)
        b.add_rack_of(cluster, core::HostRole::kDatabase, cfg.hosts_per_rack);
      break;
    case ClusterType::kService:
      for (std::size_t i = 0; i < racks; ++i)
        b.add_rack_of(cluster, core::HostRole::kService, cfg.hosts_per_rack);
      break;
  }
}

}  // namespace

Fleet build_standard_fleet(const StandardFleetConfig& cfg) {
  if (cfg.sites == 0 || cfg.datacenters_per_site == 0 || cfg.racks_per_cluster == 0 ||
      cfg.hosts_per_rack == 0) {
    throw std::invalid_argument{"build_standard_fleet: zero-sized dimension"};
  }
  if (cfg.frontend_web_racks + cfg.frontend_cache_racks + cfg.frontend_multifeed_racks >
      cfg.racks_per_cluster) {
    throw std::invalid_argument{"build_standard_fleet: Frontend rack mix exceeds cluster size"};
  }

  FleetBuilder b;
  for (std::size_t s = 0; s < cfg.sites; ++s) {
    const SiteId site = b.add_site("site-" + std::to_string(s));
    for (std::size_t d = 0; d < cfg.datacenters_per_site; ++d) {
      const DatacenterId dc = b.add_datacenter(site);
      auto add_clusters = [&](ClusterType type, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
          const ClusterId c = b.add_cluster(dc, type);
          const std::size_t racks =
              type == ClusterType::kCache && cfg.cache_racks_per_cluster > 0
                  ? cfg.cache_racks_per_cluster
                  : cfg.racks_per_cluster;
          fill_cluster(b, c, type, cfg, racks);
        }
      };
      add_clusters(ClusterType::kFrontend, cfg.frontend_clusters);
      add_clusters(ClusterType::kCache, cfg.cache_clusters);
      add_clusters(ClusterType::kHadoop, cfg.hadoop_clusters);
      add_clusters(ClusterType::kDatabase, cfg.database_clusters);
      add_clusters(ClusterType::kService, cfg.service_clusters);
    }
  }
  return b.build();
}

Fleet build_single_cluster_fleet(ClusterType type, std::size_t racks,
                                 std::size_t hosts_per_rack) {
  StandardFleetConfig cfg;
  cfg.racks_per_cluster = racks;
  cfg.hosts_per_rack = hosts_per_rack;

  FleetBuilder b;
  const SiteId site = b.add_site("site-0");
  const DatacenterId dc = b.add_datacenter(site);
  const ClusterId cluster = b.add_cluster(dc, type);
  fill_cluster(b, cluster, type, cfg, racks);
  return b.build();
}

}  // namespace fbdcsim::topology
