#include "fbdcsim/switching/switch.h"

#include <algorithm>
#include <stdexcept>

#include <cstdio>

#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/telemetry/timeseries.h"
#include "fbdcsim/telemetry/tracepoint.h"

namespace fbdcsim::switching {

double apply_fault_profile(SwitchConfig& config, const faults::FaultPlan* plan,
                           std::uint64_t run_salt) {
  if (plan == nullptr || !plan->enabled()) return 1.0;
  const double factor = plan->buffer_shrink_factor(run_salt);
  if (factor >= 1.0) return 1.0;
  config.buffer_total = core::DataSize::bytes(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(config.buffer_total.count_bytes()) *
                                   factor)));
  FBDCSIM_T_COUNTER(shrunk, "switch.buffer_shrunk_runs", Sim);
  FBDCSIM_T_ADD(shrunk, 1);
  return factor;
}

SharedBufferSwitch::SharedBufferSwitch(sim::Simulator& sim, SwitchConfig config,
                                       DeliverFn deliver)
    : sim_{&sim}, config_{config}, deliver_{std::move(deliver)} {
  if (config_.num_ports == 0) throw std::invalid_argument{"SharedBufferSwitch: no ports"};
  if (config_.buffer_total.count_bytes() <= 0 || config_.dt_alpha <= 0.0) {
    throw std::invalid_argument{"SharedBufferSwitch: bad buffer config"};
  }
  ports_.resize(config_.num_ports);
  for (Port& p : ports_) {
    p.rate = config_.port_rate;
    p.queue.attach(node_pool_);
  }
}

bool SharedBufferSwitch::enqueue(std::size_t port_index, const SimPacket& packet) {
  // Both outcome counters are registered up front so reports always carry
  // the drop counter, even for runs that never drop.
  FBDCSIM_T_COUNTER(dropped, "switch.dropped_packets", Sim);
  FBDCSIM_T_COUNTER(enqueued, "switch.enqueued_packets", Sim);
  Port& port = ports_.at(port_index);
  const std::int64_t bytes = packet.header.frame_bytes;
  const core::TimePoint arrival = sim_->now();

  // Dynamic-threshold admission: the packet is admitted only if this port's
  // queue stays below alpha * (free shared buffer).
  const std::int64_t free_bytes = config_.buffer_total.count_bytes() - buffered_bytes_;
  const double threshold = config_.dt_alpha * static_cast<double>(free_bytes);
  if (static_cast<double>(port.queued_bytes + bytes) > threshold ||
      buffered_bytes_ + bytes > config_.buffer_total.count_bytes()) {
    ++port.counters.dropped_packets;
    port.counters.dropped_bytes += bytes;
    FBDCSIM_T_ADD(dropped, 1);
    FBDCSIM_T_TRACEPOINT(trace_log_, arrival.count_nanos(), PacketDrop, port_index, bytes,
                         port.queued_bytes);
    if (on_drop_) on_drop_(port_index, packet);
    return false;
  }

  Queued item{packet, arrival};
  // DCTCP-style step marking on the shared buffer: the admitted packet is
  // rewritten ECT -> CE when the occupancy it lands in exceeds K. Marking
  // the queued copy means the delivery callback — and therefore the
  // receiver's ECE echo — sees the mark.
  if (ecn_should_mark(buffered_bytes_ + bytes, config_.ecn_threshold.count_bytes(),
                      packet.ecn)) {
    item.packet.ecn = core::Ecn::kCe;
    ++port.counters.ecn_marked_packets;
    FBDCSIM_T_COUNTER(marked, "transport.ecn_marked", Sim);
    FBDCSIM_T_ADD(marked, 1);
  }
  port.queue.push_back(item);
  port.queued_bytes += bytes;
  buffered_bytes_ += bytes;
  ++port.counters.enqueued_packets;
  FBDCSIM_T_ADD(enqueued, 1);

  if (!port.transmitting) start_transmission(port_index);
  return true;
}

void SharedBufferSwitch::start_transmission(std::size_t port_index) {
  Port& port = ports_[port_index];
  if (port.queue.empty()) {
    port.transmitting = false;
    return;
  }
  port.transmitting = true;
  const Queued& head = port.queue.front();
  // Queuing delay: time from arrival to the start of transmission.
  const std::int64_t waited = (sim_->now() - head.arrival).count_nanos();
  port.counters.queuing_delay_ns += waited;
  port.counters.max_queuing_delay_ns = std::max(port.counters.max_queuing_delay_ns, waited);
  const core::Duration tx_time = port.rate.transmission_time(head.packet.header.frame_size());
  sim_->schedule_after(tx_time, [this, port_index] {
    Port& p = ports_[port_index];
    const SimPacket done = p.queue.front().packet;
    p.queue.pop_front();
    const std::int64_t bytes = done.header.frame_bytes;
    p.queued_bytes -= bytes;
    buffered_bytes_ -= bytes;
    ++p.counters.tx_packets;
    p.counters.tx_bytes += bytes;
    FBDCSIM_T_COUNTER(delivered, "switch.delivered_packets", Sim);
    FBDCSIM_T_COUNTER(tx_bytes, "switch.tx_bytes", Sim);
    FBDCSIM_T_ADD(delivered, 1);
    FBDCSIM_T_ADD(tx_bytes, bytes);
    deliver_(port_index, done);
    start_transmission(port_index);
  });
}

void SharedBufferSwitch::register_probes(telemetry::TimeSeriesProbe& probe) const {
  probe.add_gauge("switch.buffer_occupancy_bytes", [this] { return buffered_bytes_; });
  probe.add_gauge("switch.tx_bytes_total", [this] {
    std::int64_t total = 0;
    for (const Port& p : ports_) total += p.counters.tx_bytes;
    return total;
  });
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    char name[48];
    // Zero-padded so the snapshot's name ordering matches port order.
    std::snprintf(name, sizeof name, "switch.port%03zu.queue_bytes", i);
    probe.add_gauge(name, [this, i] { return ports_[i].queued_bytes; });
  }
}

BufferOccupancySampler::BufferOccupancySampler(sim::Simulator& sim,
                                               const SharedBufferSwitch& sw,
                                               core::Duration period)
    : switch_{&sw},
      timer_{sim, period, [this](core::TimePoint now) { on_sample(now); }} {}

void BufferOccupancySampler::on_sample(core::TimePoint now) {
  const std::int64_t second = now.count_nanos() / 1'000'000'000;
  if (second != current_second_ && in_second_samples_ > 0) {
    flush_second();
    current_second_ = second;
  } else if (in_second_samples_ == 0) {
    current_second_ = second;
  }

  const double frac = std::clamp(switch_->buffer_occupancy_fraction(), 0.0, 1.0);
  const auto bin =
      std::min(static_cast<std::size_t>(frac * static_cast<double>(kBins)), kBins - 1);
  ++histogram_[bin];
  ++in_second_samples_;
  in_second_max_ = std::max(in_second_max_, frac);
  ++samples_;
}

void BufferOccupancySampler::flush_second() {
  // Median from the fixed-resolution histogram.
  const std::int64_t target = (in_second_samples_ + 1) / 2;
  std::int64_t acc = 0;
  double median = 0.0;
  for (std::size_t i = 0; i < kBins; ++i) {
    acc += histogram_[i];
    if (acc >= target) {
      median = (static_cast<double>(i) + 0.5) / static_cast<double>(kBins);
      break;
    }
  }
  seconds_.push_back(SecondStats{current_second_, median, in_second_max_});
  std::fill(histogram_.begin(), histogram_.end(), 0);
  in_second_samples_ = 0;
  in_second_max_ = 0.0;
}

void BufferOccupancySampler::finish() {
  if (in_second_samples_ > 0) flush_second();
  timer_.cancel();
}

}  // namespace fbdcsim::switching
