#include "fbdcsim/monitoring/link_stats.h"

#include <algorithm>
#include <stdexcept>

#include "fbdcsim/faults/fault_plan.h"

namespace fbdcsim::monitoring {

LinkStats::LinkStats(const topology::Network& network, core::Duration horizon)
    : network_{&network},
      minutes_{(horizon.count_nanos() + 59'999'999'999LL) / 60'000'000'000LL} {
  if (minutes_ <= 0) throw std::invalid_argument{"LinkStats: horizon must be positive"};
  bytes_.assign(network.links().size(), std::vector<double>(static_cast<std::size_t>(minutes_), 0.0));
}

void LinkStats::add(core::LinkId link, core::TimePoint start, core::Duration dur,
                    core::DataSize bytes) {
  auto& row = bytes_.at(link.value());
  constexpr std::int64_t kMinuteNs = 60'000'000'000LL;
  const std::int64_t b = bytes.count_bytes();
  if (dur.count_nanos() <= 0) {
    const std::int64_t m = std::clamp<std::int64_t>(start.count_nanos() / kMinuteNs, 0, minutes_ - 1);
    row[static_cast<std::size_t>(m)] += static_cast<double>(b);
    return;
  }
  const std::int64_t t0 = start.count_nanos();
  const std::int64_t t1 = t0 + dur.count_nanos();
  std::int64_t m = std::clamp<std::int64_t>(t0 / kMinuteNs, 0, minutes_ - 1);
  while (true) {
    const std::int64_t bin_start = m * kMinuteNs;
    const std::int64_t bin_end = bin_start + kMinuteNs;
    const std::int64_t lo = std::max(t0, bin_start);
    const std::int64_t hi = std::min(t1, bin_end);
    if (hi > lo) {
      const double frac = static_cast<double>(hi - lo) / static_cast<double>(t1 - t0);
      row[static_cast<std::size_t>(m)] += static_cast<double>(b) * frac;
    }
    if (t1 <= bin_end || m >= minutes_ - 1) break;
    ++m;
  }
}

void LinkStats::add_path(std::span<const core::LinkId> path, core::TimePoint start,
                         core::Duration dur, core::DataSize bytes) {
  for (const core::LinkId link : path) add(link, start, dur, bytes);
}

void LinkStats::merge(const LinkStats& other) {
  if (other.network_ != network_ || other.minutes_ != minutes_) {
    throw std::invalid_argument{"LinkStats::merge: accumulators cover different shapes"};
  }
  for (std::size_t link = 0; link < bytes_.size(); ++link) {
    auto& row = bytes_[link];
    const auto& src = other.bytes_[link];
    for (std::size_t m = 0; m < row.size(); ++m) row[m] += src[m];
  }
}

double LinkStats::utilization(core::LinkId link, std::int64_t minute) const {
  const auto& row = bytes_.at(link.value());
  const double b = row.at(static_cast<std::size_t>(minute));
  const double capacity_bytes =
      static_cast<double>(network_->link(link).capacity.count_bits_per_sec()) / 8.0 * 60.0;
  return b / capacity_bytes;
}

double LinkStats::faulted_utilization(core::LinkId link, std::int64_t minute,
                                      const faults::FaultPlan* plan) const {
  if (plan == nullptr || !plan->enabled()) return utilization(link, minute);
  const core::TimePoint at = core::TimePoint::zero() + core::Duration::minutes(minute);
  const double factor = plan->link_capacity_factor(link, at);
  if (factor <= 0.0) {
    const double b = bytes_.at(link.value()).at(static_cast<std::size_t>(minute));
    return b > 0.0 ? 1.0 : 0.0;
  }
  return utilization(link, minute) / factor;
}

double LinkStats::mean_utilization(core::LinkId link) const {
  double acc = 0.0;
  for (std::int64_t m = 0; m < minutes_; ++m) acc += utilization(link, m);
  return acc / static_cast<double>(minutes_);
}

}  // namespace fbdcsim::monitoring
