#include "fbdcsim/monitoring/capture.h"

#include <algorithm>

namespace fbdcsim::monitoring {

CaptureBuffer::CaptureBuffer(std::int64_t memory_limit_bytes)
    : capacity_records_{std::max<std::int64_t>(1, memory_limit_bytes / kRecordBytes)} {}

bool CaptureBuffer::record(const core::PacketHeader& header) {
  if (static_cast<std::int64_t>(packets_.size()) >= capacity_records_) {
    ++dropped_;
    return false;
  }
  packets_.push_back(header);
  return true;
}

std::vector<core::PacketHeader> CaptureBuffer::spool() {
  std::vector<core::PacketHeader> out;
  out.swap(packets_);
  return out;
}

void PortMirror::observe(const core::PacketHeader& header) {
  for (const core::Ipv4Addr addr : monitored_) {
    if (header.tuple.src_ip == addr || header.tuple.dst_ip == addr) {
      buffer_->record(header);
      return;
    }
  }
}

}  // namespace fbdcsim::monitoring
