#include "fbdcsim/monitoring/capture.h"

#include <algorithm>

#include "fbdcsim/telemetry/telemetry.h"

namespace fbdcsim::monitoring {

CaptureBuffer::CaptureBuffer(std::int64_t memory_limit_bytes)
    : capacity_records_{std::max<std::int64_t>(1, memory_limit_bytes / kRecordBytes)} {}

bool CaptureBuffer::record(const core::PacketHeader& header) {
  if (static_cast<std::int64_t>(packets_.size()) >= capacity_records_) {
    ++dropped_;
    FBDCSIM_T_COUNTER(lost, "capture.dropped", Sim);
    FBDCSIM_T_ADD(lost, 1);
    return false;
  }
  packets_.push_back(header);
  return true;
}

void CaptureBuffer::drop_injected() {
  ++dropped_;
  ++injected_dropped_;
  FBDCSIM_T_COUNTER(lost, "capture.dropped", Sim);
  FBDCSIM_T_ADD(lost, 1);
}

std::vector<core::PacketHeader> CaptureBuffer::spool() {
  std::vector<core::PacketHeader> out;
  out.swap(packets_);
  return out;
}

void PortMirror::observe(const core::PacketHeader& header) {
  if (matches(header)) buffer_->record(header);
}

bool PortMirror::matches(const core::PacketHeader& header) const {
  for (const core::Ipv4Addr addr : monitored_) {
    if (header.tuple.src_ip == addr || header.tuple.dst_ip == addr) return true;
  }
  return false;
}

}  // namespace fbdcsim::monitoring
