#include "fbdcsim/monitoring/rollup.h"

#include <cmath>

namespace fbdcsim::monitoring {

void HiveRollup::add(const TaggedSample& sample) {
  const std::int64_t day = sample.minute / (24 * 60);
  DayAgg& agg = days_[day];
  const double bytes =
      static_cast<double>(sample.sample.frame_bytes) * static_cast<double>(sampling_rate_);
  agg.cluster_bytes[{sample.src_cluster.value(), sample.dst_cluster.value()}] += bytes;
  agg.locality_bytes[static_cast<int>(sample.locality)] += bytes;
}

std::vector<double> HiveRollup::cluster_matrix(std::int64_t day) const {
  std::vector<double> m(num_clusters_ * num_clusters_, 0.0);
  const auto it = days_.find(day);
  if (it == days_.end()) return m;
  for (const auto& [pair, bytes] : it->second.cluster_bytes) {
    const auto [src, dst] = pair;
    if (src < num_clusters_ && dst < num_clusters_) {
      m[src * num_clusters_ + dst] = bytes;
    }
  }
  return m;
}

std::array<double, core::kNumLocalities> HiveRollup::locality_vector(std::int64_t day) const {
  const auto it = days_.find(day);
  if (it == days_.end()) return {};
  return it->second.locality_bytes;
}

double HiveRollup::day_similarity(std::int64_t day_a, std::int64_t day_b) const {
  return cosine_similarity(cluster_matrix(day_a), cluster_matrix(day_b));
}

double cosine_similarity(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace fbdcsim::monitoring
