#include "fbdcsim/monitoring/fbflow.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "fbdcsim/core/units.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/telemetry/telemetry.h"

namespace fbdcsim::monitoring {

PacketSampler::PacketSampler(std::int64_t rate, core::RngStream& rng) : rate_{rate} {
  if (rate_ < 1) rate_ = 1;
  // Random initial phase so synchronized traffic patterns cannot alias
  // against the sampling period.
  countdown_ = rng.uniform_int(1, rate_);
}

bool PacketSampler::sample() {
  if (--countdown_ > 0) return false;
  countdown_ = rate_;
  return true;
}

void AnalyticSampler::sample_flow(const core::FlowRecord& flow, const Emit& emit) {
  if (flow.packets <= 0) return;
  // Each of the flow's packets is selected independently with probability
  // 1/rate; the selected count is Binomial(n, 1/rate), approximated by
  // Poisson thinning (exact in distribution as rate grows; at 1:30,000 the
  // difference is negligible and the expectation is identical).
  const double expected = static_cast<double>(flow.packets) / static_cast<double>(rate_);
  const std::int64_t selected = rng_.poisson(expected);
  if (selected == 0) return;

  const std::int64_t mean_frame =
      core::wire::tcp_frame_bytes(flow.bytes.count_bytes() / std::max<std::int64_t>(1, flow.packets));
  for (std::int64_t i = 0; i < selected; ++i) {
    SampledPacket s;
    s.captured_at =
        flow.start + core::Duration::nanos(static_cast<std::int64_t>(
                         rng_.uniform() * static_cast<double>(flow.duration.count_nanos())));
    s.tuple = flow.tuple;
    s.frame_bytes = mean_frame;
    s.reporter = flow.src_host;
    emit(s);
  }
}

bool Tagger::tag(const SampledPacket& sample, TaggedSample& out) const {
  const core::HostId src = fleet_->host_by_addr(sample.tuple.src_ip);
  const core::HostId dst = fleet_->host_by_addr(sample.tuple.dst_ip);
  if (!src.is_valid() || !dst.is_valid()) return false;

  const topology::Host& s = fleet_->host(src);
  const topology::Host& d = fleet_->host(dst);
  out.sample = sample;
  out.src_host = src;
  out.dst_host = dst;
  out.src_role = s.role;
  out.dst_role = d.role;
  out.src_rack = s.rack;
  out.dst_rack = d.rack;
  out.src_cluster = s.cluster;
  out.dst_cluster = d.cluster;
  out.src_dc = s.datacenter;
  out.dst_dc = d.datacenter;
  out.locality = fleet_->locality(src, dst);
  out.minute = sample.captured_at.count_nanos() / 60'000'000'000LL;
  return true;
}

double ScubaTable::LocalityBytes::total() const {
  double t = 0.0;
  for (const double b : bytes) t += b;
  return t;
}

std::array<double, core::kNumLocalities> ScubaTable::LocalityBytes::percentages() const {
  std::array<double, core::kNumLocalities> out{};
  const double t = total();
  if (t <= 0.0) return out;
  for (int i = 0; i < core::kNumLocalities; ++i) out[static_cast<std::size_t>(i)] = bytes[i] / t * 100.0;
  return out;
}

ScubaTable::LocalityBytes ScubaTable::locality_bytes(std::int64_t sampling_rate) const {
  LocalityBytes out;
  for (const TaggedSample& r : rows_) {
    if (r.partial) continue;
    out.bytes[static_cast<int>(r.locality)] +=
        static_cast<double>(r.sample.frame_bytes) * static_cast<double>(sampling_rate);
  }
  return out;
}

ScubaTable::LocalityBytes ScubaTable::locality_bytes_for_cluster_type(
    const topology::Fleet& fleet, topology::ClusterType type,
    std::int64_t sampling_rate) const {
  LocalityBytes out;
  for (const TaggedSample& r : rows_) {
    if (r.partial) continue;
    if (fleet.cluster(r.src_cluster).type != type) continue;
    out.bytes[static_cast<int>(r.locality)] +=
        static_cast<double>(r.sample.frame_bytes) * static_cast<double>(sampling_rate);
  }
  return out;
}

std::vector<std::pair<topology::ClusterType, double>> ScubaTable::bytes_by_cluster_type(
    const topology::Fleet& fleet, std::int64_t sampling_rate) const {
  constexpr topology::ClusterType kTypes[] = {
      topology::ClusterType::kFrontend, topology::ClusterType::kCache,
      topology::ClusterType::kHadoop, topology::ClusterType::kDatabase,
      topology::ClusterType::kService};
  std::vector<std::pair<topology::ClusterType, double>> out;
  for (const auto type : kTypes) out.emplace_back(type, 0.0);
  for (const TaggedSample& r : rows_) {
    if (r.partial) continue;
    const auto type = fleet.cluster(r.src_cluster).type;
    for (auto& [t, bytes] : out) {
      if (t == type) {
        bytes += static_cast<double>(r.sample.frame_bytes) * static_cast<double>(sampling_rate);
        break;
      }
    }
  }
  return out;
}

std::vector<std::vector<double>> ScubaTable::rack_matrix(const topology::Fleet& fleet,
                                                         core::ClusterId cluster,
                                                         std::int64_t sampling_rate) const {
  const auto& racks = fleet.cluster(cluster).racks;
  std::vector<std::vector<double>> m(racks.size(), std::vector<double>(racks.size(), 0.0));
  // Map global rack id -> position within the cluster.
  std::vector<std::int64_t> pos(fleet.num_racks(), -1);
  for (std::size_t i = 0; i < racks.size(); ++i) pos[racks[i].value()] = static_cast<std::int64_t>(i);

  for (const TaggedSample& r : rows_) {
    if (r.partial) continue;
    if (r.src_cluster != cluster || r.dst_cluster != cluster) continue;
    const std::int64_t si = pos[r.src_rack.value()];
    const std::int64_t di = pos[r.dst_rack.value()];
    if (si < 0 || di < 0) continue;
    m[static_cast<std::size_t>(si)][static_cast<std::size_t>(di)] +=
        static_cast<double>(r.sample.frame_bytes) * static_cast<double>(sampling_rate);
  }
  return m;
}

std::vector<std::vector<double>> ScubaTable::cluster_matrix(const topology::Fleet& fleet,
                                                            core::DatacenterId dc,
                                                            std::int64_t sampling_rate) const {
  const auto& clusters = fleet.datacenter(dc).clusters;
  std::vector<std::vector<double>> m(clusters.size(), std::vector<double>(clusters.size(), 0.0));
  std::vector<std::int64_t> pos(fleet.clusters().size(), -1);
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    pos[clusters[i].value()] = static_cast<std::int64_t>(i);
  }

  for (const TaggedSample& r : rows_) {
    if (r.partial) continue;
    if (r.src_dc != dc || r.dst_dc != dc) continue;
    const std::int64_t si = pos[r.src_cluster.value()];
    const std::int64_t di = pos[r.dst_cluster.value()];
    if (si < 0 || di < 0) continue;
    m[static_cast<std::size_t>(si)][static_cast<std::size_t>(di)] +=
        static_cast<double>(r.sample.frame_bytes) * static_cast<double>(sampling_rate);
  }
  return m;
}

std::vector<std::vector<double>> ScubaTable::role_matrix(std::int64_t sampling_rate) const {
  std::vector<std::vector<double>> m(8, std::vector<double>(8, 0.0));
  for (const TaggedSample& r : rows_) {
    if (r.partial) continue;
    m[static_cast<std::size_t>(r.src_role)][static_cast<std::size_t>(r.dst_role)] +=
        static_cast<double>(r.sample.frame_bytes) * static_cast<double>(sampling_rate);
  }
  return m;
}

std::vector<std::pair<core::HostRole, double>> ScubaTable::outbound_by_dest_role(
    core::HostId src, std::int64_t sampling_rate) const {
  constexpr core::HostRole kRoles[] = {
      core::HostRole::kWeb,      core::HostRole::kCacheFollower, core::HostRole::kCacheLeader,
      core::HostRole::kHadoop,   core::HostRole::kMultifeed,     core::HostRole::kSlb,
      core::HostRole::kDatabase, core::HostRole::kService};
  std::vector<std::pair<core::HostRole, double>> out;
  for (const auto role : kRoles) out.emplace_back(role, 0.0);
  for (const TaggedSample& r : rows_) {
    if (r.partial) continue;
    if (r.src_host != src) continue;
    for (auto& [role, bytes] : out) {
      if (role == r.dst_role) {
        bytes += static_cast<double>(r.sample.frame_bytes) * static_cast<double>(sampling_rate);
        break;
      }
    }
  }
  return out;
}

FbflowPipeline::FbflowPipeline(const topology::Fleet& fleet, std::int64_t sampling_rate,
                               core::RngStream rng, const faults::FaultPlan* faults)
    : sampling_rate_{sampling_rate},
      faults_{faults},
      faulted_{faults != nullptr && faults->enabled()},
      analytic_root_{rng.fork("analytic")},
      packet_rng_{rng.fork("packet")},
      packet_sampler_{sampling_rate, packet_rng_},
      tagger_{fleet} {
  scribe_.subscribe([this](const SampledPacket& s) {
    FBDCSIM_T_COUNTER(published, "fbflow.scribe.published", Sim);
    FBDCSIM_T_ADD(published, 1);
    if (faulted_) {
      // Injected tagger outage: degrade gracefully — the row lands
      // partial (untagged) rather than being lost.
      const std::uint64_t key = faults::FaultPlan::sample_key(
          s.reporter.value(), s.captured_at.count_nanos(),
          std::hash<core::FiveTuple>{}(s.tuple));
      if (faults_->tagger_lookup_fails(key)) {
        TaggedSample partial;
        partial.sample = s;
        partial.partial = true;
        partial.minute = s.captured_at.count_nanos() / 60'000'000'000LL;
        scuba_.add(partial);
        ++tag_failures_injected_;
        ++partial_rows_;
        FBDCSIM_T_COUNTER(injected, "fbflow.tag_failures_injected", Sim);
        FBDCSIM_T_COUNTER(partials, "fbflow.partial_rows", Sim);
        FBDCSIM_T_ADD(injected, 1);
        FBDCSIM_T_ADD(partials, 1);
        return;
      }
    }
    TaggedSample tagged;
    if (tagger_.tag(s, tagged)) {
      scuba_.add(tagged);
      FBDCSIM_T_COUNTER(landed, "fbflow.scuba.rows", Sim);
      FBDCSIM_T_ADD(landed, 1);
    } else {
      ++tag_failures_;
      FBDCSIM_T_COUNTER(failures, "fbflow.tag_failures", Sim);
      FBDCSIM_T_ADD(failures, 1);
    }
  });
}

void FbflowPipeline::publish(const SampledPacket& sample) {
  if (!faulted_) {
    scribe_.publish(sample);
    return;
  }
  const std::uint64_t key = faults::FaultPlan::sample_key(
      sample.reporter.value(), sample.captured_at.count_nanos(),
      std::hash<core::FiveTuple>{}(sample.tuple));

  // Retry with exponential backoff; each attempt's fate is its own
  // deterministic draw. A sample whose every attempt fails is lost.
  const int max_retries = faults_->config().scribe_max_retries;
  int failed_attempts = 0;
  while (failed_attempts <= max_retries &&
         faults_->scribe_attempt_fails(key, failed_attempts)) {
    ++failed_attempts;
  }
  if (failed_attempts > max_retries) {
    ++scribe_dropped_;
    scribe_backoff_total_ = scribe_backoff_total_ + faults_->scribe_backoff(failed_attempts);
    FBDCSIM_T_COUNTER(dropped, "fbflow.scribe_dropped", Sim);
    FBDCSIM_T_ADD(dropped, 1);
    return;
  }
  if (failed_attempts > 0) {
    scribe_retries_ += failed_attempts;
    scribe_backoff_total_ = scribe_backoff_total_ + faults_->scribe_backoff(failed_attempts);
    FBDCSIM_T_COUNTER(retries, "fbflow.scribe_retries", Sim);
    FBDCSIM_T_ADD(retries, failed_attempts);
  }

  if (faults_->scribe_delayed(key)) {
    // The delay shifts the capture timestamp — and so, possibly, the Scuba
    // minute the record lands in (the mis-tagged-minute effect).
    SampledPacket delayed = sample;
    delayed.captured_at = sample.captured_at + faults_->scribe_delay(key);
    ++scribe_delayed_;
    FBDCSIM_T_COUNTER(delayed_c, "fbflow.scribe_delayed", Sim);
    FBDCSIM_T_ADD(delayed_c, 1);
    scribe_.publish(delayed);
    return;
  }
  scribe_.publish(sample);
}

AnalyticSampler& FbflowPipeline::sampler_for(core::HostId reporter) {
  const std::uint64_t key = reporter.value();
  const auto it = analytic_.find(key);
  if (it != analytic_.end()) return it->second;
  return analytic_
      .emplace(key, AnalyticSampler{sampling_rate_, analytic_root_.fork("analytic-host", key)})
      .first->second;
}

void FbflowPipeline::offer_flow(const core::FlowRecord& flow) {
  FBDCSIM_T_COUNTER(offered, "fbflow.flows_offered", Sim);
  FBDCSIM_T_ADD(offered, 1);
  sampler_for(flow.src_host)
      .sample_flow(flow, [this](const SampledPacket& s) { publish(s); });
}

void FbflowPipeline::merge(const FbflowPipeline& other) {
  if (other.sampling_rate_ != sampling_rate_) {
    throw std::invalid_argument{"FbflowPipeline::merge: sampling rates differ"};
  }
  scuba_.merge(other.scuba_);
  scribe_.absorb_counters(other.scribe_);
  tag_failures_ += other.tag_failures_;
  scribe_dropped_ += other.scribe_dropped_;
  scribe_retries_ += other.scribe_retries_;
  scribe_backoff_total_ = scribe_backoff_total_ + other.scribe_backoff_total_;
  scribe_delayed_ += other.scribe_delayed_;
  tag_failures_injected_ += other.tag_failures_injected_;
  partial_rows_ += other.partial_rows_;
}

void FbflowPipeline::offer_packet(core::HostId reporter, const core::PacketHeader& header) {
  FBDCSIM_T_COUNTER(seen, "fbflow.packets_seen", Sim);
  FBDCSIM_T_ADD(seen, 1);
  if (!packet_sampler_.sample()) return;
  SampledPacket s;
  s.captured_at = header.timestamp;
  s.tuple = header.tuple;
  s.frame_bytes = header.frame_bytes;
  s.reporter = reporter;
  publish(s);
}

}  // namespace fbdcsim::monitoring
