#include "fbdcsim/monitoring/trace_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "fbdcsim/core/rng.h"  // splitmix64 for the checksum mix

namespace fbdcsim::monitoring {

namespace {

constexpr char kMagic[4] = {'F', 'B', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

/// On-disk record layout (little-endian, packed by explicit serialization —
/// we never write raw structs, so the format is ABI-independent).
struct WireRecord {
  std::int64_t timestamp_ns;
  std::uint32_t src_ip;
  std::uint32_t dst_ip;
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint8_t protocol;
  std::uint8_t flags;
  std::int32_t frame_bytes;
  std::int32_t payload_bytes;
};

template <typename T>
void put(std::ostream& out, T value) {
  // The simulator only targets little-endian hosts; static_assert the
  // layout assumptions rather than byte-swapping.
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool get(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return in.good() || (in.eof() && in.gcount() == sizeof(T));
}

std::uint8_t pack_flags(core::TcpFlags flags) {
  // Bit 32 (ece) is zero on every pre-DCTCP trace, so old files round-trip
  // unchanged under the same format version.
  return static_cast<std::uint8_t>((flags.syn ? 1 : 0) | (flags.ack ? 2 : 0) |
                                   (flags.fin ? 4 : 0) | (flags.rst ? 8 : 0) |
                                   (flags.psh ? 16 : 0) | (flags.ece ? 32 : 0));
}

core::TcpFlags unpack_flags(std::uint8_t bits) {
  return core::TcpFlags{
      .syn = (bits & 1) != 0,
      .ack = (bits & 2) != 0,
      .fin = (bits & 4) != 0,
      .rst = (bits & 8) != 0,
      .psh = (bits & 16) != 0,
      .ece = (bits & 32) != 0,
  };
}

/// Order-sensitive checksum over the logical record fields.
std::uint64_t checksum_mix(std::uint64_t acc, const core::PacketHeader& pkt) {
  acc = core::splitmix64(acc ^ static_cast<std::uint64_t>(pkt.timestamp.count_nanos()));
  acc = core::splitmix64(acc ^ pkt.tuple.src_ip.value());
  acc = core::splitmix64(acc ^ pkt.tuple.dst_ip.value());
  acc = core::splitmix64(acc ^ (static_cast<std::uint64_t>(pkt.tuple.src_port) << 16 |
                                pkt.tuple.dst_port));
  acc = core::splitmix64(acc ^ static_cast<std::uint64_t>(pkt.frame_bytes) << 32 ^
                         static_cast<std::uint64_t>(pkt.payload_bytes));
  acc = core::splitmix64(acc ^ pack_flags(pkt.flags));
  return acc;
}

}  // namespace

bool write_trace(std::ostream& out, std::span<const core::PacketHeader> trace) {
  out.write(kMagic, sizeof(kMagic));
  put(out, kVersion);
  put(out, static_cast<std::uint64_t>(trace.size()));

  std::uint64_t checksum = 0;
  for (const core::PacketHeader& pkt : trace) {
    put(out, pkt.timestamp.count_nanos());
    put(out, pkt.tuple.src_ip.value());
    put(out, pkt.tuple.dst_ip.value());
    put(out, pkt.tuple.src_port);
    put(out, pkt.tuple.dst_port);
    put(out, static_cast<std::uint8_t>(pkt.tuple.protocol));
    put(out, pack_flags(pkt.flags));
    put(out, static_cast<std::int32_t>(pkt.frame_bytes));
    put(out, static_cast<std::int32_t>(pkt.payload_bytes));
    checksum = checksum_mix(checksum, pkt);
  }
  put(out, checksum);
  return out.good();
}

bool write_trace_file(const std::string& path, std::span<const core::PacketHeader> trace) {
  std::ofstream out{path, std::ios::binary};
  if (!out) return false;
  return write_trace(out, trace);
}

TraceReadResult read_trace(std::istream& in) {
  TraceReadResult result;
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    result.error = "not an FBTR trace (bad magic)";
    return result;
  }
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!get(in, version) || version != kVersion) {
    result.error = "unsupported FBTR version";
    return result;
  }
  if (!get(in, count)) {
    result.error = "truncated header";
    return result;
  }

  result.trace.reserve(count);
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t ts = 0;
    std::uint32_t src = 0, dst = 0;
    std::uint16_t sport = 0, dport = 0;
    std::uint8_t proto = 0, flags = 0;
    std::int32_t frame = 0, payload = 0;
    if (!get(in, ts) || !get(in, src) || !get(in, dst) || !get(in, sport) ||
        !get(in, dport) || !get(in, proto) || !get(in, flags) || !get(in, frame) ||
        !get(in, payload)) {
      result.error = "truncated record " + std::to_string(i);
      result.trace.clear();
      return result;
    }
    core::PacketHeader pkt;
    pkt.timestamp = core::TimePoint::from_nanos(ts);
    pkt.tuple = core::FiveTuple{core::Ipv4Addr{src}, core::Ipv4Addr{dst}, sport, dport,
                                static_cast<core::Protocol>(proto)};
    pkt.flags = unpack_flags(flags);
    pkt.frame_bytes = frame;
    pkt.payload_bytes = payload;
    checksum = checksum_mix(checksum, pkt);
    result.trace.push_back(pkt);
  }

  std::uint64_t stored = 0;
  if (!get(in, stored)) {
    result.error = "missing checksum";
    result.trace.clear();
    return result;
  }
  if (stored != checksum) {
    result.error = "checksum mismatch (corrupted trace)";
    result.trace.clear();
    return result;
  }
  result.ok = true;
  return result;
}

TraceReadResult read_trace_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    TraceReadResult result;
    result.error = "cannot open " + path;
    return result;
  }
  return read_trace(in);
}

bool write_trace_csv(std::ostream& out, std::span<const core::PacketHeader> trace) {
  out << "timestamp_ns,src,sport,dst,dport,proto,frame_bytes,payload_bytes,flags\n";
  for (const core::PacketHeader& pkt : trace) {
    out << pkt.timestamp.count_nanos() << ',' << pkt.tuple.src_ip.to_string() << ','
        << pkt.tuple.src_port << ',' << pkt.tuple.dst_ip.to_string() << ','
        << pkt.tuple.dst_port << ','
        << (pkt.tuple.protocol == core::Protocol::kTcp ? "tcp" : "udp") << ','
        << pkt.frame_bytes << ',' << pkt.payload_bytes << ',';
    if (pkt.flags.syn) out << 'S';
    if (pkt.flags.ack) out << 'A';
    if (pkt.flags.fin) out << 'F';
    if (pkt.flags.rst) out << 'R';
    if (pkt.flags.psh) out << 'P';
    if (pkt.flags.ece) out << 'E';
    out << '\n';
  }
  return out.good();
}

}  // namespace fbdcsim::monitoring
