#include "fbdcsim/services/web.h"

#include <algorithm>
#include <cmath>

namespace fbdcsim::services {

namespace {
using core::DataSize;
using core::Duration;
using core::HostRole;
using core::TimePoint;
}  // namespace

WebServerModel::WebServerModel(const topology::Fleet& fleet, core::HostId self,
                               const ServiceMix& mix, core::RngStream rng)
    : fleet_{&fleet},
      self_{self},
      mix_{&mix},
      rng_{rng},
      peers_{fleet, self},
      conns_{fleet, self},
      slb_response_{static_cast<double>(mix.web.slb_response_mean.count_bytes()),
                    mix.web.slb_response_sigma},
      hot_response_{static_cast<double>(mix.hot_objects.hot_object_median.count_bytes()),
                    mix.hot_objects.hot_object_sigma},
      cold_response_{static_cast<double>(mix.hot_objects.cold_object_median.count_bytes()),
                     mix.hot_objects.cold_object_sigma},
      cache_response_{static_cast<double>(mix.cache_follower.object_median.count_bytes()),
                      mix.cache_follower.object_sigma} {
  // Calibrate the misc (background) byte rate so that it is the configured
  // fraction of total outbound bytes, given the per-request byte budget.
  const WebParams& w = mix.web;
  const double per_request_bytes =
      w.cache_gets_per_request_mean * static_cast<double>(w.cache_get_request.count_bytes()) +
      w.multifeed_calls_per_request_mean *
          static_cast<double>(w.multifeed_request.count_bytes()) +
      static_cast<double>(w.slb_response_mean.count_bytes());
  const double foreground_rate = w.user_requests_per_sec * per_request_bytes;
  misc_bytes_per_sec_ =
      foreground_rate * w.misc_bytes_fraction / (1.0 - w.misc_bytes_fraction);

  // Background endpoints (log sinks, config services) are a small fixed
  // group, not the whole fleet.
  core::RngStream setup = rng_.fork("peer-sets");
  misc_peers_ = peers_.pick_set(HostRole::kService, Scope::kSameDatacenter, 5, setup);
  const auto remote =
      peers_.pick_set(HostRole::kService, Scope::kOtherDatacenters, 4, setup);
  misc_peers_.insert(misc_peers_.end(), remote.begin(), remote.end());

  object_popularity_ = std::make_unique<core::Zipf>(mix.hot_objects.num_objects,
                                                    mix.hot_objects.zipf_exponent);
}

void WebServerModel::start(sim::Simulator& sim, TrafficSink& sink) {
  sim_ = &sim;
  sink_ = &sink;
  wire_ = std::make_unique<Wire>(sim, sink, self_);
  schedule_next_user_request();
  schedule_next_misc();
  schedule_next_ephemeral();
}

void WebServerModel::schedule_next_user_request() {
  const double mean_gap = 1.0 / mix_->web.user_requests_per_sec;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(mean_gap)), [this] {
    serve_user_request();
    schedule_next_user_request();
  });
}

void WebServerModel::serve_user_request() {
  const WebParams& w = mix_->web;
  const TimePoint now = sim_->now();

  // 1. The user request arrives from an SLB over a pooled connection.
  const auto slb = mix_->load_balancing_enabled
                       ? peers_.pick(HostRole::kSlb, Scope::kSameCluster, rng_)
                       : peers_.pick_skewed(HostRole::kSlb, Scope::kSameCluster, rng_);
  TimePoint ready = now;
  if (slb) {
    Connection& in = conns_.pooled_inbound(*slb, core::ports::kHttp);
    // The page response piggybacks the ACK of the user request.
    ready = wire_->receive(in, mix_->slb.request_size, now, Duration::micros(2),
                           /*ack_outbound=*/false);
  }

  // 2. After think time, a burst of cache gets spread over the cluster's
  //    followers. Burst size is geometric around the configured mean, so
  //    page weights vary (some pages touch few objects, some very many).
  const double p = 1.0 / w.cache_gets_per_request_mean;
  const auto gets = static_cast<int>(
      std::clamp(std::ceil(std::log(1.0 - rng_.uniform()) / std::log(1.0 - p)), 1.0, 400.0));
  TimePoint at = ready + w.think_time;
  const auto followers = peers_.candidates(HostRole::kCacheFollower, Scope::kSameCluster);
  for (int g = 0; g < gets; ++g) {
    std::optional<core::HostId> follower;
    bool hot = false;
    if (!mix_->load_balancing_enabled) {
      follower = peers_.pick_skewed(HostRole::kCacheFollower, Scope::kSameCluster, rng_);
    } else if (!followers.empty()) {
      // Key-based routing: the object's key determines the follower; the
      // hot head is small and steady, the cold tail rare and large.
      const std::size_t object = object_popularity_->sample(rng_);
      hot = object < mix_->hot_objects.hot_head;
      follower = followers[core::splitmix64(object * 0x9E3779B97F4A7C15ULL) %
                           followers.size()];
    }
    if (!follower) break;

    const DataSize response = DataSize::bytes(std::max<std::int64_t>(
        32, static_cast<std::int64_t>((hot ? hot_response_ : cold_response_).sample(rng_))));
    const Duration service = Duration::micros(static_cast<std::int64_t>(
        80 + rng_.exponential(120.0)));

    if (mix_->connection_pooling_enabled) {
      Connection& conn = conns_.pooled(*follower, core::ports::kMemcache);
      // The cache response piggybacks the request's ACK.
      const TimePoint sent =
          wire_->send(conn, w.cache_get_request, at, Duration::micros(2), false);
      wire_->receive(conn, response, sent + service);
    } else {
      // Pooling-off ablation: every get pays a handshake and teardown.
      const Connection conn = conns_.ephemeral(*follower, core::ports::kMemcache);
      const TimePoint open_done = wire_->open(conn, at);
      const TimePoint sent = wire_->send(conn, w.cache_get_request, open_done);
      const TimePoint resp_done = wire_->receive(conn, response, sent + service);
      wire_->close(conn, resp_done + Duration::micros(20));
    }
    at += w.burst_gap;
  }

  // 3. Multifeed / ads backend calls (same cluster; Figure 2).
  const auto mf_calls = static_cast<int>(rng_.poisson(w.multifeed_calls_per_request_mean));
  for (int m = 0; m < mf_calls; ++m) {
    const auto mf = peers_.pick(HostRole::kMultifeed, Scope::kSameCluster, rng_);
    if (!mf) break;
    Connection& conn = conns_.pooled(*mf, core::ports::kMultifeed);
    const TimePoint sent =
        wire_->send(conn, w.multifeed_request, at, Duration::micros(2), false);
    const DataSize mf_resp = DataSize::bytes(std::max<std::int64_t>(
        64, static_cast<std::int64_t>(
                core::LogNormal{static_cast<double>(
                                    mix_->multifeed.response_median.count_bytes()),
                                mix_->multifeed.response_sigma}
                    .sample(rng_))));
    wire_->receive(conn, mf_resp, sent + Duration::micros(300));
    at += w.burst_gap;
  }

  // 4. Response back to the SLB.
  if (slb) {
    Connection& in = conns_.pooled_inbound(*slb, core::ports::kHttp);
    const DataSize page = DataSize::bytes(std::max<std::int64_t>(
        256, static_cast<std::int64_t>(slb_response_.sample(rng_))));
    wire_->send(in, page, at + Duration::micros(200));
  }
}

void WebServerModel::schedule_next_ephemeral() {
  // Ephemeral one-shot exchanges (health checks, config fetches, one-off
  // RPCs): a Poisson process whose rate sets the SYN interarrival of
  // Figure 14 (~2 ms median for Web servers).
  const double rate = mix_->web.ephemeral_per_sec;
  if (rate <= 0.0) return;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    const auto peer = peers_.pick(HostRole::kCacheFollower, Scope::kSameCluster, rng_);
    if (peer) {
      const Connection conn = conns_.ephemeral(*peer, core::ports::kMemcache);
      const TimePoint opened = wire_->open(conn, sim_->now());
      const TimePoint sent = wire_->send(conn, mix_->web.cache_get_request, opened);
      const DataSize response = DataSize::bytes(std::max<std::int64_t>(
          32, static_cast<std::int64_t>(cache_response_.sample(rng_))));
      const TimePoint done = wire_->receive(conn, response, sent + Duration::micros(150));
      wire_->close(conn, done + Duration::micros(20));
    }
    schedule_next_ephemeral();
  });
}

void WebServerModel::schedule_next_misc() {
  const WebParams& w = mix_->web;
  if (misc_bytes_per_sec_ <= 0.0) return;
  const double msgs_per_sec =
      misc_bytes_per_sec_ / static_cast<double>(w.misc_message.count_bytes());
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / msgs_per_sec)), [this] {
    const WebParams& w2 = mix_->web;
    // Background traffic (logging, config, static-asset replication) to
    // the fixed endpoint group, which spans this and other datacenters.
    if (!misc_peers_.empty()) {
      const core::HostId peer = misc_peers_[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(misc_peers_.size()) - 1))];
      Connection& conn = conns_.pooled(peer, core::ports::kSlb);
      wire_->send(conn, w2.misc_message, sim_->now());
    }
    schedule_next_misc();
  });
}

}  // namespace fbdcsim::services
