#include "fbdcsim/services/peer_selection.h"

#include <algorithm>
#include <set>

namespace fbdcsim::services {

const char* to_string(Scope scope) {
  switch (scope) {
    case Scope::kSameRack: return "same-rack";
    case Scope::kSameCluster: return "same-cluster";
    case Scope::kSameClusterOtherRack: return "same-cluster-other-rack";
    case Scope::kSameDatacenterOtherCluster: return "same-dc-other-cluster";
    case Scope::kSameDatacenter: return "same-dc";
    case Scope::kOtherDatacentersSameSite: return "other-dc-same-site";
    case Scope::kOtherSites: return "other-sites";
    case Scope::kOtherDatacenters: return "other-dcs";
    case Scope::kAnywhere: return "anywhere";
  }
  return "?";
}

bool PeerSelector::in_scope(const topology::Host& c, Scope scope) const {
  const topology::Host& s = fleet_->host(self_);
  switch (scope) {
    case Scope::kSameRack:
      return c.rack == s.rack;
    case Scope::kSameCluster:
      return c.cluster == s.cluster;
    case Scope::kSameClusterOtherRack:
      return c.cluster == s.cluster && c.rack != s.rack;
    case Scope::kSameDatacenterOtherCluster:
      return c.datacenter == s.datacenter && c.cluster != s.cluster;
    case Scope::kSameDatacenter:
      return c.datacenter == s.datacenter;
    case Scope::kOtherDatacentersSameSite:
      return c.site == s.site && c.datacenter != s.datacenter;
    case Scope::kOtherSites:
      return c.site != s.site;
    case Scope::kOtherDatacenters:
      return c.datacenter != s.datacenter;
    case Scope::kAnywhere:
      return true;
  }
  return false;
}

std::span<const core::HostId> PeerSelector::candidates(core::HostRole role, Scope scope) {
  const auto key = std::make_pair(role, scope);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    std::vector<core::HostId> list;
    for (const topology::Host& h : fleet_->hosts()) {
      if (h.id == self_ || h.role != role) continue;
      if (in_scope(h, scope)) list.push_back(h.id);
    }
    it = cache_.emplace(key, std::move(list)).first;
  }
  return it->second;
}

std::optional<core::HostId> PeerSelector::pick(core::HostRole role, Scope scope,
                                               core::RngStream& rng) {
  const auto list = candidates(role, scope);
  if (list.empty()) return std::nullopt;
  return list[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(list.size()) - 1))];
}

std::optional<core::HostId> PeerSelector::pick_skewed(core::HostRole role, Scope scope,
                                                      core::RngStream& rng,
                                                      double zipf_exponent,
                                                      std::uint64_t rotation) {
  const auto list = candidates(role, scope);
  if (list.empty()) return std::nullopt;
  const auto key = std::make_pair(role, scope);
  auto it = zipf_cache_.find(key);
  if (it == zipf_cache_.end() || it->second.exponent() != zipf_exponent) {
    it = zipf_cache_.insert_or_assign(key, core::Zipf{list.size(), zipf_exponent}).first;
  }
  const std::size_t rank = it->second.sample(rng);
  // Scatter ranks over the candidate list with a rotation-dependent
  // affine map, so the hot set is a pseudo-random subset that changes
  // whenever `rotation` advances.
  const std::size_t idx = static_cast<std::size_t>(
      core::splitmix64(rank * 0x9E3779B97F4A7C15ULL ^ rotation) % list.size());
  return list[idx];
}

std::vector<core::HostId> PeerSelector::pick_set(core::HostRole role, Scope scope,
                                                 std::size_t count, core::RngStream& rng) {
  const auto list = candidates(role, scope);
  std::vector<core::HostId> out;
  if (list.empty()) return out;
  count = std::min(count, list.size());
  std::set<std::size_t> chosen;
  while (chosen.size() < count) {
    chosen.insert(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(list.size()) - 1)));
  }
  out.reserve(count);
  for (const std::size_t i : chosen) out.push_back(list[i]);
  return out;
}

}  // namespace fbdcsim::services
