#include "fbdcsim/services/hadoop.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fbdcsim::services {

namespace {
using core::DataSize;
using core::Duration;
using core::HostRole;
using core::TimePoint;
}  // namespace

HadoopModel::HadoopModel(const topology::Fleet& fleet, core::HostId self,
                         const ServiceMix& mix, core::RngStream rng)
    : fleet_{&fleet},
      self_{self},
      mix_{&mix},
      rng_{rng},
      peers_{fleet, self},
      conns_{fleet, self},
      transfer_size_{static_cast<double>(mix.hadoop.transfer_median.count_bytes()),
                     mix.hadoop.transfer_sigma} {
  // Rack-local peers: the whole rack (fairly even spread, §4.2).
  for (const core::HostId h : peers_.candidates(HostRole::kHadoop, Scope::kSameRack)) {
    rack_partners_.push_back(h);
  }
  // Cluster partner set: partner_fraction of the cluster's Hadoop hosts,
  // drawn so they land across most racks (shuffle partners + HDFS replica
  // targets + data consumers).
  const auto cluster_peers = peers_.candidates(HostRole::kHadoop, Scope::kSameClusterOtherRack);
  const auto want = std::max<std::size_t>(
      8, static_cast<std::size_t>(static_cast<double>(cluster_peers.size()) *
                                  mix.hadoop.partner_fraction * 10.0));
  std::unordered_set<std::uint32_t> chosen;
  while (partners_.size() < std::min(want, cluster_peers.size())) {
    const auto idx = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(cluster_peers.size()) - 1));
    if (chosen.insert(cluster_peers[idx].value()).second) {
      partners_.push_back(cluster_peers[idx]);
    }
  }
}

void HadoopModel::start(sim::Simulator& sim, TrafficSink& sink) {
  sim_ = &sim;
  sink_ = &sink;
  wire_ = std::make_unique<Wire>(sim, sink, self_);
  schedule_next_control();
  // Start in a random phase position so co-located nodes desynchronize.
  if (rng_.bernoulli(mix_->hadoop.busy_period_mean.to_seconds() /
                     (mix_->hadoop.busy_period_mean.to_seconds() +
                      mix_->hadoop.quiet_period_mean.to_seconds()))) {
    enter_busy();
  } else {
    enter_quiet();
  }
}

void HadoopModel::enter_quiet() {
  busy_ = false;
  const std::uint64_t epoch = ++phase_epoch_;
  const Duration len =
      Duration::from_seconds(rng_.exponential(mix_->hadoop.quiet_period_mean.to_seconds()));
  sim_->schedule_after(len, [this, epoch] {
    if (epoch == phase_epoch_) enter_busy();
  });
}

void HadoopModel::enter_busy() {
  busy_ = true;
  const std::uint64_t epoch = ++phase_epoch_;
  const Duration len =
      Duration::from_seconds(rng_.exponential(mix_->hadoop.busy_period_mean.to_seconds()));
  sim_->schedule_after(len, [this, epoch] {
    if (epoch == phase_epoch_) enter_quiet();
  });
  schedule_next_transfer();
  start_shuffle_streams(epoch);
}

void HadoopModel::start_shuffle_streams(std::uint64_t epoch) {
  // A reducer fetches map output from many mappers at once, and HDFS
  // writes stream through replica pipelines; both hold connections open
  // for the whole phase with steady chunked transfers. These standing
  // streams produce the ~25 concurrent connections of §6.4.
  const HadoopParams& p = mix_->hadoop;
  for (int i = 0; i < p.shuffle_streams; ++i) {
    const bool rack_local = rng_.bernoulli(p.rack_local_fraction) && !rack_partners_.empty();
    core::HostId peer;
    if (rack_local) {
      peer = rack_partners_[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(rack_partners_.size()) - 1))];
    } else if (!partners_.empty()) {
      peer = partners_[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(partners_.size()) - 1))];
    } else {
      continue;
    }
    const bool inbound = i % 2 == 0;  // half fetches, half serves/writes
    const Connection conn = inbound
                                ? conns_.ephemeral_inbound(peer, core::ports::kMapReduceShuffle)
                                : conns_.ephemeral(peer, core::ports::kMapReduceShuffle);
    const TimePoint opened = inbound ? wire_->open_inbound(conn, sim_->now())
                                     : wire_->open(conn, sim_->now());
    schedule_stream_chunk(epoch, conn, inbound, opened + Duration::micros(100));
  }
}

void HadoopModel::schedule_stream_chunk(std::uint64_t epoch, Connection conn, bool inbound,
                                        TimePoint at) {
  if (at < sim_->now()) at = sim_->now();
  sim_->schedule_at(at, [this, epoch, conn, inbound] {
    if (epoch != phase_epoch_ || !busy_) {
      wire_->close(conn, sim_->now());
      return;
    }
    const HadoopParams& p = mix_->hadoop;
    core::LogNormal chunk_dist{static_cast<double>(p.stream_chunk_median.count_bytes()),
                               p.stream_chunk_sigma};
    const DataSize chunk = DataSize::bytes(std::max<std::int64_t>(
        512, static_cast<std::int64_t>(chunk_dist.sample(rng_))));
    // Streams are disk/application bound (~0.3-0.5 Gbps), not line rate.
    const Duration gap = Duration::micros(static_cast<std::int64_t>(25 + rng_.exponential(10.0)));
    const TimePoint done = inbound ? wire_->receive(conn, chunk, sim_->now(), gap)
                                   : wire_->send(conn, chunk, sim_->now(), gap);
    const Duration wait = Duration::from_seconds(
        rng_.exponential(p.stream_interval_mean.to_seconds()));
    schedule_stream_chunk(epoch, conn, inbound, done + wait);
  });
}

void HadoopModel::schedule_next_transfer() {
  if (!busy_) return;
  const std::uint64_t epoch = phase_epoch_;
  const double rate = mix_->hadoop.transfers_per_sec_busy;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this, epoch] {
    if (epoch != phase_epoch_ || !busy_) return;
    // Shuffle is bidirectional: this node both serves map output and
    // fetches it. Synthesize inbound transfers from outside the rack only
    // (rack-local inbound comes from neighbours' models; see
    // traffic_model.h).
    launch_transfer(/*inbound=*/rng_.bernoulli(0.5));
    schedule_next_transfer();
  });
}

void HadoopModel::launch_transfer(bool inbound) {
  const HadoopParams& p = mix_->hadoop;

  const bool rack_local = !inbound && rng_.bernoulli(p.rack_local_fraction) &&
                          !rack_partners_.empty();
  core::HostId peer;
  if (rack_local) {
    peer = rack_partners_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(rack_partners_.size()) - 1))];
  } else if (!partners_.empty()) {
    peer = partners_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(partners_.size()) - 1))];
  } else {
    return;
  }

  const auto bytes = std::min<std::int64_t>(
      std::max<std::int64_t>(128, static_cast<std::int64_t>(transfer_size_.sample(rng_))),
      p.transfer_cap.count_bytes());
  const DataSize size = DataSize::bytes(bytes);

  // Bulk data moves at a pace bounded by disk/app throughput; small
  // transfers go back-to-back.
  const Duration gap = Duration::micros(static_cast<std::int64_t>(2 + rng_.exponential(10.0)));
  const TimePoint now = sim_->now();

  if (inbound) {
    const Connection conn = conns_.ephemeral_inbound(peer, core::ports::kMapReduceShuffle);
    const TimePoint opened = wire_->open_inbound(conn, now);
    const TimePoint done = wire_->receive(conn, size, opened, gap);
    wire_->close(conn, done + Duration::micros(50));
  } else {
    const Connection conn = conns_.ephemeral(peer, core::ports::kMapReduceShuffle);
    const TimePoint opened = wire_->open(conn, now);
    const TimePoint done = wire_->send(conn, size, opened, gap);
    wire_->close(conn, done + Duration::micros(50));
  }
}

void HadoopModel::schedule_next_control() {
  const HadoopParams& p = mix_->hadoop;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / p.control_msgs_per_sec)),
                       [this] {
    const HadoopParams& p2 = mix_->hadoop;
    // Heartbeats and job-tracker RPCs flow regardless of phase; a sliver
    // (misc_bytes_fraction, 0.2% in Table 2) leaves the service entirely.
    if (rng_.bernoulli(p2.misc_bytes_fraction)) {
      const auto svc = peers_.pick(HostRole::kService, Scope::kSameDatacenter, rng_);
      if (svc) {
        Connection& conn = conns_.pooled(*svc, core::ports::kSlb);
        wire_->send(conn, p2.control_msg, sim_->now());
      }
    } else {
      const auto peer = peers_.pick(HostRole::kHadoop, Scope::kSameClusterOtherRack, rng_);
      if (peer) {
        Connection& conn = conns_.pooled(*peer, core::ports::kHdfs);
        const TimePoint sent = wire_->send(conn, p2.control_msg, sim_->now());
        wire_->receive(conn, DataSize::bytes(200), sent + Duration::micros(250));
      }
    }
    schedule_next_control();
  });
}

}  // namespace fbdcsim::services
