#include "fbdcsim/services/cache.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_map>

namespace fbdcsim::services {

namespace {
using core::DataSize;
using core::Duration;
using core::HostRole;
using core::TimePoint;

DataSize sampled_size(core::LogNormal& dist, core::RngStream& rng, std::int64_t floor_bytes) {
  return DataSize::bytes(
      std::max(floor_bytes, static_cast<std::int64_t>(dist.sample(rng))));
}
}  // namespace

// ---------------------------------------------------------------------------
// Cache follower
// ---------------------------------------------------------------------------

CacheFollowerModel::CacheFollowerModel(const topology::Fleet& fleet, core::HostId self,
                                       const ServiceMix& mix, core::RngStream rng)
    : fleet_{&fleet},
      self_{self},
      mix_{&mix},
      rng_{rng},
      peers_{fleet, self},
      conns_{fleet, self},
      object_size_{static_cast<double>(mix.cache_follower.object_median.count_bytes()),
                   mix.cache_follower.object_sigma} {
  // Shard map: this follower's objects belong to a handful of shards, each
  // owned by a specific leader; fills concentrate there (and that is why
  // Figure 9's per-host flow sizes stay tight — only the Web-facing
  // response traffic is spread wide).
  core::RngStream setup = rng_.fork("peer-sets");
  leader_peers_ = peers_.pick_set(HostRole::kCacheLeader,
                                  Scope::kSameDatacenterOtherCluster, 12, setup);
  const auto remote_leaders =
      peers_.pick_set(HostRole::kCacheLeader, Scope::kOtherDatacenters, 4, setup);
  leader_peers_.insert(leader_peers_.end(), remote_leaders.begin(), remote_leaders.end());
  misc_peers_ = peers_.pick_set(HostRole::kService, Scope::kSameDatacenter, 5, setup);
  const auto remote_misc =
      peers_.pick_set(HostRole::kService, Scope::kOtherDatacenters, 3, setup);
  misc_peers_.insert(misc_peers_.end(), remote_misc.begin(), remote_misc.end());
}

void CacheFollowerModel::start(sim::Simulator& sim, TrafficSink& sink) {
  sim_ = &sim;
  sink_ = &sink;
  wire_ = std::make_unique<Wire>(sim, sink, self_);
  schedule_next_get();
  schedule_next_surge();
  schedule_next_ephemeral();
  schedule_next_misc();
}

void CacheFollowerModel::schedule_next_get() {
  const double rate = mix_->cache_follower.gets_served_per_sec * surge_multiplier_;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    serve_get(surge_multiplier_);
    schedule_next_get();
  });
}

void CacheFollowerModel::refresh_rack_weights() {
  // Group the cluster's Web hosts by rack once.
  if (web_hosts_by_rack_.empty()) {
    std::unordered_map<std::uint32_t, std::size_t> rack_index;
    for (const core::HostId h : peers_.candidates(HostRole::kWeb, Scope::kSameCluster)) {
      const auto rack = fleet_->host(h).rack.value();
      auto [it, inserted] = rack_index.try_emplace(rack, web_hosts_by_rack_.size());
      if (inserted) web_hosts_by_rack_.emplace_back();
      web_hosts_by_rack_[it->second].push_back(h);
    }
  }
  // Per-second Gamma(k)/sum weights: mean 1, sd ~1/sqrt(k).
  std::gamma_distribution<double> gamma{18.0, 1.0};
  rack_weight_cdf_.clear();
  double acc = 0.0;
  for (std::size_t i = 0; i < web_hosts_by_rack_.size(); ++i) {
    acc += gamma(rng_.engine()) * static_cast<double>(web_hosts_by_rack_[i].size());
    rack_weight_cdf_.push_back(acc);
  }
}

std::optional<core::HostId> CacheFollowerModel::pick_requester() {
  if (!mix_->load_balancing_enabled) {
    return peers_.pick_skewed(HostRole::kWeb, Scope::kSameCluster, rng_);
  }
  const std::int64_t epoch = sim_->now().count_nanos() / 1'000'000'000LL;
  if (epoch != weight_epoch_) {
    refresh_rack_weights();
    weight_epoch_ = epoch;
  }
  if (rack_weight_cdf_.empty()) return std::nullopt;
  const double u = rng_.uniform() * rack_weight_cdf_.back();
  const auto it = std::lower_bound(rack_weight_cdf_.begin(), rack_weight_cdf_.end(), u);
  const auto& hosts =
      web_hosts_by_rack_[static_cast<std::size_t>(
          std::distance(rack_weight_cdf_.begin(), it))];
  return hosts[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
}

void CacheFollowerModel::serve_get(double /*rate_multiplier*/) {
  const CacheFollowerParams& p = mix_->cache_follower;
  const TimePoint now = sim_->now();

  // The requesting Web server: user-request load balancing spreads demand
  // over the whole Web tier (Figures 8b, 9, 16b), with per-second per-rack
  // wobble from user sessions; the LB-off ablation concentrates it.
  const auto web = pick_requester();
  if (!web) return;

  Connection& conn = conns_.pooled_inbound(*web, core::ports::kMemcache);
  // The response piggybacks the ACK of the request (no standalone ACK).
  const TimePoint got = wire_->receive(conn, mix_->web.cache_get_request, now,
                                       Duration::micros(2), /*ack_outbound=*/false);

  const Duration service = Duration::micros(static_cast<std::int64_t>(40 + rng_.exponential(60.0)));
  const DataSize object = sampled_size(object_size_, rng_, 32);

  if (rng_.bernoulli(p.miss_rate) && !leader_peers_.empty()) {
    // Miss: fill from the shard's leader before answering.
    const core::HostId leader = leader_peers_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(leader_peers_.size()) - 1))];
    const bool remote =
        fleet_->host(leader).datacenter != fleet_->host(self_).datacenter;
    Connection& fill = conns_.pooled(leader, core::ports::kCacheCoherence);
    const TimePoint asked = wire_->send(fill, p.fill_request, got + service);
    const Duration fill_rtt = remote ? Duration::millis(35) : Duration::micros(400);
    const TimePoint filled = wire_->receive(fill, object, asked + fill_rtt);
    wire_->send(conn, object, filled + Duration::micros(20));
    return;
  }
  wire_->send(conn, object, got + service);
}

void CacheFollowerModel::schedule_next_misc() {
  const CacheFollowerParams& p = mix_->cache_follower;
  // Background traffic ("Rest", 5.5% of Table 2's cache-f row): logging and
  // service chatter to Service hosts in this and other datacenters.
  const double fg_bytes = p.gets_served_per_sec *
                          static_cast<double>(p.object_median.count_bytes()) * 1.8;
  const double misc_bytes = fg_bytes * p.misc_bytes_fraction / (1.0 - p.misc_bytes_fraction);
  const double rate = misc_bytes / static_cast<double>(p.misc_message.count_bytes());
  if (rate <= 0.0) return;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    if (!misc_peers_.empty()) {
      const core::HostId svc = misc_peers_[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(misc_peers_.size()) - 1))];
      Connection& conn = conns_.pooled(svc, core::ports::kSlb);
      wire_->send(conn, mix_->cache_follower.misc_message, sim_->now());
    }
    schedule_next_misc();
  });
}

void CacheFollowerModel::schedule_next_surge() {
  // Surge inter-arrival: a handful per minute per follower; the top-50 hot
  // list churns on the order of minutes (§5.2).
  const double surges_per_sec = 3.0 / 60.0;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / surges_per_sec)), [this] {
    const HotObjectParams& hp = mix_->hot_objects;
    ++surges_started_;
    // A hot object adds demand. With mitigation the cache tells Web
    // servers to cache the object within a short reaction time and the
    // surge collapses; without it the surge runs its full course, and is
    // larger (no replication spreads the shard).
    const double magnitude = hp.mitigation_enabled ? rng_.uniform(0.05, 0.25)
                                                   : rng_.uniform(0.5, 3.0);
    const Duration lifetime =
        hp.mitigation_enabled
            ? Duration::from_seconds(0.2 + rng_.exponential(0.8))
            : Duration::from_seconds(rng_.exponential(hp.hot_lifetime.to_seconds()));
    surge_multiplier_ += magnitude;
    if (hp.mitigation_enabled) ++surges_mitigated_;
    sim_->schedule_after(lifetime, [this, magnitude] { surge_multiplier_ -= magnitude; });
    schedule_next_surge();
  });
}

void CacheFollowerModel::schedule_next_ephemeral() {
  const double rate = mix_->cache_follower.ephemeral_per_sec;
  if (rate <= 0.0) return;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    // Short-lived administrative / one-shot connections: stats pulls,
    // health checks, shard moves. Small exchanges on fresh connections.
    const auto peer = peers_.pick(HostRole::kWeb, Scope::kSameCluster, rng_);
    if (peer) {
      const Connection conn = conns_.ephemeral(*peer, core::ports::kMemcache);
      const TimePoint opened = wire_->open(conn, sim_->now());
      const TimePoint sent = wire_->send(conn, DataSize::bytes(400), opened);
      const TimePoint answered = wire_->receive(conn, DataSize::bytes(600), sent + Duration::micros(150));
      wire_->close(conn, answered + Duration::micros(30));
    }
    schedule_next_ephemeral();
  });
}

// ---------------------------------------------------------------------------
// Cache leader
// ---------------------------------------------------------------------------

CacheLeaderModel::CacheLeaderModel(const topology::Fleet& fleet, core::HostId self,
                                   const ServiceMix& mix, core::RngStream rng)
    : fleet_{&fleet},
      self_{self},
      mix_{&mix},
      rng_{rng},
      peers_{fleet, self},
      conns_{fleet, self},
      coherency_size_{static_cast<double>(mix.cache_leader.coherency_msg_median.count_bytes()),
                      mix.cache_leader.coherency_sigma},
      object_size_{static_cast<double>(mix.cache_follower.object_median.count_bytes()),
                   mix.cache_follower.object_sigma} {
  core::RngStream setup = rng_.fork("peer-sets");
  db_peers_ = peers_.pick_set(HostRole::kDatabase, Scope::kSameDatacenter, 6, setup);
  const auto remote_dbs =
      peers_.pick_set(HostRole::kDatabase, Scope::kOtherDatacenters, 10, setup);
  db_peers_.insert(db_peers_.end(), remote_dbs.begin(), remote_dbs.end());
  mf_peers_ = peers_.pick_set(HostRole::kMultifeed, Scope::kSameDatacenter, 6, setup);
  misc_peers_ = peers_.pick_set(HostRole::kService, Scope::kSameDatacenter, 6, setup);
}

void CacheLeaderModel::start(sim::Simulator& sim, TrafficSink& sink) {
  sim_ = &sim;
  sink_ = &sink;
  wire_ = std::make_unique<Wire>(sim, sink, self_);
  schedule_next_coherency();
  schedule_next_db_op();
  schedule_next_fill();
  schedule_next_ephemeral();
  schedule_next_misc();
}

Scope CacheLeaderModel::follower_scope() {
  // Table 3 Cache row: ~0.2% rack, 13% cluster, 41% DC, 46% inter-DC.
  // Leader->follower messages dominate leader traffic, so their scope mix
  // approximates the row directly; DB and fill components shift it a little
  // and the benches verify the emergent result.
  const double u = rng_.uniform();
  if (u < 0.15) return Scope::kSameCluster;            // other leaders / local shards
  if (u < 0.50) return Scope::kSameDatacenterOtherCluster;
  return Scope::kOtherDatacenters;
}

void CacheLeaderModel::schedule_next_coherency() {
  const double rate = mix_->cache_leader.coherency_msgs_per_sec;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    const Scope scope = follower_scope();
    // Coherency partners: followers in Frontend clusters and leaders in
    // other Cache clusters. Demand is mildly skewed toward the shards
    // that are currently hot, and the hot set churns every ~500 ms —
    // this is what makes leader heavy hitters few and short-lived
    // (Table 4, Figures 10b/17c).
    const HostRole role = scope == Scope::kSameCluster ? HostRole::kCacheLeader
                                                       : HostRole::kCacheFollower;
    const auto rotation = static_cast<std::uint64_t>(
        sim_->now().count_nanos() / 250'000'000LL);
    const auto peer = peers_.pick_skewed(role, scope, rng_, 1.05, rotation);
    if (peer) {
      Connection& conn = conns_.pooled(*peer, core::ports::kCacheCoherence);
      const DataSize msg = sampled_size(coherency_size_, rng_, 64);
      // Invalidations are pipelined fire-and-forget; the TCP-level delayed
      // ACK synthesized by Wire::send is the only reverse traffic.
      wire_->send(conn, msg, sim_->now());
    }
    schedule_next_coherency();
  });
}

void CacheLeaderModel::schedule_next_db_op() {
  const CacheLeaderParams& p = mix_->cache_leader;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / p.db_ops_per_sec)), [this] {
    const CacheLeaderParams& p2 = mix_->cache_leader;
    // Databases are reached in this DC and across the backbone ("single
    // geographically distributed instance", §4.2).
    if (!db_peers_.empty()) {
      const core::HostId db = db_peers_[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(db_peers_.size()) - 1))];
      const bool remote = fleet_->host(db).datacenter != fleet_->host(self_).datacenter;
      Connection& conn = conns_.pooled(db, core::ports::kMysql);
      const TimePoint sent = wire_->send(conn, p2.db_op_size, sim_->now());
      const Duration rtt = remote ? Duration::millis(35) : Duration::micros(600);
      wire_->receive(conn, DataSize::bytes(900), sent + rtt);
    }
    schedule_next_db_op();
  });
}

void CacheLeaderModel::schedule_next_fill() {
  // Fill requests from followers in this datacenter (inbound), answered
  // with objects. Rate scales with follower miss traffic.
  const double rate = mix_->cache_follower.gets_served_per_sec *
                      mix_->cache_follower.miss_rate * 0.25;
  if (rate <= 0.0) return;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    const auto follower =
        peers_.pick(HostRole::kCacheFollower, Scope::kSameDatacenterOtherCluster, rng_);
    if (follower) {
      Connection& conn = conns_.pooled_inbound(*follower, core::ports::kCacheCoherence);
      const TimePoint got = wire_->receive(conn, mix_->cache_follower.fill_request, sim_->now());
      const DataSize object = sampled_size(object_size_, rng_, 32);
      wire_->send(conn, object, got + Duration::micros(120));
    }
    schedule_next_fill();
  });
}

void CacheLeaderModel::schedule_next_ephemeral() {
  const double rate = mix_->cache_leader.ephemeral_per_sec;
  if (rate <= 0.0) return;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    const Scope scope = follower_scope();
    const auto peer = peers_.pick(HostRole::kCacheFollower, scope, rng_);
    if (peer) {
      const Connection conn = conns_.ephemeral(*peer, core::ports::kCacheCoherence);
      const TimePoint opened = wire_->open(conn, sim_->now());
      const TimePoint sent = wire_->send(conn, DataSize::bytes(500), opened);
      wire_->close(conn, sent + Duration::micros(100));
    }
    schedule_next_ephemeral();
  });
}

void CacheLeaderModel::schedule_next_misc() {
  const CacheLeaderParams& p = mix_->cache_leader;
  // Multifeed invalidations plus background services.
  const double fg_bytes =
      p.coherency_msgs_per_sec * static_cast<double>(p.coherency_msg_median.count_bytes()) +
      p.db_ops_per_sec * static_cast<double>(p.db_op_size.count_bytes());
  const double mf_bytes = fg_bytes * p.multifeed_share;
  const double misc_bytes = fg_bytes * p.misc_bytes_fraction;
  const double mf_rate = mf_bytes / static_cast<double>(p.multifeed_msg.count_bytes());
  const double misc_rate = misc_bytes / static_cast<double>(p.misc_message.count_bytes());
  const double total_rate = mf_rate + misc_rate;
  if (total_rate <= 0.0) return;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / total_rate)),
                       [this, mf_rate, total_rate] {
    const CacheLeaderParams& p2 = mix_->cache_leader;
    if (rng_.bernoulli(mf_rate / total_rate)) {
      if (!mf_peers_.empty()) {
        const core::HostId mf = mf_peers_[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(mf_peers_.size()) - 1))];
        Connection& conn = conns_.pooled(mf, core::ports::kMultifeed);
        wire_->send(conn, p2.multifeed_msg, sim_->now());
      }
    } else if (!misc_peers_.empty()) {
      const core::HostId svc = misc_peers_[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(misc_peers_.size()) - 1))];
      Connection& conn = conns_.pooled(svc, core::ports::kSlb);
      wire_->send(conn, p2.misc_message, sim_->now());
    }
    schedule_next_misc();
  });
}

}  // namespace fbdcsim::services
