#include "fbdcsim/services/connections.h"

#include <algorithm>

namespace fbdcsim::services {

namespace {
using core::Duration;
using core::TimePoint;
using namespace core::wire;
}  // namespace

core::FiveTuple ConnectionTable::make_tuple(core::HostId peer, core::Port dst_port,
                                            core::Port src_port) const {
  return core::FiveTuple{
      fleet_->host(self_).addr,
      fleet_->host(peer).addr,
      src_port,
      dst_port,
      core::Protocol::kTcp,
  };
}

Connection& ConnectionTable::pooled(core::HostId peer, core::Port dst_port) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(peer.value()) << 16) | dst_port;
  auto it = pool_.find(key);
  if (it == pool_.end()) {
    const core::Port src = next_port_++;
    it = pool_.emplace(key, Connection{make_tuple(peer, dst_port, src), peer, true}).first;
  }
  return it->second;
}

Connection ConnectionTable::ephemeral(core::HostId peer, core::Port dst_port) {
  const core::Port src = next_port_++;
  return Connection{make_tuple(peer, dst_port, src), peer, false};
}

Connection ConnectionTable::ephemeral_inbound(core::HostId peer, core::Port self_port) {
  const core::Port peer_port = next_port_++;  // peer's ephemeral source port
  // Self -> peer orientation: well-known port on self, ephemeral on peer.
  return Connection{make_tuple(peer, peer_port, self_port), peer, false};
}

Connection& ConnectionTable::pooled_inbound(core::HostId peer, core::Port self_port) {
  const std::uint64_t key = 0x8000'0000'0000'0000ULL |
                            (static_cast<std::uint64_t>(peer.value()) << 16) | self_port;
  auto it = pool_.find(key);
  if (it == pool_.end()) {
    const core::Port peer_port = next_port_++;
    it = pool_.emplace(key, Connection{make_tuple(peer, peer_port, self_port), peer, true})
             .first;
  }
  return it->second;
}

void Wire::emit_out(const core::FiveTuple& tuple, core::HostId peer, TimePoint at,
                    std::int64_t payload, core::TcpFlags flags) {
  sim_->schedule_at(at, [this, tuple, peer, payload, flags] {
    SimPacket pkt;
    pkt.header.timestamp = sim_->now();
    pkt.header.tuple = tuple;
    pkt.header.payload_bytes = payload;
    pkt.header.frame_bytes = tcp_frame_bytes(payload);
    pkt.header.flags = flags;
    pkt.src = self_;
    pkt.dst = peer;
    sink_->host_send(pkt);
  });
}

void Wire::emit_in(const core::FiveTuple& tuple_from_peer, core::HostId peer, TimePoint at,
                   std::int64_t payload, core::TcpFlags flags) {
  sim_->schedule_at(at, [this, tuple_from_peer, peer, payload, flags] {
    SimPacket pkt;
    pkt.header.timestamp = sim_->now();
    pkt.header.tuple = tuple_from_peer;
    pkt.header.payload_bytes = payload;
    pkt.header.frame_bytes = tcp_frame_bytes(payload);
    pkt.header.flags = flags;
    pkt.src = peer;
    pkt.dst = self_;
    sink_->host_receive(pkt);
  });
}

namespace {
/// Scripted-formula completion estimate: segments at `gap` spacing. Used as
/// the return value in TCP mode so transaction pacing in the service models
/// is independent of the transport backend.
TimePoint scripted_last_segment(TimePoint start, std::int64_t bytes, Duration gap) {
  const std::int64_t nseg =
      std::max<std::int64_t>(1, (bytes + kMaxTcpPayloadBytes - 1) / kMaxTcpPayloadBytes);
  return start + gap * (nseg - 1);
}
}  // namespace

TimePoint Wire::send(const Connection& conn, core::DataSize payload, TimePoint start,
                     Duration gap, bool ack_inbound) {
  if (mux_ != nullptr) {
    mux_->app_send(conn.tuple, self_, conn.peer, payload.count_bytes(), start, gap);
    return scripted_last_segment(start, payload.count_bytes(), gap);
  }
  std::int64_t remaining = payload.count_bytes();
  TimePoint at = start;
  int segments = 0;
  const Duration ack_delay = Duration::micros(80);
  while (remaining > 0) {
    const std::int64_t seg = std::min<std::int64_t>(remaining, kMaxTcpPayloadBytes);
    remaining -= seg;
    const core::TcpFlags flags{.ack = true, .psh = remaining == 0};
    emit_out(conn.tuple, conn.peer, at, seg, flags);
    ++segments;
    // Delayed ACK: peer acknowledges every second segment (and the last).
    if (ack_inbound && (segments % 2 == 0 || remaining == 0)) {
      emit_in(conn.tuple.reversed(), conn.peer, at + ack_delay, 0, core::TcpFlags{.ack = true});
    }
    if (remaining > 0) at += gap;
  }
  return at;
}

TimePoint Wire::receive(const Connection& conn, core::DataSize payload, TimePoint start,
                        Duration gap, bool ack_outbound) {
  if (mux_ != nullptr) {
    mux_->app_receive(conn.tuple, self_, conn.peer, payload.count_bytes(), start, gap);
    return scripted_last_segment(start, payload.count_bytes(), gap);
  }
  std::int64_t remaining = payload.count_bytes();
  TimePoint at = start;
  int segments = 0;
  const Duration ack_delay = Duration::micros(80);
  const core::FiveTuple from_peer = conn.tuple.reversed();
  while (remaining > 0) {
    const std::int64_t seg = std::min<std::int64_t>(remaining, kMaxTcpPayloadBytes);
    remaining -= seg;
    const core::TcpFlags flags{.ack = true, .psh = remaining == 0};
    emit_in(from_peer, conn.peer, at, seg, flags);
    ++segments;
    if (ack_outbound && (segments % 2 == 0 || remaining == 0)) {
      emit_out(conn.tuple, conn.peer, at + ack_delay, 0, core::TcpFlags{.ack = true});
    }
    if (remaining > 0) at += gap;
  }
  return at;
}

TimePoint Wire::open(const Connection& conn, TimePoint start, Duration rtt) {
  if (mux_ != nullptr) {
    mux_->open(conn.tuple, self_, conn.peer, start);
    return start + rtt;
  }
  emit_out(conn.tuple, conn.peer, start, 0, core::TcpFlags{.syn = true});
  emit_in(conn.tuple.reversed(), conn.peer, start + rtt / 2, 0,
          core::TcpFlags{.syn = true, .ack = true});
  emit_out(conn.tuple, conn.peer, start + rtt, 0, core::TcpFlags{.ack = true});
  return start + rtt;
}

TimePoint Wire::open_inbound(const Connection& conn, TimePoint start, Duration rtt) {
  if (mux_ != nullptr) {
    mux_->open_inbound(conn.tuple, self_, conn.peer, start);
    return start + rtt;
  }
  // The peer initiates: its SYN travels on the reverse (peer -> self) path.
  emit_in(conn.tuple.reversed(), conn.peer, start, 0, core::TcpFlags{.syn = true});
  emit_out(conn.tuple, conn.peer, start + rtt / 2, 0, core::TcpFlags{.syn = true, .ack = true});
  emit_in(conn.tuple.reversed(), conn.peer, start + rtt, 0, core::TcpFlags{.ack = true});
  return start + rtt;
}

void Wire::close(const Connection& conn, TimePoint start, Duration rtt) {
  if (mux_ != nullptr) {
    mux_->app_close(conn.tuple, self_, conn.peer, start);
    return;
  }
  emit_out(conn.tuple, conn.peer, start, 0, core::TcpFlags{.ack = true, .fin = true});
  emit_in(conn.tuple.reversed(), conn.peer, start + rtt / 2, 0,
          core::TcpFlags{.ack = true, .fin = true});
  emit_out(conn.tuple, conn.peer, start + rtt, 0, core::TcpFlags{.ack = true});
}

}  // namespace fbdcsim::services
