#include "fbdcsim/services/backend.h"

#include <algorithm>

#include "fbdcsim/services/cache.h"
#include "fbdcsim/services/hadoop.h"
#include "fbdcsim/services/web.h"

namespace fbdcsim::services {

namespace {
using core::DataSize;
using core::Duration;
using core::HostRole;
using core::TimePoint;

DataSize lognormal_size(core::LogNormal& dist, core::RngStream& rng, std::int64_t floor_bytes) {
  return DataSize::bytes(
      std::max(floor_bytes, static_cast<std::int64_t>(dist.sample(rng))));
}
}  // namespace

// ---------------------------------------------------------------------------
// Multifeed
// ---------------------------------------------------------------------------

MultifeedModel::MultifeedModel(const topology::Fleet& fleet, core::HostId self,
                               const ServiceMix& mix, core::RngStream rng)
    : fleet_{&fleet},
      self_{self},
      mix_{&mix},
      rng_{rng},
      peers_{fleet, self},
      conns_{fleet, self},
      response_size_{static_cast<double>(mix.multifeed.response_median.count_bytes()),
                     mix.multifeed.response_sigma} {}

void MultifeedModel::start(sim::Simulator& sim, TrafficSink& sink) {
  sim_ = &sim;
  wire_ = std::make_unique<Wire>(sim, sink, self_);
  schedule_next_request();
}

void MultifeedModel::schedule_next_request() {
  const double rate = mix_->multifeed.requests_served_per_sec;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    const auto web = mix_->load_balancing_enabled
                         ? peers_.pick(HostRole::kWeb, Scope::kSameCluster, rng_)
                         : peers_.pick_skewed(HostRole::kWeb, Scope::kSameCluster, rng_);
    if (web) {
      Connection& conn = conns_.pooled_inbound(*web, core::ports::kMultifeed);
      const TimePoint got = wire_->receive(conn, mix_->web.multifeed_request, sim_->now());
      const DataSize resp = lognormal_size(response_size_, rng_, 64);
      wire_->send(conn, resp, got + Duration::micros(250));
    }
    schedule_next_request();
  });
}

// ---------------------------------------------------------------------------
// SLB
// ---------------------------------------------------------------------------

SlbModel::SlbModel(const topology::Fleet& fleet, core::HostId self, const ServiceMix& mix,
                   core::RngStream rng)
    : fleet_{&fleet},
      self_{self},
      mix_{&mix},
      rng_{rng},
      peers_{fleet, self},
      conns_{fleet, self},
      page_size_{static_cast<double>(mix.web.slb_response_mean.count_bytes()),
                 mix.web.slb_response_sigma} {}

void SlbModel::start(sim::Simulator& sim, TrafficSink& sink) {
  sim_ = &sim;
  wire_ = std::make_unique<Wire>(sim, sink, self_);
  schedule_next_request();
}

void SlbModel::schedule_next_request() {
  const double rate = mix_->slb.user_requests_per_sec;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    // Forward a user request to a Web server; the page comes back after
    // the Web tier's fan-out completes (a few ms).
    const auto web = mix_->load_balancing_enabled
                         ? peers_.pick(HostRole::kWeb, Scope::kSameCluster, rng_)
                         : peers_.pick_skewed(HostRole::kWeb, Scope::kSameCluster, rng_);
    if (web) {
      Connection& conn = conns_.pooled(*web, core::ports::kHttp);
      const TimePoint sent = wire_->send(conn, mix_->slb.request_size, sim_->now());
      const DataSize page = lognormal_size(page_size_, rng_, 256);
      wire_->receive(conn, page, sent + Duration::millis(2) +
                                     Duration::micros(static_cast<std::int64_t>(
                                         rng_.exponential(1500.0))));
    }
    schedule_next_request();
  });
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

DatabaseModel::DatabaseModel(const topology::Fleet& fleet, core::HostId self,
                             const ServiceMix& mix, core::RngStream rng)
    : fleet_{&fleet},
      self_{self},
      mix_{&mix},
      rng_{rng},
      peers_{fleet, self},
      conns_{fleet, self},
      response_size_{static_cast<double>(mix.database.response_median.count_bytes()),
                     mix.database.response_sigma} {}

void DatabaseModel::start(sim::Simulator& sim, TrafficSink& sink) {
  sim_ = &sim;
  wire_ = std::make_unique<Wire>(sim, sink, self_);
  schedule_next_query();
  schedule_next_replication();
}

void DatabaseModel::schedule_next_query() {
  const double rate = mix_->database.queries_served_per_sec;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    // Queries come from cache leaders in this DC and beyond.
    const Scope scope = rng_.bernoulli(0.6) ? Scope::kSameDatacenter : Scope::kOtherDatacenters;
    const auto leader = peers_.pick(HostRole::kCacheLeader, scope, rng_);
    if (leader) {
      Connection& conn = conns_.pooled_inbound(*leader, core::ports::kMysql);
      const TimePoint got = wire_->receive(conn, mix_->cache_leader.db_op_size, sim_->now());
      const DataSize resp = lognormal_size(response_size_, rng_, 128);
      wire_->send(conn, resp, got + Duration::micros(500));
    }
    schedule_next_query();
  });
}

void DatabaseModel::schedule_next_replication() {
  // Replica set: fixed small group spanning cluster, datacenter, and a
  // remote site (standard MySQL replication topology).
  if (replica_peers_.empty()) {
    core::RngStream setup = rng_.fork("replicas");
    for (const auto& [scope, count] :
         {std::pair{Scope::kSameClusterOtherRack, std::size_t{2}},
          std::pair{Scope::kSameDatacenterOtherCluster, std::size_t{2}},
          std::pair{Scope::kOtherDatacenters, std::size_t{2}}}) {
      const auto picked = peers_.pick_set(HostRole::kDatabase, scope, count, setup);
      replica_peers_.insert(replica_peers_.end(), picked.begin(), picked.end());
    }
  }
  const DatabaseParams& p = mix_->database;
  // Replication rate chosen so replication is the configured fraction of
  // outbound bytes.
  const double resp_bytes =
      p.queries_served_per_sec * static_cast<double>(p.response_median.count_bytes()) * 1.8;
  const double repl_bytes =
      resp_bytes * p.replication_bytes_fraction / (1.0 - p.replication_bytes_fraction);
  const double rate = repl_bytes / static_cast<double>(p.replication_message.count_bytes());
  if (rate <= 0.0) return;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / rate)), [this] {
    // Table 3 DB row: bytes split roughly evenly between cluster, DC, and
    // inter-DC destinations (binlog shipping to intermediate and remote
    // replicas).
    if (!replica_peers_.empty()) {
      const core::HostId peer = replica_peers_[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(replica_peers_.size()) - 1))];
      Connection& conn = conns_.pooled(peer, core::ports::kMysql);
      wire_->send(conn, mix_->database.replication_message, sim_->now());
    }
    schedule_next_replication();
  });
}

// ---------------------------------------------------------------------------
// Service hosts
// ---------------------------------------------------------------------------

ServiceHostModel::ServiceHostModel(const topology::Fleet& fleet, core::HostId self,
                                   const ServiceMix& mix, core::RngStream rng)
    : fleet_{&fleet}, self_{self}, mix_{&mix}, rng_{rng}, peers_{fleet, self},
      conns_{fleet, self} {}

void ServiceHostModel::start(sim::Simulator& sim, TrafficSink& sink) {
  sim_ = &sim;
  wire_ = std::make_unique<Wire>(sim, sink, self_);
  schedule_next_message();
}

void ServiceHostModel::schedule_next_message() {
  const services::ServiceParams& p = mix_->service;
  sim_->schedule_after(Duration::from_seconds(rng_.exponential(1.0 / p.messages_per_sec)),
                       [this] {
    // Service clusters exhibit a mixed pattern between the extremes
    // (§4.3, Table 3 Svc row): some rack locality, cluster-dominated,
    // with real DC and inter-DC components.
    const services::ServiceParams& p2 = mix_->service;
    const double u = rng_.uniform();
    Scope scope = Scope::kOtherDatacenters;
    if (u < p2.rack_weight) {
      scope = Scope::kSameRack;
    } else if (u < p2.rack_weight + p2.cluster_weight) {
      scope = Scope::kSameClusterOtherRack;
    } else if (u < p2.rack_weight + p2.cluster_weight + p2.dc_weight) {
      scope = Scope::kSameDatacenterOtherCluster;
    }
    const auto peer = peers_.pick(HostRole::kService, scope, rng_);
    if (peer) {
      Connection& conn = conns_.pooled(*peer, core::ports::kSlb);
      const TimePoint sent = wire_->send(conn, p2.message, sim_->now());
      wire_->receive(conn, DataSize::bytes(300), sent + Duration::micros(400));
    }
    schedule_next_message();
  });
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<TrafficModel> make_model(const topology::Fleet& fleet, core::HostId host,
                                         const ServiceMix& mix, core::RngStream rng) {
  switch (fleet.host(host).role) {
    case HostRole::kWeb:
      return std::make_unique<WebServerModel>(fleet, host, mix, rng);
    case HostRole::kCacheFollower:
      return std::make_unique<CacheFollowerModel>(fleet, host, mix, rng);
    case HostRole::kCacheLeader:
      return std::make_unique<CacheLeaderModel>(fleet, host, mix, rng);
    case HostRole::kHadoop:
      return std::make_unique<HadoopModel>(fleet, host, mix, rng);
    case HostRole::kMultifeed:
      return std::make_unique<MultifeedModel>(fleet, host, mix, rng);
    case HostRole::kSlb:
      return std::make_unique<SlbModel>(fleet, host, mix, rng);
    case HostRole::kDatabase:
      return std::make_unique<DatabaseModel>(fleet, host, mix, rng);
    case HostRole::kService:
      return std::make_unique<ServiceHostModel>(fleet, host, mix, rng);
  }
  return nullptr;
}

}  // namespace fbdcsim::services
