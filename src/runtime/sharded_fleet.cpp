#include "fbdcsim/runtime/sharded_fleet.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <string>

#include "fbdcsim/telemetry/telemetry.h"

namespace fbdcsim::runtime {

ShardedFleetRunner::ShardedFleetRunner(const workload::FleetFlowGenerator& gen,
                                       ThreadPool& pool, ShardOptions options)
    : gen_{&gen}, pool_{&pool}, options_{options} {
  if (options_.shard_size == 0) options_.shard_size = 1;
}

std::size_t ShardedFleetRunner::num_hosts() const { return gen_->fleet().hosts().size(); }

std::size_t ShardedFleetRunner::num_shards() const {
  return (num_hosts() + options_.shard_size - 1) / options_.shard_size;
}

void ShardedFleetRunner::stream(const workload::FleetFlowGenerator::Visit& sink) const {
  FBDCSIM_T_SPAN(stream_span, "fleet.stream");
  const auto& hosts = gen_->fleet().hosts();
  const std::size_t n = hosts.size();
  // Empty fleet: explicitly nothing to stream; the pool is never touched.
  if (n == 0) return;
  const std::size_t shard = options_.shard_size;
  const std::size_t nshards = (n + shard - 1) / shard;
  std::size_t window = options_.max_buffered_shards != 0
                           ? options_.max_buffered_shards
                           : 2 * static_cast<std::size_t>(pool_->size());
  window = std::max<std::size_t>(window, 1);

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::unique_ptr<std::vector<core::FlowRecord>>> ready;
    std::exception_ptr error;      // first worker failure
    std::size_t next_emit{0};      // shards already handed to the sink
    std::size_t finished{0};       // tasks done, success or failure
  } st;
  st.ready.resize(nshards);

  std::size_t submitted = 0;

  // Hands every consecutively completed shard to the sink, in order. Runs
  // on the calling thread only; sink exceptions escape to the caller.
  const auto drain_ready = [&] {
    while (true) {
      std::unique_ptr<std::vector<core::FlowRecord>> buf;
      {
        std::lock_guard<std::mutex> lk{st.mu};
        if (st.error || st.next_emit >= nshards || st.ready[st.next_emit] == nullptr) {
          return;
        }
        buf = std::move(st.ready[st.next_emit]);
      }
      for (const core::FlowRecord& f : *buf) sink(f);
      std::lock_guard<std::mutex> lk{st.mu};
      ++st.next_emit;
    }
  };

  std::exception_ptr caller_error;
  try {
    for (std::size_t i = 0; i < nshards; ++i) {
      // Throttle: keep at most `window` shards in flight beyond the
      // consumer, draining completed shards while we wait.
      for (;;) {
        drain_ready();
        std::unique_lock<std::mutex> lk{st.mu};
        if (st.error || i - st.next_emit < window) break;
        st.cv.wait(lk, [&] { return st.error || st.ready[st.next_emit] != nullptr; });
      }
      {
        std::lock_guard<std::mutex> lk{st.mu};
        if (st.error) break;
      }
      const std::size_t lo = i * shard;
      const std::size_t hi = std::min(n, lo + shard);
      pool_->post([&st, &hosts, gen = gen_, lo, hi, i] {
        FBDCSIM_T_SPAN2(shard_span, "fleet.shard", std::to_string(i));
        auto buf = std::make_unique<std::vector<core::FlowRecord>>();
        std::exception_ptr err;
        try {
          for (std::size_t h = lo; h < hi; ++h) {
            gen->generate_for_host(hosts[h].id,
                                   [&](const core::FlowRecord& f) { buf->push_back(f); });
          }
        } catch (...) {
          err = std::current_exception();
        }
        // Notify under the lock: the caller destroys `st` as soon as the
        // final-wait predicate holds, so signalling after unlock would race
        // the condition variable's destruction.
        std::lock_guard<std::mutex> lk{st.mu};
        if (err) {
          if (!st.error) st.error = err;
        } else {
          st.ready[i] = std::move(buf);
        }
        ++st.finished;
        st.cv.notify_all();
      });
      ++submitted;
    }

    for (;;) {
      drain_ready();
      std::unique_lock<std::mutex> lk{st.mu};
      if (st.error || st.next_emit >= submitted) break;
      st.cv.wait(lk, [&] { return st.error || st.ready[st.next_emit] != nullptr; });
    }
  } catch (...) {
    caller_error = std::current_exception();
  }

  // The tasks reference this frame; never unwind past them.
  {
    std::unique_lock<std::mutex> lk{st.mu};
    st.cv.wait(lk, [&] { return st.finished == submitted; });
    if (!caller_error && st.error) caller_error = st.error;
  }
  if (caller_error) std::rethrow_exception(caller_error);
}

std::vector<core::FlowRecord> ShardedFleetRunner::collect_flows() const {
  std::vector<core::FlowRecord> out;
  stream([&](const core::FlowRecord& f) { out.push_back(f); });
  return out;
}

}  // namespace fbdcsim::runtime
