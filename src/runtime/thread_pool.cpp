#include "fbdcsim/runtime/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <utility>

namespace fbdcsim::runtime {

int env_thread_count() {
  if (const char* env = std::getenv("FBDCSIM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<int>(v);
    }
    std::fprintf(stderr,
                 "FBDCSIM_THREADS='%s' is not a positive integer; "
                 "using hardware concurrency instead\n",
                 env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int workers) {
  const int n = std::max(1, workers);
  // Enough backlog that posters rarely stall, small enough that a runaway
  // producer is throttled rather than buffered without bound.
  max_queue_ = std::max<std::size_t>(static_cast<std::size_t>(n) * 4, 64);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk{mu_};
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lk{mu_};
    space_ready_.wait(lk, [this] { return queue_.size() < max_queue_ || stopping_; });
    if (stopping_) return;  // racing a destructor; drop the task
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk{mu_};
      task_ready_.wait(lk, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_ready_.notify_one();
    task();
  }
}

void ThreadPool::parallel_for_each(std::size_t count,
                                   const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  struct BatchState {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
    std::size_t error_index;
  } state;
  state.remaining = count;
  state.error_index = std::numeric_limits<std::size_t>::max();

  for (std::size_t i = 0; i < count; ++i) {
    post([i, &fn, &state] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk{state.mu};
        if (i < state.error_index) {
          state.error = std::current_exception();
          state.error_index = i;
        }
      }
      // Notify while holding the lock: the waiting caller destroys `state`
      // as soon as it reacquires the mutex, so signalling after unlock
      // would race the condition variable's destruction.
      std::lock_guard<std::mutex> lk{state.mu};
      if (--state.remaining == 0) state.done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lk{state.mu};
  state.done.wait(lk, [&state] { return state.remaining == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace fbdcsim::runtime
