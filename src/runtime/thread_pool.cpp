#include "fbdcsim/runtime/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <utility>

#include "fbdcsim/telemetry/telemetry.h"

#if FBDCSIM_TELEMETRY_ENABLED
#include <chrono>
#endif

namespace fbdcsim::runtime {

#if FBDCSIM_TELEMETRY_ENABLED
namespace {
std::int64_t wall_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace
#endif

int env_thread_count() {
  if (const char* env = std::getenv("FBDCSIM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<int>(v);
    }
    std::fprintf(stderr,
                 "FBDCSIM_THREADS='%s' is not a positive integer; "
                 "using hardware concurrency instead\n",
                 env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int workers) {
  const int n = std::max(1, workers);
  FBDCSIM_T_GAUGE(workers_gauge, "runtime.pool.workers", Wall);
  FBDCSIM_T_MAX(workers_gauge, n);
  // Enough backlog that posters rarely stall, small enough that a runaway
  // producer is throttled rather than buffered without bound.
  max_queue_ = std::max<std::size_t>(static_cast<std::size_t>(n) * 4, 64);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk{mu_};
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::post(std::function<void()> task) {
  QueuedTask queued{std::move(task), 0};
#if FBDCSIM_TELEMETRY_ENABLED
  FBDCSIM_T_COUNTER(posted, "runtime.pool.tasks_posted", Sim);
  FBDCSIM_T_GAUGE(queue_peak, "runtime.pool.queue_peak", Wall);
  if (telemetry::Telemetry::enabled()) queued.enqueue_us = wall_us();
#endif
  {
    std::unique_lock<std::mutex> lk{mu_};
    space_ready_.wait(lk, [this] { return queue_.size() < max_queue_ || stopping_; });
    if (stopping_) return;  // racing a destructor; drop the task
    queue_.push_back(std::move(queued));
#if FBDCSIM_TELEMETRY_ENABLED
    FBDCSIM_T_ADD(posted, 1);
    FBDCSIM_T_MAX(queue_peak, static_cast<std::int64_t>(queue_.size()));
#endif
  }
  task_ready_.notify_one();
}

void ThreadPool::worker_loop() {
#if FBDCSIM_TELEMETRY_ENABLED
  FBDCSIM_T_COUNTER(completed, "runtime.pool.tasks_completed", Sim);
  FBDCSIM_T_HISTOGRAM(wait_hist, "runtime.pool.task_wait_us", Wall);
  FBDCSIM_T_HISTOGRAM(run_hist, "runtime.pool.task_run_us", Wall);
  std::int64_t busy_us = 0;
#endif
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lk{mu_};
      task_ready_.wait(lk, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) break;  // stopping, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_ready_.notify_one();
#if FBDCSIM_TELEMETRY_ENABLED
    std::int64_t started_us = 0;
    if (telemetry::Telemetry::enabled()) {
      started_us = wall_us();
      if (task.enqueue_us > 0) FBDCSIM_T_OBSERVE(wait_hist, started_us - task.enqueue_us);
    }
#endif
    task.fn();
#if FBDCSIM_TELEMETRY_ENABLED
    if (started_us > 0) {
      const std::int64_t ran_us = wall_us() - started_us;
      FBDCSIM_T_OBSERVE(run_hist, ran_us);
      FBDCSIM_T_ADD(completed, 1);
      busy_us += ran_us;
    }
#endif
  }
#if FBDCSIM_TELEMETRY_ENABLED
  // Per-worker busy time, recorded when the pool shuts down; the spread
  // across workers is the pool's load balance.
  FBDCSIM_T_HISTOGRAM(busy_hist, "runtime.pool.worker_busy_us", Wall);
  FBDCSIM_T_OBSERVE(busy_hist, busy_us);
#endif
}

void ThreadPool::parallel_for_each(std::size_t count,
                                   const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  struct BatchState {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
    std::size_t error_index;
  } state;
  state.remaining = count;
  state.error_index = std::numeric_limits<std::size_t>::max();

  for (std::size_t i = 0; i < count; ++i) {
    post([i, &fn, &state] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk{state.mu};
        if (i < state.error_index) {
          state.error = std::current_exception();
          state.error_index = i;
        }
      }
      // Notify while holding the lock: the waiting caller destroys `state`
      // as soon as it reacquires the mutex, so signalling after unlock
      // would race the condition variable's destruction.
      std::lock_guard<std::mutex> lk{state.mu};
      if (--state.remaining == 0) state.done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lk{state.mu};
  state.done.wait(lk, [&state] { return state.remaining == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace fbdcsim::runtime
