#include "fbdcsim/transport/mux.h"

#include <algorithm>
#include <functional>

#include "fbdcsim/core/rng.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/topology/path_delay.h"
#include "fbdcsim/telemetry/flow_ledger.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/telemetry/timeseries.h"
#include "fbdcsim/telemetry/tracepoint.h"

namespace fbdcsim::transport {

namespace {
using core::DataSize;
using core::Duration;
using core::TimePoint;
}  // namespace

TransportMux::TransportMux(sim::Simulator& sim, const topology::Fleet& fleet,
                           services::TrafficSink& sink, TcpParams params,
                           const faults::FaultPlan* faults, std::uint64_t /*seed*/)
    : sim_{&sim}, fleet_{&fleet}, sink_{&sink}, params_{params}, faults_{faults} {
  faults_enabled_ = faults_ != nullptr && faults_->enabled();
}

TransportMux::~TransportMux() = default;

std::int64_t TransportMux::live_connections() const { return pool_.live(); }

void TransportMux::register_probes(telemetry::TimeSeriesProbe& probe,
                                   std::int64_t stride) const {
  probe.add_gauge(
      "transport.active_connections", [this] { return pool_.live(); }, stride);
  const auto sum_out = [this](auto field) {
    std::int64_t total = 0;
    for (const Slot& s : slots_) {
      if (s.live) total += field(s.conn->out);
    }
    return total;
  };
  probe.add_gauge(
      "transport.cwnd_bytes",
      [sum_out] { return sum_out([](const HalfStream& h) { return h.cwnd; }); }, stride);
  probe.add_gauge(
      "transport.ssthresh_bytes",
      [sum_out] { return sum_out([](const HalfStream& h) { return h.ssthresh; }); },
      stride);
  probe.add_gauge(
      "transport.inflight_bytes",
      [sum_out] { return sum_out([](const HalfStream& h) { return h.inflight(); }); },
      stride);
  // DCTCP mark-fraction EWMA, summed over live out-halves in Q16 units
  // (divide a sample by live connections * kDctcpAlphaUnit for the mean
  // alpha). Identically zero under cc = kNewReno.
  probe.add_gauge(
      "transport.alpha_q16",
      [sum_out] { return sum_out([](const HalfStream& h) { return h.alpha_q16; }); },
      stride);
  probe.add_gauge("transport.rto_pending", [this] {
    std::int64_t pending = 0;
    for (const Slot& s : slots_) {
      if (!s.live) continue;
      pending += (s.conn->out.rto_scheduled ? 1 : 0) + (s.conn->in.rto_scheduled ? 1 : 0);
    }
    return pending;
  }, stride);
}

const TcpConnection* TransportMux::find_connection(const core::FiveTuple& tuple) const {
  const auto it = by_tuple_.find(tuple);
  if (it == by_tuple_.end()) return nullptr;
  const std::uint32_t idx = (it->second >> 8) - 1;
  if (idx >= slots_.size() || !slots_[idx].live) return nullptr;
  return slots_[idx].conn;
}

TcpConnection* TransportMux::resolve(std::uint32_t tag) {
  // Tags encode (slot + 1) so no live connection's tag is 0 — tag 0 marks
  // scripted packets, which the mux must ignore.
  if (tag < (1u << 8)) return nullptr;
  const std::uint32_t idx = (tag >> 8) - 1;
  if (idx >= slots_.size()) return nullptr;
  Slot& s = slots_[idx];
  if (!s.live || s.gen != static_cast<std::uint8_t>(tag & 0xFFu)) return nullptr;
  return s.conn;
}

TcpConnection& TransportMux::ensure(const core::FiveTuple& tuple, core::HostId self,
                                    core::HostId peer, ConnState initial) {
  if (const auto it = by_tuple_.find(tuple); it != by_tuple_.end()) {
    if (TcpConnection* c = resolve(it->second)) return *c;
    by_tuple_.erase(it);  // stale mapping from a recycled connection
  }
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  Slot& s = slots_[idx];
  s.conn = pool_.create();
  s.live = true;
  TcpConnection& c = *s.conn;
  c.tuple = tuple;
  c.self = self;
  c.peer = peer;
  c.tag = ((idx + 1) << 8) | s.gen;
  c.tuple_hash = std::hash<core::FiveTuple>{}(tuple);
  c.state = initial;

  if (params_.rtt_mode == RttMode::kTopology) {
    // Fabric-derived delay: hop count along the 4-post path times the
    // per-hop latency (plus the inter-site backbone once where it applies).
    c.beyond = topology::one_way_beyond_rsw(*fleet_, self, peer, params_.per_hop_one_way,
                                            params_.inter_site_one_way);
  } else {
    switch (fleet_->locality(self, peer)) {
      case core::Locality::kIntraRack:
        c.beyond = Duration::nanos(0);
        break;
      case core::Locality::kIntraCluster:
        c.beyond = params_.cluster_one_way;
        break;
      case core::Locality::kIntraDatacenter:
        c.beyond = params_.datacenter_one_way;
        break;
      case core::Locality::kInterDatacenter:
        c.beyond = params_.interdc_one_way;
        break;
    }
  }
  c.reply_delay = 2 * c.beyond + params_.host_delay;

  const std::int64_t iw =
      static_cast<std::int64_t>(params_.initial_window_segments) * params_.mss_bytes;
  for (HalfStream* h : {&c.out, &c.in}) {
    h->cwnd = iw;
    h->ssthresh = params_.max_cwnd.count_bytes();
    h->alpha_q16 =
        params_.cc == CongestionControl::kDctcp ? params_.dctcp_initial_alpha : 0;
  }

  by_tuple_.emplace(tuple, c.tag);
  ++stats_.connections_created;
  FBDCSIM_T_COUNTER(conns, "transport.connections", Sim);
  FBDCSIM_T_ADD(conns, 1);
  if (flow_ledger_ != nullptr) {
    // Per-direction feedback-loop RTTs match the substitution model: the
    // out half's ACKs return after reply_delay, the in half's after one
    // beyond-RSW leg plus the host turnaround. The NIC is the bottleneck
    // (default port rate equals it), in bytes per second for ideal-FCT math.
    flow_ledger_->on_birth(c.tag, sim_->now().count_nanos(), tuple,
                           fleet_->host(self).role, fleet_->host(peer).role,
                           fleet_->locality(self, peer), c.reply_delay.count_nanos(),
                           (c.beyond + params_.host_delay).count_nanos(),
                           params_.nic_rate.count_bits_per_sec() / 8);
  }
  return c;
}

void TransportMux::release(TcpConnection& c) {
  if (flow_ledger_ != nullptr) {
    flow_ledger_->on_release(c.tag, sim_->now().count_nanos());
  }
  const std::uint32_t idx = (c.tag >> 8) - 1;
  by_tuple_.erase(c.tuple);
  Slot& s = slots_[idx];
  pool_.destroy(s.conn);
  s.conn = nullptr;
  s.live = false;
  s.gen = static_cast<std::uint8_t>(s.gen + 1);
  free_slots_.push_back(idx);
  ++stats_.connections_destroyed;
}

Duration TransportMux::rto_for(const TcpConnection& c, const HalfStream& h) const {
  // Static RTO estimate: 4x the fixed path RTT (propagation + endpoint
  // turnaround + serialization slop), floored at min_rto, doubled per
  // backoff step. No SRTT tracking — queueing in this fabric is bounded
  // well below min_rto, so the floor dominates except inter-DC.
  const Duration path_rtt = 2 * (c.beyond + params_.host_delay) + Duration::micros(100);
  const std::int64_t base =
      std::max(params_.min_rto.count_nanos(), 4 * path_rtt.count_nanos());
  return Duration::nanos(base << std::min(h.backoff, params_.max_backoff));
}

bool TransportMux::path_lost(TcpConnection& c) {
  if (!faults_enabled_) return false;
  const std::uint64_t key =
      core::splitmix64(c.tuple_hash ^ core::splitmix64(++c.loss_serial));
  if (!faults_->path_loss(key)) return false;
  ++stats_.path_loss_drops;
  FBDCSIM_T_COUNTER(lost, "transport.path_loss_drops", Sim);
  FBDCSIM_T_ADD(lost, 1);
  return true;
}

void TransportMux::emit_now(TcpConnection& c, Dir dir, std::int64_t payload,
                            core::TcpFlags flags, std::int64_t seq, std::int64_t ackno,
                            std::int64_t sack_lo, std::int64_t sack_hi) {
  core::SimPacket pkt;
  pkt.header.timestamp = sim_->now();
  pkt.header.tuple = dir == Dir::kOut ? c.tuple : c.tuple.reversed();
  pkt.header.payload_bytes = payload;
  // A SACK block rides as a TCP option, so the carrying ACK's frame grows.
  // Only kSack receivers with buffered out-of-order data ever attach one.
  pkt.header.frame_bytes = core::wire::tcp_frame_bytes(payload) +
                           (sack_hi > sack_lo ? core::wire::kTcpSackOptionBytes : 0);
  pkt.header.flags = flags;
  pkt.src = dir == Dir::kOut ? c.self : c.peer;
  pkt.dst = dir == Dir::kOut ? c.peer : c.self;
  pkt.flow_tag = c.tag;
  pkt.seq = static_cast<std::uint64_t>(seq);
  pkt.ack = static_cast<std::uint64_t>(ackno);
  pkt.sack_lo = sack_lo;
  pkt.sack_hi = sack_hi;
  // DCTCP data segments are ECN-capable so switches may mark instead of
  // drop; ACKs and control packets stay non-ECT (RFC 8257). NewReno leaves
  // everything non-ECT — a configured switch threshold then never fires.
  if (params_.cc == CongestionControl::kDctcp && payload > 0) pkt.ecn = core::Ecn::kEct;
  if (dir == Dir::kOut) {
    sink_->host_send(pkt);
  } else {
    sink_->host_receive(pkt);
  }
}

// ---- DemandSink ----

void TransportMux::open(const core::FiveTuple& tuple, core::HostId self, core::HostId peer,
                        TimePoint start) {
  TcpConnection& c = ensure(tuple, self, peer, ConnState::kClosed);
  const std::uint32_t tag = c.tag;
  sim_->schedule_at(start, [this, tag] { on_ctrl(tag, Ctrl::kBeginOpen); });
}

void TransportMux::open_inbound(const core::FiveTuple& tuple, core::HostId self,
                                core::HostId peer, TimePoint start) {
  TcpConnection& c = ensure(tuple, self, peer, ConnState::kClosed);
  const std::uint32_t tag = c.tag;
  sim_->schedule_at(start, [this, tag] { on_ctrl(tag, Ctrl::kBeginInbound); });
}

void TransportMux::app_send(const core::FiveTuple& tuple, core::HostId self,
                            core::HostId peer, std::int64_t bytes, TimePoint start,
                            Duration pace_gap) {
  if (bytes <= 0) return;
  // Connections first seen carrying data are pooled: their handshake
  // predates the run, so they start established (no SYN on the wire).
  TcpConnection& c = ensure(tuple, self, peer, ConnState::kEstablished);
  const std::uint32_t tag = c.tag;
  const std::int64_t gap_ns = pace_gap.count_nanos();
  sim_->schedule_at(start, [this, tag, bytes, gap_ns] {
    on_demand(tag, Dir::kOut, bytes, Duration::nanos(gap_ns));
  });
}

void TransportMux::app_receive(const core::FiveTuple& tuple, core::HostId self,
                               core::HostId peer, std::int64_t bytes, TimePoint start,
                               Duration pace_gap) {
  if (bytes <= 0) return;
  TcpConnection& c = ensure(tuple, self, peer, ConnState::kEstablished);
  const std::uint32_t tag = c.tag;
  const std::int64_t gap_ns = pace_gap.count_nanos();
  sim_->schedule_at(start, [this, tag, bytes, gap_ns] {
    on_demand(tag, Dir::kIn, bytes, Duration::nanos(gap_ns));
  });
}

void TransportMux::app_close(const core::FiveTuple& tuple, core::HostId self,
                             core::HostId peer, TimePoint start) {
  TcpConnection& c = ensure(tuple, self, peer, ConnState::kEstablished);
  const std::uint32_t tag = c.tag;
  sim_->schedule_at(start, [this, tag] { on_ctrl(tag, Ctrl::kClose); });
}

// ---- connection machinery ----

void TransportMux::establish(TcpConnection& c) {
  c.state = ConnState::kEstablished;
  c.hs_tries = 0;
  if (flow_ledger_ != nullptr) {
    flow_ledger_->on_established(c.tag, sim_->now().count_nanos());
  }
  ++stats_.handshakes_completed;
  FBDCSIM_T_COUNTER(hs, "transport.handshakes", Sim);
  FBDCSIM_T_ADD(hs, 1);
  pump(c, Dir::kOut);
  pump(c, Dir::kIn);
  if (c.close_pending) try_close(c);
}

void TransportMux::on_ctrl(std::uint32_t tag, Ctrl ctrl) {
  TcpConnection* cp = resolve(tag);
  if (cp == nullptr) return;
  TcpConnection& c = *cp;
  switch (ctrl) {
    case Ctrl::kBeginOpen:
      if (c.state == ConnState::kClosed) {
        c.state = ConnState::kSynSent;
        if (flow_ledger_ != nullptr) {
          flow_ledger_->on_syn(c.tag, sim_->now().count_nanos());
        }
        emit_now(c, Dir::kOut, 0, core::TcpFlags{.syn = true}, 0, 0);
        arm_hs(c);
      }
      break;
    case Ctrl::kBeginInbound:
      if (c.state == ConnState::kClosed) {
        c.state = ConnState::kSynReceived;
        if (flow_ledger_ != nullptr) {
          flow_ledger_->on_syn(c.tag, sim_->now().count_nanos());
        }
        emit_now(c, Dir::kIn, 0, core::TcpFlags{.syn = true}, 0, 0);
        arm_hs(c);
      }
      break;
    case Ctrl::kSynAckIn:
      emit_now(c, Dir::kIn, 0, core::TcpFlags{.syn = true, .ack = true}, 0, 0);
      break;
    case Ctrl::kHsAckIn:
      emit_now(c, Dir::kIn, 0, core::TcpFlags{.ack = true}, 0, 0);
      break;
    case Ctrl::kFinAckIn:
      emit_now(c, Dir::kIn, 0, core::TcpFlags{.ack = true, .fin = true}, 0,
               c.out.rcv_nxt);
      break;
    case Ctrl::kClose:
      c.close_pending = true;
      try_close(c);
      break;
  }
}

void TransportMux::on_demand(std::uint32_t tag, Dir dir, std::int64_t bytes,
                             Duration pace_gap) {
  TcpConnection* cp = resolve(tag);
  if (cp == nullptr) return;
  HalfStream& h = half(*cp, dir);
  h.demand += bytes;
  h.pace_gap = std::max(pace_gap, Duration::nanos(0));
  stats_.bytes_demanded += bytes;
  if (flow_ledger_ != nullptr) {
    flow_ledger_->on_demand(tag, sim_->now().count_nanos(),
                            static_cast<int>(dir), bytes);
  }
  pump(*cp, dir);
}

void TransportMux::pump(TcpConnection& c, Dir dir) {
  if (c.state != ConnState::kEstablished && c.state != ConnState::kFinWait) return;
  HalfStream& h = half(c, dir);
  if (params_.recovery == LossRecovery::kSack && h.in_recovery) {
    pump_sack_recovery(c, dir);
    return;
  }
  const std::int64_t mss = params_.mss_bytes;
  while (true) {
    if (h.rtx_next >= 0) {
      const std::int64_t seq = h.rtx_next;
      const std::int64_t len = std::min(mss, h.demand - seq);
      h.rtx_next = -1;
      if (len > 0) {
        send_segment(c, dir, seq, len);
        arm_rto(c, dir);
        continue;
      }
    }
    if (h.inflight() >= h.cwnd) break;
    const std::int64_t avail = h.demand - h.snd_nxt;
    if (avail <= 0) break;
    const std::int64_t len = std::min(avail, mss);
    send_segment(c, dir, h.snd_nxt, len);
    h.snd_nxt += len;
    if (h.snd_nxt > h.max_sent) h.max_sent = h.snd_nxt;
    arm_rto(c, dir);
  }
}

void TransportMux::send_sack_selected(TcpConnection& c, Dir dir, const SackNextSeg& ns) {
  HalfStream& h = half(c, dir);
  send_segment(c, dir, ns.seq, ns.len);
  if (ns.is_rtx) {
    if (ns.rescue) {
      // Rule-4 rescue: does not move high_rtx (later blocks may expose
      // real holes above it) and fires at most once per episode.
      h.rescue_done = true;
      ++stats_.sack_rescue_retransmits;
      FBDCSIM_T_COUNTER(rescue, "transport.sack_rescue", Sim);
      FBDCSIM_T_ADD(rescue, 1);
    } else {
      h.high_rtx = std::max(h.high_rtx, ns.seq + ns.len);
    }
    ++stats_.sack_retransmits;
    FBDCSIM_T_COUNTER(sack_rtx, "transport.sack_retransmits", Sim);
    FBDCSIM_T_ADD(sack_rtx, 1);
  } else {
    h.snd_nxt += ns.len;
    if (h.snd_nxt > h.max_sent) h.max_sent = h.snd_nxt;
  }
  arm_rto(c, dir);
}

void TransportMux::pump_sack_recovery(TcpConnection& c, Dir dir) {
  HalfStream& h = half(c, dir);
  const std::int64_t mss = params_.mss_bytes;
  while (sack_pipe(h) < h.cwnd) {
    const SackNextSeg ns = sack_next_seg(h, mss);
    if (ns.seq < 0 || ns.len <= 0) break;
    send_sack_selected(c, dir, ns);
  }
}

void TransportMux::send_segment(TcpConnection& c, Dir dir, std::int64_t seq,
                                std::int64_t len) {
  HalfStream& h = half(c, dir);
  const TimePoint now = sim_->now();
  if (h.tx_clock < now) h.tx_clock = now;
  const TimePoint at = h.tx_clock;
  const Duration serialization = params_.nic_rate.transmission_time(
      DataSize::bytes(core::wire::tcp_frame_bytes(len)));
  h.tx_clock += std::max(serialization, h.pace_gap);

  ++stats_.segments_sent;
  FBDCSIM_T_COUNTER(segs, "transport.segments", Sim);
  FBDCSIM_T_ADD(segs, 1);
  if (seq < h.max_sent) {
    h.retransmitted_bytes += len;
    stats_.bytes_retransmitted += len;
    ++stats_.retransmit_segments;
    // Repair-kind split: inside fast recovery the resend was dupack-driven;
    // otherwise it belongs to a go-back-N stream after a timeout.
    if (h.in_recovery) {
      ++stats_.rtx_dupack_segments;
    } else {
      ++stats_.rtx_rto_segments;
    }
    FBDCSIM_T_COUNTER(rtx, "transport.retransmits", Sim);
    FBDCSIM_T_ADD(rtx, 1);
    if (flow_ledger_ != nullptr) {
      flow_ledger_->on_retransmit(c.tag, now.count_nanos(), static_cast<int>(dir), seq,
                                  len,
                                  h.in_recovery ? telemetry::FlowRtxKind::kDupack
                                                : telemetry::FlowRtxKind::kRto);
    }
  }

  const std::uint32_t tag = c.tag;
  const auto dir8 = static_cast<std::uint8_t>(dir);
  sim_->schedule_at(at, [this, tag, dir8, seq, len] {
    TcpConnection* cp = resolve(tag);
    if (cp == nullptr) return;
    const Dir d = static_cast<Dir>(dir8);
    // Remote (in-half) senders sit beyond the RSW: forward-path loss means
    // the segment never reaches the rack at all.
    if (d == Dir::kIn && path_lost(*cp)) {
      if (flow_ledger_ != nullptr) {
        flow_ledger_->on_drop(tag, sim_->now().count_nanos(), 1, seq, len,
                              telemetry::FlowDropCause::kPathLoss, 0, -1,
                              telemetry::kFaultEpochPathLoss);
      }
      return;
    }
    const bool psh = seq + len >= half(*cp, d).demand;
    emit_now(*cp, d, len, core::TcpFlags{.ack = true, .psh = psh}, seq, 0);
  });
}

void TransportMux::on_ack_at_sender(TcpConnection& c, Dir dir, std::int64_t ackno,
                                    bool ece, std::int64_t sack_lo,
                                    std::int64_t sack_hi) {
  HalfStream& h = half(c, dir);
  const std::int64_t mss = params_.mss_bytes;
  const bool dctcp = params_.cc == CongestionControl::kDctcp;
  const bool sack = params_.recovery == LossRecovery::kSack;
  if (sack && sack_hi > sack_lo) {
    const std::int64_t newly = sack_record(h, sack_lo, sack_hi);
    if (newly > 0) {
      ++stats_.sack_blocks_recorded;
      stats_.sack_bytes += newly;
      FBDCSIM_T_COUNTER(blocks, "transport.sack_blocks", Sim);
      FBDCSIM_T_ADD(blocks, 1);
      FBDCSIM_T_COUNTER(sacked, "transport.sack_bytes", Sim);
      FBDCSIM_T_ADD(sacked, newly);
    }
  }
  if (ackno > h.snd_una) {
    const std::int64_t acked = ackno - h.snd_una;
    if (dctcp) {
      // Per-window mark accounting (RFC 8257 §3.3): every acked byte
      // counts; ECE attributes the bytes this ACK covers as marked.
      h.window_acked_bytes += acked;
      if (ece) h.window_marked_bytes += acked;
      if (ece && !h.cwnd_reduced_this_window && !h.in_recovery) {
        // At most one alpha-scaled reduction per window; loss-triggered
        // recovery supersedes it (the window already halved).
        h.cwnd = dctcp_cwnd_after_mark(h.cwnd, h.alpha_q16, mss);
        h.ssthresh = h.cwnd;
        h.cwnd_reduced_this_window = true;
        ++stats_.dctcp_cwnd_reductions;
        FBDCSIM_T_COUNTER(reductions, "transport.dctcp_reductions", Sim);
        FBDCSIM_T_ADD(reductions, 1);
        if (flow_ledger_ != nullptr) {
          flow_ledger_->on_ecn_reduction(c.tag, sim_->now().count_nanos(),
                                         static_cast<int>(dir), h.cwnd);
        }
      }
    }
    h.snd_una = ackno;
    if (h.snd_nxt < h.snd_una) h.snd_nxt = h.snd_una;  // go-back-N rewind passed by ack
    if (sack) sack_advance(h);
    h.backoff = 0;
    h.rto_deadline = sim_->now() + rto_for(c, h);
    if (h.in_recovery) {
      if (ackno >= h.recover) {
        // Recovery complete: deflate to ssthresh.
        h.in_recovery = false;
        h.dupacks = 0;
        h.cwnd = std::max(mss, std::min(h.ssthresh, params_.max_cwnd.count_bytes()));
        FBDCSIM_T_TRACEPOINT(trace_log_, sim_->now().count_nanos(), FastRtxExit, c.tag,
                             h.cwnd, 0);
        if (flow_ledger_ != nullptr) {
          flow_ledger_->on_recovery_exit(c.tag, sim_->now().count_nanos(),
                                         static_cast<int>(dir));
        }
      } else if (!sack) {
        // NewReno partial ACK: retransmit the next hole, stay in recovery.
        h.rtx_next = ackno;
      }
      // kSack partial ACK: nothing to mark — the scoreboard already knows
      // every hole and the recovery pump below retransmits per sack_pipe.
    } else {
      h.dupacks = 0;
      // A DCTCP window that just reduced holds cwnd for the rest of the
      // window (CWR-style); growth resumes next window. With zero marks
      // this branch is bitwise NewReno.
      if (!(dctcp && h.cwnd_reduced_this_window)) {
        h.cwnd =
            cwnd_after_ack(h.cwnd, h.ssthresh, acked, mss, params_.max_cwnd.count_bytes());
      }
    }
    if (dctcp && ackno >= h.ce_window_end) {
      // Observation window closed (~one RTT of data acked): fold the mark
      // fraction into alpha and open the next window at snd_nxt.
      h.alpha_q16 = dctcp_alpha_update(h.alpha_q16, h.window_marked_bytes,
                                       h.window_acked_bytes, params_.dctcp_gain_shift);
      h.window_acked_bytes = 0;
      h.window_marked_bytes = 0;
      h.ce_window_end = h.snd_nxt;
      h.cwnd_reduced_this_window = false;
    }
    if (flow_ledger_ != nullptr) {
      // After the recovery bookkeeping above, so an episode exit on this
      // ACK lands before the transfer it belongs to closes.
      flow_ledger_->on_acked(c.tag, sim_->now().count_nanos(), static_cast<int>(dir),
                             h.snd_una);
    }
    FBDCSIM_T_HISTOGRAM(cwnd_hist, "transport.cwnd", Sim);
    FBDCSIM_T_OBSERVE(cwnd_hist, h.cwnd / mss);
  } else if (ackno == h.snd_una && h.inflight() > 0) {
    ++h.dupacks;
    if (h.in_recovery) {
      // kSack holds cwnd at ssthresh and lets sack_pipe absorb the dupack
      // (the block recorded above already shrank it); NewReno inflates.
      if (!sack) h.cwnd += mss;
    } else if (sack ? sack_should_enter_recovery(h, params_)
                    : h.dupacks >= params_.dupack_threshold) {
      if (sack) {
        enter_sack_recovery(h, params_);
      } else {
        enter_fast_recovery(h, params_);
      }
      ++stats_.fast_retransmits;
      FBDCSIM_T_COUNTER(fast, "transport.fast_retransmits", Sim);
      FBDCSIM_T_ADD(fast, 1);
      FBDCSIM_T_TRACEPOINT(trace_log_, sim_->now().count_nanos(), FastRtxEnter, c.tag,
                           h.ssthresh, h.inflight());
      if (flow_ledger_ != nullptr) {
        flow_ledger_->on_recovery_enter(c.tag, sim_->now().count_nanos(),
                                        static_cast<int>(dir),
                                        sack ? telemetry::FlowEpisodeKind::kSackRecovery
                                             : telemetry::FlowEpisodeKind::kFastRecovery);
      }
      if (sack) {
        // The fast retransmit itself is unconditional — sack_pipe gates
        // only the rest of the episode (mirrors NewReno's rtx_next mark).
        const SackNextSeg ns = sack_next_seg(h, mss);
        if (ns.seq >= 0 && ns.len > 0 && ns.is_rtx) send_sack_selected(c, dir, ns);
      }
    }
  }
  pump(c, dir);
  if (c.close_pending) try_close(c);
}

void TransportMux::on_data_at_receiver(TcpConnection& c, Dir dir, std::int64_t seq,
                                       std::int64_t len, bool psh, bool ce) {
  HalfStream& h = half(c, dir);
  const std::int64_t before = h.rcv_nxt;
  bool ack_now = receiver_deliver(h, seq, len, psh);
  stats_.bytes_delivered += h.rcv_nxt - before;
  if (ce) {
    // CE-marked segment: remember it for the next ACK's ECE bit and ACK
    // immediately (approximating RFC 8257's ACK-on-CE-state-change rule —
    // it keeps the sender's mark-fraction estimate per-segment tight
    // instead of smeared across delayed-ACK pairs).
    h.ce_pending = true;
    h.segs_since_ack = 0;
    ack_now = true;
    ++stats_.ecn_ce_segments;
  }
  const bool ece = h.ce_pending && ack_now;
  if (ece) {
    h.ce_pending = false;
    ++stats_.ecn_echoed_acks;
    FBDCSIM_T_COUNTER(echoed, "transport.ecn_echoed", Sim);
    FBDCSIM_T_ADD(echoed, 1);
  }
  // kSack receivers attach the block covering the freshest out-of-order
  // data (RFC 2018 first-block rule); {0, 0} — no block — whenever the
  // stream is gapless, which keeps loss-free runs bitwise NewReno.
  SackBlock blk;
  if (params_.recovery == LossRecovery::kSack && ack_now) {
    blk = receiver_sack_block(h, seq, seq + len);
  }
  if (dir == Dir::kOut) {
    // The far receiver acknowledges out-half data; its ACK re-enters the
    // rack after the connection's beyond-RSW round trip.
    if (ack_now) {
      const std::uint32_t tag = c.tag;
      const std::int64_t ackno = h.rcv_nxt;
      const std::int64_t blo = blk.lo;
      const std::int64_t bhi = blk.hi;
      sim_->schedule_after(c.reply_delay, [this, tag, ackno, ece, blo, bhi] {
        TcpConnection* cp = resolve(tag);
        if (cp == nullptr) return;
        emit_now(*cp, Dir::kIn, 0, core::TcpFlags{.ack = true, .ece = ece}, 0, ackno,
                 blo, bhi);
      });
    }
  } else {
    // The modelled host acknowledges in-half data with a real packet.
    if (ack_now) {
      emit_now(c, Dir::kOut, 0, core::TcpFlags{.ack = true, .ece = ece}, 0, h.rcv_nxt,
               blk.lo, blk.hi);
    }
    if (c.close_pending) try_close(c);
  }
}

void TransportMux::arm_rto(TcpConnection& c, Dir dir) {
  HalfStream& h = half(c, dir);
  h.rto_deadline = sim_->now() + rto_for(c, h);
  if (h.rto_scheduled) return;
  h.rto_scheduled = true;
  const std::uint32_t tag = c.tag;
  const auto dir8 = static_cast<std::uint8_t>(dir);
  sim_->schedule_at(h.rto_deadline,
                    [this, tag, dir8] { on_rto_event(tag, static_cast<Dir>(dir8)); });
}

void TransportMux::on_rto_event(std::uint32_t tag, Dir dir) {
  TcpConnection* cp = resolve(tag);
  if (cp == nullptr) return;
  TcpConnection& c = *cp;
  HalfStream& h = half(c, dir);
  h.rto_scheduled = false;
  if (c.state != ConnState::kEstablished && c.state != ConnState::kFinWait) return;
  if (h.snd_una >= h.snd_nxt && h.rtx_next < 0) return;  // everything acked
  if (sim_->now() < h.rto_deadline) {
    // ACKs pushed the deadline forward since this event was scheduled.
    h.rto_scheduled = true;
    const auto dir8 = static_cast<std::uint8_t>(dir);
    sim_->schedule_at(h.rto_deadline,
                      [this, tag, dir8] { on_rto_event(tag, static_cast<Dir>(dir8)); });
    return;
  }
  if (params_.recovery == LossRecovery::kSack) {
    apply_rto_sack(h, params_);  // scoreboard forgotten: go-back-N fallback
  } else {
    apply_rto(h, params_);
  }
  ++stats_.rto_fired;
  FBDCSIM_T_COUNTER(rto, "transport.rto_fired", Sim);
  FBDCSIM_T_ADD(rto, 1);
  FBDCSIM_T_TRACEPOINT(trace_log_, sim_->now().count_nanos(), RtoFired, c.tag, h.cwnd,
                       h.backoff);
  if (flow_ledger_ != nullptr) {
    flow_ledger_->on_rto(c.tag, sim_->now().count_nanos(), static_cast<int>(dir),
                         h.backoff);
  }
  arm_rto(c, dir);
  pump(c, dir);
}

void TransportMux::try_close(TcpConnection& c) {
  if (!c.close_pending || c.state != ConnState::kEstablished) return;
  if (c.out.snd_nxt < c.out.demand || c.out.snd_una < c.out.snd_nxt) return;
  if (c.in.rcv_nxt < c.in.demand) return;
  c.state = ConnState::kFinWait;
  c.hs_tries = 0;
  emit_now(c, Dir::kOut, 0, core::TcpFlags{.ack = true, .fin = true}, 0, c.in.rcv_nxt);
  arm_hs(c);
}

void TransportMux::arm_hs(TcpConnection& c) {
  const Duration base = rto_for(c, c.out);
  c.hs_deadline =
      sim_->now() + Duration::nanos(base.count_nanos()
                                    << std::min(c.hs_tries, params_.max_backoff));
  if (c.hs_timer_scheduled) return;
  c.hs_timer_scheduled = true;
  const std::uint32_t tag = c.tag;
  sim_->schedule_at(c.hs_deadline, [this, tag] { on_hs_event(tag); });
}

void TransportMux::on_hs_event(std::uint32_t tag) {
  TcpConnection* cp = resolve(tag);
  if (cp == nullptr) return;
  TcpConnection& c = *cp;
  c.hs_timer_scheduled = false;
  if (c.state != ConnState::kSynSent && c.state != ConnState::kSynReceived &&
      c.state != ConnState::kFinWait) {
    return;
  }
  if (sim_->now() < c.hs_deadline) {
    c.hs_timer_scheduled = true;
    sim_->schedule_at(c.hs_deadline, [this, tag] { on_hs_event(tag); });
    return;
  }
  if (++c.hs_tries >= params_.max_handshake_tries) {
    ++stats_.handshake_failures;
    FBDCSIM_T_COUNTER(failed, "transport.handshake_failures", Sim);
    FBDCSIM_T_ADD(failed, 1);
    release(c);
    return;
  }
  FBDCSIM_T_TRACEPOINT(trace_log_, sim_->now().count_nanos(), HandshakeRetry, c.tag,
                       c.hs_tries, static_cast<std::int64_t>(c.state));
  switch (c.state) {
    case ConnState::kSynSent:
      if (flow_ledger_ != nullptr) {
        flow_ledger_->on_syn(c.tag, sim_->now().count_nanos());
      }
      emit_now(c, Dir::kOut, 0, core::TcpFlags{.syn = true}, 0, 0);
      break;
    case ConnState::kSynReceived:
      // Covers both a lost peer SYN and a lost SYN-ACK: replaying the SYN
      // re-triggers our SYN-ACK on delivery.
      if (flow_ledger_ != nullptr) {
        flow_ledger_->on_syn(c.tag, sim_->now().count_nanos());
      }
      emit_now(c, Dir::kIn, 0, core::TcpFlags{.syn = true}, 0, 0);
      break;
    case ConnState::kFinWait:
      emit_now(c, Dir::kOut, 0, core::TcpFlags{.ack = true, .fin = true}, 0,
               c.in.rcv_nxt);
      break;
    default:
      return;
  }
  arm_hs(c);
}

// ---- switch callbacks ----

void TransportMux::on_delivered(const core::SimPacket& pkt) {
  if (pkt.flow_tag == 0) return;
  TcpConnection* cp = resolve(pkt.flow_tag);
  if (cp == nullptr) return;
  TcpConnection& c = *cp;
  const Dir wire = pkt.src == c.self ? Dir::kOut : Dir::kIn;
  const core::TcpFlags f = pkt.header.flags;
  const std::int64_t payload = pkt.header.payload_bytes;

  if (f.syn && !f.ack) {
    if (wire == Dir::kOut) {
      // Self's SYN cleared the RSW; the peer answers after the path RTT.
      if (c.state == ConnState::kSynSent && !path_lost(c)) {
        const std::uint32_t tag = c.tag;
        sim_->schedule_after(c.reply_delay,
                             [this, tag] { on_ctrl(tag, Ctrl::kSynAckIn); });
      }
    } else {
      // The peer's SYN arrived at self: answer with a SYN-ACK.
      if (c.state == ConnState::kSynReceived) {
        emit_now(c, Dir::kOut, 0, core::TcpFlags{.syn = true, .ack = true}, 0, 0);
      }
    }
    return;
  }
  if (f.syn && f.ack) {
    if (wire == Dir::kIn) {
      // Peer's SYN-ACK reached self: complete the outbound handshake.
      if (c.state == ConnState::kSynSent) {
        emit_now(c, Dir::kOut, 0, core::TcpFlags{.ack = true}, 0, 0);
        establish(c);
      }
    } else {
      // Self's SYN-ACK egressed toward the opener; its final ACK returns.
      if (c.state == ConnState::kSynReceived && !path_lost(c)) {
        const std::uint32_t tag = c.tag;
        sim_->schedule_after(c.reply_delay,
                             [this, tag] { on_ctrl(tag, Ctrl::kHsAckIn); });
      }
    }
    return;
  }
  if (f.fin) {
    if (wire == Dir::kOut) {
      if (c.state == ConnState::kFinWait && !path_lost(c)) {
        const std::uint32_t tag = c.tag;
        sim_->schedule_after(c.reply_delay,
                             [this, tag] { on_ctrl(tag, Ctrl::kFinAckIn); });
      }
    } else {
      // Peer's FIN-ACK arrived: final ACK out, then the slot recycles. Any
      // packets of this connection still in flight carry a stale tag and
      // are ignored on delivery.
      if (c.state == ConnState::kFinWait) {
        emit_now(c, Dir::kOut, 0, core::TcpFlags{.ack = true}, 0, c.in.rcv_nxt);
        release(c);
      }
    }
    return;
  }
  if (payload > 0) {
    const std::int64_t seq = static_cast<std::int64_t>(pkt.seq);
    const bool ce = pkt.ecn == core::Ecn::kCe;
    if (wire == Dir::kOut) {
      // Out-half data at RSW egress: beyond-RSW loss, then the synthetic
      // far receiver.
      if (!path_lost(c)) {
        on_data_at_receiver(c, Dir::kOut, seq, payload, f.psh, ce);
      } else if (flow_ledger_ != nullptr) {
        flow_ledger_->on_drop(c.tag, sim_->now().count_nanos(), 0, seq, payload,
                              telemetry::FlowDropCause::kPathLoss, 0, -1,
                              telemetry::kFaultEpochPathLoss);
      }
    } else {
      on_data_at_receiver(c, Dir::kIn, seq, payload, f.psh, ce);
    }
    return;
  }
  // Pure ACK.
  if (wire == Dir::kIn) {
    if (c.state == ConnState::kSynReceived) {
      // The opener's final handshake ACK.
      establish(c);
      return;
    }
    on_ack_at_sender(c, Dir::kOut, static_cast<std::int64_t>(pkt.ack), f.ece,
                     pkt.sack_lo, pkt.sack_hi);
  } else {
    // Self's ACK egressed toward the in-half's remote sender.
    if (c.state == ConnState::kSynSent || path_lost(c)) return;
    const std::uint32_t tag = c.tag;
    const std::int64_t ackno = static_cast<std::int64_t>(pkt.ack);
    const bool ece = f.ece;
    const std::int64_t blo = pkt.sack_lo;
    const std::int64_t bhi = pkt.sack_hi;
    sim_->schedule_after(c.beyond + params_.host_delay,
                         [this, tag, ackno, ece, blo, bhi] {
      TcpConnection* cp2 = resolve(tag);
      if (cp2 != nullptr) on_ack_at_sender(*cp2, Dir::kIn, ackno, ece, blo, bhi);
    });
  }
}

void TransportMux::on_dropped(std::size_t port, const core::SimPacket& pkt) {
  if (pkt.flow_tag == 0) return;
  ++stats_.switch_drop_notifications;
  FBDCSIM_T_COUNTER(drops, "transport.switch_drops", Sim);
  FBDCSIM_T_ADD(drops, 1);
  TcpConnection* cp = resolve(pkt.flow_tag);
  if (cp == nullptr || pkt.header.payload_bytes <= 0) return;
  const Dir dir = pkt.src == cp->self ? Dir::kOut : Dir::kIn;
  ++half(*cp, dir).switch_dropped_segments;
  if (flow_ledger_ != nullptr) {
    flow_ledger_->on_drop(pkt.flow_tag, sim_->now().count_nanos(),
                          static_cast<int>(dir), static_cast<std::int64_t>(pkt.seq),
                          pkt.header.payload_bytes,
                          telemetry::FlowDropCause::kSwitchBuffer, ledger_switch_id_,
                          static_cast<std::int32_t>(port), switch_drop_fault_epoch_);
  }
}

}  // namespace fbdcsim::transport
