#include "fbdcsim/transport/tcp.h"

#include <algorithm>

namespace fbdcsim::transport {

std::int64_t cwnd_after_ack(std::int64_t cwnd, std::int64_t ssthresh,
                            std::int64_t acked_bytes, std::int64_t mss,
                            std::int64_t max_cwnd) {
  if (acked_bytes <= 0) return cwnd;
  if (cwnd < ssthresh) {
    // Slow start: cwnd grows by the bytes newly acknowledged (doubling per
    // RTT), never overshooting ssthresh by more than one increment.
    cwnd += std::min(acked_bytes, mss);
  } else {
    // Congestion avoidance: +mss per cwnd of acked data, i.e. mss^2/cwnd
    // per full-MSS ACK (at least 1 byte so growth never stalls).
    cwnd += std::max<std::int64_t>(1, mss * mss / std::max<std::int64_t>(cwnd, 1));
  }
  return std::min(cwnd, max_cwnd);
}

std::int64_t ssthresh_on_loss(std::int64_t inflight, std::int64_t mss) {
  return std::max(inflight / 2, 2 * mss);
}

void enter_fast_recovery(HalfStream& h, const TcpParams& p) {
  h.ssthresh = ssthresh_on_loss(h.inflight(), p.mss_bytes);
  h.cwnd = h.ssthresh + p.dupack_threshold * p.mss_bytes;
  h.in_recovery = true;
  h.recover = h.snd_nxt;
  h.rtx_next = h.snd_una;
  h.dupacks = 0;
}

void apply_rto(HalfStream& h, const TcpParams& p) {
  h.ssthresh = ssthresh_on_loss(h.inflight(), p.mss_bytes);
  h.cwnd = p.mss_bytes;
  h.in_recovery = false;
  h.dupacks = 0;
  h.rtx_next = -1;
  // Go-back-N: transmission restarts from the lowest unacknowledged byte.
  h.snd_nxt = h.snd_una;
  h.backoff = std::min(h.backoff + 1, p.max_backoff);
}

std::int64_t dctcp_alpha_update(std::int64_t alpha_q16, std::int64_t marked_bytes,
                                std::int64_t acked_bytes, int gain_shift) {
  if (acked_bytes <= 0) return std::clamp<std::int64_t>(alpha_q16, 0, kDctcpAlphaUnit);
  const std::int64_t fraction_q16 = std::clamp<std::int64_t>(
      std::clamp<std::int64_t>(marked_bytes, 0, acked_bytes) * kDctcpAlphaUnit /
          acked_bytes,
      0, kDctcpAlphaUnit);
  const std::int64_t alpha = std::clamp<std::int64_t>(alpha_q16, 0, kDctcpAlphaUnit);
  // Decay at least one Q16 unit (as Linux's min_not_zero does) so alpha
  // reaches exactly 0 under sustained zero marking instead of stalling
  // below 2^gain_shift on the integer floor.
  std::int64_t decay = alpha >> gain_shift;
  if (decay == 0 && alpha > 0) decay = 1;
  return std::clamp<std::int64_t>(alpha - decay + (fraction_q16 >> gain_shift), 0,
                                  kDctcpAlphaUnit);
}

std::int64_t dctcp_cwnd_after_mark(std::int64_t cwnd, std::int64_t alpha_q16,
                                   std::int64_t mss) {
  const std::int64_t alpha = std::clamp<std::int64_t>(alpha_q16, 0, kDctcpAlphaUnit);
  return std::max(mss, cwnd - cwnd * alpha / (2 * kDctcpAlphaUnit));
}

bool receiver_deliver(HalfStream& h, std::int64_t seq, std::int64_t len, bool psh) {
  if (len <= 0) return false;
  const std::int64_t end = seq + len;
  if (end <= h.rcv_nxt) {
    // Fully duplicate (retransmission overlap): re-ACK immediately so the
    // sender's cumulative state catches up.
    return true;
  }
  if (seq > h.rcv_nxt) {
    // Out of order: remember the range if there is room (overflow just
    // means the sender retransmits more) and signal a duplicate ACK.
    if (h.ooo_count < HalfStream::kMaxOooRanges) {
      h.ooo_lo[h.ooo_count] = seq;
      h.ooo_hi[h.ooo_count] = end;
      ++h.ooo_count;
    }
    return true;
  }

  // In order (possibly overlapping the front): advance and merge.
  h.rcv_nxt = end;
  bool any_merge = false;
  bool merged = true;
  while (merged) {
    merged = false;
    for (int i = 0; i < h.ooo_count; ++i) {
      if (h.ooo_lo[i] <= h.rcv_nxt) {
        h.rcv_nxt = std::max(h.rcv_nxt, h.ooo_hi[i]);
        h.ooo_lo[i] = h.ooo_lo[h.ooo_count - 1];
        h.ooo_hi[i] = h.ooo_hi[h.ooo_count - 1];
        --h.ooo_count;
        merged = true;
        any_merge = true;
        break;
      }
    }
  }

  if (psh || any_merge || h.ooo_count > 0) {
    h.segs_since_ack = 0;
    return true;
  }
  // Delayed ACK: every second in-order segment.
  if (++h.segs_since_ack >= 2) {
    h.segs_since_ack = 0;
    return true;
  }
  return false;
}

}  // namespace fbdcsim::transport
