#include "fbdcsim/transport/tcp.h"

#include <algorithm>

namespace fbdcsim::transport {

std::int64_t cwnd_after_ack(std::int64_t cwnd, std::int64_t ssthresh,
                            std::int64_t acked_bytes, std::int64_t mss,
                            std::int64_t max_cwnd) {
  if (acked_bytes <= 0) return cwnd;
  if (cwnd < ssthresh) {
    // Slow start: cwnd grows by the bytes newly acknowledged (doubling per
    // RTT), never overshooting ssthresh by more than one increment.
    cwnd += std::min(acked_bytes, mss);
  } else {
    // Congestion avoidance: +mss per cwnd of acked data, i.e. mss^2/cwnd
    // per full-MSS ACK (at least 1 byte so growth never stalls).
    cwnd += std::max<std::int64_t>(1, mss * mss / std::max<std::int64_t>(cwnd, 1));
  }
  return std::min(cwnd, max_cwnd);
}

std::int64_t ssthresh_on_loss(std::int64_t inflight, std::int64_t mss) {
  return std::max(inflight / 2, 2 * mss);
}

void enter_fast_recovery(HalfStream& h, const TcpParams& p) {
  h.ssthresh = ssthresh_on_loss(h.inflight(), p.mss_bytes);
  h.cwnd = h.ssthresh + p.dupack_threshold * p.mss_bytes;
  h.in_recovery = true;
  h.recover = h.snd_nxt;
  h.rtx_next = h.snd_una;
  h.dupacks = 0;
}

void apply_rto(HalfStream& h, const TcpParams& p) {
  h.ssthresh = ssthresh_on_loss(h.inflight(), p.mss_bytes);
  h.cwnd = p.mss_bytes;
  h.in_recovery = false;
  h.dupacks = 0;
  h.rtx_next = -1;
  // Go-back-N: transmission restarts from the lowest unacknowledged byte.
  h.snd_nxt = h.snd_una;
  h.backoff = std::min(h.backoff + 1, p.max_backoff);
}

std::int64_t dctcp_alpha_update(std::int64_t alpha_q16, std::int64_t marked_bytes,
                                std::int64_t acked_bytes, int gain_shift) {
  if (acked_bytes <= 0) return std::clamp<std::int64_t>(alpha_q16, 0, kDctcpAlphaUnit);
  const std::int64_t fraction_q16 = std::clamp<std::int64_t>(
      std::clamp<std::int64_t>(marked_bytes, 0, acked_bytes) * kDctcpAlphaUnit /
          acked_bytes,
      0, kDctcpAlphaUnit);
  const std::int64_t alpha = std::clamp<std::int64_t>(alpha_q16, 0, kDctcpAlphaUnit);
  // Decay at least one Q16 unit (as Linux's min_not_zero does) so alpha
  // reaches exactly 0 under sustained zero marking instead of stalling
  // below 2^gain_shift on the integer floor.
  std::int64_t decay = alpha >> gain_shift;
  if (decay == 0 && alpha > 0) decay = 1;
  return std::clamp<std::int64_t>(alpha - decay + (fraction_q16 >> gain_shift), 0,
                                  kDctcpAlphaUnit);
}

std::int64_t dctcp_cwnd_after_mark(std::int64_t cwnd, std::int64_t alpha_q16,
                                   std::int64_t mss) {
  const std::int64_t alpha = std::clamp<std::int64_t>(alpha_q16, 0, kDctcpAlphaUnit);
  return std::max(mss, cwnd - cwnd * alpha / (2 * kDctcpAlphaUnit));
}

bool receiver_deliver(HalfStream& h, std::int64_t seq, std::int64_t len, bool psh) {
  if (len <= 0) return false;
  const std::int64_t end = seq + len;
  if (end <= h.rcv_nxt) {
    // Fully duplicate (retransmission overlap): re-ACK immediately so the
    // sender's cumulative state catches up.
    return true;
  }
  if (seq > h.rcv_nxt) {
    // Out of order: remember the range if there is room (overflow just
    // means the sender retransmits more) and signal a duplicate ACK.
    if (h.ooo_count < HalfStream::kMaxOooRanges) {
      h.ooo_lo[h.ooo_count] = seq;
      h.ooo_hi[h.ooo_count] = end;
      ++h.ooo_count;
    }
    return true;
  }

  // In order (possibly overlapping the front): advance and merge.
  h.rcv_nxt = end;
  bool any_merge = false;
  bool merged = true;
  while (merged) {
    merged = false;
    for (int i = 0; i < h.ooo_count; ++i) {
      if (h.ooo_lo[i] <= h.rcv_nxt) {
        h.rcv_nxt = std::max(h.rcv_nxt, h.ooo_hi[i]);
        h.ooo_lo[i] = h.ooo_lo[h.ooo_count - 1];
        h.ooo_hi[i] = h.ooo_hi[h.ooo_count - 1];
        --h.ooo_count;
        merged = true;
        any_merge = true;
        break;
      }
    }
  }

  if (psh || any_merge || h.ooo_count > 0) {
    h.segs_since_ack = 0;
    return true;
  }
  // Delayed ACK: every second in-order segment.
  if (++h.segs_since_ack >= 2) {
    h.segs_since_ack = 0;
    return true;
  }
  return false;
}

SackBlock receiver_sack_block(const HalfStream& h, std::int64_t seq, std::int64_t end) {
  if (h.ooo_count == 0) return {};
  // Seed with the delivered segment when some buffered range covers it
  // (i.e. it landed out of order and was remembered); otherwise report the
  // lowest buffered range — the one the sender most urgently needs.
  std::int64_t lo = seq;
  std::int64_t hi = end;
  bool seeded = false;
  for (int i = 0; i < h.ooo_count; ++i) {
    if (h.ooo_lo[i] <= seq && end <= h.ooo_hi[i]) {
      seeded = true;
      break;
    }
  }
  if (!seeded) {
    int lowest = 0;
    for (int i = 1; i < h.ooo_count; ++i) {
      if (h.ooo_lo[i] < h.ooo_lo[lowest]) lowest = i;
    }
    lo = h.ooo_lo[lowest];
    hi = h.ooo_hi[lowest];
  }
  // Expand to the maximal contiguous range: the buffered set is unordered
  // and may hold duplicates/overlaps, so chase overlap-or-adjacency to a
  // fixpoint (bounded by kMaxOooRanges passes).
  bool grew = true;
  while (grew) {
    grew = false;
    for (int i = 0; i < h.ooo_count; ++i) {
      if (h.ooo_lo[i] <= hi && h.ooo_hi[i] >= lo &&
          (h.ooo_lo[i] < lo || h.ooo_hi[i] > hi)) {
        lo = std::min(lo, h.ooo_lo[i]);
        hi = std::max(hi, h.ooo_hi[i]);
        grew = true;
      }
    }
  }
  return {lo, hi};
}

std::int64_t sack_record(HalfStream& h, std::int64_t lo, std::int64_t hi) {
  lo = std::max(lo, h.snd_una);
  hi = std::min(hi, h.max_sent);
  if (hi <= lo) return 0;

  // Absorb every existing range that overlaps or abuts [lo, hi). The
  // absorbed ranges are disjoint, so the bytes the merge adds are the
  // merged span minus what was already sacked inside it.
  std::int64_t absorbed = 0;
  int w = 0;
  for (int i = 0; i < h.sack_count; ++i) {
    if (h.sack_lo[i] <= hi && h.sack_hi[i] >= lo) {
      absorbed += h.sack_hi[i] - h.sack_lo[i];
      lo = std::min(lo, h.sack_lo[i]);
      hi = std::max(hi, h.sack_hi[i]);
    } else {
      h.sack_lo[w] = h.sack_lo[i];
      h.sack_hi[w] = h.sack_hi[i];
      ++w;
    }
  }
  if (absorbed == 0 && w >= HalfStream::kMaxSackRanges) {
    // Full and nothing to merge with: drop the new block. Existing sacked
    // ranges are never evicted — losing them would re-mark delivered bytes
    // as holes and trigger spurious retransmissions.
    return 0;
  }
  // Insert the merged range keeping the list sorted by lo.
  int pos = w;
  while (pos > 0 && h.sack_lo[pos - 1] > lo) {
    h.sack_lo[pos] = h.sack_lo[pos - 1];
    h.sack_hi[pos] = h.sack_hi[pos - 1];
    --pos;
  }
  h.sack_lo[pos] = lo;
  h.sack_hi[pos] = hi;
  h.sack_count = w + 1;
  return (hi - lo) - absorbed;
}

void sack_advance(HalfStream& h) {
  int w = 0;
  for (int i = 0; i < h.sack_count; ++i) {
    if (h.sack_hi[i] <= h.snd_una) continue;
    h.sack_lo[w] = std::max(h.sack_lo[i], h.snd_una);
    h.sack_hi[w] = h.sack_hi[i];
    ++w;
  }
  h.sack_count = w;
}

std::int64_t sack_sacked_bytes(const HalfStream& h) {
  std::int64_t total = 0;
  for (int i = 0; i < h.sack_count; ++i) {
    total += h.sack_hi[i] - std::max(h.sack_lo[i], h.snd_una);
  }
  return total;
}

std::int64_t sack_fack(const HalfStream& h) {
  std::int64_t fack = h.snd_una;
  for (int i = 0; i < h.sack_count; ++i) fack = std::max(fack, h.sack_hi[i]);
  return fack;
}

std::int64_t sack_lost_bytes(const HalfStream& h) {
  return (sack_fack(h) - h.snd_una) - sack_sacked_bytes(h);
}

std::int64_t sack_rtx_out_bytes(const HalfStream& h) {
  const std::int64_t ceil =
      std::clamp(h.high_rtx, h.snd_una, sack_fack(h));
  std::int64_t sacked_below = 0;
  for (int i = 0; i < h.sack_count; ++i) {
    const std::int64_t lo = std::max(h.sack_lo[i], h.snd_una);
    const std::int64_t hi = std::min(h.sack_hi[i], ceil);
    if (hi > lo) sacked_below += hi - lo;
  }
  return (ceil - h.snd_una) - sacked_below;
}

std::int64_t sack_pipe(const HalfStream& h) {
  return h.inflight() - sack_sacked_bytes(h) - sack_lost_bytes(h) +
         sack_rtx_out_bytes(h);
}

bool sack_should_enter_recovery(const HalfStream& h, const TcpParams& p) {
  if (h.dupacks >= p.dupack_threshold) return true;
  const std::int64_t sacked = sack_sacked_bytes(h);
  if (sacked <= 0) return false;
  // RFC 6675 IsLost(snd_una): enough segments above the hole arrived that
  // reordering is ruled out even before dupack_threshold dupacks.
  if (sacked >= static_cast<std::int64_t>(p.dupack_threshold) * p.mss_bytes) return true;
  // RFC 5827 early retransmit: a window under 4 segments cannot generate 3
  // dupacks, so the threshold shrinks to (outstanding − 1).
  const std::int64_t oseg = (h.inflight() + p.mss_bytes - 1) / p.mss_bytes;
  if (oseg < 4 && h.dupacks >= std::max<std::int64_t>(1, oseg - 1)) return true;
  return false;
}

void enter_sack_recovery(HalfStream& h, const TcpParams& p) {
  h.ssthresh = ssthresh_on_loss(h.inflight(), p.mss_bytes);
  // No dupack inflation: sack_pipe gates what the recovery pump may send,
  // so cwnd drops straight to the halved value (RFC 6675 §5).
  h.cwnd = h.ssthresh;
  h.in_recovery = true;
  h.recover = h.snd_nxt;
  h.rtx_next = -1;
  h.dupacks = 0;
  h.high_rtx = h.snd_una;
  h.rescue_done = false;
}

SackNextSeg sack_next_seg(const HalfStream& h, std::int64_t mss) {
  // Rule 1: the lowest unsacked hole at/above high_rtx. Scoreboard ranges
  // are sorted and disjoint, so walk them advancing a cursor; any gap in
  // front of a range is a hole (necessarily below fack).
  std::int64_t cursor = std::max(h.snd_una, h.high_rtx);
  for (int i = 0; i < h.sack_count; ++i) {
    if (h.sack_hi[i] <= cursor) continue;
    if (cursor < h.sack_lo[i]) {
      return {cursor, std::min(mss, h.sack_lo[i] - cursor), true, false};
    }
    cursor = h.sack_hi[i];
  }
  // Rule 2: previously unsent data.
  if (h.snd_nxt < h.demand) {
    return {h.snd_nxt, std::min(mss, h.demand - h.snd_nxt), false, false};
  }
  // Rule 4 (rescue): once per episode, when the tail of the recovery window
  // is unsacked (fack < recover), resend its last chunk — otherwise a lost
  // tail inside the episode generates no dupacks and waits out the RTO.
  if (h.in_recovery && !h.rescue_done) {
    const std::int64_t fack = sack_fack(h);
    if (fack < h.recover) {
      const std::int64_t seq = std::max(fack, h.recover - mss);
      return {seq, h.recover - seq, true, true};
    }
  }
  return {};
}

void apply_rto_sack(HalfStream& h, const TcpParams& p) {
  // Fall back to go-back-N: the scoreboard is forgotten wholesale (RFC 2018
  // receivers may renege, so a timeout must not trust sacked ranges) and the
  // per-episode retransmission state resets with it.
  h.sack_count = 0;
  h.rescue_done = false;
  apply_rto(h, p);
  h.high_rtx = h.snd_una;
}

}  // namespace fbdcsim::transport
