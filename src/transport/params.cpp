#include "fbdcsim/transport/params.h"

#include <cstdio>
#include <cstdlib>

namespace fbdcsim::transport {

const char* to_string(CongestionControl cc) {
  switch (cc) {
    case CongestionControl::kNewReno:
      return "reno";
    case CongestionControl::kDctcp:
      return "dctcp";
  }
  return "?";
}

bool parse_cc_spec(std::string_view spec, CongestionControl& out) {
  if (spec == "reno" || spec == "newreno") {
    out = CongestionControl::kNewReno;
    return true;
  }
  if (spec == "dctcp") {
    out = CongestionControl::kDctcp;
    return true;
  }
  return false;
}

CongestionControl cc_from_env() {
  const char* raw = std::getenv("FBDCSIM_CC");
  if (raw == nullptr || raw[0] == '\0') return CongestionControl::kNewReno;
  CongestionControl cc = CongestionControl::kNewReno;
  if (!parse_cc_spec(raw, cc)) {
    std::fprintf(stderr,
                 "fbdcsim: ignoring invalid FBDCSIM_CC value \"%s\" "
                 "(expected reno|dctcp); using reno\n",
                 raw);
    return CongestionControl::kNewReno;
  }
  return cc;
}

const char* to_string(LossRecovery recovery) {
  switch (recovery) {
    case LossRecovery::kNewReno:
      return "newreno";
    case LossRecovery::kSack:
      return "sack";
  }
  return "?";
}

bool parse_recovery_spec(std::string_view spec, LossRecovery& out) {
  if (spec == "newreno" || spec == "reno") {
    out = LossRecovery::kNewReno;
    return true;
  }
  if (spec == "sack") {
    out = LossRecovery::kSack;
    return true;
  }
  return false;
}

LossRecovery recovery_from_env() {
  const char* raw = std::getenv("FBDCSIM_RECOVERY");
  if (raw == nullptr || raw[0] == '\0') return LossRecovery::kNewReno;
  LossRecovery recovery = LossRecovery::kNewReno;
  if (!parse_recovery_spec(raw, recovery)) {
    std::fprintf(stderr,
                 "fbdcsim: ignoring invalid FBDCSIM_RECOVERY value \"%s\" "
                 "(expected newreno|sack); using newreno\n",
                 raw);
    return LossRecovery::kNewReno;
  }
  return recovery;
}

}  // namespace fbdcsim::transport
