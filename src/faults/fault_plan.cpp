#include "fbdcsim/faults/fault_plan.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fbdcsim::faults {

const char* to_string(Profile profile) {
  switch (profile) {
    case Profile::kOff:
      return "off";
    case Profile::kLight:
      return "light";
    case Profile::kHeavy:
      return "heavy";
    case Profile::kCustom:
      return "custom";
  }
  return "?";
}

FaultConfig light_profile() {
  FaultConfig c;
  c.profile = Profile::kLight;
  c.link_fail_prob = 0.0005;
  c.link_degrade_prob = 0.005;
  c.link_degrade_factor = 0.5;
  c.buffer_shrink_prob = 0.05;
  c.buffer_shrink_factor = 0.5;
  c.host_crash_prob = 0.002;
  c.scribe_drop_prob = 0.01;
  c.scribe_max_retries = 3;
  c.scribe_delay_prob = 0.05;
  c.tag_failure_prob = 0.005;
  c.capture_drop_prob = 0.01;
  c.path_loss_prob = 0.0005;
  return c;
}

FaultConfig heavy_profile() {
  FaultConfig c;
  c.profile = Profile::kHeavy;
  c.link_fail_prob = 0.01;
  c.link_degrade_prob = 0.05;
  c.link_degrade_factor = 0.25;
  c.buffer_shrink_prob = 0.25;
  c.buffer_shrink_factor = 0.25;
  c.host_crash_prob = 0.02;
  c.scribe_drop_prob = 0.10;
  c.scribe_max_retries = 2;
  c.scribe_delay_prob = 0.20;
  c.scribe_max_delay = core::Duration::seconds(120);
  c.tag_failure_prob = 0.05;
  c.capture_drop_prob = 0.05;
  c.path_loss_prob = 0.005;
  return c;
}

namespace {

/// Strict double parse: the whole token must be a finite number in range.
bool parse_double(const std::string& text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE || text.find('-') != std::string::npos) {
    return false;
  }
  *out = v;
  return true;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// One `key = value` assignment into the config. Durations take
/// milliseconds; probabilities must be in [0, 1]; factors in (0, 1].
bool apply_key(FaultConfig& c, const std::string& key, const std::string& value,
               std::string* error) {
  const auto prob = [&](double* field) {
    double v = 0.0;
    if (!parse_double(value, &v) || v < 0.0 || v > 1.0) {
      *error = "'" + key + "' must be a probability in [0,1], got '" + value + "'";
      return false;
    }
    *field = v;
    return true;
  };
  const auto factor = [&](double* field) {
    double v = 0.0;
    if (!parse_double(value, &v) || v <= 0.0 || v > 1.0) {
      *error = "'" + key + "' must be a factor in (0,1], got '" + value + "'";
      return false;
    }
    *field = v;
    return true;
  };
  const auto duration_ms = [&](core::Duration* field) {
    double v = 0.0;
    if (!parse_double(value, &v) || v <= 0.0) {
      *error = "'" + key + "' must be a positive duration in ms, got '" + value + "'";
      return false;
    }
    *field = core::Duration::nanos(static_cast<std::int64_t>(v * 1e6));
    return true;
  };

  if (key == "seed") {
    std::uint64_t v = 0;
    if (!parse_u64(value, &v)) {
      *error = "'seed' must be an unsigned integer, got '" + value + "'";
      return false;
    }
    c.seed = v;
    return true;
  }
  if (key == "link_fail_prob") return prob(&c.link_fail_prob);
  if (key == "link_degrade_prob") return prob(&c.link_degrade_prob);
  if (key == "link_degrade_factor") return factor(&c.link_degrade_factor);
  if (key == "buffer_shrink_prob") return prob(&c.buffer_shrink_prob);
  if (key == "buffer_shrink_factor") return factor(&c.buffer_shrink_factor);
  if (key == "host_crash_prob") return prob(&c.host_crash_prob);
  if (key == "host_epoch_ms") return duration_ms(&c.host_epoch);
  if (key == "scribe_drop_prob") return prob(&c.scribe_drop_prob);
  if (key == "scribe_max_retries") {
    std::uint64_t v = 0;
    if (!parse_u64(value, &v) || v > 16) {
      *error = "'scribe_max_retries' must be an integer in [0,16], got '" + value + "'";
      return false;
    }
    c.scribe_max_retries = static_cast<int>(v);
    return true;
  }
  if (key == "scribe_backoff_base_ms") return duration_ms(&c.scribe_backoff_base);
  if (key == "scribe_delay_prob") return prob(&c.scribe_delay_prob);
  if (key == "scribe_max_delay_ms") return duration_ms(&c.scribe_max_delay);
  if (key == "tag_failure_prob") return prob(&c.tag_failure_prob);
  if (key == "capture_drop_prob") return prob(&c.capture_drop_prob);
  if (key == "path_loss_prob") return prob(&c.path_loss_prob);
  *error = "unknown key '" + key + "'";
  return false;
}

std::optional<FaultConfig> parse_profile_file(const std::string& path, std::string* error) {
  // Require a regular file: directories and devices open "successfully" but
  // read as empty, which would silently yield a do-nothing custom profile.
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    *error = "fault profile '" + path + "' is not a regular file";
    return std::nullopt;
  }
  std::ifstream in{path};
  if (!in) {
    *error = "cannot open fault profile file '" + path + "'";
    return std::nullopt;
  }
  FaultConfig c;
  c.profile = Profile::kCustom;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      *error = path + ":" + std::to_string(lineno) + ": expected 'key = value'";
      return std::nullopt;
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    std::string why;
    if (!apply_key(c, key, value, &why)) {
      *error = path + ":" + std::to_string(lineno) + ": " + why;
      return std::nullopt;
    }
  }
  return c;
}

}  // namespace

std::optional<FaultConfig> parse_fault_spec(std::string_view spec, std::string* error) {
  const std::string s = trim(std::string{spec});
  if (s.empty()) {
    *error = "empty FBDCSIM_FAULTS value";
    return std::nullopt;
  }
  if (s == "off") return FaultConfig{};
  if (s == "light") return light_profile();
  if (s == "heavy") return heavy_profile();
  return parse_profile_file(s, error);
}

FaultConfig fault_config_from_env() {
  const char* env = std::getenv("FBDCSIM_FAULTS");
  if (env == nullptr) return FaultConfig{};
  std::string error;
  if (auto config = parse_fault_spec(env, &error)) return *config;
  std::fprintf(stderr, "FBDCSIM_FAULTS='%s' is invalid (%s); faults disabled\n", env,
               error.c_str());
  return FaultConfig{};
}

double FaultPlan::unit(Decision d, std::uint64_t entity, std::uint64_t bucket) const {
  std::uint64_t h = core::splitmix64(config_.seed ^ static_cast<std::uint64_t>(d));
  h = core::splitmix64(h ^ core::splitmix64(entity));
  h = core::splitmix64(h ^ bucket);
  // 53 high bits -> exactly representable uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

namespace {
std::uint64_t minute_of(core::TimePoint at) {
  return static_cast<std::uint64_t>(at.count_nanos() / 60'000'000'000LL);
}
}  // namespace

bool FaultPlan::link_failed(core::LinkId link, core::TimePoint at) const {
  if (config_.link_fail_prob <= 0.0) return false;
  return unit(Decision::kLinkFail, link.value(), minute_of(at)) < config_.link_fail_prob;
}

double FaultPlan::link_capacity_factor(core::LinkId link, core::TimePoint at) const {
  if (link_failed(link, at)) return 0.0;
  if (config_.link_degrade_prob > 0.0 &&
      unit(Decision::kLinkDegrade, link.value(), minute_of(at)) < config_.link_degrade_prob) {
    return config_.link_degrade_factor;
  }
  return 1.0;
}

double FaultPlan::buffer_shrink_factor(std::uint64_t run_salt) const {
  if (config_.buffer_shrink_prob <= 0.0) return 1.0;
  return unit(Decision::kBufferShrink, run_salt, 0) < config_.buffer_shrink_prob
             ? config_.buffer_shrink_factor
             : 1.0;
}

bool FaultPlan::host_down(core::HostId host, core::TimePoint at) const {
  if (config_.host_crash_prob <= 0.0) return false;
  const std::uint64_t epoch =
      static_cast<std::uint64_t>(at.count_nanos() / config_.host_epoch.count_nanos());
  return unit(Decision::kHostCrash, host.value(), epoch) < config_.host_crash_prob;
}

bool FaultPlan::scribe_attempt_fails(std::uint64_t sample_key, int attempt) const {
  if (config_.scribe_drop_prob <= 0.0) return false;
  return unit(Decision::kScribeDrop, sample_key, static_cast<std::uint64_t>(attempt)) <
         config_.scribe_drop_prob;
}

core::Duration FaultPlan::scribe_backoff(int attempts_failed) const {
  return core::Duration::nanos(config_.scribe_backoff_base.count_nanos() *
                               ((std::int64_t{1} << attempts_failed) - 1));
}

bool FaultPlan::scribe_delayed(std::uint64_t sample_key) const {
  if (config_.scribe_delay_prob <= 0.0) return false;
  return unit(Decision::kScribeDelayFlag, sample_key, 0) < config_.scribe_delay_prob;
}

core::Duration FaultPlan::scribe_delay(std::uint64_t sample_key) const {
  // In (0, max]: delayed samples are always late by at least one nanosecond.
  const double frac = 1.0 - unit(Decision::kScribeDelayLen, sample_key, 0);
  return core::Duration::nanos(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(frac *
                                   static_cast<double>(config_.scribe_max_delay.count_nanos()))));
}

bool FaultPlan::tagger_lookup_fails(std::uint64_t sample_key) const {
  if (config_.tag_failure_prob <= 0.0) return false;
  return unit(Decision::kTagFailure, sample_key, 0) < config_.tag_failure_prob;
}

bool FaultPlan::capture_drop(std::uint64_t sample_key, double occupancy_fraction) const {
  if (config_.capture_drop_prob <= 0.0) return false;
  const double occ = occupancy_fraction < 0.0   ? 0.0
                     : occupancy_fraction > 1.0 ? 1.0
                                                : occupancy_fraction;
  const double p = config_.capture_drop_prob * (0.1 + 0.9 * occ);
  return unit(Decision::kCaptureDrop, sample_key, 0) < p;
}

bool FaultPlan::path_loss(std::uint64_t transmission_key) const {
  if (config_.path_loss_prob <= 0.0) return false;
  return unit(Decision::kPathLoss, transmission_key, 0) < config_.path_loss_prob;
}

}  // namespace fbdcsim::faults
