#include "fbdcsim/telemetry/tracepoint.h"

#include <algorithm>
#include <cinttypes>
#include <exception>
#include <mutex>
#include <utility>

namespace fbdcsim::telemetry {

const char* to_string(TracePointKind kind) {
  switch (kind) {
    case TracePointKind::kPacketDrop:
      return "packet_drop";
    case TracePointKind::kRtoFired:
      return "rto_fired";
    case TracePointKind::kFastRtxEnter:
      return "fast_rtx_enter";
    case TracePointKind::kFastRtxExit:
      return "fast_rtx_exit";
    case TracePointKind::kFaultEpoch:
      return "fault_epoch";
    case TracePointKind::kHandshakeRetry:
      return "handshake_retry";
  }
  return "unknown";
}

TracePointLog::TracePointLog(std::uint64_t source_id, std::size_t capacity)
    : capacity_{capacity < 1 ? 1 : capacity}, source_id_{source_id} {
  ring_ = static_cast<TracePointRecord*>(
      arena_.allocate(capacity_ * sizeof(TracePointRecord), alignof(TracePointRecord)));
  for (std::size_t i = 0; i < capacity_; ++i) new (ring_ + i) TracePointRecord{};
}

void TracePointLog::record(std::int64_t t_ns, TracePointKind kind, std::uint64_t entity,
                           std::int64_t a, std::int64_t b) noexcept {
  ring_[next_] = TracePointRecord{t_ns, entity, a, b, kind};
  next_ = next_ + 1 == capacity_ ? 0 : next_ + 1;
  ++total_;
}

TracePointDump TracePointLog::snapshot() const {
  TracePointDump dump;
  dump.source_id = source_id_;
  dump.total = total_;
  const std::size_t retained =
      total_ < static_cast<std::int64_t>(capacity_) ? static_cast<std::size_t>(total_)
                                                    : capacity_;
  dump.records.reserve(retained);
  // Oldest retained record: where next_ points once the ring has wrapped.
  const std::size_t start =
      total_ < static_cast<std::int64_t>(capacity_) ? 0 : next_;
  for (std::size_t i = 0; i < retained; ++i) {
    dump.records.push_back(ring_[(start + i) % capacity_]);
  }
  return dump;
}

void TracePointLog::dump(std::FILE* out) const {
  const TracePointDump d = snapshot();
  std::fprintf(out,
               "flight recorder: source=%" PRIu64 " total=%" PRId64 " retained=%zu\n",
               d.source_id, d.total, d.records.size());
  for (const TracePointRecord& r : d.records) {
    std::fprintf(out,
                 "  t_ns=%-15" PRId64 " %-16s entity=%-12" PRIu64 " a=%-12" PRId64
                 " b=%" PRId64 "\n",
                 r.t_ns, to_string(r.kind), r.entity, r.a, r.b);
  }
}

namespace {

struct Registry {
  std::mutex mu;
  std::vector<const TracePointLog*> logs;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during termination
  return *r;
}

std::terminate_handler g_previous_terminate = nullptr;

[[noreturn]] void terminate_with_dump() {
  std::fprintf(stderr, "fbdcsim: terminating — dumping flight recorders\n");
  FlightRecorders::dump_all(stderr);
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

}  // namespace

void FlightRecorders::add(const TracePointLog* log) {
  if (log == nullptr) return;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock{r.mu};
  r.logs.push_back(log);
}

void FlightRecorders::remove(const TracePointLog* log) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock{r.mu};
  r.logs.erase(std::remove(r.logs.begin(), r.logs.end(), log), r.logs.end());
}

void FlightRecorders::dump_all(std::FILE* out) {
  Registry& r = registry();
  std::vector<const TracePointLog*> logs;
  {
    const std::lock_guard<std::mutex> lock{r.mu};
    logs = r.logs;
  }
  std::stable_sort(logs.begin(), logs.end(),
                   [](const TracePointLog* a, const TracePointLog* b) {
                     return a->source_id() < b->source_id();
                   });
  for (const TracePointLog* log : logs) log->dump(out);
}

void FlightRecorders::arm_crash_dump() {
  static std::once_flag once;
  std::call_once(once, [] { g_previous_terminate = std::set_terminate(terminate_with_dump); });
}

std::string tracepoints_to_jsonl(std::vector<TracePointDump> dumps) {
  std::stable_sort(dumps.begin(), dumps.end(),
                   [](const TracePointDump& a, const TracePointDump& b) {
                     return a.source_id < b.source_id;
                   });
  std::string out;
  for (const TracePointDump& d : dumps) {
    for (const TracePointRecord& r : d.records) {
      out += "{\"source\":";
      out += std::to_string(d.source_id);
      out += ",\"t_ns\":";
      out += std::to_string(r.t_ns);
      out += ",\"kind\":\"";
      out += to_string(r.kind);
      out += "\",\"entity\":";
      out += std::to_string(r.entity);
      out += ",\"a\":";
      out += std::to_string(r.a);
      out += ",\"b\":";
      out += std::to_string(r.b);
      out += "}\n";
    }
  }
  return out;
}

}  // namespace fbdcsim::telemetry
