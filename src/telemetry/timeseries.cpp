#include "fbdcsim/telemetry/timeseries.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fbdcsim::telemetry {

TimeSeries::TimeSeries(std::string name, std::int64_t period_ns, std::size_t capacity)
    : name_{std::move(name)}, period_ns_{period_ns}, capacity_{capacity < 2 ? 2 : capacity} {
  // Pairwise compaction halves an even bin count; force even so a full ring
  // always compacts to exactly capacity_/2 completed bins.
  if (capacity_ % 2 != 0) ++capacity_;
  bins_.reserve(capacity_);
}

void TimeSeries::add_sample(std::int64_t t_ns, std::int64_t value) {
  ++samples_;
  if (cur_count_ == 0) {
    cur_ = SeriesBin{t_ns, 0, value, value, value, 0};
  }
  cur_.min = std::min(cur_.min, value);
  cur_.max = std::max(cur_.max, value);
  cur_.last = value;
  cur_.sum += value;
  ++cur_.count;
  ++cur_count_;
  if (cur_count_ < bin_samples_) return;
  bins_.push_back(cur_);
  cur_count_ = 0;
  if (bins_.size() >= capacity_) compact();
}

void TimeSeries::compact() {
  // Merge adjacent pairs in place: every statistic is conserved exactly
  // (sum/count add, min/max take extrema, last/start take the pair's ends).
  std::size_t w = 0;
  for (std::size_t r = 0; r + 1 < bins_.size(); r += 2) {
    SeriesBin merged = bins_[r];
    const SeriesBin& second = bins_[r + 1];
    merged.count += second.count;
    merged.min = std::min(merged.min, second.min);
    merged.max = std::max(merged.max, second.max);
    merged.last = second.last;
    merged.sum += second.sum;
    bins_[w++] = merged;
  }
  bins_.resize(w);
  bin_samples_ *= 2;
}

SeriesSnapshot TimeSeries::snapshot() const {
  SeriesSnapshot snap;
  snap.name = name_;
  snap.period_ns = period_ns_;
  snap.bin_samples = bin_samples_;
  snap.samples = samples_;
  snap.bins = bins_;
  if (cur_count_ > 0) snap.bins.push_back(cur_);
  return snap;
}

TimeSeriesProbe::TimeSeriesProbe(core::Duration period, std::size_t series_capacity)
    : period_{period}, series_capacity_{series_capacity} {
  if (period_.count_nanos() <= 0) {
    throw std::invalid_argument{"TimeSeriesProbe: period must be positive"};
  }
}

TimeSeries& TimeSeriesProbe::add_gauge(std::string name, GaugeFn fn, std::int64_t stride) {
  if (stride < 1) stride = 1;
  Entry entry;
  entry.series = std::make_unique<TimeSeries>(
      std::move(name), period_.count_nanos() * stride, series_capacity_);
  entry.fn = std::move(fn);
  entry.stride = stride;
  entries_.push_back(std::move(entry));
  return *entries_.back().series;
}

void TimeSeriesProbe::sample_tick(std::int64_t t_ns) {
  // Tick 0 samples every gauge, so even a one-tick run has a value per
  // series; a strided gauge then fires every stride-th tick after that.
  for (Entry& e : entries_) {
    if (ticks_ % e.stride == 0) e.series->add_sample(t_ns, e.fn());
  }
  ++ticks_;
}

std::vector<SeriesSnapshot> TimeSeriesProbe::snapshot() const {
  std::vector<SeriesSnapshot> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.series->snapshot());
  std::sort(out.begin(), out.end(),
            [](const SeriesSnapshot& a, const SeriesSnapshot& b) { return a.name < b.name; });
  return out;
}

const SeriesSnapshot* find_series(const std::vector<SeriesSnapshot>& series,
                                  std::string_view name) {
  for (const SeriesSnapshot& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string timeseries_to_json(const std::vector<SeriesSnapshot>& series) {
  std::vector<const SeriesSnapshot*> ordered;
  ordered.reserve(series.size());
  for (const SeriesSnapshot& s : series) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const SeriesSnapshot* a, const SeriesSnapshot* b) { return a->name < b->name; });

  std::string out = "{\"series\":{";
  bool first = true;
  for (const SeriesSnapshot* s : ordered) {
    if (!first) out += ',';
    first = false;
    out += '"';
    // Probe names are plain identifiers; escaping handled upstream if ever
    // needed (names never contain quotes or control characters today).
    out += s->name;
    out += "\":{\"period_ns\":";
    out += std::to_string(s->period_ns);
    out += ",\"bin_samples\":";
    out += std::to_string(s->bin_samples);
    out += ",\"samples\":";
    out += std::to_string(s->samples);
    out += ",\"bins\":[";
    bool first_bin = true;
    for (const SeriesBin& b : s->bins) {
      if (!first_bin) out += ',';
      first_bin = false;
      out += '[';
      out += std::to_string(b.start_ns);
      out += ',';
      out += std::to_string(b.count);
      out += ',';
      out += std::to_string(b.min);
      out += ',';
      out += std::to_string(b.max);
      out += ',';
      out += std::to_string(b.last);
      out += ',';
      out += std::to_string(b.sum);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace fbdcsim::telemetry
