#include "fbdcsim/telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

namespace fbdcsim::telemetry {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread span nesting depth. Only spans that were armed at open time
/// touch it, so enable/disable races cannot unbalance it.
thread_local std::uint32_t t_depth = 0;

}  // namespace

Tracer::Tracer() : epoch_ns_{steady_now_ns()} {}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

void Tracer::record(TraceEvent event) {
  std::lock_guard<std::mutex> lk{mu_};
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk{mu_};
    out = events_;
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.depth < b.depth;
  });
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lk{mu_};
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk{mu_};
  events_.clear();
}

std::int64_t Tracer::now_us() const { return (steady_now_ns() - epoch_ns_) / 1000; }

std::uint32_t Tracer::this_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceSpan::TraceSpan(const char* name, Tracer& tracer) {
  if (!Telemetry::enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  depth_ = t_depth++;
  start_us_ = tracer.now_us();
}

TraceSpan::TraceSpan(const char* name, std::string detail, Tracer& tracer) {
  if (!Telemetry::enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  if (!detail.empty()) {
    name_ += ':';
    name_ += detail;
  }
  depth_ = t_depth++;
  start_us_ = tracer.now_us();
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  --t_depth;
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.tid = Tracer::this_thread_id();
  ev.depth = depth_;
  ev.start_us = start_us_;
  ev.dur_us = tracer_->now_us() - start_us_;
  tracer_->record(std::move(ev));
}

ScopedTimer::ScopedTimer(Histogram& hist, const char* span_name, Tracer& tracer) {
  if (!Telemetry::enabled()) return;
  hist_ = &hist;
  tracer_ = &tracer;
  span_name_ = span_name;
  if (span_name_ != nullptr) depth_ = t_depth++;
  start_us_ = tracer.now_us();
}

ScopedTimer::~ScopedTimer() {
  if (hist_ == nullptr) return;
  const std::int64_t elapsed = tracer_->now_us() - start_us_;
  hist_->observe(elapsed);
  if (span_name_ != nullptr) {
    --t_depth;
    TraceEvent ev;
    ev.name = span_name_;
    ev.tid = Tracer::this_thread_id();
    ev.depth = depth_;
    ev.start_us = start_us_;
    ev.dur_us = elapsed;
    tracer_->record(std::move(ev));
  }
}

}  // namespace fbdcsim::telemetry
