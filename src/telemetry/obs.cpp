#include "fbdcsim/telemetry/obs.h"

#include <cstdio>
#include <cstdlib>

namespace fbdcsim::telemetry {

const char* to_string(ObsConfig::Mode mode) {
  switch (mode) {
    case ObsConfig::Mode::kOff:
      return "off";
    case ObsConfig::Mode::kOn:
      return "on";
    case ObsConfig::Mode::kDump:
      return "dump";
  }
  return "unknown";
}

std::optional<ObsConfig> parse_obs_spec(std::string_view spec, std::string* error) {
  const auto fail = [error](std::string why) -> std::optional<ObsConfig> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };
  ObsConfig config;
  if (spec == "off") return config;
  if (spec == "on") {
    config.mode = ObsConfig::Mode::kOn;
    return config;
  }
  if (spec == "dump") {
    config.mode = ObsConfig::Mode::kDump;
    return config;
  }
  if (spec == "flows") {
    config.mode = ObsConfig::Mode::kOn;
    config.flows = true;
    return config;
  }
  const auto parse_count = [&fail](std::string_view arg, const char* what,
                                   std::size_t& out) -> std::optional<ObsConfig> {
    if (arg.empty()) {
      return fail(std::string{what} + ": requires a record count");
    }
    std::size_t n = 0;
    for (const char c : arg) {
      if (c < '0' || c > '9') {
        return fail(std::string{what} + " count is not a positive integer");
      }
      n = n * 10 + static_cast<std::size_t>(c - '0');
      if (n > 1048576) return fail(std::string{what} + " count exceeds 1048576");
    }
    if (n == 0) return fail(std::string{what} + " count must be >= 1");
    out = n;
    return ObsConfig{};  // marker: parse succeeded (caller fills the config)
  };
  constexpr std::string_view kDumpPrefix = "dump:";
  if (spec.substr(0, kDumpPrefix.size()) == kDumpPrefix) {
    std::size_t n = 0;
    if (!parse_count(spec.substr(kDumpPrefix.size()), "dump", n)) return std::nullopt;
    config.mode = ObsConfig::Mode::kDump;
    config.flight_recorder = n;
    return config;
  }
  constexpr std::string_view kFlowsPrefix = "flows:";
  if (spec.substr(0, kFlowsPrefix.size()) == kFlowsPrefix) {
    std::size_t n = 0;
    if (!parse_count(spec.substr(kFlowsPrefix.size()), "flows", n)) return std::nullopt;
    config.mode = ObsConfig::Mode::kOn;
    config.flows = true;
    config.flow_capacity = n;
    return config;
  }
  return fail("expected off|on|dump[:N]|flows[:N]");
}

ObsConfig obs_config_from_env() {
  const char* env = std::getenv("FBDCSIM_OBS");
  if (env == nullptr) return ObsConfig{};
  std::string error;
  if (const auto config = parse_obs_spec(env, &error)) return *config;
  std::fprintf(stderr, "FBDCSIM_OBS='%s' is invalid (%s); observability stays off\n", env,
               error.c_str());
  return ObsConfig{};
}

}  // namespace fbdcsim::telemetry
