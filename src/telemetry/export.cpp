#include "fbdcsim/telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace fbdcsim::telemetry {

namespace {

/// %.17g round-trips doubles exactly and never depends on locale here
/// (metric names and numbers only).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_kv(std::string& out, const std::string& key, const std::string& raw_value,
               bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += json_escape(key);
  out += "\":";
  out += raw_value;
}

void summary_rows(std::FILE* out, const Snapshot& snap, Kind kind) {
  for (const auto& c : snap.counters) {
    if (c.kind != kind) continue;
    std::fprintf(out, "  %-9s %-4s %-38s %20" PRId64 "\n", "counter", to_string(c.kind),
                 c.name.c_str(), c.value);
  }
  for (const auto& g : snap.gauges) {
    if (g.kind != kind) continue;
    std::fprintf(out, "  %-9s %-4s %-38s %20" PRId64 "\n", "gauge", to_string(g.kind),
                 g.name.c_str(), g.value);
  }
  for (const auto& h : snap.histograms) {
    if (h.kind != kind) continue;
    std::fprintf(out,
                 "  %-9s %-4s %-38s count %-10" PRId64 " mean %-12.4g p50 %-12.4g "
                 "p99 %-12.4g max %" PRId64 "\n",
                 "histogram", to_string(h.kind), h.name.c_str(), h.count, h.mean(),
                 h.quantile(0.50), h.quantile(0.99), h.max);
  }
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_summary(std::FILE* out, const Snapshot& snapshot) {
  std::fprintf(out, "telemetry summary\n");
  std::fprintf(out, "  -- sim (deterministic: bit-identical across thread counts) --\n");
  summary_rows(out, snapshot, Kind::kSim);
  std::fprintf(out, "  -- wall (timing/scheduling dependent) --\n");
  summary_rows(out, snapshot, Kind::kWall);
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{";
  bool first_kind = true;
  for (const Kind kind : {Kind::kSim, Kind::kWall}) {
    if (!first_kind) out += ',';
    first_kind = false;
    out += '"';
    out += to_string(kind);
    out += "\":{";

    out += "\"counters\":{";
    bool first = true;
    for (const auto& c : snapshot.counters) {
      if (c.kind == kind) append_kv(out, c.name, std::to_string(c.value), first);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& g : snapshot.gauges) {
      if (g.kind == kind) append_kv(out, g.name, std::to_string(g.value), first);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& h : snapshot.histograms) {
      if (h.kind != kind) continue;
      std::string body = "{";
      body += "\"count\":" + std::to_string(h.count);
      body += ",\"sum\":" + fmt_double(h.sum);
      body += ",\"min\":" + std::to_string(h.count > 0 ? h.min : 0);
      body += ",\"max\":" + std::to_string(h.count > 0 ? h.max : 0);
      body += ",\"mean\":" + fmt_double(h.mean());
      body += ",\"p50\":" + fmt_double(h.quantile(0.50));
      body += ",\"p90\":" + fmt_double(h.quantile(0.90));
      body += ",\"p99\":" + fmt_double(h.quantile(0.99));
      body += '}';
      append_kv(out, h.name, body, first);
    }
    out += "}}";
  }
  out += '}';
  return out;
}

namespace {

/// Renders the wall-span slice list (no enclosing document) so the combined
/// exporter reuses the exact same bytes for the wall section.
std::string wall_span_events(const std::vector<TraceEvent>& events) {
  std::string out;
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json_escape(ev.name);
    out += "\",\"cat\":\"fbdcsim\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"ts\":";
    out += std::to_string(ev.start_us);
    out += ",\"dur\":";
    out += std::to_string(ev.dur_us);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(ev.depth);
    out += "}}";
  }
  return out;
}

/// Sim-clock instant events, dumps already in canonical order. pid 2 keeps
/// the sim timeline in its own track group: the wall spans' ts values are
/// wall microseconds since program start, these are sim microseconds since
/// t=0 — Perfetto renders them side by side but they must never share a pid.
std::string sim_instant_events(const std::vector<TracePointDump>& dumps) {
  std::string out;
  bool first = true;
  for (const TracePointDump& d : dumps) {
    for (const TracePointRecord& r : d.records) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      out += to_string(r.kind);
      out += "\",\"cat\":\"fbdcsim.sim\",\"ph\":\"i\",\"s\":\"p\",\"pid\":2,\"tid\":";
      out += std::to_string(d.source_id);
      out += ",\"ts\":";
      out += std::to_string(r.t_ns / 1000);
      out += ",\"args\":{\"t_ns\":";
      out += std::to_string(r.t_ns);
      out += ",\"entity\":";
      out += std::to_string(r.entity);
      out += ",\"a\":";
      out += std::to_string(r.a);
      out += ",\"b\":";
      out += std::to_string(r.b);
      out += "}}";
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += wall_span_events(events);
  out += "]}";
  return out;
}

std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                            std::vector<TracePointDump> tracepoints) {
  std::stable_sort(tracepoints.begin(), tracepoints.end(),
                   [](const TracePointDump& a, const TracePointDump& b) {
                     return a.source_id < b.source_id;
                   });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  const std::string wall = wall_span_events(events);
  const std::string sim = sim_instant_events(tracepoints);
  out += wall;
  if (!wall.empty() && !sim.empty()) out += ',';
  out += sim;
  out += "]}";
  return out;
}

}  // namespace fbdcsim::telemetry
