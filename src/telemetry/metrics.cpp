#include "fbdcsim/telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace fbdcsim::telemetry {

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kSim:
      return "sim";
    case Kind::kWall:
      return "wall";
  }
  return "?";
}

namespace {

bool initial_enabled_from_env() {
  const char* env = std::getenv("FBDCSIM_TELEMETRY");
  if (env == nullptr) return true;
  if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
      std::strcmp(env, "true") == 0) {
    return true;
  }
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
      std::strcmp(env, "false") == 0) {
    return false;
  }
  std::fprintf(stderr,
               "FBDCSIM_TELEMETRY='%s' is not one of 0/1/on/off/true/false; "
               "leaving telemetry enabled\n",
               env);
  return true;
}

}  // namespace

std::atomic<bool>& Telemetry::state() noexcept {
  static std::atomic<bool> s{initial_enabled_from_env()};
  return s;
}

namespace detail {

std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

void Histogram::observe(std::int64_t value) noexcept {
  if (value < 0) value = 0;
  Shard& s = shards_[detail::this_thread_shard()];
  s.bins[bin_for(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::int64_t cur = s.min.load(std::memory_order_relaxed);
  while (value < cur && !s.min.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (value > cur && !s.max.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

double Histogram::bin_midpoint(std::size_t bin) noexcept {
  constexpr std::size_t kExact = 1u << (kSubBits + 1);  // bins 0..15 hold v == bin
  if (bin < kExact) return static_cast<double>(bin);
  const std::size_t group = (bin >> kSubBits) - 1;  // octaves past the exact range
  const unsigned msb = static_cast<unsigned>(group) + kSubBits;
  const std::uint64_t width = 1ull << (msb - kSubBits);
  const std::uint64_t lo = (1ull << msb) + (bin & ((1u << kSubBits) - 1)) * width;
  return static_cast<double>(lo) + static_cast<double>(width) / 2.0;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& b : s.bins) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<std::int64_t>::max(), std::memory_order_relaxed);
    s.max.store(std::numeric_limits<std::int64_t>::min(), std::memory_order_relaxed);
  }
}

double Snapshot::HistogramValue::quantile(double q) const {
  if (count <= 0 || bins.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; everything between has bin-midpoint
  // resolution.
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  // Nearest-rank over the merged bins, then clamp to the exact extremes.
  const double target = q * static_cast<double>(count);
  std::int64_t seen = 0;
  for (std::size_t b = 0; b < bins.size(); ++b) {
    seen += bins[b];
    if (static_cast<double>(seen) >= target) {
      const double mid = Histogram::bin_midpoint(b);
      return std::clamp(mid, static_cast<double>(min), static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

namespace {

template <typename V>
const V* find_by_name(const std::vector<V>& entries, std::string_view name) {
  for (const V& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void check_kind(Kind a, Kind b, const std::string& name) {
  if (a != b) {
    throw std::invalid_argument{"Snapshot::merge: metric '" + name +
                                "' has mismatched kinds"};
  }
}

/// Merges `from` into `to` (both sorted by name) with `combine(dst, src)`
/// applied to same-name entries; absent names are copied. Keeps order.
template <typename V, typename Combine>
void merge_sorted(std::vector<V>& to, const std::vector<V>& from, Combine combine) {
  std::vector<V> out;
  out.reserve(to.size() + from.size());
  std::size_t i = 0, j = 0;
  while (i < to.size() || j < from.size()) {
    if (j >= from.size() || (i < to.size() && to[i].name < from[j].name)) {
      out.push_back(std::move(to[i++]));
    } else if (i >= to.size() || from[j].name < to[i].name) {
      out.push_back(from[j++]);
    } else {
      check_kind(to[i].kind, from[j].kind, to[i].name);
      V merged = std::move(to[i++]);
      combine(merged, from[j++]);
      out.push_back(std::move(merged));
    }
  }
  to = std::move(out);
}

}  // namespace

void Snapshot::merge(const Snapshot& other) {
  merge_sorted(counters, other.counters,
               [](CounterValue& dst, const CounterValue& src) { dst.value += src.value; });
  merge_sorted(gauges, other.gauges, [](GaugeValue& dst, const GaugeValue& src) {
    dst.value = std::max(dst.value, src.value);
  });
  merge_sorted(histograms, other.histograms,
               [](HistogramValue& dst, const HistogramValue& src) {
                 if (src.count == 0) return;
                 if (dst.count == 0) {
                   const std::string name = dst.name;
                   const Kind kind = dst.kind;
                   dst = src;
                   dst.name = name;
                   dst.kind = kind;
                   return;
                 }
                 dst.min = std::min(dst.min, src.min);
                 dst.max = std::max(dst.max, src.max);
                 dst.count += src.count;
                 dst.sum += src.sum;
                 if (dst.bins.size() < src.bins.size()) dst.bins.resize(src.bins.size(), 0);
                 for (std::size_t b = 0; b < src.bins.size(); ++b) dst.bins[b] += src.bins[b];
               });
}

const Snapshot::CounterValue* Snapshot::counter(std::string_view name) const {
  return find_by_name(counters, name);
}
const Snapshot::GaugeValue* Snapshot::gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}
const Snapshot::HistogramValue* Snapshot::histogram(std::string_view name) const {
  return find_by_name(histograms, name);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name, Kind kind) {
  std::lock_guard<std::mutex> lk{mu_};
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument{"MetricsRegistry: counter '" + std::string{name} +
                                  "' re-declared with a different kind"};
    }
    return *it->second.metric;
  }
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    throw std::invalid_argument{"MetricsRegistry: '" + std::string{name} +
                                "' already exists as another metric type"};
  }
  auto& entry = counters_[std::string{name}];
  entry.kind = kind;
  entry.metric = std::make_unique<Counter>();
  return *entry.metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Kind kind) {
  std::lock_guard<std::mutex> lk{mu_};
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument{"MetricsRegistry: gauge '" + std::string{name} +
                                  "' re-declared with a different kind"};
    }
    return *it->second.metric;
  }
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    throw std::invalid_argument{"MetricsRegistry: '" + std::string{name} +
                                "' already exists as another metric type"};
  }
  auto& entry = gauges_[std::string{name}];
  entry.kind = kind;
  entry.metric = std::make_unique<Gauge>();
  return *entry.metric;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Kind kind) {
  std::lock_guard<std::mutex> lk{mu_};
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument{"MetricsRegistry: histogram '" + std::string{name} +
                                  "' re-declared with a different kind"};
    }
    return *it->second.metric;
  }
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    throw std::invalid_argument{"MetricsRegistry: '" + std::string{name} +
                                "' already exists as another metric type"};
  }
  auto& entry = histograms_[std::string{name}];
  entry.kind = kind;
  entry.metric = std::make_unique<Histogram>();
  return *entry.metric;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk{mu_};
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, entry] : counters_) {
    snap.counters.push_back({name, entry.kind, entry.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, entry] : gauges_) {
    snap.gauges.push_back({name, entry.kind, entry.metric->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, entry] : histograms_) {
    Snapshot::HistogramValue h;
    h.name = name;
    h.kind = entry.kind;
    h.bins.assign(Histogram::kBins, 0);
    std::int64_t mn = std::numeric_limits<std::int64_t>::max();
    std::int64_t mx = std::numeric_limits<std::int64_t>::min();
    for (const Histogram::Shard& s : entry.metric->shards_) {
      h.count += s.count.load(std::memory_order_relaxed);
      h.sum += static_cast<double>(s.sum.load(std::memory_order_relaxed));
      mn = std::min(mn, s.min.load(std::memory_order_relaxed));
      mx = std::max(mx, s.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < Histogram::kBins; ++b) {
        h.bins[b] += s.bins[b].load(std::memory_order_relaxed);
      }
    }
    if (h.count > 0) {
      h.min = mn;
      h.max = mx;
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk{mu_};
  for (auto& [name, entry] : counters_) entry.metric->reset();
  for (auto& [name, entry] : gauges_) entry.metric->reset();
  for (auto& [name, entry] : histograms_) entry.metric->reset();
}

}  // namespace fbdcsim::telemetry
