#include "fbdcsim/telemetry/flow_ledger.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <new>

namespace fbdcsim::telemetry {

const char* to_string(FlowDropCause cause) {
  switch (cause) {
    case FlowDropCause::kSwitchBuffer:
      return "switch_buffer";
    case FlowDropCause::kPathLoss:
      return "path_loss";
    case FlowDropCause::kScripted:
      return "scripted";
  }
  return "unknown";
}

const char* to_string(FlowRtxKind kind) {
  switch (kind) {
    case FlowRtxKind::kDupack:
      return "dupack";
    case FlowRtxKind::kRto:
      return "rto";
  }
  return "unknown";
}

const char* to_string(FlowEpisodeKind kind) {
  switch (kind) {
    case FlowEpisodeKind::kFastRecovery:
      return "fast_recovery";
    case FlowEpisodeKind::kSackRecovery:
      return "sack_recovery";
    case FlowEpisodeKind::kRto:
      return "rto";
    case FlowEpisodeKind::kEcnReduction:
      return "ecn_reduction";
  }
  return "unknown";
}

std::int64_t ideal_fct_ns(std::int64_t bytes, std::int64_t rtt_ns,
                          std::int64_t bottleneck_bytes_per_sec) {
  if (bytes <= 0 || bottleneck_bytes_per_sec <= 0) return rtt_ns;
  const auto serialization = static_cast<std::int64_t>(
      (static_cast<__int128>(bytes) * 1'000'000'000) / bottleneck_bytes_per_sec);
  return rtt_ns + serialization;
}

FlowLedger::FlowLedger(std::uint64_t source_id, std::size_t capacity)
    : capacity_{capacity == 0 ? 1 : capacity}, source_id_{source_id} {
  ring_ = static_cast<FlowLedgerRecord*>(
      arena_.allocate(capacity_ * sizeof(FlowLedgerRecord), alignof(FlowLedgerRecord)));
  for (std::size_t i = 0; i < capacity_; ++i) new (ring_ + i) FlowLedgerRecord{};
}

FlowLedger::ConnLive* FlowLedger::live(std::uint32_t tag) {
  const auto it = live_.find(tag);
  return it == live_.end() ? nullptr : &it->second;
}

void FlowLedger::on_birth(std::uint32_t tag, std::int64_t t_ns,
                          const core::FiveTuple& tuple, core::HostRole role,
                          core::HostRole peer_role, core::Locality locality,
                          std::int64_t rtt_out_ns, std::int64_t rtt_in_ns,
                          std::int64_t bottleneck_bytes_per_sec) {
  ConnLive& conn = live_[tag];
  conn = ConnLive{};
  conn.serial = ++next_conn_serial_;
  conn.tuple = tuple;
  conn.role = role;
  conn.peer_role = peer_role;
  conn.locality = locality;
  conn.born_ns = t_ns;
  conn.rtt_ns[0] = rtt_out_ns;
  conn.rtt_ns[1] = rtt_in_ns;
  conn.bottleneck_bps = bottleneck_bytes_per_sec;
}

void FlowLedger::on_syn(std::uint32_t tag, std::int64_t t_ns) {
  (void)t_ns;
  if (ConnLive* conn = live(tag)) ++conn->syn_sends;
}

void FlowLedger::on_established(std::uint32_t tag, std::int64_t t_ns) {
  if (ConnLive* conn = live(tag)) {
    if (conn->established_ns < 0) conn->established_ns = t_ns;
  }
}

FlowLedgerRecord& FlowLedger::open_transfer(ConnLive& conn, std::uint32_t tag, int dir,
                                            std::int64_t t_ns) {
  FlowLedgerRecord* rec = pool_.create();
  *rec = FlowLedgerRecord{};
  rec->id = ++next_record_id_;
  rec->flow_tag = tag;
  rec->dir = static_cast<std::uint8_t>(dir);
  rec->role = conn.role;
  rec->peer_role = conn.peer_role;
  rec->locality = conn.locality;
  rec->tuple = conn.tuple;
  rec->conn_born_ns = conn.born_ns;
  rec->start_ns = t_ns;
  rec->rtt_ns = conn.rtt_ns[dir];
  rec->bottleneck_bps = conn.bottleneck_bps;
  conn.half[dir].open = rec;
  ++open_transfers_;
  return *rec;
}

void FlowLedger::close_transfer(ConnLive& conn, int dir, std::int64_t completed_ns) {
  HalfLive& h = conn.half[dir];
  FlowLedgerRecord* rec = h.open;
  rec->completed_ns = completed_ns;
  rec->syn_sends = conn.syn_sends;
  rec->established_ns = conn.established_ns;
  rec->ideal_ns = ideal_fct_ns(rec->bytes, rec->rtt_ns, rec->bottleneck_bps);
  push_to_ring(*rec);
  pool_.destroy(rec);
  h.open = nullptr;
  h.rto_cause_id = -1;
  h.in_recovery = false;
  --open_transfers_;
}

void FlowLedger::push_to_ring(const FlowLedgerRecord& record) {
  ring_[next_] = record;
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

void FlowLedger::on_demand(std::uint32_t tag, std::int64_t t_ns, int dir,
                           std::int64_t bytes) {
  ConnLive* conn = live(tag);
  if (conn == nullptr || bytes <= 0) return;
  HalfLive& h = conn->half[dir];
  h.demanded += bytes;
  if (h.open != nullptr) {
    h.open->bytes += bytes;  // pipelined demand extends the open transfer
  } else {
    open_transfer(*conn, tag, dir, t_ns).bytes = bytes;
  }
}

void FlowLedger::on_acked(std::uint32_t tag, std::int64_t t_ns, int dir,
                          std::int64_t snd_una) {
  ConnLive* conn = live(tag);
  if (conn == nullptr) return;
  HalfLive& h = conn->half[dir];
  if (snd_una > h.acked) h.acked = snd_una;
  if (h.open != nullptr && h.acked >= h.demanded) close_transfer(*conn, dir, t_ns);
}

void FlowLedger::on_drop(std::uint32_t tag, std::int64_t t_ns, int dir, std::int64_t seq,
                         std::int64_t len, FlowDropCause cause, std::uint64_t switch_id,
                         std::int32_t port, std::int64_t fault_epoch) {
  ConnLive* conn = live(tag);
  FlowLedgerRecord* rec = conn == nullptr ? nullptr : conn->half[dir].open;
  if (rec == nullptr) {
    ++stray_events_;
    return;
  }
  ++rec->drops_total;
  const std::int64_t id = ++next_drop_id_;
  if (rec->drop_count < kFlowMaxDrops) {
    FlowDropEvent& e = rec->drops[rec->drop_count++];
    e.id = id;
    e.t_ns = t_ns;
    e.seq = seq;
    e.len = len;
    e.cause = cause;
    e.claimed = false;
    e.port = port;
    e.switch_id = switch_id;
    e.fault_epoch = fault_epoch;
  }
}

void FlowLedger::on_retransmit(std::uint32_t tag, std::int64_t t_ns, int dir,
                               std::int64_t seq, std::int64_t len, FlowRtxKind kind) {
  ConnLive* conn = live(tag);
  FlowLedgerRecord* rec = conn == nullptr ? nullptr : conn->half[dir].open;
  if (rec == nullptr) {
    ++stray_events_;
    return;
  }
  ++rec->rtx_total;
  rec->rtx_bytes += len;
  // Causal link: claim the earliest unclaimed drop overlapping this byte
  // range; a go-back-N resend with no drop of its own inherits the drop the
  // RTO was pinned on.
  std::int64_t cause_id = -1;
  for (std::size_t i = 0; i < rec->drop_count; ++i) {
    FlowDropEvent& e = rec->drops[i];
    if (e.claimed) continue;
    if (e.seq < seq + len && seq < e.seq + e.len) {
      e.claimed = true;
      cause_id = e.id;
      break;
    }
  }
  if (cause_id < 0 && kind == FlowRtxKind::kRto) {
    cause_id = conn->half[dir].rto_cause_id;
  }
  if (rec->rtx_count < kFlowMaxRtx) {
    FlowRtxEvent& e = rec->rtxs[rec->rtx_count++];
    e.t_ns = t_ns;
    e.seq = seq;
    e.len = len;
    e.cause_id = cause_id;
    e.kind = kind;
  }
}

void FlowLedger::on_recovery_enter(std::uint32_t tag, std::int64_t t_ns, int dir,
                                   FlowEpisodeKind kind) {
  ConnLive* conn = live(tag);
  FlowLedgerRecord* rec = conn == nullptr ? nullptr : conn->half[dir].open;
  if (rec == nullptr) {
    ++stray_events_;
    return;
  }
  HalfLive& h = conn->half[dir];
  if (h.in_recovery) return;  // episodes never overlap, by construction
  h.in_recovery = true;
  if (rec->episode_count < kFlowMaxEpisodes) {
    FlowEpisode& e = rec->episodes[rec->episode_count++];
    e.start_ns = t_ns;
    e.end_ns = -1;
    e.detail = 0;
    e.kind = kind;
  }
}

void FlowLedger::on_recovery_exit(std::uint32_t tag, std::int64_t t_ns, int dir) {
  ConnLive* conn = live(tag);
  FlowLedgerRecord* rec = conn == nullptr ? nullptr : conn->half[dir].open;
  if (rec == nullptr) {
    ++stray_events_;
    return;
  }
  HalfLive& h = conn->half[dir];
  if (!h.in_recovery) return;
  h.in_recovery = false;
  for (std::size_t i = rec->episode_count; i-- > 0;) {
    FlowEpisode& e = rec->episodes[i];
    if (e.end_ns < 0 && (e.kind == FlowEpisodeKind::kFastRecovery ||
                         e.kind == FlowEpisodeKind::kSackRecovery)) {
      e.end_ns = t_ns;
      return;
    }
  }
}

void FlowLedger::on_rto(std::uint32_t tag, std::int64_t t_ns, int dir,
                        std::int64_t backoff) {
  ConnLive* conn = live(tag);
  FlowLedgerRecord* rec = conn == nullptr ? nullptr : conn->half[dir].open;
  if (rec == nullptr) {
    ++stray_events_;
    return;
  }
  HalfLive& h = conn->half[dir];
  ++rec->rto_count;
  // A timeout ends any loss-recovery episode in flight (the scoreboard /
  // inflation state is discarded for go-back-N).
  if (h.in_recovery) on_recovery_exit(tag, t_ns, dir);
  // Pin the timeout on the drop covering the stalled ACK edge, so the
  // go-back-N resends that follow inherit the true cause.
  h.rto_cause_id = -1;
  for (std::size_t i = 0; i < rec->drop_count; ++i) {
    const FlowDropEvent& e = rec->drops[i];
    if (e.seq <= h.acked && h.acked < e.seq + e.len) {
      h.rto_cause_id = e.id;
      break;
    }
  }
  if (rec->episode_count < kFlowMaxEpisodes) {
    FlowEpisode& e = rec->episodes[rec->episode_count++];
    e.start_ns = t_ns;
    e.end_ns = t_ns;
    e.detail = backoff;
    e.kind = FlowEpisodeKind::kRto;
  }
}

void FlowLedger::on_ecn_reduction(std::uint32_t tag, std::int64_t t_ns, int dir,
                                  std::int64_t cwnd_after) {
  ConnLive* conn = live(tag);
  FlowLedgerRecord* rec = conn == nullptr ? nullptr : conn->half[dir].open;
  if (rec == nullptr) {
    ++stray_events_;
    return;
  }
  ++rec->ecn_reductions;
  if (rec->episode_count < kFlowMaxEpisodes) {
    FlowEpisode& e = rec->episodes[rec->episode_count++];
    e.start_ns = t_ns;
    e.end_ns = t_ns;
    e.detail = cwnd_after;
    e.kind = FlowEpisodeKind::kEcnReduction;
  }
}

void FlowLedger::on_release(std::uint32_t tag, std::int64_t t_ns) {
  (void)t_ns;
  const auto it = live_.find(tag);
  if (it == live_.end()) return;
  ConnLive& conn = it->second;
  for (int dir = 0; dir < 2; ++dir) {
    if (conn.half[dir].open != nullptr) close_transfer(conn, dir, -1);
  }
  live_.erase(it);
}

void FlowLedger::finalize(std::int64_t t_ns) {
  (void)t_ns;
  std::vector<ConnLive*> pending;
  for (auto& [tag, conn] : live_) {
    if (conn.half[0].open != nullptr || conn.half[1].open != nullptr) {
      pending.push_back(&conn);
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const ConnLive* a, const ConnLive* b) { return a->serial < b->serial; });
  for (ConnLive* conn : pending) {
    for (int dir = 0; dir < 2; ++dir) {
      if (conn->half[dir].open != nullptr) close_transfer(*conn, dir, -1);
    }
  }
}

FlowLedgerDump FlowLedger::snapshot() const {
  FlowLedgerDump dump;
  dump.source_id = source_id_;
  dump.total = total_;
  dump.stray_events = stray_events_;
  const std::size_t count =
      total_ < static_cast<std::int64_t>(capacity_) ? static_cast<std::size_t>(total_)
                                                    : capacity_;
  dump.records.reserve(count);
  const std::size_t start = total_ < static_cast<std::int64_t>(capacity_) ? 0 : next_;
  for (std::size_t i = 0; i < count; ++i) {
    dump.records.push_back(ring_[(start + i) % capacity_]);
  }
  return dump;
}

// ---- canonical JSONL ----

namespace {

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_record(std::string& out, std::uint64_t source,
                   const FlowLedgerRecord& r) {
  out += "{\"source\":";
  append_uint(out, source);
  out += ",\"id\":";
  append_int(out, r.id);
  out += ",\"tag\":";
  append_uint(out, r.flow_tag);
  out += ",\"dir\":\"";
  out += r.dir == 0 ? "out" : "in";
  out += "\",\"role\":\"";
  out += core::to_string(r.role);
  out += "\",\"peer_role\":\"";
  out += core::to_string(r.peer_role);
  out += "\",\"locality\":\"";
  out += core::to_string(r.locality);
  out += "\",\"tuple\":\"";
  out += r.tuple.to_string();
  out += "\",\"born_ns\":";
  append_int(out, r.conn_born_ns);
  out += ",\"syn_sends\":";
  append_int(out, r.syn_sends);
  out += ",\"established_ns\":";
  append_int(out, r.established_ns);
  out += ",\"start_ns\":";
  append_int(out, r.start_ns);
  out += ",\"completed_ns\":";
  append_int(out, r.completed_ns);
  out += ",\"bytes\":";
  append_int(out, r.bytes);
  out += ",\"rtx_bytes\":";
  append_int(out, r.rtx_bytes);
  out += ",\"rtt_ns\":";
  append_int(out, r.rtt_ns);
  out += ",\"bottleneck_bps\":";
  append_int(out, r.bottleneck_bps);
  out += ",\"ideal_ns\":";
  append_int(out, r.ideal_ns);
  out += ",\"drops_total\":";
  append_int(out, r.drops_total);
  out += ",\"rtx_total\":";
  append_int(out, r.rtx_total);
  out += ",\"rto_count\":";
  append_int(out, r.rto_count);
  out += ",\"ecn_reductions\":";
  append_int(out, r.ecn_reductions);
  out += ",\"drops\":[";
  for (std::size_t i = 0; i < r.drop_count; ++i) {
    const FlowDropEvent& e = r.drops[i];
    if (i > 0) out += ',';
    out += "{\"id\":";
    append_int(out, e.id);
    out += ",\"t_ns\":";
    append_int(out, e.t_ns);
    out += ",\"seq\":";
    append_int(out, e.seq);
    out += ",\"len\":";
    append_int(out, e.len);
    out += ",\"cause\":\"";
    out += to_string(e.cause);
    out += "\",\"switch\":";
    append_uint(out, e.switch_id);
    out += ",\"port\":";
    append_int(out, e.port);
    out += ",\"fault_epoch\":";
    append_int(out, e.fault_epoch);
    out += ",\"claimed\":";
    out += e.claimed ? '1' : '0';
    out += '}';
  }
  out += "],\"rtx\":[";
  for (std::size_t i = 0; i < r.rtx_count; ++i) {
    const FlowRtxEvent& e = r.rtxs[i];
    if (i > 0) out += ',';
    out += "{\"t_ns\":";
    append_int(out, e.t_ns);
    out += ",\"seq\":";
    append_int(out, e.seq);
    out += ",\"len\":";
    append_int(out, e.len);
    out += ",\"kind\":\"";
    out += to_string(e.kind);
    out += "\",\"cause_id\":";
    append_int(out, e.cause_id);
    out += '}';
  }
  out += "],\"episodes\":[";
  for (std::size_t i = 0; i < r.episode_count; ++i) {
    const FlowEpisode& e = r.episodes[i];
    if (i > 0) out += ',';
    out += "{\"kind\":\"";
    out += to_string(e.kind);
    out += "\",\"start_ns\":";
    append_int(out, e.start_ns);
    out += ",\"end_ns\":";
    append_int(out, e.end_ns);
    out += ",\"detail\":";
    append_int(out, e.detail);
    out += '}';
  }
  out += "]}\n";
}

}  // namespace

std::string flows_to_jsonl(std::vector<FlowLedgerDump> dumps) {
  std::stable_sort(dumps.begin(), dumps.end(),
                   [](const FlowLedgerDump& a, const FlowLedgerDump& b) {
                     return a.source_id < b.source_id;
                   });
  std::string out;
  for (const FlowLedgerDump& dump : dumps) {
    for (const FlowLedgerRecord& r : dump.records) {
      append_record(out, dump.source_id, r);
    }
  }
  return out;
}

// ---- parser (inverse of flows_to_jsonl, canonical input) ----

namespace {

struct Cursor {
  const char* p;
  const char* end;

  [[nodiscard]] bool done() const { return p >= end; }
  [[nodiscard]] bool eat(char c) {
    if (done() || *p != c) return false;
    ++p;
    return true;
  }
  [[nodiscard]] bool peek(char c) const { return !done() && *p == c; }
};

bool parse_int(Cursor& c, std::int64_t& out) {
  const bool neg = c.eat('-');
  if (c.done() || *c.p < '0' || *c.p > '9') return false;
  std::int64_t v = 0;
  while (!c.done() && *c.p >= '0' && *c.p <= '9') {
    v = v * 10 + (*c.p - '0');
    ++c.p;
  }
  out = neg ? -v : v;
  return true;
}

bool parse_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (!c.done() && *c.p != '"') {
    if (*c.p == '\\') return false;  // canonical output never escapes
    out += *c.p++;
  }
  return c.eat('"');
}

bool parse_key(Cursor& c, const char* key) {
  std::string k;
  return parse_string(c, k) && k == key && c.eat(':');
}

template <typename Enum, std::size_t N>
bool enum_from_string(const std::string& s, const Enum (&values)[N], Enum& out) {
  for (const Enum v : values) {
    if (s == to_string(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

bool parse_tuple(const std::string& s, core::FiveTuple& out) {
  const auto arrow = s.find("->");
  const auto slash = s.rfind('/');
  if (arrow == std::string::npos || slash == std::string::npos || slash < arrow) {
    return false;
  }
  const auto endpoint = [](const std::string& part, core::Ipv4Addr& addr,
                           core::Port& port) {
    const auto colon = part.rfind(':');
    if (colon == std::string::npos) return false;
    if (!core::Ipv4Addr::try_parse(part.substr(0, colon), addr)) return false;
    std::int64_t p = 0;
    Cursor c{part.data() + colon + 1, part.data() + part.size()};
    if (!parse_int(c, p) || !c.done() || p < 0 || p > 65535) return false;
    port = static_cast<core::Port>(p);
    return true;
  };
  if (!endpoint(s.substr(0, arrow), out.src_ip, out.src_port)) return false;
  if (!endpoint(s.substr(arrow + 2, slash - arrow - 2), out.dst_ip, out.dst_port)) {
    return false;
  }
  const std::string proto = s.substr(slash + 1);
  if (proto == "tcp") {
    out.protocol = core::Protocol::kTcp;
  } else if (proto == "udp") {
    out.protocol = core::Protocol::kUdp;
  } else {
    return false;
  }
  return true;
}

constexpr core::HostRole kAllRoles[] = {
    core::HostRole::kWeb,       core::HostRole::kCacheFollower,
    core::HostRole::kCacheLeader, core::HostRole::kHadoop,
    core::HostRole::kMultifeed, core::HostRole::kSlb,
    core::HostRole::kDatabase,  core::HostRole::kService};
constexpr core::Locality kAllLocalities[] = {
    core::Locality::kIntraRack, core::Locality::kIntraCluster,
    core::Locality::kIntraDatacenter, core::Locality::kInterDatacenter};
constexpr FlowDropCause kAllCauses[] = {FlowDropCause::kSwitchBuffer,
                                        FlowDropCause::kPathLoss,
                                        FlowDropCause::kScripted};
constexpr FlowRtxKind kAllRtxKinds[] = {FlowRtxKind::kDupack, FlowRtxKind::kRto};
constexpr FlowEpisodeKind kAllEpisodeKinds[] = {
    FlowEpisodeKind::kFastRecovery, FlowEpisodeKind::kSackRecovery,
    FlowEpisodeKind::kRto, FlowEpisodeKind::kEcnReduction};

bool parse_record_line(Cursor& c, std::uint64_t& source, FlowLedgerRecord& r) {
  std::int64_t v = 0;
  std::string s;
  const auto int_field = [&](const char* key, std::int64_t& out) {
    return c.eat(',') && parse_key(c, key) && parse_int(c, out);
  };
  if (!c.eat('{') || !parse_key(c, "source") || !parse_int(c, v) || v < 0) return false;
  source = static_cast<std::uint64_t>(v);
  if (!int_field("id", r.id)) return false;
  if (!int_field("tag", v) || v < 0) return false;
  r.flow_tag = static_cast<std::uint32_t>(v);
  if (!c.eat(',') || !parse_key(c, "dir") || !parse_string(c, s)) return false;
  if (s == "out") {
    r.dir = 0;
  } else if (s == "in") {
    r.dir = 1;
  } else {
    return false;
  }
  if (!c.eat(',') || !parse_key(c, "role") || !parse_string(c, s) ||
      !enum_from_string(s, kAllRoles, r.role)) {
    return false;
  }
  if (!c.eat(',') || !parse_key(c, "peer_role") || !parse_string(c, s) ||
      !enum_from_string(s, kAllRoles, r.peer_role)) {
    return false;
  }
  if (!c.eat(',') || !parse_key(c, "locality") || !parse_string(c, s) ||
      !enum_from_string(s, kAllLocalities, r.locality)) {
    return false;
  }
  if (!c.eat(',') || !parse_key(c, "tuple") || !parse_string(c, s) ||
      !parse_tuple(s, r.tuple)) {
    return false;
  }
  if (!int_field("born_ns", r.conn_born_ns)) return false;
  if (!int_field("syn_sends", r.syn_sends)) return false;
  if (!int_field("established_ns", r.established_ns)) return false;
  if (!int_field("start_ns", r.start_ns)) return false;
  if (!int_field("completed_ns", r.completed_ns)) return false;
  if (!int_field("bytes", r.bytes)) return false;
  if (!int_field("rtx_bytes", r.rtx_bytes)) return false;
  if (!int_field("rtt_ns", r.rtt_ns)) return false;
  if (!int_field("bottleneck_bps", r.bottleneck_bps)) return false;
  if (!int_field("ideal_ns", r.ideal_ns)) return false;
  if (!int_field("drops_total", r.drops_total)) return false;
  if (!int_field("rtx_total", r.rtx_total)) return false;
  if (!int_field("rto_count", r.rto_count)) return false;
  if (!int_field("ecn_reductions", r.ecn_reductions)) return false;

  if (!c.eat(',') || !parse_key(c, "drops") || !c.eat('[')) return false;
  while (!c.peek(']')) {
    if (r.drop_count >= kFlowMaxDrops) return false;
    if (r.drop_count > 0 && !c.eat(',')) return false;
    FlowDropEvent& e = r.drops[r.drop_count];
    if (!c.eat('{') || !parse_key(c, "id") || !parse_int(c, e.id)) return false;
    if (!int_field("t_ns", e.t_ns)) return false;
    if (!int_field("seq", e.seq)) return false;
    if (!int_field("len", e.len)) return false;
    if (!c.eat(',') || !parse_key(c, "cause") || !parse_string(c, s) ||
        !enum_from_string(s, kAllCauses, e.cause)) {
      return false;
    }
    if (!int_field("switch", v) || v < 0) return false;
    e.switch_id = static_cast<std::uint64_t>(v);
    if (!int_field("port", v)) return false;
    e.port = static_cast<std::int32_t>(v);
    if (!int_field("fault_epoch", e.fault_epoch)) return false;
    if (!int_field("claimed", v) || (v != 0 && v != 1)) return false;
    e.claimed = v == 1;
    if (!c.eat('}')) return false;
    ++r.drop_count;
  }
  if (!c.eat(']')) return false;

  if (!c.eat(',') || !parse_key(c, "rtx") || !c.eat('[')) return false;
  while (!c.peek(']')) {
    if (r.rtx_count >= kFlowMaxRtx) return false;
    if (r.rtx_count > 0 && !c.eat(',')) return false;
    FlowRtxEvent& e = r.rtxs[r.rtx_count];
    if (!c.eat('{') || !parse_key(c, "t_ns") || !parse_int(c, e.t_ns)) return false;
    if (!int_field("seq", e.seq)) return false;
    if (!int_field("len", e.len)) return false;
    if (!c.eat(',') || !parse_key(c, "kind") || !parse_string(c, s) ||
        !enum_from_string(s, kAllRtxKinds, e.kind)) {
      return false;
    }
    if (!int_field("cause_id", e.cause_id)) return false;
    if (!c.eat('}')) return false;
    ++r.rtx_count;
  }
  if (!c.eat(']')) return false;

  if (!c.eat(',') || !parse_key(c, "episodes") || !c.eat('[')) return false;
  while (!c.peek(']')) {
    if (r.episode_count >= kFlowMaxEpisodes) return false;
    if (r.episode_count > 0 && !c.eat(',')) return false;
    FlowEpisode& e = r.episodes[r.episode_count];
    if (!c.eat('{') || !parse_key(c, "kind") || !parse_string(c, s) ||
        !enum_from_string(s, kAllEpisodeKinds, e.kind)) {
      return false;
    }
    if (!int_field("start_ns", e.start_ns)) return false;
    if (!int_field("end_ns", e.end_ns)) return false;
    if (!int_field("detail", e.detail)) return false;
    if (!c.eat('}')) return false;
    ++r.episode_count;
  }
  return c.eat(']') && c.eat('}');
}

}  // namespace

std::optional<std::vector<FlowLedgerDump>> flows_from_jsonl(std::string_view jsonl,
                                                            std::string* error) {
  const auto fail = [error](std::size_t line_no, const char* why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return std::nullopt;
  };
  std::vector<FlowLedgerDump> dumps;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    ++line_no;
    auto nl = jsonl.find('\n', pos);
    if (nl == std::string_view::npos) return fail(line_no, "missing trailing newline");
    const std::string_view line = jsonl.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    Cursor c{line.data(), line.data() + line.size()};
    std::uint64_t source = 0;
    FlowLedgerRecord r;
    if (!parse_record_line(c, source, r) || !c.done()) {
      return fail(line_no, "malformed flow record");
    }
    if (dumps.empty() || dumps.back().source_id != source) {
      FlowLedgerDump dump;
      dump.source_id = source;
      dumps.push_back(std::move(dump));
    }
    dumps.back().records.push_back(r);
  }
  for (FlowLedgerDump& dump : dumps) {
    dump.total = static_cast<std::int64_t>(dump.records.size());
  }
  return dumps;
}

}  // namespace fbdcsim::telemetry
