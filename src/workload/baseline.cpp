#include "fbdcsim/workload/baseline.h"

#include <algorithm>

#include "fbdcsim/core/distributions.h"

namespace fbdcsim::workload {

namespace {
using core::Duration;
using core::TimePoint;
}  // namespace

std::vector<core::PacketHeader> generate_literature_trace(
    const topology::Fleet& fleet, core::HostId host, core::Duration duration,
    const LiteratureWorkloadConfig& config) {
  core::RngStream rng{config.seed};
  const topology::Host& self = fleet.host(host);

  // Destination working set: a handful of peers, mostly in-rack.
  std::vector<core::HostId> dests;
  {
    std::vector<core::HostId> rack_peers;
    std::vector<core::HostId> cluster_peers;
    std::vector<core::HostId> far_peers;
    for (const topology::Host& h : fleet.hosts()) {
      if (h.id == host) continue;
      if (h.rack == self.rack) {
        rack_peers.push_back(h.id);
      } else if (h.cluster == self.cluster) {
        cluster_peers.push_back(h.id);
      } else {
        far_peers.push_back(h.id);
      }
    }
    auto pick_from = [&rng](const std::vector<core::HostId>& v) {
      return v[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
    };
    for (int i = 0; i < config.concurrent_destinations; ++i) {
      const double u = rng.uniform();
      if (u < config.rack_local_fraction && !rack_peers.empty()) {
        dests.push_back(pick_from(rack_peers));
      } else if (u < 1.0 - config.off_cluster_fraction && !cluster_peers.empty()) {
        dests.push_back(pick_from(cluster_peers));
      } else if (!far_peers.empty()) {
        dests.push_back(pick_from(far_peers));
      }
    }
    if (dests.empty() && !rack_peers.empty()) dests.push_back(rack_peers.front());
  }

  const core::LogNormal on_period{config.on_period_median_ms * 1e-3, config.period_sigma};
  const core::LogNormal off_period{config.off_period_median_ms * 1e-3, config.period_sigma};
  const core::LogNormal interarrival{config.interarrival_median_us * 1e-6,
                                     config.interarrival_sigma};

  std::vector<core::PacketHeader> trace;
  core::Port src_port = core::ports::kEphemeralBase;
  TimePoint now = TimePoint::zero();
  const TimePoint end = TimePoint::zero() + duration;

  while (now < end) {
    // ON period: a train of packets to one destination (Kapoor et al.'s
    // packet trains), then an OFF gap.
    const core::HostId dst =
        dests[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(dests.size()) - 1))];
    const TimePoint on_end =
        now + Duration::from_seconds(std::min(on_period.sample(rng), 0.5));
    const core::FiveTuple tuple{self.addr, fleet.host(dst).addr,
                                static_cast<core::Port>(src_port++),
                                core::ports::kHdfs, core::Protocol::kTcp};
    while (now < on_end && now < end) {
      core::PacketHeader pkt;
      pkt.timestamp = now;
      pkt.tuple = tuple;
      const bool mtu = rng.bernoulli(config.mtu_fraction);
      pkt.payload_bytes = mtu ? core::wire::kMaxTcpPayloadBytes : 0;
      pkt.frame_bytes = core::wire::tcp_frame_bytes(pkt.payload_bytes);
      pkt.flags = core::TcpFlags{.ack = true, .psh = mtu};
      trace.push_back(pkt);
      now += Duration::from_seconds(std::min(interarrival.sample(rng), 0.01));
    }
    now += Duration::from_seconds(std::min(off_period.sample(rng), 1.0));
  }
  return trace;
}

}  // namespace fbdcsim::workload
