#include "fbdcsim/workload/rack_sim.h"

#include <algorithm>
#include <stdexcept>

#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/transport/mux.h"

namespace fbdcsim::workload {

namespace {
using services::SimPacket;

/// Stable synthetic LinkId for one RSW uplink port, so the fault plan's
/// per-link schedule applies to rack uplinks that have no fleet-level
/// LinkId. Keyed on the run seed: two racks simulated with different seeds
/// see independent uplink fault draws.
core::LinkId uplink_link_id(std::uint64_t seed, int port) {
  return core::LinkId{static_cast<std::uint32_t>(
      core::splitmix64(seed ^ (0xF00DULL + static_cast<std::uint64_t>(port))))};
}
}  // namespace

RackSimulation::RackSimulation(const topology::Fleet& fleet, RackSimConfig config)
    : fleet_{&fleet}, config_{config}, capture_buffer_{config.capture_memory_bytes} {
  if (!config_.monitored_host.is_valid()) {
    throw std::invalid_argument{"RackSimulation: monitored_host required"};
  }
  if (config_.uplink_ports < 1) {
    // The ECMP spread and every uplink-counter analysis assume at least one
    // CSW-facing port; a rack with none would wedge all cross-rack traffic.
    throw std::invalid_argument{"RackSimulation: uplink_ports must be >= 1"};
  }
  rack_ = fleet.host(config_.monitored_host).rack;
  const topology::Rack& rack = fleet.rack(rack_);
  num_host_ports_ = rack.hosts.size();
  if (num_host_ports_ == 0) {
    throw std::invalid_argument{"RackSimulation: monitored rack has no hosts"};
  }

  faulted_ = config_.faults != nullptr && config_.faults->enabled();

#if FBDCSIM_TELEMETRY_ENABLED
  // Observability opt-in. The flight recorder exists from construction so
  // t=0 fault-epoch transitions are captured; registered globally so
  // FlightRecorders::dump_all / the crash handler can reach it.
  if (config_.obs.enabled() && telemetry::Telemetry::enabled()) {
    tracepoints_ = std::make_unique<telemetry::TracePointLog>(
        config_.monitored_host.value(), config_.obs.flight_recorder);
    telemetry::FlightRecorders::add(tracepoints_.get());
    telemetry::FlightRecorders::arm_crash_dump();
    probe_ = std::make_unique<telemetry::TimeSeriesProbe>(config_.obs.probe_period,
                                                          config_.obs.series_capacity);
  }
#endif

  switching::SwitchConfig sw = config_.rsw;
  sw.num_ports = num_host_ports_ + static_cast<std::size_t>(config_.uplink_ports);
  const double shrink = switching::apply_fault_profile(sw, config_.faults, config_.seed);
  // ECN marking composes with buffer-shrink faults: an explicit threshold
  // scales by the same factor as the buffer (keeping K meaningful inside
  // the shrunken buffer), and the DCTCP auto-default derives from the
  // post-shrink size. Scripted and NewReno runs emit no ECT packets, so a
  // configured threshold never fires for them.
  if (shrink < 1.0 && sw.ecn_threshold.count_bytes() > 0) {
    sw.ecn_threshold = core::DataSize::bytes(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(sw.ecn_threshold.count_bytes()) * shrink)));
  }
  if (config_.transport == Transport::kTcp &&
      config_.tcp.cc == transport::CongestionControl::kDctcp &&
      sw.ecn_threshold.count_bytes() <= 0) {
    // Default K: 20 full-size frames (the DCTCP paper's shallow-RTT
    // guideline, K ~ C*RTT/7 — tens of kilobytes at 10 Gbps and this
    // fabric's sub-100-us RTTs), capped at a quarter of the (possibly
    // shrunken) shared buffer so marking always engages well before DT
    // admission starts dropping. The 12-MB Trident-era buffer is ~100x the
    // bandwidth-delay product, so a buffer-proportional K would never fire.
    constexpr std::int64_t kDefaultEcnThresholdBytes = 20 * 1500;
    sw.ecn_threshold = core::DataSize::bytes(std::max<std::int64_t>(
        1, std::min(kDefaultEcnThresholdBytes, sw.buffer_total.count_bytes() / 4)));
  }
  if (shrink < 1.0) {
    FBDCSIM_T_TRACEPOINT(tracepoints_.get(), 0, FaultEpoch, ~std::uint64_t{0},
                         telemetry::kFaultEpochBufferShrunk,
                         static_cast<std::int64_t>(shrink * 1e6));
  }
  // Delivery callback: scripted runs ignore it (packets simply leave the
  // modelled rack); in TCP mode the transport engine observes every egress
  // so ACK clocking and handshake progress are driven by real switch
  // behavior. transport_ is still null here — the check happens per packet.
  rsw_ = std::make_unique<switching::SharedBufferSwitch>(
      sim_, sw, [this](std::size_t, const SimPacket& packet) {
        if (transport_) transport_->on_delivered(packet);
      });
  if (config_.transport == Transport::kTcp) {
    transport_ = std::make_unique<transport::TransportMux>(
        sim_, fleet, *this, config_.tcp, config_.faults, config_.seed);
    rsw_->set_drop_hook([this](std::size_t port, const SimPacket& packet) {
      transport_->on_dropped(port, packet);
    });
  }
  if (tracepoints_) {
    rsw_->set_trace_log(tracepoints_.get());
    if (transport_) transport_->set_trace_log(tracepoints_.get());
  }
#if FBDCSIM_TELEMETRY_ENABLED
  // FBDCSIM_OBS=flows: the per-flow causal ledger. TCP mode only — scripted
  // packets have no transport lifecycle to record. Switch-drop attributions
  // carry the rack id and, when the fault plan shrank the shared buffer at
  // t=0, the epoch code that names that decision as the standing cause.
  if (config_.obs.enabled() && config_.obs.flows && telemetry::Telemetry::enabled() &&
      transport_) {
    flow_ledger_ = std::make_unique<telemetry::FlowLedger>(config_.monitored_host.value(),
                                                           config_.obs.flow_capacity);
    transport_->set_flow_ledger(flow_ledger_.get(), rack_.value(),
                                shrink < 1.0 ? telemetry::kFaultEpochBufferShrunk : -1);
  }
#endif
  if (probe_) {
    rsw_->register_probes(*probe_);
    if (transport_) {
      transport_->register_probes(*probe_, config_.obs.transport_stride);
    }
    // Link tx bytes split the way every analysis reads them: CSW-facing
    // uplinks vs host downlinks.
    probe_->add_gauge("rack.uplink_tx_bytes", [this] {
      std::int64_t total = 0;
      for (std::size_t p = num_host_ports_; p < rsw_->num_ports(); ++p) {
        total += rsw_->counters(p).tx_bytes;
      }
      return total;
    });
    probe_->add_gauge("rack.downlink_tx_bytes", [this] {
      std::int64_t total = 0;
      for (std::size_t p = 0; p < num_host_ports_; ++p) {
        total += rsw_->counters(p).tx_bytes;
      }
      return total;
    });
  }

  // Uplink fault evaluation. Link-minute faults are sampled once at t=0 for
  // the whole run: a rack capture spans minutes at most, and a fixed ECMP
  // set keeps per-run behaviour easy to reason about. Failed uplinks leave
  // the ECMP set; degraded ones stay but run slower. If every uplink failed
  // the full set is kept (a rack with zero uplinks would wedge the run).
  for (int p = 0; p < config_.uplink_ports; ++p) {
    const std::size_t port = num_host_ports_ + static_cast<std::size_t>(p);
    if (!faulted_) {
      live_uplinks_.push_back(port);
      continue;
    }
    const core::LinkId link = uplink_link_id(config_.seed, p);
    if (config_.faults->link_failed(link, core::TimePoint::zero())) {
      FBDCSIM_T_COUNTER(failed, "rack.uplinks_failed", Sim);
      FBDCSIM_T_ADD(failed, 1);
      FBDCSIM_T_TRACEPOINT(tracepoints_.get(), 0, FaultEpoch, port,
                           telemetry::kFaultEpochUplinkFailed, 0);
      continue;
    }
    const double factor = config_.faults->link_capacity_factor(link, core::TimePoint::zero());
    if (factor < 1.0) {
      rsw_->set_port_rate(port,
                          core::DataRate::bits_per_sec(std::max<std::int64_t>(
                              1, static_cast<std::int64_t>(
                                     static_cast<double>(sw.port_rate.count_bits_per_sec()) *
                                     factor))));
      FBDCSIM_T_COUNTER(degraded, "rack.uplinks_degraded", Sim);
      FBDCSIM_T_ADD(degraded, 1);
      FBDCSIM_T_TRACEPOINT(tracepoints_.get(), 0, FaultEpoch, port,
                           telemetry::kFaultEpochUplinkDegraded,
                           static_cast<std::int64_t>(factor * 1e6));
    }
    live_uplinks_.push_back(port);
  }
  if (live_uplinks_.empty()) {
    for (int p = 0; p < config_.uplink_ports; ++p) {
      live_uplinks_.push_back(num_host_ports_ + static_cast<std::size_t>(p));
    }
  }

  // Mirroring rule: the monitored host, or the whole rack for Web racks.
  std::vector<core::Ipv4Addr> monitored;
  if (config_.mirror_whole_rack) {
    for (const core::HostId h : rack.hosts) monitored.push_back(fleet.host(h).addr);
  } else {
    monitored.push_back(fleet.host(config_.monitored_host).addr);
  }
  mirror_ = std::make_unique<monitoring::PortMirror>(std::move(monitored), capture_buffer_);

  // One traffic model per rack host, each with an independent RNG stream.
  // Non-mirrored neighbours may run scaled-down (their traffic matters only
  // for switch-buffer pressure).
  background_mix_ = scale_rates(config_.mix, config_.background_rate_scale);
  const core::RngStream root{config_.seed};
  for (const core::HostId h : rack.hosts) {
    const bool mirrored = config_.mirror_whole_rack || h == config_.monitored_host;
    const services::ServiceMix& mix = mirrored ? config_.mix : background_mix_;
    models_.push_back(services::make_model(fleet, h, mix, root.fork("host", h.value())));
  }
}

RackSimulation::~RackSimulation() {
  if (tracepoints_) telemetry::FlightRecorders::remove(tracepoints_.get());
}

std::size_t RackSimulation::egress_port_for(const SimPacket& packet) const {
  const topology::Host& dst = fleet_->host(packet.dst);
  if (dst.rack == rack_) {
    // Downlink port: the destination host's position within the rack.
    const auto& hosts = fleet_->rack(rack_).hosts;
    const auto it = std::find(hosts.begin(), hosts.end(), packet.dst);
    if (it != hosts.end()) {
      return static_cast<std::size_t>(std::distance(hosts.begin(), it));
    }
    // Host claims this rack but is missing from its member list
    // (inconsistent fleet) — route via an uplink rather than indexing a
    // port that does not exist.
  }
  // Uplink: ECMP over the live CSW-facing ports by 5-tuple hash. Fault-free
  // runs hash over all uplinks (identical to the pre-fault behaviour).
  const std::size_t h = std::hash<core::FiveTuple>{}(packet.header.tuple);
  return live_uplinks_[h % live_uplinks_.size()];
}

void RackSimulation::observe(const core::PacketHeader& header) {
  if (!capturing_) return;
  if (faulted_ && mirror_->matches(header)) {
    // Mirror loss under load: decided per frame identity, so the same
    // frame drops (or survives) regardless of sharding or replay order.
    const std::uint64_t key = faults::FaultPlan::sample_key(
        config_.monitored_host.value(), header.timestamp.count_nanos(),
        std::hash<core::FiveTuple>{}(header.tuple));
    if (config_.faults->capture_drop(key, rsw_->buffer_occupancy_fraction())) {
      capture_buffer_.drop_injected();
      return;
    }
  }
  mirror_->observe(header);
}

void RackSimulation::host_send(const SimPacket& packet) {
  observe(packet.header);
  rsw_->enqueue(egress_port_for(packet), packet);
}

void RackSimulation::host_receive(const SimPacket& packet) {
  observe(packet.header);
  const topology::Host& dst = fleet_->host(packet.dst);
  if (dst.rack != rack_) return;  // not for this rack (defensive)
  const auto& hosts = fleet_->rack(rack_).hosts;
  const auto it = std::find(hosts.begin(), hosts.end(), packet.dst);
  if (it == hosts.end()) return;  // inconsistent fleet: no downlink port
  rsw_->enqueue(static_cast<std::size_t>(std::distance(hosts.begin(), it)), packet);
}

transport::DemandSink* RackSimulation::transport() { return transport_.get(); }

RackSimResult RackSimulation::run() {
  // Start the models at t=0; open the capture window after warmup.
  for (auto& model : models_) model->start(sim_, *this);
  if (config_.sample_buffer) {
    sampler_ = std::make_unique<switching::BufferOccupancySampler>(sim_, *rsw_);
  }
  if (probe_) {
    probe_timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, config_.obs.probe_period,
        [this](core::TimePoint now) { probe_->sample_tick(now.count_nanos()); });
  }

  capture_start_ = core::TimePoint::zero() + config_.warmup;
  sim_.schedule_at(capture_start_, [this] { capturing_ = true; });
  sim_.run_until(capture_start_ + config_.capture);

  RackSimResult result;
  if (sampler_) {
    sampler_->finish();
    result.buffer_seconds.assign(sampler_->per_second().begin(), sampler_->per_second().end());
  }
  result.trace = capture_buffer_.spool();
  std::sort(result.trace.begin(), result.trace.end(),
            [](const core::PacketHeader& a, const core::PacketHeader& b) {
              return a.timestamp < b.timestamp;
            });
  result.capture_dropped = capture_buffer_.dropped();
  result.capture_injected_dropped = capture_buffer_.injected_dropped();
  for (std::size_t p = 0; p < rsw_->num_ports(); ++p) {
    const switching::PortCounters& c = rsw_->counters(p);
    switching::PortCounters& agg = p < num_host_ports_ ? result.downlinks : result.uplink;
    agg.tx_packets += c.tx_packets;
    agg.tx_bytes += c.tx_bytes;
    agg.enqueued_packets += c.enqueued_packets;
    agg.dropped_packets += c.dropped_packets;
    agg.dropped_bytes += c.dropped_bytes;
    agg.ecn_marked_packets += c.ecn_marked_packets;
  }
  result.events = sim_.executed_events();
  result.capture_start = capture_start_;
  result.capture_end = capture_start_ + config_.capture;
  if (probe_) {
    probe_timer_->cancel();
    result.timeseries = probe_->snapshot();
  }
  if (tracepoints_) {
    result.tracepoints = tracepoints_->snapshot();
    if (config_.obs.mode == telemetry::ObsConfig::Mode::kDump) tracepoints_->dump(stderr);
  }
  if (flow_ledger_) {
    // Close still-open transfers (completed_ns = -1) so every birth the run
    // observed is accounted for, then snapshot oldest-first.
    flow_ledger_->finalize(sim_.now().count_nanos());
    result.flows = flow_ledger_->snapshot();
  }
  return result;
}

services::ServiceMix scale_rates(const services::ServiceMix& mix, double factor) {
  services::ServiceMix out = mix;
  out.web.user_requests_per_sec *= factor;
  out.cache_follower.gets_served_per_sec *= factor;
  out.cache_follower.ephemeral_per_sec *= factor;
  out.cache_leader.coherency_msgs_per_sec *= factor;
  out.cache_leader.db_ops_per_sec *= factor;
  out.cache_leader.ephemeral_per_sec *= factor;
  out.hadoop.transfers_per_sec_busy *= factor;
  out.hadoop.control_msgs_per_sec *= factor;
  out.multifeed.requests_served_per_sec *= factor;
  out.slb.user_requests_per_sec *= factor;
  out.database.queries_served_per_sec *= factor;
  return out;
}

}  // namespace fbdcsim::workload
