#include "fbdcsim/workload/rack_sim.h"

#include <algorithm>
#include <stdexcept>

namespace fbdcsim::workload {

namespace {
using services::SimPacket;
}  // namespace

RackSimulation::RackSimulation(const topology::Fleet& fleet, RackSimConfig config)
    : fleet_{&fleet}, config_{config}, capture_buffer_{config.capture_memory_bytes} {
  if (!config_.monitored_host.is_valid()) {
    throw std::invalid_argument{"RackSimulation: monitored_host required"};
  }
  rack_ = fleet.host(config_.monitored_host).rack;
  const topology::Rack& rack = fleet.rack(rack_);
  num_host_ports_ = rack.hosts.size();

  switching::SwitchConfig sw = config_.rsw;
  sw.num_ports = num_host_ports_ + static_cast<std::size_t>(config_.uplink_ports);
  rsw_ = std::make_unique<switching::SharedBufferSwitch>(
      sim_, sw, [](std::size_t, const SimPacket&) { /* leaves the modelled rack */ });

  // Mirroring rule: the monitored host, or the whole rack for Web racks.
  std::vector<core::Ipv4Addr> monitored;
  if (config_.mirror_whole_rack) {
    for (const core::HostId h : rack.hosts) monitored.push_back(fleet.host(h).addr);
  } else {
    monitored.push_back(fleet.host(config_.monitored_host).addr);
  }
  mirror_ = std::make_unique<monitoring::PortMirror>(std::move(monitored), capture_buffer_);

  // One traffic model per rack host, each with an independent RNG stream.
  // Non-mirrored neighbours may run scaled-down (their traffic matters only
  // for switch-buffer pressure).
  background_mix_ = scale_rates(config_.mix, config_.background_rate_scale);
  const core::RngStream root{config_.seed};
  for (const core::HostId h : rack.hosts) {
    const bool mirrored = config_.mirror_whole_rack || h == config_.monitored_host;
    const services::ServiceMix& mix = mirrored ? config_.mix : background_mix_;
    models_.push_back(services::make_model(fleet, h, mix, root.fork("host", h.value())));
  }
}

RackSimulation::~RackSimulation() = default;

std::size_t RackSimulation::egress_port_for(const SimPacket& packet) const {
  const topology::Host& dst = fleet_->host(packet.dst);
  if (dst.rack == rack_) {
    // Downlink port: the destination host's position within the rack.
    const auto& hosts = fleet_->rack(rack_).hosts;
    const auto it = std::find(hosts.begin(), hosts.end(), packet.dst);
    return static_cast<std::size_t>(std::distance(hosts.begin(), it));
  }
  // Uplink: ECMP over the four CSW-facing ports by 5-tuple hash.
  const std::size_t h = std::hash<core::FiveTuple>{}(packet.header.tuple);
  return num_host_ports_ + h % static_cast<std::size_t>(config_.uplink_ports);
}

void RackSimulation::observe(const core::PacketHeader& header) {
  if (capturing_) mirror_->observe(header);
}

void RackSimulation::host_send(const SimPacket& packet) {
  observe(packet.header);
  rsw_->enqueue(egress_port_for(packet), packet);
}

void RackSimulation::host_receive(const SimPacket& packet) {
  observe(packet.header);
  const topology::Host& dst = fleet_->host(packet.dst);
  if (dst.rack != rack_) return;  // not for this rack (defensive)
  const auto& hosts = fleet_->rack(rack_).hosts;
  const auto it = std::find(hosts.begin(), hosts.end(), packet.dst);
  rsw_->enqueue(static_cast<std::size_t>(std::distance(hosts.begin(), it)), packet);
}

RackSimResult RackSimulation::run() {
  // Start the models at t=0; open the capture window after warmup.
  for (auto& model : models_) model->start(sim_, *this);
  if (config_.sample_buffer) {
    sampler_ = std::make_unique<switching::BufferOccupancySampler>(sim_, *rsw_);
  }

  capture_start_ = core::TimePoint::zero() + config_.warmup;
  sim_.schedule_at(capture_start_, [this] { capturing_ = true; });
  sim_.run_until(capture_start_ + config_.capture);

  RackSimResult result;
  if (sampler_) {
    sampler_->finish();
    result.buffer_seconds.assign(sampler_->per_second().begin(), sampler_->per_second().end());
  }
  result.trace = capture_buffer_.spool();
  std::sort(result.trace.begin(), result.trace.end(),
            [](const core::PacketHeader& a, const core::PacketHeader& b) {
              return a.timestamp < b.timestamp;
            });
  result.capture_dropped = capture_buffer_.dropped();
  for (std::size_t p = 0; p < rsw_->num_ports(); ++p) {
    const switching::PortCounters& c = rsw_->counters(p);
    switching::PortCounters& agg = p < num_host_ports_ ? result.downlinks : result.uplink;
    agg.tx_packets += c.tx_packets;
    agg.tx_bytes += c.tx_bytes;
    agg.enqueued_packets += c.enqueued_packets;
    agg.dropped_packets += c.dropped_packets;
    agg.dropped_bytes += c.dropped_bytes;
  }
  result.events = sim_.executed_events();
  result.capture_start = capture_start_;
  result.capture_end = capture_start_ + config_.capture;
  return result;
}

services::ServiceMix scale_rates(const services::ServiceMix& mix, double factor) {
  services::ServiceMix out = mix;
  out.web.user_requests_per_sec *= factor;
  out.cache_follower.gets_served_per_sec *= factor;
  out.cache_follower.ephemeral_per_sec *= factor;
  out.cache_leader.coherency_msgs_per_sec *= factor;
  out.cache_leader.db_ops_per_sec *= factor;
  out.cache_leader.ephemeral_per_sec *= factor;
  out.hadoop.transfers_per_sec_busy *= factor;
  out.hadoop.control_msgs_per_sec *= factor;
  out.multifeed.requests_served_per_sec *= factor;
  out.slb.user_requests_per_sec *= factor;
  out.database.queries_served_per_sec *= factor;
  return out;
}

}  // namespace fbdcsim::workload
