#include "fbdcsim/workload/fleet_flows.h"

#include <algorithm>
#include <cmath>

#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/telemetry/telemetry.h"

#if FBDCSIM_TELEMETRY_ENABLED
#include <array>
#include <cctype>
#include <string>
#endif

namespace fbdcsim::workload {

namespace {
using core::DataSize;
using core::Duration;
using core::HostId;
using core::HostRole;
using core::TimePoint;
using services::Scope;

double lognormal_mean(DataSize median, double sigma) {
  return static_cast<double>(median.count_bytes()) * std::exp(sigma * sigma / 2.0);
}

#if FBDCSIM_TELEMETRY_ENABLED
/// Per-role generated-flow counters ("fleet.flows.web", ...), created once.
telemetry::Counter& role_flow_counter(HostRole role) {
  static const std::array<telemetry::Counter*, 8> counters = [] {
    std::array<telemetry::Counter*, 8> out{};
    for (std::size_t r = 0; r < out.size(); ++r) {
      std::string name = std::string{"fleet.flows."} + core::to_string(static_cast<HostRole>(r));
      std::transform(name.begin(), name.end(), name.begin(),
                     [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
      out[r] = &telemetry::MetricsRegistry::global().counter(name, telemetry::Kind::kSim);
    }
    return out;
  }();
  return *counters[static_cast<std::size_t>(role)];
}
#endif
}  // namespace

// ---------------------------------------------------------------------------
// RoleIndex
// ---------------------------------------------------------------------------

RoleIndex::RoleIndex(const topology::Fleet& fleet) : fleet_{&fleet} {
  constexpr std::size_t kRoles = 8;
  by_cluster_role_.assign(fleet.clusters().size(), std::vector<std::vector<HostId>>(kRoles));
  by_dc_role_.assign(fleet.datacenters().size(), std::vector<std::vector<HostId>>(kRoles));
  by_role_.assign(kRoles, {});
  for (const topology::Host& h : fleet.hosts()) {
    const auto r = static_cast<std::size_t>(h.role);
    by_cluster_role_[h.cluster.value()][r].push_back(h.id);
    by_dc_role_[h.datacenter.value()][r].push_back(h.id);
    by_role_[r].push_back(h.id);
  }
}

const std::vector<HostId>* RoleIndex::bucket_for(const topology::Host& src, HostRole role,
                                                 Scope scope) const {
  const auto r = static_cast<std::size_t>(role);
  switch (scope) {
    case Scope::kSameRack:
    case Scope::kSameCluster:
    case Scope::kSameClusterOtherRack:
      return &by_cluster_role_[src.cluster.value()][r];
    case Scope::kSameDatacenter:
    case Scope::kSameDatacenterOtherCluster:
      return &by_dc_role_[src.datacenter.value()][r];
    case Scope::kOtherDatacentersSameSite:
    case Scope::kOtherSites:
    case Scope::kOtherDatacenters:
    case Scope::kAnywhere:
      return &by_role_[r];
  }
  return nullptr;
}

HostId RoleIndex::pick(HostId src_id, HostRole role, Scope scope, core::RngStream& rng) const {
  const topology::Host& src = fleet_->host(src_id);
  const std::vector<HostId>* bucket = bucket_for(src, role, scope);
  if (bucket == nullptr || bucket->empty()) return HostId::invalid();

  // Rejection-sample until the scope predicate holds. The buckets are
  // chosen so acceptance is high except for the "other-*" scopes on small
  // fleets; cap the attempts to stay deterministic-time.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const HostId cand = (*bucket)[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bucket->size()) - 1))];
    if (cand == src_id) continue;
    const topology::Host& c = fleet_->host(cand);
    bool ok = false;
    switch (scope) {
      case Scope::kSameRack: ok = c.rack == src.rack; break;
      case Scope::kSameCluster: ok = c.cluster == src.cluster; break;
      case Scope::kSameClusterOtherRack:
        ok = c.cluster == src.cluster && c.rack != src.rack;
        break;
      case Scope::kSameDatacenter: ok = c.datacenter == src.datacenter; break;
      case Scope::kSameDatacenterOtherCluster:
        ok = c.datacenter == src.datacenter && c.cluster != src.cluster;
        break;
      case Scope::kOtherDatacentersSameSite:
        ok = c.site == src.site && c.datacenter != src.datacenter;
        break;
      case Scope::kOtherSites: ok = c.site != src.site; break;
      case Scope::kOtherDatacenters: ok = c.datacenter != src.datacenter; break;
      case Scope::kAnywhere: ok = true; break;
    }
    if (ok) return cand;
  }
  return HostId::invalid();
}

// ---------------------------------------------------------------------------
// FleetFlowGenerator
// ---------------------------------------------------------------------------

struct FleetFlowGenerator::Component {
  HostRole dst_role;
  struct ScopeWeight {
    Scope scope;
    double weight;
  };
  std::vector<ScopeWeight> scopes;
  double bytes_per_sec{0.0};   // per source host, before scaling/diurnal
  std::int64_t avg_payload{600};
  core::Port dst_port{core::ports::kSlb};
  bool pooled{true};           // pooled flows span the epoch; others are short
};

FleetFlowGenerator::FleetFlowGenerator(const topology::Fleet& fleet, FleetGenConfig config)
    : fleet_{&fleet}, config_{config}, index_{fleet}, diurnal_{config.diurnal} {}

std::vector<FleetFlowGenerator::Component> FleetFlowGenerator::components_for(
    HostRole role) const {
  const services::ServiceMix& mix = config_.mix;
  std::vector<Component> out;

  switch (role) {
    case HostRole::kWeb: {
      const services::WebParams& w = mix.web;
      const double cache_bps = w.user_requests_per_sec * w.cache_gets_per_request_mean *
                               static_cast<double>(w.cache_get_request.count_bytes());
      const double mf_bps = w.user_requests_per_sec * w.multifeed_calls_per_request_mean *
                            static_cast<double>(w.multifeed_request.count_bytes());
      const double slb_bps = w.user_requests_per_sec *
                             static_cast<double>(w.slb_response_mean.count_bytes());
      const double fg = cache_bps + mf_bps + slb_bps;
      const double misc_bps = fg * w.misc_bytes_fraction / (1.0 - w.misc_bytes_fraction);
      out.push_back({HostRole::kCacheFollower, {{Scope::kSameCluster, 1.0}}, cache_bps,
                     w.cache_get_request.count_bytes(), core::ports::kMemcache, true});
      out.push_back({HostRole::kMultifeed, {{Scope::kSameCluster, 1.0}}, mf_bps, 1200,
                     core::ports::kMultifeed, true});
      out.push_back({HostRole::kSlb, {{Scope::kSameCluster, 1.0}}, slb_bps, 1100,
                     core::ports::kHttp, true});
      out.push_back({HostRole::kService,
                     {{Scope::kSameDatacenter, 0.55}, {Scope::kOtherDatacenters, 0.45}},
                     misc_bps, w.misc_message.count_bytes(), core::ports::kSlb, true});
      break;
    }
    case HostRole::kCacheFollower: {
      const services::CacheFollowerParams& p = mix.cache_follower;
      const double web_bps =
          p.gets_served_per_sec * lognormal_mean(p.object_median, p.object_sigma);
      const double leader_bps = p.gets_served_per_sec * p.miss_rate *
                                static_cast<double>(p.fill_request.count_bytes());
      const double fg = web_bps + leader_bps;
      const double misc_bps = fg * p.misc_bytes_fraction / (1.0 - p.misc_bytes_fraction);
      out.push_back({HostRole::kWeb, {{Scope::kSameCluster, 1.0}}, web_bps, 320,
                     core::ports::kMemcache, true});
      out.push_back({HostRole::kCacheLeader,
                     {{Scope::kSameDatacenterOtherCluster, 0.8}, {Scope::kOtherDatacenters, 0.2}},
                     leader_bps, p.fill_request.count_bytes(), core::ports::kCacheCoherence,
                     true});
      out.push_back({HostRole::kService,
                     {{Scope::kSameDatacenter, 0.6}, {Scope::kOtherDatacenters, 0.4}}, misc_bps,
                     p.misc_message.count_bytes(), core::ports::kSlb, true});
      break;
    }
    case HostRole::kCacheLeader: {
      const services::CacheLeaderParams& p = mix.cache_leader;
      const double coh_bps = p.coherency_msgs_per_sec *
                             lognormal_mean(p.coherency_msg_median, p.coherency_sigma);
      const double db_bps =
          p.db_ops_per_sec * static_cast<double>(p.db_op_size.count_bytes());
      const double fg = coh_bps + db_bps;
      // Table 3 Cache row scope mix (see CacheLeaderModel::follower_scope).
      out.push_back({HostRole::kCacheLeader, {{Scope::kSameClusterOtherRack, 1.0}},
                     coh_bps * 0.14, 450, core::ports::kCacheCoherence, true});
      out.push_back({HostRole::kCacheFollower,
                     {{Scope::kSameDatacenterOtherCluster, 0.36 / 0.86},
                      {Scope::kOtherDatacenters, 0.50 / 0.86}},
                     coh_bps * 0.86, 450, core::ports::kCacheCoherence, true});
      out.push_back({HostRole::kDatabase,
                     {{Scope::kSameDatacenter, 0.35}, {Scope::kOtherDatacenters, 0.65}}, db_bps,
                     p.db_op_size.count_bytes(), core::ports::kMysql, true});
      out.push_back({HostRole::kMultifeed, {{Scope::kSameDatacenter, 1.0}},
                     fg * p.multifeed_share, p.multifeed_msg.count_bytes(),
                     core::ports::kMultifeed, true});
      out.push_back({HostRole::kService, {{Scope::kSameDatacenter, 1.0}},
                     fg * p.misc_bytes_fraction, p.misc_message.count_bytes(),
                     core::ports::kSlb, true});
      break;
    }
    case HostRole::kHadoop: {
      const services::HadoopParams& p = mix.hadoop;
      const double duty = p.busy_period_mean.to_seconds() /
                          (p.busy_period_mean.to_seconds() + p.quiet_period_mean.to_seconds());
      const double bulk_bps = p.transfers_per_sec_busy * duty *
                              lognormal_mean(p.transfer_median, p.transfer_sigma);
      const double ctrl_bps =
          p.control_msgs_per_sec * static_cast<double>(p.control_msg.count_bytes());
      // Fleet-wide the Hadoop service is far less rack-local than a busy
      // monitored node (Table 3 vs §4.2's anecdote): concurrent jobs spill
      // across racks and other services read its data.
      out.push_back({HostRole::kHadoop,
                     {{Scope::kSameRack, p.fleet_rack_local_fraction},
                      {Scope::kSameClusterOtherRack, 1.0 - p.fleet_rack_local_fraction}},
                     bulk_bps, 1460, core::ports::kMapReduceShuffle, false});
      out.push_back({HostRole::kHadoop, {{Scope::kSameClusterOtherRack, 1.0}}, ctrl_bps,
                     p.control_msg.count_bytes(), core::ports::kHdfs, true});
      out.push_back({HostRole::kService, {{Scope::kSameDatacenter, 1.0}},
                     (bulk_bps + ctrl_bps) * p.misc_bytes_fraction, 400, core::ports::kSlb,
                     true});
      break;
    }
    case HostRole::kMultifeed: {
      const services::MultifeedParams& p = mix.multifeed;
      const double resp_bps = p.requests_served_per_sec *
                              lognormal_mean(p.response_median, p.response_sigma);
      out.push_back({HostRole::kWeb, {{Scope::kSameCluster, 1.0}}, resp_bps, 1200,
                     core::ports::kMultifeed, true});
      out.push_back({HostRole::kService, {{Scope::kSameDatacenter, 1.0}},
                     resp_bps * p.misc_bytes_fraction, 1100, core::ports::kSlb, true});
      break;
    }
    case HostRole::kSlb: {
      const services::SlbParams& p = mix.slb;
      const double req_bps =
          p.user_requests_per_sec * static_cast<double>(p.request_size.count_bytes());
      out.push_back({HostRole::kWeb, {{Scope::kSameCluster, 1.0}}, req_bps,
                     p.request_size.count_bytes(), core::ports::kHttp, true});
      out.push_back({HostRole::kService, {{Scope::kSameDatacenter, 1.0}},
                     req_bps * p.misc_bytes_fraction, 1100, core::ports::kSlb, true});
      break;
    }
    case HostRole::kDatabase: {
      const services::DatabaseParams& p = mix.database;
      const double resp_bps = p.queries_served_per_sec *
                              lognormal_mean(p.response_median, p.response_sigma);
      const double repl_bps =
          resp_bps * p.replication_bytes_fraction / (1.0 - p.replication_bytes_fraction);
      out.push_back({HostRole::kCacheLeader,
                     {{Scope::kSameDatacenter, 0.5}, {Scope::kOtherDatacenters, 0.5}}, resp_bps,
                     1200, core::ports::kMysql, true});
      // Binlog replication, weighted so the emergent DB row approximates
      // Table 3 (0 / 30.7 / 34.5 / 34.8).
      out.push_back({HostRole::kDatabase,
                     {{Scope::kSameClusterOtherRack, 0.41},
                      {Scope::kSameDatacenterOtherCluster, 0.293},
                      {Scope::kOtherDatacenters, 0.297}},
                     repl_bps, p.replication_message.count_bytes(), core::ports::kMysql, true});
      break;
    }
    case HostRole::kService: {
      const services::ServiceParams& p = mix.service;
      const double bps =
          p.messages_per_sec * static_cast<double>(p.message.count_bytes());
      out.push_back({HostRole::kService,
                     {{Scope::kSameRack, p.rack_weight},
                      {Scope::kSameClusterOtherRack, p.cluster_weight},
                      {Scope::kSameDatacenterOtherCluster, p.dc_weight},
                      {Scope::kOtherDatacenters, p.interdc_weight}},
                     bps, p.message.count_bytes(), core::ports::kSlb, true});
      break;
    }
  }
  return out;
}

void FleetFlowGenerator::emit_component(HostId src, const Component& comp,
                                        std::int64_t epoch_index, core::RngStream& rng,
                                        const Visit& visit) const {
  const double epoch_sec = config_.epoch.to_seconds();
  const TimePoint epoch_start =
      TimePoint::zero() + config_.epoch * epoch_index;
  const double diurnal =
      diurnal_.factor_at(epoch_start.since_epoch() + config_.epoch / 2);
  const double total_bytes = comp.bytes_per_sec * epoch_sec * diurnal * config_.rate_scale;
  if (total_bytes < 1.0) return;

  const int n = std::max(1, config_.flows_per_component);
  // Random flow weights: exponential draws normalized (flat Dirichlet), so
  // flow sizes vary while byte totals are exact.
  std::vector<double> weights(static_cast<std::size_t>(n));
  double wsum = 0.0;
  for (double& w : weights) {
    w = rng.exponential(1.0);
    wsum += w;
  }

  core::Port src_port = static_cast<core::Port>(
      core::ports::kEphemeralBase + (epoch_index * 131) % 16384);
  for (int i = 0; i < n; ++i) {
    // Scope by weight.
    double u = rng.uniform();
    Scope scope = comp.scopes.back().scope;
    for (const auto& sw : comp.scopes) {
      if (u < sw.weight) {
        scope = sw.scope;
        break;
      }
      u -= sw.weight;
    }
    const HostId dst = index_.pick(src, comp.dst_role, scope, rng);
    if (!dst.is_valid()) continue;

    const auto bytes = static_cast<std::int64_t>(
        total_bytes * weights[static_cast<std::size_t>(i)] / wsum);
    if (bytes <= 0) continue;

    core::FlowRecord flow;
    flow.tuple = core::FiveTuple{fleet_->host(src).addr, fleet_->host(dst).addr, src_port++,
                                 comp.dst_port, core::Protocol::kTcp};
    flow.src_host = src;
    flow.dst_host = dst;
    if (comp.pooled) {
      flow.start = epoch_start;
      flow.duration = config_.epoch;
    } else {
      const double frac = rng.uniform();
      flow.start = epoch_start + Duration::from_seconds(frac * epoch_sec * 0.9);
      flow.duration = Duration::from_seconds(
          std::min(epoch_sec * 0.1, 0.5 + rng.exponential(5.0)));
    }
    flow.bytes = DataSize::bytes(bytes);
    flow.packets = std::max<std::int64_t>(1, bytes / comp.avg_payload);
    visit(flow);
  }
}

void FleetFlowGenerator::generate_for_host(HostId host, const Visit& visit) const {
  const core::HostRole role = fleet_->host(host).role;
  const core::RngStream root{config_.seed};
  core::RngStream rng = root.fork("fleet-host", host.value());
  const auto comps = components_for(role);
  const std::int64_t epochs = config_.horizon / config_.epoch;

  // Host crash/restart gating. Every random draw still happens for skipped
  // flows, so a fault plan never perturbs the draws of surviving flows —
  // and a disabled plan forwards to `visit` unconditionally, reproducing
  // the fault-free stream bit for bit.
  const faults::FaultPlan* plan = config_.faults;
  const bool faulted = plan != nullptr && plan->enabled();
  std::int64_t down_skipped = 0;
  const Visit gated = [&](const core::FlowRecord& f) {
    if (faulted &&
        (plan->host_down(f.src_host, f.start) || plan->host_down(f.dst_host, f.start))) {
      ++down_skipped;
      return;
    }
    visit(f);
  };
  const Visit& sink = faulted ? gated : visit;

#if FBDCSIM_TELEMETRY_ENABLED
  if (telemetry::Telemetry::enabled()) {
    // Count this host's flows locally and fold them into the fleet-wide
    // per-role counters once, so the per-flow path stays allocation- and
    // contention-free.
    std::int64_t emitted = 0;
    const Visit counted = [&](const core::FlowRecord& f) {
      ++emitted;
      sink(f);
    };
    for (std::int64_t e = 0; e < epochs; ++e) {
      for (const Component& c : comps) emit_component(host, c, e, rng, counted);
    }
    FBDCSIM_T_COUNTER(total, "fleet.flows", Sim);
    FBDCSIM_T_ADD(total, emitted - down_skipped);
    role_flow_counter(role).add(emitted - down_skipped);
    if (down_skipped > 0) {
      FBDCSIM_T_COUNTER(skipped, "fleet.host_down_skipped", Sim);
      FBDCSIM_T_ADD(skipped, down_skipped);
    }
    return;
  }
#endif
  for (std::int64_t e = 0; e < epochs; ++e) {
    for (const Component& c : comps) emit_component(host, c, e, rng, sink);
  }
}

void FleetFlowGenerator::generate(const Visit& visit) const {
  for (const topology::Host& h : fleet_->hosts()) {
    generate_for_host(h.id, visit);
  }
}

}  // namespace fbdcsim::workload
