#include "fbdcsim/workload/presets.h"

#include <stdexcept>

namespace fbdcsim::workload {

topology::Fleet build_rack_experiment_fleet() {
  // Two sites x two datacenters. Frontend clusters are large (256 racks)
  // so a cache follower's destination set can span hundreds of racks, as
  // in the paper's Figure 16. Racks are 16 hosts.
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 2;
  cfg.frontend_clusters = 1;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 1;
  cfg.database_clusters = 1;
  cfg.service_clusters = 1;
  cfg.racks_per_cluster = 256;
  cfg.hosts_per_rack = 16;
  cfg.frontend_web_racks = 192;   // ~75% Web
  cfg.frontend_cache_racks = 48;  // ~20% cache followers
  cfg.frontend_multifeed_racks = 8;
  return topology::build_standard_fleet(cfg);
}

topology::Fleet build_fleet_experiment_fleet() {
  // Cluster counts are calibrated so that, with the per-host rates of the
  // default ServiceMix, each cluster type's share of total traffic lands
  // near Table 3's bottom row (Hadoop 23.7, FE 21.5, Svc 18.0, Cache 10.2,
  // DB 5.2 — the remaining ~21%% of the paper's traffic is outside its
  // top-five types).
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 2;
  cfg.frontend_clusters = 3;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 8;
  cfg.database_clusters = 3;
  cfg.service_clusters = 11;
  cfg.racks_per_cluster = 16;
  cfg.cache_racks_per_cluster = 8;
  cfg.hosts_per_rack = 8;
  cfg.frontend_web_racks = 12;
  cfg.frontend_cache_racks = 3;
  cfg.frontend_multifeed_racks = 1;
  return topology::build_standard_fleet(cfg);
}

core::HostId monitored_host(const topology::Fleet& fleet, core::HostRole role) {
  for (const topology::Rack& rack : fleet.racks()) {
    if (rack.role == role && !rack.hosts.empty()) return rack.hosts.front();
  }
  throw std::invalid_argument{"monitored_host: no rack with that role"};
}

RackSimConfig default_rack_config(const topology::Fleet& fleet, core::HostRole role,
                                  core::Duration capture) {
  RackSimConfig cfg;
  cfg.monitored_host = monitored_host(fleet, role);
  cfg.mirror_whole_rack = role == core::HostRole::kWeb;
  cfg.capture = capture;
  cfg.seed = 42;
  // Trace-only experiments: run un-mirrored neighbours at reduced rate.
  // Buffer experiments (Figure 15) override this back to 1.0.
  cfg.background_rate_scale = cfg.mirror_whole_rack ? 1.0 : 0.15;
  return cfg;
}

}  // namespace fbdcsim::workload
