// to_string implementations for the core vocabulary types.
#include <array>
#include <cmath>
#include <cstdio>
#include <string>

#include "fbdcsim/core/addr.h"
#include "fbdcsim/core/flow.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/core/units.h"

namespace fbdcsim::core {

namespace {

std::string format_scaled(double value, const char* unit) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3g%s", value, unit);
  return std::string{buf.data()};
}

}  // namespace

std::string Duration::to_string() const {
  const double ns = static_cast<double>(ns_);
  const double abs = std::abs(ns);
  if (abs >= 1e9) return format_scaled(ns / 1e9, "s");
  if (abs >= 1e6) return format_scaled(ns / 1e6, "ms");
  if (abs >= 1e3) return format_scaled(ns / 1e3, "us");
  return format_scaled(ns, "ns");
}

std::string TimePoint::to_string() const {
  return "t=" + since_epoch().to_string();
}

std::string DataSize::to_string() const {
  const double b = static_cast<double>(bytes_);
  const double abs = std::abs(b);
  if (abs >= 1e9) return format_scaled(b / 1e9, "GB");
  if (abs >= 1e6) return format_scaled(b / 1e6, "MB");
  if (abs >= 1e3) return format_scaled(b / 1e3, "KB");
  return format_scaled(b, "B");
}

std::string DataRate::to_string() const {
  const double b = static_cast<double>(bps_);
  const double abs = std::abs(b);
  if (abs >= 1e9) return format_scaled(b / 1e9, "Gbps");
  if (abs >= 1e6) return format_scaled(b / 1e6, "Mbps");
  if (abs >= 1e3) return format_scaled(b / 1e3, "Kbps");
  return format_scaled(b, "bps");
}

Ipv4Addr Ipv4Addr::parse(const std::string& dotted) {
  Ipv4Addr out;
  if (!try_parse(dotted, out)) return Ipv4Addr{};
  return out;
}

bool Ipv4Addr::try_parse(const std::string& dotted, Ipv4Addr& out) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = '\0';
  const int matched = std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) return false;
  out = Ipv4Addr{static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                 static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d)};
  return true;
}

std::string Ipv4Addr::to_string() const {
  std::array<char, 16> buf{};
  std::snprintf(buf.data(), buf.size(), "%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
  return std::string{buf.data()};
}

std::string FiveTuple::to_string() const {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%s:%u->%s:%u/%s", src_ip.to_string().c_str(), src_port,
                dst_ip.to_string().c_str(), dst_port, protocol == Protocol::kTcp ? "tcp" : "udp");
  return std::string{buf.data()};
}

const char* to_string(HostRole role) {
  switch (role) {
    case HostRole::kWeb: return "Web";
    case HostRole::kCacheFollower: return "Cache-f";
    case HostRole::kCacheLeader: return "Cache-l";
    case HostRole::kHadoop: return "Hadoop";
    case HostRole::kMultifeed: return "Multifeed";
    case HostRole::kSlb: return "SLB";
    case HostRole::kDatabase: return "DB";
    case HostRole::kService: return "Service";
  }
  return "?";
}

const char* to_string(Locality locality) {
  switch (locality) {
    case Locality::kIntraRack: return "Intra-Rack";
    case Locality::kIntraCluster: return "Intra-Cluster";
    case Locality::kIntraDatacenter: return "Intra-Datacenter";
    case Locality::kInterDatacenter: return "Inter-Datacenter";
  }
  return "?";
}

}  // namespace fbdcsim::core
