#include "fbdcsim/core/distributions.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fbdcsim::core {

Zipf::Zipf(std::size_t n, double s) : s_{s} {
  if (n == 0) throw std::invalid_argument{"Zipf: n must be positive"};
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  norm_ = acc;
  for (double& v : cdf_) v /= norm_;
  cdf_.back() = 1.0;  // guard against FP shortfall
}

std::size_t Zipf::sample(RngStream& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double Zipf::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return 1.0 / std::pow(static_cast<double>(k + 1), s_) / norm_;
}

EmpiricalCdf::EmpiricalCdf(std::vector<Knot> knots) : knots_{std::move(knots)} {
  if (knots_.size() < 2) throw std::invalid_argument{"EmpiricalCdf: need >= 2 knots"};
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    const auto& k = knots_[i];
    if (k.quantile < 0.0 || k.quantile > 1.0 || k.value <= 0.0) {
      throw std::invalid_argument{"EmpiricalCdf: knot out of range"};
    }
    if (i > 0 && (k.quantile <= knots_[i - 1].quantile || k.value < knots_[i - 1].value)) {
      throw std::invalid_argument{"EmpiricalCdf: knots must be increasing"};
    }
  }
  if (knots_.front().quantile != 0.0 || knots_.back().quantile != 1.0) {
    throw std::invalid_argument{"EmpiricalCdf: knots must span [0, 1]"};
  }
}

double EmpiricalCdf::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto upper = std::lower_bound(
      knots_.begin(), knots_.end(), q,
      [](const Knot& k, double target) { return k.quantile < target; });
  if (upper == knots_.begin()) return knots_.front().value;
  const Knot& hi = *upper;
  const Knot& lo = *(upper - 1);
  const double t = (q - lo.quantile) / (hi.quantile - lo.quantile);
  // Log-linear interpolation: values span many orders of magnitude.
  return std::exp(std::lerp(std::log(lo.value), std::log(hi.value), t));
}

DiscreteChoice::DiscreteChoice(std::vector<double> weights) {
  if (weights.empty()) throw std::invalid_argument{"DiscreteChoice: empty weights"};
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"DiscreteChoice: negative weight"};
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument{"DiscreteChoice: zero total weight"};
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (const double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

std::size_t DiscreteChoice::sample(RngStream& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(std::distance(cumulative_.begin(), it));
}

double DiscreteChoice::probability(std::size_t index) const {
  if (index >= cumulative_.size()) return 0.0;
  return index == 0 ? cumulative_[0] : cumulative_[index] - cumulative_[index - 1];
}

DiurnalProfile::DiurnalProfile(Params params) : params_{params} {
  if (params_.peak_to_trough < 1.0) throw std::invalid_argument{"DiurnalProfile: peak_to_trough < 1"};
  // factor = 1 + A*cos(phase); peak/trough = (1+A)/(1-A)  =>  A = (r-1)/(r+1).
  amplitude_ = (params_.peak_to_trough - 1.0) / (params_.peak_to_trough + 1.0);
}

double DiurnalProfile::factor_at(Duration since_start) const {
  const double hours = since_start.to_seconds() / 3600.0;
  const double hour_of_day = std::fmod(hours, 24.0);
  const int day = static_cast<int>(hours / 24.0) % 7;
  const double phase = (hour_of_day - params_.peak_hour) / 24.0 * 2.0 * std::numbers::pi;
  double f = 1.0 + amplitude_ * std::cos(phase);
  if (day == 5 || day == 6) f *= params_.weekend_factor;
  return f;
}

}  // namespace fbdcsim::core
