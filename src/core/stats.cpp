#include "fbdcsim/core/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fbdcsim::core {

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formulas.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  sort();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return std::lerp(samples_[lo], samples_[hi], frac);
}

double Cdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  sort();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(std::distance(samples_.begin(), it)) /
         static_cast<double>(samples_.size());
}

std::vector<Cdf::Point> Cdf::series(std::size_t points) const {
  std::vector<Point> out;
  if (samples_.empty() || points < 2) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(Point{q, quantile(q)});
  }
  return out;
}

LogHistogram::LogHistogram(double lo, double base, std::size_t num_bins)
    : lo_{lo}, log_base_{std::log(base)}, counts_(num_bins, 0) {
  if (lo <= 0.0 || base <= 1.0 || num_bins == 0) {
    throw std::invalid_argument{"LogHistogram: bad params"};
  }
}

void LogHistogram::add(double x, std::int64_t weight) {
  counts_[bin_of(x)] += weight;
  total_ += weight;
}

std::size_t LogHistogram::bin_of(double x) const {
  if (x <= lo_) return 0;
  const auto bin = static_cast<std::size_t>(std::log(x / lo_) / log_base_);
  return std::min(bin, counts_.size() - 1);
}

double LogHistogram::bin_lower(std::size_t bin) const {
  return lo_ * std::exp(log_base_ * static_cast<double>(bin));
}

}  // namespace fbdcsim::core
