#include "fbdcsim/analysis/fct.h"

#include <cstdio>

namespace fbdcsim::analysis {

namespace {

/// %.17g round-trips doubles exactly; quantiles of identical sample sets
/// therefore render identically, which the determinism harness relies on.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_quantiles(std::string& out, const char* key, const core::Cdf& cdf) {
  out += '"';
  out += key;
  out += "\":{\"p50\":";
  append_double(out, cdf.quantile(0.50));
  out += ",\"p90\":";
  append_double(out, cdf.quantile(0.90));
  out += ",\"p99\":";
  append_double(out, cdf.quantile(0.99));
  out += ",\"p999\":";
  append_double(out, cdf.quantile(0.999));
  out += ",\"max\":";
  append_double(out, cdf.max());
  out += '}';
}

}  // namespace

int fct_size_bucket(std::int64_t bytes) {
  if (bytes <= 4 * 1024) return 0;
  if (bytes <= 64 * 1024) return 1;
  if (bytes <= 1024 * 1024) return 2;
  return 3;
}

const char* fct_size_bucket_name(int bucket) {
  switch (bucket) {
    case 0:
      return "le4k";
    case 1:
      return "le64k";
    case 2:
      return "le1m";
    default:
      return "gt1m";
  }
}

void FctTable::add(const telemetry::FlowLedgerRecord& record) {
  if (!record.completed()) {
    ++incomplete_;
    return;
  }
  ++completed_;
  FctCell& c = cells_[index(static_cast<int>(record.role), static_cast<int>(record.locality),
                            fct_size_bucket(record.bytes))];
  c.fct_us.add(static_cast<double>(record.fct_ns()) / 1000.0);
  c.slowdown.add(record.slowdown());
  ++c.count;
  c.bytes += record.bytes;
}

void FctTable::add_all(std::span<const telemetry::FlowLedgerRecord> records) {
  for (const telemetry::FlowLedgerRecord& r : records) add(r);
}

const FctCell& FctTable::cell(core::HostRole role, core::Locality locality,
                              int size_bucket) const {
  return cells_[index(static_cast<int>(role), static_cast<int>(locality), size_bucket)];
}

FctCell FctTable::role_cell(core::HostRole role) const {
  FctCell out;
  for (int loc = 0; loc < core::kNumLocalities; ++loc) {
    for (int b = 0; b < kNumFctSizeBuckets; ++b) {
      out.merge(cells_[index(static_cast<int>(role), loc, b)]);
    }
  }
  return out;
}

FctCell FctTable::overall() const {
  FctCell out;
  for (const FctCell& c : cells_) out.merge(c);
  return out;
}

std::string FctTable::to_json() const {
  std::string out = "{\"completed\":";
  out += std::to_string(completed_);
  out += ",\"incomplete\":";
  out += std::to_string(incomplete_);
  out += ",\"cells\":[";
  bool first = true;
  for (int role = 0; role < kNumFctRoles; ++role) {
    for (int loc = 0; loc < core::kNumLocalities; ++loc) {
      for (int b = 0; b < kNumFctSizeBuckets; ++b) {
        const FctCell& c = cells_[index(role, loc, b)];
        if (c.count == 0) continue;
        if (!first) out += ',';
        first = false;
        out += "{\"role\":\"";
        out += core::to_string(static_cast<core::HostRole>(role));
        out += "\",\"locality\":\"";
        out += core::to_string(static_cast<core::Locality>(loc));
        out += "\",\"bucket\":\"";
        out += fct_size_bucket_name(b);
        out += "\",\"count\":";
        out += std::to_string(c.count);
        out += ",\"bytes\":";
        out += std::to_string(c.bytes);
        out += ',';
        append_quantiles(out, "fct_us", c.fct_us);
        out += ',';
        append_quantiles(out, "slowdown", c.slowdown);
        out += '}';
      }
    }
  }
  out += "]}";
  return out;
}

}  // namespace fbdcsim::analysis
