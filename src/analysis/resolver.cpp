#include "fbdcsim/analysis/resolver.h"

namespace fbdcsim::analysis {

core::HostId AddrResolver::host_of(core::Ipv4Addr addr) const {
  const auto it = cache_.find(addr);
  if (it != cache_.end()) return it->second;
  const core::HostId id = fleet_->host_by_addr(addr);
  cache_.emplace(addr, id);
  return id;
}

std::optional<core::RackId> AddrResolver::rack_of(core::Ipv4Addr addr) const {
  const core::HostId id = host_of(addr);
  if (!id.is_valid()) return std::nullopt;
  return fleet_->host(id).rack;
}

std::optional<core::HostRole> AddrResolver::role_of(core::Ipv4Addr addr) const {
  const core::HostId id = host_of(addr);
  if (!id.is_valid()) return std::nullopt;
  return fleet_->host(id).role;
}

std::optional<core::Locality> AddrResolver::locality(core::Ipv4Addr src,
                                                     core::Ipv4Addr dst) const {
  const core::HostId s = host_of(src);
  const core::HostId d = host_of(dst);
  if (!s.is_valid() || !d.is_valid()) return std::nullopt;
  return fleet_->locality(s, d);
}

}  // namespace fbdcsim::analysis
