#include "fbdcsim/analysis/concurrency.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "fbdcsim/analysis/heavy_hitters.h"

namespace fbdcsim::analysis {

namespace {

/// Per-window accumulation of (rack key -> bytes, locality) for one host's
/// outbound traffic.
struct Window {
  std::unordered_map<std::uint64_t, double> rack_bytes;
  std::unordered_map<std::uint64_t, core::Locality> rack_locality;
  std::unordered_set<std::uint64_t> tuples;
  std::unordered_set<std::uint32_t> hosts;
};

template <typename PerWindow>
void for_each_window(std::span<const core::PacketHeader> trace, core::Ipv4Addr outbound_from,
                     const AddrResolver* resolver, core::Duration window,
                     const PerWindow& visit) {
  std::unordered_map<std::int64_t, Window> windows;
  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != outbound_from) continue;
    const std::int64_t w = pkt.timestamp.bin_index(window);
    Window& win = windows[w];
    win.tuples.insert(std::hash<core::FiveTuple>{}(pkt.tuple));
    win.hosts.insert(pkt.tuple.dst_ip.value());
    if (resolver != nullptr) {
      const auto rack = resolver->rack_of(pkt.tuple.dst_ip);
      const auto loc = resolver->locality(pkt.tuple.src_ip, pkt.tuple.dst_ip);
      if (rack && loc) {
        win.rack_bytes[rack->value()] += static_cast<double>(pkt.frame_bytes);
        win.rack_locality[rack->value()] = *loc;
      }
    }
  }
  for (const auto& [index, win] : windows) visit(win);
}

void count_by_locality(const Window& win, const std::unordered_set<std::uint64_t>* restrict_to,
                       ConcurrencyCdfs& out) {
  std::int64_t cluster = 0;
  std::int64_t dc = 0;
  std::int64_t inter = 0;
  std::int64_t all = 0;
  for (const auto& [rack, loc] : win.rack_locality) {
    if (restrict_to != nullptr && !restrict_to->contains(rack)) continue;
    ++all;
    switch (loc) {
      case core::Locality::kIntraRack:
        break;  // counted in "all" only; figures plot cluster and beyond
      case core::Locality::kIntraCluster:
        ++cluster;
        break;
      case core::Locality::kIntraDatacenter:
        ++dc;
        break;
      case core::Locality::kInterDatacenter:
        ++inter;
        break;
    }
  }
  out.intra_cluster.add(static_cast<double>(cluster));
  out.intra_datacenter.add(static_cast<double>(dc));
  out.inter_datacenter.add(static_cast<double>(inter));
  out.all.add(static_cast<double>(all));
}

}  // namespace

ConcurrencyCdfs concurrent_racks(std::span<const core::PacketHeader> trace,
                                 core::Ipv4Addr outbound_from, const AddrResolver& resolver,
                                 core::Duration window) {
  ConcurrencyCdfs out;
  for_each_window(trace, outbound_from, &resolver, window,
                  [&out](const Window& win) { count_by_locality(win, nullptr, out); });
  return out;
}

ConcurrencyCdfs concurrent_heavy_hitter_racks(std::span<const core::PacketHeader> trace,
                                              core::Ipv4Addr outbound_from,
                                              const AddrResolver& resolver,
                                              core::Duration window) {
  ConcurrencyCdfs out;
  for_each_window(trace, outbound_from, &resolver, window, [&out](const Window& win) {
    const auto hh = heavy_hitters_of(win.rack_bytes);
    const std::unordered_set<std::uint64_t> hh_set{hh.begin(), hh.end()};
    count_by_locality(win, &hh_set, out);
  });
  return out;
}

ConnectionConcurrency concurrent_connections(std::span<const core::PacketHeader> trace,
                                             core::Ipv4Addr outbound_from,
                                             core::Duration window) {
  ConnectionConcurrency out;
  for_each_window(trace, outbound_from, nullptr, window, [&out](const Window& win) {
    out.tuples.add(static_cast<double>(win.tuples.size()));
    out.hosts.add(static_cast<double>(win.hosts.size()));
  });
  return out;
}

}  // namespace fbdcsim::analysis
