#include "fbdcsim/analysis/packet_stats.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace fbdcsim::analysis {

core::Cdf packet_size_cdf(std::span<const core::PacketHeader> trace) {
  core::Cdf cdf;
  for (const core::PacketHeader& pkt : trace) {
    cdf.add(static_cast<double>(pkt.frame_bytes));
  }
  return cdf;
}

PacketSizeModes packet_size_mode_split(std::span<const core::PacketHeader> trace) {
  PacketSizeModes modes;
  const std::int64_t small_cutoff = core::wire::tcp_frame_bytes(0) * 3 / 2;
  const std::int64_t full_cutoff =
      core::wire::tcp_frame_bytes(core::wire::kMaxTcpPayloadBytes * 9 / 10);
  for (const core::PacketHeader& pkt : trace) {
    ++modes.samples;
    if (pkt.frame_bytes <= small_cutoff) {
      modes.small_fraction += 1.0;
    } else if (pkt.frame_bytes >= full_cutoff) {
      modes.full_fraction += 1.0;
    }
  }
  if (modes.samples > 0) {
    modes.small_fraction /= static_cast<double>(modes.samples);
    modes.full_fraction /= static_cast<double>(modes.samples);
  }
  return modes;
}

core::Cdf syn_interarrival_cdf(std::span<const core::PacketHeader> trace,
                               core::Ipv4Addr outbound_from) {
  // Trace is time-ordered (the capture path sorts it); collect initial
  // SYNs only.
  core::Cdf cdf;
  bool have_prev = false;
  core::TimePoint prev;
  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != outbound_from) continue;
    if (!pkt.flags.syn || pkt.flags.ack) continue;
    if (have_prev) cdf.add((pkt.timestamp - prev).to_micros());
    prev = pkt.timestamp;
    have_prev = true;
  }
  return cdf;
}

std::vector<std::int64_t> arrival_counts(std::span<const core::PacketHeader> trace,
                                         core::Duration bin) {
  std::vector<std::int64_t> out;
  if (trace.empty()) return out;
  const std::int64_t first = trace.front().timestamp.bin_index(bin);
  for (const core::PacketHeader& pkt : trace) {
    const std::int64_t b = pkt.timestamp.bin_index(bin) - first;
    if (b < 0) continue;
    if (static_cast<std::size_t>(b) >= out.size()) out.resize(static_cast<std::size_t>(b) + 1, 0);
    ++out[static_cast<std::size_t>(b)];
  }
  return out;
}

double idle_bin_fraction(std::span<const core::PacketHeader> trace, core::Duration bin) {
  const auto counts = arrival_counts(trace, bin);
  if (counts.empty()) return 1.0;
  const auto idle = static_cast<double>(
      std::count(counts.begin(), counts.end(), std::int64_t{0}));
  return idle / static_cast<double>(counts.size());
}

core::Cdf per_destination_idle_fractions(std::span<const core::PacketHeader> trace,
                                          core::Ipv4Addr outbound_from, core::Duration bin,
                                          std::int64_t min_packets) {
  struct Dest {
    std::int64_t first_bin{0};
    std::int64_t last_bin{0};
    std::unordered_set<std::int64_t> active;
    std::int64_t packets{0};
  };
  std::unordered_map<std::uint32_t, Dest> dests;
  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != outbound_from) continue;
    const std::int64_t b = pkt.timestamp.bin_index(bin);
    auto [it, inserted] = dests.try_emplace(pkt.tuple.dst_ip.value());
    Dest& d = it->second;
    if (inserted) {
      d.first_bin = b;
      d.last_bin = b;
    }
    d.first_bin = std::min(d.first_bin, b);
    d.last_bin = std::max(d.last_bin, b);
    d.active.insert(b);
    ++d.packets;
  }
  core::Cdf out;
  for (const auto& [addr, d] : dests) {
    if (d.packets < min_packets) continue;
    const std::int64_t span = d.last_bin - d.first_bin + 1;
    if (span < 2) continue;
    out.add(1.0 - static_cast<double>(d.active.size()) / static_cast<double>(span));
  }
  return out;
}

PerRackRates per_rack_second_rates(std::span<const core::PacketHeader> trace,
                                   core::Ipv4Addr outbound_from, const AddrResolver& resolver,
                                   core::TimePoint origin, core::Duration span) {
  const auto seconds = static_cast<std::size_t>(span / core::Duration::seconds(1));
  std::unordered_map<std::uint64_t, std::vector<double>> per_rack;
  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != outbound_from) continue;
    const auto rack = resolver.rack_of(pkt.tuple.dst_ip);
    if (!rack) continue;
    const std::int64_t sec = (pkt.timestamp - origin) / core::Duration::seconds(1);
    if (sec < 0 || static_cast<std::size_t>(sec) >= seconds) continue;
    auto [it, inserted] = per_rack.try_emplace(rack->value());
    if (inserted) it->second.assign(seconds, 0.0);
    it->second[static_cast<std::size_t>(sec)] += static_cast<double>(pkt.frame_bytes);
  }

  PerRackRates out;
  out.seconds = seconds;
  std::vector<std::uint64_t> keys;
  keys.reserve(per_rack.size());
  for (const auto& [key, rates] : per_rack) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    out.rack_keys.push_back(key);
    out.bytes_per_sec.push_back(std::move(per_rack[key]));
  }
  return out;
}

RateStability rate_stability(const PerRackRates& rates) {
  RateStability out;
  std::int64_t total = 0;
  std::int64_t within2x = 0;
  std::int64_t significant = 0;
  for (const auto& series : rates.bytes_per_sec) {
    std::vector<double> sorted = series;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    std::vector<double> normalized;
    normalized.reserve(series.size());
    for (const double v : series) {
      if (median <= 0.0) continue;
      const double ratio = v / median;
      normalized.push_back(ratio);
      ++total;
      if (ratio >= 0.5 && ratio <= 2.0) ++within2x;
      if (ratio < 0.8 || ratio > 1.2) ++significant;
    }
    if (!normalized.empty()) out.normalized.push_back(std::move(normalized));
  }
  if (total > 0) {
    out.within_2x_of_median = static_cast<double>(within2x) / static_cast<double>(total);
    out.significant_change = static_cast<double>(significant) / static_cast<double>(total);
  }
  return out;
}

}  // namespace fbdcsim::analysis
