#include "fbdcsim/analysis/heavy_hitters.h"

#include <algorithm>
#include <unordered_set>

namespace fbdcsim::analysis {

BinnedTraffic bin_outbound(std::span<const core::PacketHeader> trace, core::Ipv4Addr from,
                           const AddrResolver& resolver, AggLevel level,
                           core::Duration bin_width, core::TimePoint origin,
                           core::Duration span) {
  const auto num_bins = static_cast<std::size_t>(span / bin_width);
  BinnedTraffic binned{bin_width, num_bins};
  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != from) continue;
    std::uint64_t key = 0;
    switch (level) {
      case AggLevel::kFlow:
        key = std::hash<core::FiveTuple>{}(pkt.tuple);
        break;
      case AggLevel::kHost:
        key = pkt.tuple.dst_ip.value();
        break;
      case AggLevel::kRack: {
        const auto rack = resolver.rack_of(pkt.tuple.dst_ip);
        if (!rack) continue;
        key = rack->value();
        break;
      }
    }
    const std::int64_t bin = (pkt.timestamp - origin) / bin_width;
    binned.add(bin, key, static_cast<double>(pkt.frame_bytes));
  }
  return binned;
}

std::vector<std::uint64_t> heavy_hitters_of(
    const std::unordered_map<std::uint64_t, double>& bin, double coverage) {
  std::vector<std::pair<std::uint64_t, double>> entries{bin.begin(), bin.end()};
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  double total = 0.0;
  for (const auto& [key, bytes] : entries) total += bytes;
  std::vector<std::uint64_t> out;
  double acc = 0.0;
  for (const auto& [key, bytes] : entries) {
    if (acc >= coverage * total) break;
    out.push_back(key);
    acc += bytes;
  }
  return out;
}

std::vector<double> hh_persistence(const BinnedTraffic& binned, double coverage) {
  std::vector<double> out;
  std::vector<std::uint64_t> prev;
  bool have_prev = false;
  for (std::size_t i = 0; i < binned.num_bins(); ++i) {
    const auto& bin = binned.bin(i);
    if (bin.empty()) {
      // An empty interval breaks the chain (nothing to persist into).
      have_prev = false;
      continue;
    }
    std::vector<std::uint64_t> cur = heavy_hitters_of(bin, coverage);
    if (have_prev && !prev.empty()) {
      const std::unordered_set<std::uint64_t> cur_set{cur.begin(), cur.end()};
      std::size_t kept = 0;
      for (const std::uint64_t k : prev) {
        if (cur_set.contains(k)) ++kept;
      }
      out.push_back(static_cast<double>(kept) / static_cast<double>(prev.size()) * 100.0);
    }
    prev = std::move(cur);
    have_prev = true;
  }
  return out;
}

std::vector<double> hh_second_intersection(const BinnedTraffic& sub,
                                           const BinnedTraffic& per_second,
                                           double coverage) {
  std::vector<double> out;
  const std::int64_t ratio = core::Duration::seconds(1) / sub.bin_width();
  if (ratio <= 0) return out;

  for (std::size_t sec = 0; sec < per_second.num_bins(); ++sec) {
    const auto& sec_bin = per_second.bin(sec);
    if (sec_bin.empty()) continue;
    const auto sec_hh = heavy_hitters_of(sec_bin, coverage);
    const std::unordered_set<std::uint64_t> sec_set{sec_hh.begin(), sec_hh.end()};

    for (std::int64_t s = 0; s < ratio; ++s) {
      const std::size_t idx = sec * static_cast<std::size_t>(ratio) + static_cast<std::size_t>(s);
      if (idx >= sub.num_bins()) break;
      const auto& sub_bin = sub.bin(idx);
      if (sub_bin.empty()) continue;
      const auto sub_hh = heavy_hitters_of(sub_bin, coverage);
      if (sub_hh.empty()) continue;
      std::size_t common = 0;
      for (const std::uint64_t k : sub_hh) {
        if (sec_set.contains(k)) ++common;
      }
      out.push_back(static_cast<double>(common) / static_cast<double>(sub_hh.size()) * 100.0);
    }
  }
  return out;
}

HeavyHitterStats hh_stats(const BinnedTraffic& binned, double coverage) {
  HeavyHitterStats stats;
  const double bin_sec = binned.bin_width().to_seconds();
  for (std::size_t i = 0; i < binned.num_bins(); ++i) {
    const auto& bin = binned.bin(i);
    if (bin.empty()) continue;
    const auto hh = heavy_hitters_of(bin, coverage);
    stats.count_per_bin.add(static_cast<double>(hh.size()));
    for (const std::uint64_t k : hh) {
      const double bytes = bin.at(k);
      stats.size_mbps.add(bytes * 8.0 / bin_sec / 1e6);
    }
  }
  return stats;
}

}  // namespace fbdcsim::analysis
