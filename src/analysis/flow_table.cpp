#include "fbdcsim/analysis/flow_table.h"

#include <algorithm>

namespace fbdcsim::analysis {

const char* to_string(AggLevel level) {
  switch (level) {
    case AggLevel::kFlow: return "flow";
    case AggLevel::kHost: return "host";
    case AggLevel::kRack: return "rack";
  }
  return "?";
}

namespace {

void accumulate(std::unordered_map<core::FiveTuple, Flow>& table,
                const core::PacketHeader& pkt, const core::FiveTuple& key) {
  auto [it, inserted] = table.try_emplace(key);
  Flow& f = it->second;
  if (inserted) {
    f.tuple = key;
    f.first_packet = pkt.timestamp;
    f.last_packet = pkt.timestamp;
  }
  f.first_packet = std::min(f.first_packet, pkt.timestamp);
  f.last_packet = std::max(f.last_packet, pkt.timestamp);
  f.payload_bytes += pkt.payload_bytes;
  f.frame_bytes += pkt.frame_bytes;
  ++f.packets;
  f.saw_syn = f.saw_syn || pkt.flags.syn;
  f.saw_fin = f.saw_fin || pkt.flags.fin;
}

std::vector<Flow> to_sorted_vector(std::unordered_map<core::FiveTuple, Flow>&& table) {
  std::vector<Flow> out;
  out.reserve(table.size());
  for (auto& [key, flow] : table) out.push_back(flow);
  std::sort(out.begin(), out.end(), [](const Flow& a, const Flow& b) {
    if (a.first_packet != b.first_packet) return a.first_packet < b.first_packet;
    return a.tuple < b.tuple;
  });
  return out;
}

}  // namespace

std::vector<Flow> FlowTable::outbound_flows(std::span<const core::PacketHeader> trace,
                                            core::Ipv4Addr outbound_from) {
  std::unordered_map<core::FiveTuple, Flow> table;
  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != outbound_from) continue;
    accumulate(table, pkt, pkt.tuple);
  }
  return to_sorted_vector(std::move(table));
}

std::vector<Flow> FlowTable::all_flows(std::span<const core::PacketHeader> trace) {
  std::unordered_map<core::FiveTuple, Flow> table;
  for (const core::PacketHeader& pkt : trace) {
    // Canonical orientation: smaller (ip, port) endpoint first, so both
    // directions of a connection collapse into one flow record.
    core::FiveTuple key = pkt.tuple;
    const auto src = std::make_pair(key.src_ip.value(), key.src_port);
    const auto dst = std::make_pair(key.dst_ip.value(), key.dst_port);
    if (dst < src) key = key.reversed();
    accumulate(table, pkt, key);
  }
  return to_sorted_vector(std::move(table));
}

std::vector<AggregatedFlow> aggregate(std::span<const Flow> flows, AggLevel level,
                                      const AddrResolver& resolver) {
  std::unordered_map<std::uint64_t, AggregatedFlow> table;
  for (const Flow& f : flows) {
    std::uint64_t key = 0;
    switch (level) {
      case AggLevel::kFlow:
        key = std::hash<core::FiveTuple>{}(f.tuple);
        break;
      case AggLevel::kHost:
        key = f.tuple.dst_ip.value();
        break;
      case AggLevel::kRack: {
        const auto rack = resolver.rack_of(f.tuple.dst_ip);
        if (!rack) continue;
        key = rack->value();
        break;
      }
    }
    auto [it, inserted] = table.try_emplace(key);
    AggregatedFlow& a = it->second;
    if (inserted) {
      a.key = key;
      a.first_packet = f.first_packet;
      a.last_packet = f.last_packet;
    }
    a.first_packet = std::min(a.first_packet, f.first_packet);
    a.last_packet = std::max(a.last_packet, f.last_packet);
    a.payload_bytes += f.payload_bytes;
    a.packets += f.packets;
  }
  std::vector<AggregatedFlow> out;
  out.reserve(table.size());
  for (auto& [key, a] : table) out.push_back(a);
  std::sort(out.begin(), out.end(),
            [](const AggregatedFlow& a, const AggregatedFlow& b) { return a.key < b.key; });
  return out;
}

}  // namespace fbdcsim::analysis
