#include "fbdcsim/analysis/burstiness.h"

#include <unordered_map>
#include <unordered_set>

namespace fbdcsim::analysis {

core::Cdf flow_duty_cycles(std::span<const core::PacketHeader> trace,
                           core::Ipv4Addr outbound_from, core::Duration bin,
                           std::int64_t min_packets) {
  struct FlowBins {
    std::int64_t first_bin{0};
    std::int64_t last_bin{0};
    std::unordered_set<std::int64_t> active;
    std::int64_t packets{0};
  };
  std::unordered_map<core::FiveTuple, FlowBins> flows;
  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != outbound_from) continue;
    const std::int64_t b = pkt.timestamp.bin_index(bin);
    auto [it, inserted] = flows.try_emplace(pkt.tuple);
    FlowBins& f = it->second;
    if (inserted) {
      f.first_bin = b;
      f.last_bin = b;
    }
    f.first_bin = std::min(f.first_bin, b);
    f.last_bin = std::max(f.last_bin, b);
    f.active.insert(b);
    ++f.packets;
  }

  core::Cdf out;
  for (const auto& [tuple, f] : flows) {
    if (f.packets < min_packets) continue;
    const std::int64_t span = f.last_bin - f.first_bin + 1;
    if (span < 2) continue;
    out.add(static_cast<double>(f.active.size()) / static_cast<double>(span));
  }
  return out;
}

TrainStats packet_trains(std::span<const core::PacketHeader> trace,
                         core::Ipv4Addr outbound_from, core::Duration max_gap) {
  TrainStats stats;
  bool in_train = false;
  core::TimePoint train_start;
  core::TimePoint last_packet;
  std::int64_t train_packets = 0;
  std::int64_t train_bytes = 0;

  auto close_train = [&](core::TimePoint next_start, bool has_next) {
    stats.packets_per_train.add(static_cast<double>(train_packets));
    stats.bytes_per_train.add(static_cast<double>(train_bytes));
    stats.train_duration_us.add((last_packet - train_start).to_micros());
    if (has_next) {
      stats.gap_between_trains_us.add((next_start - last_packet).to_micros());
    }
  };

  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != outbound_from) continue;
    if (!in_train) {
      in_train = true;
      train_start = pkt.timestamp;
      train_packets = 0;
      train_bytes = 0;
    } else if (pkt.timestamp - last_packet > max_gap) {
      close_train(pkt.timestamp, true);
      train_start = pkt.timestamp;
      train_packets = 0;
      train_bytes = 0;
    }
    ++train_packets;
    train_bytes += pkt.frame_bytes;
    last_packet = pkt.timestamp;
  }
  if (in_train) close_train({}, false);
  return stats;
}

}  // namespace fbdcsim::analysis
