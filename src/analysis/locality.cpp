#include "fbdcsim/analysis/locality.h"

#include <algorithm>

namespace fbdcsim::analysis {

std::vector<LocalityBin> locality_timeseries(std::span<const core::PacketHeader> trace,
                                             core::Ipv4Addr outbound_from,
                                             const AddrResolver& resolver,
                                             core::Duration bin) {
  std::vector<LocalityBin> out;
  if (trace.empty()) return out;
  const std::int64_t first_bin = trace.front().timestamp.bin_index(bin);
  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != outbound_from) continue;
    const auto loc = resolver.locality(pkt.tuple.src_ip, pkt.tuple.dst_ip);
    if (!loc) continue;
    const std::int64_t b = pkt.timestamp.bin_index(bin) - first_bin;
    if (b < 0) continue;
    if (static_cast<std::size_t>(b) >= out.size()) {
      const std::size_t old = out.size();
      out.resize(static_cast<std::size_t>(b) + 1);
      for (std::size_t i = old; i < out.size(); ++i) out[i].bin = static_cast<std::int64_t>(i);
    }
    out[static_cast<std::size_t>(b)].bytes[static_cast<int>(*loc)] +=
        static_cast<double>(pkt.frame_bytes);
  }
  return out;
}

std::array<double, core::kNumLocalities> locality_shares(
    std::span<const core::PacketHeader> trace, core::Ipv4Addr outbound_from,
    const AddrResolver& resolver) {
  std::array<double, core::kNumLocalities> bytes{};
  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != outbound_from) continue;
    const auto loc = resolver.locality(pkt.tuple.src_ip, pkt.tuple.dst_ip);
    if (!loc) continue;
    bytes[static_cast<int>(*loc)] += static_cast<double>(pkt.frame_bytes);
  }
  double total = 0.0;
  for (const double b : bytes) total += b;
  if (total > 0.0) {
    for (double& b : bytes) b = b / total * 100.0;
  }
  return bytes;
}

std::vector<RoleShare> outbound_role_shares(std::span<const core::PacketHeader> trace,
                                            core::Ipv4Addr outbound_from,
                                            const AddrResolver& resolver) {
  constexpr core::HostRole kRoles[] = {
      core::HostRole::kWeb,      core::HostRole::kCacheFollower, core::HostRole::kCacheLeader,
      core::HostRole::kHadoop,   core::HostRole::kMultifeed,     core::HostRole::kSlb,
      core::HostRole::kDatabase, core::HostRole::kService};
  std::array<double, 8> bytes{};
  double total = 0.0;
  for (const core::PacketHeader& pkt : trace) {
    if (pkt.tuple.src_ip != outbound_from) continue;
    const auto role = resolver.role_of(pkt.tuple.dst_ip);
    if (!role) continue;
    bytes[static_cast<std::size_t>(*role)] += static_cast<double>(pkt.payload_bytes);
    total += static_cast<double>(pkt.payload_bytes);
  }
  std::vector<RoleShare> out;
  for (const core::HostRole role : kRoles) {
    const double b = bytes[static_cast<std::size_t>(role)];
    out.push_back(RoleShare{role, total > 0.0 ? b / total * 100.0 : 0.0});
  }
  return out;
}

FlowsByLocality flows_by_locality(std::span<const Flow> flows, const AddrResolver& resolver) {
  FlowsByLocality out;
  for (const Flow& f : flows) {
    const auto loc = resolver.locality(f.tuple.src_ip, f.tuple.dst_ip);
    if (!loc) continue;
    const auto size = static_cast<double>(f.payload_bytes);
    const double dur_ms = f.duration().to_millis();
    out.size_bytes[static_cast<int>(*loc)].push_back(size);
    out.duration_ms[static_cast<int>(*loc)].push_back(dur_ms);
    out.all_size_bytes.push_back(size);
    out.all_duration_ms.push_back(dur_ms);
  }
  return out;
}

}  // namespace fbdcsim::analysis
