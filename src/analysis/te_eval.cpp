#include "fbdcsim/analysis/te_eval.h"

#include <unordered_set>

namespace fbdcsim::analysis {

TeEvaluation evaluate_reactive_te(const BinnedTraffic& binned, double coverage) {
  TeEvaluation eval;
  std::vector<std::uint64_t> previous_hh;
  bool have_previous = false;
  double predicted_sum = 0.0;
  double oracle_sum = 0.0;
  double treated_sum = 0.0;

  for (std::size_t i = 0; i < binned.num_bins(); ++i) {
    const auto& bin = binned.bin(i);
    if (bin.empty()) {
      have_previous = false;
      continue;
    }
    const auto own_hh = heavy_hitters_of(bin, coverage);
    double total = 0.0;
    for (const auto& [key, bytes] : bin) total += bytes;

    if (have_previous) {
      double predicted = 0.0;
      for (const std::uint64_t key : previous_hh) {
        const auto it = bin.find(key);
        if (it != bin.end()) predicted += it->second;
      }
      double oracle = 0.0;
      for (const std::uint64_t key : own_hh) oracle += bin.at(key);

      predicted_sum += predicted / total;
      oracle_sum += oracle / total;
      treated_sum += static_cast<double>(previous_hh.size());
      ++eval.intervals;
    }
    previous_hh = own_hh;
    have_previous = true;
  }

  if (eval.intervals > 0) {
    eval.predicted_byte_coverage = predicted_sum / static_cast<double>(eval.intervals);
    eval.oracle_byte_coverage = oracle_sum / static_cast<double>(eval.intervals);
    eval.mean_treated_keys = treated_sum / static_cast<double>(eval.intervals);
  }
  return eval;
}

TeEvaluation evaluate_reactive_te(std::span<const core::PacketHeader> trace,
                                  core::Ipv4Addr outbound_from, const AddrResolver& resolver,
                                  AggLevel level, core::Duration interval,
                                  core::TimePoint origin, core::Duration span,
                                  double coverage) {
  const BinnedTraffic binned =
      bin_outbound(trace, outbound_from, resolver, level, interval, origin, span);
  return evaluate_reactive_te(binned, coverage);
}

}  // namespace fbdcsim::analysis
