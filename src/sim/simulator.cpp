#include "fbdcsim/sim/simulator.h"

#include <stdexcept>

#include "fbdcsim/telemetry/telemetry.h"

#if FBDCSIM_TELEMETRY_ENABLED
#include <chrono>
#endif

namespace fbdcsim::sim {

#if FBDCSIM_TELEMETRY_ENABLED
namespace {

/// Accounts one run()/run_until() call: events executed (deterministic)
/// and the wall time the loop took. sim.events / (sim.run_wall_us / 1e6)
/// is the event loop's aggregate throughput.
class RunMetricsScope {
 public:
  explicit RunMetricsScope(const std::uint64_t& executed)
      : executed_{&executed}, start_events_{executed} {
    if (!telemetry::Telemetry::enabled()) return;
    armed_ = true;
    start_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  }

  ~RunMetricsScope() {
    if (!armed_) return;
    FBDCSIM_T_COUNTER(events, "sim.events", Sim);
    FBDCSIM_T_COUNTER(runs, "sim.runs", Sim);
    FBDCSIM_T_COUNTER(wall, "sim.run_wall_us", Wall);
    const std::int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now().time_since_epoch())
                                    .count();
    FBDCSIM_T_ADD(events, static_cast<std::int64_t>(*executed_ - start_events_));
    FBDCSIM_T_ADD(runs, 1);
    FBDCSIM_T_ADD(wall, now_us - start_us_);
  }

 private:
  const std::uint64_t* executed_;
  std::uint64_t start_events_;
  bool armed_{false};
  std::int64_t start_us_{0};
};

}  // namespace
#endif

void Simulator::schedule_at(TimePoint at, Action action) {
  if (at < now_) throw std::invalid_argument{"Simulator: cannot schedule in the past"};
  queue_.push(Event{at, next_seq_++, std::move(action)});
}

void Simulator::run_until(TimePoint horizon) {
#if FBDCSIM_TELEMETRY_ENABLED
  RunMetricsScope metrics{executed_};
#endif
  while (!queue_.empty() && queue_.top().at <= horizon) {
    // priority_queue::top() is const; moving the action out requires a cast.
    // The pop immediately after makes this safe.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.action();
  }
  if (now_ < horizon) now_ = horizon;
}

void Simulator::run() {
#if FBDCSIM_TELEMETRY_ENABLED
  RunMetricsScope metrics{executed_};
#endif
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.action();
  }
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Duration period, Tick tick)
    : sim_{&sim}, period_{period}, tick_{std::move(tick)}, alive_{std::make_shared<bool>(true)} {
  if (period_ <= Duration{}) throw std::invalid_argument{"PeriodicTimer: period must be positive"};
  arm(sim_->now() + period_);
}

void PeriodicTimer::arm(TimePoint at) {
  sim_->schedule_at(at, [this, at, alive = alive_] {
    if (!*alive) return;
    tick_(at);
    if (*alive) arm(at + period_);
  });
}

}  // namespace fbdcsim::sim
