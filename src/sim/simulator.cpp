#include "fbdcsim/sim/simulator.h"

#include <algorithm>
#include <stdexcept>

#if FBDCSIM_TELEMETRY_ENABLED
#include <chrono>
#endif

namespace fbdcsim::sim {

#if FBDCSIM_TELEMETRY_ENABLED
namespace {

/// Accounts one run()/run_until() call: events executed (deterministic)
/// and the wall time the loop took. sim.events / (sim.run_wall_us / 1e6)
/// is the event loop's aggregate throughput.
class RunMetricsScope {
 public:
  explicit RunMetricsScope(const std::uint64_t& executed)
      : executed_{&executed}, start_events_{executed} {
    if (!telemetry::Telemetry::enabled()) return;
    armed_ = true;
    start_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  }

  ~RunMetricsScope() {
    if (!armed_) return;
    FBDCSIM_T_COUNTER(events, "sim.events", Sim);
    FBDCSIM_T_COUNTER(runs, "sim.runs", Sim);
    FBDCSIM_T_COUNTER(wall, "sim.run_wall_us", Wall);
    const std::int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now().time_since_epoch())
                                    .count();
    FBDCSIM_T_ADD(events, static_cast<std::int64_t>(*executed_ - start_events_));
    FBDCSIM_T_ADD(runs, 1);
    FBDCSIM_T_ADD(wall, now_us - start_us_);
  }

 private:
  const std::uint64_t* executed_;
  std::uint64_t start_events_;
  bool armed_{false};
  std::int64_t start_us_{0};
};

}  // namespace
#endif

namespace {

/// (time, seq) ascending — the execution order.
template <typename E>
bool earlier(const E& a, const E& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
}

}  // namespace

void Simulator::schedule_bucketed(TimePoint at, Action action) {
  const std::int64_t idx = bucket_of(at);
  Event ev{at, next_seq_++, std::move(action)};
  ++size_;
  if (draining_ && idx <= cursor_) {
    // Scheduled (from an executing action) into the bucket being drained:
    // the heap keeps the in-progress sorted scan valid without re-sorting
    // the bucket vector per schedule.
    active_.push(std::move(ev));
    return;
  }
  if (idx >= cursor_ + kWheelSize) {
    overflow_.push(std::move(ev));
    return;
  }
  // idx < cursor_ happens when the cursor passed the event's natural bucket
  // but `at` is still >= now() (e.g. after a horizon stop mid-bucket); the
  // event is folded into the current bucket and the per-bucket (time, seq)
  // sort puts it first.
  Bucket& b = wheel_[(idx <= cursor_ ? cursor_ : idx) & kWheelMask];
  if (b.pos == b.items.size() && b.pos != 0) {
    // Everything in the bucket already executed; drop the stale prefix.
    b.items.clear();
    b.pos = 0;
    b.dirty = false;
  }
  if (!b.dirty && !b.items.empty() && ev.at < b.items.back().at) b.dirty = true;
  b.items.push_back(std::move(ev));
}

void Simulator::schedule_reference(TimePoint at, std::function<void()> action) {
  ref_queue_.push(RefEvent{at, next_seq_++, std::move(action)});
  ++size_;
}

void Simulator::migrate_overflow() {
  // Overflow pops in (time, seq) order and the bucket index is monotone in
  // time, so the now-in-window events are exactly the heap's top prefix.
  const std::int64_t limit = cursor_ + kWheelSize;
  while (!overflow_.empty() && bucket_of(overflow_.top().at) < limit) {
    Event ev = std::move(const_cast<Event&>(overflow_.top()));
    overflow_.pop();
    Bucket& b = wheel_[bucket_of(ev.at) & kWheelMask];
    if (!b.dirty && !b.items.empty() && ev.at < b.items.back().at) b.dirty = true;
    b.items.push_back(std::move(ev));
  }
}

void Simulator::run_loop(TimePoint horizon, bool bounded) {
  // Every iteration re-derives its state from the member fields, so an
  // action calling clear() (or scheduling more work) is always observed.
  for (;;) {
    if (size_ == 0) break;

    Bucket& b = wheel_[cursor_ & kWheelMask];
    if (b.dirty) {
      b.items.erase(b.items.begin(),
                    b.items.begin() + static_cast<std::ptrdiff_t>(b.pos));
      b.pos = 0;
      std::sort(b.items.begin(), b.items.end(), earlier<Event>);
      b.dirty = false;
    }

    const bool bucket_has = b.pos < b.items.size();
    if (!bucket_has && active_.empty()) {
      b.items.clear();
      b.pos = 0;
      if (size_ == overflow_.size()) {
        // Wheel empty: jump straight to the earliest overflow event.
        if (bounded && overflow_.top().at > horizon) break;
        cursor_ = bucket_of(overflow_.top().at);
      } else {
        ++cursor_;
      }
      migrate_overflow();
      continue;
    }

    // Next event = min of the bucket front and the active heap.
    bool from_active = !bucket_has;
    if (bucket_has && !active_.empty()) {
      from_active = earlier(active_.top(), b.items[b.pos]);
    }
    const Event& peek = from_active ? active_.top() : b.items[b.pos];
    if (bounded && peek.at > horizon) break;

    Event ev = from_active ? std::move(const_cast<Event&>(active_.top()))
                           : std::move(b.items[b.pos]);
    if (from_active) {
      active_.pop();
    } else {
      ++b.pos;
    }
    --size_;
    now_ = ev.at;
    ++executed_;
    draining_ = true;
    ev.action();
    draining_ = false;
  }
  draining_ = false;

  // A horizon stop can leave active-heap events pending; fold them back
  // into their bucket so the "active_ empty outside the drain" invariant
  // holds for the next schedule/run.
  if (!active_.empty()) {
    Bucket& b = wheel_[cursor_ & kWheelMask];
    while (!active_.empty()) {
      b.items.push_back(std::move(const_cast<Event&>(active_.top())));
      active_.pop();
    }
    b.dirty = true;
  }
}

void Simulator::run_loop_reference(TimePoint horizon, bool bounded) {
  while (!ref_queue_.empty() && (!bounded || ref_queue_.top().at <= horizon)) {
    // priority_queue::top() is const; moving the action out requires a cast.
    // The pop immediately after makes this safe.
    RefEvent ev = std::move(const_cast<RefEvent&>(ref_queue_.top()));
    ref_queue_.pop();
    --size_;
    now_ = ev.at;
    ++executed_;
    ev.action();
  }
}

void Simulator::run_until(TimePoint horizon) {
#if FBDCSIM_TELEMETRY_ENABLED
  RunMetricsScope metrics{executed_};
#endif
  if (engine_ == Engine::kReference) {
    run_loop_reference(horizon, /*bounded=*/true);
  } else {
    run_loop(horizon, /*bounded=*/true);
  }
  if (now_ < horizon) now_ = horizon;
}

void Simulator::run() {
#if FBDCSIM_TELEMETRY_ENABLED
  RunMetricsScope metrics{executed_};
#endif
  if (engine_ == Engine::kReference) {
    run_loop_reference(TimePoint{}, /*bounded=*/false);
  } else {
    run_loop(TimePoint{}, /*bounded=*/false);
  }
}

void Simulator::clear() {
  for (Bucket& b : wheel_) {
    b.items.clear();
    b.pos = 0;
    b.dirty = false;
  }
  while (!active_.empty()) active_.pop();
  while (!overflow_.empty()) overflow_.pop();
  while (!ref_queue_.empty()) ref_queue_.pop();
  size_ = 0;
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Duration period, Tick tick)
    : state_{std::make_shared<State>(State{&sim, period, std::move(tick), true})} {
  if (period <= Duration{}) throw std::invalid_argument{"PeriodicTimer: period must be positive"};
  arm(state_, sim.now() + period);
}

void PeriodicTimer::arm(const std::shared_ptr<State>& state, TimePoint at) {
  // The event owns a reference to the state, so destroying the timer from
  // inside its own tick leaves the executing callback valid.
  state->sim->schedule_at(at, [st = state, at] {
    if (!st->alive) return;
    st->tick(at);
    if (st->alive) arm(st, at + st->period);
  });
}

}  // namespace fbdcsim::sim
