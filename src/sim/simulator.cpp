#include "fbdcsim/sim/simulator.h"

#include <stdexcept>

namespace fbdcsim::sim {

void Simulator::schedule_at(TimePoint at, Action action) {
  if (at < now_) throw std::invalid_argument{"Simulator: cannot schedule in the past"};
  queue_.push(Event{at, next_seq_++, std::move(action)});
}

void Simulator::run_until(TimePoint horizon) {
  while (!queue_.empty() && queue_.top().at <= horizon) {
    // priority_queue::top() is const; moving the action out requires a cast.
    // The pop immediately after makes this safe.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.action();
  }
  if (now_ < horizon) now_ = horizon;
}

void Simulator::run() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.action();
  }
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Duration period, Tick tick)
    : sim_{&sim}, period_{period}, tick_{std::move(tick)}, alive_{std::make_shared<bool>(true)} {
  if (period_ <= Duration{}) throw std::invalid_argument{"PeriodicTimer: period must be positive"};
  arm(sim_->now() + period_);
}

void PeriodicTimer::arm(TimePoint at) {
  sim_->schedule_at(at, [this, at, alive = alive_] {
    if (!*alive) return;
    tick_(at);
    if (*alive) arm(at + period_);
  });
}

}  // namespace fbdcsim::sim
