// Anchor scorecard: every quantitative claim the paper states in prose,
// checked automatically against freshly captured traces. This is the
// one-shot regression harness for the whole reproduction — run it after
// touching any service model.
//
// Each anchor cites the paper section it comes from, the band we accept
// (paper value with a generous tolerance — we reproduce shapes, not
// testbeds), and the measured value. Exit code is the number of failed
// anchors, so CI can gate on it.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common.h"
#include "fbdcsim/analysis/burstiness.h"
#include "fbdcsim/analysis/concurrency.h"
#include "fbdcsim/analysis/heavy_hitters.h"
#include "fbdcsim/analysis/locality.h"
#include "fbdcsim/analysis/packet_stats.h"

using namespace fbdcsim;

namespace {

struct Anchor {
  std::string section;
  std::string claim;
  double lo;
  double hi;
  double measured;

  [[nodiscard]] bool pass() const { return measured >= lo && measured <= hi; }
};

std::vector<Anchor> anchors;

void check(std::string section, std::string claim, double lo, double hi, double measured) {
  anchors.push_back(Anchor{std::move(section), std::move(claim), lo, hi, measured});
}

/// Runs every anchor measurement over one set of role traces, appending to
/// the global `anchors` list. Called once on baseline traces (the gate)
/// and, when FBDCSIM_FAULTS selects a profile, once more on faulted traces
/// for the side-by-side column.
void measure(bench::BenchEnv& env, const std::vector<bench::RoleTrace>& traces);

}  // namespace

int main() {
  bench::BenchReport report{"anchor_scorecard"};
  bench::banner("Anchor scorecard: the paper's prose claims, checked automatically",
                "Sections 4-6");
  bench::BenchEnv env;

  // The four role captures are independent simulations; run them
  // concurrently on the shared pool (FBDCSIM_THREADS controls the width).
  const std::vector<bench::BenchEnv::CaptureSpec> specs{{core::HostRole::kWeb, 8},
                                                        {core::HostRole::kCacheFollower, 8},
                                                        {core::HostRole::kCacheLeader, 8},
                                                        {core::HostRole::kHadoop, 12}};
  const auto traces = env.capture_all(specs);
  measure(env, traces);
  const std::vector<Anchor> baseline = anchors;

  // Faulted column: with FBDCSIM_FAULTS on, re-capture the same roles under
  // the fault plan and re-measure. The pass/fail gate stays on the baseline
  // anchors — the faulted column quantifies how far realistic fabric and
  // collection faults move each claim, it is not a correctness gate.
  std::vector<Anchor> faulted;
  if (const faults::FaultPlan* plan = env.fault_plan()) {
    std::vector<bench::BenchEnv::CaptureSpec> faulted_specs = specs;
    for (auto& spec : faulted_specs) {
      spec.tweak = [plan](workload::RackSimConfig& cfg) { cfg.faults = plan; };
    }
    const auto faulted_traces = env.capture_all(std::move(faulted_specs));
    anchors.clear();
    measure(env, faulted_traces);
    faulted = anchors;
  }
  anchors = baseline;

  // ----- report -----
  int failed = 0;
  const bool have_faulted = !faulted.empty();
  std::printf("\n%-5s %-62s %12s", "sec", "claim", "measured");
  if (have_faulted) std::printf(" %12s", "faulted");
  std::printf(" %18s\n", "accepted band");
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    const Anchor& a = anchors[i];
    if (!a.pass()) ++failed;
    std::printf("%-5s %-62s %12.2f", a.section.c_str(), a.claim.c_str(), a.measured);
    if (have_faulted) {
      if (i < faulted.size()) {
        std::printf(" %12.2f", faulted[i].measured);
      } else {
        std::printf(" %12s", "-");
      }
    }
    std::printf(" %8.4g-%-8.4g %s\n", a.lo, a.hi, a.pass() ? "PASS" : "FAIL");
  }
  std::printf("\n%zu anchors, %d failed\n", anchors.size(), failed);
  report.set_status(failed);
  return failed;
}

namespace {

void measure(bench::BenchEnv& env, const std::vector<bench::RoleTrace>& traces) {
  const auto& resolver = env.resolver();
  const bench::RoleTrace& web = traces[0];
  const bench::RoleTrace& cache_f = traces[1];
  const bench::RoleTrace& cache_l = traces[2];
  const bench::RoleTrace& hadoop = traces[3];

  // ----- §3.2 / Table 2 -----
  {
    const auto shares = analysis::outbound_role_shares(web.result.trace, web.self, resolver);
    for (const auto& s : shares) {
      if (s.role == core::HostRole::kCacheFollower) {
        check("T2", "Web outbound to cache ~63.1%", 48, 78, s.percent);
      }
      if (s.role == core::HostRole::kMultifeed) {
        check("T2", "Web outbound to Multifeed ~15.2%", 8, 25, s.percent);
      }
    }
    const auto hshares =
        analysis::outbound_role_shares(hadoop.result.trace, hadoop.self, resolver);
    for (const auto& s : hshares) {
      if (s.role == core::HostRole::kHadoop) {
        check("T2", "Hadoop outbound to Hadoop ~99.8%", 98, 100, s.percent);
      }
    }
  }

  // ----- §4.2 locality -----
  {
    const auto wl = analysis::locality_shares(web.result.trace, web.self, resolver);
    check("4.2", "Web traffic mostly intra-cluster (~68-86%)", 55, 95, wl[1]);
    check("4.2", "Web rack-local traffic minimal", 0, 8, wl[0]);
    const auto hl = analysis::locality_shares(hadoop.result.trace, hadoop.self, resolver);
    check("4.2", "Busy Hadoop node ~75.7% rack-local", 50, 90, hl[0]);
    check("4.2", "Hadoop stays in cluster (99.8%)", 97, 100, hl[0] + hl[1]);
    const auto cl = analysis::locality_shares(cache_l.result.trace, cache_l.self, resolver);
    check("4.2", "Cache leader mostly DC + inter-DC", 60, 100, cl[2] + cl[3]);
  }

  // ----- §4.2 dispersion -----
  {
    std::set<std::uint32_t> web_peers;
    const auto cluster = env.fleet().host(cache_f.host).cluster;
    for (const auto& pkt : cache_f.result.trace) {
      if (pkt.tuple.src_ip != cache_f.self) continue;
      const auto host = resolver.host_of(pkt.tuple.dst_ip);
      if (host.is_valid() && env.fleet().host(host).role == core::HostRole::kWeb &&
          env.fleet().host(host).cluster == cluster) {
        web_peers.insert(host.value());
      }
    }
    const auto total_web =
        env.fleet().hosts_with_role_in_cluster(core::HostRole::kWeb, cluster).size();
    check("4.2", "Cache follower reaches >90% of cluster's Web servers", 90, 100,
          100.0 * static_cast<double>(web_peers.size()) / static_cast<double>(total_web));
  }

  // ----- §5.1 flows -----
  {
    const auto flows = analysis::FlowTable::outbound_flows(hadoop.result.trace, hadoop.self);
    core::Cdf sizes;
    for (const auto& f : flows) sizes.add(static_cast<double>(f.payload_bytes));
    check("5.1", "Hadoop: ~70% of flows < 10 KB", 55, 95,
          sizes.fraction_at_or_below(10'000) * 100.0);
    check("5.1", "Hadoop: <5% of flows > 1 MB", 0, 5,
          (1.0 - sizes.fraction_at_or_below(1'000'000)) * 100.0);
    check("5.1", "Hadoop median flow < 1 KB", 0, 1000, sizes.median());

    const auto duty = analysis::flow_duty_cycles(cache_f.result.trace, cache_f.self);
    check("5.1", "Cache flows internally bursty (median duty < 25%)", 0, 25,
          duty.median() * 100.0);
  }

  // ----- §5.2 stability -----
  {
    const auto rates = analysis::per_rack_second_rates(
        cache_f.result.trace, cache_f.self, resolver, cache_f.result.capture_start,
        cache_f.result.capture_end - cache_f.result.capture_start);
    const auto stability = analysis::rate_stability(rates);
    check("5.2", "Cache per-rack rates within 2x of median ~90% of time", 80, 100,
          stability.within_2x_of_median * 100.0);
  }

  // ----- §5.3 heavy hitters -----
  {
    const core::Duration span = cache_f.result.capture_end - cache_f.result.capture_start;
    const auto flow_binned = analysis::bin_outbound(
        cache_f.result.trace, cache_f.self, resolver, analysis::AggLevel::kFlow,
        core::Duration::millis(10), cache_f.result.capture_start, span);
    core::Cdf flow_persist;
    flow_persist.add_all(analysis::hh_persistence(flow_binned));
    check("5.3", "Cache 5-tuple HH persistence low (median <= ~20%)", 0, 25,
          flow_persist.median());
    const auto rack_binned = analysis::bin_outbound(
        cache_f.result.trace, cache_f.self, resolver, analysis::AggLevel::kRack,
        core::Duration::millis(100), cache_f.result.capture_start, span);
    core::Cdf rack_persist;
    rack_persist.add_all(analysis::hh_persistence(rack_binned));
    check("5.3", "Cache rack-level HH persistence >40% @100ms", 35, 100,
          rack_persist.median());
  }

  // ----- §6.1 packets -----
  {
    check("6.1", "Web median packet < 200 B", 0, 230,
          analysis::packet_size_cdf(web.result.trace).median());
    check("6.1", "Cache median packet < 200 B", 0, 230,
          analysis::packet_size_cdf(cache_f.result.trace).median());
    const auto hcdf = analysis::packet_size_cdf(hadoop.result.trace);
    check("6.1", "Hadoop bimodal: ACK + MTU modes cover most packets", 70, 100,
          (hcdf.fraction_at_or_below(64.0) + 1.0 - hcdf.fraction_at_or_below(1500.0)) * 100.0);
  }

  // ----- §6.2 arrivals -----
  {
    check("6.2", "Hadoop arrivals continuous at 15 ms (idle bins ~0%)", 0, 10,
          analysis::idle_bin_fraction(hadoop.result.trace, core::Duration::millis(15)) * 100.0);
    const auto per_dest = analysis::per_destination_idle_fractions(
        hadoop.result.trace, hadoop.self, core::Duration::millis(15));
    check("6.2", "Per-destination ON/OFF re-emerges (median idle > 50%)", 50, 100,
          per_dest.median() * 100.0);
    const auto syn = analysis::syn_interarrival_cdf(web.result.trace, web.self);
    check("6.2", "Web SYN interarrival median ~2 ms", 0.5, 5.0, syn.median() / 1000.0);
    const auto csyn = analysis::syn_interarrival_cdf(cache_f.result.trace, cache_f.self);
    check("6.2", "Cache follower SYN interarrival median ~8 ms", 3.0, 16.0,
          csyn.median() / 1000.0);
  }

  // ----- §6.4 concurrency -----
  {
    const auto wc = analysis::concurrent_racks(web.result.trace, web.self, resolver);
    check("6.4", "Web server talks to 10-125 racks per 5 ms (median ~50)", 15, 125,
          wc.all.median());
    const auto cc = analysis::concurrent_racks(cache_f.result.trace, cache_f.self, resolver);
    check("6.4", "Cache follower talks to 225-300 racks per 5 ms", 150, 350,
          cc.all.median());
    const auto hc = analysis::concurrent_connections(hadoop.result.trace, hadoop.self);
    check("6.4", "Hadoop ~25 concurrent connections per 5 ms", 8, 60, hc.tuples.median());
    const auto cf_conns =
        analysis::concurrent_connections(cache_f.result.trace, cache_f.self);
    check("6.4", "Cache holds 100s-1000s of concurrent connections", 100, 5000,
          cf_conns.tuples.median());
    const auto hh =
        analysis::concurrent_heavy_hitter_racks(cache_f.result.trace, cache_f.self, resolver);
    check("6.4", "Cache follower ~29 HH racks per 5 ms (tail ~50)", 10, 60, hh.all.median());
  }
}

}  // namespace
