// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench binary prints the same rows/series the paper reports, against
// traces captured from the canonical rack-experiment fleet. Capture lengths
// default to values that keep each bench under ~a minute; set
// FBDCSIM_BENCH_SECONDS to lengthen or shorten all captures.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fbdcsim/analysis/resolver.h"
#include "fbdcsim/core/stats.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/runtime/thread_pool.h"
#include "fbdcsim/telemetry/export.h"
#include "fbdcsim/telemetry/flow_ledger.h"
#include "fbdcsim/telemetry/obs.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/telemetry/timeseries.h"
#include "fbdcsim/telemetry/tracepoint.h"
#include "fbdcsim/transport/params.h"
#include "fbdcsim/workload/presets.h"

namespace fbdcsim::bench {

/// Seed used by the canonical rack-experiment captures
/// (workload::default_rack_config); the banner's default.
inline constexpr std::uint64_t kCanonicalSeed = 42;

/// The source revision baked in at configure time ("unknown" outside git).
[[nodiscard]] const char* git_revision();

/// Machine-readable perf report, one per bench run. Declare it first in
/// main() so its destructor — which snapshots the global MetricsRegistry,
/// writes bench_<name>.json, and (when telemetry recorded spans) a
/// Perfetto-loadable bench_<name>.trace.json — runs after every pool and
/// simulator has shut down.
///
/// Output location comes from FBDCSIM_BENCH_OUT: unset writes to the
/// working directory; a directory (trailing '/' or an existing one) places
/// the default file names there; anything else is taken as the exact
/// report file path. Malformed values are diagnosed on stderr and ignored,
/// like FBDCSIM_BENCH_SECONDS.
class BenchReport {
 public:
  explicit BenchReport(std::string name, std::uint64_t seed = kCanonicalSeed);
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  /// The exit status the bench is about to return (recorded in the JSON).
  void set_status(int status) { status_ = status; }

  /// Records a bench-specific scalar under the report's "extra" object, in
  /// insertion order. The section is emitted only when at least one value
  /// was added, so reports from benches that never call this stay
  /// byte-identical to pre-"extra" ones. Re-adding a key overwrites it.
  void add_extra(const std::string& key, double value);
  void add_extra(const std::string& key, std::int64_t value);
  void add_extra(const std::string& key, const std::string& value);

  /// Attaches a probe snapshot under the report's "timeseries" object as
  /// `key`. Like "extra", the section only exists once something was added,
  /// so reports without observability stay byte-identical. Re-adding a key
  /// overwrites it.
  void add_timeseries(const std::string& key,
                      const std::vector<telemetry::SeriesSnapshot>& series);

  /// Attaches a flight-recorder dump. The destructor merges every dump in
  /// canonical source order into bench_<name>.tracepoints.jsonl and folds
  /// the records into the Chrome trace as sim-clock instant events.
  void add_tracepoints(telemetry::TracePointDump dump);

  /// Attaches a flow-ledger dump (FBDCSIM_OBS=flows runs). The destructor
  /// writes every dump, canonically ordered by source id, to
  /// bench_<name>.flows.jsonl. Empty dumps (records empty and total == 0 —
  /// the ledger never engaged) are skipped so non-flows runs emit no file.
  void add_flows(telemetry::FlowLedgerDump dump);

  /// Attaches the report's "fct" section (a pre-rendered JSON object,
  /// normally analysis::FctTable::to_json()). Absent until set, so reports
  /// from benches without FCT analytics stay byte-identical.
  void add_fct(std::string fct_json);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string report_path() const;
  [[nodiscard]] std::string trace_path() const;
  [[nodiscard]] std::string tracepoints_path() const;
  [[nodiscard]] std::string flows_path() const;

  /// The report JSON (also what the destructor writes). Exposed for tests.
  [[nodiscard]] std::string to_json() const;

 private:
  void set_extra(const std::string& key, std::string json_value);

  std::string name_;
  std::uint64_t seed_;
  int status_{0};
  std::chrono::steady_clock::time_point start_;
  /// (key, pre-rendered JSON value) pairs, in first-insertion order.
  std::vector<std::pair<std::string, std::string>> extras_;
  /// (key, pre-rendered timeseries JSON object), in first-insertion order.
  std::vector<std::pair<std::string, std::string>> timeseries_;
  std::vector<telemetry::TracePointDump> tracepoint_dumps_;
  std::vector<telemetry::FlowLedgerDump> flow_dumps_;
  /// Pre-rendered "fct" JSON object; empty = section absent.
  std::string fct_json_;
};

/// FBDCSIM_BENCH_SECONDS as a validated value (std::nullopt when unset or
/// malformed; malformed — including out-of-range — values are diagnosed on
/// stderr once per call).
[[nodiscard]] std::optional<std::int64_t> bench_seconds_env();

/// Resolves FBDCSIM_BENCH_OUT to a concrete path for `filename`: unset (or
/// empty, with a diagnostic) keeps the working directory, a directory
/// (trailing '/' or an existing one) prefixes it, anything else is the
/// exact report path. Exposed for the env-parsing tests.
[[nodiscard]] std::string resolve_out_path(const std::string& filename);

/// One monitored-host capture plus everything needed to analyze it.
struct RoleTrace {
  core::HostRole role;
  core::HostId host;
  core::Ipv4Addr self;
  workload::RackSimResult result;
};

/// Builds the canonical fleet once and captures per-role traces on demand.
class BenchEnv {
 public:
  BenchEnv() : fleet_{workload::build_rack_experiment_fleet()}, resolver_{fleet_} {}

  [[nodiscard]] const topology::Fleet& fleet() const { return fleet_; }
  [[nodiscard]] const analysis::AddrResolver& resolver() const { return resolver_; }

  /// Captures `seconds` (scaled by FBDCSIM_BENCH_SECONDS if set) of the
  /// given role's traffic. `tweak` may adjust the config before the run.
  using Tweak = std::function<void(workload::RackSimConfig&)>;
  [[nodiscard]] RoleTrace capture(core::HostRole role, std::int64_t seconds,
                                  const Tweak& tweak = {});

  /// One requested capture for the parallel entry point.
  struct CaptureSpec {
    core::HostRole role;
    std::int64_t seconds;
    Tweak tweak = {};
  };

  /// Captures every spec concurrently (one Simulator per spec, scheduled
  /// over the FBDCSIM_THREADS-sized pool) and returns traces in spec
  /// order. Each capture is identical to what `capture` would produce —
  /// simulations are seeded independently of scheduling.
  [[nodiscard]] std::vector<RoleTrace> capture_all(std::vector<CaptureSpec> specs);

  /// The shared worker pool (created on first use; FBDCSIM_THREADS-sized).
  [[nodiscard]] runtime::ThreadPool& pool();

  /// The fault plan selected by FBDCSIM_FAULTS, resolved once per env.
  /// Returns nullptr when faults are off (unset, "off", or malformed), so
  /// consumers hit the zero-cost opt-out path. Benches opt in explicitly —
  /// captures stay fault-free unless a tweak installs this plan.
  [[nodiscard]] const faults::FaultPlan* fault_plan();

  /// The observability config selected by FBDCSIM_OBS, resolved once per
  /// env (off when unset or malformed). When enabled, capture()/
  /// capture_all() apply it to every config before the tweak runs, so
  /// tweaks can still override per capture.
  [[nodiscard]] const telemetry::ObsConfig& obs();

  /// The congestion-control law selected by FBDCSIM_CC, resolved once per
  /// env (kNewReno when unset, empty, or malformed). capture()/
  /// capture_all() apply it to every config before the tweak runs; it is
  /// inert unless the bench (or its tweak) also opts into Transport::kTcp.
  [[nodiscard]] transport::CongestionControl cc();

  /// The loss-recovery law selected by FBDCSIM_RECOVERY, resolved once per
  /// env (kNewReno when unset, empty, or malformed). Applied like cc():
  /// before the tweak, inert without Transport::kTcp.
  [[nodiscard]] transport::LossRecovery recovery();

  /// Effective capture length for a nominal request. Malformed or
  /// non-positive FBDCSIM_BENCH_SECONDS values are diagnosed on stderr and
  /// ignored.
  [[nodiscard]] static std::int64_t effective_seconds(std::int64_t nominal);

 private:
  topology::Fleet fleet_;
  analysis::AddrResolver resolver_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::unique_ptr<faults::FaultPlan> fault_plan_;
  bool fault_plan_resolved_{false};
  telemetry::ObsConfig obs_;
  bool obs_resolved_{false};
  transport::CongestionControl cc_{transport::CongestionControl::kNewReno};
  bool cc_resolved_{false};
  transport::LossRecovery recovery_{transport::LossRecovery::kNewReno};
  bool recovery_resolved_{false};
};

/// Prints a CDF as (quantile, value) rows at the paper's usual quantiles.
void print_cdf(const char* label, const core::Cdf& cdf, double scale = 1.0,
               const char* unit = "");

/// Prints several CDFs side by side (one column per series).
void print_cdf_table(const char* title, const std::vector<std::string>& names,
                     const std::vector<const core::Cdf*>& cdfs, double scale = 1.0,
                     const char* unit = "");

/// Short banner shared by all benches. Prints the seed and source revision
/// so every bench log is attributable; pass the bench's own seed when it
/// does not use the canonical captures.
void banner(const char* experiment, const char* paper_ref,
            std::uint64_t seed = kCanonicalSeed);

}  // namespace fbdcsim::bench
