// Figure 7: flow duration distributions by destination locality for Web
// servers, cache followers, and Hadoop nodes. Pooled cache connections
// outlive the capture (paper: >40% of cache-l flows exceed the 10-minute
// trace); Hadoop flows last well under a second.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/locality.h"

using namespace fbdcsim;

namespace {

void print_panel(const char* name, const bench::RoleTrace& trace,
                 const analysis::AddrResolver& resolver, double capture_ms) {
  const auto flows = analysis::FlowTable::outbound_flows(trace.result.trace, trace.self);
  const auto buckets = analysis::flows_by_locality(flows, resolver);

  core::Cdf per_loc[core::kNumLocalities];
  for (int i = 0; i < core::kNumLocalities; ++i) {
    per_loc[i].add_all(buckets.duration_ms[i]);
  }
  core::Cdf all;
  all.add_all(buckets.all_duration_ms);

  std::printf("\n-- %s: flow duration by destination locality --\n", name);
  bench::print_cdf_table(
      "flow duration (ms)",
      {"Intra-Rack", "Intra-Cluster", "Intra-DC", "Inter-DC", "All"},
      {&per_loc[0], &per_loc[1], &per_loc[2], &per_loc[3], &all}, 1.0, "ms");
  std::printf("flows <100 ms: %.0f%%; flows spanning >=90%% of the capture: %.0f%%\n",
              all.fraction_at_or_below(100.0) * 100.0,
              (1.0 - all.fraction_at_or_below(capture_ms * 0.9)) * 100.0);
}

}  // namespace

int main() {
  bench::BenchReport report{"fig7_flow_durations"};
  bench::banner("Figure 7: flow duration distribution by destination locality",
                "Figure 7, Section 5.1");
  bench::BenchEnv env;
  const std::int64_t seconds = 15;
  const double capture_ms = static_cast<double>(bench::BenchEnv::effective_seconds(seconds)) * 1e3;

  print_panel("(a) Web server", env.capture(core::HostRole::kWeb, seconds), env.resolver(),
              capture_ms);
  print_panel("(b) Cache follower", env.capture(core::HostRole::kCacheFollower, seconds),
              env.resolver(), capture_ms);
  print_panel("(c) Hadoop", env.capture(core::HostRole::kHadoop, seconds), env.resolver(),
              capture_ms);

  std::printf(
      "\nPaper Figure 7 shape: Hadoop flows short (median <1 s, almost none\n"
      "exceed the capture); cache flows long-lived due to connection pooling\n"
      "(many span the whole capture); Web in between.\n");
  return 0;
}
