// Ablation: shared-buffer admission policy. Compares dynamic-threshold
// sharing (various alpha) against static per-port partitioning under the
// bursty Web-rack workload of Figure 15, reporting drops and occupancy.
// Static partitioning is emulated with a small alpha (each queue is capped
// near buffer/ports regardless of what the rest of the switch is doing).
#include <cstdio>

#include "common.h"

using namespace fbdcsim;

namespace {

struct PolicyResult {
  double median_occ{0};
  double max_occ{0};
  std::int64_t drops{0};
  std::int64_t tx_packets{0};
};

PolicyResult run_policy(const topology::Fleet& fleet, double alpha,
                        core::DataSize buffer_total) {
  workload::RackSimConfig cfg =
      workload::default_rack_config(fleet, core::HostRole::kWeb, core::Duration::seconds(4));
  cfg.mirror_whole_rack = false;
  cfg.background_rate_scale = 1.0;
  cfg.sample_buffer = true;
  cfg.capture_memory_bytes = 64;
  cfg.seed = 99;
  cfg.rsw.buffer_total = buffer_total;
  cfg.rsw.dt_alpha = alpha;

  workload::RackSimulation sim{fleet, cfg};
  const auto result = sim.run();

  PolicyResult out;
  core::Cdf medians;
  for (const auto& s : result.buffer_seconds) {
    medians.add(s.median_fraction);
    out.max_occ = std::max(out.max_occ, s.max_fraction);
  }
  out.median_occ = medians.median();
  out.drops = result.uplink.dropped_packets + result.downlinks.dropped_packets;
  out.tx_packets = result.uplink.tx_packets + result.downlinks.tx_packets;
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report{"ablation_buffer_policy"};
  bench::banner("Ablation: shared-buffer admission policy (DT alpha sweep)",
                "Section 6.3's buffer-tuning discussion");
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  const core::DataSize buffer = core::DataSize::kilobytes(512);

  std::printf("\nWeb rack, %s shared buffer, 4-s window:\n", buffer.to_string().c_str());
  std::printf("%-26s  %12s  %9s  %9s  %12s\n", "policy", "median.occ", "max.occ", "drops",
              "drop rate");
  const struct {
    const char* name;
    double alpha;
  } kPolicies[] = {
      {"static partition (a=0.06)", 0.0625},  // ~buffer/16 per port
      {"conservative DT (a=0.5)", 0.5},
      {"standard DT (a=1)", 1.0},
      {"aggressive DT (a=2)", 2.0},
      {"unrestricted (a=16)", 16.0},
  };
  for (const auto& p : kPolicies) {
    const PolicyResult r = run_policy(fleet, p.alpha, buffer);
    std::printf("%-26s  %12.4f  %9.3f  %9lld  %11.4f%%\n", p.name, r.median_occ, r.max_occ,
                static_cast<long long>(r.drops),
                r.tx_packets > 0
                    ? static_cast<double>(r.drops) /
                          static_cast<double>(r.drops + r.tx_packets) * 100.0
                    : 0.0);
  }
  std::printf(
      "\nExpected: static partitioning drops bursts that dynamic sharing\n"
      "absorbs; very aggressive sharing lets one port starve the rest\n"
      "(higher occupancy without fewer drops). The paper's call for careful\n"
      "buffer tuning (§6.3) is this trade-off.\n");
  return 0;
}
