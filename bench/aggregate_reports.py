#!/usr/bin/env python3
"""Merge per-bench JSON reports into one trajectory file.

Every bench binary writes a ``bench_<name>.json`` report (see
bench/common.h: seed, git revision, wall time, telemetry counters, and the
optional bench-specific ``extra`` section). CI uploads them one artifact
per job; this tool folds any number of them into a single
``bench_trajectory.json`` keyed by bench name, so successive commits can
be diffed with one file fetch instead of N.

Usage:
    aggregate_reports.py [-o OUT] REPORT.json [REPORT.json ...]

The merged document carries, per bench: the source report file name, the
report's own metadata verbatim, and a flattened ``headline`` section (the
bench's "extra" values, the sim-counter totals, and per-series summaries
of the observability ``timeseries`` section) for quick plotting.
Reports that fail to parse — or parse but are not report-shaped (a bench
killed mid-write leaves valid-JSON fragments) — are listed under
``errors`` instead of aborting the merge: one corrupt report must not
hide the others.
"""

import argparse
import json
import sys


def _dict(value) -> dict:
    """`value` if it is a dict, else {} — partial reports hold anything."""
    return value if isinstance(value, dict) else {}


def _series_summary(series) -> dict | None:
    """Headline scalars for one timeseries entry (bench/common.h format):
    sample count plus the last bin's mean — "where did the gauge end up"."""
    series = _dict(series)
    bins = series.get("bins")
    if not isinstance(bins, list) or not bins:
        return None
    last = bins[-1]
    # A bin is [start_ns, count, min, max, last, sum].
    if not isinstance(last, list) or len(last) != 6 or not last[1]:
        return None
    return {
        "samples": series.get("samples"),
        "last_bin_mean": last[5] / last[1],
    }


def headline(report: dict) -> dict:
    """The values a trajectory plot most likely wants, flattened."""
    out = {}
    for key, value in _dict(report.get("extra")).items():
        out[f"extra.{key}"] = value
    counters = _dict(_dict(_dict(report.get("metrics")).get("sim")).get("counters"))
    for key, value in counters.items():
        out[f"sim.{key}"] = value
    for key, entry in _dict(report.get("timeseries")).items():
        for name, series in _dict(_dict(entry).get("series")).items():
            summary = _series_summary(series)
            if summary is not None:
                out[f"timeseries.{key}.{name}"] = summary
    if "wall_seconds" in report:
        out["wall_seconds"] = report["wall_seconds"]
    return out


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reports", nargs="+", help="bench_*.json report files")
    parser.add_argument("-o", "--output", default="bench_trajectory.json",
                        help="merged output path (default: %(default)s)")
    args = parser.parse_args(argv)

    merged = {"benches": {}, "errors": {}}
    for path in args.reports:
        # Perfetto trace dumps sit next to the reports with a .trace.json
        # suffix; globs like bench_*.json pick them up, so skip them here.
        if path.endswith(".trace.json") or path == args.output:
            continue
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            merged["errors"][path] = str(exc)
            continue
        if not isinstance(report, dict) or "bench" not in report:
            # Valid JSON but not a bench report — e.g. a partial write from
            # a killed bench, or a stray non-report *.json caught by a glob.
            merged["errors"][path] = "not a bench report (missing 'bench' key)"
            continue
        name = report.get("bench") or path
        merged["benches"][name] = {
            "source": path,
            "headline": headline(report),
            "report": report,
        }

    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")

    print(f"{args.output}: {len(merged['benches'])} benches merged, "
          f"{len(merged['errors'])} errors")
    for path, err in merged["errors"].items():
        print(f"  error: {path}: {err}", file=sys.stderr)
    return 1 if merged["errors"] else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
