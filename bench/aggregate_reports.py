#!/usr/bin/env python3
"""Merge per-bench JSON reports into one trajectory file.

Every bench binary writes a ``bench_<name>.json`` report (see
bench/common.h: seed, git revision, wall time, telemetry counters, and the
optional bench-specific ``extra`` section). CI uploads them one artifact
per job; this tool folds any number of them into a single
``bench_trajectory.json`` keyed by bench name, so successive commits can
be diffed with one file fetch instead of N.

Usage:
    aggregate_reports.py [-o OUT] [--validate-flows FLOWS.jsonl ...] \
        REPORT.json [REPORT.json ...]

The merged document carries, per bench: the source report file name, the
report's own metadata verbatim, and a flattened ``headline`` section (the
bench's "extra" values, the sim-counter totals, per-series summaries of
the observability ``timeseries`` section, and per-cell p99 slowdowns of
the FlowLedger ``fct`` section) for quick plotting.
Reports that fail to parse — or parse but are not report-shaped (a bench
killed mid-write leaves valid-JSON fragments) — are listed under
``errors`` instead of aborting the merge: one corrupt report must not
hide the others.

``--validate-flows`` additionally schema-checks a canonical flows.jsonl
export (bench/common.h writes one per BenchReport with ledger dumps):
every line must carry the full record key set and in-order event
timestamps. Validation failures are reported per file and fail the run.
"""

import argparse
import json
import sys


def _dict(value) -> dict:
    """`value` if it is a dict, else {} — partial reports hold anything."""
    return value if isinstance(value, dict) else {}


def _series_summary(series) -> dict | None:
    """Headline scalars for one timeseries entry (bench/common.h format):
    sample count plus the last bin's mean — "where did the gauge end up"."""
    series = _dict(series)
    bins = series.get("bins")
    if not isinstance(bins, list) or not bins:
        return None
    last = bins[-1]
    # A bin is [start_ns, count, min, max, last, sum].
    if not isinstance(last, list) or len(last) != 6 or not last[1]:
        return None
    return {
        "samples": series.get("samples"),
        "last_bin_mean": last[5] / last[1],
    }


def headline(report: dict) -> dict:
    """The values a trajectory plot most likely wants, flattened."""
    out = {}
    for key, value in _dict(report.get("extra")).items():
        out[f"extra.{key}"] = value
    counters = _dict(_dict(_dict(report.get("metrics")).get("sim")).get("counters"))
    for key, value in counters.items():
        out[f"sim.{key}"] = value
    for key, entry in _dict(report.get("timeseries")).items():
        for name, series in _dict(_dict(entry).get("series")).items():
            summary = _series_summary(series)
            if summary is not None:
                out[f"timeseries.{key}.{name}"] = summary
    fct = _dict(report.get("fct"))
    if fct:
        out["fct.completed"] = fct.get("completed")
        out["fct.incomplete"] = fct.get("incomplete")
        for cell in fct.get("cells", []):
            cell = _dict(cell)
            key = f"fct.{cell.get('role')}.{cell.get('locality')}.{cell.get('bucket')}"
            out[f"{key}.count"] = cell.get("count")
            out[f"{key}.p99_slowdown"] = _dict(cell.get("slowdown")).get("p99")
    if "wall_seconds" in report:
        out["wall_seconds"] = report["wall_seconds"]
    return out


# Key sets of the canonical flows.jsonl schema (telemetry/flow_ledger.cpp,
# append_record — one JSON object per closed transfer).
FLOW_RECORD_KEYS = frozenset({
    "source", "id", "tag", "dir", "role", "peer_role", "locality", "tuple",
    "born_ns", "syn_sends", "established_ns", "start_ns", "completed_ns",
    "bytes", "rtx_bytes", "rtt_ns", "bottleneck_bps", "ideal_ns",
    "drops_total", "rtx_total", "rto_count", "ecn_reductions",
    "drops", "rtx", "episodes",
})
FLOW_DROP_KEYS = frozenset(
    {"id", "t_ns", "seq", "len", "cause", "switch", "port", "fault_epoch", "claimed"})
FLOW_RTX_KEYS = frozenset({"t_ns", "seq", "len", "kind", "cause_id"})
FLOW_EPISODE_KEYS = frozenset({"kind", "start_ns", "end_ns", "detail"})


def _check_record(record: dict) -> str | None:
    """One flows.jsonl record's schema violation, or None if clean."""
    if set(record) != FLOW_RECORD_KEYS:
        missing = FLOW_RECORD_KEYS - set(record)
        extra = set(record) - FLOW_RECORD_KEYS
        return f"key set mismatch (missing={sorted(missing)}, extra={sorted(extra)})"
    for name, keys in (("drops", FLOW_DROP_KEYS), ("rtx", FLOW_RTX_KEYS),
                       ("episodes", FLOW_EPISODE_KEYS)):
        events = record[name]
        if not isinstance(events, list):
            return f"{name} is not a list"
        prev = None
        for i, event in enumerate(events):
            if not isinstance(event, dict) or set(event) != keys:
                return f"{name}[{i}] key set mismatch"
            t = event["t_ns"] if name != "episodes" else event["start_ns"]
            if prev is not None and t < prev:
                return f"{name}[{i}] timestamps not monotone ({t} < {prev})"
            prev = t
    if record["completed_ns"] >= 0 and record["completed_ns"] < record["start_ns"]:
        return "completed_ns precedes start_ns"
    if record["born_ns"] >= 0 and record["start_ns"] >= 0 \
            and record["start_ns"] < record["born_ns"]:
        return "start_ns precedes born_ns"
    return None


def validate_flows(path: str) -> list[str]:
    """Schema violations in one flows.jsonl file (empty = clean)."""
    problems = []
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as exc:
        return [str(exc)]
    if text and not text.endswith("\n"):
        problems.append("missing trailing newline")
    seen_ids = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {line_no}: {exc}")
            continue
        problem = _check_record(record) if isinstance(record, dict) \
            else "record is not a JSON object"
        if problem:
            problems.append(f"line {line_no}: {problem}")
            continue
        # Record ids are unique per source ledger. (The ring is in CLOSE
        # order while ids are assigned at transfer OPEN, so monotonicity
        # across lines is not an invariant — uniqueness is.)
        source = record["source"]
        if record["id"] in seen_ids.setdefault(source, set()):
            problems.append(f"line {line_no}: duplicate record id "
                            f"{record['id']} for source {source}")
        seen_ids[source].add(record["id"])
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reports", nargs="+", help="bench_*.json report files")
    parser.add_argument("-o", "--output", default="bench_trajectory.json",
                        help="merged output path (default: %(default)s)")
    parser.add_argument("--validate-flows", action="append", default=[],
                        metavar="FLOWS.jsonl",
                        help="schema-check a canonical flows.jsonl export "
                             "(repeatable); violations fail the run")
    args = parser.parse_args(argv)

    merged = {"benches": {}, "errors": {}}
    for path in args.reports:
        # Perfetto trace dumps sit next to the reports with a .trace.json
        # suffix; globs like bench_*.json pick them up, so skip them here.
        if path.endswith(".trace.json") or path == args.output:
            continue
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            merged["errors"][path] = str(exc)
            continue
        if not isinstance(report, dict) or "bench" not in report:
            # Valid JSON but not a bench report — e.g. a partial write from
            # a killed bench, or a stray non-report *.json caught by a glob.
            merged["errors"][path] = "not a bench report (missing 'bench' key)"
            continue
        name = report.get("bench") or path
        merged["benches"][name] = {
            "source": path,
            "headline": headline(report),
            "report": report,
        }

    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")

    print(f"{args.output}: {len(merged['benches'])} benches merged, "
          f"{len(merged['errors'])} errors")
    for path, err in merged["errors"].items():
        print(f"  error: {path}: {err}", file=sys.stderr)

    flows_failed = False
    for path in args.validate_flows:
        problems = validate_flows(path)
        if problems:
            flows_failed = True
            for problem in problems[:20]:
                print(f"  flows schema: {path}: {problem}", file=sys.stderr)
            if len(problems) > 20:
                print(f"  flows schema: {path}: ... and "
                      f"{len(problems) - 20} more", file=sys.stderr)
        else:
            lines = sum(1 for line in open(path, encoding="utf-8") if line.strip())
            print(f"{path}: {lines} flow records, schema OK")
    return 1 if merged["errors"] or flows_failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
