// Section 4.1: link utilization by level of the 4-post hierarchy, from the
// fleet flow generator routed over the Clos interconnect with per-minute
// SNMP-style byte counters.
//
// Paper targets: access links average <1% (1-minute), 99% of links <10%;
// RSW->CSW median 10-20% with the busiest 5% at 23-46%; utilization rises
// again at CSW->FC; Hadoop clusters ~5x more loaded than Frontend at the
// edge, with the gap narrowing (~3x) at the aggregation level.
#include <cstdio>

#include "common.h"
#include "fbdcsim/monitoring/link_stats.h"
#include "fbdcsim/runtime/sharded_fleet.h"
#include "fbdcsim/workload/fleet_flows.h"

using namespace fbdcsim;

namespace {

void print_level(const char* name, std::vector<double> utils) {
  if (utils.empty()) {
    std::printf("%-12s  (no links)\n", name);
    return;
  }
  double mean = 0.0;
  for (const double u : utils) mean += u;
  mean /= static_cast<double>(utils.size());
  core::Cdf cdf{std::move(utils)};
  std::printf("%-12s  mean %6.2f%%  p50 %6.2f%%  p95 %6.2f%%  p99 %6.2f%%  max %6.2f%%\n",
              name, mean * 100, cdf.median() * 100, cdf.quantile(0.95) * 100,
              cdf.p99() * 100, cdf.max() * 100);
}

}  // namespace

int main() {
  bench::BenchReport report{"sec41_utilization"};
  bench::banner("Section 4.1: link utilization across the hierarchy", "Section 4.1");

  // Production-depth racks (~32 hosts) so the RSW->CSW oversubscription is
  // realistic: 32 hosts' edge traffic funnels into four 10G uplinks, which
  // is what pushes aggregation-layer utilization to the paper's 10-20%
  // medians while edge links idle near 1%.
  topology::StandardFleetConfig fleet_cfg;
  fleet_cfg.sites = 2;
  fleet_cfg.datacenters_per_site = 2;
  fleet_cfg.frontend_clusters = 2;
  fleet_cfg.cache_clusters = 1;
  fleet_cfg.hadoop_clusters = 3;
  fleet_cfg.database_clusters = 2;
  fleet_cfg.service_clusters = 3;
  fleet_cfg.racks_per_cluster = 16;
  fleet_cfg.cache_racks_per_cluster = 8;
  fleet_cfg.hosts_per_rack = 32;
  fleet_cfg.frontend_web_racks = 12;
  fleet_cfg.frontend_cache_racks = 3;
  fleet_cfg.frontend_multifeed_racks = 1;
  const topology::Fleet fleet = topology::build_standard_fleet(fleet_cfg);
  const topology::FourPostConfig net_cfg;
  const topology::Network net = topology::FourPostBuilder{net_cfg}.build(fleet);
  const topology::Router router{fleet, net};
  std::printf("fleet: %zu hosts, %zu links\n", fleet.num_hosts(), net.links().size());

  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::hours(2);
  cfg.epoch = core::Duration::minutes(15);
  cfg.seed = 7;
  const workload::FleetFlowGenerator gen{fleet, cfg};

  monitoring::LinkStats stats{net, cfg.horizon};
  // Flow generation is the dominant cost; route-and-charge runs serially on
  // the caller thread over the canonically ordered parallel stream.
  runtime::ThreadPool pool;
  const runtime::ShardedFleetRunner runner{gen, pool};
  std::int64_t flows = 0;
  runner.stream([&](const core::FlowRecord& flow) {
    const auto path = router.route(flow.src_host, flow.dst_host, flow.tuple);
    stats.add_path(path, flow.start, flow.duration, flow.bytes);
    ++flows;
  });
  std::printf("flows routed: %lld\n\n", static_cast<long long>(flows));

  std::printf("per-minute link utilization by hierarchy level:\n");
  const auto level_of = [&](const topology::Link& link) -> int {
    using topology::NodeRef;
    using topology::SwitchKind;
    if (link.from.kind == NodeRef::Kind::kHost) return 0;  // access up
    const auto& sw = net.sw(core::SwitchId{link.from.index});
    if (sw.kind == SwitchKind::kRsw && link.to.kind != NodeRef::Kind::kHost) return 1;
    if (sw.kind == SwitchKind::kCsw) {
      const auto& to_sw = net.sw(core::SwitchId{link.to.index});
      if (to_sw.kind == SwitchKind::kFc) return 2;
    }
    return -1;
  };

  print_level("host->RSW", stats.utilizations_where(
                               [&](const topology::Link& l) { return level_of(l) == 0; }));
  print_level("RSW->CSW", stats.utilizations_where(
                              [&](const topology::Link& l) { return level_of(l) == 1; }));
  print_level("CSW->FC", stats.utilizations_where(
                             [&](const topology::Link& l) { return level_of(l) == 2; }));

  // Fraction of access links under 10% (paper: 99% of links <10% loaded).
  const auto access =
      stats.utilizations_where([&](const topology::Link& l) { return level_of(l) == 0; });
  std::int64_t under10 = 0;
  double total_util = 0.0;
  for (const double u : access) {
    if (u < 0.10) ++under10;
    total_util += u;
  }
  std::printf("\naccess links: mean %.2f%%; %.1f%% of (link,minute) samples under 10%%\n",
              total_util / static_cast<double>(access.size()) * 100.0,
              static_cast<double>(under10) / static_cast<double>(access.size()) * 100.0);

  // Heaviest vs lightest cluster types at the edge (paper: Hadoop ~5x FE).
  auto mean_edge_util = [&](topology::ClusterType type) {
    double sum = 0.0;
    std::int64_t n = 0;
    for (const topology::Host& h : fleet.hosts()) {
      if (fleet.cluster(h.cluster).type != type) continue;
      sum += stats.mean_utilization(net.access_uplink(h.id));
      ++n;
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  };
  const double hadoop_util = mean_edge_util(topology::ClusterType::kHadoop);
  const double fe_util = mean_edge_util(topology::ClusterType::kFrontend);
  std::printf("edge utilization: Hadoop %.3f%% vs Frontend %.3f%% (ratio %.1fx; paper ~5x)\n",
              hadoop_util * 100.0, fe_util * 100.0,
              fe_util > 0 ? hadoop_util / fe_util : 0.0);
  return 0;
}
