// Ablation: oversubscription sweep (§4.4's provisioning implication).
//
// "Efficient fabrics may benefit from variable degrees of oversubscription
// and less intra-rack bandwidth than typically deployed." This bench routes
// the fleet workload over 4-post builds with varying RSW->CSW uplink
// capacity and reports, per cluster type, the aggregation-layer p99
// utilization — showing which cluster types actually need the bandwidth a
// uniform fabric would give everyone.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "fbdcsim/monitoring/link_stats.h"
#include "fbdcsim/runtime/sharded_fleet.h"
#include "fbdcsim/workload/fleet_flows.h"

using namespace fbdcsim;

namespace {

topology::Fleet sweep_fleet() {
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 1;
  cfg.frontend_clusters = 2;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 2;
  cfg.database_clusters = 1;
  cfg.service_clusters = 2;
  cfg.racks_per_cluster = 16;
  cfg.cache_racks_per_cluster = 8;
  cfg.hosts_per_rack = 32;  // deep racks: oversubscription is visible
  cfg.frontend_web_racks = 12;
  cfg.frontend_cache_racks = 3;
  cfg.frontend_multifeed_racks = 1;
  return topology::build_standard_fleet(cfg);
}

}  // namespace

int main() {
  bench::BenchReport report{"ablation_oversubscription"};
  bench::banner("Ablation: RSW->CSW oversubscription sweep", "Section 4.4");
  const topology::Fleet fleet = sweep_fleet();
  std::printf("fleet: %zu hosts, 32 hosts/rack, 4 uplinks/rack\n", fleet.num_hosts());
  std::printf("(oversubscription = sum of host NICs / sum of RSW uplink capacity)\n\n");

  std::printf("%-22s  %10s", "uplink speed (x4)", "oversub");
  const topology::ClusterType kTypes[] = {
      topology::ClusterType::kHadoop, topology::ClusterType::kFrontend,
      topology::ClusterType::kCache, topology::ClusterType::kService};
  for (const auto t : kTypes) std::printf("  %9s", topology::to_string(t));
  std::printf("   (p99 RSW->CSW util)\n");

  // The workload is identical at every sweep point: generate the flow list
  // once (in parallel), then route it over each candidate fabric
  // concurrently — one Network/Router/LinkStats per task.
  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::hours(1);
  cfg.epoch = core::Duration::minutes(15);
  cfg.seed = 77;
  const workload::FleetFlowGenerator gen{fleet, cfg};
  runtime::ThreadPool pool;
  const runtime::ShardedFleetRunner runner{gen, pool};
  const std::vector<core::FlowRecord> flows = runner.collect_flows();

  struct SweepRow {
    std::int64_t gbps{0};
    double p99[4]{};
  };
  const std::vector<std::int64_t> speeds{5, 10, 20, 40};
  const auto rows = pool.parallel_map(speeds, [&](const std::int64_t& gbps) {
    topology::FourPostConfig net_cfg;
    net_cfg.rsw_to_csw = core::DataRate::gigabits_per_sec(gbps);
    const topology::Network net = topology::FourPostBuilder{net_cfg}.build(fleet);
    const topology::Router router{fleet, net};
    monitoring::LinkStats stats{net, cfg.horizon};
    for (const auto& flow : flows) {
      stats.add_path(router.route(flow.src_host, flow.dst_host, flow.tuple), flow.start,
                     flow.duration, flow.bytes);
    }
    SweepRow row;
    row.gbps = gbps;
    for (std::size_t t = 0; t < 4; ++t) {
      auto utils = stats.utilizations_where([&](const topology::Link& link) {
        if (link.from.kind != topology::NodeRef::Kind::kSwitch) return false;
        const auto& sw = net.sw(core::SwitchId{link.from.index});
        if (sw.kind != topology::SwitchKind::kRsw) return false;
        if (link.to.kind != topology::NodeRef::Kind::kSwitch) return false;
        return fleet.cluster(sw.cluster).type == kTypes[t];
      });
      core::Cdf cdf{std::move(utils)};
      row.p99[t] = cdf.p99();
    }
    return row;
  });

  for (const SweepRow& row : rows) {
    const double oversub = 32.0 * 10.0 / (4.0 * static_cast<double>(row.gbps));
    std::printf("%-22s  %9.1f:1", (std::to_string(row.gbps) + " Gbps").c_str(), oversub);
    for (std::size_t t = 0; t < 4; ++t) std::printf("  %8.1f%%", row.p99[t] * 100.0);
    std::printf("\n");
  }

  std::printf(
      "\nReading: at any given oversubscription the cluster types' aggregation\n"
      "needs span an order of magnitude (Cache/Frontend racks hot, Service\n"
      "racks nearly idle). A uniform fabric either overbuilds the idle types\n"
      "or congests the hot ones — the paper's argument for variable\n"
      "oversubscription and non-uniform fabrics (§4.4).\n");
  return 0;
}
