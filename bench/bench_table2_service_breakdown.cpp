// Table 2: breakdown of outbound traffic percentages for four host types
// (Web, cache leader, cache follower, Hadoop), classified by the role of
// the destination host — extracted from port-mirror packet traces exactly
// as the paper does (Section 3.2).
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/locality.h"

using namespace fbdcsim;

int main() {
  bench::BenchReport report{"table2_service_breakdown"};
  bench::banner("Table 2: outbound traffic percentage by destination service",
                "Table 2, Section 3.2");
  bench::BenchEnv env;

  struct Row {
    const char* name;
    core::HostRole role;
  };
  const Row rows[] = {
      {"Web", core::HostRole::kWeb},
      {"Cache-l", core::HostRole::kCacheLeader},
      {"Cache-f", core::HostRole::kCacheFollower},
      {"Hadoop", core::HostRole::kHadoop},
  };

  std::printf("\n%-8s", "Type");
  const core::HostRole columns[] = {
      core::HostRole::kWeb,    core::HostRole::kCacheFollower, core::HostRole::kCacheLeader,
      core::HostRole::kMultifeed, core::HostRole::kSlb,        core::HostRole::kHadoop,
      core::HostRole::kDatabase,  core::HostRole::kService};
  for (const auto col : columns) std::printf("  %9s", core::to_string(col));
  std::printf("\n");

  for (const Row& row : rows) {
    const bench::RoleTrace trace = env.capture(row.role, 10);
    const auto shares =
        analysis::outbound_role_shares(trace.result.trace, trace.self, env.resolver());
    std::printf("%-8s", row.name);
    for (const auto col : columns) {
      double pct = 0.0;
      for (const auto& s : shares) {
        if (s.role == col) pct = s.percent;
      }
      if (pct < 0.05) {
        std::printf("  %9s", "-");
      } else {
        std::printf("  %9.1f", pct);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper Table 2 for comparison:\n"
      "Web      -> Cache 63.1, MF 15.2, SLB 5.6, Rest 16.1\n"
      "Cache-l  -> Cache 86.6, MF 5.9, Rest 7.5\n"
      "Cache-f  -> Web 88.7, Cache 5.8, Rest 5.5\n"
      "Hadoop   -> Hadoop 99.8, Rest 0.2\n");
  return 0;
}
