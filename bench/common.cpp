#include "common.h"

#include <cstdlib>
#include <utility>

#include "fbdcsim/runtime/parallel_capture.h"

namespace fbdcsim::bench {

std::int64_t BenchEnv::effective_seconds(std::int64_t nominal) {
  if (const char* env = std::getenv("FBDCSIM_BENCH_SECONDS")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0') {
      std::fprintf(stderr,
                   "FBDCSIM_BENCH_SECONDS='%s' is not an integer; using the nominal "
                   "%lld s\n",
                   env, static_cast<long long>(nominal));
      return nominal;
    }
    if (v <= 0) {
      std::fprintf(stderr,
                   "FBDCSIM_BENCH_SECONDS=%lld must be positive; using the nominal "
                   "%lld s\n",
                   v, static_cast<long long>(nominal));
      return nominal;
    }
    return v;
  }
  return nominal;
}

RoleTrace BenchEnv::capture(core::HostRole role, std::int64_t seconds, const Tweak& tweak) {
  workload::RackSimConfig cfg = workload::default_rack_config(
      fleet_, role, core::Duration::seconds(effective_seconds(seconds)));
  if (tweak) tweak(cfg);
  workload::RackSimulation sim{fleet_, cfg};
  RoleTrace trace;
  trace.role = role;
  trace.host = cfg.monitored_host;
  trace.self = fleet_.host(cfg.monitored_host).addr;
  trace.result = sim.run();
  return trace;
}

runtime::ThreadPool& BenchEnv::pool() {
  if (!pool_) pool_ = std::make_unique<runtime::ThreadPool>();
  return *pool_;
}

std::vector<RoleTrace> BenchEnv::capture_all(std::vector<CaptureSpec> specs) {
  std::vector<std::function<RoleTrace()>> tasks;
  tasks.reserve(specs.size());
  for (CaptureSpec& spec : specs) {
    tasks.push_back([this, spec = std::move(spec)] {
      return capture(spec.role, spec.seconds, spec.tweak);
    });
  }
  const runtime::ParallelCaptureRunner runner{pool()};
  return runner.run(tasks);
}

namespace {
constexpr double kQuantiles[] = {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0};
}  // namespace

void print_cdf(const char* label, const core::Cdf& cdf, double scale, const char* unit) {
  std::printf("%s (%zu samples)\n", label, cdf.size());
  std::printf("  %8s  %12s\n", "quantile", "value");
  for (const double q : kQuantiles) {
    std::printf("  %8.2f  %12.4g%s\n", q, cdf.quantile(q) * scale, unit);
  }
}

void print_cdf_table(const char* title, const std::vector<std::string>& names,
                     const std::vector<const core::Cdf*>& cdfs, double scale,
                     const char* unit) {
  std::printf("%s%s%s\n", title, unit[0] != '\0' ? " — values in " : "", unit);
  std::printf("  %8s", "quantile");
  for (const auto& name : names) std::printf("  %14s", name.c_str());
  std::printf("\n");
  for (const double q : kQuantiles) {
    std::printf("  %8.2f", q);
    for (const core::Cdf* cdf : cdfs) {
      if (cdf == nullptr || cdf->empty()) {
        std::printf("  %14s", "-");
      } else {
        std::printf("  %14.4g", cdf->quantile(q) * scale);
      }
    }
    std::printf("\n");
  }
}

void banner(const char* experiment, const char* paper_ref) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s — 'Inside the Social Network's (Datacenter) Network'\n",
              paper_ref);
  std::printf("threads: %d (override with FBDCSIM_THREADS)\n", runtime::env_thread_count());
  std::printf("==================================================================\n");
}

}  // namespace fbdcsim::bench
