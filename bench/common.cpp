#include "common.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "fbdcsim/runtime/parallel_capture.h"

#ifndef FBDCSIM_GIT_REV
#define FBDCSIM_GIT_REV "unknown"
#endif

namespace fbdcsim::bench {

const char* git_revision() { return FBDCSIM_GIT_REV; }

std::optional<std::int64_t> bench_seconds_env() {
  const char* env = std::getenv("FBDCSIM_BENCH_SECONDS");
  if (env == nullptr) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "FBDCSIM_BENCH_SECONDS='%s' is not an integer; ignoring it\n",
                 env);
    return std::nullopt;
  }
  if (v <= 0) {
    std::fprintf(stderr, "FBDCSIM_BENCH_SECONDS=%lld must be positive; ignoring it\n", v);
    return std::nullopt;
  }
  return v;
}

std::int64_t BenchEnv::effective_seconds(std::int64_t nominal) {
  return bench_seconds_env().value_or(nominal);
}

RoleTrace BenchEnv::capture(core::HostRole role, std::int64_t seconds, const Tweak& tweak) {
  FBDCSIM_T_SPAN2(capture_span, "bench.capture", core::to_string(role));
  workload::RackSimConfig cfg = workload::default_rack_config(
      fleet_, role, core::Duration::seconds(effective_seconds(seconds)));
  // FBDCSIM_OBS opt-in: applied before the tweak so benches can refine it.
  // Unset (or off) leaves cfg untouched — captures stay byte-identical.
  if (const telemetry::ObsConfig& env_obs = obs(); env_obs.enabled()) cfg.obs = env_obs;
  // FBDCSIM_CC / FBDCSIM_RECOVERY: inert under the scripted default; they
  // take effect when the bench's tweak opts into Transport::kTcp (tweaks
  // may still override).
  cfg.tcp.cc = cc();
  cfg.tcp.recovery = recovery();
  if (tweak) tweak(cfg);
  workload::RackSimulation sim{fleet_, cfg};
  RoleTrace trace;
  trace.role = role;
  trace.host = cfg.monitored_host;
  trace.self = fleet_.host(cfg.monitored_host).addr;
  trace.result = sim.run();
  return trace;
}

runtime::ThreadPool& BenchEnv::pool() {
  if (!pool_) pool_ = std::make_unique<runtime::ThreadPool>();
  return *pool_;
}

const faults::FaultPlan* BenchEnv::fault_plan() {
  if (!fault_plan_resolved_) {
    fault_plan_resolved_ = true;
    const faults::FaultConfig cfg = faults::fault_config_from_env();
    if (cfg.profile != faults::Profile::kOff) {
      fault_plan_ = std::make_unique<faults::FaultPlan>(cfg);
    }
  }
  return fault_plan_.get();
}

const telemetry::ObsConfig& BenchEnv::obs() {
  if (!obs_resolved_) {
    obs_resolved_ = true;
    obs_ = telemetry::obs_config_from_env();
  }
  return obs_;
}

transport::CongestionControl BenchEnv::cc() {
  if (!cc_resolved_) {
    cc_resolved_ = true;
    cc_ = transport::cc_from_env();
  }
  return cc_;
}

transport::LossRecovery BenchEnv::recovery() {
  if (!recovery_resolved_) {
    recovery_resolved_ = true;
    recovery_ = transport::recovery_from_env();
  }
  return recovery_;
}

std::vector<RoleTrace> BenchEnv::capture_all(std::vector<CaptureSpec> specs) {
  std::vector<std::function<RoleTrace()>> tasks;
  tasks.reserve(specs.size());
  for (CaptureSpec& spec : specs) {
    tasks.push_back([this, spec = std::move(spec)] {
      return capture(spec.role, spec.seconds, spec.tweak);
    });
  }
  const runtime::ParallelCaptureRunner runner{pool()};
  return runner.run(tasks);
}

namespace {
constexpr double kQuantiles[] = {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0};
}  // namespace

void print_cdf(const char* label, const core::Cdf& cdf, double scale, const char* unit) {
  std::printf("%s (%zu samples)\n", label, cdf.size());
  std::printf("  %8s  %12s\n", "quantile", "value");
  for (const double q : kQuantiles) {
    std::printf("  %8.2f  %12.4g%s\n", q, cdf.quantile(q) * scale, unit);
  }
}

void print_cdf_table(const char* title, const std::vector<std::string>& names,
                     const std::vector<const core::Cdf*>& cdfs, double scale,
                     const char* unit) {
  std::printf("%s%s%s\n", title, unit[0] != '\0' ? " — values in " : "", unit);
  std::printf("  %8s", "quantile");
  for (const auto& name : names) std::printf("  %14s", name.c_str());
  std::printf("\n");
  for (const double q : kQuantiles) {
    std::printf("  %8.2f", q);
    for (const core::Cdf* cdf : cdfs) {
      if (cdf == nullptr || cdf->empty()) {
        std::printf("  %14s", "-");
      } else {
        std::printf("  %14.4g", cdf->quantile(q) * scale);
      }
    }
    std::printf("\n");
  }
}

void banner(const char* experiment, const char* paper_ref, std::uint64_t seed) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s — 'Inside the Social Network's (Datacenter) Network'\n",
              paper_ref);
  std::printf("threads: %d (override with FBDCSIM_THREADS)\n", runtime::env_thread_count());
  std::printf("seed: %llu | rev: %s\n", static_cast<unsigned long long>(seed),
              git_revision());
  // Only announce faults when a profile is active, so fault-free bench
  // output stays byte-identical to pre-fault-layer runs.
  const faults::FaultConfig fc = faults::fault_config_from_env();
  if (fc.profile != faults::Profile::kOff) {
    std::printf("faults: %s (FBDCSIM_FAULTS)\n", faults::to_string(fc.profile));
  }
  std::printf("==================================================================\n");
}

std::string resolve_out_path(const std::string& filename) {
  const char* env = std::getenv("FBDCSIM_BENCH_OUT");
  if (env == nullptr) return filename;
  if (env[0] == '\0') {
    std::fprintf(stderr, "FBDCSIM_BENCH_OUT is empty; writing %s to the working "
                         "directory\n",
                 filename.c_str());
    return filename;
  }
  std::string base{env};
  struct stat st{};
  const bool is_dir =
      base.back() == '/' || (::stat(base.c_str(), &st) == 0 && S_ISDIR(st.st_mode));
  if (is_dir) {
    if (base.back() != '/') base += '/';
    return base + filename;
  }
  return base;  // an explicit file path (single-bench runs)
}

namespace {

/// "foo.json" -> "foo<insert>.json"; other extensions just get the suffix.
std::string sibling_path_for(const std::string& report_path, const std::string& insert) {
  const std::string suffix = ".json";
  if (report_path.size() > suffix.size() &&
      report_path.compare(report_path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return report_path.substr(0, report_path.size() - suffix.size()) + insert;
  }
  return report_path + insert;
}

}  // namespace

BenchReport::BenchReport(std::string name, std::uint64_t seed)
    : name_{std::move(name)}, seed_{seed}, start_{std::chrono::steady_clock::now()} {}

void BenchReport::set_extra(const std::string& key, std::string json_value) {
  for (auto& [k, v] : extras_) {
    if (k == key) {
      v = std::move(json_value);
      return;
    }
  }
  extras_.emplace_back(key, std::move(json_value));
}

void BenchReport::add_extra(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  set_extra(key, buf);
}

void BenchReport::add_extra(const std::string& key, std::int64_t value) {
  set_extra(key, std::to_string(value));
}

void BenchReport::add_extra(const std::string& key, const std::string& value) {
  set_extra(key, "\"" + telemetry::json_escape(value) + "\"");
}

std::string BenchReport::report_path() const {
  return resolve_out_path("bench_" + name_ + ".json");
}

std::string BenchReport::trace_path() const {
  return sibling_path_for(report_path(), ".trace.json");
}

std::string BenchReport::tracepoints_path() const {
  return sibling_path_for(report_path(), ".tracepoints.jsonl");
}

std::string BenchReport::flows_path() const {
  return sibling_path_for(report_path(), ".flows.jsonl");
}

void BenchReport::add_timeseries(const std::string& key,
                                 const std::vector<telemetry::SeriesSnapshot>& series) {
  const std::string json = telemetry::timeseries_to_json(series);
  for (auto& [k, v] : timeseries_) {
    if (k == key) {
      v = json;
      return;
    }
  }
  timeseries_.emplace_back(key, json);
}

void BenchReport::add_tracepoints(telemetry::TracePointDump dump) {
  tracepoint_dumps_.push_back(std::move(dump));
}

void BenchReport::add_flows(telemetry::FlowLedgerDump dump) {
  if (dump.records.empty() && dump.total == 0) return;  // ledger never engaged
  flow_dumps_.push_back(std::move(dump));
}

void BenchReport::add_fct(std::string fct_json) { fct_json_ = std::move(fct_json); }

std::string BenchReport::to_json() const {
  const telemetry::Snapshot snap = telemetry::MetricsRegistry::global().snapshot();
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                    start_)
                          .count();
  std::string out = "{";
  out += "\"bench\":\"" + telemetry::json_escape(name_) + "\"";
  out += ",\"schema\":1";
  out += ",\"git\":\"" + telemetry::json_escape(git_revision()) + "\"";
  out += ",\"seed\":" + std::to_string(seed_);
  out += ",\"threads\":" + std::to_string(runtime::env_thread_count());
  if (const auto secs = bench_seconds_env()) {
    out += ",\"bench_seconds\":" + std::to_string(*secs);
  } else {
    out += ",\"bench_seconds\":null";
  }
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", wall);
    out += ",\"wall_seconds\":";
    out += buf;
  }
  out += ",\"status\":" + std::to_string(status_);
  out += std::string{",\"telemetry_enabled\":"} +
         (telemetry::Telemetry::enabled() ? "true" : "false");
  // The active fault profile, only when one is on — fault-free reports stay
  // byte-identical to pre-fault-layer ones (absent field means "off").
  {
    const faults::FaultConfig fc = faults::fault_config_from_env();
    if (fc.profile != faults::Profile::kOff) {
      out += ",\"faults\":\"" + telemetry::json_escape(faults::to_string(fc.profile)) + "\"";
    }
  }
  // Derived rates for the headline metrics (null until their inputs exist).
  out += ",\"derived\":{";
  const auto* events = snap.counter("sim.events");
  const auto* sim_wall = snap.counter("sim.run_wall_us");
  if (events != nullptr && sim_wall != nullptr && sim_wall->value > 0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f",
                  static_cast<double>(events->value) /
                      (static_cast<double>(sim_wall->value) / 1e6));
    out += "\"sim_events_per_sec\":";
    out += buf;
  } else {
    out += "\"sim_events_per_sec\":null";
  }
  out += "}";
  // Bench-specific scalars (speedups, per-engine rates, ...). Only present
  // when the bench recorded some, so older reports stay byte-identical.
  if (!extras_.empty()) {
    out += ",\"extra\":{";
    bool first = true;
    for (const auto& [key, value] : extras_) {
      if (!first) out += ",";
      first = false;
      out += "\"" + telemetry::json_escape(key) + "\":" + value;
    }
    out += "}";
  }
  // Probe snapshots (observability runs only) — absent otherwise so
  // pre-observability reports stay byte-identical.
  if (!timeseries_.empty()) {
    out += ",\"timeseries\":{";
    bool first = true;
    for (const auto& [key, value] : timeseries_) {
      if (!first) out += ",";
      first = false;
      out += "\"" + telemetry::json_escape(key) + "\":" + value;
    }
    out += "}";
  }
  // FCT tail analytics (FBDCSIM_OBS=flows runs that computed one) — absent
  // otherwise so pre-ledger reports stay byte-identical.
  if (!fct_json_.empty()) {
    out += ",\"fct\":" + fct_json_;
  }
  out += ",\"metrics\":" + telemetry::to_json(snap);
  out += "}";
  return out;
}

BenchReport::~BenchReport() {
  const std::string path = report_path();
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const std::string json = to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "bench report: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "bench report: cannot write %s\n", path.c_str());
  }

  const auto events = telemetry::Tracer::global().events();
  if (!events.empty() || !tracepoint_dumps_.empty()) {
    const std::string tpath = trace_path();
    if (std::FILE* f = std::fopen(tpath.c_str(), "w")) {
      // Spans-only reports keep the single-argument exporter so their bytes
      // are unchanged; dumps add sim-clock instants on their own pid.
      const std::string json = tracepoint_dumps_.empty()
                                   ? telemetry::to_chrome_trace(events)
                                   : telemetry::to_chrome_trace(events, tracepoint_dumps_);
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::fprintf(stderr, "bench trace:  %s (load in chrome://tracing or "
                           "https://ui.perfetto.dev)\n",
                   tpath.c_str());
    }
  }

  if (!tracepoint_dumps_.empty()) {
    const std::string jpath = tracepoints_path();
    if (std::FILE* f = std::fopen(jpath.c_str(), "w")) {
      const std::string jsonl = telemetry::tracepoints_to_jsonl(tracepoint_dumps_);
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "bench tracepoints: %s\n", jpath.c_str());
    }
  }

  if (!flow_dumps_.empty()) {
    const std::string fpath = flows_path();
    if (std::FILE* f = std::fopen(fpath.c_str(), "w")) {
      const std::string jsonl = telemetry::flows_to_jsonl(flow_dumps_);
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "bench flows: %s\n", fpath.c_str());
    }
  }
}

}  // namespace fbdcsim::bench
