// Transport ablation: scripted packet emission vs the flow-level TCP
// engine (RackSimConfig::transport), over the same seeded workloads.
//
// The scripted path *draws* packet sizes and SYN interarrivals from the
// paper's distributions; the TCP path must *produce* them — MSS
// segmentation, pure ACKs, real handshakes, ACK clocking. This bench
// quantifies how close the emergent capture stays to the scripted one:
//
//   - Figure 12 packet-size mode split (ACK-mode / MSS-mode fractions)
//     side by side per role
//   - Figure 14 SYN-interarrival quantiles plus a sup-gap distance over
//     the quantile grid (a Kolmogorov-Smirnov-style comparison on the
//     inverse CDFs)
//   - retransmission accounting under the heavy fault profile: the TCP
//     path's retransmit rate must move when path loss fires, something
//     the scripted path cannot express at all
//   - a Reno-vs-DCTCP tail contrast per role under a tight shared buffer
//     plus the heavy fault profile (DESIGN.md §12): DCTCP's CE marks at
//     the auto-derived threshold must pull the occupancy tail and the
//     retransmit rate below NewReno's drop-driven reaction
//   - cwnd evolution per role via the observability layer's probe: the
//     aggregate congestion window's trajectory over the capture, plus the
//     heavy run's flight-recorder tracepoints (RTO fires, fast-retransmit
//     transitions) dumped to bench_<name>.tracepoints.jsonl
//
// Headline numbers land in the JSON report's "extra" section so the CI
// bench-smoke trajectory tracks them across commits; series land in its
// "timeseries" section.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "fbdcsim/analysis/packet_stats.h"
#include "fbdcsim/core/stats.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/transport/mux.h"
#include "fbdcsim/workload/presets.h"
#include "fbdcsim/workload/rack_sim.h"

using namespace fbdcsim;

namespace {

struct RoleRow {
  const char* name{};
  core::HostRole role{};
};

constexpr std::array<RoleRow, 4> kRoles{{
    {"Web", core::HostRole::kWeb},
    {"Cache-f", core::HostRole::kCacheFollower},
    {"Cache-l", core::HostRole::kCacheLeader},
    {"Hadoop", core::HostRole::kHadoop},
}};

/// The congestion-control law FBDCSIM_CC selected for this bench run
/// (resolved once in main); every kTcp capture below runs under it, so
/// `FBDCSIM_CC=dctcp bench_ablation_transport` re-runs the whole ablation
/// with the DCTCP variant in place of NewReno.
transport::CongestionControl g_cc = transport::CongestionControl::kNewReno;

/// Likewise for FBDCSIM_RECOVERY: every kTcp capture honors it, so
/// `FBDCSIM_RECOVERY=sack bench_ablation_transport` re-runs the ablation
/// with the SACK scoreboard in place of NewReno recovery.
transport::LossRecovery g_recovery = transport::LossRecovery::kNewReno;

workload::RackSimResult run_capture(const topology::Fleet& fleet, core::HostRole role,
                                    std::int64_t seconds, workload::Transport transport,
                                    const faults::FaultPlan* plan,
                                    transport::TransportMux::Stats* stats_out = nullptr,
                                    bool observe = false) {
  workload::RackSimConfig cfg =
      workload::default_rack_config(fleet, role, core::Duration::seconds(seconds));
  cfg.transport = transport;
  cfg.tcp.cc = g_cc;
  cfg.tcp.recovery = g_recovery;
  cfg.faults = plan;
  if (observe) {
    // The cwnd-evolution sections below ride on the observability layer.
    // FBDCSIM_OBS may refine the knobs; the bench needs at least `on`, and
    // caps the series length so four roles' traces stay report-sized.
    cfg.obs = telemetry::obs_config_from_env();
    if (!cfg.obs.enabled()) cfg.obs.mode = telemetry::ObsConfig::Mode::kOn;
    cfg.obs.series_capacity = 64;
  }
  workload::RackSimulation rack{fleet, cfg};
  workload::RackSimResult result = rack.run();
  if (stats_out != nullptr && rack.transport_mux() != nullptr) {
    *stats_out = rack.transport_mux()->stats();
  }
  return result;
}

/// The transport.* subset of a run's probe snapshot (the switch/rack series
/// are fig15 material; per-role cwnd evolution is what this bench reports).
std::vector<telemetry::SeriesSnapshot> transport_series(
    const std::vector<telemetry::SeriesSnapshot>& all) {
  std::vector<telemetry::SeriesSnapshot> out;
  for (const telemetry::SeriesSnapshot& s : all) {
    if (s.name.rfind("transport.", 0) == 0) out.push_back(s);
  }
  return out;
}

/// Mean value of a series' first / last bin ("where did cwnd start and end").
double bin_mean(const telemetry::SeriesBin& b) {
  return b.count > 0 ? static_cast<double>(b.sum) / static_cast<double>(b.count) : 0.0;
}

/// Sup-gap between two empirical inverse CDFs over a percentile grid, in
/// the samples' own unit — 0 when the distributions coincide.
double quantile_sup_gap(const core::Cdf& a, const core::Cdf& b) {
  if (a.size() == 0 || b.size() == 0) return std::nan("");
  double sup = 0.0;
  for (int i = 5; i <= 95; i += 5) {
    const double q = static_cast<double>(i) / 100.0;
    sup = std::max(sup, std::abs(a.quantile(q) - b.quantile(q)));
  }
  return sup;
}

}  // namespace

int main() {
  bench::BenchReport report{"ablation_transport"};
  bench::banner("Ablation: scripted packet emission vs flow-level TCP",
                "Figures 12, 14; Section 3 (transport substitution)");
  bench::BenchEnv env;
  const topology::Fleet& fleet = env.fleet();
  const std::int64_t seconds = bench::BenchEnv::effective_seconds(1);
  g_cc = env.cc();
  g_recovery = env.recovery();
  std::printf("congestion control (FBDCSIM_CC): %s\n", transport::to_string(g_cc));
  std::printf("loss recovery (FBDCSIM_RECOVERY): %s\n\n", transport::to_string(g_recovery));
  report.add_extra("cc", std::string{transport::to_string(g_cc)});
  report.add_extra("recovery", std::string{transport::to_string(g_recovery)});

  // --- Figure 12: packet-size mode split, scripted vs emergent ------------
  std::printf("Packet-size mode split (fraction of frames; small = ACK/control mode,\n");
  std::printf("full = MSS mode; remainder is mid-sized singles):\n");
  std::printf("%-8s | %23s | %23s\n", "", "scripted", "tcp (emergent)");
  std::printf("%-8s | %7s %7s %7s | %7s %7s %7s\n", "role", "small", "full", "mid",
              "small", "full", "mid");
  std::vector<std::pair<const char*, std::vector<telemetry::SeriesSnapshot>>> role_series;
  for (const RoleRow& r : kRoles) {
    const workload::RackSimResult scripted =
        run_capture(fleet, r.role, seconds, workload::Transport::kScripted, nullptr);
    const workload::RackSimResult tcp = run_capture(
        fleet, r.role, seconds, workload::Transport::kTcp, nullptr, nullptr,
        /*observe=*/true);
    const analysis::PacketSizeModes ms = analysis::packet_size_mode_split(scripted.trace);
    const analysis::PacketSizeModes mt = analysis::packet_size_mode_split(tcp.trace);
    std::printf("%-8s | %7.3f %7.3f %7.3f | %7.3f %7.3f %7.3f\n", r.name,
                ms.small_fraction, ms.full_fraction,
                1.0 - ms.small_fraction - ms.full_fraction, mt.small_fraction,
                mt.full_fraction, 1.0 - mt.small_fraction - mt.full_fraction);
    report.add_extra(std::string{"tcp_small_frac_"} + r.name, mt.small_fraction);
    report.add_extra(std::string{"tcp_full_frac_"} + r.name, mt.full_fraction);
    role_series.emplace_back(r.name, transport_series(tcp.timeseries));
  }

  // --- cwnd evolution per role (observability probe) ----------------------
  // The aggregate congestion window across the monitored host's live
  // connections, sampled on the probe cadence during the Figure 12 TCP
  // captures above. Pooled roles should settle into a steady regime; the
  // Web role's ephemeral connections keep the aggregate swinging with
  // connection churn. The full transport.* series land in the report's
  // "timeseries" section under cwnd_<role>.
  std::printf("\nAggregate cwnd evolution at the monitored host (bytes, probe means):\n");
  std::printf("%-8s %12s %12s %12s %9s\n", "role", "first", "last", "max", "samples");
  for (const auto& [name, series] : role_series) {
    report.add_timeseries(std::string{"cwnd_"} + name, series);
    const telemetry::SeriesSnapshot* cwnd =
        telemetry::find_series(series, "transport.cwnd_bytes");
    if (cwnd == nullptr || cwnd->bins.empty()) {
      std::printf("%-8s %12s %12s %12s %9s\n", name, "-", "-", "-", "0");
      continue;
    }
    std::int64_t max_cwnd = 0;
    for (const telemetry::SeriesBin& b : cwnd->bins) max_cwnd = std::max(max_cwnd, b.max);
    std::printf("%-8s %12.0f %12.0f %12lld %9lld\n", name, bin_mean(cwnd->bins.front()),
                bin_mean(cwnd->bins.back()), static_cast<long long>(max_cwnd),
                static_cast<long long>(cwnd->samples));
    report.add_extra(std::string{"cwnd_last_mean_"} + name, bin_mean(cwnd->bins.back()));
  }

  // --- Figure 14: SYN interarrivals, scripted vs emergent -----------------
  // The Web role carries the paper's SYN workload (ephemeral front-end
  // connections); pooled cache/Hadoop flows open rarely by design.
  std::printf("\nSYN interarrivals at the monitored Web host (ms):\n");
  std::printf("%-10s %9s %9s %9s %9s %7s\n", "path", "p10", "p50", "p90", "p99", "syns");
  {
    const core::Ipv4Addr self =
        fleet.host(workload::monitored_host(fleet, core::HostRole::kWeb)).addr;
    const workload::RackSimResult scripted =
        run_capture(fleet, core::HostRole::kWeb, seconds, workload::Transport::kScripted,
                    nullptr);
    const workload::RackSimResult tcp = run_capture(
        fleet, core::HostRole::kWeb, seconds, workload::Transport::kTcp, nullptr);
    const core::Cdf cs = analysis::syn_interarrival_cdf(scripted.trace, self);
    const core::Cdf ct = analysis::syn_interarrival_cdf(tcp.trace, self);
    for (const auto& [name, cdf] : {std::pair{"scripted", &cs}, {"tcp", &ct}}) {
      std::printf("%-10s %9.3f %9.3f %9.3f %9.3f %7zu\n", name, cdf->quantile(0.10) / 1e3,
                  cdf->quantile(0.50) / 1e3, cdf->quantile(0.90) / 1e3,
                  cdf->quantile(0.99) / 1e3, cdf->size());
    }
    const double gap_us = quantile_sup_gap(cs, ct);
    std::printf("sup quantile gap (5..95%%): %.3f ms\n", gap_us / 1e3);
    report.add_extra("syn_cdf_sup_gap_us", gap_us);
  }

  // --- Retransmissions under faults ---------------------------------------
  // Only the TCP path can express this: scripted captures have no
  // retransmit concept, so the heavy profile's path loss silently thins
  // them. The TCP engine must instead recover every loss and account it.
  std::printf("\nTCP retransmission accounting (Hadoop, heavy profile vs off):\n");
  std::printf("%-7s %10s %10s %10s %9s %9s %9s\n", "faults", "segments", "rtx", "fast_rtx",
              "rto", "path_loss", "sw_drops");
  const faults::FaultPlan heavy{faults::heavy_profile()};
  for (const auto& [name, plan] :
       {std::pair<const char*, const faults::FaultPlan*>{"off", nullptr},
        {"heavy", &heavy}}) {
    transport::TransportMux::Stats s;
    const workload::RackSimResult faulted = run_capture(
        fleet, core::HostRole::kHadoop, seconds, workload::Transport::kTcp, plan, &s,
        /*observe=*/true);
    if (plan != nullptr && !faulted.tracepoints.records.empty()) {
      // Flight-recorder evidence for the loss events the columns count:
      // drops, RTO fires, and fast-retransmit transitions in sim order,
      // merged into bench_<name>.tracepoints.jsonl by the report.
      report.add_tracepoints(faulted.tracepoints);
    }
    std::printf("%-7s %10lld %10lld %10lld %9lld %9lld %9lld\n", name,
                static_cast<long long>(s.segments_sent),
                static_cast<long long>(s.retransmit_segments),
                static_cast<long long>(s.fast_retransmits),
                static_cast<long long>(s.rto_fired),
                static_cast<long long>(s.path_loss_drops),
                static_cast<long long>(s.switch_drop_notifications));
    const double rate = s.segments_sent > 0 ? static_cast<double>(s.retransmit_segments) /
                                                  static_cast<double>(s.segments_sent)
                                            : 0.0;
    report.add_extra(std::string{"rtx_rate_"} + name, rate);
  }

  // --- NewReno vs SACK: repair-kind split under heavy fault loss ----------
  // The recovery ablation the fault benches needed: under the heavy
  // profile's ~16% path loss, NewReno's partial-ACK loop repairs one hole
  // per RTT and resends bytes the receiver already buffered, so multi-hole
  // windows routinely outlive the 200-ms RTO floor and fall back to
  // go-back-N. The SACK scoreboard retransmits exactly the reported holes
  // per pipe, so both timeout-driven repair (rtx_rto, rto) and the sheer
  // volume of retransmissions fall. This section always runs both laws
  // regardless of FBDCSIM_RECOVERY.
  std::printf("\nNewReno vs SACK recovery, heavy fault profile:\n");
  std::printf("%-8s %-8s %9s %8s %8s %8s %9s %6s %9s %7s\n", "role", "recovery", "segs",
              "rtx", "rtx_dup", "rtx_rto", "fast_rtx", "rto", "sack_rtx", "rescue");
  std::int64_t rto_total[2] = {0, 0};
  std::int64_t rtx_dupack_total[2] = {0, 0};
  for (const RoleRow& r : kRoles) {
    for (const auto recovery :
         {transport::LossRecovery::kNewReno, transport::LossRecovery::kSack}) {
      workload::RackSimConfig cfg = workload::default_rack_config(
          fleet, r.role, core::Duration::seconds(seconds));
      cfg.transport = workload::Transport::kTcp;
      cfg.tcp.cc = g_cc;
      cfg.tcp.recovery = recovery;
      cfg.faults = &heavy;
      workload::RackSimulation rack{fleet, cfg};
      (void)rack.run();
      transport::TransportMux::Stats s;
      if (rack.transport_mux() != nullptr) s = rack.transport_mux()->stats();
      const char* rec_name = transport::to_string(recovery);
      std::printf("%-8s %-8s %9lld %8lld %8lld %8lld %9lld %6lld %9lld %7lld\n", r.name,
                  rec_name, static_cast<long long>(s.segments_sent),
                  static_cast<long long>(s.retransmit_segments),
                  static_cast<long long>(s.rtx_dupack_segments),
                  static_cast<long long>(s.rtx_rto_segments),
                  static_cast<long long>(s.fast_retransmits),
                  static_cast<long long>(s.rto_fired),
                  static_cast<long long>(s.sack_retransmits),
                  static_cast<long long>(s.sack_rescue_retransmits));
      const int idx = recovery == transport::LossRecovery::kSack ? 1 : 0;
      rto_total[idx] += s.rto_fired;
      rtx_dupack_total[idx] += s.rtx_dupack_segments;
      report.add_extra(std::string{"rto_"} + rec_name + "_" + r.name, s.rto_fired);
      report.add_extra(std::string{"rtx_dupack_"} + rec_name + "_" + r.name,
                       s.rtx_dupack_segments);
      report.add_extra(std::string{"rtx_rto_"} + rec_name + "_" + r.name,
                       s.rtx_rto_segments);
    }
  }
  // The CI smoke asserts the headline: SACK fires fewer RTOs fleet-wide
  // and retransmits less — it never resends delivered bytes.
  report.add_extra("rto_newreno_total", rto_total[0]);
  report.add_extra("rto_sack_total", rto_total[1]);
  report.add_extra("rtx_dupack_newreno_total", rtx_dupack_total[0]);
  report.add_extra("rtx_dupack_sack_total", rtx_dupack_total[1]);

  // --- Reno vs DCTCP: occupancy/retransmit tail contrast ------------------
  // The §7 question made testable (DESIGN.md §12): squeeze the shared pool
  // to incast scale — the fig15 regime, where the rack's fan-in contends
  // for a 32-KB pool — and run the same seeded workload under both
  // congestion-control laws, with the switch as the only loss source (no
  // fault plan: the heavy profile's path loss would retransmit ~16% of
  // segments under EITHER law and bury the cc signal; its composition with
  // marking is gated by tests/transport/dctcp_differential_test.cpp).
  // NewReno first learns about the queue when DT admission drops a
  // segment; DCTCP sees CE marks at the auto-derived threshold K =
  // buffer/4 and backs off in proportion to the mark fraction, so it
  // should hold the occupancy tail near K and retransmit less. This
  // section always runs both laws regardless of FBDCSIM_CC.
  std::printf("\nReno vs DCTCP, incast-scale shared buffer (32 KB), no faults:\n");
  std::printf("%-8s %-6s %9s %9s %9s %9s %9s %9s\n", "role", "cc", "rtx_rate", "sw_drops",
              "marks", "p99.occ", "max.occ", "segs");
  for (const RoleRow& r : kRoles) {
    for (const auto cc : {transport::CongestionControl::kNewReno,
                          transport::CongestionControl::kDctcp}) {
      workload::RackSimConfig cfg = workload::default_rack_config(
          fleet, r.role, core::Duration::seconds(seconds));
      cfg.transport = workload::Transport::kTcp;
      cfg.tcp.cc = cc;
      // Incast-scale shared pool (fig15's contended-pool size) and the
      // service mix pushed past the drain rate so a standing queue forms —
      // transient microbursts alone are over before one RTT of feedback
      // can act, and both laws drop them alike. DCTCP's marking threshold
      // auto-derives to buffer/4.
      cfg.rsw.buffer_total = core::DataSize::kilobytes(32);
      cfg.mix = workload::scale_rates(cfg.mix, 4.0);
      // Occupancy tail via the probe (same series fig15 reads).
      cfg.obs = telemetry::obs_config_from_env();
      if (!cfg.obs.enabled()) cfg.obs.mode = telemetry::ObsConfig::Mode::kOn;
      cfg.obs.series_capacity = 256;
      workload::RackSimulation rack{fleet, cfg};
      const workload::RackSimResult result = rack.run();
      transport::TransportMux::Stats s;
      if (rack.transport_mux() != nullptr) s = rack.transport_mux()->stats();

      const double buffer_bytes =
          static_cast<double>(cfg.rsw.buffer_total.count_bytes());
      double p99_occ = 0.0;
      double max_occ = 0.0;
      if (const telemetry::SeriesSnapshot* occ = telemetry::find_series(
              result.timeseries, "switch.buffer_occupancy_bytes")) {
        core::Cdf bin_means;
        std::int64_t max_bytes = 0;
        for (const telemetry::SeriesBin& b : occ->bins) {
          if (b.count == 0) continue;
          bin_means.add(static_cast<double>(b.sum) / static_cast<double>(b.count));
          max_bytes = std::max(max_bytes, b.max);
        }
        if (bin_means.size() > 0) p99_occ = bin_means.quantile(0.99) / buffer_bytes;
        max_occ = static_cast<double>(max_bytes) / buffer_bytes;
      }
      const std::int64_t sw_drops =
          result.uplink.dropped_packets + result.downlinks.dropped_packets;
      const std::int64_t marks =
          result.uplink.ecn_marked_packets + result.downlinks.ecn_marked_packets;
      const double rtx_rate =
          s.segments_sent > 0 ? static_cast<double>(s.retransmit_segments) /
                                    static_cast<double>(s.segments_sent)
                              : 0.0;
      const char* cc_name = transport::to_string(cc);
      std::printf("%-8s %-6s %9.4f %9lld %9lld %9.3f %9.3f %9lld\n", r.name, cc_name,
                  rtx_rate, static_cast<long long>(sw_drops),
                  static_cast<long long>(marks), p99_occ, max_occ,
                  static_cast<long long>(s.segments_sent));
      report.add_extra(std::string{"rtx_rate_"} + cc_name + "_" + r.name, rtx_rate);
      report.add_extra(std::string{"p99_occ_"} + cc_name + "_" + r.name, p99_occ);
      report.add_extra(std::string{"sw_drops_"} + cc_name + "_" + r.name, sw_drops);
      if (cc == transport::CongestionControl::kDctcp) {
        report.add_extra(std::string{"ecn_marks_"} + r.name, marks);
      }
    }
  }

  std::printf(
      "\nReading: the TCP columns must show both Figure 12 modes without any\n"
      "scripted size distribution feeding them, SYN interarrival quantiles\n"
      "within the same regime as the scripted draw, and a retransmit rate\n"
      "that moves from ~0 to visibly positive under the heavy profile.\n"
      "In the Reno-vs-DCTCP table, the dctcp rows must mark (marks > 0)\n"
      "and hold a lower occupancy tail and/or retransmit rate than the\n"
      "reno rows wherever the tight buffer actually contends.\n");
  return 0;
}
