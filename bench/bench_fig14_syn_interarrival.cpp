// Figure 14: flow (SYN packet) inter-arrival per host type. Web servers and
// Hadoop nodes start >500 flows/s (median interarrival ~2 ms); cache nodes
// are slower (leaders ~3 ms, followers ~8 ms) thanks to connection pooling.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/packet_stats.h"

using namespace fbdcsim;

int main() {
  bench::BenchReport report{"fig14_syn_interarrival"};
  bench::banner("Figure 14: flow (SYN) inter-arrival by host type",
                "Figure 14, Section 6.2");
  bench::BenchEnv env;

  const struct {
    const char* name;
    core::HostRole role;
  } kRoles[] = {
      {"Web Server", core::HostRole::kWeb},
      {"Hadoop", core::HostRole::kHadoop},
      {"Cache Leader", core::HostRole::kCacheLeader},
      {"Cache Follower", core::HostRole::kCacheFollower},
  };

  std::vector<core::Cdf> cdfs;
  std::vector<std::string> names;
  for (const auto& r : kRoles) {
    const bench::RoleTrace trace = env.capture(r.role, 10);
    cdfs.push_back(analysis::syn_interarrival_cdf(trace.result.trace, trace.self));
    names.emplace_back(r.name);
  }
  std::vector<const core::Cdf*> ptrs;
  for (const auto& c : cdfs) ptrs.push_back(&c);
  bench::print_cdf_table("\nSYN inter-arrival (us)", names, ptrs, 1.0, "us");

  std::printf("\nmedians (ms): ");
  for (std::size_t i = 0; i < cdfs.size(); ++i) {
    std::printf("%s %.2f  ", names[i].c_str(), cdfs[i].median() / 1e3);
  }
  std::printf(
      "\n\nPaper Figure 14: medians ~2 ms for Web and Hadoop (>500 flows/s),\n"
      "~3 ms for cache leaders, ~8 ms for cache followers.\n");
  return 0;
}
