// Section 4.3: "Facebook's traffic patterns remain stable day-over-day —
// unlike the datacenter studied by Delimitrou et al." Generates several
// days of fleet traffic through Fbflow into Hive-style daily rollups and
// reports the day-over-day cosine similarity of the cluster-to-cluster
// demand matrix, for the stable (default) workload and for an unstable
// variant whose service rates are re-drawn each day.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "fbdcsim/monitoring/rollup.h"
#include "fbdcsim/workload/fleet_flows.h"

using namespace fbdcsim;

namespace {

constexpr int kDays = 3;

monitoring::HiveRollup run_days(const topology::Fleet& fleet, bool stable) {
  constexpr std::int64_t kRate = 30'000;
  monitoring::HiveRollup rollup{fleet.clusters().size(), kRate};
  core::RngStream day_rng{404};

  for (int day = 0; day < kDays; ++day) {
    workload::FleetGenConfig cfg;
    cfg.horizon = core::Duration::hours(24);
    cfg.epoch = core::Duration::hours(2);
    cfg.rate_scale = 0.004;
    cfg.seed = 100 + static_cast<std::uint64_t>(day);  // fresh randomness daily
    if (!stable) {
      // Unstable variant: the per-service demand mix is redrawn every day
      // (as if the application mix itself churned, the behaviour prior
      // work reported).
      cfg.mix.web.user_requests_per_sec *= day_rng.uniform(0.1, 10.0);
      cfg.mix.cache_follower.gets_served_per_sec *= day_rng.uniform(0.1, 10.0);
      cfg.mix.cache_leader.coherency_msgs_per_sec *= day_rng.uniform(0.1, 10.0);
      cfg.mix.hadoop.transfers_per_sec_busy *= day_rng.uniform(0.1, 10.0);
      cfg.mix.service.messages_per_sec *= day_rng.uniform(0.1, 10.0);
    }
    const workload::FleetFlowGenerator gen{fleet, cfg};
    monitoring::FbflowPipeline fbflow{fleet, kRate,
                                      core::RngStream{500 + static_cast<std::uint64_t>(day)}};
    gen.generate([&](const core::FlowRecord& flow) {
      // Shift each day's flows onto its own day of the rollup timeline.
      core::FlowRecord shifted = flow;
      shifted.start = flow.start + core::Duration::hours(24) * day;
      fbflow.offer_flow(shifted);
    });
    for (const auto& row : fbflow.scuba().rows()) rollup.add(row);
  }
  return rollup;
}

void report(const char* name, const monitoring::HiveRollup& rollup) {
  std::printf("\n-- %s --\n", name);
  for (int a = 0; a < kDays; ++a) {
    for (int b = a + 1; b < kDays; ++b) {
      // Cosine similarity of the demand matrix, plus the mean relative
      // change of its nonzero cells (cosine alone is insensitive to
      // uniform-ish rescaling of a few dominant cells).
      const auto ma = rollup.cluster_matrix(a);
      const auto mb = rollup.cluster_matrix(b);
      double rel_sum = 0.0;
      std::int64_t cells = 0;
      for (std::size_t i = 0; i < ma.size(); ++i) {
        if (ma[i] <= 0.0 && mb[i] <= 0.0) continue;
        rel_sum += std::abs(ma[i] - mb[i]) / std::max(ma[i], mb[i]);
        ++cells;
      }
      std::printf(
          "  day %d vs day %d: cosine %.4f | mean relative cell change %.1f%%\n", a, b,
          rollup.day_similarity(a, b),
          cells > 0 ? rel_sum / static_cast<double>(cells) * 100.0 : 0.0);
    }
  }
}

}  // namespace

int main() {
  bench::BenchReport bench_report{"sec43_day_stability"};
  bench::banner("Section 4.3: day-over-day traffic-matrix stability",
                "Section 4.3 (Hive rollups over Fbflow samples)");
  const topology::Fleet fleet = workload::build_fleet_experiment_fleet();
  std::printf("fleet: %zu hosts, %zu clusters, %d simulated days each\n", fleet.num_hosts(),
              fleet.clusters().size(), kDays);

  report("Facebook-style (stable service mix; fresh randomness daily)",
         run_days(fleet, /*stable=*/true));
  report("Churning application mix (Delimitrou-style day-to-day variation)",
         run_days(fleet, /*stable=*/false));

  std::printf(
      "\nExpected: near-1.0 similarity for the stable workload — the demand\n"
      "matrix is a structural property of the service architecture, not of\n"
      "any day's randomness — and visibly lower similarity when the\n"
      "application mix itself churns.\n");
  return 0;
}
