// Figure 4: per-second traffic locality by system type over a two-minute
// span — Hadoop, Web server, cache follower, cache leader. Each row of the
// output is one second's outbound Mbps split by destination locality (the
// paper's stacked bar charts).
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/locality.h"

using namespace fbdcsim;

namespace {

void print_series(const char* name, const bench::RoleTrace& trace,
                  const analysis::AddrResolver& resolver) {
  const auto series =
      analysis::locality_timeseries(trace.result.trace, trace.self, resolver);
  std::printf("\n-- %s: per-second outbound Mbps by destination locality --\n", name);
  std::printf("%4s  %10s %13s %16s %16s %10s\n", "sec", "Intra-Rack", "Intra-Cluster",
              "Intra-Datacenter", "Inter-Datacenter", "Total");
  core::OnlineStats total_stats;
  for (const auto& bin : series) {
    const double mbps = 8.0 / 1e6;
    std::printf("%4lld  %10.1f %13.1f %16.1f %16.1f %10.1f\n",
                static_cast<long long>(bin.bin), bin.bytes[0] * mbps, bin.bytes[1] * mbps,
                bin.bytes[2] * mbps, bin.bytes[3] * mbps, bin.total() * mbps);
    total_stats.add(bin.total() * mbps);
  }
  std::printf("   stability: mean %.1f Mbps, stddev %.1f (cv %.3f)\n", total_stats.mean(),
              total_stats.stddev(),
              total_stats.mean() > 0 ? total_stats.stddev() / total_stats.mean() : 0.0);
}

}  // namespace

int main() {
  bench::BenchReport report{"fig4_locality_timeseries"};
  bench::banner("Figure 4: per-second traffic locality by system type",
                "Figure 4, Section 4.2");
  bench::BenchEnv env;

  // The paper plots a two-minute span; the default here is 60 s per role to
  // keep the bench quick (FBDCSIM_BENCH_SECONDS=120 restores the paper's
  // window). Shapes are unaffected: the point of the figure is that the
  // non-Hadoop stacks are flat and dominated by non-rack-local traffic.
  const std::int64_t seconds = 60;
  print_series("Hadoop", env.capture(core::HostRole::kHadoop, seconds), env.resolver());
  print_series("Web server", env.capture(core::HostRole::kWeb, seconds), env.resolver());
  print_series("Cache follower", env.capture(core::HostRole::kCacheFollower, seconds),
               env.resolver());
  print_series("Cache leader", env.capture(core::HostRole::kCacheLeader, seconds),
               env.resolver());

  std::printf(
      "\nPaper Figure 4 shape: Hadoop bursty and rack+cluster local; Web/cache\n"
      "flat over the window; Web and cache-f cluster-dominated with minimal\n"
      "rack-local bytes; cache-l split between intra- and inter-datacenter.\n");
  return 0;
}
