// Ablation: disable user-request load balancing (requests become
// Zipf-concentrated instead of uniform). DESIGN.md's causal claim is that
// load balancing is what produces the tight per-host flow sizes (Figure 9)
// and the instability/uniformity of heavy hitters (Figure 10). With it
// off, per-host flow sizes spread out and rack-level heavy hitters become
// few and persistent.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/heavy_hitters.h"
#include "fbdcsim/analysis/locality.h"

using namespace fbdcsim;

namespace {

struct Metrics {
  double host_flow_spread{0};  // p90/p10 of per-dest-host flow sizes
  double rack_hh_persist_p50{0};
  double rack_hh_count_p50{0};
};

Metrics analyze(const bench::RoleTrace& trace, const analysis::AddrResolver& resolver) {
  Metrics m;
  const auto flows = analysis::FlowTable::outbound_flows(trace.result.trace, trace.self);
  const auto by_host = analysis::aggregate(flows, analysis::AggLevel::kHost, resolver);
  core::Cdf host_cdf;
  for (const auto& a : by_host) host_cdf.add(static_cast<double>(a.payload_bytes));
  m.host_flow_spread = host_cdf.p90() / std::max(1.0, host_cdf.p10());

  const auto binned = analysis::bin_outbound(
      trace.result.trace, trace.self, resolver, analysis::AggLevel::kRack,
      core::Duration::millis(100), trace.result.capture_start,
      trace.result.capture_end - trace.result.capture_start);
  core::Cdf persist;
  persist.add_all(analysis::hh_persistence(binned));
  m.rack_hh_persist_p50 = persist.median();
  m.rack_hh_count_p50 = analysis::hh_stats(binned).count_per_bin.median();
  return m;
}

}  // namespace

int main() {
  bench::BenchReport report{"ablation_load_balancing"};
  bench::banner("Ablation: user-request load balancing on vs off",
                "Section 5.2's causal mechanism");
  bench::BenchEnv env;

  const bench::RoleTrace on = env.capture(core::HostRole::kCacheFollower, 8);
  const bench::RoleTrace off = env.capture(
      core::HostRole::kCacheFollower, 8,
      [](workload::RackSimConfig& cfg) { cfg.mix.load_balancing_enabled = false; });

  const Metrics m_on = analyze(on, env.resolver());
  const Metrics m_off = analyze(off, env.resolver());

  std::printf("\n%-44s  %10s  %10s\n", "metric (cache follower)", "LB on", "LB off");
  std::printf("%-44s  %10.1f  %10.1f\n", "per-dest-host flow size spread (p90/p10)",
              m_on.host_flow_spread, m_off.host_flow_spread);
  std::printf("%-44s  %9.1f%%  %9.1f%%\n", "rack-HH persistence @100ms (median)",
              m_on.rack_hh_persist_p50, m_off.rack_hh_persist_p50);
  std::printf("%-44s  %10.0f  %10.0f\n", "rack-HH count per 100ms (median)",
              m_on.rack_hh_count_p50, m_off.rack_hh_count_p50);
  std::printf(
      "\nExpected: LB off -> flow sizes spread out, heavy hitters concentrate\n"
      "into few, persistent racks (the regime prior TE literature assumes).\n");
  return 0;
}
