// Micro-benchmarks (google-benchmark) of the library's hot paths: the
// event loop, distribution samplers, switch forwarding, flow assembly, and
// heavy-hitter extraction. These guard the performance that makes the
// packet-level reproductions tractable (tens of millions of events per
// experiment).
#include <benchmark/benchmark.h>

#include "fbdcsim/analysis/flow_table.h"
#include "fbdcsim/analysis/heavy_hitters.h"
#include "fbdcsim/core/distributions.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/sim/simulator.h"
#include "fbdcsim/switching/switch.h"
#include "fbdcsim/topology/network.h"
#include "fbdcsim/topology/standard_fleet.h"

namespace {

using namespace fbdcsim;

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::int64_t fired = 0;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule_at(core::TimePoint::from_nanos(i * 100), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_ZipfSample(benchmark::State& state) {
  core::Zipf zipf{static_cast<std::size_t>(state.range(0)), 1.0};
  core::RngStream rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1'000)->Arg(100'000);

void BM_LogNormalSample(benchmark::State& state) {
  core::LogNormal dist{175.0, 1.1};
  core::RngStream rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogNormalSample);

void BM_SwitchForwarding(benchmark::State& state) {
  sim::Simulator sim;
  switching::SwitchConfig cfg;
  cfg.num_ports = 20;
  std::int64_t delivered = 0;
  switching::SharedBufferSwitch sw{
      sim, cfg, [&delivered](std::size_t, const switching::SimPacket&) { ++delivered; }};
  switching::SimPacket pkt;
  pkt.header.frame_bytes = 200;
  std::size_t port = 0;
  for (auto _ : state) {
    sw.enqueue(port, pkt);
    port = (port + 1) % 20;
    sim.run_until(sim.now() + core::Duration::micros(1));
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchForwarding);

void BM_FlowTableAssembly(benchmark::State& state) {
  const auto fleet = topology::build_single_cluster_fleet(topology::ClusterType::kFrontend, 16, 8);
  core::RngStream rng{7};
  std::vector<core::PacketHeader> trace;
  trace.reserve(100'000);
  const core::Ipv4Addr self = fleet.hosts()[0].addr;
  for (int i = 0; i < 100'000; ++i) {
    core::PacketHeader pkt;
    pkt.timestamp = core::TimePoint::from_nanos(i * 1000);
    pkt.tuple = core::FiveTuple{
        self, fleet.hosts()[static_cast<std::size_t>(rng.uniform_int(1, 127))].addr,
        static_cast<core::Port>(40000 + rng.uniform_int(0, 499)), 80, core::Protocol::kTcp};
    pkt.payload_bytes = 200;
    pkt.frame_bytes = 254;
    trace.push_back(pkt);
  }
  for (auto _ : state) {
    const auto flows = analysis::FlowTable::outbound_flows(trace, self);
    benchmark::DoNotOptimize(flows.size());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_FlowTableAssembly);

void BM_HeavyHitterExtraction(benchmark::State& state) {
  core::RngStream rng{9};
  std::unordered_map<std::uint64_t, double> bin;
  for (std::uint64_t k = 0; k < 500; ++k) bin[k] = rng.uniform(1.0, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::heavy_hitters_of(bin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeavyHitterExtraction);

void BM_RouterPath(benchmark::State& state) {
  const auto fleet = topology::build_standard_fleet();
  const auto net = topology::FourPostBuilder{}.build(fleet);
  const topology::Router router{fleet, net};
  const core::HostId src{0};
  const core::HostId dst{static_cast<std::uint32_t>(fleet.num_hosts() - 1)};
  core::FiveTuple tuple{fleet.host(src).addr, fleet.host(dst).addr, 40000, 80,
                        core::Protocol::kTcp};
  for (auto _ : state) {
    tuple.src_port = static_cast<core::Port>(tuple.src_port + 1);
    benchmark::DoNotOptimize(router.route(src, dst, tuple));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterPath);

}  // namespace

BENCHMARK_MAIN();
