// Ablation: disable connection pooling (every cache get pays SYN/FIN).
// Pooling is the paper's explanation for long-lived low-rate flows (§5.1)
// and moderate SYN rates (Figure 14); without it flow durations collapse
// to per-request lifetimes and the SYN rate explodes.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/locality.h"
#include "fbdcsim/analysis/packet_stats.h"

using namespace fbdcsim;

namespace {

struct Metrics {
  double flow_duration_p50_ms{0};
  double long_flow_pct{0};  // flows spanning >= half the capture
  double syn_per_sec{0};
  double flows_total{0};
};

Metrics analyze(const bench::RoleTrace& trace, double capture_sec) {
  Metrics m;
  const auto flows = analysis::FlowTable::outbound_flows(trace.result.trace, trace.self);
  core::Cdf dur;
  std::int64_t long_flows = 0;
  for (const auto& f : flows) {
    dur.add(f.duration().to_millis());
    if (f.duration().to_seconds() >= capture_sec / 2) ++long_flows;
  }
  m.flow_duration_p50_ms = dur.median();
  m.long_flow_pct = flows.empty()
                        ? 0.0
                        : static_cast<double>(long_flows) / static_cast<double>(flows.size()) * 100.0;
  m.flows_total = static_cast<double>(flows.size());

  std::int64_t syns = 0;
  for (const auto& pkt : trace.result.trace) {
    if (pkt.tuple.src_ip == trace.self && pkt.flags.syn && !pkt.flags.ack) ++syns;
  }
  m.syn_per_sec = static_cast<double>(syns) / capture_sec;
  return m;
}

}  // namespace

int main() {
  bench::BenchReport report{"ablation_conn_pooling"};
  bench::banner("Ablation: connection pooling on vs off", "Section 5.1's causal mechanism");
  bench::BenchEnv env;
  const double capture_sec = static_cast<double>(bench::BenchEnv::effective_seconds(8));

  // The Web tier makes pooling starkest: 40 gets per user request.
  const bench::RoleTrace on = env.capture(core::HostRole::kWeb, 8);
  const bench::RoleTrace off = env.capture(core::HostRole::kWeb, 8, [](workload::RackSimConfig& cfg) {
    cfg.mix.connection_pooling_enabled = false;
  });

  const Metrics m_on = analyze(on, capture_sec);
  const Metrics m_off = analyze(off, capture_sec);

  std::printf("\n%-44s  %10s  %10s\n", "metric (Web server)", "pooling", "no pool");
  std::printf("%-44s  %10.1f  %10.1f\n", "flow duration median (ms)", m_on.flow_duration_p50_ms,
              m_off.flow_duration_p50_ms);
  std::printf("%-44s  %9.1f%%  %9.1f%%\n", "flows spanning >=50% of capture", m_on.long_flow_pct,
              m_off.long_flow_pct);
  std::printf("%-44s  %10.0f  %10.0f\n", "outbound SYNs per second", m_on.syn_per_sec,
              m_off.syn_per_sec);
  std::printf("%-44s  %10.0f  %10.0f\n", "distinct outbound flows", m_on.flows_total,
              m_off.flows_total);
  std::printf(
      "\nExpected: without pooling the SYN rate jumps by the per-request\n"
      "fan-out (~40x) and long-lived flows vanish.\n");
  return 0;
}
