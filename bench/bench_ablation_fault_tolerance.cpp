// Fault-tolerance ablation: how far do realistic fabric and collection
// faults move the paper's anchor metrics? Sweeps the built-in fault
// profiles (off / light / heavy) over the same seeded workload and
// reports, per profile:
//
//   - Table 3 locality shares (Fbflow view of a fleet flow run)
//   - Figure 6 flow-size quantiles (surviving flows)
//   - Table 4-style heavy-hitter count: the minimal set of (src, dst)
//     host pairs covering 50% of sampled bytes
//   - every loss counter the fault layer maintains (scribe_dropped,
//     scribe_retries, scribe_delayed, tag_failures_injected, partial
//     rows, host-down skips, capture drops)
//
// The workload seed is fixed across profiles, so every delta is caused by
// the fault schedule alone; and every fault decision is content-keyed, so
// each profile's row is bit-identical for any FBDCSIM_THREADS.
#include <array>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "common.h"
#include "fbdcsim/core/stats.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/monitoring/fbflow.h"
#include "fbdcsim/runtime/sharded_fleet.h"
#include "fbdcsim/transport/mux.h"
#include "fbdcsim/workload/fleet_flows.h"
#include "fbdcsim/workload/rack_sim.h"

using namespace fbdcsim;

namespace {

struct ProfileResult {
  const char* name{};
  std::array<double, core::kNumLocalities> locality{};
  double flow_kb_p50{};
  double flow_kb_p90{};
  double flow_kb_p99{};
  std::int64_t flows{};
  std::size_t scuba_rows{};
  std::int64_t hh_count{};
  std::int64_t scribe_dropped{};
  std::int64_t scribe_retries{};
  std::int64_t scribe_delayed{};
  std::int64_t tag_failures_injected{};
  std::int64_t partial_rows{};
  std::int64_t capture_dropped{};
  std::int64_t capture_injected_dropped{};
};

/// Minimal number of (src, dst) host pairs covering half the sampled bytes
/// — the Table 4 heavy-hitter construction applied to the Fbflow table.
std::int64_t heavy_hitter_count(const monitoring::ScubaTable& scuba) {
  std::unordered_map<std::uint64_t, std::int64_t> pair_bytes;
  std::int64_t total = 0;
  for (const monitoring::TaggedSample& r : scuba.rows()) {
    if (r.partial) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(r.src_host.value()) << 32) | r.dst_host.value();
    pair_bytes[key] += r.sample.frame_bytes;
    total += r.sample.frame_bytes;
  }
  std::vector<std::int64_t> sizes;
  sizes.reserve(pair_bytes.size());
  for (const auto& [key, bytes] : pair_bytes) sizes.push_back(bytes);
  std::sort(sizes.begin(), sizes.end(), std::greater<>{});
  std::int64_t covered = 0;
  std::int64_t count = 0;
  for (const std::int64_t b : sizes) {
    if (covered * 2 >= total) break;
    covered += b;
    ++count;
  }
  return count;
}

ProfileResult run_profile(const char* name, const faults::FaultPlan* plan,
                          const topology::Fleet& fleet, runtime::ThreadPool& pool,
                          bench::BenchEnv& env) {
  ProfileResult out;
  out.name = name;

  // Fleet flow run through the Fbflow pipeline (Table 3 methodology), with
  // the fault plan active in both the generator (host crash epochs) and the
  // pipeline (Scribe / tagger faults).
  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::hours(2);
  cfg.epoch = core::Duration::minutes(30);
  cfg.seed = 2015;
  cfg.rate_scale = 0.005;
  cfg.faults = plan;
  const workload::FleetFlowGenerator gen{fleet, cfg};
  monitoring::FbflowPipeline fbflow{fleet, monitoring::kDefaultSamplingRate,
                                    core::RngStream{99}, plan};

  core::Cdf sizes;
  const runtime::ShardedFleetRunner runner{gen, pool};
  runner.stream([&](const core::FlowRecord& flow) {
    fbflow.offer_flow(flow);
    sizes.add(static_cast<double>(flow.bytes.count_bytes()));
    ++out.flows;
  });

  out.locality = fbflow.scuba().locality_bytes(fbflow.sampling_rate()).percentages();
  out.flow_kb_p50 = sizes.quantile(0.50) / 1e3;
  out.flow_kb_p90 = sizes.quantile(0.90) / 1e3;
  out.flow_kb_p99 = sizes.quantile(0.99) / 1e3;
  out.scuba_rows = fbflow.scuba().size();
  out.hh_count = heavy_hitter_count(fbflow.scuba());
  out.scribe_dropped = fbflow.scribe_dropped();
  out.scribe_retries = fbflow.scribe_retries();
  out.scribe_delayed = fbflow.scribe_delayed();
  out.tag_failures_injected = fbflow.tag_failures_injected();
  out.partial_rows = fbflow.partial_rows();

  // One short rack capture for the mirror-loss side of the fault model
  // (capture competes with live traffic; §3.3.2).
  const bench::RoleTrace rack =
      env.capture(core::HostRole::kWeb, 2,
                  [plan](workload::RackSimConfig& rc) { rc.faults = plan; });
  out.capture_dropped = rack.result.capture_dropped;
  out.capture_injected_dropped = rack.result.capture_injected_dropped;
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report{"ablation_fault_tolerance"};
  bench::banner("Ablation: paper-anchor metrics under fault-injection profiles",
                "Sections 3.3, 4.3, 5.1, 5.3");
  bench::BenchEnv env;

  const topology::Fleet fleet = workload::build_fleet_experiment_fleet();
  std::printf("fleet: %zu hosts, %zu clusters\n\n", fleet.num_hosts(),
              fleet.clusters().size());

  const faults::FaultPlan light{faults::light_profile()};
  const faults::FaultPlan heavy{faults::heavy_profile()};
  runtime::ThreadPool pool;

  std::vector<ProfileResult> rows;
  rows.push_back(run_profile("off", nullptr, fleet, pool, env));
  rows.push_back(run_profile("light", &light, fleet, pool, env));
  rows.push_back(run_profile("heavy", &heavy, fleet, pool, env));
  const ProfileResult& base = rows.front();

  std::printf("%-7s %28s %26s %6s\n", "", "Table 3 locality (% bytes)",
              "Fig 6 flow size (KB)", "T4");
  std::printf("%-7s %6s %6s %6s %6s  %8s %8s %8s %6s\n", "profile", "rack", "clus", "dc",
              "interdc", "p50", "p90", "p99", "HHs");
  for (const ProfileResult& r : rows) {
    std::printf("%-7s %6.1f %6.1f %6.1f %6.1f  %8.2f %8.2f %8.2f %6lld\n", r.name,
                r.locality[0], r.locality[1], r.locality[2], r.locality[3], r.flow_kb_p50,
                r.flow_kb_p90, r.flow_kb_p99, static_cast<long long>(r.hh_count));
  }

  std::printf("\nDeltas vs off:\n");
  for (const ProfileResult& r : rows) {
    if (r.name == base.name) continue;
    std::printf("%-7s %+6.1f %+6.1f %+6.1f %+6.1f  %+8.2f %+8.2f %+8.2f %+6lld\n", r.name,
                r.locality[0] - base.locality[0], r.locality[1] - base.locality[1],
                r.locality[2] - base.locality[2], r.locality[3] - base.locality[3],
                r.flow_kb_p50 - base.flow_kb_p50, r.flow_kb_p90 - base.flow_kb_p90,
                r.flow_kb_p99 - base.flow_kb_p99,
                static_cast<long long>(r.hh_count - base.hh_count));
  }

  std::printf("\nLoss accounting (per profile):\n");
  std::printf("%-7s %9s %10s %9s %9s %9s %9s %9s %9s\n", "profile", "flows", "scuba_rows",
              "scr_drop", "scr_retry", "scr_delay", "tag_inj", "partial", "cap_drop");
  for (const ProfileResult& r : rows) {
    std::printf("%-7s %9lld %10zu %9lld %9lld %9lld %9lld %9lld %9lld\n", r.name,
                static_cast<long long>(r.flows), r.scuba_rows,
                static_cast<long long>(r.scribe_dropped),
                static_cast<long long>(r.scribe_retries),
                static_cast<long long>(r.scribe_delayed),
                static_cast<long long>(r.tag_failures_injected),
                static_cast<long long>(r.partial_rows),
                static_cast<long long>(r.capture_dropped));
  }

  // --- Transport repair kinds per profile ---------------------------------
  // The flow-level TCP engine splits its retransmissions by what drove the
  // repair: dupack evidence (fast recovery — NewReno's hole-per-RTT loop or
  // the SACK scoreboard, per FBDCSIM_RECOVERY) versus the go-back-N stream
  // after an RTO. Scripted captures cannot express this; the split is the
  // fault benches' view of how much loss each profile turns into timeouts.
  const transport::LossRecovery recovery = env.recovery();
  std::printf("\nTransport retransmissions by repair kind (Hadoop, recovery=%s):\n",
              transport::to_string(recovery));
  std::printf("%-7s %9s %8s %8s %8s %9s %6s %9s\n", "profile", "segs", "rtx", "rtx_dup",
              "rtx_rto", "fast_rtx", "rto", "sack_rtx");
  for (const auto& [name, plan] :
       {std::pair<const char*, const faults::FaultPlan*>{"off", nullptr},
        {"light", &light},
        {"heavy", &heavy}}) {
    workload::RackSimConfig rc = workload::default_rack_config(
        env.fleet(), core::HostRole::kHadoop,
        core::Duration::seconds(bench::BenchEnv::effective_seconds(1)));
    rc.transport = workload::Transport::kTcp;
    rc.tcp.cc = env.cc();
    rc.tcp.recovery = recovery;
    rc.faults = plan;
    workload::RackSimulation rack{env.fleet(), rc};
    (void)rack.run();
    transport::TransportMux::Stats s;
    if (rack.transport_mux() != nullptr) s = rack.transport_mux()->stats();
    std::printf("%-7s %9lld %8lld %8lld %8lld %9lld %6lld %9lld\n", name,
                static_cast<long long>(s.segments_sent),
                static_cast<long long>(s.retransmit_segments),
                static_cast<long long>(s.rtx_dupack_segments),
                static_cast<long long>(s.rtx_rto_segments),
                static_cast<long long>(s.fast_retransmits),
                static_cast<long long>(s.rto_fired),
                static_cast<long long>(s.sack_retransmits));
    report.add_extra(std::string{"rtx_dupack_"} + name, s.rtx_dupack_segments);
    report.add_extra(std::string{"rtx_rto_"} + name, s.rtx_rto_segments);
    report.add_extra(std::string{"rto_"} + name, s.rto_fired);
  }

  std::printf(
      "\nReading: locality shares and flow-size quantiles should move only\n"
      "slightly under 'light' (collection losses are unbiased thinning) and\n"
      "visibly under 'heavy' (host crash epochs remove whole hosts' flows;\n"
      "partial rows leave topology-keyed aggregates). The loss counters are\n"
      "also exported as telemetry Sim counters in this bench's JSON report\n"
      "(fbflow.scribe_dropped, fbflow.tag_failures_injected, capture.dropped).\n");
  return 0;
}
