// Figure 5: traffic demand matrices from the Fbflow view —
//   (a) rack-to-rack within a Hadoop cluster (strong diagonal + uniform
//       cluster background),
//   (b) rack-to-rack within a Frontend cluster (bipartite Web <-> cache),
//   (c) cluster-to-cluster within a datacenter (demand spans many orders
//       of magnitude).
// Also validates the §4.3 note that a Frontend "cluster" in a Fabric-pod
// datacenter shows the same pattern (the matrix is workload-, not
// topology-, determined).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "fbdcsim/monitoring/fbflow.h"
#include "fbdcsim/runtime/sharded_fleet.h"
#include "fbdcsim/workload/fleet_flows.h"

using namespace fbdcsim;

namespace {

/// Prints a matrix as log10 buckets (0-9), normalized to its smallest
/// non-zero entry — the paper's heatmaps use a log color scale.
void print_log_matrix(const char* title, const std::vector<std::vector<double>>& m,
                      std::size_t max_dim = 32) {
  double min_nonzero = 0.0;
  double max_value = 0.0;
  for (const auto& row : m) {
    for (const double v : row) {
      if (v > 0.0 && (min_nonzero == 0.0 || v < min_nonzero)) min_nonzero = v;
      max_value = std::max(max_value, v);
    }
  }
  std::printf("\n-- %s (%zux%zu, log10 buckets relative to min; '.' = no traffic) --\n",
              title, m.size(), m.size());
  if (min_nonzero == 0.0) return;
  const std::size_t dim = std::min(m.size(), max_dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      if (m[i][j] <= 0.0) {
        std::printf(".");
      } else {
        const int bucket =
            std::min(9, static_cast<int>(std::log10(m[i][j] / min_nonzero)));
        std::printf("%d", bucket);
      }
    }
    std::printf("\n");
  }
  std::printf("dynamic range: %.1f orders of magnitude\n",
              std::log10(max_value / min_nonzero));
}

double diagonal_share(const std::vector<std::vector<double>>& m) {
  double diag = 0.0, total = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      total += m[i][j];
      if (i == j) diag += m[i][j];
    }
  }
  return total > 0 ? diag / total : 0.0;
}

}  // namespace

int main() {
  bench::BenchReport report{"fig5_traffic_matrix"};
  bench::banner("Figure 5: rack-to-rack and cluster-to-cluster traffic matrices",
                "Figure 5, Section 4.3");

  // A fleet with 64-rack clusters (the paper plots 64 racks) and a
  // many-cluster datacenter for panel (c).
  topology::StandardFleetConfig fc;
  fc.sites = 2;
  fc.datacenters_per_site = 1;
  fc.frontend_clusters = 4;
  fc.cache_clusters = 2;
  fc.hadoop_clusters = 4;
  fc.database_clusters = 2;
  fc.service_clusters = 3;
  fc.racks_per_cluster = 64;
  fc.hosts_per_rack = 2;
  fc.frontend_web_racks = 48;
  fc.frontend_cache_racks = 12;
  fc.frontend_multifeed_racks = 2;
  const topology::Fleet fleet = topology::build_standard_fleet(fc);
  std::printf("fleet: %zu hosts, %zu clusters per DC\n", fleet.num_hosts(),
              fleet.datacenter(core::DatacenterId{0}).clusters.size());

  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::hours(24);
  cfg.epoch = core::Duration::hours(1);
  cfg.flows_per_component = 24;
  cfg.seed = 5;
  cfg.rate_scale = 0.001;  // shares are scale-free; bounds sample volume
  const workload::FleetFlowGenerator gen{fleet, cfg};
  monitoring::FbflowPipeline fbflow{fleet, 3'000, core::RngStream{42}};
  runtime::ThreadPool pool;
  const runtime::ShardedFleetRunner runner{gen, pool};
  runner.stream([&](const core::FlowRecord& flow) { fbflow.offer_flow(flow); });
  std::printf("sampled headers: %zu\n", fbflow.scuba().size());

  // (a) Hadoop cluster: first Hadoop cluster in DC 0.
  core::ClusterId hadoop_cluster, frontend_cluster;
  for (const auto& c : fleet.clusters()) {
    if (c.datacenter.value() == 0 && c.type == topology::ClusterType::kHadoop &&
        !hadoop_cluster.is_valid()) {
      hadoop_cluster = c.id;
    }
    if (c.datacenter.value() == 0 && c.type == topology::ClusterType::kFrontend &&
        !frontend_cluster.is_valid()) {
      frontend_cluster = c.id;
    }
  }

  const auto hadoop_m =
      fbflow.scuba().rack_matrix(fleet, hadoop_cluster, fbflow.sampling_rate());
  print_log_matrix("(a) Hadoop cluster rack-to-rack", hadoop_m);
  std::printf("diagonal (intra-rack) byte share: %.1f%% (paper: dominant diagonal)\n",
              diagonal_share(hadoop_m) * 100.0);

  const auto fe_m =
      fbflow.scuba().rack_matrix(fleet, frontend_cluster, fbflow.sampling_rate());
  print_log_matrix("(b) Frontend cluster rack-to-rack (racks 0-47 Web, 48-59 cache, 60-61 MF)",
                   fe_m, 64);
  std::printf("diagonal (intra-rack) byte share: %.1f%% (paper: near zero; bipartite)\n",
              diagonal_share(fe_m) * 100.0);

  const auto cluster_m =
      fbflow.scuba().cluster_matrix(fleet, core::DatacenterId{0}, fbflow.sampling_rate());
  print_log_matrix("(c) cluster-to-cluster, one datacenter, 24h", cluster_m, 16);
  std::printf("(paper: demand varies over >7 orders of magnitude between cluster pairs)\n");
  return 0;
}
