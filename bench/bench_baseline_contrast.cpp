// Table 1 contrast: run the same analyses over (a) the Facebook-style
// traces this library synthesizes and (b) the prior-literature baseline
// workload (rack-local, ON/OFF, bimodal packets, <5 concurrent
// destinations). Every row is one of Table 1's "finding vs previously
// published data" comparisons, made concrete.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/concurrency.h"
#include "fbdcsim/analysis/heavy_hitters.h"
#include "fbdcsim/analysis/locality.h"
#include "fbdcsim/analysis/packet_stats.h"
#include "fbdcsim/workload/baseline.h"

using namespace fbdcsim;

namespace {

struct Metrics {
  double rack_local_pct{0};
  double median_packet{0};
  double concurrent_tuples_p50{0};
  double idle15_pct{0};
};

Metrics analyze(const std::vector<core::PacketHeader>& trace, core::Ipv4Addr self,
                const analysis::AddrResolver& resolver) {
  Metrics m;
  m.rack_local_pct =
      analysis::locality_shares(trace, self, resolver)[static_cast<int>(
          core::Locality::kIntraRack)];
  m.median_packet = analysis::packet_size_cdf(trace).median();
  m.concurrent_tuples_p50 = analysis::concurrent_connections(trace, self).tuples.median();
  m.idle15_pct = analysis::idle_bin_fraction(trace, core::Duration::millis(15)) * 100.0;
  return m;
}

}  // namespace

int main() {
  bench::BenchReport report{"baseline_contrast"};
  bench::banner("Table 1 contrast: Facebook-style workload vs prior literature",
                "Table 1, Sections 4-6");
  bench::BenchEnv env;

  // Facebook-style: a cache follower (the paper's most contrarian host).
  const bench::RoleTrace fb = env.capture(core::HostRole::kCacheFollower, 8);
  const Metrics fb_m = analyze(fb.result.trace, fb.self, env.resolver());

  // Literature baseline on the same monitored host.
  workload::LiteratureWorkloadConfig lit_cfg;
  const auto lit_trace = workload::generate_literature_trace(
      env.fleet(), fb.host, core::Duration::seconds(8), lit_cfg);
  const Metrics lit_m = analyze(lit_trace, fb.self, env.resolver());

  std::printf("\n%-38s  %14s  %14s  %s\n", "metric", "this-workload", "literature",
              "paper's contrast");
  std::printf("%-38s  %13.1f%%  %13.1f%%  %s\n", "rack-local bytes", fb_m.rack_local_pct,
              lit_m.rack_local_pct, "not rack-local vs 50-80% rack-local");
  std::printf("%-38s  %13.0fB  %13.0fB  %s\n", "median packet size", fb_m.median_packet,
              lit_m.median_packet, "<200 B vs bimodal ACK/MTU");
  std::printf("%-38s  %14.0f  %14.0f  %s\n", "concurrent 5-tuples per 5 ms",
              fb_m.concurrent_tuples_p50, lit_m.concurrent_tuples_p50,
              "100s-1000s vs <5 large flows");
  std::printf("%-38s  %13.1f%%  %13.1f%%  %s\n", "idle 15-ms bins (ON/OFF-ness)",
              fb_m.idle15_pct, lit_m.idle15_pct, "continuous vs ON/OFF arrivals");
  return 0;
}
