// Figure 10: heavy-hitter stability between consecutive intervals, as a
// function of aggregation level (flow / host / rack) and interval length
// (1 / 10 / 100 ms), for cache followers, cache leaders, and Web servers.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/heavy_hitters.h"

using namespace fbdcsim;

namespace {

void print_panel(const char* name, const bench::RoleTrace& trace,
                 const analysis::AddrResolver& resolver) {
  std::printf("\n-- %s: %% of an interval's heavy hitters still heavy in the next --\n", name);
  std::printf("%-6s %-7s  %8s %8s %8s %8s\n", "agg", "bin", "p10", "p50", "p90", "samples");
  const struct {
    const char* name;
    analysis::AggLevel level;
  } kLevels[] = {{"flows", analysis::AggLevel::kFlow},
                 {"hosts", analysis::AggLevel::kHost},
                 {"racks", analysis::AggLevel::kRack}};
  const struct {
    const char* name;
    core::Duration bin;
  } kBins[] = {{"1-ms", core::Duration::millis(1)},
               {"10-ms", core::Duration::millis(10)},
               {"100-ms", core::Duration::millis(100)}};

  for (const auto& level : kLevels) {
    for (const auto& bin : kBins) {
      const auto binned = analysis::bin_outbound(
          trace.result.trace, trace.self, resolver, level.level, bin.bin,
          trace.result.capture_start, trace.result.capture_end - trace.result.capture_start);
      const auto persist = analysis::hh_persistence(binned);
      core::Cdf cdf;
      cdf.add_all(persist);
      std::printf("%-6s %-7s  %8.1f %8.1f %8.1f %8zu\n", level.name, bin.name, cdf.p10(),
                  cdf.median(), cdf.p90(), cdf.size());
    }
  }
}

}  // namespace

int main() {
  bench::BenchReport report{"fig10_hh_stability"};
  bench::banner("Figure 10: heavy-hitter persistence across intervals",
                "Figure 10, Section 5.3");
  bench::BenchEnv env;

  print_panel("(a) Cache follower", env.capture(core::HostRole::kCacheFollower, 10),
              env.resolver());
  print_panel("(b) Cache leader", env.capture(core::HostRole::kCacheLeader, 10),
              env.resolver());
  print_panel("(c) Web server", env.capture(core::HostRole::kWeb, 10), env.resolver());

  std::printf(
      "\nPaper Figure 10 shape: 5-tuple heavy hitters persist <~15%% in the\n"
      "median; host-level <~20%% (Web somewhat higher); only rack-level\n"
      "aggregation is stable (cache >40%%, Web ~60%% at 100 ms).\n");
  return 0;
}
