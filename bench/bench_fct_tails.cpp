// FCT tail analytics across transport variants (DESIGN.md §14).
//
// The FlowLedger (FBDCSIM_OBS=flows) records one entry per directed
// transfer with its FCT and topology-derived ideal FCT; this bench turns
// those records into the tail view the paper's latency arguments live on:
// per-role p50/p99/p999 slowdown (FCT / ideal) under the NewReno, SACK and
// DCTCP variants, fault-free and under the heavy fault profile, with the
// scripted path's flow durations alongside as the no-transport baseline.
//
// Reading guide: fault-free, all variants should sit near slowdown 1 at
// p50 — transfers see an idle-ish network. Under the heavy profile's path
// loss, NewReno's one-hole-per-RTT repair and go-back-N timeouts stretch
// the tail; the SACK scoreboard repairs exactly the reported holes, so its
// p99 slowdown must not exceed NewReno's (the CI bench-smoke asserts
// exactly that on the fleet-merged extras below).
//
// Headlines land in the report's "extra" section
// (fct_p99_slowdown_<variant>_<faults>, plus per-role rows); the full
// per-cell quantile table lands in the report's "fct" section, and the
// SACK/heavy runs' ledgers in bench_fct_tails.flows.jsonl.
#include <array>
#include <cstdio>
#include <string>
#include <utility>

#include "common.h"
#include "fbdcsim/analysis/fct.h"
#include "fbdcsim/analysis/flow_table.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/workload/presets.h"
#include "fbdcsim/workload/rack_sim.h"

using namespace fbdcsim;

namespace {

struct RoleRow {
  const char* name{};
  core::HostRole role{};
};

constexpr std::array<RoleRow, 3> kRoles{{
    {"Web", core::HostRole::kWeb},
    {"Cache-l", core::HostRole::kCacheLeader},
    {"Hadoop", core::HostRole::kHadoop},
}};

struct Variant {
  const char* name{};
  transport::CongestionControl cc{};
  transport::LossRecovery recovery{};
};

constexpr std::array<Variant, 3> kVariants{{
    {"newreno", transport::CongestionControl::kNewReno, transport::LossRecovery::kNewReno},
    {"sack", transport::CongestionControl::kNewReno, transport::LossRecovery::kSack},
    {"dctcp", transport::CongestionControl::kDctcp, transport::LossRecovery::kNewReno},
}};

/// Ledger ring size per capture. A 1-s TCP capture closes far more
/// transfers than any affordable ring holds (~1.5 KB/record), so the
/// quantiles below are over each run's most recent kLedgerCapacity
/// transfers — the same deterministic window for every variant, which is
/// what the cross-variant comparison needs.
constexpr std::size_t kLedgerCapacity = 16384;

workload::RackSimResult run_tcp_capture(const topology::Fleet& fleet, core::HostRole role,
                                        std::int64_t seconds, const Variant& variant,
                                        const faults::FaultPlan* plan) {
  workload::RackSimConfig cfg =
      workload::default_rack_config(fleet, role, core::Duration::seconds(seconds));
  cfg.transport = workload::Transport::kTcp;
  cfg.tcp.cc = variant.cc;
  cfg.tcp.recovery = variant.recovery;
  cfg.faults = plan;
  // The ledger is this bench's entire subject: force the flows level on
  // (FBDCSIM_OBS may refine the other knobs) and size the ring for the
  // capture.
  cfg.obs = telemetry::obs_config_from_env();
  if (!cfg.obs.enabled()) cfg.obs.mode = telemetry::ObsConfig::Mode::kOn;
  cfg.obs.flows = true;
  if (cfg.obs.flow_capacity < kLedgerCapacity) cfg.obs.flow_capacity = kLedgerCapacity;
  workload::RackSimulation rack{fleet, cfg};
  return rack.run();
}

}  // namespace

int main() {
  bench::BenchReport report{"fct_tails"};
  bench::banner("FCT tails: per-role slowdown across transport variants",
                "Sections 5-7 (flow behavior under congestion and loss)");
  bench::BenchEnv env;
  const topology::Fleet& fleet = env.fleet();
  const std::int64_t seconds = bench::BenchEnv::effective_seconds(1);
  const faults::FaultPlan heavy{faults::heavy_profile()};

  // Merged-over-roles table per (variant, faults) — the headline extras and
  // the report's "fct" section come from the heavy SACK table plus these.
  analysis::FctTable fct_tables[kVariants.size()][2];

  for (const auto& [fault_name, plan] :
       {std::pair<const char*, const faults::FaultPlan*>{"off", nullptr},
        {"heavy", &heavy}}) {
    const int fault_idx = plan == nullptr ? 0 : 1;
    std::printf("\nFCT and slowdown per role, faults=%s:\n", fault_name);
    std::printf("%-8s %-9s %10s %10s %10s %8s %8s %8s %9s\n", "role", "variant",
                "fct_p50ms", "fct_p99ms", "fct_p999ms", "sd_p50", "sd_p99", "sd_p999",
                "transfers");
    for (const RoleRow& r : kRoles) {
      // Scripted baseline: no transport lifecycle exists, so the closest
      // observable is the mirrored trace's flow durations (Figure 7's
      // quantity). Slowdown is undefined for it by construction.
      {
        workload::RackSimConfig cfg = workload::default_rack_config(
            fleet, r.role, core::Duration::seconds(seconds));
        cfg.faults = plan;
        workload::RackSimulation rack{fleet, cfg};
        const workload::RackSimResult scripted = rack.run();
        const core::Ipv4Addr self = fleet.host(cfg.monitored_host).addr;
        core::Cdf durations_ms;
        for (const analysis::Flow& f :
             analysis::FlowTable::outbound_flows(scripted.trace, self)) {
          durations_ms.add(static_cast<double>(f.duration().count_nanos()) / 1e6);
        }
        std::printf("%-8s %-9s %10.3f %10.3f %10.3f %8s %8s %8s %9zu\n", r.name,
                    "scripted", durations_ms.empty() ? 0.0 : durations_ms.quantile(0.50),
                    durations_ms.empty() ? 0.0 : durations_ms.quantile(0.99),
                    durations_ms.empty() ? 0.0 : durations_ms.quantile(0.999), "-", "-",
                    "-", durations_ms.size());
      }
      for (std::size_t v = 0; v < kVariants.size(); ++v) {
        const Variant& variant = kVariants[v];
        const workload::RackSimResult result =
            run_tcp_capture(fleet, r.role, seconds, variant, plan);
        analysis::FctTable table;
        table.add_all(result.flows.records);
        const analysis::FctCell cell = table.overall();
        std::printf("%-8s %-9s %10.3f %10.3f %10.3f %8.3f %8.3f %8.3f %9lld\n", r.name,
                    variant.name, cell.fct_us.quantile(0.50) / 1e3,
                    cell.fct_us.quantile(0.99) / 1e3, cell.fct_us.quantile(0.999) / 1e3,
                    cell.slowdown.quantile(0.50), cell.slowdown.quantile(0.99),
                    cell.slowdown.quantile(0.999), static_cast<long long>(cell.count));
        report.add_extra(std::string{"fct_p99_slowdown_"} + variant.name + "_" +
                             fault_name + "_" + r.name,
                         cell.slowdown.quantile(0.99));
        fct_tables[v][fault_idx].add_all(result.flows.records);
        // Canonical ledger export: the SACK/heavy runs carry the richest
        // attribution stories (switch drops, path loss, recovery episodes)
        // without tripling the file with every variant.
        if (plan != nullptr && variant.recovery == transport::LossRecovery::kSack) {
          report.add_flows(result.flows);
        }
      }
    }
  }

  // Fleet-merged headlines per (variant, faults) — what the CI bench-smoke
  // asserts on: under heavy faults the SACK scoreboard's p99 slowdown must
  // not exceed NewReno's.
  std::printf("\nFleet-merged slowdown (all roles), per variant:\n");
  std::printf("%-9s %-7s %8s %8s %8s %10s %11s\n", "variant", "faults", "sd_p50", "sd_p99",
              "sd_p999", "completed", "incomplete");
  for (std::size_t v = 0; v < kVariants.size(); ++v) {
    for (const auto& [fault_name, fault_idx] :
         {std::pair<const char*, int>{"off", 0}, {"heavy", 1}}) {
      const analysis::FctTable& table = fct_tables[v][fault_idx];
      const analysis::FctCell cell = table.overall();
      std::printf("%-9s %-7s %8.3f %8.3f %8.3f %10lld %11lld\n", kVariants[v].name,
                  fault_name, cell.slowdown.quantile(0.50), cell.slowdown.quantile(0.99),
                  cell.slowdown.quantile(0.999), static_cast<long long>(table.completed()),
                  static_cast<long long>(table.incomplete()));
      const std::string key =
          std::string{"fct_p99_slowdown_"} + kVariants[v].name + "_" + fault_name;
      report.add_extra(key, cell.slowdown.quantile(0.99));
      report.add_extra(std::string{"fct_completed_"} + kVariants[v].name + "_" + fault_name,
                       table.completed());
    }
  }
  // The report's "fct" section: the heavy SACK table, per-cell quantiles —
  // the granularity aggregate_reports.py folds into the trajectory.
  report.add_fct(fct_tables[1][1].to_json());

  std::printf(
      "\nReading: fault-free p50 slowdowns should sit near 1 for every\n"
      "variant; under the heavy profile the sack rows must hold a p99\n"
      "slowdown at or below the newreno rows (hole-exact repair vs\n"
      "one-hole-per-RTT plus go-back-N timeouts).\n");
  return 0;
}
