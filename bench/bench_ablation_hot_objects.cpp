// Ablation: disable hot-object mitigation (web-side caching of bursting
// objects + replication of sustained-hot shards, §5.2). With mitigation,
// cache load stays within a factor of two of its median ~90% of the time
// (Figure 8c); without it, surges run their full course and per-second
// rates swing widely.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/packet_stats.h"

using namespace fbdcsim;

namespace {

struct Metrics {
  double within_2x_pct{0};
  double significant_change_pct{0};
  double rate_cv{0};  // coefficient of variation of total per-second rate
};

Metrics analyze(const bench::RoleTrace& trace, const analysis::AddrResolver& resolver) {
  Metrics m;
  const auto rates = analysis::per_rack_second_rates(
      trace.result.trace, trace.self, resolver, trace.result.capture_start,
      trace.result.capture_end - trace.result.capture_start);
  const auto stability = analysis::rate_stability(rates);
  m.within_2x_pct = stability.within_2x_of_median * 100.0;
  m.significant_change_pct = stability.significant_change * 100.0;

  core::OnlineStats per_sec;
  for (std::size_t sec = 0; sec < rates.seconds; ++sec) {
    double total = 0.0;
    for (const auto& series : rates.bytes_per_sec) total += series[sec];
    per_sec.add(total);
  }
  m.rate_cv = per_sec.mean() > 0 ? per_sec.stddev() / per_sec.mean() : 0.0;
  return m;
}

}  // namespace

int main() {
  bench::BenchReport report{"ablation_hot_objects"};
  bench::banner("Ablation: hot-object mitigation on vs off",
                "Section 5.2's load-management mechanism");
  bench::BenchEnv env;

  const bench::RoleTrace on = env.capture(core::HostRole::kCacheFollower, 20);
  const bench::RoleTrace off = env.capture(
      core::HostRole::kCacheFollower, 20,
      [](workload::RackSimConfig& cfg) { cfg.mix.hot_objects.mitigation_enabled = false; });

  const Metrics m_on = analyze(on, env.resolver());
  const Metrics m_off = analyze(off, env.resolver());

  std::printf("\n%-44s  %10s  %10s\n", "metric (cache follower)", "mitigated", "unmitigated");
  std::printf("%-44s  %9.1f%%  %9.1f%%\n", "per-rack rates within 2x of median",
              m_on.within_2x_pct, m_off.within_2x_pct);
  std::printf("%-44s  %9.1f%%  %9.1f%%\n", "'significant change' samples (>20%)",
              m_on.significant_change_pct, m_off.significant_change_pct);
  std::printf("%-44s  %10.3f  %10.3f\n", "total-rate coefficient of variation", m_on.rate_cv,
              m_off.rate_cv);
  std::printf(
      "\nExpected: unmitigated hot objects push total load around by 2-3x for\n"
      "minutes at a time, destroying the ~90%%-within-2x stability the paper\n"
      "credits to active load management.\n");
  return 0;
}
