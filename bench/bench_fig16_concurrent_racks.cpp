// Figure 16: concurrent (same 5-ms window) destination racks per host, by
// destination locality, for Web servers, cache followers, and cache
// leaders — plus the §6.4 text numbers on concurrent 5-tuple connections
// (100s-1000s for Web/cache, ~25 for Hadoop; host-level grouping shrinks
// counts by at most 2x).
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/concurrency.h"

using namespace fbdcsim;

namespace {

void print_panel(const char* name, const bench::RoleTrace& trace,
                 const analysis::AddrResolver& resolver) {
  const auto cdfs = analysis::concurrent_racks(trace.result.trace, trace.self, resolver);
  std::printf("\n-- %s: destination racks per 5-ms window --\n", name);
  bench::print_cdf_table("racks",
                         {"Intra-Cluster", "Intra-DC", "Inter-DC", "All"},
                         {&cdfs.intra_cluster, &cdfs.intra_datacenter,
                          &cdfs.inter_datacenter, &cdfs.all});
}

}  // namespace

int main() {
  bench::BenchReport report{"fig16_concurrent_racks"};
  bench::banner("Figure 16: concurrent (5-ms) rack-level flows", "Figure 16, Section 6.4");
  bench::BenchEnv env;

  const bench::RoleTrace web = env.capture(core::HostRole::kWeb, 8);
  const bench::RoleTrace cache_f = env.capture(core::HostRole::kCacheFollower, 8);
  const bench::RoleTrace cache_l = env.capture(core::HostRole::kCacheLeader, 8);
  const bench::RoleTrace hadoop = env.capture(core::HostRole::kHadoop, 8);

  print_panel("(a) Web server", web, env.resolver());
  print_panel("(b) Cache follower", cache_f, env.resolver());
  print_panel("(c) Cache leader", cache_l, env.resolver());

  std::printf("\n-- Section 6.4 text numbers: concurrent connections per 5-ms window --\n");
  std::printf("%-15s  %10s  %10s  %12s\n", "host type", "tuples.p50", "hosts.p50",
              "hosts/tuples");
  for (const auto* t : {&web, &cache_f, &cache_l, &hadoop}) {
    const auto conns = analysis::concurrent_connections(t->result.trace, t->self);
    std::printf("%-15s  %10.0f  %10.0f  %12.2f\n", core::to_string(t->role),
                conns.tuples.median(), conns.hosts.median(),
                conns.tuples.median() > 0 ? conns.hosts.median() / conns.tuples.median()
                                          : 0.0);
  }

  std::printf(
      "\nPaper Figure 16: cache followers touch 225-300 racks per 5 ms,\n"
      "leaders 175-350 (median ~250), Web servers 10-125 (median ~50);\n"
      "Web/cache hold 100s-1000s of concurrent connections, Hadoop ~25;\n"
      "grouping by destination host reduces counts by at most 2x.\n");
  return 0;
}
