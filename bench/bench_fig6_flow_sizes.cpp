// Figure 6: flow size distributions (5-tuple flows), broken down by the
// location of the destination, for Web servers, cache followers, and
// Hadoop nodes.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/locality.h"

using namespace fbdcsim;

namespace {

void print_panel(const char* name, const bench::RoleTrace& trace,
                 const analysis::AddrResolver& resolver) {
  const auto flows = analysis::FlowTable::outbound_flows(trace.result.trace, trace.self);
  const auto buckets = analysis::flows_by_locality(flows, resolver);

  core::Cdf per_loc[core::kNumLocalities];
  for (int i = 0; i < core::kNumLocalities; ++i) {
    per_loc[i].add_all(buckets.size_bytes[i]);
  }
  core::Cdf all;
  all.add_all(buckets.all_size_bytes);

  std::printf("\n-- %s: flow size by destination locality --\n", name);
  bench::print_cdf_table(
      "flow payload bytes (KB)",
      {"Intra-Rack", "Intra-Cluster", "Intra-DC", "Inter-DC", "All"},
      {&per_loc[0], &per_loc[1], &per_loc[2], &per_loc[3], &all}, 1e-3, "KB");
  std::printf("flows <10 KB: %.0f%%; flows >1 MB: %.1f%%\n",
              all.fraction_at_or_below(10'000) * 100.0,
              (1.0 - all.fraction_at_or_below(1'000'000)) * 100.0);
}

}  // namespace

int main() {
  bench::BenchReport report{"fig6_flow_sizes"};
  bench::banner("Figure 6: flow size distribution by destination locality",
                "Figure 6, Section 5.1");
  bench::BenchEnv env;

  print_panel("(a) Web server", env.capture(core::HostRole::kWeb, 15), env.resolver());
  print_panel("(b) Cache follower", env.capture(core::HostRole::kCacheFollower, 15),
              env.resolver());
  print_panel("(c) Hadoop", env.capture(core::HostRole::kHadoop, 15), env.resolver());

  std::printf(
      "\nPaper Figure 6 shape: Hadoop flows small (70%% <10 KB, median <1 KB,\n"
      "<5%% >1 MB); cache flows significantly larger than Hadoop; Web servers\n"
      "in between.\n");
  return 0;
}
