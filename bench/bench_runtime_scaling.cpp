// Runtime scaling, two sections:
//
//  1. Serial vs ShardedFleetRunner wall-clock for the Table 3 fleet
//     workload, with bit-identity of the resulting locality matrix
//     asserted for every worker count.
//  2. Hot-path event-engine storm: the same deterministic single-threaded
//     event storm on the reference heap engine (the pre-rewrite
//     binary-heap/std::function implementation, kept as
//     Engine::kReference) and the bucketed calendar-wheel engine, with
//     checksums asserted bit-identical and a >=1.5x events/sec gate on the
//     bucketed engine. Both rates land in the report's "extra" JSON.
//
// Exits non-zero on any mismatch, a failed engine gate, or — on hardware
// with at least 4 cores — if 4 workers fail to reach a 2x speedup.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common.h"
#include "fbdcsim/monitoring/fbflow.h"
#include "fbdcsim/runtime/sharded_fleet.h"
#include "fbdcsim/sim/simulator.h"
#include "fbdcsim/workload/fleet_flows.h"

using namespace fbdcsim;

namespace {

struct RunResult {
  double seconds{0.0};
  std::int64_t flows{0};
  double bytes{0.0};
  std::size_t samples{0};
  monitoring::ScubaTable::LocalityBytes locality{};
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

using Feed = std::function<void(const workload::FleetFlowGenerator::Visit&)>;

RunResult measure(const Feed& feed, monitoring::FbflowPipeline& fbflow) {
  RunResult r;
  std::int64_t flows = 0;
  double bytes = 0.0;
  const double t0 = now_seconds();
  feed([&](const core::FlowRecord& flow) {
    fbflow.offer_flow(flow);
    bytes += static_cast<double>(flow.bytes.count_bytes());
    ++flows;
  });
  r.seconds = now_seconds() - t0;
  r.flows = flows;
  r.bytes = bytes;
  r.samples = fbflow.scuba().size();
  r.locality = fbflow.scuba().locality_bytes(fbflow.sampling_rate());
  return r;
}

int compare(const RunResult& ref, const RunResult& got, int workers) {
  int mismatches = 0;
  if (got.flows != ref.flows) {
    std::printf("MISMATCH (%d workers): flow count %lld vs %lld\n", workers,
                static_cast<long long>(got.flows), static_cast<long long>(ref.flows));
    ++mismatches;
  }
  if (got.bytes != ref.bytes) {
    std::printf("MISMATCH (%d workers): byte total %.17g vs %.17g\n", workers,
                got.bytes, ref.bytes);
    ++mismatches;
  }
  if (got.samples != ref.samples) {
    std::printf("MISMATCH (%d workers): sampled headers %zu vs %zu\n", workers,
                got.samples, ref.samples);
    ++mismatches;
  }
  for (int l = 0; l < core::kNumLocalities; ++l) {
    if (got.locality.bytes[l] != ref.locality.bytes[l]) {
      std::printf("MISMATCH (%d workers): locality[%d] %.17g vs %.17g\n", workers, l,
                  got.locality.bytes[l], ref.locality.bytes[l]);
      ++mismatches;
    }
  }
  return mismatches;
}

// ---------------------------------------------------------------------------
// Section 2: hot-path engine storm (reference heap vs bucketed scheduler).

struct StormOutcome {
  double seconds{0.0};
  std::uint64_t events{0};
  std::uint64_t pending{0};
  std::uint64_t checksum{0};
};

/// A deterministic single-threaded event storm shaped like the rack-sim
/// hot path: many sources rescheduling themselves with small captured
/// state (48 bytes — within InlineAction's inline buffer), delays mostly
/// inside the bucketed engine's wheel window with occasional far jumps
/// through the overflow heap, plus a handful of PeriodicTimers.
class EngineStorm {
 public:
  explicit EngineStorm(sim::Simulator::Engine engine) : sim_{engine} {}

  StormOutcome run() {
    for (std::uint32_t id = 0; id < kSources; ++id) {
      schedule_next(0x9E3779B97F4A7C15ULL * (id + 1), id);
    }
    timers_.reserve(kTimers);
    for (std::int64_t t = 0; t < kTimers; ++t) {
      timers_.push_back(std::make_unique<sim::PeriodicTimer>(
          sim_, core::Duration::micros(50 + 7 * t), [this](core::TimePoint at) {
            checksum_ = mix(checksum_, static_cast<std::uint64_t>(at.count_nanos()));
          }));
    }
    const double t0 = now_seconds();
    sim_.run_until(core::TimePoint::from_nanos(kHorizonNs));
    StormOutcome out;
    out.seconds = now_seconds() - t0;
    out.events = sim_.executed_events();
    out.pending = sim_.pending_events();
    out.checksum = checksum_;
    return out;
  }

 private:
  static constexpr std::uint32_t kSources = 2048;
  static constexpr std::int64_t kTimers = 8;
  static constexpr std::int64_t kHorizonNs = 3'000'000'000;  // 3 s of sim time

  static std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
  }

  static std::uint64_t next_state(std::uint64_t s) {  // xorshift64
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }

  void schedule_next(std::uint64_t state, std::uint32_t id) {
    // Timer-wheel-shaped steps of 0.5 µs – 4 ms: the 2048 sources spread
    // across the whole 4.2 ms wheel window, so buckets stay sparse while
    // the reference engine's heap stays ~2048 deep. Roughly one step in
    // 4096 jumps 8 ms ahead, through the overflow heap.
    const bool far = (state >> 24) % 4096 == 0;
    const auto delta = core::Duration::nanos(
        far ? 8'000'000 : 500 + static_cast<std::int64_t>(state % 4'000'000));
    const std::uint64_t p0 = state ^ 0xA5A5A5A5A5A5A5A5ULL;
    const std::uint64_t p1 = state + id;
    const std::uint64_t p2 = state >> 7;
    sim_.schedule_after(delta, [this, state, id, p0, p1, p2] {
      checksum_ = mix(checksum_,
                      static_cast<std::uint64_t>(sim_.now().count_nanos()) ^ p0 ^ p1 ^
                          p2 ^ id);
      schedule_next(next_state(state), id);
    });
  }

  sim::Simulator sim_;
  std::uint64_t checksum_{0};
  std::vector<std::unique_ptr<sim::PeriodicTimer>> timers_;
};

/// Best-of-two timed runs (the storm is deterministic, so both runs
/// produce the same outcome; the min smooths scheduler noise).
StormOutcome measure_storm(sim::Simulator::Engine engine) {
  StormOutcome best = EngineStorm{engine}.run();
  const StormOutcome again = EngineStorm{engine}.run();
  if (again.seconds < best.seconds) best = again;
  return best;
}

}  // namespace

int main() {
  bench::BenchReport report{"runtime_scaling", 2015};
  bench::banner("Runtime scaling: serial vs sharded parallel fleet generation",
                "Section 3.3.1 methodology; runtime/ subsystem check", 2015);

  const topology::Fleet fleet = workload::build_fleet_experiment_fleet();
  workload::FleetGenConfig cfg;
  // The Table 3 workload at a shorter horizon: enough work for stable
  // timings, small enough that the serial baseline stays a few seconds.
  cfg.horizon = core::Duration::hours(6);
  cfg.epoch = core::Duration::minutes(30);
  cfg.seed = 2015;
  cfg.rate_scale = 0.005;
  const workload::FleetFlowGenerator gen{fleet, cfg};
  std::printf("fleet: %zu hosts; horizon: 6 h\n\n", fleet.num_hosts());

  // Serial reference: the plain FleetFlowGenerator::generate path.
  monitoring::FbflowPipeline serial_pipe{fleet, monitoring::kDefaultSamplingRate,
                                         core::RngStream{99}};
  const RunResult serial = measure(
      [&](const workload::FleetFlowGenerator::Visit& v) { gen.generate(v); }, serial_pipe);
  std::printf("%-10s  %10s  %10s  %12s  %14s\n", "config", "wall (s)", "speedup",
              "flows", "sampled hdrs");
  std::printf("%-10s  %10.3f  %10s  %12lld  %14zu\n", "serial", serial.seconds, "1.00x",
              static_cast<long long>(serial.flows), serial.samples);

  int mismatches = 0;
  double speedup4 = 0.0;
  for (const int workers : {1, 2, 4, 8}) {
    runtime::ThreadPool pool{workers};
    const runtime::ShardedFleetRunner runner{gen, pool};
    monitoring::FbflowPipeline pipe{fleet, monitoring::kDefaultSamplingRate,
                                    core::RngStream{99}};
    const RunResult r = measure(
        [&](const workload::FleetFlowGenerator::Visit& v) { runner.stream(v); }, pipe);
    const double speedup = serial.seconds / r.seconds;
    if (workers == 4) speedup4 = speedup;
    std::printf("%-10s%2d  %8.3f  %9.2fx  %12lld  %14zu\n", "workers=", workers,
                r.seconds, speedup, static_cast<long long>(r.flows), r.samples);
    mismatches += compare(serial, r, workers);
  }

  std::printf("\n");
  if (mismatches == 0) {
    std::printf("output equivalence: PASS — every worker count reproduced the serial "
                "locality matrix, flow count, and byte total bit-for-bit\n");
  } else {
    std::printf("output equivalence: FAIL — %d mismatches\n", mismatches);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4) {
    std::printf("speedup gate (>=2x on 4 workers, %u cores): %s (%.2fx)\n", hw,
                speedup4 >= 2.0 ? "PASS" : "FAIL", speedup4);
    if (speedup4 < 2.0) ++mismatches;
  } else {
    std::printf("speedup gate: skipped — only %u core(s) available, a >=2x speedup "
                "is not demonstrable on this machine (equivalence still checked)\n",
                hw);
  }

  // Section 2: the event-engine storm. Single-threaded by construction
  // (one Simulator), so the >=1.5x gate holds at FBDCSIM_THREADS=1 and is
  // unaffected by pool width.
  std::printf("\nevent-engine storm: reference heap engine vs bucketed scheduler\n");
  const StormOutcome ref = measure_storm(sim::Simulator::Engine::kReference);
  const StormOutcome buck = measure_storm(sim::Simulator::Engine::kBucketed);
  const double ref_eps = static_cast<double>(ref.events) / ref.seconds;
  const double buck_eps = static_cast<double>(buck.events) / buck.seconds;
  const double engine_speedup = buck_eps / ref_eps;
  std::printf("%-10s  %10s  %14s  %14s  %10s\n", "engine", "wall (s)", "events",
              "events/sec", "checksum");
  std::printf("%-10s  %10.3f  %14llu  %14.0f  %10llx\n", "reference", ref.seconds,
              static_cast<unsigned long long>(ref.events), ref_eps,
              static_cast<unsigned long long>(ref.checksum));
  std::printf("%-10s  %10.3f  %14llu  %14.0f  %10llx\n", "bucketed", buck.seconds,
              static_cast<unsigned long long>(buck.events), buck_eps,
              static_cast<unsigned long long>(buck.checksum));
  if (buck.checksum != ref.checksum || buck.events != ref.events ||
      buck.pending != ref.pending) {
    std::printf("engine equivalence: FAIL — storm outcomes differ between engines\n");
    ++mismatches;
  } else {
    std::printf("engine equivalence: PASS — identical checksum, executed events, and "
                "pending events on both engines\n");
  }
  std::printf("engine speedup gate (>=1.5x events/sec): %s (%.2fx)\n",
              engine_speedup >= 1.5 ? "PASS" : "FAIL", engine_speedup);
  if (engine_speedup < 1.5) ++mismatches;
  report.add_extra("engine_reference_events_per_sec", ref_eps);
  report.add_extra("engine_bucketed_events_per_sec", buck_eps);
  report.add_extra("engine_speedup", engine_speedup);

  report.set_status(mismatches);
  return mismatches;
}
