// Runtime scaling: serial vs ShardedFleetRunner wall-clock for the Table 3
// fleet workload, with bit-identity of the resulting locality matrix
// asserted for every worker count. Exits non-zero on any mismatch, or — on
// hardware with at least 4 cores — if 4 workers fail to reach a 2x speedup.
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "common.h"
#include "fbdcsim/monitoring/fbflow.h"
#include "fbdcsim/runtime/sharded_fleet.h"
#include "fbdcsim/workload/fleet_flows.h"

using namespace fbdcsim;

namespace {

struct RunResult {
  double seconds{0.0};
  std::int64_t flows{0};
  double bytes{0.0};
  std::size_t samples{0};
  monitoring::ScubaTable::LocalityBytes locality{};
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

using Feed = std::function<void(const workload::FleetFlowGenerator::Visit&)>;

RunResult measure(const Feed& feed, monitoring::FbflowPipeline& fbflow) {
  RunResult r;
  std::int64_t flows = 0;
  double bytes = 0.0;
  const double t0 = now_seconds();
  feed([&](const core::FlowRecord& flow) {
    fbflow.offer_flow(flow);
    bytes += static_cast<double>(flow.bytes.count_bytes());
    ++flows;
  });
  r.seconds = now_seconds() - t0;
  r.flows = flows;
  r.bytes = bytes;
  r.samples = fbflow.scuba().size();
  r.locality = fbflow.scuba().locality_bytes(fbflow.sampling_rate());
  return r;
}

int compare(const RunResult& ref, const RunResult& got, int workers) {
  int mismatches = 0;
  if (got.flows != ref.flows) {
    std::printf("MISMATCH (%d workers): flow count %lld vs %lld\n", workers,
                static_cast<long long>(got.flows), static_cast<long long>(ref.flows));
    ++mismatches;
  }
  if (got.bytes != ref.bytes) {
    std::printf("MISMATCH (%d workers): byte total %.17g vs %.17g\n", workers,
                got.bytes, ref.bytes);
    ++mismatches;
  }
  if (got.samples != ref.samples) {
    std::printf("MISMATCH (%d workers): sampled headers %zu vs %zu\n", workers,
                got.samples, ref.samples);
    ++mismatches;
  }
  for (int l = 0; l < core::kNumLocalities; ++l) {
    if (got.locality.bytes[l] != ref.locality.bytes[l]) {
      std::printf("MISMATCH (%d workers): locality[%d] %.17g vs %.17g\n", workers, l,
                  got.locality.bytes[l], ref.locality.bytes[l]);
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main() {
  bench::BenchReport report{"runtime_scaling", 2015};
  bench::banner("Runtime scaling: serial vs sharded parallel fleet generation",
                "Section 3.3.1 methodology; runtime/ subsystem check", 2015);

  const topology::Fleet fleet = workload::build_fleet_experiment_fleet();
  workload::FleetGenConfig cfg;
  // The Table 3 workload at a shorter horizon: enough work for stable
  // timings, small enough that the serial baseline stays a few seconds.
  cfg.horizon = core::Duration::hours(6);
  cfg.epoch = core::Duration::minutes(30);
  cfg.seed = 2015;
  cfg.rate_scale = 0.005;
  const workload::FleetFlowGenerator gen{fleet, cfg};
  std::printf("fleet: %zu hosts; horizon: 6 h\n\n", fleet.num_hosts());

  // Serial reference: the plain FleetFlowGenerator::generate path.
  monitoring::FbflowPipeline serial_pipe{fleet, monitoring::kDefaultSamplingRate,
                                         core::RngStream{99}};
  const RunResult serial = measure(
      [&](const workload::FleetFlowGenerator::Visit& v) { gen.generate(v); }, serial_pipe);
  std::printf("%-10s  %10s  %10s  %12s  %14s\n", "config", "wall (s)", "speedup",
              "flows", "sampled hdrs");
  std::printf("%-10s  %10.3f  %10s  %12lld  %14zu\n", "serial", serial.seconds, "1.00x",
              static_cast<long long>(serial.flows), serial.samples);

  int mismatches = 0;
  double speedup4 = 0.0;
  for (const int workers : {1, 2, 4, 8}) {
    runtime::ThreadPool pool{workers};
    const runtime::ShardedFleetRunner runner{gen, pool};
    monitoring::FbflowPipeline pipe{fleet, monitoring::kDefaultSamplingRate,
                                    core::RngStream{99}};
    const RunResult r = measure(
        [&](const workload::FleetFlowGenerator::Visit& v) { runner.stream(v); }, pipe);
    const double speedup = serial.seconds / r.seconds;
    if (workers == 4) speedup4 = speedup;
    std::printf("%-10s%2d  %8.3f  %9.2fx  %12lld  %14zu\n", "workers=", workers,
                r.seconds, speedup, static_cast<long long>(r.flows), r.samples);
    mismatches += compare(serial, r, workers);
  }

  std::printf("\n");
  if (mismatches == 0) {
    std::printf("output equivalence: PASS — every worker count reproduced the serial "
                "locality matrix, flow count, and byte total bit-for-bit\n");
  } else {
    std::printf("output equivalence: FAIL — %d mismatches\n", mismatches);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4) {
    std::printf("speedup gate (>=2x on 4 workers, %u cores): %s (%.2fx)\n", hw,
                speedup4 >= 2.0 ? "PASS" : "FAIL", speedup4);
    if (speedup4 < 2.0) ++mismatches;
  } else {
    std::printf("speedup gate: skipped — only %u core(s) available, a >=2x speedup "
                "is not demonstrable on this machine (equivalence still checked)\n",
                hw);
  }
  report.set_status(mismatches);
  return mismatches;
}
