// Figure 13: Hadoop traffic is NOT ON/OFF at 15-ms or 100-ms binning —
// unlike the literature's finding (Benson et al.). The bench prints the
// binned arrival time series and idle-bin fractions, and contrasts the
// literature baseline generator which IS ON/OFF by construction.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/packet_stats.h"
#include "fbdcsim/workload/baseline.h"

using namespace fbdcsim;

namespace {

void print_bins(const char* label, const std::vector<std::int64_t>& counts,
                std::size_t max_rows) {
  std::printf("%s\n", label);
  for (std::size_t i = 0; i < std::min(counts.size(), max_rows); ++i) {
    std::printf("  bin %4zu: %6lld\n", i, static_cast<long long>(counts[i]));
  }
}

}  // namespace

int main() {
  bench::BenchReport report{"fig13_arrival_pattern"};
  bench::banner("Figure 13: Hadoop packet arrivals are not ON/OFF",
                "Figure 13, Section 6.2");
  bench::BenchEnv env;

  const bench::RoleTrace trace = env.capture(core::HostRole::kHadoop, 12);
  const auto bins15 = analysis::arrival_counts(trace.result.trace, core::Duration::millis(15));
  const auto bins100 =
      analysis::arrival_counts(trace.result.trace, core::Duration::millis(100));

  print_bins("\n(a) packets per 15-ms bin (first 40 bins):", bins15, 40);
  print_bins("\n(b) packets per 100-ms bin (first 40 bins):", bins100, 40);

  const double idle15 = analysis::idle_bin_fraction(trace.result.trace, core::Duration::millis(15));
  const double idle100 =
      analysis::idle_bin_fraction(trace.result.trace, core::Duration::millis(100));

  // Contrast: the prior-literature ON/OFF generator on the same fleet.
  const auto lit = workload::generate_literature_trace(
      env.fleet(), trace.host, core::Duration::seconds(12));
  const double lit_idle15 = analysis::idle_bin_fraction(lit, core::Duration::millis(15));

  std::printf("\nidle-bin fraction @15ms: Facebook-style Hadoop %.3f vs literature ON/OFF %.3f\n",
              idle15, lit_idle15);
  std::printf("idle-bin fraction @100ms: %.3f\n", idle100);

  // §6.2's second claim: per-destination traffic IS ON/OFF even though the
  // aggregate is continuous.
  const auto per_dest = analysis::per_destination_idle_fractions(
      trace.result.trace, trace.self, core::Duration::millis(15));
  std::printf("per-destination idle fraction @15ms: median %.2f p90 %.2f (%zu dests)\n",
              per_dest.median(), per_dest.p90(), per_dest.size());
  std::printf(
      "\nPaper Figure 13 shape: continuous arrivals at both timescales (no\n"
      "ON/OFF gaps), attributed to the large number of concurrent\n"
      "destinations; per-destination traffic DOES show ON/OFF behaviour.\n");
  return 0;
}
