// Figure 9: cache follower flow sizes aggregated per destination *host*.
// The wide 5-tuple distribution of Figure 6b collapses into a tight
// distribution at host level — the signature of user-request load balancing
// across all Web servers (Section 5.1).
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/locality.h"

using namespace fbdcsim;

int main() {
  bench::BenchReport report{"fig9_cache_host_flows"};
  bench::banner("Figure 9: cache follower per-destination-host flow size",
                "Figure 9, Section 5.1");
  bench::BenchEnv env;

  const bench::RoleTrace trace = env.capture(core::HostRole::kCacheFollower, 20);
  const auto flows = analysis::FlowTable::outbound_flows(trace.result.trace, trace.self);

  core::Cdf by_flow;
  for (const auto& f : flows) by_flow.add(static_cast<double>(f.payload_bytes));

  const auto by_host = analysis::aggregate(flows, analysis::AggLevel::kHost, env.resolver());
  core::Cdf host_cdf;
  for (const auto& a : by_host) host_cdf.add(static_cast<double>(a.payload_bytes));

  bench::print_cdf("per 5-tuple flow size (KB)", by_flow, 1e-3, "KB");
  std::printf("\n");
  bench::print_cdf("per destination-host flow size (KB)", host_cdf, 1e-3, "KB");

  const double spread_flow = by_flow.p90() / std::max(1.0, by_flow.p10());
  const double spread_host = host_cdf.p90() / std::max(1.0, host_cdf.p10());
  std::printf("\np90/p10 spread: 5-tuple %.1fx -> host %.1fx (paper: wide -> tight ~1 MB)\n",
              spread_flow, spread_host);
  std::printf("destination hosts: %zu\n", by_host.size());
  return 0;
}
