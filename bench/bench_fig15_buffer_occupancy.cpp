// Figure 15: correlating RSW shared-buffer occupancy (sampled every 10 us),
// link utilization, and egress drops over a diurnal day, for a Web-server
// rack and a Cache rack.
//
// A full 24-hour packet simulation is as intractable for us as it was for
// the paper's authors to capture (their buffer data comes from FBOSS
// counters, not traces). We reproduce the day by simulating a packet-level
// window at each hour with the service rates modulated by the diurnal
// profile of Section 4.1 (~2x peak-to-trough), which preserves exactly what
// the figure demonstrates: standing buffer occupancy at ~1% utilization,
// diurnal correlation of occupancy/utilization/drops, and the Web rack
// running much closer to the buffer limit than the Cache rack.
//
// Occupancy is driven by the observability layer's TimeSeriesProbe (the
// same 10-us cadence the ad-hoc BufferOccupancySampler used), so the bench
// exercises exactly the path DESIGN.md §11 documents: the per-bin means
// give the hour's median occupancy, the bin maxima its peak, and the
// peak-hour series lands in the report's "timeseries" section.
//
// A closing section reruns the diurnal-peak window under the flow-level
// TCP engine with a `cc` column (NewReno vs DCTCP, DESIGN.md §12), asking
// the paper's §7 buffer-sharing question of Figure 15's own scenario.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "common.h"
#include "fbdcsim/core/distributions.h"

using namespace fbdcsim;

namespace {

struct HourStats {
  double median_occ{0};
  double max_occ{0};
  double uplink_util{0};
  std::int64_t drops{0};
  /// The occupancy series (bytes), retained so the peak hour can be
  /// attached to the bench report.
  std::vector<telemetry::SeriesSnapshot> timeseries;
};

HourStats run_hour(const topology::Fleet& fleet, core::HostRole role, double diurnal_factor,
                   int hour,
                   const std::function<void(workload::RackSimConfig&)>& tweak = {}) {
  workload::RackSimConfig cfg =
      workload::default_rack_config(fleet, role, core::Duration::seconds(2));
  cfg.mirror_whole_rack = false;             // no trace needed, just the switch
  cfg.background_rate_scale = 1.0;           // whole rack at full (scaled) rate
  cfg.capture_memory_bytes = 64;             // discard the trace (not used)
  cfg.seed = 1000 + static_cast<std::uint64_t>(hour);
  cfg.mix = workload::scale_rates(cfg.mix, diurnal_factor);
  // The shared pool available to dynamic sharing after per-port
  // reservations — commodity ToR chips reserve most of their ~12 MB for
  // guaranteed per-queue minimums, leaving a small contended shared pool,
  // which is the quantity FBOSS's occupancy counters watch.
  cfg.rsw.buffer_total = core::DataSize::kilobytes(32);
  cfg.rsw.dt_alpha = 2.0;
  // Occupancy comes from the probe. FBDCSIM_OBS may refine the knobs
  // (e.g. dump mode); the bench needs at least `on`.
  cfg.obs = telemetry::obs_config_from_env();
  if (!cfg.obs.enabled()) cfg.obs.mode = telemetry::ObsConfig::Mode::kOn;
  if (tweak) tweak(cfg);

  workload::RackSimulation sim{fleet, cfg};
  auto result = sim.run();

  HourStats out;
  const double buffer_bytes = static_cast<double>(cfg.rsw.buffer_total.count_bytes());
  if (const telemetry::SeriesSnapshot* occ =
          telemetry::find_series(result.timeseries, "switch.buffer_occupancy_bytes")) {
    core::Cdf bin_means;
    std::int64_t max_bytes = 0;
    for (const telemetry::SeriesBin& b : occ->bins) {
      if (b.count == 0) continue;
      bin_means.add(static_cast<double>(b.sum) / static_cast<double>(b.count) /
                    buffer_bytes);
      max_bytes = std::max(max_bytes, b.max);
    }
    out.median_occ = bin_means.median();
    out.max_occ = static_cast<double>(max_bytes) / buffer_bytes;
  }
  out.timeseries = std::move(result.timeseries);
  const double seconds = (result.capture_end.count_nanos()) / 1e9;
  const double uplink_capacity_bytes =
      4.0 * 10e9 / 8.0 * seconds;  // 4 x 10 Gbps uplinks over the whole run
  out.uplink_util = static_cast<double>(result.uplink.tx_bytes) / uplink_capacity_bytes;
  out.drops = result.uplink.dropped_packets + result.downlinks.dropped_packets;
  return out;
}

void run_rack(const char* name, const char* report_key, const topology::Fleet& fleet,
              core::HostRole role, bench::BenchReport& report) {
  core::DiurnalProfile diurnal{{.peak_to_trough = 2.0, .peak_hour = 20.0,
                                .weekend_factor = 1.0}};
  std::printf("\n-- %s rack: one 2-s packet-level window per hour --\n", name);
  std::printf("%4s  %8s  %12s  %9s  %9s  %7s\n", "hour", "diurnal", "median.occ",
              "max.occ", "util", "drops");
  for (int hour = 0; hour < 24; ++hour) {
    const double factor = diurnal.factor_at(core::Duration::hours(hour));
    HourStats s = run_hour(fleet, role, factor, hour);
    std::printf("%4d  %8.2f  %12.4f  %9.3f  %8.2f%%  %7lld\n", hour, factor, s.median_occ,
                s.max_occ, s.uplink_util * 100.0, static_cast<long long>(s.drops));
    if (hour == 20) {
      // The diurnal peak: the hour Figure 15 cares most about.
      report.add_timeseries(report_key, s.timeseries);
      report.add_extra(std::string{"peak_median_occ_"} + report_key, s.median_occ);
      report.add_extra(std::string{"peak_max_occ_"} + report_key, s.max_occ);
    }
  }
}

}  // namespace

int main() {
  bench::BenchReport report{"fig15_buffer_occupancy"};
  bench::banner("Figure 15: buffer occupancy, utilization, and drops over a day",
                "Figure 15, Section 6.3");
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();

  run_rack("Web-server", "web_peak", fleet, core::HostRole::kWeb, report);
  run_rack("Cache", "cache_peak", fleet, core::HostRole::kCacheFollower, report);

  // --- Peak hour by transport / congestion control ------------------------
  // The paper's §7 buffer-sharing question asked of Figure 15's own
  // scenario (DESIGN.md §12): rerun the diurnal-peak window with the
  // flow-level TCP engine under both congestion-control laws. The scripted
  // row replays the peak row of the tables above; the dctcp row's marking
  // threshold auto-derives to buffer/4, so its occupancy column should
  // fall toward K wherever the emergent senders actually contend for the
  // pool, while utilization holds.
  {
    core::DiurnalProfile diurnal{{.peak_to_trough = 2.0, .peak_hour = 20.0,
                                  .weekend_factor = 1.0}};
    const double peak_factor = diurnal.factor_at(core::Duration::hours(20));
    std::printf("\n-- Peak hour (20:00), transport x congestion control --\n");
    std::printf("%-10s %-9s %-6s %12s %9s %9s %7s\n", "rack", "transport", "cc",
                "median.occ", "max.occ", "util", "drops");
    struct Variant {
      const char* transport;
      const char* cc;
    };
    constexpr Variant kVariants[] = {
        {"scripted", "-"}, {"tcp", "reno"}, {"tcp", "dctcp"}};
    for (const auto& [rack_name, report_key, role] :
         {std::tuple{"Web-server", "web_peak", core::HostRole::kWeb},
          {"Cache", "cache_peak", core::HostRole::kCacheFollower}}) {
      for (const Variant& v : kVariants) {
        HourStats s = run_hour(fleet, role, peak_factor, 20,
                               [&v](workload::RackSimConfig& cfg) {
                                 if (std::string_view{v.transport} != "tcp") return;
                                 cfg.transport = workload::Transport::kTcp;
                                 if (std::string_view{v.cc} == "dctcp") {
                                   cfg.tcp.cc = transport::CongestionControl::kDctcp;
                                 }
                               });
        std::printf("%-10s %-9s %-6s %12.4f %9.3f %8.2f%% %7lld\n", rack_name,
                    v.transport, v.cc, s.median_occ, s.max_occ, s.uplink_util * 100.0,
                    static_cast<long long>(s.drops));
        if (std::string_view{v.transport} == "tcp") {
          report.add_extra(
              std::string{"peak_max_occ_"} + report_key + "_" + v.cc, s.max_occ);
          report.add_extra(
              std::string{"peak_drops_"} + report_key + "_" + v.cc,
              static_cast<std::int64_t>(s.drops));
        }
      }
    }
  }

  std::printf(
      "\nPaper Figure 15 shape: Web rack max occupancy approaches the\n"
      "configured limit for most of the day despite ~1%% utilization; all\n"
      "three series share the diurnal swing; the Cache rack has higher\n"
      "utilization but lower occupancy and drops.\n");
  return 0;
}
