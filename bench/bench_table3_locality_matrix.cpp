// Table 3: fleet-wide traffic locality over a 24-hour period, as measured
// by the Fbflow pipeline (1:30,000 sampled packet headers, tagged with
// topology metadata, aggregated in the Scuba-style analytic table).
//
// The whole fleet generates flow records for 24 hours; Fbflow thins them
// into samples; the locality matrix and per-cluster-type shares are then
// Scuba group-by queries, exactly the paper's methodology (§3.3.1, §4.3).
#include <cstdio>

#include "common.h"
#include "fbdcsim/monitoring/fbflow.h"
#include "fbdcsim/runtime/sharded_fleet.h"
#include "fbdcsim/workload/fleet_flows.h"

using namespace fbdcsim;

int main() {
  bench::BenchReport report{"table3_locality_matrix"};
  bench::banner("Table 3: traffic locality by cluster type (24-hour Fbflow view)",
                "Table 3, Section 4.3");

  const topology::Fleet fleet = workload::build_fleet_experiment_fleet();
  std::printf("fleet: %zu hosts, %zu clusters\n", fleet.num_hosts(), fleet.clusters().size());

  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::hours(24);
  cfg.epoch = core::Duration::minutes(30);
  cfg.seed = 2015;
  // Per-host byte rates are scaled down uniformly: locality *shares* are
  // scale-free, and this keeps the sampled-header volume (and the bench's
  // memory) proportional to the scaled fleet rather than to Facebook's.
  cfg.rate_scale = 0.005;
  const workload::FleetFlowGenerator gen{fleet, cfg};

  monitoring::FbflowPipeline fbflow{fleet, monitoring::kDefaultSamplingRate,
                                    core::RngStream{99}};
  // Generate in parallel; the runner merges shards in canonical host order,
  // so the pipeline sees the exact serial flow stream.
  runtime::ThreadPool pool;
  const runtime::ShardedFleetRunner runner{gen, pool};
  std::int64_t flows = 0;
  runner.stream([&](const core::FlowRecord& flow) {
    fbflow.offer_flow(flow);
    ++flows;
  });
  std::printf("flows generated: %lld; sampled headers: %zu; tag failures: %lld\n\n",
              static_cast<long long>(flows), fbflow.scuba().size(),
              static_cast<long long>(fbflow.tag_failures()));

  const auto print_row = [](const char* name,
                            const monitoring::ScubaTable::LocalityBytes& bytes) {
    const auto pct = bytes.percentages();
    std::printf("%-10s  %8.1f  %8.1f  %8.1f  %8.1f\n", name, pct[0], pct[1], pct[2], pct[3]);
  };

  std::printf("%-10s  %8s  %8s  %8s  %8s\n", "Locality", "Rack", "Cluster", "DC", "Inter-DC");
  const auto all = fbflow.scuba().locality_bytes(fbflow.sampling_rate());
  print_row("All", all);

  const struct {
    const char* name;
    topology::ClusterType type;
  } kTypes[] = {
      {"Hadoop", topology::ClusterType::kHadoop},
      {"FE", topology::ClusterType::kFrontend},
      {"Svc.", topology::ClusterType::kService},
      {"Cache", topology::ClusterType::kCache},
      {"DB", topology::ClusterType::kDatabase},
  };
  for (const auto& t : kTypes) {
    print_row(t.name,
              fbflow.scuba().locality_bytes_for_cluster_type(fleet, t.type,
                                                             fbflow.sampling_rate()));
  }

  std::printf("\nPercentage of total traffic by source cluster type:\n");
  const auto by_type = fbflow.scuba().bytes_by_cluster_type(fleet, fbflow.sampling_rate());
  double total = 0.0;
  for (const auto& [type, bytes] : by_type) total += bytes;
  for (const auto& [type, bytes] : by_type) {
    std::printf("  %-10s %6.1f%%\n", topology::to_string(type), bytes / total * 100.0);
  }

  std::printf(
      "\nPaper Table 3 for comparison (percent by row):\n"
      "All:    12.9 / 57.5 / 11.9 / 17.7\n"
      "Hadoop: 13.3 / 80.9 /  3.3 /  2.5\n"
      "FE:      2.7 / 81.3 /  7.3 /  8.6\n"
      "Svc.:   12.1 / 56.3 / 15.7 / 15.9\n"
      "Cache:   0.2 / 13.0 / 40.7 / 46.1\n"
      "DB:      0.0 / 30.7 / 34.5 / 34.8\n"
      "Shares: Hadoop 23.7, FE 21.5, Svc 18.0, Cache 10.2, DB 5.2\n");
  return 0;
}
