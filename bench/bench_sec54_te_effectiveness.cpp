// Section 5.4: how much traffic could a reactive heavy-hitter TE scheme
// actually treat? For each aggregation level and interval, the scheme
// "treats" the previous interval's heavy hitters; we report the fraction
// of bytes that ride treated keys, against the oracle (perfect-prediction)
// bound and Benson et al.'s 35% workability threshold.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/te_eval.h"

using namespace fbdcsim;

namespace {

void print_panel(const char* name, const bench::RoleTrace& trace,
                 const analysis::AddrResolver& resolver) {
  std::printf("\n-- %s --\n", name);
  std::printf("%-6s %-7s  %10s  %10s  %8s  %s\n", "agg", "intvl", "predicted", "oracle",
              "treated", "workable(>=35%)");
  const struct {
    const char* name;
    analysis::AggLevel level;
  } kLevels[] = {{"flows", analysis::AggLevel::kFlow},
                 {"hosts", analysis::AggLevel::kHost},
                 {"racks", analysis::AggLevel::kRack}};
  const struct {
    const char* name;
    core::Duration interval;
  } kIntervals[] = {{"10-ms", core::Duration::millis(10)},
                    {"100-ms", core::Duration::millis(100)},
                    {"1-s", core::Duration::seconds(1)}};

  const core::Duration span = trace.result.capture_end - trace.result.capture_start;
  for (const auto& level : kLevels) {
    for (const auto& interval : kIntervals) {
      const auto eval = analysis::evaluate_reactive_te(
          trace.result.trace, trace.self, resolver, level.level, interval.interval,
          trace.result.capture_start, span);
      std::printf("%-6s %-7s  %9.1f%%  %9.1f%%  %8.1f  %s\n", level.name, interval.name,
                  eval.predicted_byte_coverage * 100.0, eval.oracle_byte_coverage * 100.0,
                  eval.mean_treated_keys, eval.meets_benson_threshold() ? "yes" : "no");
    }
  }
}

}  // namespace

int main() {
  bench::BenchReport report{"sec54_te_effectiveness"};
  bench::banner("Section 5.4: reactive heavy-hitter TE effectiveness",
                "Section 5.4's implications for traffic engineering");
  bench::BenchEnv env;

  print_panel("Web server", env.capture(core::HostRole::kWeb, 8), env.resolver());
  print_panel("Cache follower", env.capture(core::HostRole::kCacheFollower, 8),
              env.resolver());

  std::printf(
      "\nPaper's conclusion: only rack-level heavy hitters over 100-ms-plus\n"
      "intervals reach Benson et al.'s 35%% predictability threshold for Web\n"
      "and cache servers; finer aggregations leave TE with little to act on\n"
      "despite the (by construction) >=50%% oracle bound.\n");
  return 0;
}
