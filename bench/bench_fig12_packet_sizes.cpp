// Figure 12: packet size distribution per host type. Hadoop is bimodal
// (ACK or MTU); every other service has a small median (<200 B) despite
// 10-Gbps links — so packet *rates* stay high even at low utilization
// (Section 6.1).
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/packet_stats.h"

using namespace fbdcsim;

int main() {
  bench::BenchReport report{"fig12_packet_sizes"};
  bench::banner("Figure 12: packet size distribution by host type",
                "Figure 12, Section 6.1");
  bench::BenchEnv env;

  const struct {
    const char* name;
    core::HostRole role;
  } kRoles[] = {
      {"Web Server", core::HostRole::kWeb},
      {"Hadoop", core::HostRole::kHadoop},
      {"Cache Leader", core::HostRole::kCacheLeader},
      {"Cache Follower", core::HostRole::kCacheFollower},
  };

  std::vector<core::Cdf> cdfs;
  std::vector<std::string> names;
  for (const auto& r : kRoles) {
    const bench::RoleTrace trace = env.capture(r.role, 8);
    cdfs.push_back(analysis::packet_size_cdf(trace.result.trace));
    names.emplace_back(r.name);
  }
  std::vector<const core::Cdf*> ptrs;
  for (const auto& c : cdfs) ptrs.push_back(&c);
  bench::print_cdf_table("\non-wire frame bytes", names, ptrs, 1.0, "B");

  std::printf("\nmedians: ");
  for (std::size_t i = 0; i < cdfs.size(); ++i) {
    std::printf("%s %.0fB  ", names[i].c_str(), cdfs[i].median());
  }
  // The packet-rate observation of §6.1: a cache server at 10% utilization
  // with ~175 B median packets generates ~85% of the packet rate of a fully
  // utilized link with MTU packets.
  const double cache_median = cdfs[3].median();
  std::printf("\npacket-rate amplification at cache median size: %.0f%% of MTU pps at 10%% util\n",
              0.10 * 1514.0 / cache_median * 100.0);
  std::printf(
      "\nPaper Figure 12 shape: Hadoop bimodal at ACK/MTU; all other services\n"
      "median <200 B with only 5-10%% of packets at full MTU.\n");
  return 0;
}
