// Figure 17: concurrent (5-ms) heavy-hitter racks — the destination racks
// that make up the majority of a window's bytes. Few even when hundreds of
// racks are touched, and impermanent (which is what makes hybrid
// circuit-switched fabrics hard for Frontend clusters, §6.4).
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/concurrency.h"

using namespace fbdcsim;

namespace {

void print_panel(const char* name, const bench::RoleTrace& trace,
                 const analysis::AddrResolver& resolver) {
  const auto cdfs =
      analysis::concurrent_heavy_hitter_racks(trace.result.trace, trace.self, resolver);
  std::printf("\n-- %s: heavy-hitter racks per 5-ms window --\n", name);
  bench::print_cdf_table("racks",
                         {"Intra-Cluster", "Intra-DC", "Inter-DC", "All"},
                         {&cdfs.intra_cluster, &cdfs.intra_datacenter,
                          &cdfs.inter_datacenter, &cdfs.all});
}

}  // namespace

int main() {
  bench::BenchReport report{"fig17_concurrent_hh_racks"};
  bench::banner("Figure 17: concurrent (5-ms) heavy-hitter racks",
                "Figure 17, Section 6.4");
  bench::BenchEnv env;

  print_panel("(a) Web server", env.capture(core::HostRole::kWeb, 8), env.resolver());
  print_panel("(b) Cache follower", env.capture(core::HostRole::kCacheFollower, 8),
              env.resolver());
  print_panel("(c) Cache leader", env.capture(core::HostRole::kCacheLeader, 8),
              env.resolver());

  std::printf(
      "\nPaper Figure 17: median heavy-hitter racks 6-8 for Web servers and\n"
      "cache leaders (max 20-30); ~29 for cache followers (tail ~50). Web and\n"
      "cache followers' heavy hitters are mostly inside their cluster; the\n"
      "leader shows the opposite.\n");
  return 0;
}
