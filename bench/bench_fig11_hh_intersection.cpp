// Figure 11: intersection between the heavy hitters of each 1/10/100-ms
// subinterval and those of its enclosing second — the paper's upper bound
// on how useful second-granularity traffic-engineering predictions can be.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/heavy_hitters.h"

using namespace fbdcsim;

namespace {

void print_panel(const char* name, const bench::RoleTrace& trace,
                 const analysis::AddrResolver& resolver) {
  std::printf("\n-- %s: %% of subinterval heavy hitters heavy over the enclosing second --\n",
              name);
  std::printf("%-6s %-7s  %8s %8s %8s\n", "agg", "bin", "p10", "p50", "p90");
  const struct {
    const char* name;
    analysis::AggLevel level;
  } kLevels[] = {{"flows", analysis::AggLevel::kFlow},
                 {"hosts", analysis::AggLevel::kHost},
                 {"racks", analysis::AggLevel::kRack}};
  const struct {
    const char* name;
    core::Duration bin;
  } kBins[] = {{"1-ms", core::Duration::millis(1)},
               {"10-ms", core::Duration::millis(10)},
               {"100-ms", core::Duration::millis(100)}};

  const core::Duration span = trace.result.capture_end - trace.result.capture_start;
  for (const auto& level : kLevels) {
    const auto per_second = analysis::bin_outbound(trace.result.trace, trace.self, resolver,
                                                   level.level, core::Duration::seconds(1),
                                                   trace.result.capture_start, span);
    for (const auto& bin : kBins) {
      const auto sub =
          analysis::bin_outbound(trace.result.trace, trace.self, resolver, level.level,
                                 bin.bin, trace.result.capture_start, span);
      const auto inter = analysis::hh_second_intersection(sub, per_second);
      core::Cdf cdf;
      cdf.add_all(inter);
      std::printf("%-6s %-7s  %8.1f %8.1f %8.1f\n", level.name, bin.name, cdf.p10(),
                  cdf.median(), cdf.p90());
    }
  }
}

}  // namespace

int main() {
  bench::BenchReport report{"fig11_hh_intersection"};
  bench::banner("Figure 11: heavy hitters of subintervals vs enclosing second",
                "Figure 11, Section 5.3");
  bench::BenchEnv env;

  print_panel("(a) Web server", env.capture(core::HostRole::kWeb, 10), env.resolver());
  print_panel("(b) Cache follower", env.capture(core::HostRole::kCacheFollower, 10),
              env.resolver());

  std::printf(
      "\nPaper Figure 11 shape: 5-tuple predictive power poor (<10-15%%);\n"
      "rack-level much better (majority overlap at 100 ms); host-level useful\n"
      "mainly for Web servers.\n");
  return 0;
}
