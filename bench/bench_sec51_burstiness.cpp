// Section 5.1: "regardless of flow size or length, flows tend to be
// internally bursty" — most flows are active only in distinct
// millisecond-scale intervals with large gaps. Reports per-flow duty
// cycles (fraction of the flow's lifetime with any packet, 1-ms bins) and
// packet-train statistics (Kapoor et al.) for cache and Web hosts.
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/burstiness.h"

using namespace fbdcsim;

namespace {

void print_panel(const char* name, const bench::RoleTrace& trace) {
  const auto duty = analysis::flow_duty_cycles(trace.result.trace, trace.self);
  std::printf("\n-- %s --\n", name);
  bench::print_cdf("per-flow duty cycle (active 1-ms bins / lifetime bins)", duty);

  const auto trains = analysis::packet_trains(trace.result.trace, trace.self);
  std::printf("packet trains (gap > 20 us ends a train): %zu trains\n",
              trains.packets_per_train.size());
  std::printf("  packets/train: med %.0f p90 %.0f | bytes/train: med %.0f p90 %.0f\n",
              trains.packets_per_train.median(), trains.packets_per_train.p90(),
              trains.bytes_per_train.median(), trains.bytes_per_train.p90());
  std::printf("  inter-train gap: med %.0f us, p90 %.0f us\n",
              trains.gap_between_trains_us.median(), trains.gap_between_trains_us.p90());
}

}  // namespace

int main() {
  bench::BenchReport report{"sec51_burstiness"};
  bench::banner("Section 5.1: intra-flow burstiness", "Section 5.1 (and Kapoor et al.)");
  bench::BenchEnv env;

  print_panel("Cache follower", env.capture(core::HostRole::kCacheFollower, 8));
  print_panel("Web server", env.capture(core::HostRole::kWeb, 8));

  std::printf(
      "\nPaper's claim: flows transmit in distinct millisecond-scale active\n"
      "intervals with large gaps (low duty cycles), regardless of flow size —\n"
      "which is why instantaneously heavy flows are rarely heavy over longer\n"
      "periods (Figures 10/11).\n");
  return 0;
}
