// Table 4: number and size (rate) of heavy hitters in 1-ms intervals for
// each host type, at flow / destination-host / destination-rack aggregation
// levels. A heavy-hitter set is the minimal set covering 50% of the
// interval's bytes (Section 5.3).
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/heavy_hitters.h"

using namespace fbdcsim;

int main() {
  bench::BenchReport report{"table4_heavy_hitters"};
  bench::banner("Table 4: heavy hitters in 1-ms intervals", "Table 4, Section 5.3");
  bench::BenchEnv env;

  const struct {
    const char* name;
    core::HostRole role;
  } kRows[] = {
      {"Web", core::HostRole::kWeb},
      {"Cache (f)", core::HostRole::kCacheFollower},
      {"Cache (l)", core::HostRole::kCacheLeader},
      {"Hadoop", core::HostRole::kHadoop},
  };
  const struct {
    const char* name;
    analysis::AggLevel level;
  } kLevels[] = {
      {"f", analysis::AggLevel::kFlow},
      {"h", analysis::AggLevel::kHost},
      {"r", analysis::AggLevel::kRack},
  };

  std::printf("\n%-10s %-3s  %6s %6s %6s   %9s %9s %9s\n", "Type", "agg", "n.p10", "n.p50",
              "n.p90", "Mbps.p10", "Mbps.p50", "Mbps.p90");
  for (const auto& row : kRows) {
    const bench::RoleTrace trace = env.capture(row.role, 10);
    for (const auto& level : kLevels) {
      const auto binned = analysis::bin_outbound(
          trace.result.trace, trace.self, env.resolver(), level.level,
          core::Duration::millis(1), trace.result.capture_start,
          trace.result.capture_end - trace.result.capture_start);
      const auto stats = analysis::hh_stats(binned);
      std::printf("%-10s %-3s  %6.0f %6.0f %6.0f   %9.2f %9.2f %9.2f\n", row.name, level.name,
                  stats.count_per_bin.p10(), stats.count_per_bin.median(),
                  stats.count_per_bin.p90(), stats.size_mbps.p10(), stats.size_mbps.median(),
                  stats.size_mbps.p90());
    }
  }

  std::printf(
      "\nPaper Table 4 for comparison (n p10/p50/p90, Mbps p10/p50/p90):\n"
      "Web       f 1/4/15 1.6/3.2/47.3 | h 1/4/14 1.6/3.3/48.1 | r 1/3/9 1.7/4.6/48.9\n"
      "Cache (f) f 8/19/35 5.1/9.0/22.5 | h 8/19/33 8.4/9.7/23.6 | r 7/15/23 8.4/14.5/31.0\n"
      "Cache (l) f 1/16/48 2.6/3.3/408 | h 1/8/25 3.2/8.1/414 | r 1/7/17 5/12.6/427\n"
      "Hadoop    f 1/2/3 4.6/12.7/1392 (same h/r)\n");
  return 0;
}
