// Figure 8: per-destination-rack flow rates and their stability.
//   (a) Hadoop: per-second per-rack rate distributions vary over orders of
//       magnitude from second to second.
//   (b) Cache follower: each second's distribution is tight and nearly
//       identical to the next (load balancing at work).
//   (c) Cache follower rates normalized to each rack's median: ~90% of
//       samples within a factor of two (the paper's stability headline).
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "fbdcsim/analysis/packet_stats.h"

using namespace fbdcsim;

namespace {

void print_per_second_spread(const char* name, const analysis::PerRackRates& rates) {
  std::printf("\n-- %s: per-second distribution of per-rack rates (KB/s) --\n", name);
  std::printf("%4s  %10s %10s %10s %12s\n", "sec", "p10", "p50", "p90", "max/min");
  const std::size_t seconds = rates.seconds;
  for (std::size_t sec = 0; sec < std::min<std::size_t>(seconds, 20); ++sec) {
    core::Cdf cdf;
    for (const auto& series : rates.bytes_per_sec) {
      if (series[sec] > 0) cdf.add(series[sec]);
    }
    if (cdf.empty()) continue;
    std::printf("%4zu  %10.2f %10.2f %10.2f %12.1f\n", sec, cdf.p10() / 1e3,
                cdf.median() / 1e3, cdf.p90() / 1e3,
                cdf.min() > 0 ? cdf.max() / cdf.min() : 0.0);
  }
}

}  // namespace

int main() {
  bench::BenchReport report{"fig8_rate_stability"};
  bench::banner("Figure 8: per-destination-rack flow rates and stability",
                "Figure 8, Section 5.2");
  bench::BenchEnv env;
  const std::int64_t seconds = 30;  // paper uses 120 1-s intervals

  const bench::RoleTrace hadoop = env.capture(core::HostRole::kHadoop, seconds);
  const auto hadoop_rates = analysis::per_rack_second_rates(
      hadoop.result.trace, hadoop.self, env.resolver(), hadoop.result.capture_start,
      hadoop.result.capture_end - hadoop.result.capture_start);
  print_per_second_spread("(a) Hadoop", hadoop_rates);
  const auto hadoop_stability = analysis::rate_stability(hadoop_rates);

  const bench::RoleTrace cache = env.capture(core::HostRole::kCacheFollower, seconds);
  const auto cache_rates = analysis::per_rack_second_rates(
      cache.result.trace, cache.self, env.resolver(), cache.result.capture_start,
      cache.result.capture_end - cache.result.capture_start);
  print_per_second_spread("(b) Cache follower", cache_rates);

  // (c) stability: normalized-to-median CDF over all racks.
  const auto stability = analysis::rate_stability(cache_rates);
  core::Cdf normalized;
  for (const auto& series : stability.normalized) {
    for (const double v : series) normalized.add(v);
  }
  std::printf("\n-- (c) Cache follower: per-rack rate / rack median --\n");
  bench::print_cdf("rate normalized to rack median", normalized);
  std::printf("\nwithin 2x of median: cache %.1f%% (paper ~90%%), hadoop %.1f%%\n",
              stability.within_2x_of_median * 100.0,
              hadoop_stability.within_2x_of_median * 100.0);
  std::printf("'significant change' (>20%% deviation): cache %.1f%% (paper ~45%%)\n",
              stability.significant_change * 100.0);
  return 0;
}
