// Ablation: Fbflow sampling-rate sweep. Is 1:30,000 sampling sufficient to
// recover the Table 3 locality matrix? Sweep rates from 1:100 to 1:1M and
// report the matrix error vs ground truth (unsampled flow records).
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"
#include "fbdcsim/monitoring/fbflow.h"
#include "fbdcsim/runtime/sharded_fleet.h"
#include "fbdcsim/workload/fleet_flows.h"

using namespace fbdcsim;

int main() {
  bench::BenchReport report{"ablation_sampling_rate"};
  bench::banner("Ablation: Fbflow sampling-rate sweep vs locality-matrix fidelity",
                "Section 3.3.1 methodology validation");

  topology::StandardFleetConfig fleet_cfg;
  fleet_cfg.sites = 2;
  fleet_cfg.datacenters_per_site = 1;
  fleet_cfg.frontend_clusters = 2;
  fleet_cfg.cache_clusters = 1;
  fleet_cfg.hadoop_clusters = 2;
  fleet_cfg.database_clusters = 1;
  fleet_cfg.service_clusters = 1;
  fleet_cfg.racks_per_cluster = 12;
  fleet_cfg.hosts_per_rack = 6;
  fleet_cfg.frontend_web_racks = 8;
  fleet_cfg.frontend_cache_racks = 2;
  fleet_cfg.frontend_multifeed_racks = 1;
  const topology::Fleet fleet = topology::build_standard_fleet(fleet_cfg);
  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::hours(2);
  cfg.epoch = core::Duration::minutes(30);
  cfg.rate_scale = 0.01;  // bounds the 1:100 sweep point's sample volume
  cfg.seed = 33;
  const workload::FleetFlowGenerator gen{fleet, cfg};

  // Generate once (in parallel, canonically ordered), then sweep the rates
  // concurrently — each sweep point replays the same flow list through its
  // own independent pipeline.
  runtime::ThreadPool pool;
  const runtime::ShardedFleetRunner runner{gen, pool};
  const std::vector<core::FlowRecord> flows = runner.collect_flows();

  // Ground truth locality shares from the raw flow records.
  double truth_bytes[core::kNumLocalities] = {};
  double truth_total = 0.0;
  for (const auto& f : flows) {
    const auto loc = fleet.locality(f.src_host, f.dst_host);
    truth_bytes[static_cast<int>(loc)] += static_cast<double>(f.bytes.count_bytes());
    truth_total += static_cast<double>(f.bytes.count_bytes());
  }
  std::printf("flows: %zu; ground-truth locality %%: %.1f / %.1f / %.1f / %.1f\n\n",
              flows.size(), truth_bytes[0] / truth_total * 100,
              truth_bytes[1] / truth_total * 100, truth_bytes[2] / truth_total * 100,
              truth_bytes[3] / truth_total * 100);

  struct SweepPoint {
    std::int64_t rate{0};
    std::size_t samples{0};
    std::array<double, core::kNumLocalities> pct{};
    double max_err{0.0};
  };
  const std::vector<std::int64_t> rates{100, 1'000, 10'000, 30'000, 100'000, 1'000'000};
  const auto points = pool.parallel_map(rates, [&](const std::int64_t& rate) {
    monitoring::FbflowPipeline fbflow{fleet, rate, core::RngStream{77}};
    for (const auto& f : flows) fbflow.offer_flow(f);
    SweepPoint p;
    p.rate = rate;
    p.samples = fbflow.scuba().size();
    p.pct = fbflow.scuba().locality_bytes(rate).percentages();
    for (int i = 0; i < core::kNumLocalities; ++i) {
      p.max_err = std::max(p.max_err, std::abs(p.pct[static_cast<std::size_t>(i)] -
                                               truth_bytes[i] / truth_total * 100.0));
    }
    return p;
  });

  std::printf("%-10s  %10s  %8s %8s %8s %8s  %12s\n", "rate", "samples", "rack%", "clus%",
              "dc%", "inter%", "max.abs.err");
  for (const SweepPoint& p : points) {
    std::printf("1:%-8lld  %10zu  %8.1f %8.1f %8.1f %8.1f  %11.2fpp\n",
                static_cast<long long>(p.rate), p.samples, p.pct[0], p.pct[1], p.pct[2],
                p.pct[3], p.max_err);
  }
  std::printf(
      "\nExpected: the matrix is stable to within ~1 percentage point at\n"
      "1:30,000 (the production rate) on this horizon; only extreme rates\n"
      "(1:1M on a small fleet) lose fidelity.\n");
  return 0;
}
