// Trace explorer: monitor any host role, capture its traffic, and print the
// full measurement panel the paper reports for monitored hosts — locality,
// destination-service mix, flow size/duration, packet sizes, SYN
// interarrivals, heavy hitters, and concurrency.
//
// Usage:
//   trace_explorer [--no-telemetry] [web|cache-f|cache-l|hadoop|multifeed|slb|db] [seconds]
//
// On exit the collected telemetry (simulator event counts, switch packet
// counters, ...) is printed as a summary table; --no-telemetry suppresses
// collection and the table.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fbdcsim/analysis/concurrency.h"
#include "fbdcsim/analysis/flow_table.h"
#include "fbdcsim/analysis/heavy_hitters.h"
#include "fbdcsim/analysis/locality.h"
#include "fbdcsim/analysis/packet_stats.h"
#include "fbdcsim/telemetry/export.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/workload/presets.h"

using namespace fbdcsim;

namespace {

/// Strips --no-telemetry (disabling collection) and returns positional args.
std::vector<const char*> parse_common_flags(int argc, char** argv) {
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-telemetry") == 0) {
      telemetry::Telemetry::set_enabled(false);
    } else {
      positional.push_back(argv[i]);
    }
  }
  return positional;
}

core::HostRole parse_role(const char* name) {
  const std::string s{name};
  if (s == "web") return core::HostRole::kWeb;
  if (s == "cache-f") return core::HostRole::kCacheFollower;
  if (s == "cache-l") return core::HostRole::kCacheLeader;
  if (s == "hadoop") return core::HostRole::kHadoop;
  if (s == "multifeed") return core::HostRole::kMultifeed;
  if (s == "slb") return core::HostRole::kSlb;
  if (s == "db") return core::HostRole::kDatabase;
  std::fprintf(stderr, "unknown role '%s'\n", name);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<const char*> args = parse_common_flags(argc, argv);
  const core::HostRole role =
      !args.empty() ? parse_role(args[0]) : core::HostRole::kCacheFollower;
  const std::int64_t seconds = args.size() > 1 ? std::atoll(args[1]) : 10;

  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  workload::RackSimConfig cfg =
      workload::default_rack_config(fleet, role, core::Duration::seconds(seconds));
  workload::RackSimulation sim{fleet, cfg};
  const workload::RackSimResult result = sim.run();

  const core::Ipv4Addr self = fleet.host(cfg.monitored_host).addr;
  const analysis::AddrResolver resolver{fleet};

  std::printf("=== %s host %s: %zu packets over %lld s (%llu events) ===\n",
              core::to_string(role), self.to_string().c_str(), result.trace.size(),
              static_cast<long long>(seconds),
              static_cast<unsigned long long>(result.events));

  const auto loc = analysis::locality_shares(result.trace, self, resolver);
  std::printf("locality %%: rack %.1f | cluster %.1f | dc %.1f | inter-dc %.1f\n",
              loc[0], loc[1], loc[2], loc[3]);

  std::printf("dest-role %% of outbound bytes:");
  for (const auto& share : analysis::outbound_role_shares(result.trace, self, resolver)) {
    if (share.percent >= 0.05) {
      std::printf("  %s %.1f", core::to_string(share.role), share.percent);
    }
  }
  std::printf("\n");

  const core::Cdf sizes = analysis::packet_size_cdf(result.trace);
  std::printf("packet bytes: p10 %.0f med %.0f p90 %.0f  (%zu pkts)\n", sizes.p10(),
              sizes.median(), sizes.p90(), sizes.size());

  const auto flows = analysis::FlowTable::outbound_flows(result.trace, self);
  core::Cdf fsize, fdur;
  for (const auto& f : flows) {
    fsize.add(static_cast<double>(f.payload_bytes));
    fdur.add(f.duration().to_millis());
  }
  std::printf("flows: %zu | size KB: med %.2f p90 %.1f | dur ms: med %.1f p90 %.0f\n",
              flows.size(), fsize.median() / 1e3, fsize.p90() / 1e3, fdur.median(),
              fdur.p90());

  const core::Cdf syn = analysis::syn_interarrival_cdf(result.trace, self);
  std::printf("SYN interarrival ms: med %.2f p90 %.2f (%zu SYNs)\n", syn.median() / 1e3,
              syn.p90() / 1e3, syn.size() + 1);

  const auto conc = analysis::concurrent_racks(result.trace, self, resolver);
  const auto conns = analysis::concurrent_connections(result.trace, self);
  std::printf("per 5ms: racks med %.0f p90 %.0f | tuples med %.0f | hosts med %.0f\n",
              conc.all.median(), conc.all.p90(), conns.tuples.median(), conns.hosts.median());

  const auto hh_racks = analysis::concurrent_heavy_hitter_racks(result.trace, self, resolver);
  std::printf("HH racks per 5ms: med %.0f p90 %.0f\n", hh_racks.all.median(),
              hh_racks.all.p90());

  // Heavy-hitter persistence at rack level, 100-ms bins.
  const auto binned =
      analysis::bin_outbound(result.trace, self, resolver, analysis::AggLevel::kRack,
                             core::Duration::millis(100), result.capture_start,
                             result.capture_end - result.capture_start);
  const auto persist = analysis::hh_persistence(binned);
  core::Cdf pcdf;
  pcdf.add_all(persist);
  std::printf("rack-HH persistence @100ms: med %.0f%%\n", pcdf.median());

  std::printf("on/off idle-bin fraction @15ms: %.3f\n",
              analysis::idle_bin_fraction(result.trace, core::Duration::millis(15)));

  if (telemetry::Telemetry::enabled()) {
    std::printf("\n");
    telemetry::print_summary(stdout, telemetry::MetricsRegistry::global().snapshot());
  }
  return 0;
}
