// Trace analyzer CLI: load an FBTR capture from disk (see trace_capture)
// and run the full measurement panel offline — the "analysis side" of the
// paper's capture-then-spool methodology. Works on any trace whose
// addresses resolve in the canonical rack-experiment fleet.
//
// Usage: trace_analyze <in.fbtr> <monitored-ip>
#include <cstdio>

#include "fbdcsim/analysis/concurrency.h"
#include "fbdcsim/analysis/flow_table.h"
#include "fbdcsim/analysis/heavy_hitters.h"
#include "fbdcsim/analysis/locality.h"
#include "fbdcsim/analysis/packet_stats.h"
#include "fbdcsim/analysis/te_eval.h"
#include "fbdcsim/monitoring/trace_io.h"
#include "fbdcsim/workload/presets.h"

using namespace fbdcsim;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <in.fbtr> <monitored-ip>\n", argv[0]);
    return 1;
  }
  const auto loaded = monitoring::read_trace_file(argv[1]);
  if (!loaded.ok) {
    std::fprintf(stderr, "failed to load %s: %s\n", argv[1], loaded.error.c_str());
    return 1;
  }
  core::Ipv4Addr self;
  if (!core::Ipv4Addr::try_parse(argv[2], self)) {
    std::fprintf(stderr, "bad address '%s'\n", argv[2]);
    return 1;
  }
  std::printf("loaded %zu packets from %s; analyzing host %s\n", loaded.trace.size(),
              argv[1], self.to_string().c_str());

  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  const analysis::AddrResolver resolver{fleet};
  if (!resolver.host_of(self).is_valid()) {
    std::fprintf(stderr, "address %s is not a host of the canonical fleet\n", argv[2]);
    return 1;
  }
  const auto& trace = loaded.trace;
  if (trace.empty()) {
    std::printf("empty trace\n");
    return 0;
  }
  const core::TimePoint start = trace.front().timestamp;
  const core::Duration span = trace.back().timestamp - start;

  const auto loc = analysis::locality_shares(trace, self, resolver);
  std::printf("locality %%: rack %.1f | cluster %.1f | dc %.1f | inter-dc %.1f\n", loc[0],
              loc[1], loc[2], loc[3]);

  const auto sizes = analysis::packet_size_cdf(trace);
  std::printf("packet bytes: med %.0f p90 %.0f\n", sizes.median(), sizes.p90());

  const auto flows = analysis::FlowTable::outbound_flows(trace, self);
  std::printf("outbound flows: %zu\n", flows.size());

  const auto conc = analysis::concurrent_racks(trace, self, resolver);
  std::printf("concurrent racks per 5ms: med %.0f p90 %.0f\n", conc.all.median(),
              conc.all.p90());

  const auto te = analysis::evaluate_reactive_te(trace, self, resolver,
                                                 analysis::AggLevel::kRack,
                                                 core::Duration::millis(100), start, span);
  std::printf("reactive rack-level TE coverage @100ms: %.1f%% (oracle %.1f%%)\n",
              te.predicted_byte_coverage * 100.0, te.oracle_byte_coverage * 100.0);
  return 0;
}
