// Switch-buffer study example: how much RSW buffer does a Web rack need?
//
// Section 6.3 finds standing buffer occupancy at ~1% utilization and warns
// that "careful buffer tuning is likely to be important moving forward".
// This example sweeps the shared-buffer size under the Web-rack workload
// and reports the drop rate and occupancy at each point — the curve an
// operator would use to size (or configure) the buffer.
//
// Usage: switch_buffer_study [seconds-per-point]
#include <cstdio>
#include <cstdlib>

#include "fbdcsim/core/stats.h"
#include "fbdcsim/workload/presets.h"

using namespace fbdcsim;

int main(int argc, char** argv) {
  const std::int64_t seconds = argc > 1 ? std::atoll(argv[1]) : 3;
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();

  std::printf("Web-rack RSW buffer sweep (%llds per point, DT alpha=2):\n\n",
              static_cast<long long>(seconds));
  std::printf("%10s  %12s  %9s  %12s  %12s\n", "buffer", "median.occ", "max.occ",
              "drop rate", "99.99%ile ok");
  for (const std::int64_t kb : {64LL, 128LL, 256LL, 512LL, 1024LL, 4096LL, 12000LL}) {
    workload::RackSimConfig cfg = workload::default_rack_config(
        fleet, core::HostRole::kWeb, core::Duration::seconds(seconds));
    cfg.mirror_whole_rack = false;
    cfg.background_rate_scale = 1.0;
    cfg.sample_buffer = true;
    cfg.capture_memory_bytes = 64;
    cfg.seed = 7;
    cfg.rsw.buffer_total = core::DataSize::kilobytes(kb);
    cfg.rsw.dt_alpha = 2.0;

    workload::RackSimulation sim{fleet, cfg};
    const auto result = sim.run();

    core::Cdf medians;
    double max_occ = 0.0;
    for (const auto& s : result.buffer_seconds) {
      medians.add(s.median_fraction);
      max_occ = std::max(max_occ, s.max_fraction);
    }
    const std::int64_t drops =
        result.uplink.dropped_packets + result.downlinks.dropped_packets;
    const std::int64_t sent = result.uplink.tx_packets + result.downlinks.tx_packets;
    const double drop_rate =
        sent + drops > 0 ? static_cast<double>(drops) / static_cast<double>(sent + drops) : 0.0;
    std::printf("%8lldKB  %12.4f  %9.3f  %11.5f%%  %12s\n", static_cast<long long>(kb),
                medians.median(), max_occ, drop_rate * 100.0,
                drop_rate < 1e-4 ? "yes" : "no");
  }

  std::printf(
      "\nReading: the workload's fan-in bursts need a fixed byte budget; past\n"
      "that point extra buffer only raises occupancy headroom, not goodput.\n"
      "Compare bench_ablation_buffer_policy for the sharing-policy dimension.\n");
  return 0;
}
