// Incast probe: the measurement the paper could NOT make (§7: "these
// constraints prevent us from evaluating effects like incast or
// microbursts") — but the simulator can.
//
// N cache followers answer a synchronized multiget from one Web server;
// all N responses converge on the Web host's RSW downlink within a few
// microseconds. The probe sweeps the fan-in degree and reports downlink
// queue peaks and drops, the classic incast cliff.
//
// Each fan-in runs under both congestion-control regimes (the `cc`
// column): `reno` offers plain packets to an unmarked switch — the first
// congestion signal a sender would see is the drop itself; `dctcp` offers
// ECT packets with the marking threshold at K = buffer/4 (DESIGN.md §12)
// — CE marks fire as soon as the burst crosses K, a signal that arrives
// well before the cliff. The burst is open-loop (scripted arrivals), so
// queue dynamics are identical across the two rows; what differs is when
// the congestion signal exists at all. The closed-loop consequence — DCTCP
// converting that earlier signal into fewer drops and a lower occupancy
// tail — is measured by bench_ablation_transport's Reno-vs-DCTCP section.
//
// Usage: incast_probe [response_bytes]
#include <cstdio>
#include <cstdlib>

#include "fbdcsim/sim/simulator.h"
#include "fbdcsim/switching/switch.h"

using namespace fbdcsim;

namespace {

struct CcRegime {
  const char* name;
  bool dctcp;
};

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t response_payload = argc > 1 ? std::atoll(argv[1]) : 4096;

  std::printf("incast probe: synchronized %lld-B responses converging on one 10G\n",
              static_cast<long long>(response_payload));
  std::printf("downlink behind a shared-buffer RSW (64 KB pool, DT alpha=2;\n");
  std::printf("dctcp rows mark ECT packets at K = 16 KB)\n\n");
  std::printf("%8s  %-6s  %12s  %12s  %9s  %9s  %12s  %12s\n", "fan-in", "cc", "offered",
              "peak queue", "drops", "marks", "first signal", "completion");

  for (const int fanin : {4, 8, 16, 32, 64, 128, 256}) {
    for (const CcRegime regime : {CcRegime{"reno", false}, CcRegime{"dctcp", true}}) {
      sim::Simulator sim;
      switching::SwitchConfig cfg;
      cfg.num_ports = 1;  // the victim downlink
      cfg.buffer_total = core::DataSize::kilobytes(64);
      cfg.dt_alpha = 2.0;
      cfg.port_rate = core::DataRate::gigabits_per_sec(10);
      if (regime.dctcp) {
        cfg.ecn_threshold = core::DataSize::bytes(cfg.buffer_total.count_bytes() / 4);
      }

      core::TimePoint last_delivery;
      // The first moment a sender-visible congestion signal exists: a CE
      // mark (dctcp; observed on the delivered packet, since marking
      // rewrites ECT to CE at enqueue — the enqueue timestamp is when the
      // signal was created) or the drop itself (reno's only signal).
      bool have_signal = false;
      core::TimePoint first_signal;
      auto record_signal = [&](core::TimePoint at) {
        if (!have_signal || at < first_signal) {
          have_signal = true;
          first_signal = at;
        }
      };
      switching::SharedBufferSwitch sw{
          sim, cfg, [&](std::size_t, const switching::SimPacket& pkt) {
            last_delivery = sim.now();
            if (pkt.ecn == core::Ecn::kCe) record_signal(pkt.header.timestamp);
          }};
      sw.set_drop_hook([&](std::size_t, const switching::SimPacket&) {
        record_signal(sim.now());
      });

      // Responses arrive nearly simultaneously (the request fan-out took
      // ~microseconds); each is segmented at the MSS.
      std::int64_t offered = 0;
      core::DataSize peak = core::DataSize::bytes(0);
      for (int i = 0; i < fanin; ++i) {
        std::int64_t remaining = response_payload;
        core::TimePoint at =
            core::TimePoint::from_nanos(i % 8 * 200);  // tiny arrival jitter
        while (remaining > 0) {
          const std::int64_t seg =
              std::min<std::int64_t>(remaining, core::wire::kMaxTcpPayloadBytes);
          remaining -= seg;
          switching::SimPacket pkt;
          pkt.header.timestamp = at;
          pkt.header.payload_bytes = seg;
          pkt.header.frame_bytes = core::wire::tcp_frame_bytes(seg);
          pkt.header.tuple.src_port = static_cast<core::Port>(40000 + i);
          if (regime.dctcp) pkt.ecn = core::Ecn::kEct;
          offered += pkt.header.frame_bytes;
          sim.schedule_at(at, [&sw, pkt, &peak] {
            sw.enqueue(0, pkt);
            peak = std::max(peak, sw.buffer_occupancy());
          });
          at += core::Duration::nanos(1250);  // sender NIC at 10G
        }
      }
      sim.run();

      const auto& counters = sw.counters(0);
      char signal[32];
      if (!have_signal) {
        std::snprintf(signal, sizeof signal, "%12s", "-");
      } else {
        std::snprintf(signal, sizeof signal, "%10.1fus",
                      first_signal.since_epoch().to_micros());
      }
      std::printf("%8d  %-6s  %10.1fKB  %10.1fKB  %9lld  %9lld  %12s  %10.1fus\n",
                  fanin, regime.name, static_cast<double>(offered) / 1e3,
                  static_cast<double>(peak.count_bytes()) / 1e3,
                  static_cast<long long>(counters.dropped_packets),
                  static_cast<long long>(counters.ecn_marked_packets), signal,
                  last_delivery.since_epoch().to_micros());
    }
  }

  std::printf(
      "\nReading: below the buffer limit the burst is absorbed and completion\n"
      "time grows linearly; past it, drops appear — with TCP, those drops\n"
      "would become timeouts and goodput collapse. The dctcp rows show CE\n"
      "marks (and a congestion signal) appearing several fan-in steps before\n"
      "the drop cliff: the early-warning margin a closed DCTCP loop converts\n"
      "into avoided losses. This is the §7 future-work measurement, made\n"
      "possible by the simulator.\n");
  return 0;
}
