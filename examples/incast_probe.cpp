// Incast probe: the measurement the paper could NOT make (§7: "these
// constraints prevent us from evaluating effects like incast or
// microbursts") — but the simulator can.
//
// N cache followers answer a synchronized multiget from one Web server;
// all N responses converge on the Web host's RSW downlink within a few
// microseconds. The probe sweeps the fan-in degree and reports downlink
// queue peaks and drops, the classic incast cliff.
//
// Usage: incast_probe [response_bytes]
#include <cstdio>
#include <cstdlib>

#include "fbdcsim/sim/simulator.h"
#include "fbdcsim/switching/switch.h"

using namespace fbdcsim;

int main(int argc, char** argv) {
  const std::int64_t response_payload = argc > 1 ? std::atoll(argv[1]) : 4096;

  std::printf("incast probe: synchronized %lld-B responses converging on one 10G\n",
              static_cast<long long>(response_payload));
  std::printf("downlink behind a shared-buffer RSW (64 KB pool, DT alpha=2)\n\n");
  std::printf("%8s  %12s  %12s  %9s  %12s\n", "fan-in", "offered", "peak queue", "drops",
              "completion");

  for (const int fanin : {4, 8, 16, 32, 64, 128, 256}) {
    sim::Simulator sim;
    switching::SwitchConfig cfg;
    cfg.num_ports = 1;  // the victim downlink
    cfg.buffer_total = core::DataSize::kilobytes(64);
    cfg.dt_alpha = 2.0;
    cfg.port_rate = core::DataRate::gigabits_per_sec(10);

    core::TimePoint last_delivery;
    switching::SharedBufferSwitch sw{
        sim, cfg,
        [&](std::size_t, const switching::SimPacket&) { last_delivery = sim.now(); }};

    // Responses arrive nearly simultaneously (the request fan-out took
    // ~microseconds); each is segmented at the MSS.
    std::int64_t offered = 0;
    core::DataSize peak = core::DataSize::bytes(0);
    for (int i = 0; i < fanin; ++i) {
      std::int64_t remaining = response_payload;
      core::TimePoint at =
          core::TimePoint::from_nanos(i % 8 * 200);  // tiny arrival jitter
      while (remaining > 0) {
        const std::int64_t seg = std::min<std::int64_t>(remaining, core::wire::kMaxTcpPayloadBytes);
        remaining -= seg;
        switching::SimPacket pkt;
        pkt.header.timestamp = at;
        pkt.header.payload_bytes = seg;
        pkt.header.frame_bytes = core::wire::tcp_frame_bytes(seg);
        pkt.header.tuple.src_port = static_cast<core::Port>(40000 + i);
        offered += pkt.header.frame_bytes;
        sim.schedule_at(at, [&sw, pkt, &peak] {
          sw.enqueue(0, pkt);
          peak = std::max(peak, sw.buffer_occupancy());
        });
        at += core::Duration::nanos(1250);  // sender NIC at 10G
      }
    }
    sim.run();

    const auto& counters = sw.counters(0);
    std::printf("%8d  %10.1fKB  %10.1fKB  %9lld  %10.1fus\n", fanin,
                static_cast<double>(offered) / 1e3,
                static_cast<double>(peak.count_bytes()) / 1e3,
                static_cast<long long>(counters.dropped_packets),
                last_delivery.since_epoch().to_micros());
  }

  std::printf(
      "\nReading: below the buffer limit the burst is absorbed and completion\n"
      "time grows linearly; past it, drops appear — with TCP, those drops\n"
      "would become timeouts and goodput collapse. This is the §7 future-work\n"
      "measurement, made possible by the simulator.\n");
  return 0;
}
