// Quickstart: build a fleet, capture a cache follower's traffic the way the
// paper does (port mirroring at the RSW), and print the headline analyses —
// locality mix, packet sizes, flow counts, and concurrency.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "fbdcsim/analysis/concurrency.h"
#include "fbdcsim/analysis/flow_table.h"
#include "fbdcsim/analysis/locality.h"
#include "fbdcsim/analysis/packet_stats.h"
#include "fbdcsim/workload/presets.h"

using namespace fbdcsim;

int main() {
  // 1. A scaled-down Facebook-style fleet: 4-post clusters of Web, cache,
  //    Hadoop, database, and service machines across two sites.
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  std::printf("fleet: %zu hosts, %zu racks, %zu clusters, %zu datacenters\n",
              fleet.num_hosts(), fleet.num_racks(), fleet.clusters().size(),
              fleet.datacenters().size());

  // 2. Monitor one cache follower for 10 seconds (plus 2 s of warmup).
  workload::RackSimConfig cfg =
      workload::default_rack_config(fleet, core::HostRole::kCacheFollower,
                                    core::Duration::seconds(10));
  workload::RackSimulation sim{fleet, cfg};
  const workload::RackSimResult result = sim.run();
  std::printf("capture: %zu packets over %.1f s (%llu events simulated)\n",
              result.trace.size(), (result.capture_end - result.capture_start).to_seconds(),
              static_cast<unsigned long long>(result.events));

  const core::Ipv4Addr self = fleet.host(cfg.monitored_host).addr;
  const analysis::AddrResolver resolver{fleet};

  // 3. Locality of outbound bytes (Figure 4's stack, collapsed).
  const auto shares = analysis::locality_shares(result.trace, self, resolver);
  std::printf("\noutbound locality:\n");
  for (int i = 0; i < core::kNumLocalities; ++i) {
    std::printf("  %-18s %5.1f%%\n", core::to_string(static_cast<core::Locality>(i)),
                shares[static_cast<std::size_t>(i)]);
  }

  // 4. Packet sizes (Figure 12) and flows.
  const core::Cdf sizes = analysis::packet_size_cdf(result.trace);
  std::printf("\npacket size: median %.0f B, p90 %.0f B (%zu packets)\n", sizes.median(),
              sizes.p90(), sizes.size());

  const auto flows = analysis::FlowTable::outbound_flows(result.trace, self);
  std::printf("outbound 5-tuple flows: %zu\n", flows.size());

  // 5. Concurrency (Figure 16): distinct destination racks per 5 ms.
  const auto racks = analysis::concurrent_racks(result.trace, self, resolver);
  std::printf("concurrent racks per 5 ms: median %.0f, p90 %.0f\n", racks.all.median(),
              racks.all.p90());
  return 0;
}
