// Fabric planner example: the provisioning question of Section 4.4.
//
// Given the measured workload, how much aggregation bandwidth does each
// cluster type actually need? This example routes a day of fleet traffic
// over (a) the classic 4-post topology and (b) a next-generation Fabric
// build, and reports per-level utilization per cluster type — showing why
// a homogeneous fabric is simultaneously over- and under-provisioned and
// what a non-uniform fabric could exploit.
#include <cstdio>
#include <map>

#include "fbdcsim/core/stats.h"
#include "fbdcsim/monitoring/link_stats.h"
#include "fbdcsim/topology/fabric.h"
#include "fbdcsim/workload/fleet_flows.h"
#include "fbdcsim/workload/presets.h"

using namespace fbdcsim;

namespace {

void report(const char* name, const topology::Fleet& fleet, const topology::Network& net) {
  const topology::Router router{fleet, net};
  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::hours(2);
  cfg.epoch = core::Duration::minutes(15);
  cfg.seed = 21;
  const workload::FleetFlowGenerator gen{fleet, cfg};

  monitoring::LinkStats stats{net, cfg.horizon};
  gen.generate([&](const core::FlowRecord& flow) {
    stats.add_path(router.route(flow.src_host, flow.dst_host, flow.tuple), flow.start,
                   flow.duration, flow.bytes);
  });

  std::printf("\n== %s ==\n", name);
  std::printf("%-10s  %14s  %14s\n", "cluster", "RSW->aggr p95", "aggr->spine p95");
  for (const topology::Cluster& cluster : fleet.clusters()) {
    if (cluster.datacenter.value() != 0) continue;  // one DC is representative
    // RSW -> CSW/fabric utilization for this cluster's racks.
    auto up = stats.utilizations_where([&](const topology::Link& link) {
      if (link.from.kind != topology::NodeRef::Kind::kSwitch) return false;
      const auto& sw = net.sw(core::SwitchId{link.from.index});
      if (sw.kind != topology::SwitchKind::kRsw || sw.cluster != cluster.id) return false;
      return link.to.kind == topology::NodeRef::Kind::kSwitch;
    });
    auto spine = stats.utilizations_where([&](const topology::Link& link) {
      if (link.from.kind != topology::NodeRef::Kind::kSwitch) return false;
      const auto& sw = net.sw(core::SwitchId{link.from.index});
      if (sw.kind != topology::SwitchKind::kCsw || sw.cluster != cluster.id) return false;
      const auto& to = net.sw(core::SwitchId{link.to.index});
      return to.kind == topology::SwitchKind::kFc;
    });
    core::Cdf up_cdf{std::move(up)};
    core::Cdf spine_cdf{std::move(spine)};
    std::printf("%-10s  %13.2f%%  %13.2f%%\n", topology::to_string(cluster.type),
                up_cdf.quantile(0.95) * 100.0, spine_cdf.quantile(0.95) * 100.0);
  }
}

}  // namespace

int main() {
  const topology::Fleet fleet = workload::build_fleet_experiment_fleet();
  std::printf("planning for a fleet of %zu hosts\n", fleet.num_hosts());

  const topology::Network fourpost = topology::FourPostBuilder{}.build(fleet);
  report("4-post Clos (10G uplinks, 40G aggregation)", fleet, fourpost);

  const topology::Network fabric = topology::FabricBuilder{}.build(fleet);
  report("Fabric pods (40G uplinks, spine planes)", fleet, fabric);

  std::printf(
      "\nReading: Hadoop pods stress rack uplinks (cluster-local shuffle),\n"
      "cache-leader pods stress the spine (inter-cluster coherency), and\n"
      "Frontend pods touch both lightly. Uniform provisioning wastes\n"
      "capacity on some pods while others would benefit from more — the\n"
      "non-uniform-fabric argument of Section 4.4.\n");
  return 0;
}
