// Fbflow analytics example: run the fleet-wide sampled monitoring pipeline
// (agents -> Scribe -> taggers -> Scuba) over a day of synthetic traffic
// and answer the kinds of questions the paper's operators ask — where does
// traffic go, which cluster types dominate, what does one host talk to.
//
// Usage: fbflow_analytics [--no-telemetry] [hours] [sampling-rate]
//
// On exit the collected telemetry (pipeline sample counters, per-role flow
// counts, ...) is printed as a summary table; --no-telemetry suppresses
// collection and the table.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "fbdcsim/monitoring/fbflow.h"
#include "fbdcsim/telemetry/export.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/workload/fleet_flows.h"
#include "fbdcsim/workload/presets.h"

using namespace fbdcsim;

int main(int argc, char** argv) {
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-telemetry") == 0) {
      telemetry::Telemetry::set_enabled(false);
    } else {
      args.push_back(argv[i]);
    }
  }
  const std::int64_t hours = !args.empty() ? std::atoll(args[0]) : 6;
  const std::int64_t rate =
      args.size() > 1 ? std::atoll(args[1]) : monitoring::kDefaultSamplingRate;

  const topology::Fleet fleet = workload::build_fleet_experiment_fleet();
  std::printf("fleet: %zu hosts across %zu datacenters; sampling 1:%lld for %lldh\n",
              fleet.num_hosts(), fleet.datacenters().size(), static_cast<long long>(rate),
              static_cast<long long>(hours));

  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::hours(hours);
  cfg.epoch = core::Duration::minutes(30);
  cfg.seed = 11;
  const workload::FleetFlowGenerator gen{fleet, cfg};

  monitoring::FbflowPipeline fbflow{fleet, rate, core::RngStream{1}};
  std::int64_t flows = 0;
  gen.generate([&](const core::FlowRecord& flow) {
    fbflow.offer_flow(flow);
    ++flows;
  });
  std::printf("flows: %lld -> sampled headers: %zu (tag failures: %lld)\n\n",
              static_cast<long long>(flows), fbflow.scuba().size(),
              static_cast<long long>(fbflow.tag_failures()));

  // Query 1: fleet-wide locality (the Table 3 "All" row).
  const auto locality = fbflow.scuba().locality_bytes(rate);
  const auto pct = locality.percentages();
  std::printf("estimated traffic locality: rack %.1f%% | cluster %.1f%% | dc %.1f%% | "
              "inter-dc %.1f%%\n",
              pct[0], pct[1], pct[2], pct[3]);
  std::printf("estimated total volume: %.2f TB\n\n", locality.total() / 1e12);

  // Query 2: who generates the traffic.
  std::printf("traffic share by source cluster type:\n");
  const auto by_type = fbflow.scuba().bytes_by_cluster_type(fleet, rate);
  double total = 0;
  for (const auto& [type, bytes] : by_type) total += bytes;
  for (const auto& [type, bytes] : by_type) {
    std::printf("  %-9s %5.1f%%\n", topology::to_string(type), bytes / total * 100.0);
  }

  // Query 3: one Web server's outbound service mix (a Table 2 row).
  const core::HostId web = fleet.hosts_with_role(core::HostRole::kWeb)[0];
  std::printf("\noutbound mix of %s (a Web server):\n",
              fleet.host(web).addr.to_string().c_str());
  for (const auto& [role, bytes] : fbflow.scuba().outbound_by_dest_role(web, rate)) {
    if (bytes <= 0) continue;
    std::printf("  -> %-9s %8.1f MB\n", core::to_string(role), bytes / 1e6);
  }

  if (telemetry::Telemetry::enabled()) {
    std::printf("\n");
    telemetry::print_summary(stdout, telemetry::MetricsRegistry::global().snapshot());
  }
  return 0;
}
