// Flow-ledger explorer: the per-flow causal view of one capture.
//
// Where trace_explorer reads the mirrored packet headers, this tool reads
// the FlowLedger (FBDCSIM_OBS=flows): per-transfer lifecycle records with
// every retransmission linked back to the drop that caused it. It answers
// the questions an on-call engineer asks of a slow service — which flows
// hurt the most, what share of repair traffic each loss cause explains,
// and the full event timeline of one suspect flow.
//
// Usage:
//   flowtrace_explorer [--no-telemetry] [--heavy] [--worst N] [--flow ID]
//                      [web|cache-f|cache-l|hadoop|multifeed|slb|db] [seconds]
//   flowtrace_explorer --file <flows.jsonl> [--worst N] [--flow ID]
//
// The first form runs a live TCP capture (add --heavy for the heavy fault
// profile, which makes the attribution stories non-trivial); the second
// loads a bench_<name>.flows.jsonl export.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fbdcsim/analysis/fct.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/telemetry/flow_ledger.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/workload/presets.h"
#include "fbdcsim/workload/rack_sim.h"

using namespace fbdcsim;

namespace {

core::HostRole parse_role(const char* name) {
  const std::string s{name};
  if (s == "web") return core::HostRole::kWeb;
  if (s == "cache-f") return core::HostRole::kCacheFollower;
  if (s == "cache-l") return core::HostRole::kCacheLeader;
  if (s == "hadoop") return core::HostRole::kHadoop;
  if (s == "multifeed") return core::HostRole::kMultifeed;
  if (s == "slb") return core::HostRole::kSlb;
  if (s == "db") return core::HostRole::kDatabase;
  std::fprintf(stderr, "unknown role '%s'\n", name);
  std::exit(1);
}

std::optional<std::string> read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return std::nullopt;
  std::string out;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// All records of every dump, flattened (source ids stay on the records'
/// owning dump; this tool treats the file as one population).
std::vector<telemetry::FlowLedgerRecord> flatten(
    const std::vector<telemetry::FlowLedgerDump>& dumps) {
  std::vector<telemetry::FlowLedgerRecord> out;
  for (const telemetry::FlowLedgerDump& d : dumps) {
    out.insert(out.end(), d.records.begin(), d.records.end());
  }
  return out;
}

void print_worst(const std::vector<telemetry::FlowLedgerRecord>& records, int worst_n) {
  std::vector<const telemetry::FlowLedgerRecord*> completed;
  for (const telemetry::FlowLedgerRecord& r : records) {
    if (r.completed() && r.ideal_ns > 0) completed.push_back(&r);
  }
  std::sort(completed.begin(), completed.end(),
            [](const telemetry::FlowLedgerRecord* a, const telemetry::FlowLedgerRecord* b) {
              if (a->slowdown() != b->slowdown()) return a->slowdown() > b->slowdown();
              return a->id < b->id;  // deterministic tie-break
            });
  const std::size_t n = std::min<std::size_t>(completed.size(),
                                              static_cast<std::size_t>(worst_n));
  std::printf("\nWorst %zu transfers by slowdown (of %zu completed):\n", n,
              completed.size());
  std::printf("%7s %-3s %-8s %-8s %-15s %9s %11s %9s %4s %5s  %s\n", "id", "dir", "role",
              "peer", "locality", "bytes", "fct_us", "slowdown", "rtx", "drops", "tuple");
  for (std::size_t i = 0; i < n; ++i) {
    const telemetry::FlowLedgerRecord& r = *completed[i];
    std::printf("%7lld %-3s %-8s %-8s %-15s %9lld %11lld %9.2f %4lld %5lld  %s\n",
                static_cast<long long>(r.id), r.dir == 0 ? "out" : "in",
                core::to_string(r.role), core::to_string(r.peer_role),
                core::to_string(r.locality), static_cast<long long>(r.bytes),
                static_cast<long long>(r.fct_ns() / 1000), r.slowdown(),
                static_cast<long long>(r.rtx_total), static_cast<long long>(r.drops_total),
                r.tuple.to_string().c_str());
  }
}

void print_cause_breakdown(const std::vector<telemetry::FlowLedgerRecord>& records) {
  // Attribution ids are ledger-wide; build the id -> cause map across every
  // retained record, then charge each retransmission to its drop's cause.
  std::unordered_map<std::int64_t, telemetry::FlowDropCause> cause_of;
  std::int64_t drops_by_cause[3] = {0, 0, 0};
  for (const telemetry::FlowLedgerRecord& r : records) {
    for (std::size_t i = 0; i < r.drop_count; ++i) {
      cause_of.emplace(r.drops[i].id, r.drops[i].cause);
      ++drops_by_cause[static_cast<int>(r.drops[i].cause)];
    }
  }
  std::int64_t rtx_by_cause[3] = {0, 0, 0};
  std::int64_t unattributed = 0;
  std::int64_t evicted = 0;
  std::int64_t total_rtx = 0;
  std::int64_t by_kind[2] = {0, 0};
  for (const telemetry::FlowLedgerRecord& r : records) {
    for (std::size_t i = 0; i < r.rtx_count; ++i) {
      ++total_rtx;
      ++by_kind[static_cast<int>(r.rtxs[i].kind)];
      if (r.rtxs[i].cause_id < 0) {
        ++unattributed;
      } else if (const auto it = cause_of.find(r.rtxs[i].cause_id); it != cause_of.end()) {
        ++rtx_by_cause[static_cast<int>(it->second)];
      } else {
        ++evicted;  // the causing drop's record left the ring
      }
    }
  }
  std::printf("\nRetransmission causes (%lld retained rtx events; %lld dupack, %lld rto):\n",
              static_cast<long long>(total_rtx), static_cast<long long>(by_kind[0]),
              static_cast<long long>(by_kind[1]));
  for (int c = 0; c < 3; ++c) {
    std::printf("  %-14s %7lld rtx   (%lld drops observed)\n",
                telemetry::to_string(static_cast<telemetry::FlowDropCause>(c)),
                static_cast<long long>(rtx_by_cause[c]),
                static_cast<long long>(drops_by_cause[c]));
  }
  std::printf("  %-14s %7lld rtx   (ACK lost on the return path, or cause outside\n",
              "unattributed", static_cast<long long>(unattributed));
  std::printf("  %-14s %7s       the retained event window)\n", "", "");
  if (evicted > 0) {
    std::printf("  %-14s %7lld rtx\n", "cause-evicted", static_cast<long long>(evicted));
  }
}

void print_timeline(const std::vector<telemetry::FlowLedgerRecord>& records,
                    std::int64_t flow_id) {
  const telemetry::FlowLedgerRecord* rec = nullptr;
  for (const telemetry::FlowLedgerRecord& r : records) {
    if (r.id == flow_id) rec = &r;
  }
  if (rec == nullptr) {
    std::printf("\nflow %lld: not in the retained ring\n",
                static_cast<long long>(flow_id));
    return;
  }
  std::printf("\nTimeline of flow %lld (%s, %s -> %s, %s, %s):\n",
              static_cast<long long>(rec->id), rec->dir == 0 ? "out" : "in",
              core::to_string(rec->role), core::to_string(rec->peer_role),
              core::to_string(rec->locality), rec->tuple.to_string().c_str());
  struct Line {
    std::int64_t t_ns;
    int order;  // stable secondary sort: births before events at equal t
    std::string text;
  };
  std::vector<Line> lines;
  char buf[256];
  if (rec->conn_born_ns >= 0) {
    std::snprintf(buf, sizeof buf, "connection born (syn_sends=%lld, established=%lld ns)",
                  static_cast<long long>(rec->syn_sends),
                  static_cast<long long>(rec->established_ns));
    lines.push_back({rec->conn_born_ns, 0, buf});
  }
  std::snprintf(buf, sizeof buf,
                "transfer starts: %lld bytes demanded (ideal fct %lld us, rtt %lld us)",
                static_cast<long long>(rec->bytes),
                static_cast<long long>(rec->ideal_ns / 1000),
                static_cast<long long>(rec->rtt_ns / 1000));
  lines.push_back({rec->start_ns, 1, buf});
  for (std::size_t i = 0; i < rec->drop_count; ++i) {
    const telemetry::FlowDropEvent& d = rec->drops[i];
    std::snprintf(buf, sizeof buf,
                  "drop #%lld: seq %lld+%lld, %s (switch %llu port %d, fault_epoch %lld)%s",
                  static_cast<long long>(d.id), static_cast<long long>(d.seq),
                  static_cast<long long>(d.len), telemetry::to_string(d.cause),
                  static_cast<unsigned long long>(d.switch_id), d.port,
                  static_cast<long long>(d.fault_epoch),
                  d.claimed ? "" : " [never claimed]");
    lines.push_back({d.t_ns, 2, buf});
  }
  for (std::size_t i = 0; i < rec->rtx_count; ++i) {
    const telemetry::FlowRtxEvent& x = rec->rtxs[i];
    std::snprintf(buf, sizeof buf, "rtx (%s): seq %lld+%lld <- cause drop #%lld",
                  telemetry::to_string(x.kind), static_cast<long long>(x.seq),
                  static_cast<long long>(x.len), static_cast<long long>(x.cause_id));
    lines.push_back({x.t_ns, 3, buf});
  }
  for (std::size_t i = 0; i < rec->episode_count; ++i) {
    const telemetry::FlowEpisode& e = rec->episodes[i];
    std::snprintf(buf, sizeof buf, "episode %s: [%lld, %lld] ns (detail %lld)",
                  telemetry::to_string(e.kind), static_cast<long long>(e.start_ns),
                  static_cast<long long>(e.end_ns), static_cast<long long>(e.detail));
    lines.push_back({e.start_ns, 4, buf});
  }
  if (rec->completed()) {
    std::snprintf(buf, sizeof buf, "completed: fct %lld us, slowdown %.2f (%lld/%lld rtx bytes)",
                  static_cast<long long>(rec->fct_ns() / 1000), rec->slowdown(),
                  static_cast<long long>(rec->rtx_bytes),
                  static_cast<long long>(rec->bytes));
    lines.push_back({rec->completed_ns, 5, buf});
  } else {
    lines.push_back({rec->start_ns, 6, "never completed (run or connection ended first)"});
  }
  std::stable_sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
    return a.order < b.order;
  });
  for (const Line& l : lines) {
    std::printf("  %14.6f ms  %s\n", static_cast<double>(l.t_ns) / 1e6, l.text.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* file = nullptr;
  bool heavy = false;
  int worst_n = 10;
  std::int64_t flow_id = -1;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-telemetry") == 0) {
      telemetry::Telemetry::set_enabled(false);
    } else if (std::strcmp(argv[i], "--heavy") == 0) {
      heavy = true;
    } else if (std::strcmp(argv[i], "--file") == 0 && i + 1 < argc) {
      file = argv[++i];
    } else if (std::strcmp(argv[i], "--worst") == 0 && i + 1 < argc) {
      worst_n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--flow") == 0 && i + 1 < argc) {
      flow_id = std::atoll(argv[++i]);
    } else {
      positional.push_back(argv[i]);
    }
  }

  std::vector<telemetry::FlowLedgerDump> dumps;
  if (file != nullptr) {
    const std::optional<std::string> text = read_file(file);
    if (!text) {
      std::fprintf(stderr, "cannot read %s\n", file);
      return 1;
    }
    std::string error;
    std::optional<std::vector<telemetry::FlowLedgerDump>> parsed =
        telemetry::flows_from_jsonl(*text, &error);
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", file, error.c_str());
      return 1;
    }
    dumps = std::move(*parsed);
    std::printf("=== %s: %zu source(s) ===\n", file, dumps.size());
  } else {
    const core::HostRole role =
        !positional.empty() ? parse_role(positional[0]) : core::HostRole::kCacheLeader;
    const std::int64_t seconds = positional.size() > 1 ? std::atoll(positional[1]) : 5;
    const topology::Fleet fleet = workload::build_rack_experiment_fleet();
    workload::RackSimConfig cfg =
        workload::default_rack_config(fleet, role, core::Duration::seconds(seconds));
    cfg.transport = workload::Transport::kTcp;
    cfg.obs.mode = telemetry::ObsConfig::Mode::kOn;
    cfg.obs.flows = true;
    cfg.obs.flow_capacity = 65536;
    const faults::FaultPlan plan{faults::heavy_profile()};
    if (heavy) cfg.faults = &plan;
    workload::RackSimulation sim{fleet, cfg};
    workload::RackSimResult result = sim.run();
    std::printf("=== %s host, %lld s TCP capture, faults=%s ===\n", core::to_string(role),
                static_cast<long long>(seconds), heavy ? "heavy" : "off");
    dumps.push_back(std::move(result.flows));
  }

  const std::vector<telemetry::FlowLedgerRecord> records = flatten(dumps);
  std::int64_t total = 0;
  for (const telemetry::FlowLedgerDump& d : dumps) total += d.total;
  std::int64_t completed = 0;
  for (const telemetry::FlowLedgerRecord& r : records) completed += r.completed() ? 1 : 0;
  std::printf("transfers: %zu retained of %lld closed; %lld completed, %zu incomplete\n",
              records.size(), static_cast<long long>(total),
              static_cast<long long>(completed), records.size() - completed);
  if (records.empty()) {
    std::printf("no ledger records (was the capture run with FBDCSIM_OBS=flows "
                "and transport=tcp?)\n");
    return 0;
  }

  print_worst(records, worst_n);
  print_cause_breakdown(records);
  if (flow_id >= 0) print_timeline(records, flow_id);
  return 0;
}
