// Trace capture CLI: run a port-mirror capture and spool it to disk in the
// FBTR binary format (or CSV), so expensive captures can be analyzed many
// times — the collection-host-to-storage step of §3.3.2.
//
// Usage: trace_capture <web|cache-f|cache-l|hadoop> <seconds> <out.fbtr> [out.csv]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "fbdcsim/monitoring/trace_io.h"
#include "fbdcsim/workload/presets.h"

using namespace fbdcsim;

namespace {

core::HostRole parse_role(const char* name) {
  const std::string s{name};
  if (s == "web") return core::HostRole::kWeb;
  if (s == "cache-f") return core::HostRole::kCacheFollower;
  if (s == "cache-l") return core::HostRole::kCacheLeader;
  if (s == "hadoop") return core::HostRole::kHadoop;
  std::fprintf(stderr, "unknown role '%s' (web|cache-f|cache-l|hadoop)\n", name);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <web|cache-f|cache-l|hadoop> <seconds> <out.fbtr> [out.csv]\n",
                 argv[0]);
    return 1;
  }
  const core::HostRole role = parse_role(argv[1]);
  const std::int64_t seconds = std::atoll(argv[2]);

  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  workload::RackSimConfig cfg =
      workload::default_rack_config(fleet, role, core::Duration::seconds(seconds));
  workload::RackSimulation sim{fleet, cfg};
  const workload::RackSimResult result = sim.run();
  std::printf("captured %zu packets (%lld lost to capture-buffer limits)\n",
              result.trace.size(), static_cast<long long>(result.capture_dropped));

  if (!monitoring::write_trace_file(argv[3], result.trace)) {
    std::fprintf(stderr, "failed to write %s\n", argv[3]);
    return 1;
  }
  std::printf("wrote %s\n", argv[3]);

  if (argc > 4) {
    std::ofstream csv{argv[4]};
    if (!csv || !monitoring::write_trace_csv(csv, result.trace)) {
      std::fprintf(stderr, "failed to write %s\n", argv[4]);
      return 1;
    }
    std::printf("wrote %s\n", argv[4]);
  }

  // Round-trip sanity: re-read and verify.
  const auto reread = monitoring::read_trace_file(argv[3]);
  if (!reread.ok || reread.trace.size() != result.trace.size()) {
    std::fprintf(stderr, "round-trip verification FAILED: %s\n", reread.error.c_str());
    return 1;
  }
  std::printf("round-trip verified (%zu records)\n", reread.trace.size());
  return 0;
}
