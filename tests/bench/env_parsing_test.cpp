// Fuzz/edge tests for every environment knob the bench harness and runtime
// read: FBDCSIM_BENCH_SECONDS, FBDCSIM_THREADS, FBDCSIM_BENCH_OUT,
// FBDCSIM_FAULTS, FBDCSIM_OBS, FBDCSIM_CC, and FBDCSIM_RECOVERY. The
// contract under test:
// malformed values — empty, whitespace, overflow, negative, trailing
// garbage — always fall back to the documented default and never crash.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/runtime/thread_pool.h"
#include "fbdcsim/telemetry/obs.h"
#include "fbdcsim/transport/params.h"

namespace fbdcsim::bench {
namespace {

/// Saves and restores one environment variable around a test.
class EnvVarGuard {
 public:
  explicit EnvVarGuard(const char* name) : name_{name} {
    if (const char* v = std::getenv(name)) saved_ = v;
    ::unsetenv(name);
  }
  ~EnvVarGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void set(const char* value) { ::setenv(name_, value, 1); }
  void unset() { ::unsetenv(name_); }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

// Inputs that must never parse as a valid positive integer.
const std::vector<const char*> kBadIntegers{
    "",        " ",         "abc",    "12abc", "1.5",  "1e3",
    "--3",     "+-2",       "0x10",   "12 ",   "½",    "999999999999999999999999999",
    "-999999999999999999999999999"};

TEST(BenchSecondsEnvTest, UnsetYieldsNullopt) {
  EnvVarGuard guard{"FBDCSIM_BENCH_SECONDS"};
  EXPECT_EQ(bench_seconds_env(), std::nullopt);
}

TEST(BenchSecondsEnvTest, ValidValuesParse) {
  EnvVarGuard guard{"FBDCSIM_BENCH_SECONDS"};
  guard.set("7");
  EXPECT_EQ(bench_seconds_env(), 7);
  guard.set("86400");
  EXPECT_EQ(bench_seconds_env(), 86400);
}

TEST(BenchSecondsEnvTest, MalformedValuesFallBackToNullopt) {
  EnvVarGuard guard{"FBDCSIM_BENCH_SECONDS"};
  for (const char* bad : kBadIntegers) {
    guard.set(bad);
    EXPECT_EQ(bench_seconds_env(), std::nullopt) << "'" << bad << "'";
  }
}

TEST(BenchSecondsEnvTest, NonPositiveValuesFallBackToNullopt) {
  EnvVarGuard guard{"FBDCSIM_BENCH_SECONDS"};
  for (const char* bad : {"0", "-1", "-86400"}) {
    guard.set(bad);
    EXPECT_EQ(bench_seconds_env(), std::nullopt) << "'" << bad << "'";
  }
}

TEST(BenchSecondsEnvTest, EffectiveSecondsUsesNominalOnFallback) {
  EnvVarGuard guard{"FBDCSIM_BENCH_SECONDS"};
  EXPECT_EQ(BenchEnv::effective_seconds(30), 30);
  guard.set("not-a-number");
  EXPECT_EQ(BenchEnv::effective_seconds(30), 30);
  guard.set("0");
  EXPECT_EQ(BenchEnv::effective_seconds(12), 12);
  guard.set("2");
  EXPECT_EQ(BenchEnv::effective_seconds(30), 2);
}

TEST(ThreadsEnvTest, ValidValuesParse) {
  EnvVarGuard guard{"FBDCSIM_THREADS"};
  guard.set("1");
  EXPECT_EQ(runtime::env_thread_count(), 1);
  guard.set("3");
  EXPECT_EQ(runtime::env_thread_count(), 3);
  guard.set("4096");
  EXPECT_EQ(runtime::env_thread_count(), 4096);
}

TEST(ThreadsEnvTest, MalformedValuesFallBackToHardwareConcurrency) {
  EnvVarGuard guard{"FBDCSIM_THREADS"};
  const int fallback = runtime::env_thread_count();  // unset -> hardware
  ASSERT_GE(fallback, 1);
  for (const char* bad : kBadIntegers) {
    guard.set(bad);
    EXPECT_EQ(runtime::env_thread_count(), fallback) << "'" << bad << "'";
  }
  for (const char* out_of_range : {"0", "-2", "4097"}) {
    guard.set(out_of_range);
    EXPECT_EQ(runtime::env_thread_count(), fallback) << "'" << out_of_range << "'";
  }
}

TEST(BenchOutEnvTest, UnsetAndEmptyKeepTheWorkingDirectory) {
  EnvVarGuard guard{"FBDCSIM_BENCH_OUT"};
  EXPECT_EQ(resolve_out_path("bench_x.json"), "bench_x.json");
  guard.set("");
  EXPECT_EQ(resolve_out_path("bench_x.json"), "bench_x.json");
}

TEST(BenchOutEnvTest, TrailingSlashIsADirectoryEvenIfAbsent) {
  EnvVarGuard guard{"FBDCSIM_BENCH_OUT"};
  guard.set("/nonexistent/reports/");
  EXPECT_EQ(resolve_out_path("bench_x.json"), "/nonexistent/reports/bench_x.json");
}

TEST(BenchOutEnvTest, ExistingDirectoryGetsASeparator) {
  EnvVarGuard guard{"FBDCSIM_BENCH_OUT"};
  std::string dir = ::testing::TempDir();
  while (!dir.empty() && dir.back() == '/') dir.pop_back();  // exercise stat()
  ASSERT_FALSE(dir.empty());
  guard.set(dir.c_str());
  EXPECT_EQ(resolve_out_path("bench_x.json"), dir + "/bench_x.json");
}

TEST(BenchOutEnvTest, AnythingElseIsTheExactFilePath) {
  EnvVarGuard guard{"FBDCSIM_BENCH_OUT"};
  guard.set("/tmp/custom_report_name.json");
  EXPECT_EQ(resolve_out_path("bench_x.json"), "/tmp/custom_report_name.json");
}

TEST(FaultsEnvFuzzTest, FaultPlanResolutionNeverCrashes) {
  EnvVarGuard guard{"FBDCSIM_FAULTS"};
  const std::vector<const char*> specs{
      "",    " ",     "off", "light", "heavy", "OFF",  "Light",
      "0.5", "-1",    "/",   ".",     "..",    "\n",   "light\nheavy",
      "/dev/null",    "/nonexistent/profile.conf"};
  for (const char* spec : specs) {
    guard.set(spec);
    const faults::FaultConfig cfg = faults::fault_config_from_env();
    // Either a real profile or a clean fallback to off — never a crash.
    if (std::string{spec} == "light") {
      EXPECT_EQ(cfg.profile, faults::Profile::kLight);
    } else if (std::string{spec} == "heavy") {
      EXPECT_EQ(cfg.profile, faults::Profile::kHeavy);
    } else {
      EXPECT_EQ(cfg.profile, faults::Profile::kOff) << "'" << spec << "'";
    }
  }
}

TEST(FaultsEnvFuzzTest, BenchEnvFaultPlanIsNullWhenOff) {
  EnvVarGuard guard{"FBDCSIM_FAULTS"};
  {
    BenchEnv env;
    EXPECT_EQ(env.fault_plan(), nullptr);
    EXPECT_EQ(env.fault_plan(), nullptr);  // resolved once, stable
  }
  guard.set("garbage-value");
  {
    BenchEnv env;
    EXPECT_EQ(env.fault_plan(), nullptr);
  }
}

TEST(FaultsEnvFuzzTest, BenchEnvFaultPlanResolvesActiveProfiles) {
  EnvVarGuard guard{"FBDCSIM_FAULTS"};
  guard.set("heavy");
  BenchEnv env;
  const faults::FaultPlan* plan = env.fault_plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->enabled());
  EXPECT_EQ(plan->config().profile, faults::Profile::kHeavy);
  EXPECT_EQ(env.fault_plan(), plan);  // cached, one instance per env
}

TEST(ObsEnvFuzzTest, ValidSpecsParse) {
  std::string error;
  auto off = telemetry::parse_obs_spec("off", &error);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->mode, telemetry::ObsConfig::Mode::kOff);
  EXPECT_FALSE(off->enabled());

  auto on = telemetry::parse_obs_spec("on", &error);
  ASSERT_TRUE(on.has_value());
  EXPECT_EQ(on->mode, telemetry::ObsConfig::Mode::kOn);
  EXPECT_TRUE(on->enabled());

  auto dump = telemetry::parse_obs_spec("dump", &error);
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->mode, telemetry::ObsConfig::Mode::kDump);
  EXPECT_EQ(dump->flight_recorder, 256u);  // default ring size

  auto sized = telemetry::parse_obs_spec("dump:64", &error);
  ASSERT_TRUE(sized.has_value());
  EXPECT_EQ(sized->mode, telemetry::ObsConfig::Mode::kDump);
  EXPECT_EQ(sized->flight_recorder, 64u);

  auto max = telemetry::parse_obs_spec("dump:1048576", &error);
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(max->flight_recorder, 1048576u);

  // The flows level: `on` semantics plus the per-flow ledger.
  auto flows = telemetry::parse_obs_spec("flows", &error);
  ASSERT_TRUE(flows.has_value());
  EXPECT_EQ(flows->mode, telemetry::ObsConfig::Mode::kOn);
  EXPECT_TRUE(flows->enabled());
  EXPECT_TRUE(flows->flows);
  EXPECT_EQ(flows->flow_capacity, 4096u);  // default ring size

  auto flows_sized = telemetry::parse_obs_spec("flows:64", &error);
  ASSERT_TRUE(flows_sized.has_value());
  EXPECT_TRUE(flows_sized->flows);
  EXPECT_EQ(flows_sized->flow_capacity, 64u);

  auto flows_max = telemetry::parse_obs_spec("flows:1048576", &error);
  ASSERT_TRUE(flows_max.has_value());
  EXPECT_EQ(flows_max->flow_capacity, 1048576u);

  // The plain levels never switch the ledger on.
  EXPECT_FALSE(on->flows);
  EXPECT_FALSE(dump->flows);
}

TEST(ObsEnvFuzzTest, MalformedSpecsAreRejectedWithAReason) {
  const std::vector<const char*> bad{
      "",       " ",        "ON",       "Off",     "Dump",      "on ",
      " on",    "dump:",    "dump:0",   "dump:-1", "dump:abc",  "dump:1.5",
      "dump:1048577",       "dump:99999999999999999999",        "dumpling",
      "on,dump", "off;on",  "dump:64:128", "\n",   "on\n",
      "flows:",  "flows:0", "flows:-1",    "flows:abc", "flows:1.5",
      "flows:1048577",      "flows:99999999999999999999",       "Flows",
      "FLOWS",   "flows 64", " flows",     "flows:64:128", "flowses"};
  for (const char* spec : bad) {
    std::string error;
    EXPECT_EQ(telemetry::parse_obs_spec(spec, &error), std::nullopt)
        << "'" << spec << "'";
    EXPECT_FALSE(error.empty()) << "'" << spec << "' rejected without a reason";
  }
  // The error pointer is optional.
  EXPECT_EQ(telemetry::parse_obs_spec("garbage"), std::nullopt);
}

TEST(ObsEnvFuzzTest, EnvResolutionFallsBackToOffAndNeverCrashes) {
  EnvVarGuard guard{"FBDCSIM_OBS"};
  EXPECT_FALSE(telemetry::obs_config_from_env().enabled());  // unset
  for (const char* bad :
       {"", "garbage", "ON", "dump:0", "dump:abc", "½", "flows:0", "flows:abc",
        "Flows", "flows "}) {
    guard.set(bad);
    const telemetry::ObsConfig cfg = telemetry::obs_config_from_env();
    EXPECT_EQ(cfg.mode, telemetry::ObsConfig::Mode::kOff) << "'" << bad << "'";
    EXPECT_FALSE(cfg.flows) << "'" << bad << "'";
  }
  guard.set("dump:32");
  const telemetry::ObsConfig cfg = telemetry::obs_config_from_env();
  EXPECT_EQ(cfg.mode, telemetry::ObsConfig::Mode::kDump);
  EXPECT_EQ(cfg.flight_recorder, 32u);
  guard.set("flows:32");
  const telemetry::ObsConfig fcfg = telemetry::obs_config_from_env();
  EXPECT_EQ(fcfg.mode, telemetry::ObsConfig::Mode::kOn);
  EXPECT_TRUE(fcfg.flows);
  EXPECT_EQ(fcfg.flow_capacity, 32u);
}

TEST(ObsEnvFuzzTest, BenchEnvResolvesObsOncePerEnv) {
  EnvVarGuard guard{"FBDCSIM_OBS"};
  guard.set("on");
  BenchEnv env;
  const telemetry::ObsConfig& first = env.obs();
  EXPECT_TRUE(first.enabled());
  guard.set("off");  // must not affect the already-resolved env
  EXPECT_TRUE(env.obs().enabled());
  EXPECT_EQ(&env.obs(), &first);  // cached, one instance per env
  BenchEnv fresh;
  EXPECT_FALSE(fresh.obs().enabled());
}

TEST(CcEnvFuzzTest, ValidSpecsParse) {
  transport::CongestionControl cc = transport::CongestionControl::kDctcp;
  EXPECT_TRUE(transport::parse_cc_spec("reno", cc));
  EXPECT_EQ(cc, transport::CongestionControl::kNewReno);
  EXPECT_TRUE(transport::parse_cc_spec("newreno", cc));
  EXPECT_EQ(cc, transport::CongestionControl::kNewReno);
  EXPECT_TRUE(transport::parse_cc_spec("dctcp", cc));
  EXPECT_EQ(cc, transport::CongestionControl::kDctcp);
}

TEST(CcEnvFuzzTest, MalformedSpecsAreRejectedAndLeaveTheOutputUntouched) {
  const std::vector<const char*> bad{
      " ",     "Reno",  "RENO",  "DCTCP", "Dctcp", "dctcp ",  " dctcp",
      "cubic", "bbr",   "reno,dctcp",     "dctcp:64", "½",    "\n",
      "reno\n",         "d c t c p",      "0",        "1"};
  for (const char* spec : bad) {
    transport::CongestionControl cc = transport::CongestionControl::kDctcp;
    EXPECT_FALSE(transport::parse_cc_spec(spec, cc)) << "'" << spec << "'";
    EXPECT_EQ(cc, transport::CongestionControl::kDctcp)
        << "'" << spec << "' must leave the output untouched on failure";
  }
}

TEST(CcEnvFuzzTest, EnvResolutionFallsBackToRenoAndNeverCrashes) {
  EnvVarGuard guard{"FBDCSIM_CC"};
  EXPECT_EQ(transport::cc_from_env(), transport::CongestionControl::kNewReno);  // unset
  for (const char* bad : {"", " ", "garbage", "DCTCP", "dctcp ", "reno;dctcp", "½", "\n"}) {
    guard.set(bad);
    EXPECT_EQ(transport::cc_from_env(), transport::CongestionControl::kNewReno)
        << "'" << bad << "'";
  }
  guard.set("dctcp");
  EXPECT_EQ(transport::cc_from_env(), transport::CongestionControl::kDctcp);
  guard.set("newreno");
  EXPECT_EQ(transport::cc_from_env(), transport::CongestionControl::kNewReno);
}

TEST(CcEnvFuzzTest, BenchEnvResolvesCcOncePerEnv) {
  EnvVarGuard guard{"FBDCSIM_CC"};
  guard.set("dctcp");
  BenchEnv env;
  EXPECT_EQ(env.cc(), transport::CongestionControl::kDctcp);
  guard.set("reno");  // must not affect the already-resolved env
  EXPECT_EQ(env.cc(), transport::CongestionControl::kDctcp);
  BenchEnv fresh;
  EXPECT_EQ(fresh.cc(), transport::CongestionControl::kNewReno);
}

TEST(CcEnvFuzzTest, ToStringRoundTripsThroughTheParser) {
  for (const auto cc :
       {transport::CongestionControl::kNewReno, transport::CongestionControl::kDctcp}) {
    transport::CongestionControl parsed{};
    ASSERT_TRUE(transport::parse_cc_spec(transport::to_string(cc), parsed))
        << transport::to_string(cc);
    EXPECT_EQ(parsed, cc);
  }
}

TEST(RecoveryEnvFuzzTest, ValidSpecsParse) {
  transport::LossRecovery rec = transport::LossRecovery::kSack;
  EXPECT_TRUE(transport::parse_recovery_spec("newreno", rec));
  EXPECT_EQ(rec, transport::LossRecovery::kNewReno);
  EXPECT_TRUE(transport::parse_recovery_spec("reno", rec));
  EXPECT_EQ(rec, transport::LossRecovery::kNewReno);
  EXPECT_TRUE(transport::parse_recovery_spec("sack", rec));
  EXPECT_EQ(rec, transport::LossRecovery::kSack);
}

TEST(RecoveryEnvFuzzTest, MalformedSpecsAreRejectedAndLeaveTheOutputUntouched) {
  const std::vector<const char*> bad{
      " ",     "Sack",  "SACK",  "NewReno", "RENO",  "sack ",   " sack",
      "dsack", "fack",  "newreno,sack",     "sack:1", "½",      "\n",
      "sack\n",         "s a c k",          "0",      "1"};
  for (const char* spec : bad) {
    transport::LossRecovery rec = transport::LossRecovery::kSack;
    EXPECT_FALSE(transport::parse_recovery_spec(spec, rec)) << "'" << spec << "'";
    EXPECT_EQ(rec, transport::LossRecovery::kSack)
        << "'" << spec << "' must leave the output untouched on failure";
  }
}

TEST(RecoveryEnvFuzzTest, EnvResolutionFallsBackToNewRenoAndNeverCrashes) {
  EnvVarGuard guard{"FBDCSIM_RECOVERY"};
  EXPECT_EQ(transport::recovery_from_env(), transport::LossRecovery::kNewReno);  // unset
  for (const char* bad : {"", " ", "garbage", "SACK", "sack ", "reno;sack", "½", "\n"}) {
    guard.set(bad);
    EXPECT_EQ(transport::recovery_from_env(), transport::LossRecovery::kNewReno)
        << "'" << bad << "'";
  }
  guard.set("sack");
  EXPECT_EQ(transport::recovery_from_env(), transport::LossRecovery::kSack);
  guard.set("newreno");
  EXPECT_EQ(transport::recovery_from_env(), transport::LossRecovery::kNewReno);
}

TEST(RecoveryEnvFuzzTest, BenchEnvResolvesRecoveryOncePerEnv) {
  EnvVarGuard guard{"FBDCSIM_RECOVERY"};
  guard.set("sack");
  BenchEnv env;
  EXPECT_EQ(env.recovery(), transport::LossRecovery::kSack);
  guard.set("reno");  // must not affect the already-resolved env
  EXPECT_EQ(env.recovery(), transport::LossRecovery::kSack);
  BenchEnv fresh;
  EXPECT_EQ(fresh.recovery(), transport::LossRecovery::kNewReno);
}

TEST(RecoveryEnvFuzzTest, ToStringRoundTripsThroughTheParser) {
  for (const auto rec :
       {transport::LossRecovery::kNewReno, transport::LossRecovery::kSack}) {
    transport::LossRecovery parsed{};
    ASSERT_TRUE(transport::parse_recovery_spec(transport::to_string(rec), parsed))
        << transport::to_string(rec);
    EXPECT_EQ(parsed, rec);
  }
}

TEST(BenchReportObsTest, TimeseriesSectionAppearsOnlyWhenAdded) {
  // Route the reports the destructors write into the test temp dir.
  EnvVarGuard out_guard{"FBDCSIM_BENCH_OUT"};
  const std::string tmp = ::testing::TempDir();
  out_guard.set(tmp.c_str());
  BenchReport plain{"obs_section_probe"};
  EXPECT_EQ(plain.to_json().find("\"timeseries\""), std::string::npos);

  telemetry::TimeSeriesProbe probe{core::Duration::micros(10), 4};
  probe.add_gauge("g", [] { return 7; });
  probe.sample_tick(0);
  BenchReport with{"obs_section_probe"};
  with.add_timeseries("k", probe.snapshot());
  const std::string json = with.to_json();
  EXPECT_NE(json.find("\"timeseries\":{\"k\":"), std::string::npos);
  EXPECT_NE(json.find("\"g\":{\"period_ns\":10000"), std::string::npos);
  // Re-adding a key overwrites rather than duplicating.
  with.add_timeseries("k", probe.snapshot());
  const std::string rejson = with.to_json();
  EXPECT_EQ(rejson.find("\"timeseries\":{\"k\":"), rejson.rfind("\"timeseries\":{\"k\":"));
  EXPECT_EQ(rejson.find("\"g\":{"), rejson.rfind("\"g\":{"));
}

TEST(BenchReportObsTest, TracepointsPathSitsNextToTheReport) {
  EnvVarGuard guard{"FBDCSIM_BENCH_OUT"};
  guard.set("/tmp/obs_path_test/");
  BenchReport report{"pathcheck"};
  EXPECT_EQ(report.report_path(), "/tmp/obs_path_test/bench_pathcheck.json");
  EXPECT_EQ(report.tracepoints_path(),
            "/tmp/obs_path_test/bench_pathcheck.tracepoints.jsonl");
}

}  // namespace
}  // namespace fbdcsim::bench
