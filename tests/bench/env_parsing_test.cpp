// Fuzz/edge tests for every environment knob the bench harness and runtime
// read: FBDCSIM_BENCH_SECONDS, FBDCSIM_THREADS, FBDCSIM_BENCH_OUT, and
// FBDCSIM_FAULTS. The contract under test: malformed values — empty,
// whitespace, overflow, negative, trailing garbage — always fall back to
// the documented default and never crash.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/runtime/thread_pool.h"

namespace fbdcsim::bench {
namespace {

/// Saves and restores one environment variable around a test.
class EnvVarGuard {
 public:
  explicit EnvVarGuard(const char* name) : name_{name} {
    if (const char* v = std::getenv(name)) saved_ = v;
    ::unsetenv(name);
  }
  ~EnvVarGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void set(const char* value) { ::setenv(name_, value, 1); }
  void unset() { ::unsetenv(name_); }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

// Inputs that must never parse as a valid positive integer.
const std::vector<const char*> kBadIntegers{
    "",        " ",         "abc",    "12abc", "1.5",  "1e3",
    "--3",     "+-2",       "0x10",   "12 ",   "½",    "999999999999999999999999999",
    "-999999999999999999999999999"};

TEST(BenchSecondsEnvTest, UnsetYieldsNullopt) {
  EnvVarGuard guard{"FBDCSIM_BENCH_SECONDS"};
  EXPECT_EQ(bench_seconds_env(), std::nullopt);
}

TEST(BenchSecondsEnvTest, ValidValuesParse) {
  EnvVarGuard guard{"FBDCSIM_BENCH_SECONDS"};
  guard.set("7");
  EXPECT_EQ(bench_seconds_env(), 7);
  guard.set("86400");
  EXPECT_EQ(bench_seconds_env(), 86400);
}

TEST(BenchSecondsEnvTest, MalformedValuesFallBackToNullopt) {
  EnvVarGuard guard{"FBDCSIM_BENCH_SECONDS"};
  for (const char* bad : kBadIntegers) {
    guard.set(bad);
    EXPECT_EQ(bench_seconds_env(), std::nullopt) << "'" << bad << "'";
  }
}

TEST(BenchSecondsEnvTest, NonPositiveValuesFallBackToNullopt) {
  EnvVarGuard guard{"FBDCSIM_BENCH_SECONDS"};
  for (const char* bad : {"0", "-1", "-86400"}) {
    guard.set(bad);
    EXPECT_EQ(bench_seconds_env(), std::nullopt) << "'" << bad << "'";
  }
}

TEST(BenchSecondsEnvTest, EffectiveSecondsUsesNominalOnFallback) {
  EnvVarGuard guard{"FBDCSIM_BENCH_SECONDS"};
  EXPECT_EQ(BenchEnv::effective_seconds(30), 30);
  guard.set("not-a-number");
  EXPECT_EQ(BenchEnv::effective_seconds(30), 30);
  guard.set("0");
  EXPECT_EQ(BenchEnv::effective_seconds(12), 12);
  guard.set("2");
  EXPECT_EQ(BenchEnv::effective_seconds(30), 2);
}

TEST(ThreadsEnvTest, ValidValuesParse) {
  EnvVarGuard guard{"FBDCSIM_THREADS"};
  guard.set("1");
  EXPECT_EQ(runtime::env_thread_count(), 1);
  guard.set("3");
  EXPECT_EQ(runtime::env_thread_count(), 3);
  guard.set("4096");
  EXPECT_EQ(runtime::env_thread_count(), 4096);
}

TEST(ThreadsEnvTest, MalformedValuesFallBackToHardwareConcurrency) {
  EnvVarGuard guard{"FBDCSIM_THREADS"};
  const int fallback = runtime::env_thread_count();  // unset -> hardware
  ASSERT_GE(fallback, 1);
  for (const char* bad : kBadIntegers) {
    guard.set(bad);
    EXPECT_EQ(runtime::env_thread_count(), fallback) << "'" << bad << "'";
  }
  for (const char* out_of_range : {"0", "-2", "4097"}) {
    guard.set(out_of_range);
    EXPECT_EQ(runtime::env_thread_count(), fallback) << "'" << out_of_range << "'";
  }
}

TEST(BenchOutEnvTest, UnsetAndEmptyKeepTheWorkingDirectory) {
  EnvVarGuard guard{"FBDCSIM_BENCH_OUT"};
  EXPECT_EQ(resolve_out_path("bench_x.json"), "bench_x.json");
  guard.set("");
  EXPECT_EQ(resolve_out_path("bench_x.json"), "bench_x.json");
}

TEST(BenchOutEnvTest, TrailingSlashIsADirectoryEvenIfAbsent) {
  EnvVarGuard guard{"FBDCSIM_BENCH_OUT"};
  guard.set("/nonexistent/reports/");
  EXPECT_EQ(resolve_out_path("bench_x.json"), "/nonexistent/reports/bench_x.json");
}

TEST(BenchOutEnvTest, ExistingDirectoryGetsASeparator) {
  EnvVarGuard guard{"FBDCSIM_BENCH_OUT"};
  std::string dir = ::testing::TempDir();
  while (!dir.empty() && dir.back() == '/') dir.pop_back();  // exercise stat()
  ASSERT_FALSE(dir.empty());
  guard.set(dir.c_str());
  EXPECT_EQ(resolve_out_path("bench_x.json"), dir + "/bench_x.json");
}

TEST(BenchOutEnvTest, AnythingElseIsTheExactFilePath) {
  EnvVarGuard guard{"FBDCSIM_BENCH_OUT"};
  guard.set("/tmp/custom_report_name.json");
  EXPECT_EQ(resolve_out_path("bench_x.json"), "/tmp/custom_report_name.json");
}

TEST(FaultsEnvFuzzTest, FaultPlanResolutionNeverCrashes) {
  EnvVarGuard guard{"FBDCSIM_FAULTS"};
  const std::vector<const char*> specs{
      "",    " ",     "off", "light", "heavy", "OFF",  "Light",
      "0.5", "-1",    "/",   ".",     "..",    "\n",   "light\nheavy",
      "/dev/null",    "/nonexistent/profile.conf"};
  for (const char* spec : specs) {
    guard.set(spec);
    const faults::FaultConfig cfg = faults::fault_config_from_env();
    // Either a real profile or a clean fallback to off — never a crash.
    if (std::string{spec} == "light") {
      EXPECT_EQ(cfg.profile, faults::Profile::kLight);
    } else if (std::string{spec} == "heavy") {
      EXPECT_EQ(cfg.profile, faults::Profile::kHeavy);
    } else {
      EXPECT_EQ(cfg.profile, faults::Profile::kOff) << "'" << spec << "'";
    }
  }
}

TEST(FaultsEnvFuzzTest, BenchEnvFaultPlanIsNullWhenOff) {
  EnvVarGuard guard{"FBDCSIM_FAULTS"};
  {
    BenchEnv env;
    EXPECT_EQ(env.fault_plan(), nullptr);
    EXPECT_EQ(env.fault_plan(), nullptr);  // resolved once, stable
  }
  guard.set("garbage-value");
  {
    BenchEnv env;
    EXPECT_EQ(env.fault_plan(), nullptr);
  }
}

TEST(FaultsEnvFuzzTest, BenchEnvFaultPlanResolvesActiveProfiles) {
  EnvVarGuard guard{"FBDCSIM_FAULTS"};
  guard.set("heavy");
  BenchEnv env;
  const faults::FaultPlan* plan = env.fault_plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->enabled());
  EXPECT_EQ(plan->config().profile, faults::Profile::kHeavy);
  EXPECT_EQ(env.fault_plan(), plan);  // cached, one instance per env
}

}  // namespace
}  // namespace fbdcsim::bench
