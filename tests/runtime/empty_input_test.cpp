// Explicit empty- and minimal-input contracts for the parallel runners.
// Before this suite existed, a zero-host fleet or an empty capture batch
// silently exercised the full worker machinery; now both are defined no-ops
// and single-element inputs are pinned to serial behavior.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "fbdcsim/runtime/parallel_capture.h"
#include "fbdcsim/runtime/sharded_fleet.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::runtime {
namespace {

using core::FlowRecord;

topology::Fleet single_host_fleet() {
  topology::FleetBuilder b;
  const auto site = b.add_site("prn");
  const auto dc = b.add_datacenter(site);
  const auto cluster = b.add_cluster(dc, topology::ClusterType::kHadoop);
  const auto rack = b.add_rack(cluster, core::HostRole::kHadoop);
  b.add_host(rack);
  return b.build();
}

TEST(EmptyInputTest, ShardedRunnerOnEmptyFleetIsANoOp) {
  const topology::Fleet fleet = topology::FleetBuilder{}.build();
  ASSERT_EQ(fleet.num_hosts(), 0u);
  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::minutes(30);
  const workload::FleetFlowGenerator gen{fleet, cfg};
  ThreadPool pool{2};
  const ShardedFleetRunner runner{gen, pool};

  EXPECT_EQ(runner.num_hosts(), 0u);
  EXPECT_EQ(runner.num_shards(), 0u);
  std::int64_t seen = 0;
  runner.stream([&](const FlowRecord&) { ++seen; });
  EXPECT_EQ(seen, 0);
  EXPECT_TRUE(runner.collect_flows().empty());
}

TEST(EmptyInputTest, ShardedRunnerOnEmptyFleetStaysUsableAcrossCalls) {
  const topology::Fleet fleet = topology::FleetBuilder{}.build();
  const workload::FleetFlowGenerator gen{fleet, workload::FleetGenConfig{}};
  ThreadPool pool{1};
  const ShardedFleetRunner runner{gen, pool};
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(runner.collect_flows().empty()) << i;
  }
  // The pool is still healthy for real work after the no-op runs.
  const ParallelCaptureRunner capture{pool};
  std::vector<std::function<int()>> tasks;
  tasks.push_back([] { return 7; });
  EXPECT_EQ(capture.run(tasks).at(0), 7);
}

TEST(EmptyInputTest, ShardedRunnerSingleHostMatchesSerialForAnyWorkerCount) {
  const topology::Fleet fleet = single_host_fleet();
  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::hours(1);
  cfg.seed = 5;
  const workload::FleetFlowGenerator gen{fleet, cfg};

  std::vector<FlowRecord> serial;
  gen.generate([&](const FlowRecord& f) { serial.push_back(f); });

  for (const int workers : {1, 4}) {
    SCOPED_TRACE(workers);
    ThreadPool pool{workers};
    const ShardedFleetRunner runner{gen, pool};
    EXPECT_EQ(runner.num_hosts(), 1u);
    EXPECT_EQ(runner.num_shards(), 1u);  // one shard: merge order is trivial
    const auto parallel = runner.collect_flows();
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].tuple, serial[i].tuple) << i;
      EXPECT_EQ(parallel[i].start.count_nanos(), serial[i].start.count_nanos()) << i;
      EXPECT_EQ(parallel[i].bytes.count_bytes(), serial[i].bytes.count_bytes()) << i;
    }
  }
}

TEST(EmptyInputTest, ParallelCaptureEmptyBatchReturnsEmpty) {
  ThreadPool pool{2};
  const ParallelCaptureRunner capture{pool};
  const std::vector<std::function<int()>> none;
  const auto results = capture.run(none);
  EXPECT_TRUE(results.empty());
}

TEST(EmptyInputTest, ParallelCaptureEmptyBatchLeavesPoolUsable) {
  ThreadPool pool{1};
  const ParallelCaptureRunner capture{pool};
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(capture.run(std::vector<std::function<int()>>{}).empty()) << i;
  }
  std::vector<std::function<int()>> tasks;
  tasks.push_back([] { return 1; });
  tasks.push_back([] { return 2; });
  const auto results = capture.run(tasks);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[1], 2);
}

TEST(EmptyInputTest, ParallelCaptureSingleTaskPreservesOrderTrivially) {
  ThreadPool pool{4};
  const ParallelCaptureRunner capture{pool};
  std::vector<std::function<int()>> tasks;
  tasks.push_back([] { return 99; });
  const auto results = capture.run(tasks);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 99);
}

}  // namespace
}  // namespace fbdcsim::runtime
