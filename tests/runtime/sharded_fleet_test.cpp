// Determinism regression suite for the parallel fleet runner: the parallel
// stream must be bit-identical to the serial FleetFlowGenerator::generate
// for every worker count and shard size, and so must every aggregate built
// from it (the Table 3 locality matrix above all).
#include "fbdcsim/runtime/sharded_fleet.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "fbdcsim/monitoring/fbflow.h"
#include "fbdcsim/runtime/parallel_capture.h"
#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::runtime {
namespace {

using core::FlowRecord;

topology::Fleet runner_fleet() {
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 1;
  cfg.frontend_clusters = 2;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 1;
  cfg.database_clusters = 1;
  cfg.service_clusters = 1;
  cfg.racks_per_cluster = 8;
  cfg.hosts_per_rack = 4;
  cfg.frontend_web_racks = 5;
  cfg.frontend_cache_racks = 2;
  cfg.frontend_multifeed_racks = 1;
  return topology::build_standard_fleet(cfg);
}

workload::FleetGenConfig runner_config() {
  workload::FleetGenConfig cfg;
  cfg.horizon = core::Duration::hours(1);
  cfg.epoch = core::Duration::minutes(30);
  cfg.seed = 19;
  // Keep the sampled-header volume (and the test's runtime) small.
  cfg.rate_scale = 0.001;
  return cfg;
}

void expect_identical(const std::vector<FlowRecord>& a, const std::vector<FlowRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].tuple, b[i].tuple) << "flow " << i;
    ASSERT_EQ(a[i].src_host, b[i].src_host) << "flow " << i;
    ASSERT_EQ(a[i].dst_host, b[i].dst_host) << "flow " << i;
    ASSERT_EQ(a[i].start.count_nanos(), b[i].start.count_nanos()) << "flow " << i;
    ASSERT_EQ(a[i].duration.count_nanos(), b[i].duration.count_nanos()) << "flow " << i;
    ASSERT_EQ(a[i].bytes.count_bytes(), b[i].bytes.count_bytes()) << "flow " << i;
    ASSERT_EQ(a[i].packets, b[i].packets) << "flow " << i;
  }
}

TEST(ShardedFleetRunnerTest, StreamMatchesSerialForEveryWorkerCount) {
  const topology::Fleet fleet = runner_fleet();
  const workload::FleetFlowGenerator gen{fleet, runner_config()};

  std::vector<FlowRecord> serial;
  gen.generate([&](const FlowRecord& f) { serial.push_back(f); });
  ASSERT_FALSE(serial.empty());

  for (const int workers : {1, 2, 8}) {
    ThreadPool pool{workers};
    const ShardedFleetRunner runner{gen, pool};
    const auto parallel = runner.collect_flows();
    SCOPED_TRACE(workers);
    expect_identical(serial, parallel);
  }
}

TEST(ShardedFleetRunnerTest, ShardSizeDoesNotChangeTheStream) {
  const topology::Fleet fleet = runner_fleet();
  const workload::FleetFlowGenerator gen{fleet, runner_config()};
  ThreadPool pool{4};

  std::vector<FlowRecord> serial;
  gen.generate([&](const FlowRecord& f) { serial.push_back(f); });

  for (const std::size_t shard_size : {std::size_t{1}, std::size_t{7}, std::size_t{512}}) {
    ShardOptions opts;
    opts.shard_size = shard_size;
    const ShardedFleetRunner runner{gen, pool, opts};
    SCOPED_TRACE(shard_size);
    expect_identical(serial, runner.collect_flows());
  }
}

TEST(ShardedFleetRunnerTest, LocalityMatrixBitIdenticalAcrossWorkerCounts) {
  // The acceptance gate: the Table 3 pipeline (flows -> Fbflow sampling ->
  // Scuba locality query) lands on byte-for-byte identical aggregates no
  // matter how many workers generated the flows.
  const topology::Fleet fleet = runner_fleet();
  const workload::FleetFlowGenerator gen{fleet, runner_config()};

  monitoring::FbflowPipeline serial_pipe{fleet, 1'000, core::RngStream{99}};
  double serial_bytes = 0.0;
  std::int64_t serial_flows = 0;
  gen.generate([&](const FlowRecord& f) {
    serial_pipe.offer_flow(f);
    serial_bytes += static_cast<double>(f.bytes.count_bytes());
    ++serial_flows;
  });
  const auto serial_locality = serial_pipe.scuba().locality_bytes(1'000);
  ASSERT_GT(serial_pipe.scuba().size(), 0u);

  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE(workers);
    ThreadPool pool{workers};
    const ShardedFleetRunner runner{gen, pool};
    monitoring::FbflowPipeline pipe{fleet, 1'000, core::RngStream{99}};
    double bytes = 0.0;
    std::int64_t flows = 0;
    runner.stream([&](const FlowRecord& f) {
      pipe.offer_flow(f);
      bytes += static_cast<double>(f.bytes.count_bytes());
      ++flows;
    });
    EXPECT_EQ(flows, serial_flows);
    // Byte totals accumulate in the identical order -> identical doubles.
    EXPECT_EQ(bytes, serial_bytes);
    ASSERT_EQ(pipe.scuba().size(), serial_pipe.scuba().size());
    const auto locality = pipe.scuba().locality_bytes(1'000);
    for (int l = 0; l < core::kNumLocalities; ++l) {
      EXPECT_EQ(locality.bytes[l], serial_locality.bytes[l]) << "locality " << l;
    }
  }
}

TEST(ShardedFleetRunnerTest, SinkExceptionPropagates) {
  const topology::Fleet fleet = runner_fleet();
  const workload::FleetFlowGenerator gen{fleet, runner_config()};
  ThreadPool pool{4};
  const ShardedFleetRunner runner{gen, pool};

  std::int64_t seen = 0;
  EXPECT_THROW(runner.stream([&](const FlowRecord&) {
    if (++seen == 100) throw std::runtime_error{"sink failed"};
  }),
               std::runtime_error);

  // The runner and pool stay usable after the failure.
  const auto flows = runner.collect_flows();
  EXPECT_FALSE(flows.empty());
}

TEST(ParallelCaptureRunnerTest, ResultsArriveInTaskOrder) {
  ThreadPool pool{4};
  const ParallelCaptureRunner capture{pool};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([i] { return i * 10; });
  }
  const auto results = capture.run(tasks);
  ASSERT_EQ(results.size(), tasks.size());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 10);
}

TEST(ParallelCaptureRunnerTest, TaskExceptionPropagates) {
  ThreadPool pool{2};
  const ParallelCaptureRunner capture{pool};
  std::vector<std::function<int()>> tasks;
  tasks.push_back([] { return 1; });
  tasks.push_back([]() -> int { throw std::runtime_error{"capture failed"}; });
  EXPECT_THROW((void)capture.run(tasks), std::runtime_error);
}

}  // namespace
}  // namespace fbdcsim::runtime
