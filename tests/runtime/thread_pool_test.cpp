#include "fbdcsim/runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace fbdcsim::runtime {
namespace {

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool{4};
  bool called = false;
  pool.parallel_for_each(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, OneTaskRuns) {
  ThreadPool pool{4};
  std::atomic<int> calls{0};
  pool.parallel_for_each(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool{4};
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> seen(kCount);
  pool.parallel_for_each(kCount, [&](std::size_t i) { ++seen[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ManyMoreTasksThanQueueCapacity) {
  // The bounded queue throttles the poster; all tasks still run.
  ThreadPool pool{2};
  std::atomic<std::int64_t> sum{0};
  constexpr std::size_t kCount = 10'000;
  pool.parallel_for_each(kCount, [&](std::size_t i) {
    sum += static_cast<std::int64_t>(i);
  });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kCount) * (kCount - 1) / 2);
}

TEST(ThreadPoolTest, ParallelMapPreservesOrder) {
  ThreadPool pool{4};
  std::vector<int> in(257);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<int>(i);
  const auto out = pool.parallel_map(in, [](const int& x) { return x * x; });
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], in[i] * in[i]);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for_each(100,
                             [&](std::size_t i) {
                               if (i == 37) throw std::runtime_error{"task 37 failed"};
                             }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  // Every task throws; the surfaced error must be task 0's regardless of
  // scheduling, so failures are reproducible.
  ThreadPool pool{8};
  try {
    pool.parallel_for_each(64, [&](std::size_t i) {
      throw std::runtime_error{std::to_string(i)};
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool{2};
  EXPECT_THROW(pool.parallel_for_each(
                   8, [](std::size_t) { throw std::runtime_error{"boom"}; }),
               std::runtime_error);
  std::atomic<int> calls{0};
  pool.parallel_for_each(8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPoolTest, PostRunsTask) {
  ThreadPool pool{1};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  pool.post([&] {
    std::lock_guard<std::mutex> lk{mu};
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lk{mu};
  cv.wait(lk, [&] { return done; });
  EXPECT_TRUE(done);
}

TEST(EnvThreadCountTest, HonorsValidOverride) {
  ::setenv("FBDCSIM_THREADS", "3", 1);
  EXPECT_EQ(env_thread_count(), 3);
  ::unsetenv("FBDCSIM_THREADS");
}

TEST(EnvThreadCountTest, RejectsMalformedValues) {
  for (const char* bad : {"abc", "-2", "0", "4x", ""}) {
    ::setenv("FBDCSIM_THREADS", bad, 1);
    EXPECT_GE(env_thread_count(), 1) << bad;
    // Malformed values fall back to hardware concurrency, never crash.
  }
  ::unsetenv("FBDCSIM_THREADS");
  EXPECT_GE(env_thread_count(), 1);
}

}  // namespace
}  // namespace fbdcsim::runtime
