#include "fbdcsim/monitoring/capture.h"

#include <gtest/gtest.h>

namespace fbdcsim::monitoring {
namespace {

core::PacketHeader packet_between(core::Ipv4Addr src, core::Ipv4Addr dst) {
  core::PacketHeader pkt;
  pkt.tuple = core::FiveTuple{src, dst, 40000, 80, core::Protocol::kTcp};
  pkt.frame_bytes = 200;
  return pkt;
}

TEST(CaptureBufferTest, RecordsUpToCapacity) {
  CaptureBuffer buf{3 * CaptureBuffer::kRecordBytes};
  EXPECT_EQ(buf.capacity_records(), 3);
  core::PacketHeader pkt;
  EXPECT_TRUE(buf.record(pkt));
  EXPECT_TRUE(buf.record(pkt));
  EXPECT_TRUE(buf.record(pkt));
  EXPECT_FALSE(buf.record(pkt));
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.dropped(), 1);
}

TEST(CaptureBufferTest, SpoolHandsOffAndClears) {
  CaptureBuffer buf;
  core::PacketHeader pkt;
  pkt.frame_bytes = 777;
  EXPECT_TRUE(buf.record(pkt));
  const auto trace = buf.spool();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].frame_bytes, 777);
  EXPECT_TRUE(buf.empty());
}

TEST(CaptureBufferTest, TinyLimitStillHoldsOneRecord) {
  CaptureBuffer buf{1};
  core::PacketHeader pkt;
  EXPECT_TRUE(buf.record(pkt));
  EXPECT_FALSE(buf.record(pkt));
}

TEST(PortMirrorTest, MirrorsBothDirections) {
  const core::Ipv4Addr monitored{10, 0, 0, 1};
  const core::Ipv4Addr other{10, 0, 0, 2};
  const core::Ipv4Addr third{10, 0, 0, 3};
  CaptureBuffer buf;
  PortMirror mirror{{monitored}, buf};

  mirror.observe(packet_between(monitored, other));  // outbound
  mirror.observe(packet_between(other, monitored));  // inbound
  mirror.observe(packet_between(other, third));      // unrelated
  EXPECT_EQ(buf.size(), 2u);
}

TEST(PortMirrorTest, WholeRackMirroring) {
  const core::Ipv4Addr a{10, 0, 0, 1};
  const core::Ipv4Addr b{10, 0, 0, 2};
  const core::Ipv4Addr c{10, 0, 0, 3};
  CaptureBuffer buf;
  PortMirror mirror{{a, b}, buf};
  mirror.observe(packet_between(a, c));
  mirror.observe(packet_between(c, b));
  mirror.observe(packet_between(a, b));  // intra-rack: recorded once
  mirror.observe(packet_between(c, c));
  EXPECT_EQ(buf.size(), 3u);
}

}  // namespace
}  // namespace fbdcsim::monitoring
