#include "fbdcsim/monitoring/fbflow.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::monitoring {
namespace {

using core::DataSize;
using core::Duration;
using core::TimePoint;

topology::Fleet small_fleet() {
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 1;
  cfg.frontend_clusters = 1;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 1;
  cfg.database_clusters = 1;
  cfg.service_clusters = 1;
  cfg.racks_per_cluster = 4;
  cfg.hosts_per_rack = 4;
  cfg.frontend_web_racks = 2;
  cfg.frontend_cache_racks = 1;
  cfg.frontend_multifeed_racks = 1;
  return topology::build_standard_fleet(cfg);
}

core::FlowRecord flow_between(const topology::Fleet& fleet, core::HostId src, core::HostId dst,
                              std::int64_t bytes, std::int64_t packets) {
  core::FlowRecord f;
  f.tuple = core::FiveTuple{fleet.host(src).addr, fleet.host(dst).addr, 40000, 80,
                            core::Protocol::kTcp};
  f.src_host = src;
  f.dst_host = dst;
  f.start = TimePoint::zero();
  f.duration = Duration::seconds(10);
  f.bytes = DataSize::bytes(bytes);
  f.packets = packets;
  return f;
}

TEST(PacketSamplerTest, SelectsOneInN) {
  core::RngStream rng{3};
  PacketSampler sampler{100, rng};
  std::int64_t selected = 0;
  const std::int64_t n = 1'000'000;
  for (std::int64_t i = 0; i < n; ++i) {
    if (sampler.sample()) ++selected;
  }
  EXPECT_NEAR(static_cast<double>(selected), 10'000.0, 5.0);  // counting sampler is exact
}

TEST(PacketSamplerTest, RateOneSelectsEverything) {
  core::RngStream rng{3};
  PacketSampler sampler{1, rng};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sampler.sample());
}

TEST(AnalyticSamplerTest, ExpectationMatchesRate) {
  const topology::Fleet fleet = small_fleet();
  AnalyticSampler sampler{1000, core::RngStream{5}};
  std::int64_t selected = 0;
  // 2000 flows x 5000 packets = 10M packets; expect ~10k samples.
  const auto flow = flow_between(fleet, core::HostId{0}, core::HostId{5}, 5'000'000, 5'000);
  for (int i = 0; i < 2000; ++i) {
    sampler.sample_flow(flow, [&](const SampledPacket&) { ++selected; });
  }
  EXPECT_NEAR(static_cast<double>(selected), 10'000.0, 400.0);
}

TEST(AnalyticSamplerTest, SampleTimestampsWithinFlow) {
  const topology::Fleet fleet = small_fleet();
  AnalyticSampler sampler{10, core::RngStream{5}};
  auto flow = flow_between(fleet, core::HostId{0}, core::HostId{5}, 100'000, 1'000);
  flow.start = TimePoint::from_seconds(5.0);
  flow.duration = Duration::seconds(2);
  sampler.sample_flow(flow, [&](const SampledPacket& s) {
    EXPECT_GE(s.captured_at, flow.start);
    EXPECT_LE(s.captured_at, flow.end());
    EXPECT_EQ(s.tuple, flow.tuple);
  });
}

TEST(AnalyticSamplerTest, ZeroPacketFlowIsIgnored) {
  const topology::Fleet fleet = small_fleet();
  AnalyticSampler sampler{10, core::RngStream{5}};
  auto flow = flow_between(fleet, core::HostId{0}, core::HostId{5}, 0, 0);
  sampler.sample_flow(flow, [&](const SampledPacket&) { FAIL(); });
}

TEST(TaggerTest, AnnotatesTopologyMetadata) {
  const topology::Fleet fleet = small_fleet();
  const Tagger tagger{fleet};
  const core::HostId src{0};
  const core::HostId dst{5};

  SampledPacket s;
  s.captured_at = TimePoint::from_seconds(90.0);
  s.tuple = core::FiveTuple{fleet.host(src).addr, fleet.host(dst).addr, 40000, 80,
                            core::Protocol::kTcp};
  s.frame_bytes = 1000;
  s.reporter = src;

  TaggedSample tagged;
  ASSERT_TRUE(tagger.tag(s, tagged));
  EXPECT_EQ(tagged.src_host, src);
  EXPECT_EQ(tagged.dst_host, dst);
  EXPECT_EQ(tagged.src_rack, fleet.host(src).rack);
  EXPECT_EQ(tagged.dst_cluster, fleet.host(dst).cluster);
  EXPECT_EQ(tagged.locality, fleet.locality(src, dst));
  EXPECT_EQ(tagged.minute, 1);
}

TEST(TaggerTest, RejectsUnknownAddresses) {
  const topology::Fleet fleet = small_fleet();
  const Tagger tagger{fleet};
  SampledPacket s;
  s.tuple = core::FiveTuple{core::Ipv4Addr{192, 168, 0, 1}, fleet.hosts()[0].addr, 1, 2,
                            core::Protocol::kTcp};
  TaggedSample tagged;
  EXPECT_FALSE(tagger.tag(s, tagged));
}

TEST(ScribeBusTest, FanOutToSubscribers) {
  ScribeBus bus;
  int a = 0, b = 0;
  bus.subscribe([&](const SampledPacket&) { ++a; });
  bus.subscribe([&](const SampledPacket&) { ++b; });
  bus.publish(SampledPacket{});
  bus.publish(SampledPacket{});
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(bus.published(), 2);
}

TEST(ScubaTableTest, LocalityBytesScaledBySamplingRate) {
  const topology::Fleet fleet = small_fleet();
  const Tagger tagger{fleet};
  ScubaTable table;

  // One intra-rack sample (hosts 0,1) and one inter-DC (0, last host).
  auto make = [&](core::HostId src, core::HostId dst, std::int64_t bytes) {
    SampledPacket s;
    s.tuple = core::FiveTuple{fleet.host(src).addr, fleet.host(dst).addr, 40000, 80,
                              core::Protocol::kTcp};
    s.frame_bytes = bytes;
    TaggedSample tagged;
    EXPECT_TRUE(tagger.tag(s, tagged));
    table.add(tagged);
  };
  make(core::HostId{0}, core::HostId{1}, 100);
  make(core::HostId{0}, fleet.hosts().back().id, 300);

  const auto bytes = table.locality_bytes(30'000);
  EXPECT_DOUBLE_EQ(bytes.bytes[static_cast<int>(core::Locality::kIntraRack)], 100.0 * 30'000);
  EXPECT_DOUBLE_EQ(bytes.bytes[static_cast<int>(core::Locality::kInterDatacenter)],
                   300.0 * 30'000);
  const auto pct = bytes.percentages();
  EXPECT_NEAR(pct[static_cast<int>(core::Locality::kIntraRack)], 25.0, 1e-9);
  EXPECT_NEAR(pct[static_cast<int>(core::Locality::kInterDatacenter)], 75.0, 1e-9);
}

TEST(ScubaTableTest, RackMatrixPlacesBytes) {
  const topology::Fleet fleet = small_fleet();
  const Tagger tagger{fleet};
  ScubaTable table;

  // Frontend cluster is cluster 0 with 4 racks of 4 hosts.
  const auto& cluster = fleet.cluster(core::ClusterId{0});
  const core::HostId a = fleet.rack(cluster.racks[0]).hosts[0];
  const core::HostId b = fleet.rack(cluster.racks[2]).hosts[1];
  SampledPacket s;
  s.tuple = core::FiveTuple{fleet.host(a).addr, fleet.host(b).addr, 40000, 80,
                            core::Protocol::kTcp};
  s.frame_bytes = 10;
  TaggedSample tagged;
  ASSERT_TRUE(tagger.tag(s, tagged));
  table.add(tagged);

  const auto m = table.rack_matrix(fleet, core::ClusterId{0}, 100);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_DOUBLE_EQ(m[0][2], 1000.0);
  EXPECT_DOUBLE_EQ(m[2][0], 0.0);
}

TEST(FbflowPipelineTest, FlowModeEndToEnd) {
  const topology::Fleet fleet = small_fleet();
  FbflowPipeline pipeline{fleet, 100, core::RngStream{7}};
  // A hefty intra-cluster flow: expect ~1000 samples at 1:100.
  const auto flow = flow_between(fleet, core::HostId{0}, core::HostId{5}, 100'000'000, 100'000);
  pipeline.offer_flow(flow);
  EXPECT_NEAR(static_cast<double>(pipeline.scuba().size()), 1000.0, 150.0);
  EXPECT_EQ(pipeline.tag_failures(), 0);
  // Estimated bytes should be near the true flow bytes.
  const auto bytes = pipeline.scuba().locality_bytes(pipeline.sampling_rate());
  EXPECT_NEAR(bytes.total(), 100'000'000.0 * core::wire::tcp_frame_bytes(1000) / 1000.0,
              2.5e7);
}

TEST(FbflowPipelineTest, PacketModeSamples) {
  const topology::Fleet fleet = small_fleet();
  FbflowPipeline pipeline{fleet, 10, core::RngStream{7}};
  core::PacketHeader pkt;
  pkt.tuple = core::FiveTuple{fleet.hosts()[0].addr, fleet.hosts()[5].addr, 40000, 80,
                              core::Protocol::kTcp};
  pkt.frame_bytes = 100;
  for (int i = 0; i < 10'000; ++i) pipeline.offer_packet(core::HostId{0}, pkt);
  EXPECT_NEAR(static_cast<double>(pipeline.scuba().size()), 1000.0, 10.0);
}

TEST(FbflowPipelineTest, SamplingIndependentOfCrossHostInterleaving) {
  // The determinism contract behind parallel fleet runs: each reporter host
  // samples from its own forked stream, so host A's samples are the same
  // whether A's flows arrive grouped or interleaved with host B's.
  const topology::Fleet fleet = small_fleet();
  const core::HostId a{0}, b{1}, dst{5};
  const auto flow_a = flow_between(fleet, a, dst, 10'000'000, 10'000);
  const auto flow_b = flow_between(fleet, b, dst, 10'000'000, 10'000);

  FbflowPipeline interleaved{fleet, 100, core::RngStream{7}};
  for (int i = 0; i < 4; ++i) {
    interleaved.offer_flow(flow_a);
    interleaved.offer_flow(flow_b);
  }
  FbflowPipeline grouped{fleet, 100, core::RngStream{7}};
  for (int i = 0; i < 4; ++i) grouped.offer_flow(flow_a);
  for (int i = 0; i < 4; ++i) grouped.offer_flow(flow_b);

  // Per-host sample sequences must match exactly (timestamps and bytes).
  const auto rows_for = [](const FbflowPipeline& p, core::HostId reporter) {
    std::vector<std::pair<std::int64_t, std::int64_t>> rows;
    for (const TaggedSample& row : p.scuba().rows()) {
      if (row.src_host == reporter) {
        rows.emplace_back(row.sample.captured_at.count_nanos(), row.sample.frame_bytes);
      }
    }
    return rows;
  };
  for (const core::HostId host : {a, b}) {
    const auto lhs = rows_for(interleaved, host);
    const auto rhs = rows_for(grouped, host);
    ASSERT_FALSE(lhs.empty());
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(FbflowPipelineTest, MergeReproducesSerialPipeline) {
  // Two shard pipelines (same seed, disjoint reporter hosts) merged in
  // shard order match a serial pipeline fed the grouped flow stream.
  const topology::Fleet fleet = small_fleet();
  const core::HostId a{0}, b{1}, dst{5};
  const auto flow_a = flow_between(fleet, a, dst, 10'000'000, 10'000);
  const auto flow_b = flow_between(fleet, b, dst, 10'000'000, 10'000);

  FbflowPipeline serial{fleet, 100, core::RngStream{7}};
  for (int i = 0; i < 4; ++i) serial.offer_flow(flow_a);
  for (int i = 0; i < 4; ++i) serial.offer_flow(flow_b);

  FbflowPipeline shard_a{fleet, 100, core::RngStream{7}};
  for (int i = 0; i < 4; ++i) shard_a.offer_flow(flow_a);
  FbflowPipeline shard_b{fleet, 100, core::RngStream{7}};
  for (int i = 0; i < 4; ++i) shard_b.offer_flow(flow_b);
  shard_a.merge(shard_b);

  ASSERT_EQ(shard_a.scuba().size(), serial.scuba().size());
  const auto merged_rows = shard_a.scuba().rows();
  const auto serial_rows = serial.scuba().rows();
  for (std::size_t i = 0; i < merged_rows.size(); ++i) {
    EXPECT_EQ(merged_rows[i].sample.captured_at.count_nanos(),
              serial_rows[i].sample.captured_at.count_nanos())
        << i;
    EXPECT_EQ(merged_rows[i].sample.frame_bytes, serial_rows[i].sample.frame_bytes) << i;
    EXPECT_EQ(merged_rows[i].src_host, serial_rows[i].src_host) << i;
  }
  EXPECT_EQ(shard_a.scribe().published(), serial.scribe().published());
  EXPECT_EQ(shard_a.tag_failures(), serial.tag_failures());

  const auto merged_loc = shard_a.scuba().locality_bytes(100);
  const auto serial_loc = serial.scuba().locality_bytes(100);
  for (int l = 0; l < core::kNumLocalities; ++l) {
    EXPECT_EQ(merged_loc.bytes[l], serial_loc.bytes[l]) << l;
  }
}

TEST(FbflowPipelineTest, MergeRejectsMismatchedSamplingRates) {
  const topology::Fleet fleet = small_fleet();
  FbflowPipeline a{fleet, 100, core::RngStream{7}};
  const FbflowPipeline b{fleet, 200, core::RngStream{7}};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace fbdcsim::monitoring
