// Property tests for LinkStats::merge (the §4.1 per-shard accumulator) and
// the fault-adjusted utilization view. Merge must commute and associate
// with the empty accumulator as identity, over hundreds of seeded random
// charge sets — the guarantee the parallel fleet runner's per-shard
// LinkStats rely on.
#include "fbdcsim/monitoring/link_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "fbdcsim/core/rng.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::monitoring {
namespace {

using core::DataSize;
using core::Duration;
using core::TimePoint;

constexpr int kCases = 200;
constexpr std::int64_t kMinutes = 3;

class LinkStatsMergeLawsTest : public ::testing::Test {
 protected:
  LinkStatsMergeLawsTest()
      : fleet_{topology::build_single_cluster_fleet(topology::ClusterType::kHadoop, 2, 2)},
        net_{topology::FourPostBuilder{}.build(fleet_)} {}

  /// A LinkStats with 0..40 random charges over random links and times.
  LinkStats random_stats(core::RngStream& rng) const {
    LinkStats stats{net_, Duration::minutes(kMinutes)};
    const std::int64_t n = rng.uniform_int(0, 40);
    const auto links = net_.links();
    for (std::int64_t i = 0; i < n; ++i) {
      const auto& link = links[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1))];
      const double start_s = rng.uniform(0.0, 150.0);
      const double dur_s = rng.uniform(0.0, 30.0);
      stats.add(link.id, TimePoint::from_seconds(start_s), Duration::nanos(static_cast<std::int64_t>(dur_s * 1e9)),
                DataSize::bytes(rng.uniform_int(1, 100'000'000)));
    }
    return stats;
  }

  void expect_near_everywhere(const LinkStats& a, const LinkStats& b) const {
    for (const topology::Link& link : net_.links()) {
      for (std::int64_t m = 0; m < kMinutes; ++m) {
        const double ua = a.utilization(link.id, m);
        const double ub = b.utilization(link.id, m);
        ASSERT_NEAR(ua, ub, 1e-12 * std::max(1.0, std::abs(ua)))
            << "link " << link.id.value() << " minute " << m;
      }
    }
  }

  void expect_equal_everywhere(const LinkStats& a, const LinkStats& b) const {
    for (const topology::Link& link : net_.links()) {
      for (std::int64_t m = 0; m < kMinutes; ++m) {
        ASSERT_EQ(a.utilization(link.id, m), b.utilization(link.id, m))
            << "link " << link.id.value() << " minute " << m;
      }
    }
  }

  topology::Fleet fleet_;
  topology::Network net_;
};

TEST_F(LinkStatsMergeLawsTest, MergeCommutes) {
  core::RngStream rng{201};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    const LinkStats a = random_stats(rng);
    const LinkStats b = random_stats(rng);
    LinkStats ab = a;
    ab.merge(b);
    LinkStats ba = b;
    ba.merge(a);
    // x + y == y + x bitwise: each cell sums the same two addends.
    expect_equal_everywhere(ab, ba);
  }
}

TEST_F(LinkStatsMergeLawsTest, MergeAssociatesWithinFloatTolerance) {
  core::RngStream rng{202};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    const LinkStats a = random_stats(rng);
    const LinkStats b = random_stats(rng);
    const LinkStats d = random_stats(rng);
    LinkStats left = a;  // (a + b) + d
    left.merge(b);
    left.merge(d);
    LinkStats bd = b;  // a + (b + d)
    bd.merge(d);
    LinkStats right = a;
    right.merge(bd);
    expect_near_everywhere(left, right);
  }
}

TEST_F(LinkStatsMergeLawsTest, EmptyIsIdentity) {
  core::RngStream rng{203};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    const LinkStats a = random_stats(rng);
    const LinkStats empty{net_, Duration::minutes(kMinutes)};
    LinkStats left = empty;  // empty + a
    left.merge(a);
    LinkStats right = a;  // a + empty
    right.merge(empty);
    expect_equal_everywhere(left, a);
    expect_equal_everywhere(right, a);
  }
}

TEST_F(LinkStatsMergeLawsTest, ShardMergeMatchesSerialWithinTolerance) {
  core::RngStream rng{204};
  for (int c = 0; c < 50; ++c) {
    SCOPED_TRACE(c);
    LinkStats serial{net_, Duration::minutes(kMinutes)};
    std::vector<LinkStats> shards;
    for (int s = 0; s < 3; ++s) shards.emplace_back(net_, Duration::minutes(kMinutes));
    const auto links = net_.links();
    const std::int64_t n = rng.uniform_int(1, 60);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto& link = links[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1))];
      const TimePoint start = TimePoint::from_seconds(rng.uniform(0.0, 150.0));
      const Duration dur = Duration::nanos(rng.uniform_int(0, 20'000'000'000LL));
      const DataSize bytes = DataSize::bytes(rng.uniform_int(1, 50'000'000));
      serial.add(link.id, start, dur, bytes);
      shards[static_cast<std::size_t>(rng.uniform_int(0, 2))].add(link.id, start, dur,
                                                                  bytes);
    }
    LinkStats merged = shards[0];
    merged.merge(shards[1]);
    merged.merge(shards[2]);
    expect_near_everywhere(merged, serial);
  }
}

TEST_F(LinkStatsMergeLawsTest, FaultedUtilizationWithNullOrDisabledPlanIsExact) {
  core::RngStream rng{205};
  const LinkStats stats = random_stats(rng);
  const faults::FaultPlan disabled{faults::FaultConfig{}};
  for (const topology::Link& link : net_.links()) {
    for (std::int64_t m = 0; m < kMinutes; ++m) {
      const double plain = stats.utilization(link.id, m);
      EXPECT_EQ(stats.faulted_utilization(link.id, m, nullptr), plain);
      EXPECT_EQ(stats.faulted_utilization(link.id, m, &disabled), plain);
    }
  }
}

TEST_F(LinkStatsMergeLawsTest, FaultedUtilizationScalesByCapacityFactor) {
  faults::FaultConfig cfg;
  cfg.profile = faults::Profile::kCustom;
  cfg.link_degrade_prob = 1.0;  // every link degraded every minute
  cfg.link_degrade_factor = 0.5;
  const faults::FaultPlan plan{cfg};

  LinkStats stats{net_, Duration::minutes(1)};
  const core::LinkId link = net_.access_uplink(core::HostId{0});
  stats.add(link, TimePoint::zero(), Duration::seconds(60), DataSize::bytes(7'500'000'000));
  // 10% of full capacity is 20% of half capacity.
  EXPECT_NEAR(stats.utilization(link, 0), 0.10, 1e-9);
  EXPECT_NEAR(stats.faulted_utilization(link, 0, &plan), 0.20, 1e-9);
}

TEST_F(LinkStatsMergeLawsTest, FaultedUtilizationOnFailedLinkSaturatesOrIdles) {
  faults::FaultConfig cfg;
  cfg.profile = faults::Profile::kCustom;
  cfg.link_fail_prob = 1.0;  // every link hard-failed every minute
  const faults::FaultPlan plan{cfg};

  LinkStats stats{net_, Duration::minutes(2)};
  const core::LinkId link = net_.access_uplink(core::HostId{0});
  stats.add(link, TimePoint::zero(), Duration::seconds(30), DataSize::bytes(1'000));
  // Charged minute: anything across a failed link means saturation.
  EXPECT_DOUBLE_EQ(stats.faulted_utilization(link, 0, &plan), 1.0);
  // Uncharged minute: a failed idle link is just idle.
  EXPECT_DOUBLE_EQ(stats.faulted_utilization(link, 1, &plan), 0.0);
}

}  // namespace
}  // namespace fbdcsim::monitoring
