#include "fbdcsim/monitoring/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "fbdcsim/core/rng.h"

namespace fbdcsim::monitoring {
namespace {

std::vector<core::PacketHeader> random_trace(std::size_t n, std::uint64_t seed = 3) {
  core::RngStream rng{seed};
  std::vector<core::PacketHeader> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::PacketHeader pkt;
    pkt.timestamp = core::TimePoint::from_nanos(static_cast<std::int64_t>(i) * 1000 +
                                                rng.uniform_int(0, 999));
    pkt.tuple = core::FiveTuple{
        core::Ipv4Addr{static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30))},
        core::Ipv4Addr{static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30))},
        static_cast<core::Port>(rng.uniform_int(1024, 65535)),
        static_cast<core::Port>(rng.uniform_int(1, 1023)),
        rng.bernoulli(0.9) ? core::Protocol::kTcp : core::Protocol::kUdp};
    pkt.payload_bytes = rng.uniform_int(0, 1460);
    pkt.frame_bytes = core::wire::tcp_frame_bytes(pkt.payload_bytes);
    pkt.flags = core::TcpFlags{.syn = rng.bernoulli(0.05), .ack = rng.bernoulli(0.8),
                               .fin = rng.bernoulli(0.05), .rst = rng.bernoulli(0.01),
                               .psh = rng.bernoulli(0.3)};
    trace.push_back(pkt);
  }
  return trace;
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const auto original = random_trace(500);
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));

  const TraceReadResult result = read_trace(buffer);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.trace.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(result.trace[i].timestamp, original[i].timestamp);
    EXPECT_EQ(result.trace[i].tuple, original[i].tuple);
    EXPECT_EQ(result.trace[i].frame_bytes, original[i].frame_bytes);
    EXPECT_EQ(result.trace[i].payload_bytes, original[i].payload_bytes);
    EXPECT_EQ(result.trace[i].flags, original[i].flags);
  }
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, {}));
  const TraceReadResult result = read_trace(buffer);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.trace.empty());
}

TEST(TraceIoTest, RejectsBadMagic) {
  std::stringstream buffer{"NOPE-this-is-not-a-trace"};
  const TraceReadResult result = read_trace(buffer);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("magic"), std::string::npos);
}

TEST(TraceIoTest, RejectsTruncation) {
  const auto original = random_trace(100);
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  const std::string full = buffer.str();
  // Chop off the tail (checksum + some records).
  std::stringstream truncated{full.substr(0, full.size() / 2)};
  const TraceReadResult result = read_trace(truncated);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.trace.empty());
}

TEST(TraceIoTest, RejectsCorruption) {
  const auto original = random_trace(100);
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  std::string bytes = buffer.str();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5A);
  std::stringstream corrupted{bytes};
  const TraceReadResult result = read_trace(corrupted);
  EXPECT_FALSE(result.ok);
}

TEST(TraceIoTest, FileRoundTrip) {
  const auto original = random_trace(64);
  const std::string path = ::testing::TempDir() + "/fbdcsim_trace_test.fbtr";
  ASSERT_TRUE(write_trace_file(path, original));
  const TraceReadResult result = read_trace_file(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.trace.size(), original.size());
}

TEST(TraceIoTest, MissingFileIsError) {
  const TraceReadResult result = read_trace_file("/nonexistent/path/foo.fbtr");
  EXPECT_FALSE(result.ok);
}

TEST(TraceIoTest, CsvExport) {
  auto trace = random_trace(3);
  trace[0].flags = core::TcpFlags{.syn = true};
  std::stringstream out;
  ASSERT_TRUE(write_trace_csv(out, trace));
  const std::string csv = out.str();
  // Header + 3 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("timestamp_ns,src,sport"), std::string::npos);
  EXPECT_NE(csv.find(",S"), std::string::npos);  // SYN flag rendered
}

class TraceIoSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TraceIoSizeSweep, RoundTripAtSize) {
  const auto original = random_trace(GetParam(), 17 + GetParam());
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original));
  const TraceReadResult result = read_trace(buffer);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.trace.size(), original.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TraceIoSizeSweep,
                         ::testing::Values(1, 2, 7, 1000, 10'000));

}  // namespace
}  // namespace fbdcsim::monitoring
