#include "fbdcsim/monitoring/rollup.h"

#include <gtest/gtest.h>

namespace fbdcsim::monitoring {
namespace {

TaggedSample sample_at(std::int64_t minute, std::uint32_t src_cluster,
                       std::uint32_t dst_cluster, std::int64_t frame_bytes,
                       core::Locality locality = core::Locality::kIntraCluster) {
  TaggedSample s;
  s.minute = minute;
  s.src_cluster = core::ClusterId{src_cluster};
  s.dst_cluster = core::ClusterId{dst_cluster};
  s.sample.frame_bytes = frame_bytes;
  s.locality = locality;
  return s;
}

TEST(HiveRollupTest, AggregatesByDay) {
  HiveRollup rollup{3, 100};
  rollup.add(sample_at(10, 0, 1, 50));               // day 0
  rollup.add(sample_at(23 * 60, 0, 1, 50));          // day 0
  rollup.add(sample_at(24 * 60 + 5, 0, 1, 50));      // day 1
  EXPECT_EQ(rollup.num_days(), 2);

  const auto day0 = rollup.cluster_matrix(0);
  EXPECT_DOUBLE_EQ(day0[0 * 3 + 1], 100.0 * 100);  // 2 samples x 50 B x rate
  const auto day1 = rollup.cluster_matrix(1);
  EXPECT_DOUBLE_EQ(day1[0 * 3 + 1], 50.0 * 100);
}

TEST(HiveRollupTest, LocalityVectorPerDay) {
  HiveRollup rollup{2, 10};
  rollup.add(sample_at(0, 0, 0, 30, core::Locality::kIntraRack));
  rollup.add(sample_at(1, 0, 1, 70, core::Locality::kInterDatacenter));
  const auto vec = rollup.locality_vector(0);
  EXPECT_DOUBLE_EQ(vec[static_cast<int>(core::Locality::kIntraRack)], 300.0);
  EXPECT_DOUBLE_EQ(vec[static_cast<int>(core::Locality::kInterDatacenter)], 700.0);
}

TEST(HiveRollupTest, MissingDayIsZeros) {
  HiveRollup rollup{2, 10};
  rollup.add(sample_at(0, 0, 1, 10));
  const auto m = rollup.cluster_matrix(7);
  for (const double v : m) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(rollup.day_similarity(0, 7), 0.0);
}

TEST(HiveRollupTest, IdenticalDaysHaveSimilarityOne) {
  HiveRollup rollup{4, 1};
  for (int day = 0; day < 2; ++day) {
    rollup.add(sample_at(day * 24 * 60, 0, 1, 100));
    rollup.add(sample_at(day * 24 * 60 + 1, 2, 3, 400));
  }
  EXPECT_NEAR(rollup.day_similarity(0, 1), 1.0, 1e-12);
}

TEST(HiveRollupTest, OrthogonalDaysHaveSimilarityZero) {
  HiveRollup rollup{4, 1};
  rollup.add(sample_at(0, 0, 1, 100));            // day 0: cell (0,1)
  rollup.add(sample_at(24 * 60, 2, 3, 100));      // day 1: cell (2,3)
  EXPECT_NEAR(rollup.day_similarity(0, 1), 0.0, 1e-12);
}

TEST(CosineSimilarityTest, Basics) {
  EXPECT_NEAR(cosine_similarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(cosine_similarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(cosine_similarity({1, 1}, {2, 2}), 1.0, 1e-12);  // scale-invariant
  EXPECT_DOUBLE_EQ(cosine_similarity({1, 0}, {1, 0, 0}), 0.0);  // size mismatch
  EXPECT_DOUBLE_EQ(cosine_similarity({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity({0, 0}, {1, 1}), 0.0);  // zero vector
}

}  // namespace
}  // namespace fbdcsim::monitoring
