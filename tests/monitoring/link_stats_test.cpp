#include "fbdcsim/monitoring/link_stats.h"

#include <gtest/gtest.h>

#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::monitoring {
namespace {

using core::DataSize;
using core::Duration;
using core::TimePoint;

class LinkStatsTest : public ::testing::Test {
 protected:
  LinkStatsTest()
      : fleet_{topology::build_single_cluster_fleet(topology::ClusterType::kHadoop, 2, 2)},
        net_{topology::FourPostBuilder{}.build(fleet_)} {}

  topology::Fleet fleet_;
  topology::Network net_;
};

TEST_F(LinkStatsTest, SingleMinuteUtilization) {
  LinkStats stats{net_, Duration::minutes(1)};
  const core::LinkId link = net_.access_uplink(core::HostId{0});
  // 10 Gbps for 60 s = 75e9 bytes at 100%; charge 7.5e9 -> 10%.
  stats.add(link, TimePoint::zero(), Duration::seconds(60), DataSize::bytes(7'500'000'000));
  EXPECT_NEAR(stats.utilization(link, 0), 0.10, 1e-9);
}

TEST_F(LinkStatsTest, SplitsAcrossMinutes) {
  LinkStats stats{net_, Duration::minutes(2)};
  const core::LinkId link = net_.access_uplink(core::HostId{0});
  // A flow spanning 30s..90s: half its bytes in each minute.
  stats.add(link, TimePoint::from_seconds(30.0), Duration::seconds(60),
            DataSize::bytes(1'000'000));
  const double m0 = stats.utilization(link, 0);
  const double m1 = stats.utilization(link, 1);
  EXPECT_NEAR(m0, m1, 1e-12);
  EXPECT_GT(m0, 0.0);
}

TEST_F(LinkStatsTest, InstantaneousChargeLandsInOneMinute) {
  LinkStats stats{net_, Duration::minutes(2)};
  const core::LinkId link = net_.access_uplink(core::HostId{0});
  stats.add(link, TimePoint::from_seconds(70.0), Duration{}, DataSize::bytes(750'000));
  EXPECT_DOUBLE_EQ(stats.utilization(link, 0), 0.0);
  EXPECT_GT(stats.utilization(link, 1), 0.0);
}

TEST_F(LinkStatsTest, PathChargesEveryLink) {
  LinkStats stats{net_, Duration::minutes(1)};
  const topology::Router router{fleet_, net_};
  const core::HostId src{0};
  const core::HostId dst{static_cast<std::uint32_t>(fleet_.num_hosts() - 1)};
  const core::FiveTuple tuple{fleet_.host(src).addr, fleet_.host(dst).addr, 40000, 80,
                              core::Protocol::kTcp};
  const auto path = router.route(src, dst, tuple);
  stats.add_path(path, TimePoint::zero(), Duration::seconds(60), DataSize::megabytes(75));
  for (const core::LinkId link : path) {
    EXPECT_GT(stats.utilization(link, 0), 0.0);
  }
}

TEST_F(LinkStatsTest, MeanUtilization) {
  LinkStats stats{net_, Duration::minutes(4)};
  const core::LinkId link = net_.access_uplink(core::HostId{0});
  stats.add(link, TimePoint::zero(), Duration::seconds(60), DataSize::bytes(7'500'000'000));
  // 10% in minute 0, 0 in the remaining three -> mean 2.5%.
  EXPECT_NEAR(stats.mean_utilization(link), 0.025, 1e-9);
}

TEST_F(LinkStatsTest, UtilizationsWhereFiltersLinks) {
  LinkStats stats{net_, Duration::minutes(1)};
  const auto access_only = stats.utilizations_where([](const topology::Link& link) {
    return link.from.kind == topology::NodeRef::Kind::kHost;
  });
  EXPECT_EQ(access_only.size(), fleet_.num_hosts());  // one uplink each, one minute
}

TEST_F(LinkStatsTest, RejectsZeroHorizon) {
  EXPECT_THROW(LinkStats(net_, Duration{}), std::invalid_argument);
}

TEST_F(LinkStatsTest, MergeSumsPerMinuteCharges) {
  const core::LinkId link = net_.access_uplink(core::HostId{0});
  LinkStats a{net_, Duration::minutes(2)};
  LinkStats b{net_, Duration::minutes(2)};
  a.add(link, TimePoint::zero(), Duration::seconds(60), DataSize::bytes(7'500'000'000));
  b.add(link, TimePoint::zero(), Duration::seconds(60), DataSize::bytes(7'500'000'000));
  b.add(link, TimePoint::from_seconds(60.0), Duration::seconds(60),
        DataSize::bytes(7'500'000'000));

  // Serial reference: all three charges into one accumulator.
  LinkStats serial{net_, Duration::minutes(2)};
  serial.add(link, TimePoint::zero(), Duration::seconds(60), DataSize::bytes(7'500'000'000));
  serial.add(link, TimePoint::zero(), Duration::seconds(60), DataSize::bytes(7'500'000'000));
  serial.add(link, TimePoint::from_seconds(60.0), Duration::seconds(60),
             DataSize::bytes(7'500'000'000));

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.utilization(link, 0), serial.utilization(link, 0));
  EXPECT_DOUBLE_EQ(a.utilization(link, 1), serial.utilization(link, 1));
  EXPECT_NEAR(a.utilization(link, 0), 0.20, 1e-9);
}

TEST_F(LinkStatsTest, MergeRejectsMismatchedShapes) {
  LinkStats two_minutes{net_, Duration::minutes(2)};
  LinkStats one_minute{net_, Duration::minutes(1)};
  EXPECT_THROW(two_minutes.merge(one_minute), std::invalid_argument);

  const topology::Fleet other_fleet =
      topology::build_single_cluster_fleet(topology::ClusterType::kHadoop, 3, 2);
  const topology::Network other_net = topology::FourPostBuilder{}.build(other_fleet);
  LinkStats other{other_net, Duration::minutes(2)};
  EXPECT_THROW(two_minutes.merge(other), std::invalid_argument);
}

}  // namespace
}  // namespace fbdcsim::monitoring
