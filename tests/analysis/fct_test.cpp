// FctTable laws: bucket edges, completed/incomplete accounting, the
// role/overall merges, and the deterministic JSON shape the bench reports
// and aggregate_reports.py consume.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fbdcsim/analysis/fct.h"
#include "fbdcsim/core/flow.h"
#include "fbdcsim/telemetry/flow_ledger.h"

namespace fbdcsim::analysis {
namespace {

telemetry::FlowLedgerRecord make_record(core::HostRole role, core::Locality locality,
                                        std::int64_t bytes, std::int64_t fct_ns,
                                        std::int64_t ideal_ns) {
  telemetry::FlowLedgerRecord r;
  r.role = role;
  r.locality = locality;
  r.bytes = bytes;
  r.start_ns = 1'000;
  r.completed_ns = fct_ns >= 0 ? 1'000 + fct_ns : -1;
  r.ideal_ns = ideal_ns;
  return r;
}

TEST(Fct, SizeBucketEdges) {
  EXPECT_EQ(fct_size_bucket(0), 0);
  EXPECT_EQ(fct_size_bucket(4'096), 0);
  EXPECT_EQ(fct_size_bucket(4'097), 1);
  EXPECT_EQ(fct_size_bucket(65'536), 1);
  EXPECT_EQ(fct_size_bucket(65'537), 2);
  EXPECT_EQ(fct_size_bucket(1'048'576), 2);
  EXPECT_EQ(fct_size_bucket(1'048'577), 3);
  EXPECT_EQ(std::string{fct_size_bucket_name(0)}, "le4k");
  EXPECT_EQ(std::string{fct_size_bucket_name(1)}, "le64k");
  EXPECT_EQ(std::string{fct_size_bucket_name(2)}, "le1m");
  EXPECT_EQ(std::string{fct_size_bucket_name(3)}, "gt1m");
}

TEST(Fct, AddRoutesToCellAndIncompleteContributesNoSamples) {
  FctTable table;
  // 10 us FCT against a 5 us ideal: slowdown exactly 2.
  table.add(make_record(core::HostRole::kWeb, core::Locality::kIntraRack, 1'000,
                        10'000, 5'000));
  table.add(make_record(core::HostRole::kWeb, core::Locality::kIntraRack, 1'000, -1,
                        5'000));  // incomplete
  EXPECT_EQ(table.completed(), 1);
  EXPECT_EQ(table.incomplete(), 1);

  const FctCell& cell =
      table.cell(core::HostRole::kWeb, core::Locality::kIntraRack, 0);
  EXPECT_EQ(cell.count, 1);
  EXPECT_EQ(cell.bytes, 1'000);
  EXPECT_DOUBLE_EQ(cell.fct_us.quantile(0.50), 10.0);
  EXPECT_DOUBLE_EQ(cell.slowdown.quantile(0.50), 2.0);
  // Nothing leaked into a neighboring cell.
  EXPECT_EQ(table.cell(core::HostRole::kWeb, core::Locality::kIntraRack, 1).count, 0);
  EXPECT_EQ(table.cell(core::HostRole::kHadoop, core::Locality::kIntraRack, 0).count, 0);
}

TEST(Fct, RoleCellAndOverallMergeAcrossCells) {
  FctTable table;
  table.add(make_record(core::HostRole::kWeb, core::Locality::kIntraRack, 1'000,
                        10'000, 5'000));
  table.add(make_record(core::HostRole::kWeb, core::Locality::kIntraCluster,
                        100'000, 40'000, 10'000));  // bucket 2, slowdown 4
  table.add(make_record(core::HostRole::kHadoop, core::Locality::kIntraRack,
                        2'000'000, 90'000, 30'000));  // slowdown 3

  FctCell web = table.role_cell(core::HostRole::kWeb);
  EXPECT_EQ(web.count, 2);
  EXPECT_EQ(web.bytes, 101'000);
  EXPECT_DOUBLE_EQ(web.slowdown.quantile(1.0), 4.0);

  FctCell all = table.overall();
  EXPECT_EQ(all.count, 3);
  EXPECT_DOUBLE_EQ(all.slowdown.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(all.slowdown.quantile(1.0), 4.0);
}

TEST(Fct, ToJsonShapeAndDeterminism) {
  FctTable table;
  table.add(make_record(core::HostRole::kHadoop, core::Locality::kIntraRack,
                        2'000'000, 90'000, 30'000));
  table.add(make_record(core::HostRole::kWeb, core::Locality::kIntraRack, 1'000,
                        10'000, 5'000));
  table.add(make_record(core::HostRole::kWeb, core::Locality::kIntraRack, 1'000, -1, 0));
  const std::string json = table.to_json();
  // Counts, fixed-order cells (Web's role index precedes Hadoop's), and
  // both quantile blocks per cell.
  EXPECT_NE(json.find("\"completed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"incomplete\":1"), std::string::npos);
  const auto web_pos = json.find("\"role\":\"Web\"");
  const auto hadoop_pos = json.find("\"role\":\"Hadoop\"");
  ASSERT_NE(web_pos, std::string::npos);
  ASSERT_NE(hadoop_pos, std::string::npos);
  EXPECT_LT(web_pos, hadoop_pos);
  EXPECT_NE(json.find("\"bucket\":\"le4k\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket\":\"gt1m\""), std::string::npos);
  EXPECT_NE(json.find("\"fct_us\":{\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"slowdown\":{\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
  // Empty cells are skipped: only the two populated cells appear.
  std::size_t cells = 0;
  for (std::size_t p = json.find("\"role\":"); p != std::string::npos;
       p = json.find("\"role\":", p + 1)) {
    ++cells;
  }
  EXPECT_EQ(cells, 2u);
  // Byte-determinism: identical inputs render identical bytes.
  FctTable again;
  again.add(make_record(core::HostRole::kHadoop, core::Locality::kIntraRack,
                        2'000'000, 90'000, 30'000));
  again.add(make_record(core::HostRole::kWeb, core::Locality::kIntraRack, 1'000,
                        10'000, 5'000));
  again.add(make_record(core::HostRole::kWeb, core::Locality::kIntraRack, 1'000, -1, 0));
  EXPECT_EQ(again.to_json(), json);
}

TEST(Fct, AddAllMatchesSequentialAdds) {
  std::vector<telemetry::FlowLedgerRecord> records;
  for (int i = 1; i <= 5; ++i) {
    records.push_back(make_record(core::HostRole::kSlb, core::Locality::kIntraDatacenter,
                                  i * 10'000, i * 1'000, 1'000));
  }
  FctTable a;
  a.add_all(records);
  FctTable b;
  for (const auto& r : records) b.add(r);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.completed(), 5);
}

}  // namespace
}  // namespace fbdcsim::analysis
