#include "fbdcsim/analysis/te_eval.h"

#include <gtest/gtest.h>

#include "fbdcsim/core/rng.h"

namespace fbdcsim::analysis {
namespace {

TEST(TeEvalTest, PerfectlyStableTrafficIsFullyPredictable) {
  BinnedTraffic binned{core::Duration::millis(100), 10};
  for (std::int64_t bin = 0; bin < 10; ++bin) {
    binned.add(bin, 1, 100.0);
    binned.add(bin, 2, 100.0);
    binned.add(bin, 3, 1.0);
  }
  const auto eval = evaluate_reactive_te(binned);
  EXPECT_EQ(eval.intervals, 9);
  // HH = {1} or {1,2}; both persist fully, covering their share of bytes.
  EXPECT_NEAR(eval.predicted_byte_coverage, eval.oracle_byte_coverage, 1e-9);
  EXPECT_GE(eval.oracle_byte_coverage, 0.5);
  EXPECT_TRUE(eval.meets_benson_threshold());
}

TEST(TeEvalTest, RotatingHeavyHittersAreUnpredictable) {
  BinnedTraffic binned{core::Duration::millis(100), 10};
  for (std::int64_t bin = 0; bin < 10; ++bin) {
    binned.add(bin, 100 + static_cast<std::uint64_t>(bin), 1000.0);  // heavy, then gone
    binned.add(bin, 1, 10.0);  // small persistent background
  }
  const auto eval = evaluate_reactive_te(binned);
  // Yesterday's heavy key carries zero bytes today.
  EXPECT_LT(eval.predicted_byte_coverage, 0.02);
  EXPECT_GE(eval.oracle_byte_coverage, 0.5);
  EXPECT_FALSE(eval.meets_benson_threshold());
}

TEST(TeEvalTest, OracleIsAlwaysAtLeastCoverage) {
  core::RngStream rng{5};
  BinnedTraffic binned{core::Duration::millis(10), 50};
  for (std::int64_t bin = 0; bin < 50; ++bin) {
    const int keys = static_cast<int>(rng.uniform_int(1, 30));
    for (int k = 0; k < keys; ++k) {
      binned.add(bin, static_cast<std::uint64_t>(rng.uniform_int(0, 99)),
                 rng.exponential(100.0));
    }
  }
  const auto eval = evaluate_reactive_te(binned, 0.5);
  EXPECT_GE(eval.oracle_byte_coverage, 0.5);
  EXPECT_LE(eval.predicted_byte_coverage, 1.0);
  EXPECT_GE(eval.predicted_byte_coverage, 0.0);
}

TEST(TeEvalTest, EmptyBinsBreakPredictionChain) {
  BinnedTraffic binned{core::Duration::millis(100), 4};
  binned.add(0, 1, 100.0);
  // bin 1 empty
  binned.add(2, 1, 100.0);
  binned.add(3, 1, 100.0);
  const auto eval = evaluate_reactive_te(binned);
  EXPECT_EQ(eval.intervals, 1);  // only the 2->3 transition counts
}

TEST(TeEvalTest, NoIntervalsGivesZeroes) {
  BinnedTraffic binned{core::Duration::millis(100), 3};
  binned.add(1, 1, 100.0);  // a single non-empty bin: nothing to predict
  const auto eval = evaluate_reactive_te(binned);
  EXPECT_EQ(eval.intervals, 0);
  EXPECT_DOUBLE_EQ(eval.predicted_byte_coverage, 0.0);
}

}  // namespace
}  // namespace fbdcsim::analysis
