// Tests for the §6.2 per-destination ON/OFF analysis.
#include <gtest/gtest.h>

#include "fbdcsim/analysis/packet_stats.h"

namespace fbdcsim::analysis {
namespace {

using core::Duration;
using core::PacketHeader;
using core::TimePoint;

PacketHeader to_dst(core::Ipv4Addr src, core::Ipv4Addr dst, double t_sec) {
  PacketHeader p;
  p.timestamp = TimePoint::from_seconds(t_sec);
  p.tuple.src_ip = src;
  p.tuple.dst_ip = dst;
  p.frame_bytes = 100;
  return p;
}

TEST(PerDestinationOnOffTest, ContinuousDestinationHasZeroIdle) {
  const core::Ipv4Addr self{10, 0, 0, 1};
  const core::Ipv4Addr dst{10, 0, 0, 2};
  std::vector<PacketHeader> trace;
  for (int i = 0; i < 100; ++i) trace.push_back(to_dst(self, dst, 0.001 * i));
  const auto cdf = per_destination_idle_fractions(trace, self, Duration::millis(1));
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf.max(), 0.0);
}

TEST(PerDestinationOnOffTest, BurstyDestinationShowsIdleGaps) {
  const core::Ipv4Addr self{10, 0, 0, 1};
  const core::Ipv4Addr dst{10, 0, 0, 2};
  std::vector<PacketHeader> trace;
  // 10 packets at t=0ms..9ms, then 10 packets at t=90..99ms: 80% idle.
  for (int i = 0; i < 10; ++i) trace.push_back(to_dst(self, dst, 0.001 * i));
  for (int i = 0; i < 10; ++i) trace.push_back(to_dst(self, dst, 0.090 + 0.001 * i));
  const auto cdf = per_destination_idle_fractions(trace, self, Duration::millis(1));
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_NEAR(cdf.max(), 0.8, 0.01);
}

TEST(PerDestinationOnOffTest, AggregateContinuousButPerDestinationOnOff) {
  // The paper's exact claim: many destinations, each bursty, interleaved so
  // the aggregate has no idle bins.
  const core::Ipv4Addr self{10, 0, 0, 1};
  std::vector<PacketHeader> trace;
  for (int d = 0; d < 10; ++d) {
    const core::Ipv4Addr dst{10, 0, 1, static_cast<std::uint8_t>(d)};
    // Each destination bursts for 10 ms out of every 100, offset by d*10ms.
    for (int cycle = 0; cycle < 5; ++cycle) {
      for (int i = 0; i < 20; ++i) {
        trace.push_back(to_dst(self, dst, 0.1 * cycle + 0.01 * d + 0.0005 * i));
      }
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const PacketHeader& a, const PacketHeader& b) {
              return a.timestamp < b.timestamp;
            });
  EXPECT_LT(idle_bin_fraction(trace, Duration::millis(10)), 0.05);
  const auto per_dest = per_destination_idle_fractions(trace, self, Duration::millis(10));
  ASSERT_EQ(per_dest.size(), 10u);
  EXPECT_GT(per_dest.median(), 0.5);
}

TEST(PerDestinationOnOffTest, MinPacketFilter) {
  const core::Ipv4Addr self{10, 0, 0, 1};
  std::vector<PacketHeader> trace;
  // One destination with 2 packets (below min), one with 20.
  trace.push_back(to_dst(self, core::Ipv4Addr{10, 0, 1, 1}, 0.0));
  trace.push_back(to_dst(self, core::Ipv4Addr{10, 0, 1, 1}, 0.05));
  for (int i = 0; i < 20; ++i) {
    trace.push_back(to_dst(self, core::Ipv4Addr{10, 0, 1, 2}, 0.001 * i));
  }
  const auto cdf = per_destination_idle_fractions(trace, self, Duration::millis(1), 10);
  EXPECT_EQ(cdf.size(), 1u);
}

TEST(PerDestinationOnOffTest, InboundTrafficIgnored) {
  const core::Ipv4Addr self{10, 0, 0, 1};
  const core::Ipv4Addr other{10, 0, 0, 2};
  std::vector<PacketHeader> trace;
  for (int i = 0; i < 20; ++i) trace.push_back(to_dst(other, self, 0.001 * i));
  const auto cdf = per_destination_idle_fractions(trace, self, Duration::millis(1));
  EXPECT_TRUE(cdf.empty());
}

}  // namespace
}  // namespace fbdcsim::analysis
