#include "fbdcsim/analysis/heavy_hitters.h"

#include <gtest/gtest.h>

#include <numeric>

#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::analysis {
namespace {

using Bin = std::unordered_map<std::uint64_t, double>;

TEST(HeavyHittersOfTest, MinimalCoverSelected) {
  // 50, 30, 15, 5: total 100. 50% coverage needs just {a}.
  const Bin bin{{1, 50.0}, {2, 30.0}, {3, 15.0}, {4, 5.0}};
  const auto hh = heavy_hitters_of(bin, 0.5);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0], 1u);
}

TEST(HeavyHittersOfTest, CoverageThresholdRespected) {
  const Bin bin{{1, 50.0}, {2, 30.0}, {3, 15.0}, {4, 5.0}};
  EXPECT_EQ(heavy_hitters_of(bin, 0.51).size(), 2u);
  EXPECT_EQ(heavy_hitters_of(bin, 0.80).size(), 2u);
  EXPECT_EQ(heavy_hitters_of(bin, 0.81).size(), 3u);
  EXPECT_EQ(heavy_hitters_of(bin, 1.0).size(), 4u);
}

TEST(HeavyHittersOfTest, UniformTrafficNeedsHalfTheKeys) {
  Bin bin;
  for (std::uint64_t k = 0; k < 100; ++k) bin[k] = 1.0;
  EXPECT_EQ(heavy_hitters_of(bin, 0.5).size(), 50u);
}

TEST(HeavyHittersOfTest, EmptyBin) {
  EXPECT_TRUE(heavy_hitters_of(Bin{}, 0.5).empty());
}

TEST(HeavyHittersOfTest, InvarianceToInsertionOrder) {
  Bin a, b;
  for (std::uint64_t k = 0; k < 50; ++k) a[k] = static_cast<double>(k % 7 + 1);
  for (std::uint64_t k = 50; k-- > 0;) b[k] = static_cast<double>(k % 7 + 1);
  EXPECT_EQ(heavy_hitters_of(a), heavy_hitters_of(b));
}

TEST(HhPersistenceTest, IdenticalBinsFullyPersist) {
  BinnedTraffic binned{core::Duration::millis(1), 5};
  for (std::int64_t bin = 0; bin < 5; ++bin) {
    binned.add(bin, 1, 100.0);
    binned.add(bin, 2, 10.0);
  }
  const auto persist = hh_persistence(binned);
  ASSERT_EQ(persist.size(), 4u);
  for (const double p : persist) EXPECT_DOUBLE_EQ(p, 100.0);
}

TEST(HhPersistenceTest, DisjointHeavyHittersNeverPersist) {
  BinnedTraffic binned{core::Duration::millis(1), 4};
  for (std::int64_t bin = 0; bin < 4; ++bin) {
    binned.add(bin, static_cast<std::uint64_t>(bin) + 100, 100.0);  // rotating heavy key
    binned.add(bin, 1, 1.0);
  }
  const auto persist = hh_persistence(binned);
  ASSERT_EQ(persist.size(), 3u);
  for (const double p : persist) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(HhPersistenceTest, EmptyBinBreaksChain) {
  BinnedTraffic binned{core::Duration::millis(1), 3};
  binned.add(0, 1, 100.0);
  // bin 1 empty
  binned.add(2, 1, 100.0);
  EXPECT_TRUE(hh_persistence(binned).empty());
}

TEST(HhSecondIntersectionTest, StableTrafficFullyIntersects) {
  // 10 sub-bins per second, same heavy key everywhere.
  BinnedTraffic sub{core::Duration::millis(100), 20};
  BinnedTraffic sec{core::Duration::seconds(1), 2};
  for (std::int64_t i = 0; i < 20; ++i) {
    sub.add(i, 7, 100.0);
    sub.add(i, 8, 10.0);
  }
  for (std::int64_t i = 0; i < 2; ++i) {
    sec.add(i, 7, 1000.0);
    sec.add(i, 8, 100.0);
  }
  const auto inter = hh_second_intersection(sub, sec);
  ASSERT_EQ(inter.size(), 20u);
  for (const double v : inter) EXPECT_DOUBLE_EQ(v, 100.0);
}

TEST(HhSecondIntersectionTest, EphemeralSubHittersScoreZero) {
  BinnedTraffic sub{core::Duration::millis(100), 10};
  BinnedTraffic sec{core::Duration::seconds(1), 1};
  // Each sub-bin has a unique instantaneous heavy key; the second's heavy
  // key is a slow background key.
  for (std::int64_t i = 0; i < 10; ++i) {
    sub.add(i, 100 + static_cast<std::uint64_t>(i), 50.0);
    sub.add(i, 7, 10.0);
    sec.add(0, 100 + static_cast<std::uint64_t>(i), 50.0 / 10);
  }
  sec.add(0, 7, 1000.0);  // dominates the enclosing second
  const auto inter = hh_second_intersection(sub, sec);
  ASSERT_EQ(inter.size(), 10u);
  for (const double v : inter) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(HhStatsTest, CountsAndRates) {
  BinnedTraffic binned{core::Duration::millis(1), 3};
  // Each bin: one key with 125 bytes in 1 ms = 1 Mbps.
  for (std::int64_t bin = 0; bin < 3; ++bin) binned.add(bin, 1, 125.0);
  const auto stats = hh_stats(binned);
  EXPECT_EQ(stats.count_per_bin.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.count_per_bin.median(), 1.0);
  EXPECT_DOUBLE_EQ(stats.size_mbps.median(), 1.0);
}

TEST(BinOutboundTest, BinsAndKeysPackets) {
  const auto fleet =
      topology::build_single_cluster_fleet(topology::ClusterType::kFrontend, 4, 4);
  const AddrResolver resolver{fleet};
  const core::Ipv4Addr self = fleet.hosts()[0].addr;

  std::vector<core::PacketHeader> trace;
  auto add = [&](core::HostId dst, double t, std::int64_t bytes) {
    core::PacketHeader p;
    p.timestamp = core::TimePoint::from_seconds(t);
    p.tuple = core::FiveTuple{self, fleet.host(dst).addr, 100, 80, core::Protocol::kTcp};
    p.frame_bytes = bytes;
    trace.push_back(p);
  };
  add(core::HostId{4}, 0.0005, 100);   // bin 0
  add(core::HostId{4}, 0.0015, 200);   // bin 1
  add(core::HostId{8}, 0.0015, 300);   // bin 1, different rack

  const auto binned = bin_outbound(trace, self, resolver, AggLevel::kRack,
                                   core::Duration::millis(1), core::TimePoint::zero(),
                                   core::Duration::millis(3));
  EXPECT_EQ(binned.num_bins(), 3u);
  EXPECT_EQ(binned.bin(0).size(), 1u);
  EXPECT_EQ(binned.bin(1).size(), 2u);
  EXPECT_TRUE(binned.bin(2).empty());
  const std::uint64_t rack1 = fleet.host(core::HostId{4}).rack.value();
  EXPECT_DOUBLE_EQ(binned.bin(1).at(rack1), 200.0);
}

}  // namespace
}  // namespace fbdcsim::analysis
