#include "fbdcsim/analysis/packet_stats.h"

#include <gtest/gtest.h>

#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::analysis {
namespace {

using core::Duration;
using core::PacketHeader;
using core::TimePoint;

PacketHeader raw_packet(double t_sec, std::int64_t frame, core::TcpFlags flags = {}) {
  PacketHeader p;
  p.timestamp = TimePoint::from_seconds(t_sec);
  p.frame_bytes = frame;
  p.flags = flags;
  return p;
}

TEST(PacketSizeCdfTest, MatchesSamples) {
  const std::vector<PacketHeader> trace{raw_packet(0, 64), raw_packet(0, 200),
                                        raw_packet(0, 1514)};
  const auto cdf = packet_size_cdf(trace);
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.median(), 200.0);
}

TEST(SynInterarrivalTest, OnlyInitialSynsCount) {
  const core::Ipv4Addr self{10, 0, 0, 1};
  std::vector<PacketHeader> trace;
  auto add = [&](double t, bool syn, bool ack, core::Ipv4Addr src) {
    PacketHeader p = raw_packet(t, 64, {.syn = syn, .ack = ack});
    p.tuple.src_ip = src;
    trace.push_back(p);
  };
  add(0.000, true, false, self);
  add(0.001, true, true, self);                     // SYN-ACK: ignored
  add(0.002, false, true, self);                    // data: ignored
  add(0.003, true, false, core::Ipv4Addr{1, 2, 3, 4});  // inbound: ignored
  add(0.010, true, false, self);
  add(0.040, true, false, self);

  const auto cdf = syn_interarrival_cdf(trace, self);
  ASSERT_EQ(cdf.size(), 2u);  // gaps: 10 ms, 30 ms
  EXPECT_DOUBLE_EQ(cdf.min(), 10'000.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 30'000.0);
}

TEST(ArrivalCountsTest, BinsPackets) {
  std::vector<PacketHeader> trace;
  for (int i = 0; i < 10; ++i) trace.push_back(raw_packet(0.001 * i, 100));
  const auto counts = arrival_counts(trace, Duration::millis(5));
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 5);
  EXPECT_EQ(counts[1], 5);
}

TEST(IdleBinFractionTest, ContinuousVsOnOff) {
  // Continuous: a packet every ms for 100 ms.
  std::vector<PacketHeader> continuous;
  for (int i = 0; i < 100; ++i) continuous.push_back(raw_packet(0.001 * i, 100));
  EXPECT_DOUBLE_EQ(idle_bin_fraction(continuous, Duration::millis(10)), 0.0);

  // ON/OFF: 10 ms on, 90 ms off, repeated.
  std::vector<PacketHeader> onoff;
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 10; ++i) {
      onoff.push_back(raw_packet(0.1 * burst + 0.001 * i, 100));
    }
  }
  EXPECT_GT(idle_bin_fraction(onoff, Duration::millis(10)), 0.5);
}

TEST(IdleBinFractionTest, EmptyTraceIsFullyIdle) {
  EXPECT_DOUBLE_EQ(idle_bin_fraction({}, Duration::millis(10)), 1.0);
}

class RateStabilityTest : public ::testing::Test {
 protected:
  RateStabilityTest()
      : fleet_{topology::build_single_cluster_fleet(topology::ClusterType::kFrontend, 8, 4)},
        resolver_{fleet_},
        self_{fleet_.hosts()[0].addr} {}

  PacketHeader to_host(core::HostId dst, double t, std::int64_t bytes) {
    PacketHeader p = raw_packet(t, bytes);
    p.tuple.src_ip = self_;
    p.tuple.dst_ip = fleet_.host(dst).addr;
    return p;
  }

  topology::Fleet fleet_;
  AddrResolver resolver_;
  core::Ipv4Addr self_;
};

TEST_F(RateStabilityTest, PerRackRatesAccumulate) {
  std::vector<PacketHeader> trace;
  // 1000 B/s to rack of host 4 for 3 seconds; 2000 B/s to rack of host 8.
  for (int sec = 0; sec < 3; ++sec) {
    trace.push_back(to_host(core::HostId{4}, sec + 0.1, 1000));
    trace.push_back(to_host(core::HostId{8}, sec + 0.2, 1500));
    trace.push_back(to_host(core::HostId{9}, sec + 0.3, 500));  // same rack as 8
  }
  const auto rates = per_rack_second_rates(trace, self_, resolver_, TimePoint::zero(),
                                           Duration::seconds(3));
  ASSERT_EQ(rates.rack_keys.size(), 2u);
  ASSERT_EQ(rates.seconds, 3u);
  for (const auto& series : rates.bytes_per_sec) {
    for (const double v : series) EXPECT_TRUE(v == 1000.0 || v == 2000.0);
  }
}

TEST_F(RateStabilityTest, PerfectStability) {
  std::vector<PacketHeader> trace;
  for (int sec = 0; sec < 10; ++sec) {
    trace.push_back(to_host(core::HostId{4}, sec + 0.5, 1000));
  }
  const auto rates = per_rack_second_rates(trace, self_, resolver_, TimePoint::zero(),
                                           Duration::seconds(10));
  const auto stability = rate_stability(rates);
  EXPECT_DOUBLE_EQ(stability.within_2x_of_median, 1.0);
  EXPECT_DOUBLE_EQ(stability.significant_change, 0.0);
}

TEST_F(RateStabilityTest, WildSwingsDetected) {
  std::vector<PacketHeader> trace;
  for (int sec = 0; sec < 10; ++sec) {
    // Alternate 100 B and 100 KB seconds.
    trace.push_back(to_host(core::HostId{4}, sec + 0.5, sec % 2 == 0 ? 100 : 100'000));
  }
  const auto rates = per_rack_second_rates(trace, self_, resolver_, TimePoint::zero(),
                                           Duration::seconds(10));
  const auto stability = rate_stability(rates);
  EXPECT_LT(stability.within_2x_of_median, 0.7);
  EXPECT_GT(stability.significant_change, 0.3);
}

}  // namespace
}  // namespace fbdcsim::analysis
