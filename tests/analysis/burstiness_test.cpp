#include "fbdcsim/analysis/burstiness.h"

#include <gtest/gtest.h>

namespace fbdcsim::analysis {
namespace {

using core::Duration;
using core::PacketHeader;
using core::TimePoint;

PacketHeader pkt_at(core::Ipv4Addr src, double t_sec, core::Port sport = 100,
                    std::int64_t frame = 100) {
  PacketHeader p;
  p.timestamp = TimePoint::from_seconds(t_sec);
  p.tuple.src_ip = src;
  p.tuple.dst_ip = core::Ipv4Addr{10, 0, 0, 99};
  p.tuple.src_port = sport;
  p.frame_bytes = frame;
  return p;
}

const core::Ipv4Addr kSelf{10, 0, 0, 1};

TEST(FlowDutyCycleTest, ContinuousFlowHasFullDuty) {
  std::vector<PacketHeader> trace;
  for (int i = 0; i < 50; ++i) trace.push_back(pkt_at(kSelf, 0.001 * i));
  const auto cdf = flow_duty_cycles(trace, kSelf);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf.max(), 1.0);
}

TEST(FlowDutyCycleTest, BurstyFlowHasLowDuty) {
  std::vector<PacketHeader> trace;
  // Active in ms 0 and ms 99 only: duty = 2/100.
  for (int i = 0; i < 5; ++i) trace.push_back(pkt_at(kSelf, 0.0001 * i));
  for (int i = 0; i < 5; ++i) trace.push_back(pkt_at(kSelf, 0.099 + 0.0001 * i));
  const auto cdf = flow_duty_cycles(trace, kSelf);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_NEAR(cdf.max(), 0.02, 1e-9);
}

TEST(FlowDutyCycleTest, FiltersSmallAndInstantFlows) {
  std::vector<PacketHeader> trace;
  // Flow A: 3 packets (below min_packets=5).
  for (int i = 0; i < 3; ++i) trace.push_back(pkt_at(kSelf, 0.001 * i, 100));
  // Flow B: 10 packets all in one bin (span < 2).
  for (int i = 0; i < 10; ++i) trace.push_back(pkt_at(kSelf, 0.00001 * i, 200));
  // Flow C: qualifies.
  for (int i = 0; i < 10; ++i) trace.push_back(pkt_at(kSelf, 0.002 * i, 300));
  const auto cdf = flow_duty_cycles(trace, kSelf);
  EXPECT_EQ(cdf.size(), 1u);
}

TEST(PacketTrainTest, SingleTrain) {
  std::vector<PacketHeader> trace;
  for (int i = 0; i < 10; ++i) {
    trace.push_back(pkt_at(kSelf, 1e-6 * i, 100, 150));  // 1-us spacing
  }
  const auto stats = packet_trains(trace, kSelf, Duration::micros(20));
  ASSERT_EQ(stats.packets_per_train.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.packets_per_train.max(), 10.0);
  EXPECT_DOUBLE_EQ(stats.bytes_per_train.max(), 1500.0);
  EXPECT_NEAR(stats.train_duration_us.max(), 9.0, 1e-9);
  EXPECT_EQ(stats.gap_between_trains_us.size(), 0u);
}

TEST(PacketTrainTest, GapSplitsTrains) {
  std::vector<PacketHeader> trace;
  for (int i = 0; i < 4; ++i) trace.push_back(pkt_at(kSelf, 1e-6 * i));
  for (int i = 0; i < 6; ++i) trace.push_back(pkt_at(kSelf, 0.001 + 1e-6 * i));
  const auto stats = packet_trains(trace, kSelf, Duration::micros(20));
  ASSERT_EQ(stats.packets_per_train.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.packets_per_train.min(), 4.0);
  EXPECT_DOUBLE_EQ(stats.packets_per_train.max(), 6.0);
  ASSERT_EQ(stats.gap_between_trains_us.size(), 1u);
  EXPECT_NEAR(stats.gap_between_trains_us.max(), 997.0, 1.0);
}

TEST(PacketTrainTest, InboundIgnored) {
  std::vector<PacketHeader> trace;
  trace.push_back(pkt_at(core::Ipv4Addr{10, 0, 0, 2}, 0.0));
  const auto stats = packet_trains(trace, kSelf);
  EXPECT_EQ(stats.packets_per_train.size(), 0u);
}

TEST(PacketTrainTest, EmptyTrace) {
  const auto stats = packet_trains({}, kSelf);
  EXPECT_TRUE(stats.packets_per_train.empty());
}

}  // namespace
}  // namespace fbdcsim::analysis
