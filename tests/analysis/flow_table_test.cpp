#include "fbdcsim/analysis/flow_table.h"

#include <gtest/gtest.h>

#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::analysis {
namespace {

using core::Duration;
using core::PacketHeader;
using core::TimePoint;

class FlowTableTest : public ::testing::Test {
 protected:
  FlowTableTest()
      : fleet_{topology::build_single_cluster_fleet(topology::ClusterType::kFrontend, 8, 4)},
        resolver_{fleet_} {}

  PacketHeader pkt(core::HostId src, core::HostId dst, core::Port sport, core::Port dport,
                   double t_sec, std::int64_t payload, core::TcpFlags flags = {}) {
    PacketHeader p;
    p.timestamp = TimePoint::from_seconds(t_sec);
    p.tuple = core::FiveTuple{fleet_.host(src).addr, fleet_.host(dst).addr, sport, dport,
                              core::Protocol::kTcp};
    p.payload_bytes = payload;
    p.frame_bytes = core::wire::tcp_frame_bytes(payload);
    p.flags = flags;
    return p;
  }

  topology::Fleet fleet_;
  AddrResolver resolver_;
};

TEST_F(FlowTableTest, AssemblesOutboundFlows) {
  const core::HostId self{0};
  const std::vector<PacketHeader> trace{
      pkt(self, core::HostId{5}, 100, 80, 0.0, 500),
      pkt(self, core::HostId{5}, 100, 80, 1.0, 300),
      pkt(self, core::HostId{6}, 101, 80, 0.5, 200),
      pkt(core::HostId{5}, self, 80, 100, 0.2, 999),  // inbound: excluded
  };
  const auto flows = FlowTable::outbound_flows(trace, fleet_.host(self).addr);
  ASSERT_EQ(flows.size(), 2u);
  // Sorted by first packet time.
  EXPECT_EQ(flows[0].payload_bytes, 800);
  EXPECT_EQ(flows[0].packets, 2);
  EXPECT_EQ(flows[0].duration(), Duration::seconds(1));
  EXPECT_EQ(flows[1].payload_bytes, 200);
  EXPECT_EQ(flows[1].duration(), Duration{});
}

TEST_F(FlowTableTest, RecordsSynFin) {
  const core::HostId self{0};
  const std::vector<PacketHeader> trace{
      pkt(self, core::HostId{5}, 100, 80, 0.0, 0, {.syn = true}),
      pkt(self, core::HostId{5}, 100, 80, 0.1, 500),
      pkt(self, core::HostId{5}, 100, 80, 0.2, 0, {.ack = true, .fin = true}),
      pkt(self, core::HostId{6}, 101, 80, 0.0, 100),
  };
  const auto flows = FlowTable::outbound_flows(trace, fleet_.host(self).addr);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_TRUE(flows[0].saw_syn);
  EXPECT_TRUE(flows[0].saw_fin);
  EXPECT_FALSE(flows[1].saw_syn);
}

TEST_F(FlowTableTest, AllFlowsMergesDirections) {
  const core::HostId self{0};
  const std::vector<PacketHeader> trace{
      pkt(self, core::HostId{5}, 100, 80, 0.0, 500),
      pkt(core::HostId{5}, self, 80, 100, 0.1, 300),  // reverse direction
  };
  const auto flows = FlowTable::all_flows(trace);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].payload_bytes, 800);
  EXPECT_EQ(flows[0].packets, 2);
}

TEST_F(FlowTableTest, ByteConservation) {
  const core::HostId self{0};
  std::vector<PacketHeader> trace;
  std::int64_t total = 0;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t payload = 10 + (i * 37) % 1400;
    trace.push_back(pkt(self, core::HostId{1 + static_cast<std::uint32_t>(i % 7)},
                        static_cast<core::Port>(100 + i % 13), 80, 0.001 * i, payload));
    total += payload;
  }
  const auto flows = FlowTable::outbound_flows(trace, fleet_.host(self).addr);
  std::int64_t sum = 0;
  std::int64_t packets = 0;
  for (const Flow& f : flows) {
    sum += f.payload_bytes;
    packets += f.packets;
  }
  EXPECT_EQ(sum, total);
  EXPECT_EQ(packets, 500);
}

TEST_F(FlowTableTest, AggregateToHostAndRack) {
  const core::HostId self{0};
  // Hosts 4..7 are rack 1; hosts 8..11 rack 2 (4 hosts/rack).
  const std::vector<PacketHeader> trace{
      pkt(self, core::HostId{4}, 100, 80, 0.0, 100),
      pkt(self, core::HostId{4}, 101, 80, 0.0, 150),  // same host, new flow
      pkt(self, core::HostId{5}, 102, 80, 0.0, 200),  // same rack, new host
      pkt(self, core::HostId{8}, 103, 80, 0.0, 400),  // other rack
  };
  const auto flows = FlowTable::outbound_flows(trace, fleet_.host(self).addr);
  ASSERT_EQ(flows.size(), 4u);

  const auto by_host = aggregate(flows, AggLevel::kHost, resolver_);
  EXPECT_EQ(by_host.size(), 3u);

  const auto by_rack = aggregate(flows, AggLevel::kRack, resolver_);
  ASSERT_EQ(by_rack.size(), 2u);
  std::int64_t rack1_bytes = 0;
  for (const auto& a : by_rack) {
    if (a.key == fleet_.host(core::HostId{4}).rack.value()) rack1_bytes = a.payload_bytes;
  }
  EXPECT_EQ(rack1_bytes, 450);

  const auto by_flow = aggregate(flows, AggLevel::kFlow, resolver_);
  EXPECT_EQ(by_flow.size(), 4u);
}

TEST_F(FlowTableTest, EmptyTrace) {
  EXPECT_TRUE(FlowTable::outbound_flows({}, fleet_.host(core::HostId{0}).addr).empty());
  EXPECT_TRUE(FlowTable::all_flows({}).empty());
}

}  // namespace
}  // namespace fbdcsim::analysis
