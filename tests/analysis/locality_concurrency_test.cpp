#include <gtest/gtest.h>

#include "fbdcsim/analysis/concurrency.h"
#include "fbdcsim/analysis/locality.h"
#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::analysis {
namespace {

using core::Duration;
using core::PacketHeader;
using core::TimePoint;

class LocalityAnalysisTest : public ::testing::Test {
 protected:
  LocalityAnalysisTest() : fleet_{make_fleet()}, resolver_{fleet_} {}

  static topology::Fleet make_fleet() {
    topology::StandardFleetConfig cfg;
    cfg.sites = 2;
    cfg.datacenters_per_site = 1;
    cfg.frontend_clusters = 2;
    cfg.cache_clusters = 0;
    cfg.hadoop_clusters = 0;
    cfg.database_clusters = 0;
    cfg.service_clusters = 0;
    cfg.racks_per_cluster = 4;
    cfg.hosts_per_rack = 4;
    cfg.frontend_web_racks = 2;
    cfg.frontend_cache_racks = 1;
    cfg.frontend_multifeed_racks = 1;
    return topology::build_standard_fleet(cfg);
  }

  PacketHeader pkt(core::HostId src, core::HostId dst, double t, std::int64_t frame,
                   std::int64_t payload = -1) {
    PacketHeader p;
    p.timestamp = TimePoint::from_seconds(t);
    p.tuple = core::FiveTuple{fleet_.host(src).addr, fleet_.host(dst).addr,
                              static_cast<core::Port>(40000 + dst.value()), 80,
                              core::Protocol::kTcp};
    p.frame_bytes = frame;
    p.payload_bytes = payload >= 0 ? payload : frame - 54;
    return p;
  }

  /// A host in a different structural position relative to host 0.
  core::HostId host_with(core::Locality want) {
    const core::HostId self{0};
    for (const auto& h : fleet_.hosts()) {
      if (h.id != self && fleet_.locality(self, h.id) == want) return h.id;
    }
    return core::HostId::invalid();
  }

  topology::Fleet fleet_;
  AddrResolver resolver_;
};

TEST_F(LocalityAnalysisTest, SharesSumTo100) {
  const core::HostId self{0};
  std::vector<PacketHeader> trace{
      pkt(self, host_with(core::Locality::kIntraRack), 0.0, 100),
      pkt(self, host_with(core::Locality::kIntraCluster), 0.0, 300),
      pkt(self, host_with(core::Locality::kIntraDatacenter), 0.0, 200),
      pkt(self, host_with(core::Locality::kInterDatacenter), 0.0, 400),
  };
  const auto shares = locality_shares(trace, fleet_.host(self).addr, resolver_);
  EXPECT_DOUBLE_EQ(shares[0], 10.0);
  EXPECT_DOUBLE_EQ(shares[1], 30.0);
  EXPECT_DOUBLE_EQ(shares[2], 20.0);
  EXPECT_DOUBLE_EQ(shares[3], 40.0);
}

TEST_F(LocalityAnalysisTest, TimeseriesBinsPerSecond) {
  const core::HostId self{0};
  const core::HostId peer = host_with(core::Locality::kIntraCluster);
  std::vector<PacketHeader> trace{
      pkt(self, peer, 0.1, 100),
      pkt(self, peer, 0.9, 100),
      pkt(self, peer, 1.5, 300),
      pkt(peer, self, 1.6, 999),  // inbound ignored
  };
  const auto series = locality_timeseries(trace, fleet_.host(self).addr, resolver_);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].bytes[static_cast<int>(core::Locality::kIntraCluster)], 200.0);
  EXPECT_DOUBLE_EQ(series[1].total(), 300.0);
}

TEST_F(LocalityAnalysisTest, RoleSharesUsePayloadBytes) {
  const core::HostId self{0};  // a Web host
  // Host ids: racks of 4; fleet has 2 web racks then cache then MF per cluster.
  const core::HostId cache = fleet_.hosts_with_role(core::HostRole::kCacheFollower)[0];
  const core::HostId mf = fleet_.hosts_with_role(core::HostRole::kMultifeed)[0];
  std::vector<PacketHeader> trace{
      pkt(self, cache, 0.0, 154, 100),
      pkt(self, cache, 0.0, 154, 100),
      pkt(self, mf, 0.0, 854, 800),
  };
  const auto shares = outbound_role_shares(trace, fleet_.host(self).addr, resolver_);
  double cache_pct = 0, mf_pct = 0;
  for (const auto& s : shares) {
    if (s.role == core::HostRole::kCacheFollower) cache_pct = s.percent;
    if (s.role == core::HostRole::kMultifeed) mf_pct = s.percent;
  }
  EXPECT_DOUBLE_EQ(cache_pct, 20.0);
  EXPECT_DOUBLE_EQ(mf_pct, 80.0);
}

TEST_F(LocalityAnalysisTest, FlowsByLocalityBuckets) {
  const core::HostId self{0};
  std::vector<PacketHeader> trace{
      pkt(self, host_with(core::Locality::kIntraRack), 0.0, 154, 100),
      pkt(self, host_with(core::Locality::kIntraRack), 0.5, 154, 100),
      pkt(self, host_with(core::Locality::kInterDatacenter), 0.0, 854, 800),
  };
  const auto flows = FlowTable::outbound_flows(trace, fleet_.host(self).addr);
  const auto buckets = flows_by_locality(flows, resolver_);
  EXPECT_EQ(buckets.size_bytes[static_cast<int>(core::Locality::kIntraRack)].size(), 1u);
  EXPECT_DOUBLE_EQ(buckets.size_bytes[static_cast<int>(core::Locality::kIntraRack)][0], 200.0);
  EXPECT_DOUBLE_EQ(buckets.duration_ms[static_cast<int>(core::Locality::kIntraRack)][0], 500.0);
  EXPECT_EQ(buckets.all_size_bytes.size(), 2u);
}

TEST_F(LocalityAnalysisTest, ConcurrentRacksCountsDistinctRacks) {
  const core::HostId self{0};
  const core::HostId same_rack = host_with(core::Locality::kIntraRack);
  const core::HostId cluster1 = host_with(core::Locality::kIntraCluster);
  const core::HostId interdc = host_with(core::Locality::kInterDatacenter);

  // Window 0 (0-5 ms): three destinations in three racks.
  // Window 1 (5-10 ms): one destination.
  std::vector<PacketHeader> trace{
      pkt(self, same_rack, 0.001, 100),
      pkt(self, cluster1, 0.002, 100),
      pkt(self, interdc, 0.003, 100),
      pkt(self, cluster1, 0.007, 100),
  };
  const auto cdfs = concurrent_racks(trace, fleet_.host(self).addr, resolver_);
  ASSERT_EQ(cdfs.all.size(), 2u);
  EXPECT_DOUBLE_EQ(cdfs.all.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdfs.all.min(), 1.0);
  // Intra-rack destinations are excluded from the cluster series.
  EXPECT_DOUBLE_EQ(cdfs.intra_cluster.max(), 1.0);
  EXPECT_DOUBLE_EQ(cdfs.inter_datacenter.max(), 1.0);
}

TEST_F(LocalityAnalysisTest, ConcurrentHeavyHitterRacksRestricted) {
  const core::HostId self{0};
  const core::HostId big = host_with(core::Locality::kIntraCluster);
  const core::HostId small1 = host_with(core::Locality::kIntraDatacenter);
  const core::HostId small2 = host_with(core::Locality::kInterDatacenter);
  std::vector<PacketHeader> trace{
      pkt(self, big, 0.001, 10'000),
      pkt(self, small1, 0.002, 10),
      pkt(self, small2, 0.003, 10),
  };
  const auto all = concurrent_racks(trace, fleet_.host(self).addr, resolver_);
  const auto hh = concurrent_heavy_hitter_racks(trace, fleet_.host(self).addr, resolver_);
  EXPECT_DOUBLE_EQ(all.all.max(), 3.0);
  EXPECT_DOUBLE_EQ(hh.all.max(), 1.0);  // one rack covers 50% of bytes
}

TEST_F(LocalityAnalysisTest, ConcurrentConnectionsTuplesVsHosts) {
  const core::HostId self{0};
  const core::HostId peer = host_with(core::Locality::kIntraCluster);
  // Two flows to the same host in one window.
  auto p1 = pkt(self, peer, 0.001, 100);
  auto p2 = pkt(self, peer, 0.002, 100);
  p2.tuple.src_port = 50'000;
  const std::vector<PacketHeader> trace{p1, p2};
  const auto conc = concurrent_connections(trace, fleet_.host(self).addr);
  EXPECT_DOUBLE_EQ(conc.tuples.max(), 2.0);
  EXPECT_DOUBLE_EQ(conc.hosts.max(), 1.0);
}

}  // namespace
}  // namespace fbdcsim::analysis
