#include "fbdcsim/workload/rack_sim.h"

#include <gtest/gtest.h>

#include "fbdcsim/topology/standard_fleet.h"
#include "fbdcsim/workload/presets.h"

namespace fbdcsim::workload {
namespace {

using core::Duration;
using core::HostRole;

topology::Fleet small_rack_fleet() {
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 1;
  cfg.frontend_clusters = 1;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 1;
  cfg.database_clusters = 1;
  cfg.service_clusters = 1;
  cfg.racks_per_cluster = 8;
  cfg.hosts_per_rack = 4;
  cfg.frontend_web_racks = 5;
  cfg.frontend_cache_racks = 1;
  cfg.frontend_multifeed_racks = 1;
  return topology::build_standard_fleet(cfg);
}

RackSimConfig quick_config(const topology::Fleet& fleet, HostRole role) {
  RackSimConfig cfg;
  cfg.monitored_host = monitored_host(fleet, role);
  cfg.warmup = Duration::millis(200);
  cfg.capture = Duration::seconds(1);
  cfg.seed = 3;
  // Keep the test cheap.
  cfg.mix.cache_follower.gets_served_per_sec = 5'000.0;
  cfg.mix.cache_leader.coherency_msgs_per_sec = 3'000.0;
  cfg.mix.web.user_requests_per_sec = 50.0;
  cfg.background_rate_scale = 0.1;
  return cfg;
}

TEST(RackSimulationTest, TraceIsSortedAndWithinWindow) {
  const topology::Fleet fleet = small_rack_fleet();
  RackSimulation sim{fleet, quick_config(fleet, HostRole::kCacheFollower)};
  const RackSimResult result = sim.run();
  ASSERT_GT(result.trace.size(), 100u);
  EXPECT_EQ(result.capture_dropped, 0);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LE(result.trace[i - 1].timestamp, result.trace[i].timestamp);
  }
  for (const auto& pkt : result.trace) {
    EXPECT_GE(pkt.timestamp, result.capture_start);
    EXPECT_LE(pkt.timestamp, result.capture_end);
  }
}

TEST(RackSimulationTest, OnlyMonitoredHostMirrored) {
  const topology::Fleet fleet = small_rack_fleet();
  const RackSimConfig cfg = quick_config(fleet, HostRole::kCacheFollower);
  RackSimulation sim{fleet, cfg};
  const RackSimResult result = sim.run();
  const core::Ipv4Addr self = fleet.host(cfg.monitored_host).addr;
  for (const auto& pkt : result.trace) {
    EXPECT_TRUE(pkt.tuple.src_ip == self || pkt.tuple.dst_ip == self);
  }
}

TEST(RackSimulationTest, WholeRackMirrorCoversNeighbours) {
  const topology::Fleet fleet = small_rack_fleet();
  RackSimConfig cfg = quick_config(fleet, HostRole::kWeb);
  cfg.mirror_whole_rack = true;
  RackSimulation sim{fleet, cfg};
  const RackSimResult result = sim.run();

  const auto& rack = fleet.rack(fleet.host(cfg.monitored_host).rack);
  std::set<std::uint32_t> sources;
  for (const auto& pkt : result.trace) {
    const core::HostId src = fleet.host_by_addr(pkt.tuple.src_ip);
    if (src.is_valid() && fleet.host(src).rack == rack.id) sources.insert(src.value());
  }
  EXPECT_EQ(sources.size(), rack.hosts.size());
}

TEST(RackSimulationTest, DeterministicAcrossRuns) {
  const topology::Fleet fleet = small_rack_fleet();
  const RackSimConfig cfg = quick_config(fleet, HostRole::kCacheFollower);
  RackSimulation a{fleet, cfg};
  RackSimulation b{fleet, cfg};
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_EQ(ra.trace.size(), rb.trace.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(ra.trace.size(), 500); ++i) {
    EXPECT_EQ(ra.trace[i].timestamp, rb.trace[i].timestamp);
    EXPECT_EQ(ra.trace[i].tuple, rb.trace[i].tuple);
    EXPECT_EQ(ra.trace[i].frame_bytes, rb.trace[i].frame_bytes);
  }
}

TEST(RackSimulationTest, SeedChangesTrace) {
  const topology::Fleet fleet = small_rack_fleet();
  RackSimConfig cfg = quick_config(fleet, HostRole::kCacheFollower);
  RackSimulation a{fleet, cfg};
  cfg.seed = 4;
  RackSimulation b{fleet, cfg};
  EXPECT_NE(a.run().trace.size(), b.run().trace.size());
}

TEST(RackSimulationTest, SwitchCountersAccumulate) {
  const topology::Fleet fleet = small_rack_fleet();
  RackSimulation sim{fleet, quick_config(fleet, HostRole::kCacheFollower)};
  const RackSimResult result = sim.run();
  // Cache traffic leaves the rack: uplink counters must be busy.
  EXPECT_GT(result.uplink.tx_packets, 100);
  EXPECT_GT(result.uplink.tx_bytes, 10'000);
  // Inbound requests arrive at the host: downlinks busy too.
  EXPECT_GT(result.downlinks.tx_packets, 100);
}

TEST(RackSimulationTest, BufferSamplerProducesPerSecondStats) {
  const topology::Fleet fleet = small_rack_fleet();
  RackSimConfig cfg = quick_config(fleet, HostRole::kWeb);
  cfg.sample_buffer = true;
  cfg.capture = Duration::seconds(2);
  RackSimulation sim{fleet, cfg};
  const RackSimResult result = sim.run();
  EXPECT_GE(result.buffer_seconds.size(), 2u);
  for (const auto& s : result.buffer_seconds) {
    EXPECT_GE(s.max_fraction, s.median_fraction);
    EXPECT_LE(s.max_fraction, 1.0);
  }
}

TEST(RackSimulationTest, RequiresMonitoredHost) {
  const topology::Fleet fleet = small_rack_fleet();
  RackSimConfig cfg;
  EXPECT_THROW(RackSimulation(fleet, cfg), std::invalid_argument);
}

TEST(ScaleRatesTest, ScalesEveryRateField) {
  services::ServiceMix mix;
  const services::ServiceMix scaled = scale_rates(mix, 0.5);
  EXPECT_DOUBLE_EQ(scaled.web.user_requests_per_sec, mix.web.user_requests_per_sec * 0.5);
  EXPECT_DOUBLE_EQ(scaled.cache_follower.gets_served_per_sec,
                   mix.cache_follower.gets_served_per_sec * 0.5);
  EXPECT_DOUBLE_EQ(scaled.cache_leader.coherency_msgs_per_sec,
                   mix.cache_leader.coherency_msgs_per_sec * 0.5);
  EXPECT_DOUBLE_EQ(scaled.hadoop.transfers_per_sec_busy,
                   mix.hadoop.transfers_per_sec_busy * 0.5);
  // Non-rate fields unchanged.
  EXPECT_EQ(scaled.web.cache_get_request, mix.web.cache_get_request);
}

TEST(PresetsTest, MonitoredHostHasRequestedRole) {
  const topology::Fleet fleet = small_rack_fleet();
  for (const HostRole role : {HostRole::kWeb, HostRole::kCacheFollower, HostRole::kHadoop}) {
    EXPECT_EQ(fleet.host(monitored_host(fleet, role)).role, role);
  }
  EXPECT_THROW(
      (void)monitored_host(
          topology::build_single_cluster_fleet(topology::ClusterType::kHadoop, 2, 2),
          HostRole::kWeb),
      std::invalid_argument);
}

TEST(PresetsTest, DefaultConfigMirrorsWholeWebRack) {
  const topology::Fleet fleet = small_rack_fleet();
  EXPECT_TRUE(default_rack_config(fleet, HostRole::kWeb).mirror_whole_rack);
  EXPECT_FALSE(default_rack_config(fleet, HostRole::kCacheFollower).mirror_whole_rack);
}

}  // namespace
}  // namespace fbdcsim::workload
