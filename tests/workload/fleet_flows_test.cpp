#include "fbdcsim/workload/fleet_flows.h"

#include <gtest/gtest.h>

#include <map>

#include "fbdcsim/topology/standard_fleet.h"
#include "fbdcsim/workload/baseline.h"

namespace fbdcsim::workload {
namespace {

using core::Duration;
using core::HostRole;
using core::Locality;

topology::Fleet flows_fleet() {
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 1;
  cfg.frontend_clusters = 2;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 1;
  cfg.database_clusters = 1;
  cfg.service_clusters = 1;
  cfg.racks_per_cluster = 8;
  cfg.hosts_per_rack = 4;
  cfg.frontend_web_racks = 5;
  cfg.frontend_cache_racks = 1;
  cfg.frontend_multifeed_racks = 1;
  return topology::build_standard_fleet(cfg);
}

FleetGenConfig quick_config() {
  FleetGenConfig cfg;
  cfg.horizon = Duration::hours(1);
  cfg.epoch = Duration::minutes(30);
  cfg.seed = 9;
  return cfg;
}

TEST(RoleIndexTest, PicksRespectScope) {
  const topology::Fleet fleet = flows_fleet();
  const RoleIndex index{fleet};
  core::RngStream rng{4};
  const core::HostId web = fleet.hosts_with_role(HostRole::kWeb)[0];

  for (int i = 0; i < 200; ++i) {
    const auto cache = index.pick(web, HostRole::kCacheFollower,
                                  services::Scope::kSameCluster, rng);
    ASSERT_TRUE(cache.is_valid());
    EXPECT_EQ(fleet.host(cache).cluster, fleet.host(web).cluster);
    EXPECT_EQ(fleet.host(cache).role, HostRole::kCacheFollower);

    const auto far = index.pick(web, HostRole::kService,
                                services::Scope::kOtherDatacenters, rng);
    ASSERT_TRUE(far.is_valid());
    EXPECT_NE(fleet.host(far).datacenter, fleet.host(web).datacenter);
  }
}

TEST(RoleIndexTest, ImpossibleScopeReturnsInvalid) {
  const topology::Fleet fleet = flows_fleet();
  const RoleIndex index{fleet};
  core::RngStream rng{4};
  const core::HostId web = fleet.hosts_with_role(HostRole::kWeb)[0];
  // No Hadoop host shares a Frontend cluster.
  EXPECT_FALSE(
      index.pick(web, HostRole::kHadoop, services::Scope::kSameCluster, rng).is_valid());
}

TEST(FleetFlowGeneratorTest, EveryHostEmitsFlows) {
  const topology::Fleet fleet = flows_fleet();
  const FleetFlowGenerator gen{fleet, quick_config()};
  std::map<std::uint32_t, int> flows_per_host;
  gen.generate([&](const core::FlowRecord& f) { ++flows_per_host[f.src_host.value()]; });
  EXPECT_EQ(flows_per_host.size(), fleet.num_hosts());
}

TEST(FleetFlowGeneratorTest, FlowsAreWellFormed) {
  const topology::Fleet fleet = flows_fleet();
  const FleetGenConfig cfg = quick_config();
  const FleetFlowGenerator gen{fleet, cfg};
  const core::HostId web = fleet.hosts_with_role(HostRole::kWeb)[0];
  gen.generate_for_host(web, [&](const core::FlowRecord& f) {
    EXPECT_EQ(f.src_host, web);
    EXPECT_NE(f.dst_host, web);
    EXPECT_GT(f.bytes.count_bytes(), 0);
    EXPECT_GT(f.packets, 0);
    EXPECT_GE(f.start.count_nanos(), 0);
    EXPECT_LE(f.end().count_nanos(), cfg.horizon.count_nanos());
    EXPECT_EQ(fleet.host_by_addr(f.tuple.src_ip), web);
    EXPECT_EQ(fleet.host_by_addr(f.tuple.dst_ip), f.dst_host);
  });
}

TEST(FleetFlowGeneratorTest, WebMixMatchesTable2) {
  const topology::Fleet fleet = flows_fleet();
  const FleetFlowGenerator gen{fleet, quick_config()};
  const core::HostId web = fleet.hosts_with_role(HostRole::kWeb)[0];
  std::map<HostRole, double> bytes;
  double total = 0;
  gen.generate_for_host(web, [&](const core::FlowRecord& f) {
    bytes[fleet.host(f.dst_host).role] += static_cast<double>(f.bytes.count_bytes());
    total += static_cast<double>(f.bytes.count_bytes());
  });
  EXPECT_NEAR(bytes[HostRole::kCacheFollower] / total * 100.0, 63.1, 10.0);
  EXPECT_NEAR(bytes[HostRole::kMultifeed] / total * 100.0, 15.2, 8.0);
  EXPECT_NEAR(bytes[HostRole::kService] / total * 100.0, 16.1, 8.0);
}

TEST(FleetFlowGeneratorTest, HadoopIsClusterLocalWithRackDiagonal) {
  // Fleet-wide (Table 3): the Hadoop service is strongly cluster-local
  // with a modest rack-local share — far below the 75.7% of the paper's
  // single busy monitored node (§4.2), which the packet-level model covers.
  const topology::Fleet fleet = flows_fleet();
  const FleetFlowGenerator gen{fleet, quick_config()};
  const core::HostId hadoop = fleet.hosts_with_role(HostRole::kHadoop)[0];
  std::array<double, core::kNumLocalities> bytes{};
  double total = 0;
  gen.generate_for_host(hadoop, [&](const core::FlowRecord& f) {
    const auto loc = fleet.locality(f.src_host, f.dst_host);
    bytes[static_cast<int>(loc)] += static_cast<double>(f.bytes.count_bytes());
    total += static_cast<double>(f.bytes.count_bytes());
  });
  const double rack = bytes[static_cast<int>(Locality::kIntraRack)] / total;
  EXPECT_GT(rack, 0.05);
  EXPECT_LT(rack, 0.35);
  EXPECT_GT((bytes[static_cast<int>(Locality::kIntraRack)] +
             bytes[static_cast<int>(Locality::kIntraCluster)]) /
                total,
            0.95);
  EXPECT_LT((bytes[static_cast<int>(Locality::kIntraDatacenter)] +
             bytes[static_cast<int>(Locality::kInterDatacenter)]) /
                total,
            0.02);
}

TEST(FleetFlowGeneratorTest, DiurnalModulatesVolume) {
  const topology::Fleet fleet = flows_fleet();
  FleetGenConfig cfg = quick_config();
  cfg.horizon = Duration::hours(24);
  cfg.epoch = Duration::hours(1);
  cfg.diurnal.peak_to_trough = 2.0;
  cfg.diurnal.peak_hour = 12.0;
  const FleetFlowGenerator gen{fleet, cfg};
  const core::HostId web = fleet.hosts_with_role(HostRole::kWeb)[0];
  std::map<std::int64_t, double> bytes_per_hour;
  gen.generate_for_host(web, [&](const core::FlowRecord& f) {
    bytes_per_hour[f.start.count_nanos() / 3'600'000'000'000LL] +=
        static_cast<double>(f.bytes.count_bytes());
  });
  // Peak hour (12) should carry roughly twice the trough (0).
  EXPECT_GT(bytes_per_hour[12], 1.5 * bytes_per_hour[0]);
}

TEST(FleetFlowGeneratorTest, RateScaleIsLinear) {
  const topology::Fleet fleet = flows_fleet();
  FleetGenConfig cfg = quick_config();
  const core::HostId web = fleet.hosts_with_role(HostRole::kWeb)[0];
  auto total_bytes = [&](double scale) {
    cfg.rate_scale = scale;
    const FleetFlowGenerator gen{fleet, cfg};
    double total = 0;
    gen.generate_for_host(web,
                          [&](const core::FlowRecord& f) { total += static_cast<double>(f.bytes.count_bytes()); });
    return total;
  };
  const double full = total_bytes(1.0);
  const double half = total_bytes(0.5);
  EXPECT_NEAR(half / full, 0.5, 0.05);
}

TEST(FleetFlowGeneratorTest, Deterministic) {
  const topology::Fleet fleet = flows_fleet();
  const FleetFlowGenerator gen{fleet, quick_config()};
  const core::HostId web = fleet.hosts_with_role(HostRole::kWeb)[0];
  std::vector<std::int64_t> a, b;
  gen.generate_for_host(web, [&](const core::FlowRecord& f) { a.push_back(f.bytes.count_bytes()); });
  gen.generate_for_host(web, [&](const core::FlowRecord& f) { b.push_back(f.bytes.count_bytes()); });
  EXPECT_EQ(a, b);
}

TEST(LiteratureWorkloadTest, RackLocalAndBimodal) {
  const topology::Fleet fleet = flows_fleet();
  const core::HostId host = fleet.hosts_with_role(HostRole::kHadoop)[0];
  const auto trace = generate_literature_trace(fleet, host, Duration::seconds(5));
  ASSERT_GT(trace.size(), 1000u);

  double rack_bytes = 0, total = 0;
  std::int64_t mtu = 0, ack = 0, mid = 0;
  std::set<std::uint32_t> dests;
  for (const auto& pkt : trace) {
    const core::HostId dst = fleet.host_by_addr(pkt.tuple.dst_ip);
    ASSERT_TRUE(dst.is_valid());
    dests.insert(dst.value());
    if (fleet.locality(host, dst) == Locality::kIntraRack) {
      rack_bytes += static_cast<double>(pkt.frame_bytes);
    }
    total += static_cast<double>(pkt.frame_bytes);
    if (pkt.frame_bytes >= 1514) {
      ++mtu;
    } else if (pkt.frame_bytes <= 64) {
      ++ack;
    } else {
      ++mid;
    }
  }
  // 50-80% rack-local (byte share will exceed the destination share since
  // sizes are iid — just require the literature band).
  EXPECT_GT(rack_bytes / total, 0.4);
  // Bimodal packets dominate; few destinations.
  EXPECT_EQ(mid, 0);
  EXPECT_GT(mtu, 0);
  EXPECT_GT(ack, 0);
  EXPECT_LE(dests.size(), 4u);
}

TEST(LiteratureWorkloadTest, OnOffBehaviourAtMsTimescale) {
  const topology::Fleet fleet = flows_fleet();
  const core::HostId host = fleet.hosts_with_role(HostRole::kHadoop)[0];
  const auto trace = generate_literature_trace(fleet, host, Duration::seconds(5));
  // Count idle 5-ms bins: the ON/OFF process must leave many bins empty
  // (the Facebook-style traces leave ~none; see models_test).
  std::set<std::int64_t> active;
  for (const auto& pkt : trace) {
    active.insert(pkt.timestamp.bin_index(Duration::millis(5)));
  }
  const auto last = trace.back().timestamp.bin_index(Duration::millis(5));
  const double idle_fraction =
      1.0 - static_cast<double>(active.size()) / static_cast<double>(last + 1);
  EXPECT_GT(idle_fraction, 0.3);
}

}  // namespace
}  // namespace fbdcsim::workload
