// The fault layer's determinism contract, decision semantics, and spec
// parsing. Every decision must be a pure function of (seed, kind, entity,
// bucket) — no call order, thread, or shard dependence — and every
// statistical rate must track its configured probability.
#include "fbdcsim/faults/fault_plan.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace fbdcsim::faults {
namespace {

using core::Duration;
using core::HostId;
using core::LinkId;
using core::TimePoint;

/// A fully populated custom config with round probabilities, for rate and
/// semantics tests (the built-in tiers keep their production-ish values).
FaultConfig test_config() {
  FaultConfig c;
  c.profile = Profile::kCustom;
  c.seed = 7;
  c.link_fail_prob = 0.10;
  c.link_degrade_prob = 0.20;
  c.link_degrade_factor = 0.5;
  c.buffer_shrink_prob = 0.25;
  c.buffer_shrink_factor = 0.5;
  c.host_crash_prob = 0.10;
  c.scribe_drop_prob = 0.30;
  c.scribe_max_retries = 3;
  c.scribe_delay_prob = 0.20;
  c.tag_failure_prob = 0.15;
  c.capture_drop_prob = 0.50;
  return c;
}

TEST(FaultPlanTest, ToStringCoversEveryProfile) {
  EXPECT_STREQ(to_string(Profile::kOff), "off");
  EXPECT_STREQ(to_string(Profile::kLight), "light");
  EXPECT_STREQ(to_string(Profile::kHeavy), "heavy");
  EXPECT_STREQ(to_string(Profile::kCustom), "custom");
}

TEST(FaultPlanTest, DefaultConfigIsDisabledAndInert) {
  const FaultPlan plan{FaultConfig{}};
  EXPECT_FALSE(plan.enabled());
  for (std::uint32_t i = 0; i < 512; ++i) {
    const TimePoint at = TimePoint::zero() + Duration::seconds(i * 37);
    EXPECT_FALSE(plan.link_failed(LinkId{i}, at));
    EXPECT_DOUBLE_EQ(plan.link_capacity_factor(LinkId{i}, at), 1.0);
    EXPECT_FALSE(plan.host_down(HostId{i}, at));
    EXPECT_DOUBLE_EQ(plan.buffer_shrink_factor(i), 1.0);
    EXPECT_FALSE(plan.scribe_attempt_fails(i, 0));
    EXPECT_FALSE(plan.scribe_delayed(i));
    EXPECT_FALSE(plan.tagger_lookup_fails(i));
    EXPECT_FALSE(plan.capture_drop(i, 1.0));
  }
}

TEST(FaultPlanTest, BuiltinProfilesAreEnabledAndInRange) {
  for (const FaultConfig& c : {light_profile(), heavy_profile()}) {
    const FaultPlan plan{c};
    EXPECT_TRUE(plan.enabled());
    for (const double p : {c.link_fail_prob, c.link_degrade_prob, c.buffer_shrink_prob,
                           c.host_crash_prob, c.scribe_drop_prob, c.scribe_delay_prob,
                           c.tag_failure_prob, c.capture_drop_prob}) {
      EXPECT_GT(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
    for (const double f : {c.link_degrade_factor, c.buffer_shrink_factor}) {
      EXPECT_GT(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
    EXPECT_GE(c.scribe_max_retries, 1);
  }
  // Heavy strictly dominates light on every fault rate.
  const FaultConfig l = light_profile();
  const FaultConfig h = heavy_profile();
  EXPECT_GT(h.link_fail_prob, l.link_fail_prob);
  EXPECT_GT(h.host_crash_prob, l.host_crash_prob);
  EXPECT_GT(h.scribe_drop_prob, l.scribe_drop_prob);
  EXPECT_GT(h.tag_failure_prob, l.tag_failure_prob);
  EXPECT_GT(h.capture_drop_prob, l.capture_drop_prob);
}

TEST(FaultPlanTest, DecisionsArePureFunctions) {
  const FaultPlan a{test_config()};
  const FaultPlan b{test_config()};  // independent instance, same config
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const TimePoint at = TimePoint::zero() + Duration::seconds(i * 61);
    EXPECT_EQ(a.link_failed(LinkId{i}, at), b.link_failed(LinkId{i}, at));
    EXPECT_EQ(a.link_capacity_factor(LinkId{i}, at), b.link_capacity_factor(LinkId{i}, at));
    EXPECT_EQ(a.host_down(HostId{i}, at), b.host_down(HostId{i}, at));
    EXPECT_EQ(a.buffer_shrink_factor(i), b.buffer_shrink_factor(i));
    EXPECT_EQ(a.scribe_attempt_fails(i, static_cast<int>(i % 4)),
              b.scribe_attempt_fails(i, static_cast<int>(i % 4)));
    EXPECT_EQ(a.scribe_delayed(i), b.scribe_delayed(i));
    EXPECT_EQ(a.scribe_delay(i).count_nanos(), b.scribe_delay(i).count_nanos());
    EXPECT_EQ(a.tagger_lookup_fails(i), b.tagger_lookup_fails(i));
    EXPECT_EQ(a.capture_drop(i, 0.5), b.capture_drop(i, 0.5));
  }
  // Repeating a query on the same instance never changes the answer.
  EXPECT_EQ(a.link_failed(LinkId{9}, TimePoint::zero()),
            a.link_failed(LinkId{9}, TimePoint::zero()));
}

TEST(FaultPlanTest, SeedChangesTheSchedule) {
  FaultConfig other = test_config();
  other.seed = 8;
  const FaultPlan a{test_config()};
  const FaultPlan b{other};
  int differing = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const TimePoint at = TimePoint::zero() + Duration::minutes(i);
    if (a.link_failed(LinkId{i}, at) != b.link_failed(LinkId{i}, at)) ++differing;
    if (a.host_down(HostId{i}, at) != b.host_down(HostId{i}, at)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlanTest, DistinctDecisionKindsDoNotCorrelate) {
  // With every probability at 0.10, the same (entity, bucket) should not
  // produce identical outcomes across decision kinds — the kind is hashed
  // into the decision.
  FaultConfig c = test_config();
  c.link_fail_prob = 0.10;
  c.host_crash_prob = 0.10;
  c.host_epoch = Duration::minutes(1);  // same bucketing as link faults
  const FaultPlan plan{c};
  int both = 0;
  int link_only = 0;
  int host_only = 0;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    const TimePoint at = TimePoint::zero() + Duration::minutes(i % 60);
    const bool lf = plan.link_failed(LinkId{i}, at);
    const bool hd = plan.host_down(HostId{i}, at);
    both += static_cast<int>(lf && hd);
    link_only += static_cast<int>(lf && !hd);
    host_only += static_cast<int>(!lf && hd);
  }
  // Independence: P(both) ~ 1%, each exclusive ~ 9% of 5000.
  EXPECT_LT(both, 150);
  EXPECT_GT(link_only, 250);
  EXPECT_GT(host_only, 250);
}

TEST(FaultPlanTest, LinkFailureRateTracksConfig) {
  const FaultPlan plan{test_config()};  // link_fail_prob = 0.10
  int failed = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const LinkId link{static_cast<std::uint32_t>(i % 500)};
    const TimePoint at = TimePoint::zero() + Duration::minutes(i / 500);
    failed += static_cast<int>(plan.link_failed(link, at));
  }
  const double rate = static_cast<double>(failed) / trials;
  EXPECT_NEAR(rate, 0.10, 0.015);
}

TEST(FaultPlanTest, LinkCapacityFactorSemantics) {
  // Failure wins over degradation.
  FaultConfig c = test_config();
  c.link_fail_prob = 1.0;
  c.link_degrade_prob = 1.0;
  EXPECT_DOUBLE_EQ(FaultPlan{c}.link_capacity_factor(LinkId{1}, TimePoint::zero()), 0.0);
  // Degradation alone yields the configured factor.
  c.link_fail_prob = 0.0;
  EXPECT_DOUBLE_EQ(FaultPlan{c}.link_capacity_factor(LinkId{1}, TimePoint::zero()),
                   c.link_degrade_factor);
  // Healthy link: full capacity.
  c.link_degrade_prob = 0.0;
  EXPECT_DOUBLE_EQ(FaultPlan{c}.link_capacity_factor(LinkId{1}, TimePoint::zero()), 1.0);
}

TEST(FaultPlanTest, LinkFaultsAreConstantWithinAMinute) {
  const FaultPlan plan{test_config()};
  for (std::uint32_t link = 0; link < 200; ++link) {
    const TimePoint start = TimePoint::zero() + Duration::minutes(link);
    const bool at_start = plan.link_failed(LinkId{link}, start);
    EXPECT_EQ(plan.link_failed(LinkId{link}, start + Duration::seconds(30)), at_start);
    EXPECT_EQ(plan.link_failed(LinkId{link}, start + Duration::nanos(59'999'999'999LL)),
              at_start);
  }
}

TEST(FaultPlanTest, HostCrashEpochSemantics) {
  const FaultPlan plan{test_config()};  // host_crash_prob = 0.10, epoch 10 min
  int down = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const HostId host{static_cast<std::uint32_t>(i % 500)};
    const TimePoint epoch_start =
        TimePoint::zero() + Duration::minutes(10 * (i / 500));
    const bool is_down = plan.host_down(host, epoch_start);
    down += static_cast<int>(is_down);
    // The whole epoch agrees with its first instant.
    EXPECT_EQ(plan.host_down(host, epoch_start + Duration::minutes(9)), is_down);
  }
  EXPECT_NEAR(static_cast<double>(down) / trials, 0.10, 0.015);
}

TEST(FaultPlanTest, BufferShrinkIsPerRunAndTracksRate) {
  const FaultConfig c = test_config();  // shrink_prob 0.25, factor 0.5
  const FaultPlan plan{c};
  int shrunk = 0;
  for (std::uint64_t salt = 0; salt < 4000; ++salt) {
    const double f = plan.buffer_shrink_factor(salt);
    EXPECT_TRUE(f == 1.0 || f == c.buffer_shrink_factor) << f;
    shrunk += static_cast<int>(f != 1.0);
    EXPECT_DOUBLE_EQ(plan.buffer_shrink_factor(salt), f);  // per-run stable
  }
  EXPECT_NEAR(shrunk / 4000.0, 0.25, 0.03);
}

TEST(FaultPlanTest, SampleKeyIsStableAndSensitive) {
  const std::uint64_t key = FaultPlan::sample_key(17, 1'000'000'000, 0xABCD);
  EXPECT_EQ(FaultPlan::sample_key(17, 1'000'000'000, 0xABCD), key);
  EXPECT_NE(FaultPlan::sample_key(18, 1'000'000'000, 0xABCD), key);
  EXPECT_NE(FaultPlan::sample_key(17, 1'000'000'001, 0xABCD), key);
  EXPECT_NE(FaultPlan::sample_key(17, 1'000'000'000, 0xABCE), key);
}

TEST(FaultPlanTest, ScribeBackoffIsExponential) {
  FaultConfig c = test_config();
  c.scribe_backoff_base = Duration::millis(50);
  const FaultPlan plan{c};
  EXPECT_EQ(plan.scribe_backoff(0).count_nanos(), 0);
  EXPECT_EQ(plan.scribe_backoff(1).count_nanos(), Duration::millis(50).count_nanos());
  EXPECT_EQ(plan.scribe_backoff(2).count_nanos(), Duration::millis(150).count_nanos());
  EXPECT_EQ(plan.scribe_backoff(3).count_nanos(), Duration::millis(350).count_nanos());
  EXPECT_EQ(plan.scribe_backoff(4).count_nanos(), Duration::millis(750).count_nanos());
}

TEST(FaultPlanTest, ScribeDropBoundaryProbabilities) {
  FaultConfig c = test_config();
  c.scribe_drop_prob = 1.0;
  const FaultPlan always{c};
  c.scribe_drop_prob = 0.0;
  const FaultPlan never{c};
  for (std::uint64_t key = 0; key < 200; ++key) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      EXPECT_TRUE(always.scribe_attempt_fails(key, attempt));
      EXPECT_FALSE(never.scribe_attempt_fails(key, attempt));
    }
  }
}

TEST(FaultPlanTest, ScribeRetryAttemptsAreIndependent) {
  const FaultPlan plan{test_config()};  // drop 0.30
  // P(attempt 0 and attempt 1 both fail) should be ~0.09, not ~0.30 —
  // attempts are separate decisions, not one per-sample coin.
  int first = 0;
  int both = 0;
  const int trials = 20000;
  for (std::uint64_t key = 0; key < trials; ++key) {
    const bool f0 = plan.scribe_attempt_fails(key, 0);
    first += static_cast<int>(f0);
    both += static_cast<int>(f0 && plan.scribe_attempt_fails(key, 1));
  }
  EXPECT_NEAR(first / static_cast<double>(trials), 0.30, 0.02);
  EXPECT_NEAR(both / static_cast<double>(trials), 0.09, 0.02);
}

TEST(FaultPlanTest, ScribeDelayIsPositiveAndBounded) {
  FaultConfig c = test_config();
  c.scribe_max_delay = Duration::seconds(30);
  const FaultPlan plan{c};
  int delayed = 0;
  for (std::uint64_t key = 0; key < 5000; ++key) {
    delayed += static_cast<int>(plan.scribe_delayed(key));
    const Duration d = plan.scribe_delay(key);
    EXPECT_GT(d.count_nanos(), 0);
    EXPECT_LE(d.count_nanos(), c.scribe_max_delay.count_nanos());
  }
  EXPECT_NEAR(delayed / 5000.0, c.scribe_delay_prob, 0.02);
}

TEST(FaultPlanTest, CaptureDropScalesWithOccupancy) {
  const FaultPlan plan{test_config()};  // capture_drop_prob = 0.50
  int idle = 0;
  int busy = 0;
  const int trials = 20000;
  for (std::uint64_t key = 0; key < trials; ++key) {
    idle += static_cast<int>(plan.capture_drop(key, 0.0));
    busy += static_cast<int>(plan.capture_drop(key, 1.0));
  }
  // p = 0.5 * (0.1 + 0.9 * occ): 5% when idle, 50% when saturated.
  EXPECT_NEAR(idle / static_cast<double>(trials), 0.05, 0.01);
  EXPECT_NEAR(busy / static_cast<double>(trials), 0.50, 0.02);
  // Out-of-range occupancies clamp instead of misbehaving.
  for (std::uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(plan.capture_drop(key, -3.0), plan.capture_drop(key, 0.0));
    EXPECT_EQ(plan.capture_drop(key, 42.0), plan.capture_drop(key, 1.0));
  }
}

TEST(FaultSpecTest, BuiltinNamesParse) {
  std::string error;
  const auto off = parse_fault_spec("off", &error);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->profile, Profile::kOff);
  const auto light = parse_fault_spec("light", &error);
  ASSERT_TRUE(light.has_value());
  EXPECT_EQ(light->profile, Profile::kLight);
  const auto heavy = parse_fault_spec("  heavy  ", &error);  // whitespace trims
  ASSERT_TRUE(heavy.has_value());
  EXPECT_EQ(heavy->profile, Profile::kHeavy);
}

TEST(FaultSpecTest, EmptyAndMissingFileAreErrors) {
  std::string error;
  EXPECT_FALSE(parse_fault_spec("", &error).has_value());
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_fault_spec("   ", &error).has_value());
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_fault_spec("/nonexistent/fault/profile.conf", &error).has_value());
  EXPECT_NE(error.find("not a regular file"), std::string::npos);
  // Directories and devices are rejected too, not read as empty profiles.
  error.clear();
  EXPECT_FALSE(parse_fault_spec("/tmp", &error).has_value());
  EXPECT_NE(error.find("not a regular file"), std::string::npos);
  error.clear();
  EXPECT_FALSE(parse_fault_spec("/dev/null", &error).has_value());
}

class FaultProfileFileTest : public ::testing::Test {
 protected:
  /// Writes `text` to a fresh file under the test temp dir.
  std::string write_profile(const std::string& text) {
    const std::string path = ::testing::TempDir() + "fault_profile_" +
                             std::to_string(counter_++) + ".conf";
    std::ofstream out{path};
    out << text;
    return path;
  }

  int counter_{0};
};

TEST_F(FaultProfileFileTest, RoundTripsEveryKey) {
  const std::string path = write_profile(
      "# stress profile used by the robustness study\n"
      "seed = 99\n"
      "link_fail_prob = 0.02\n"
      "link_degrade_prob = 0.04\n"
      "link_degrade_factor = 0.4\n"
      "buffer_shrink_prob = 0.3\n"
      "buffer_shrink_factor = 0.6\n"
      "host_crash_prob = 0.05   # trailing comment\n"
      "host_epoch_ms = 60000\n"
      "\n"
      "scribe_drop_prob = 0.2\n"
      "scribe_max_retries = 5\n"
      "scribe_backoff_base_ms = 25\n"
      "scribe_delay_prob = 0.1\n"
      "scribe_max_delay_ms = 45000\n"
      "tag_failure_prob = 0.02\n"
      "capture_drop_prob = 0.03\n");
  std::string error;
  const auto config = parse_fault_spec(path, &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->profile, Profile::kCustom);
  EXPECT_EQ(config->seed, 99u);
  EXPECT_DOUBLE_EQ(config->link_fail_prob, 0.02);
  EXPECT_DOUBLE_EQ(config->link_degrade_factor, 0.4);
  EXPECT_DOUBLE_EQ(config->host_crash_prob, 0.05);
  EXPECT_EQ(config->host_epoch.count_nanos(), Duration::seconds(60).count_nanos());
  EXPECT_EQ(config->scribe_max_retries, 5);
  EXPECT_EQ(config->scribe_backoff_base.count_nanos(), Duration::millis(25).count_nanos());
  EXPECT_EQ(config->scribe_max_delay.count_nanos(), Duration::seconds(45).count_nanos());
  EXPECT_DOUBLE_EQ(config->capture_drop_prob, 0.03);
}

TEST_F(FaultProfileFileTest, CommentsAndBlankLinesOnlyIsAValidOffLikeProfile) {
  const std::string path = write_profile("# nothing set\n\n   \n# still nothing\n");
  std::string error;
  const auto config = parse_fault_spec(path, &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->profile, Profile::kCustom);
  EXPECT_DOUBLE_EQ(config->link_fail_prob, 0.0);  // defaults
}

TEST_F(FaultProfileFileTest, RejectsMalformedLinesWithLineNumbers) {
  const struct {
    const char* text;
    const char* expect_in_error;
  } cases[] = {
      {"not an assignment\n", "expected 'key = value'"},
      {"unknown_knob = 0.5\n", "unknown key"},
      {"link_fail_prob = 1.5\n", "probability"},
      {"link_fail_prob = -0.1\n", "probability"},
      {"link_degrade_factor = 0\n", "factor"},
      {"link_degrade_factor = 1.5\n", "factor"},
      {"seed = -4\n", "unsigned"},
      {"seed = twelve\n", "unsigned"},
      {"host_epoch_ms = 0\n", "duration"},
      {"scribe_max_retries = 99\n", "[0,16]"},
      {"capture_drop_prob = 0.5extra\n", "probability"},
  };
  for (const auto& c : cases) {
    const std::string path = write_profile(std::string{"# header\n"} + c.text);
    std::string error;
    EXPECT_FALSE(parse_fault_spec(path, &error).has_value()) << c.text;
    EXPECT_NE(error.find(":2:"), std::string::npos) << error;  // line number
    EXPECT_NE(error.find(c.expect_in_error), std::string::npos) << error;
  }
}

/// Saves and restores FBDCSIM_FAULTS around each env-driven test.
class FaultsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (const char* v = std::getenv("FBDCSIM_FAULTS")) saved_ = v;
  }
  void TearDown() override {
    if (saved_.has_value()) {
      ::setenv("FBDCSIM_FAULTS", saved_->c_str(), 1);
    } else {
      ::unsetenv("FBDCSIM_FAULTS");
    }
  }

  std::optional<std::string> saved_;
};

TEST_F(FaultsEnvTest, UnsetAndOffYieldDisabledConfig) {
  ::unsetenv("FBDCSIM_FAULTS");
  EXPECT_EQ(fault_config_from_env().profile, Profile::kOff);
  ::setenv("FBDCSIM_FAULTS", "off", 1);
  EXPECT_EQ(fault_config_from_env().profile, Profile::kOff);
}

TEST_F(FaultsEnvTest, BuiltinProfilesResolve) {
  ::setenv("FBDCSIM_FAULTS", "light", 1);
  EXPECT_EQ(fault_config_from_env().profile, Profile::kLight);
  ::setenv("FBDCSIM_FAULTS", "heavy", 1);
  EXPECT_EQ(fault_config_from_env().profile, Profile::kHeavy);
}

TEST_F(FaultsEnvTest, MalformedValuesFallBackToOffWithoutCrashing) {
  for (const char* bad : {"", "  ", "LIGHT", "medium", "/no/such/file", "light;heavy",
                          "0.5", "../../../etc/passwd\n"}) {
    ::setenv("FBDCSIM_FAULTS", bad, 1);
    EXPECT_EQ(fault_config_from_env().profile, Profile::kOff) << "'" << bad << "'";
  }
}

}  // namespace
}  // namespace fbdcsim::faults
