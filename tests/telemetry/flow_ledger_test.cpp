// FlowLedger law suite (DESIGN.md §14): the lifecycle/attribution engine
// is driven directly through its hooks — no simulator — so every law is
// pinned against hand-computable inputs, plus a randomized episode-law
// property sweep. The JSONL writer/parser round-trip lives here too.
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fbdcsim/core/addr.h"
#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/telemetry/flow_ledger.h"
#include "fbdcsim/telemetry/tracepoint.h"

namespace fbdcsim::telemetry {
namespace {

core::FiveTuple test_tuple(std::uint16_t src_port = 40'000) {
  return core::FiveTuple{core::Ipv4Addr{10, 0, 0, 1}, core::Ipv4Addr{10, 0, 0, 2},
                         src_port, 11'211, core::Protocol::kTcp};
}

/// Births a connection with round numbers: 10 us out-RTT, 20 us in-RTT,
/// 1.25 GB/s bottleneck (10 Gb/s NIC).
void birth(FlowLedger& ledger, std::uint32_t tag, std::int64_t t_ns = 1'000) {
  ledger.on_birth(tag, t_ns, test_tuple(), core::HostRole::kCacheLeader,
                  core::HostRole::kWeb, core::Locality::kIntraRack,
                  /*rtt_out_ns=*/10'000, /*rtt_in_ns=*/20'000,
                  /*bottleneck_bytes_per_sec=*/1'250'000'000);
}

TEST(FlowLedger, IdealFctExactArithmetic) {
  // 1 MB at 1.25 GB/s is exactly 800 us of serialization + one RTT.
  EXPECT_EQ(ideal_fct_ns(1'048'576, 10'000, 1'250'000'000),
            10'000 + 1'048'576LL * 1'000'000'000 / 1'250'000'000);
  // Degenerate inputs fall back to the RTT floor.
  EXPECT_EQ(ideal_fct_ns(0, 10'000, 1'250'000'000), 10'000);
  EXPECT_EQ(ideal_fct_ns(-5, 10'000, 1'250'000'000), 10'000);
  EXPECT_EQ(ideal_fct_ns(1'000, 10'000, 0), 10'000);
  // Large transfers must not overflow 64-bit intermediate math: 1 TiB at
  // 1.25 GB/s is bytes * 0.8 ns, exactly.
  EXPECT_EQ(ideal_fct_ns(std::int64_t{1} << 40, 0, 1'250'000'000),
            (std::int64_t{1} << 40) / 5 * 4);
}

TEST(FlowLedger, TransferLifecycleClosesOnFullAck) {
  FlowLedger ledger{/*source_id=*/7, /*capacity=*/8};
  birth(ledger, 0x101, /*t_ns=*/1'000);
  ledger.on_syn(0x101, 1'000);
  ledger.on_established(0x101, 11'000);
  ledger.on_demand(0x101, 20'000, /*dir=*/0, /*bytes=*/4'096);
  EXPECT_EQ(ledger.live_transfers(), 1);
  ledger.on_acked(0x101, 25'000, 0, /*snd_una=*/1'000);  // partial: stays open
  EXPECT_EQ(ledger.total_closed(), 0);
  ledger.on_acked(0x101, 30'000, 0, /*snd_una=*/4'096);
  EXPECT_EQ(ledger.total_closed(), 1);
  EXPECT_EQ(ledger.live_transfers(), 0);

  const FlowLedgerDump dump = ledger.snapshot();
  ASSERT_EQ(dump.records.size(), 1u);
  const FlowLedgerRecord& r = dump.records[0];
  EXPECT_EQ(r.flow_tag, 0x101u);
  EXPECT_EQ(r.dir, 0);
  EXPECT_EQ(r.role, core::HostRole::kCacheLeader);
  EXPECT_EQ(r.peer_role, core::HostRole::kWeb);
  EXPECT_EQ(r.locality, core::Locality::kIntraRack);
  EXPECT_EQ(r.conn_born_ns, 1'000);
  EXPECT_EQ(r.syn_sends, 1);
  EXPECT_EQ(r.established_ns, 11'000);
  EXPECT_EQ(r.start_ns, 20'000);
  EXPECT_EQ(r.completed_ns, 30'000);
  EXPECT_EQ(r.bytes, 4'096);
  EXPECT_EQ(r.rtt_ns, 10'000);  // dir 0 takes the out-RTT
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.fct_ns(), 10'000);
  EXPECT_EQ(r.ideal_ns, ideal_fct_ns(4'096, 10'000, 1'250'000'000));
  EXPECT_GT(r.slowdown(), 0.0);
}

TEST(FlowLedger, InboundHalfUsesInRttAndOwnSequenceSpace) {
  FlowLedger ledger{1, 8};
  birth(ledger, 5);
  ledger.on_demand(5, 2'000, /*dir=*/1, 1'000);
  ledger.on_acked(5, 9'000, /*dir=*/1, 1'000);
  const FlowLedgerDump dump = ledger.snapshot();
  ASSERT_EQ(dump.records.size(), 1u);
  EXPECT_EQ(dump.records[0].dir, 1);
  EXPECT_EQ(dump.records[0].rtt_ns, 20'000);
}

TEST(FlowLedger, PipelinedDemandExtendsOpenTransfer) {
  FlowLedger ledger{1, 8};
  birth(ledger, 9);
  ledger.on_demand(9, 2'000, 0, 1'000);
  ledger.on_demand(9, 3'000, 0, 500);  // arrives before the first closes
  ledger.on_acked(9, 4'000, 0, 1'000);  // acks only the first burst: open
  EXPECT_EQ(ledger.total_closed(), 0);
  ledger.on_acked(9, 5'000, 0, 1'500);
  EXPECT_EQ(ledger.total_closed(), 1);
  const FlowLedgerDump dump = ledger.snapshot();
  ASSERT_EQ(dump.records.size(), 1u);
  EXPECT_EQ(dump.records[0].bytes, 1'500);
  EXPECT_EQ(dump.records[0].start_ns, 2'000);
}

TEST(FlowLedger, SequentialBurstsGetSeparateMonotoneRecords) {
  FlowLedger ledger{1, 8};
  birth(ledger, 9);
  ledger.on_demand(9, 2'000, 0, 100);
  ledger.on_acked(9, 3'000, 0, 100);
  ledger.on_demand(9, 10'000, 0, 200);  // after close: a fresh transfer
  ledger.on_acked(9, 11'000, 0, 300);   // snd_una is cumulative on the stream
  const FlowLedgerDump dump = ledger.snapshot();
  ASSERT_EQ(dump.records.size(), 2u);
  EXPECT_EQ(dump.records[0].bytes, 100);
  EXPECT_EQ(dump.records[1].bytes, 200);
  EXPECT_LT(dump.records[0].id, dump.records[1].id);
  EXPECT_EQ(dump.records[1].start_ns, 10'000);
}

TEST(FlowLedger, ReleaseClosesOpenTransfersAsIncomplete) {
  FlowLedger ledger{1, 8};
  birth(ledger, 3);
  ledger.on_demand(3, 2'000, 0, 1'000);
  ledger.on_demand(3, 2'000, 1, 500);
  ledger.on_release(3, 50'000);
  EXPECT_EQ(ledger.total_closed(), 2);
  EXPECT_EQ(ledger.live_transfers(), 0);
  for (const FlowLedgerRecord& r : ledger.snapshot().records) {
    EXPECT_FALSE(r.completed());
    EXPECT_EQ(r.fct_ns(), -1);
    EXPECT_EQ(r.slowdown(), 0.0);
  }
  // The tag is forgotten: later events on it are strays, not crashes.
  ledger.on_acked(3, 60'000, 0, 2'000);
  ledger.on_drop(3, 60'000, 0, 0, 100, FlowDropCause::kPathLoss, 0, -1,
                 kFaultEpochPathLoss);
  EXPECT_EQ(ledger.stray_events(), 1);  // the drop; acked on dead tag is benign
}

TEST(FlowLedger, FinalizeFlushesInConnectionCreationOrder) {
  FlowLedger ledger{1, 8};
  birth(ledger, 20);
  birth(ledger, 10);  // born second despite the smaller tag
  ledger.on_demand(10, 2'000, 0, 100);
  ledger.on_demand(20, 1'000, 0, 100);
  ledger.finalize(99'000);
  const FlowLedgerDump dump = ledger.snapshot();
  ASSERT_EQ(dump.records.size(), 2u);
  EXPECT_EQ(dump.records[0].flow_tag, 20u);  // creation order, not tag order
  EXPECT_EQ(dump.records[1].flow_tag, 10u);
  EXPECT_FALSE(dump.records[0].completed());
}

TEST(FlowLedger, EventsWithoutOpenTransferCountAsStray) {
  FlowLedger ledger{1, 8};
  birth(ledger, 4);  // live conn, but no demand yet -> no open transfer
  ledger.on_drop(4, 1'000, 0, 0, 100, FlowDropCause::kSwitchBuffer, 3, 2, -1);
  ledger.on_retransmit(4, 2'000, 0, 0, 100, FlowRtxKind::kDupack);
  ledger.on_drop(99, 3'000, 0, 0, 100, FlowDropCause::kScripted, 0, -1, -1);
  EXPECT_EQ(ledger.stray_events(), 3);
  EXPECT_EQ(ledger.total_closed(), 0);
}

TEST(LedgerAttribution, RetransmissionClaimsEarliestOverlappingDrop) {
  FlowLedger ledger{1, 8};
  birth(ledger, 6);
  ledger.on_demand(6, 2'000, 0, 10'000);
  // Two drops of the same segment (original + lost retransmission), then a
  // drop of a later segment.
  ledger.on_drop(6, 3'000, 0, 0, 1'000, FlowDropCause::kSwitchBuffer, 42, 5,
                 kFaultEpochBufferShrunk);
  ledger.on_drop(6, 4'000, 0, 0, 1'000, FlowDropCause::kPathLoss, 0, -1,
                 kFaultEpochPathLoss);
  ledger.on_drop(6, 5'000, 0, 2'000, 1'000, FlowDropCause::kScripted, 0, -1, -1);
  // First repair of [0,1000) claims the EARLIEST unclaimed overlap; the
  // second claims the next; the third repair has nothing left to claim.
  ledger.on_retransmit(6, 6'000, 0, 0, 1'000, FlowRtxKind::kDupack);
  ledger.on_retransmit(6, 7'000, 0, 0, 1'000, FlowRtxKind::kDupack);
  ledger.on_retransmit(6, 8'000, 0, 0, 1'000, FlowRtxKind::kDupack);
  ledger.on_acked(6, 9'000, 0, 10'000);

  const FlowLedgerDump dump = ledger.snapshot();
  ASSERT_EQ(dump.records.size(), 1u);
  const FlowLedgerRecord& r = dump.records[0];
  ASSERT_EQ(r.drop_count, 3u);
  ASSERT_EQ(r.rtx_count, 3u);
  EXPECT_EQ(r.rtxs[0].cause_id, r.drops[0].id);
  EXPECT_EQ(r.rtxs[1].cause_id, r.drops[1].id);
  EXPECT_EQ(r.rtxs[2].cause_id, -1);  // both overlapping drops already claimed
  EXPECT_TRUE(r.drops[0].claimed);
  EXPECT_TRUE(r.drops[1].claimed);
  EXPECT_FALSE(r.drops[2].claimed);  // [2000,3000) was never retransmitted
  EXPECT_EQ(r.drops[0].switch_id, 42u);
  EXPECT_EQ(r.drops[0].port, 5);
  EXPECT_EQ(r.drops[0].fault_epoch, kFaultEpochBufferShrunk);
  EXPECT_EQ(r.drops[1].fault_epoch, kFaultEpochPathLoss);
  EXPECT_EQ(r.rtx_bytes, 3'000);
  EXPECT_EQ(r.drops_total, 3);
  EXPECT_EQ(r.rtx_total, 3);
}

TEST(LedgerAttribution, RtoStreamInheritsPinnedCause) {
  FlowLedger ledger{1, 8};
  birth(ledger, 6);
  ledger.on_demand(6, 2'000, 0, 10'000);
  ledger.on_acked(6, 2'500, 0, 1'000);  // snd_una = 1000
  // The drop that stalls the window covers snd_una.
  ledger.on_drop(6, 3'000, 0, 1'000, 1'000, FlowDropCause::kScripted, 0, -1, -1);
  ledger.on_rto(6, 203'000, 0, /*backoff=*/1);
  // Go-back-N: the first resend overlaps the drop and claims it directly;
  // later segments in the RTO stream don't overlap but inherit the pinned
  // cause — the timeout they ride on was caused by that drop.
  ledger.on_retransmit(6, 203'001, 0, 1'000, 1'000, FlowRtxKind::kRto);
  ledger.on_retransmit(6, 203'002, 0, 2'000, 1'000, FlowRtxKind::kRto);

  const FlowLedgerDump dump = [&] {
    ledger.finalize(300'000);
    return ledger.snapshot();
  }();
  ASSERT_EQ(dump.records.size(), 1u);
  const FlowLedgerRecord& r = dump.records[0];
  ASSERT_EQ(r.drop_count, 1u);
  ASSERT_EQ(r.rtx_count, 2u);
  EXPECT_EQ(r.rtxs[0].cause_id, r.drops[0].id);
  EXPECT_EQ(r.rtxs[1].cause_id, r.drops[0].id);  // inherited, no overlap
  EXPECT_EQ(r.rtxs[1].kind, FlowRtxKind::kRto);
  EXPECT_EQ(r.rto_count, 1);
  // The RTO leaves a point episode carrying the backoff step.
  ASSERT_EQ(r.episode_count, 1u);
  EXPECT_EQ(r.episodes[0].kind, FlowEpisodeKind::kRto);
  EXPECT_EQ(r.episodes[0].start_ns, r.episodes[0].end_ns);
  EXPECT_EQ(r.episodes[0].detail, 1);
}

TEST(LedgerAttribution, DropIdsStayMonotoneUnderRingEviction) {
  // Capacity 2: five transfers close, three are evicted. Attribution ids
  // must be ledger-wide and never renumbered, so the survivors' ids are
  // exactly 4 and 5 and each retransmission still references its own drop.
  FlowLedger ledger{1, /*capacity=*/2};
  for (std::uint32_t i = 0; i < 5; ++i) {
    const std::uint32_t tag = 100 + i;
    birth(ledger, tag, /*t_ns=*/i * 10'000);
    ledger.on_demand(tag, i * 10'000 + 1, 0, 1'000);
    ledger.on_drop(tag, i * 10'000 + 2, 0, 0, 1'000, FlowDropCause::kScripted, 0,
                   -1, -1);
    ledger.on_retransmit(tag, i * 10'000 + 3, 0, 0, 1'000, FlowRtxKind::kDupack);
    ledger.on_acked(tag, i * 10'000 + 4, 0, 1'000);
  }
  EXPECT_EQ(ledger.total_closed(), 5);
  const FlowLedgerDump dump = ledger.snapshot();
  EXPECT_EQ(dump.total, 5);
  ASSERT_EQ(dump.records.size(), 2u);  // ring kept the newest two, oldest-first
  ASSERT_EQ(dump.records[0].drop_count, 1u);
  ASSERT_EQ(dump.records[1].drop_count, 1u);
  EXPECT_EQ(dump.records[0].drops[0].id, 4);
  EXPECT_EQ(dump.records[1].drops[0].id, 5);
  EXPECT_EQ(dump.records[0].rtxs[0].cause_id, 4);
  EXPECT_EQ(dump.records[1].rtxs[0].cause_id, 5);
  EXPECT_EQ(dump.records[0].flow_tag, 103u);
  EXPECT_EQ(dump.records[1].flow_tag, 104u);
}

TEST(LedgerAttribution, DropIdsAllocatedEvenWhenArrayOverflows) {
  FlowLedger ledger{1, 4};
  birth(ledger, 2);
  ledger.on_demand(2, 1'000, 0, 100'000);
  for (int i = 0; i < static_cast<int>(kFlowMaxDrops) + 3; ++i) {
    ledger.on_drop(2, 2'000 + i, 0, i * 1'000, 1'000, FlowDropCause::kScripted, 0,
                   -1, -1);
  }
  birth(ledger, 3);
  ledger.on_demand(3, 9'000, 0, 100);
  ledger.on_drop(3, 9'500, 0, 0, 100, FlowDropCause::kScripted, 0, -1, -1);
  ledger.finalize(10'000);
  const FlowLedgerDump dump = ledger.snapshot();
  ASSERT_EQ(dump.records.size(), 2u);
  const FlowLedgerRecord& a = dump.records[0];
  EXPECT_EQ(a.drops_total, static_cast<std::int64_t>(kFlowMaxDrops) + 3);
  EXPECT_EQ(a.drop_count, kFlowMaxDrops);  // array bounded, counter not
  // The overflowed drops still consumed ids, so the next conn's drop id
  // accounts for them — ids are allocation-order, never compacted.
  ASSERT_EQ(dump.records[1].drop_count, 1u);
  EXPECT_EQ(dump.records[1].drops[0].id,
            static_cast<std::int64_t>(kFlowMaxDrops) + 3 + 1);
}

TEST(LedgerEpisodes, ReenterIsIgnoredAndRtoClosesOpenEpisode) {
  FlowLedger ledger{1, 8};
  birth(ledger, 2);
  ledger.on_demand(2, 1'000, 0, 10'000);
  ledger.on_recovery_enter(2, 2'000, 0, FlowEpisodeKind::kSackRecovery);
  ledger.on_recovery_enter(2, 3'000, 0, FlowEpisodeKind::kFastRecovery);  // ignored
  ledger.on_rto(2, 5'000, 0, 2);  // closes the open episode, adds its point
  ledger.on_recovery_enter(2, 7'000, 0, FlowEpisodeKind::kFastRecovery);
  ledger.on_recovery_exit(2, 8'000, 0);
  ledger.on_ecn_reduction(2, 9'000, 0, 14'480);
  ledger.on_acked(2, 10'000, 0, 10'000);

  const FlowLedgerDump dump = ledger.snapshot();
  ASSERT_EQ(dump.records.size(), 1u);
  const FlowLedgerRecord& r = dump.records[0];
  ASSERT_EQ(r.episode_count, 4u);
  EXPECT_EQ(r.episodes[0].kind, FlowEpisodeKind::kSackRecovery);
  EXPECT_EQ(r.episodes[0].start_ns, 2'000);
  EXPECT_EQ(r.episodes[0].end_ns, 5'000);  // closed by the RTO
  EXPECT_EQ(r.episodes[1].kind, FlowEpisodeKind::kRto);
  EXPECT_EQ(r.episodes[1].start_ns, 5'000);
  EXPECT_EQ(r.episodes[1].end_ns, 5'000);
  EXPECT_EQ(r.episodes[2].kind, FlowEpisodeKind::kFastRecovery);
  EXPECT_EQ(r.episodes[2].end_ns, 8'000);
  EXPECT_EQ(r.episodes[3].kind, FlowEpisodeKind::kEcnReduction);
  EXPECT_EQ(r.episodes[3].detail, 14'480);
  EXPECT_EQ(r.ecn_reductions, 1);
}

/// xorshift-free deterministic LCG — no Date/random machinery, same
/// sequence on every platform.
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() { return s = s * 6364136223846793005ULL + 1442695040888963407ULL; }
  std::int64_t range(std::int64_t n) { return static_cast<std::int64_t>(next() >> 33) % n; }
};

TEST(LedgerEpisodes, PropertyIntervalEpisodesNeverOverlap) {
  // Random enter/exit/rto/ecn storms: in every closed record, interval
  // episodes (fast/sack recovery) must be well-formed and pairwise disjoint
  // in time, points must have end == start, and at most the LAST interval
  // may still be open (end == -1).
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Lcg rng{seed * 0x9E3779B97F4A7C15ULL};
    FlowLedger ledger{1, 64};
    birth(ledger, 8);
    ledger.on_demand(8, 0, 0, 1'000'000);
    std::int64_t t = 1;
    for (int step = 0; step < 200; ++step) {
      t += 1 + rng.range(1'000);
      switch (rng.range(4)) {
        case 0:
          ledger.on_recovery_enter(8, t, 0,
                                   rng.range(2) == 0 ? FlowEpisodeKind::kFastRecovery
                                                     : FlowEpisodeKind::kSackRecovery);
          break;
        case 1: ledger.on_recovery_exit(8, t, 0); break;
        case 2: ledger.on_rto(8, t, 0, rng.range(6)); break;
        default: ledger.on_ecn_reduction(8, t, 0, rng.range(100'000)); break;
      }
    }
    ledger.finalize(t + 1);
    const FlowLedgerDump dump = ledger.snapshot();
    ASSERT_EQ(dump.records.size(), 1u) << "seed " << seed;
    const FlowLedgerRecord& r = dump.records[0];
    std::int64_t prev_interval_end = -1;
    for (std::size_t i = 0; i < r.episode_count; ++i) {
      const FlowEpisode& e = r.episodes[i];
      if (e.kind == FlowEpisodeKind::kRto || e.kind == FlowEpisodeKind::kEcnReduction) {
        EXPECT_EQ(e.end_ns, e.start_ns) << "seed " << seed << " episode " << i;
        continue;
      }
      // Interval: starts after the previous interval ended, and if open it
      // must be the final interval in the record.
      EXPECT_GE(e.start_ns, prev_interval_end) << "seed " << seed << " episode " << i;
      if (e.end_ns >= 0) {
        EXPECT_GE(e.end_ns, e.start_ns) << "seed " << seed << " episode " << i;
        prev_interval_end = e.end_ns;
      } else {
        for (std::size_t j = i + 1; j < r.episode_count; ++j) {
          EXPECT_NE(r.episodes[j].kind, FlowEpisodeKind::kFastRecovery)
              << "seed " << seed;
          EXPECT_NE(r.episodes[j].kind, FlowEpisodeKind::kSackRecovery)
              << "seed " << seed;
        }
      }
    }
  }
}

TEST(FlowLedgerJsonl, RoundTripIsExact) {
  FlowLedger ledger{/*source_id=*/12, 8};
  birth(ledger, 0x101);
  ledger.on_syn(0x101, 1'000);
  ledger.on_established(0x101, 11'000);
  ledger.on_demand(0x101, 20'000, 0, 4'096);
  ledger.on_drop(0x101, 21'000, 0, 0, 1'448, FlowDropCause::kSwitchBuffer, 42, 3,
                 kFaultEpochBufferShrunk);
  ledger.on_recovery_enter(0x101, 22'000, 0, FlowEpisodeKind::kSackRecovery);
  ledger.on_retransmit(0x101, 23'000, 0, 0, 1'448, FlowRtxKind::kDupack);
  ledger.on_recovery_exit(0x101, 24'000, 0);
  ledger.on_acked(0x101, 30'000, 0, 4'096);
  ledger.on_demand(0x101, 40'000, 1, 512);  // incomplete inbound half
  ledger.finalize(50'000);

  const std::string text = flows_to_jsonl({ledger.snapshot()});
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::string error;
  const auto parsed = flows_from_jsonl(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].source_id, 12u);
  ASSERT_EQ((*parsed)[0].records.size(), 2u);
  const FlowLedgerRecord& r = (*parsed)[0].records[0];
  EXPECT_EQ(r.drops[0].cause, FlowDropCause::kSwitchBuffer);
  EXPECT_TRUE(r.drops[0].claimed);
  EXPECT_EQ(r.rtxs[0].cause_id, r.drops[0].id);
  EXPECT_FALSE((*parsed)[0].records[1].completed());
  // Writer(parser(s)) == s: the serialization is canonical.
  EXPECT_EQ(flows_to_jsonl(*parsed), text);
}

TEST(FlowLedgerJsonl, MultiSourceDumpsSortBySourceId) {
  FlowLedger a{/*source_id=*/30, 4};
  FlowLedger b{/*source_id=*/4, 4};
  for (FlowLedger* l : {&a, &b}) {
    birth(*l, 1);
    l->on_demand(1, 1'000, 0, 100);
    l->on_acked(1, 2'000, 0, 100);
  }
  const std::string text = flows_to_jsonl({a.snapshot(), b.snapshot()});
  const auto parsed = flows_from_jsonl(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].source_id, 4u);
  EXPECT_EQ((*parsed)[1].source_id, 30u);
  EXPECT_EQ(flows_to_jsonl(*parsed), text);
}

TEST(FlowLedgerJsonl, MalformedInputsRejectWithLineDiagnostics) {
  std::string error;
  // Missing trailing newline.
  EXPECT_FALSE(flows_from_jsonl("{\"src\":1}", &error).has_value());
  EXPECT_NE(error.find("missing trailing newline"), std::string::npos);
  // Garbage line.
  EXPECT_FALSE(flows_from_jsonl("not json\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  // Valid first line, garbage second: the diagnostic names line 2.
  FlowLedger ledger{1, 4};
  birth(ledger, 1);
  ledger.on_demand(1, 1'000, 0, 100);
  ledger.on_acked(1, 2'000, 0, 100);
  std::string text = flows_to_jsonl({ledger.snapshot()});
  EXPECT_FALSE(flows_from_jsonl(text + "{\"broken\":\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  // Empty input parses to an empty dump list.
  const auto empty = flows_from_jsonl("", &error);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(FlowLedgerJsonl, EmptyDumpSerializesToNothing) {
  const FlowLedger ledger{9, 4};
  EXPECT_EQ(flows_to_jsonl({ledger.snapshot()}), "");
}

}  // namespace
}  // namespace fbdcsim::telemetry
