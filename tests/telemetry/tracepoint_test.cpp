// TracePointLog / flight recorder / canonical exports.
//
// The ring must retain the *last N* records in order with an exact total;
// the JSONL and Chrome-trace renderings are canonical (source-id order,
// byte-identical for equal inputs); and the two clocks never mix — wall
// spans and sim tracepoints are segregated by pid/category in the combined
// Chrome export, with the spans' JSON untouched by the tracepoints' presence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fbdcsim/telemetry/export.h"
#include "fbdcsim/telemetry/tracepoint.h"

namespace fbdcsim::telemetry {
namespace {

TEST(TracePointLogTest, RecordsUpToCapacityInOrder) {
  TracePointLog log{7, 8};
  log.record(100, TracePointKind::kPacketDrop, 3, 1500, 9000);
  log.record(200, TracePointKind::kRtoFired, 0x101, 2920, 2);
  const TracePointDump dump = log.snapshot();
  EXPECT_EQ(dump.source_id, 7u);
  EXPECT_EQ(dump.total, 2);
  ASSERT_EQ(dump.records.size(), 2u);
  EXPECT_EQ(dump.records[0].t_ns, 100);
  EXPECT_EQ(dump.records[0].kind, TracePointKind::kPacketDrop);
  EXPECT_EQ(dump.records[0].entity, 3u);
  EXPECT_EQ(dump.records[0].a, 1500);
  EXPECT_EQ(dump.records[0].b, 9000);
  EXPECT_EQ(dump.records[1].t_ns, 200);
  EXPECT_EQ(dump.records[1].kind, TracePointKind::kRtoFired);
}

TEST(TracePointLogTest, RingOverwritesOldestKeepingLastN) {
  TracePointLog log{1, 4};
  for (std::int64_t i = 0; i < 10; ++i) {
    log.record(i * 10, TracePointKind::kHandshakeRetry, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(log.total_recorded(), 10);
  const TracePointDump dump = log.snapshot();
  EXPECT_EQ(dump.total, 10);
  ASSERT_EQ(dump.records.size(), 4u);
  // The last four records (6..9), oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(dump.records[i].entity, 6 + i) << "slot " << i;
    EXPECT_EQ(dump.records[i].t_ns, static_cast<std::int64_t>(6 + i) * 10);
  }
}

TEST(TracePointLogTest, KindNamesAreStable) {
  EXPECT_STREQ(to_string(TracePointKind::kPacketDrop), "packet_drop");
  EXPECT_STREQ(to_string(TracePointKind::kRtoFired), "rto_fired");
  EXPECT_STREQ(to_string(TracePointKind::kFastRtxEnter), "fast_rtx_enter");
  EXPECT_STREQ(to_string(TracePointKind::kFastRtxExit), "fast_rtx_exit");
  EXPECT_STREQ(to_string(TracePointKind::kFaultEpoch), "fault_epoch");
  EXPECT_STREQ(to_string(TracePointKind::kHandshakeRetry), "handshake_retry");
}

TEST(TracePointJsonlTest, ExactFormatOneObjectPerLine) {
  TracePointLog log{42, 8};
  log.record(1'000'000, TracePointKind::kPacketDrop, 5, 1500, 24000);
  log.record(2'000'000, TracePointKind::kFaultEpoch, ~std::uint64_t{0},
             kFaultEpochBufferShrunk, 500'000);
  const std::string jsonl = tracepoints_to_jsonl({log.snapshot()});
  EXPECT_EQ(jsonl,
            "{\"source\":42,\"t_ns\":1000000,\"kind\":\"packet_drop\","
            "\"entity\":5,\"a\":1500,\"b\":24000}\n"
            "{\"source\":42,\"t_ns\":2000000,\"kind\":\"fault_epoch\","
            "\"entity\":18446744073709551615,\"a\":0,\"b\":500000}\n");
}

TEST(TracePointJsonlTest, DumpsMergeInCanonicalSourceOrder) {
  TracePointLog high{9, 4};
  TracePointLog low{2, 4};
  high.record(50, TracePointKind::kRtoFired, 1);
  low.record(999, TracePointKind::kPacketDrop, 1);
  // Passed out of order; the export must sort by source id, so the result
  // cannot depend on which rack's capture finished first.
  const std::string jsonl = tracepoints_to_jsonl({high.snapshot(), low.snapshot()});
  const std::size_t pos_low = jsonl.find("\"source\":2");
  const std::size_t pos_high = jsonl.find("\"source\":9");
  ASSERT_NE(pos_low, std::string::npos);
  ASSERT_NE(pos_high, std::string::npos);
  EXPECT_LT(pos_low, pos_high);
  // Byte-determinism: same dumps, same bytes, either input order.
  EXPECT_EQ(jsonl, tracepoints_to_jsonl({low.snapshot(), high.snapshot()}));
  EXPECT_EQ(tracepoints_to_jsonl({}), "");
}

TEST(TracePointLogTest, DumpWritesOneLinePerRetainedRecord) {
  TracePointLog log{3, 4};
  for (int i = 0; i < 6; ++i) {
    log.record(i, TracePointKind::kFastRtxEnter, static_cast<std::uint64_t>(i));
  }
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  log.dump(tmp);
  std::fflush(tmp);
  std::rewind(tmp);
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof buf, tmp) != nullptr) out += buf;
  std::fclose(tmp);
  EXPECT_NE(out.find("source=3"), std::string::npos);
  EXPECT_NE(out.find("total=6"), std::string::npos);
  EXPECT_NE(out.find("retained=4"), std::string::npos);
  EXPECT_NE(out.find("fast_rtx_enter"), std::string::npos);
}

// --- sim-clock vs wall-clock segregation in the Chrome export -------------

std::vector<TraceEvent> some_spans() {
  std::vector<TraceEvent> events;
  events.push_back({"capture", /*tid=*/1, /*depth=*/0, /*start_us=*/10, /*dur_us=*/500});
  events.push_back({"shard:web", /*tid=*/2, /*depth=*/1, /*start_us=*/20, /*dur_us=*/100});
  return events;
}

TracePointDump some_tracepoints() {
  TracePointLog log{11, 8};
  log.record(123'000, TracePointKind::kPacketDrop, 2, 1500, 30000);
  log.record(456'000, TracePointKind::kRtoFired, 0x205, 2920, 1);
  return log.snapshot();
}

TEST(ChromeTraceSegregationTest, SpansOnlyExportHasNoInstantEvents) {
  const std::string doc = to_chrome_trace(some_spans());
  EXPECT_EQ(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(doc.find("fbdcsim.sim"), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ChromeTraceSegregationTest, CombinedExportKeepsWallSpansByteIdentical) {
  // The spans' serialized form must not change when tracepoints ride along:
  // the combined document contains the spans-only document's event list as
  // a prefix, so wall-clock tooling sees exactly the same slices.
  const std::string spans_only = to_chrome_trace(some_spans());
  const std::string combined = to_chrome_trace(some_spans(), {some_tracepoints()});
  const std::string open = "\"traceEvents\":[";
  const std::size_t spans_events = spans_only.find(open);
  const std::size_t combined_events = combined.find(open);
  ASSERT_NE(spans_events, std::string::npos);
  ASSERT_NE(combined_events, std::string::npos);
  // Everything between the list opener and the final "]}" in the spans-only
  // doc must appear verbatim in the combined one.
  const std::string span_list = spans_only.substr(
      spans_events + open.size(), spans_only.rfind("]}") - spans_events - open.size());
  EXPECT_NE(combined.find(span_list), std::string::npos);
}

TEST(ChromeTraceSegregationTest, ClocksNeverMix) {
  const std::string combined = to_chrome_trace(some_spans(), {some_tracepoints()});
  // Sim instants: pid 2, phase "i", their own category, tid = source id.
  EXPECT_NE(combined.find("\"cat\":\"fbdcsim.sim\",\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(combined.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(combined.find("\"tid\":11"), std::string::npos);
  // Wall spans stay phase "X" on pid 1 under the plain category.
  EXPECT_NE(combined.find("\"cat\":\"fbdcsim\",\"ph\":\"X\""), std::string::npos);
  // No hybrid: an instant event never carries the wall category and a span
  // never carries the sim one.
  EXPECT_EQ(combined.find("\"cat\":\"fbdcsim\",\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(combined.find("\"cat\":\"fbdcsim.sim\",\"ph\":\"X\""), std::string::npos);
  // Sim timestamps are sim-clock microseconds (123000 ns -> 123 us).
  EXPECT_NE(combined.find("\"ts\":123"), std::string::npos);
  // Determinism: repeated renders are byte-identical.
  EXPECT_EQ(combined, to_chrome_trace(some_spans(), {some_tracepoints()}));
}

TEST(ChromeTraceSegregationTest, EmptyTracepointListMatchesSpansOnly) {
  EXPECT_EQ(to_chrome_trace(some_spans(), {}), to_chrome_trace(some_spans()));
}

}  // namespace
}  // namespace fbdcsim::telemetry
