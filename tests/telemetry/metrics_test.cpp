#include "fbdcsim/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fbdcsim/telemetry/export.h"
#include "fbdcsim/telemetry/telemetry.h"

namespace fbdcsim::telemetry {
namespace {

/// Restores the runtime switch so tests can toggle it freely.
class EnabledGuard {
 public:
  EnabledGuard() : was_{Telemetry::enabled()} {}
  ~EnabledGuard() { Telemetry::set_enabled(was_); }

 private:
  bool was_;
};

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetOverwritesAndMaxKeepsHighWater) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  g.update_max(10);
  EXPECT_EQ(g.value(), 10);
  g.update_max(5);  // lower: no change
  EXPECT_EQ(g.value(), 10);
}

TEST(HistogramTest, BinsAreExactBelowSixteen) {
  for (std::int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::bin_for(v), static_cast<std::size_t>(v)) << v;
    EXPECT_DOUBLE_EQ(Histogram::bin_midpoint(Histogram::bin_for(v)),
                     static_cast<double>(v))
        << v;
  }
}

TEST(HistogramTest, BinForIsMonotonicAndMidpointStaysClose) {
  std::size_t prev = 0;
  for (std::int64_t v = 1; v < (1ll << 40); v = v * 5 / 4 + 1) {
    const std::size_t bin = Histogram::bin_for(v);
    EXPECT_GE(bin, prev) << v;
    EXPECT_LT(bin, Histogram::kBins) << v;
    prev = bin;
    // 8 sub-buckets per octave bounds the relative error by 12.5% (plus
    // half a bucket of midpoint offset).
    const double mid = Histogram::bin_midpoint(bin);
    EXPECT_NEAR(mid, static_cast<double>(v), static_cast<double>(v) * 0.125 + 1.0) << v;
  }
  EXPECT_EQ(Histogram::bin_for(-5), Histogram::bin_for(0));
}

TEST(HistogramTest, SnapshotCarriesStatsAndQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", Kind::kWall);
  for (std::int64_t v = 1; v <= 1000; ++v) h.observe(v);

  const Snapshot snap = reg.snapshot();
  const auto* hv = snap.histogram("h");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->kind, Kind::kWall);
  EXPECT_EQ(hv->count, 1000);
  EXPECT_DOUBLE_EQ(hv->sum, 1000.0 * 1001.0 / 2.0);
  EXPECT_EQ(hv->min, 1);
  EXPECT_EQ(hv->max, 1000);
  EXPECT_NEAR(hv->mean(), 500.5, 1e-9);
  EXPECT_NEAR(hv->quantile(0.5), 500.0, 500.0 * 0.13);
  EXPECT_NEAR(hv->quantile(0.99), 990.0, 990.0 * 0.13);
  EXPECT_DOUBLE_EQ(hv->quantile(0.0), 1.0);    // clamped to min
  EXPECT_DOUBLE_EQ(hv->quantile(1.0), 1000.0); // clamped to max
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x", Kind::kSim);
  Counter& b = reg.counter("x", Kind::kSim);
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2);
}

TEST(RegistryTest, KindMismatchThrows) {
  MetricsRegistry reg;
  (void)reg.counter("x", Kind::kSim);
  EXPECT_THROW((void)reg.counter("x", Kind::kWall), std::invalid_argument);
  (void)reg.gauge("g", Kind::kWall);
  EXPECT_THROW((void)reg.gauge("g", Kind::kSim), std::invalid_argument);
  (void)reg.histogram("h", Kind::kWall);
  EXPECT_THROW((void)reg.histogram("h", Kind::kSim), std::invalid_argument);
}

TEST(RegistryTest, TypeCollisionThrows) {
  MetricsRegistry reg;
  (void)reg.counter("x", Kind::kSim);
  EXPECT_THROW((void)reg.gauge("x", Kind::kSim), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("x", Kind::kSim), std::invalid_argument);
}

TEST(RegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c", Kind::kSim);
  Gauge& g = reg.gauge("g", Kind::kWall);
  Histogram& h = reg.histogram("h", Kind::kWall);
  c.add(5);
  g.set(5);
  h.observe(5);
  reg.reset();
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c")->value, 0);
  EXPECT_EQ(snap.gauge("g")->value, 0);
  EXPECT_EQ(snap.histogram("h")->count, 0);
  c.add(1);  // handle still live
  EXPECT_EQ(c.value(), 1);
}

TEST(SnapshotTest, LookupReturnsNullWhenAbsent) {
  MetricsRegistry reg;
  (void)reg.counter("present", Kind::kSim);
  const Snapshot snap = reg.snapshot();
  EXPECT_NE(snap.counter("present"), nullptr);
  EXPECT_EQ(snap.counter("absent"), nullptr);
  EXPECT_EQ(snap.gauge("absent"), nullptr);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

Snapshot make_snapshot(std::int64_t c, std::int64_t g, std::int64_t h_lo,
                       std::int64_t h_hi, const char* extra = nullptr) {
  MetricsRegistry reg;
  reg.counter("c", Kind::kSim).add(c);
  reg.gauge("g", Kind::kWall).set(g);
  Histogram& h = reg.histogram("h", Kind::kWall);
  for (std::int64_t v = h_lo; v <= h_hi; ++v) h.observe(v);
  if (extra != nullptr) reg.counter(extra, Kind::kSim).add(1);
  return reg.snapshot();
}

TEST(SnapshotTest, MergeSumsCountersMaxesGaugesCombinesHistograms) {
  Snapshot a = make_snapshot(10, 3, 1, 5);
  const Snapshot b = make_snapshot(32, 9, 6, 10, "only_in_b");
  a.merge(b);
  EXPECT_EQ(a.counter("c")->value, 42);
  EXPECT_EQ(a.counter("only_in_b")->value, 1);
  EXPECT_EQ(a.gauge("g")->value, 9);
  const auto* h = a.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 10);
  EXPECT_EQ(h->min, 1);
  EXPECT_EQ(h->max, 10);
  EXPECT_DOUBLE_EQ(h->sum, 55.0);
}

TEST(SnapshotTest, MergeIsAssociativeAndCommutative) {
  const Snapshot s1 = make_snapshot(1, 5, 1, 3, "a");
  const Snapshot s2 = make_snapshot(2, 9, 10, 12, "b");
  const Snapshot s3 = make_snapshot(4, 7, 100, 104, "c");

  Snapshot left = s1;   // (s1 + s2) + s3
  left.merge(s2);
  left.merge(s3);
  Snapshot right = s2;  // s1 + (s2 + s3)
  right.merge(s3);
  Snapshot right_total = s1;
  right_total.merge(right);
  Snapshot reversed = s3;  // s3 + s2 + s1
  reversed.merge(s2);
  reversed.merge(s1);

  // to_json is byte-stable for identical snapshots, so it doubles as a
  // deep-equality probe.
  EXPECT_EQ(to_json(left), to_json(right_total));
  EXPECT_EQ(to_json(left), to_json(reversed));
}

TEST(SnapshotTest, MergeKindMismatchThrows) {
  MetricsRegistry ra, rb;
  (void)ra.counter("x", Kind::kSim);
  (void)rb.counter("x", Kind::kWall);
  Snapshot a = ra.snapshot();
  EXPECT_THROW(a.merge(rb.snapshot()), std::invalid_argument);
}

TEST(SnapshotTest, MergeIntoEmptyHistogramPreservesIdentity) {
  MetricsRegistry ra, rb;
  (void)ra.histogram("h", Kind::kWall);  // registered, never observed
  rb.histogram("h", Kind::kWall).observe(7);
  Snapshot a = ra.snapshot();
  a.merge(rb.snapshot());
  const auto* h = a.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->name, "h");
  EXPECT_EQ(h->kind, Kind::kWall);
  EXPECT_EQ(h->count, 1);
  EXPECT_EQ(h->min, 7);
  EXPECT_EQ(h->max, 7);
}

TEST(TelemetryTest, RuntimeToggleRoundTrips) {
  const EnabledGuard guard;
  Telemetry::set_enabled(false);
  EXPECT_FALSE(Telemetry::enabled());
  Telemetry::set_enabled(true);
  EXPECT_TRUE(Telemetry::enabled());
}

// The macro layer. Under -DFBDCSIM_TELEMETRY=OFF these expand to nothing;
// the test then only asserts that the disabled registry stays untouched.
TEST(TelemetryTest, MacrosAreNoOpsWhileDisabled) {
  const EnabledGuard guard;
  Telemetry::set_enabled(false);

  FBDCSIM_T_COUNTER(counter, "test.macro.counter", Sim);
  FBDCSIM_T_GAUGE(gauge, "test.macro.gauge", Wall);
  FBDCSIM_T_HISTOGRAM(hist, "test.macro.hist", Wall);
  FBDCSIM_T_ADD(counter, 100);
  FBDCSIM_T_SET(gauge, 100);
  FBDCSIM_T_MAX(gauge, 100);
  FBDCSIM_T_OBSERVE(hist, 100);

  {
    const Snapshot snap = MetricsRegistry::global().snapshot();
    if (const auto* c = snap.counter("test.macro.counter")) {
      EXPECT_EQ(c->value, 0);
    }
    if (const auto* g = snap.gauge("test.macro.gauge")) {
      EXPECT_EQ(g->value, 0);
    }
    if (const auto* h = snap.histogram("test.macro.hist")) {
      EXPECT_EQ(h->count, 0);
    }
  }

#if FBDCSIM_TELEMETRY_ENABLED
  Telemetry::set_enabled(true);
  FBDCSIM_T_ADD(counter, 1);
  FBDCSIM_T_MAX(gauge, 2);
  FBDCSIM_T_OBSERVE(hist, 3);
  const Snapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counter("test.macro.counter")->value, 1);
  EXPECT_EQ(snap.gauge("test.macro.gauge")->value, 2);
  EXPECT_EQ(snap.histogram("test.macro.hist")->count, 1);
#endif
}

}  // namespace
}  // namespace fbdcsim::telemetry
