// Differential gate for the observability layer (DESIGN.md §11): the
// time-series JSON and tracepoint JSONL a capture produces are part of its
// deterministic output, so they must be bit-identical across
//
//   - the two event engines (kReference heap vs kBucketed), and
//   - thread-pool widths 1/2/8 (one Simulator per capture on the pool),
//
// under the heaviest observable load we can arrange: flow-level TCP with
// the heavy fault profile, so drops, RTO fires, fast-retransmit
// transitions, and fault epochs all hit the flight recorder.
//
// On mismatch the flight-recorder JSONL is printed to stderr — the
// dump-on-differential-mismatch workflow the flight recorder exists for.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "fbdcsim/core/time.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/runtime/parallel_capture.h"
#include "fbdcsim/runtime/thread_pool.h"
#include "fbdcsim/telemetry/flow_ledger.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/telemetry/timeseries.h"
#include "fbdcsim/telemetry/tracepoint.h"
#include "fbdcsim/workload/presets.h"
#include "fbdcsim/workload/rack_sim.h"

namespace fbdcsim::telemetry {
namespace {

using core::HostRole;

/// Canonical serialized observability output of one capture.
struct ObsOutput {
  std::string timeseries_json;
  std::string tracepoints_jsonl;
  std::string flows_jsonl;
  std::int64_t tracepoint_total{0};
  std::int64_t flows_total{0};
};

/// Forces the runtime telemetry switch on for a test's scope (the obs layer
/// honors it; CI may run with FBDCSIM_TELEMETRY=0 in the environment).
class TelemetryOn {
 public:
  TelemetryOn() : saved_{Telemetry::enabled()} { Telemetry::set_enabled(true); }
  ~TelemetryOn() { Telemetry::set_enabled(saved_); }

 private:
  bool saved_;
};

workload::RackSimConfig obs_config(const topology::Fleet& fleet, HostRole role,
                                   const faults::FaultPlan* plan,
                                   sim::Simulator::Engine engine) {
  workload::RackSimConfig cfg =
      workload::default_rack_config(fleet, role, core::Duration::millis(200));
  cfg.warmup = core::Duration::millis(100);
  cfg.transport = workload::Transport::kTcp;
  cfg.faults = plan;
  cfg.engine = engine;
  cfg.obs.mode = ObsConfig::Mode::kOn;
  cfg.obs.probe_period = core::Duration::micros(20);
  cfg.obs.series_capacity = 32;
  cfg.obs.flight_recorder = 128;
  cfg.obs.flows = true;
  cfg.obs.flow_capacity = 512;  // small enough that eviction happens too
  return cfg;
}

ObsOutput run_one(const topology::Fleet& fleet, HostRole role,
                  const faults::FaultPlan* plan, sim::Simulator::Engine engine) {
  workload::RackSimulation rack{fleet, obs_config(fleet, role, plan, engine)};
  const workload::RackSimResult result = rack.run();
  ObsOutput out;
  out.timeseries_json = timeseries_to_json(result.timeseries);
  out.tracepoints_jsonl = tracepoints_to_jsonl({result.tracepoints});
  out.tracepoint_total = result.tracepoints.total;
  out.flows_jsonl = flows_to_jsonl({result.flows});
  out.flows_total = result.flows.total;
  return out;
}

void expect_same(const ObsOutput& baseline, const ObsOutput& got, const char* what) {
  EXPECT_EQ(baseline.timeseries_json, got.timeseries_json) << what;
  EXPECT_EQ(baseline.tracepoint_total, got.tracepoint_total) << what;
  EXPECT_EQ(baseline.flows_total, got.flows_total) << what;
  EXPECT_EQ(baseline.flows_jsonl, got.flows_jsonl) << "flows JSONL diverged: " << what;
  if (baseline.tracepoints_jsonl != got.tracepoints_jsonl) {
    // The flight-recorder workflow: on a differential mismatch, dump both
    // sides' last-N tracepoints so the divergence point is greppable.
    std::fprintf(stderr, "obs differential mismatch (%s)\n--- baseline ---\n%s"
                         "--- divergent ---\n%s",
                 what, baseline.tracepoints_jsonl.c_str(),
                 got.tracepoints_jsonl.c_str());
    ADD_FAILURE() << "tracepoint JSONL diverged (" << what << "); dumps on stderr";
  }
}

TEST(ObsDifferential, BitIdenticalAcrossEngines) {
  TelemetryOn on;
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  const faults::FaultPlan heavy{faults::heavy_profile()};
  for (const HostRole role : {HostRole::kWeb, HostRole::kHadoop}) {
    const ObsOutput ref =
        run_one(fleet, role, &heavy, sim::Simulator::Engine::kReference);
    const ObsOutput bucketed =
        run_one(fleet, role, &heavy, sim::Simulator::Engine::kBucketed);
#if FBDCSIM_TELEMETRY_ENABLED
    // The heavy profile must actually exercise the recorder, or this gate
    // compares empty strings forever.
    EXPECT_GT(ref.tracepoint_total, 0) << "heavy profile produced no tracepoints";
    EXPECT_NE(ref.timeseries_json, "{\"series\":{}}");
    // 200 ms of TCP closes transfers past the 512-record ring, so the gate
    // covers eviction-order determinism, not just the easy no-wrap case.
    EXPECT_GT(ref.flows_total, 512) << "flows gate never exercised eviction";
    EXPECT_FALSE(ref.flows_jsonl.empty()) << "flows gate compares empty strings";
#endif
    expect_same(ref, bucketed,
                role == HostRole::kWeb ? "engines, Web" : "engines, Hadoop");
  }
}

TEST(ObsDifferential, BitIdenticalAcrossThreadCounts) {
  TelemetryOn on;
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  const faults::FaultPlan heavy{faults::heavy_profile()};

  auto run_batch = [&](int workers) {
    std::vector<std::function<ObsOutput()>> tasks;
    for (const HostRole role : {HostRole::kWeb, HostRole::kHadoop}) {
      tasks.push_back([&fleet, &heavy, role] {
        return run_one(fleet, role, &heavy, sim::Simulator::Engine::kBucketed);
      });
    }
    runtime::ThreadPool pool{workers};
    runtime::ParallelCaptureRunner runner{pool};
    return runner.run(tasks);
  };

  const std::vector<ObsOutput> baseline = run_batch(1);
  ASSERT_EQ(baseline.size(), 2u);
  for (const int workers : {2, 8}) {
    const std::vector<ObsOutput> got = run_batch(workers);
    ASSERT_EQ(got.size(), 2u);
    for (std::size_t i = 0; i < got.size(); ++i) {
      const std::string what =
          "workers=" + std::to_string(workers) + " capture=" + std::to_string(i);
      expect_same(baseline[i], got[i], what.c_str());
    }
  }
}

TEST(ObsDifferential, ObsOffProducesNoObservabilityOutput) {
  // The default: byte-identical behavior to pre-observability builds means
  // no series, no tracepoints, nothing to merge.
  TelemetryOn on;
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  workload::RackSimConfig cfg = workload::default_rack_config(
      fleet, HostRole::kWeb, core::Duration::millis(100));
  cfg.transport = workload::Transport::kTcp;
  ASSERT_FALSE(cfg.obs.enabled());
  workload::RackSimulation rack{fleet, cfg};
  const workload::RackSimResult result = rack.run();
  EXPECT_TRUE(result.timeseries.empty());
  EXPECT_TRUE(result.tracepoints.records.empty());
  EXPECT_EQ(result.tracepoints.total, 0);
  EXPECT_TRUE(result.flows.records.empty());
  EXPECT_EQ(result.flows.total, 0);
}

TEST(ObsDifferential, FlowsLevelRequiresOptIn) {
  // FBDCSIM_OBS=on alone must not allocate a ledger: the flows level is its
  // own opt-in, so dump/probe users pay nothing for the per-flow machinery.
  TelemetryOn on;
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  workload::RackSimConfig cfg = workload::default_rack_config(
      fleet, HostRole::kWeb, core::Duration::millis(100));
  cfg.transport = workload::Transport::kTcp;
  cfg.obs.mode = ObsConfig::Mode::kOn;
  ASSERT_FALSE(cfg.obs.flows);
  workload::RackSimulation rack{fleet, cfg};
  const workload::RackSimResult result = rack.run();
  EXPECT_TRUE(result.flows.records.empty());
  EXPECT_EQ(result.flows.total, 0);
}

}  // namespace
}  // namespace fbdcsim::telemetry
