// TimeSeries / TimeSeriesProbe: the hierarchical-downsampling laws.
//
// The ring promises exact conservation under compaction — folding adjacent
// bins must preserve total count, sum, global min/max, and the final
// sample — plus bounded memory (bins never exceed the capacity) and a
// bin width that only ever doubles. The JSON rendering is part of the
// determinism contract: equal snapshots must serialize byte-identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "fbdcsim/telemetry/timeseries.h"

namespace fbdcsim::telemetry {
namespace {

/// Totals over a snapshot's bins, for comparing against the raw samples.
struct Totals {
  std::int64_t count{0};
  std::int64_t sum{0};
  std::int64_t min{0};
  std::int64_t max{0};
  std::int64_t last{0};
};

Totals totals(const SeriesSnapshot& snap) {
  Totals t;
  bool first = true;
  for (const SeriesBin& b : snap.bins) {
    t.count += b.count;
    t.sum += b.sum;
    if (first || b.min < t.min) t.min = b.min;
    if (first || b.max > t.max) t.max = b.max;
    t.last = b.last;
    first = false;
  }
  return t;
}

TEST(TimeSeriesTest, SingleBinHoldsExactStats) {
  TimeSeries s{"x", 10, 8};
  s.add_sample(0, 5);
  const SeriesSnapshot snap = s.snapshot();
  ASSERT_EQ(snap.bins.size(), 1u);
  EXPECT_EQ(snap.bins[0].start_ns, 0);
  EXPECT_EQ(snap.bins[0].count, 1);
  EXPECT_EQ(snap.bins[0].min, 5);
  EXPECT_EQ(snap.bins[0].max, 5);
  EXPECT_EQ(snap.bins[0].last, 5);
  EXPECT_EQ(snap.bins[0].sum, 5);
  EXPECT_EQ(snap.samples, 1);
  EXPECT_EQ(snap.bin_samples, 1);
}

TEST(TimeSeriesTest, CompactionConservesCountSumMinMaxLast) {
  // Push far more samples than capacity so multiple compactions fire, with
  // adversarial values (negatives, spikes, plateaus) from a fixed seed.
  std::mt19937_64 rng{7};
  std::uniform_int_distribution<std::int64_t> dist{-1000, 1000};
  TimeSeries s{"occupancy", 10, 16};
  std::int64_t count = 0, sum = 0, mn = 0, mx = 0, last = 0;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = dist(rng);
    s.add_sample(static_cast<std::int64_t>(i) * 10, v);
    if (count == 0 || v < mn) mn = v;
    if (count == 0 || v > mx) mx = v;
    ++count;
    sum += v;
    last = v;
  }
  const SeriesSnapshot snap = s.snapshot();
  const Totals t = totals(snap);
  EXPECT_EQ(t.count, count);
  EXPECT_EQ(t.sum, sum);
  EXPECT_EQ(t.min, mn);
  EXPECT_EQ(t.max, mx);
  EXPECT_EQ(t.last, last);
  EXPECT_EQ(snap.samples, count);
}

TEST(TimeSeriesTest, BinsStayBoundedAndWidthOnlyDoubles) {
  TimeSeries s{"x", 1, 8};
  std::int64_t prev_width = s.bin_samples();
  EXPECT_EQ(prev_width, 1);
  for (int i = 0; i < 4'096; ++i) {
    s.add_sample(i, i);
    const SeriesSnapshot snap = s.snapshot();
    ASSERT_LE(snap.bins.size(), 8u) << "at sample " << i;
    const std::int64_t width = s.bin_samples();
    ASSERT_TRUE(width == prev_width || width == 2 * prev_width)
        << "width jumped " << prev_width << " -> " << width;
    // Powers of two by induction from 1.
    ASSERT_EQ(width & (width - 1), 0);
    prev_width = width;
  }
  EXPECT_GT(prev_width, 1) << "capacity 8 with 4096 samples must have compacted";
}

TEST(TimeSeriesTest, CompletedBinsHoldExactlyBinSamples) {
  TimeSeries s{"x", 10, 4};
  for (int i = 0; i < 1'000; ++i) s.add_sample(i * 10, 1);
  const SeriesSnapshot snap = s.snapshot();
  // Every bin except possibly the trailing partial holds bin_samples.
  for (std::size_t i = 0; i + 1 < snap.bins.size(); ++i) {
    EXPECT_EQ(snap.bins[i].count, snap.bin_samples) << "bin " << i;
  }
  ASSERT_FALSE(snap.bins.empty());
  EXPECT_LE(snap.bins.back().count, snap.bin_samples);
}

TEST(TimeSeriesTest, BinStartsAreNonDecreasingAndFirstIsFirstSample) {
  TimeSeries s{"x", 10, 8};
  for (int i = 0; i < 300; ++i) s.add_sample(500 + i * 10, i);
  const SeriesSnapshot snap = s.snapshot();
  ASSERT_FALSE(snap.bins.empty());
  EXPECT_EQ(snap.bins.front().start_ns, 500);
  for (std::size_t i = 1; i < snap.bins.size(); ++i) {
    EXPECT_LT(snap.bins[i - 1].start_ns, snap.bins[i].start_ns);
  }
}

TEST(TimeSeriesTest, TinyCapacityIsClampedNotUB) {
  // Capacities below 2 (or odd ones) cannot pair-merge; the constructor
  // clamps instead of corrupting.
  for (const std::size_t cap : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    TimeSeries s{"x", 1, cap};
    std::int64_t sum = 0;
    for (int i = 0; i < 100; ++i) {
      s.add_sample(i, i);
      sum += i;
    }
    const SeriesSnapshot snap = s.snapshot();
    EXPECT_EQ(totals(snap).sum, sum) << "cap=" << cap;
    EXPECT_EQ(snap.samples, 100) << "cap=" << cap;
  }
}

TEST(TimeSeriesProbeTest, SamplesEveryGaugeEachTick) {
  TimeSeriesProbe probe{core::Duration::micros(10), 32};
  std::int64_t a = 1, b = 100;
  probe.add_gauge("a", [&a] { return a; });
  probe.add_gauge("b", [&b] { return b; });
  for (int i = 0; i < 5; ++i) {
    probe.sample_tick(i * 10'000);
    ++a;
    b += 10;
  }
  EXPECT_EQ(probe.ticks(), 5);
  EXPECT_EQ(probe.num_series(), 2u);
  const std::vector<SeriesSnapshot> snaps = probe.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  const SeriesSnapshot* sa = find_series(snaps, "a");
  const SeriesSnapshot* sb = find_series(snaps, "b");
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sa->samples, 5);
  EXPECT_EQ(totals(*sa).sum, 1 + 2 + 3 + 4 + 5);
  EXPECT_EQ(totals(*sb).last, 140);
  EXPECT_EQ(sa->period_ns, 10'000);
}

TEST(TimeSeriesProbeTest, StridedGaugesSampleEveryNthTickFromTickZero) {
  TimeSeriesProbe probe{core::Duration::micros(10), 32};
  std::int64_t fast_calls = 0, slow_calls = 0;
  probe.add_gauge("fast", [&fast_calls] { return ++fast_calls; });
  probe.add_gauge("slow", [&slow_calls] { return ++slow_calls; }, /*stride=*/4);
  for (int i = 0; i < 10; ++i) probe.sample_tick(i * 10'000);
  EXPECT_EQ(fast_calls, 10);
  EXPECT_EQ(slow_calls, 3);  // ticks 0, 4, 8
  const std::vector<SeriesSnapshot> snaps = probe.snapshot();
  const SeriesSnapshot* slow = find_series(snaps, "slow");
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->samples, 3);
  // The recorded cadence is the effective one, not the probe's base period.
  EXPECT_EQ(slow->period_ns, 40'000);
  EXPECT_EQ(find_series(snaps, "fast")->period_ns, 10'000);
  // A nonsense stride clamps to 1 instead of dividing by zero.
  std::int64_t clamped_calls = 0;
  probe.add_gauge("clamped", [&clamped_calls] { return ++clamped_calls; }, 0);
  probe.sample_tick(100'000);
  EXPECT_EQ(clamped_calls, 1);
}

TEST(TimeSeriesProbeTest, SnapshotIsNameSortedRegardlessOfRegistration) {
  TimeSeriesProbe probe{core::Duration::micros(10)};
  probe.add_gauge("zeta", [] { return 1; });
  probe.add_gauge("alpha", [] { return 2; });
  probe.add_gauge("mid", [] { return 3; });
  probe.sample_tick(0);
  const std::vector<SeriesSnapshot> snaps = probe.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "alpha");
  EXPECT_EQ(snaps[1].name, "mid");
  EXPECT_EQ(snaps[2].name, "zeta");
}

TEST(TimeSeriesProbeTest, FindSeriesReturnsNullWhenAbsent) {
  TimeSeriesProbe probe{core::Duration::micros(10)};
  probe.add_gauge("present", [] { return 0; });
  const std::vector<SeriesSnapshot> snaps = probe.snapshot();
  EXPECT_NE(find_series(snaps, "present"), nullptr);
  EXPECT_EQ(find_series(snaps, "absent"), nullptr);
  EXPECT_EQ(find_series({}, "anything"), nullptr);
}

TEST(TimeSeriesJsonTest, RenderingIsByteDeterministicAndWellFormed) {
  TimeSeriesProbe probe{core::Duration::micros(10), 4};
  std::int64_t v = -3;
  probe.add_gauge("neg", [&v] { return v; });
  for (int i = 0; i < 11; ++i) {
    probe.sample_tick(i * 10'000);
    v += 2;
  }
  const std::string a = timeseries_to_json(probe.snapshot());
  const std::string b = timeseries_to_json(probe.snapshot());
  EXPECT_EQ(a, b);
  // Structural spot checks — the exact grammar the aggregator documents.
  EXPECT_NE(a.find("\"series\":{"), std::string::npos);
  EXPECT_NE(a.find("\"neg\":{\"period_ns\":10000,\"bin_samples\":"), std::string::npos);
  EXPECT_NE(a.find("\"bins\":[["), std::string::npos);
  EXPECT_EQ(timeseries_to_json({}), "{\"series\":{}}");
}

}  // namespace
}  // namespace fbdcsim::telemetry
