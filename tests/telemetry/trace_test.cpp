#include "fbdcsim/telemetry/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "fbdcsim/telemetry/export.h"
#include "fbdcsim/telemetry/metrics.h"

namespace fbdcsim::telemetry {
namespace {

class EnabledGuard {
 public:
  EnabledGuard() : was_{Telemetry::enabled()} {}
  ~EnabledGuard() { Telemetry::set_enabled(was_); }

 private:
  bool was_;
};

TEST(TraceSpanTest, RecordsOneEventPerSpan) {
  const EnabledGuard guard;
  Telemetry::set_enabled(true);
  Tracer tracer;
  {
    TraceSpan span{"work", tracer};
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_GE(events[0].start_us, 0);
  EXPECT_GE(events[0].dur_us, 0);
}

TEST(TraceSpanTest, NestedSpansReportDepthAndOrder) {
  const EnabledGuard guard;
  Telemetry::set_enabled(true);
  Tracer tracer;
  {
    TraceSpan outer{"outer", tracer};
    {
      TraceSpan mid{"mid", std::string{"detail"}, tracer};
      TraceSpan inner{"inner", tracer};
    }
  }
  const auto events = tracer.events();  // sorted by (start_us, tid, depth)
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].name, "mid:detail");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].depth, 2u);
  // A child opens no earlier than its parent and closes no later.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_us, events[i - 1].start_us);
    EXPECT_LE(events[i].start_us + events[i].dur_us,
              events[i - 1].start_us + events[i - 1].dur_us);
  }
}

TEST(TraceSpanTest, SequentialSpansReuseDepthZero) {
  const EnabledGuard guard;
  Telemetry::set_enabled(true);
  Tracer tracer;
  { TraceSpan a{"a", tracer}; }
  { TraceSpan b{"b", tracer}; }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 0u);
}

TEST(TraceSpanTest, DisabledSpanIsInert) {
  const EnabledGuard guard;
  Tracer tracer;
  Telemetry::set_enabled(false);
  {
    TraceSpan span{"invisible", tracer};
    // Re-enabling mid-span must not record the already-inert span (that
    // would unbalance the thread's depth counter).
    Telemetry::set_enabled(true);
  }
  EXPECT_EQ(tracer.size(), 0u);
  {
    TraceSpan span{"visible", tracer};
  }
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events()[0].depth, 0u);
}

TEST(TraceSpanTest, ClearDropsEvents) {
  const EnabledGuard guard;
  Telemetry::set_enabled(true);
  Tracer tracer;
  { TraceSpan span{"x", tracer}; }
  EXPECT_EQ(tracer.size(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(ScopedTimerTest, ObservesElapsedIntoHistogram) {
  const EnabledGuard guard;
  Telemetry::set_enabled(true);
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t", Kind::kWall);
  Tracer tracer;
  {
    ScopedTimer timer{h, "timed", tracer};
  }
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.histogram("t")->count, 1);
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events()[0].name, "timed");

  {
    ScopedTimer timer{h};  // histogram only, no span
  }
  EXPECT_EQ(reg.snapshot().histogram("t")->count, 2);
}

TEST(ScopedTimerTest, DisabledTimerIsInert) {
  const EnabledGuard guard;
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t", Kind::kWall);
  Telemetry::set_enabled(false);
  {
    ScopedTimer timer{h, "timed"};
  }
  EXPECT_EQ(reg.snapshot().histogram("t")->count, 0);
}

TEST(ExportTest, ChromeTraceHasExpectedShape) {
  std::vector<TraceEvent> events;
  events.push_back({"shard \"0\"", 2, 1, 10, 5});
  const std::string json = to_chrome_trace(events);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(json.find("shard \\\"0\\\""), std::string::npos);  // escaped
  EXPECT_EQ(json.find("shard \"0\""), std::string::npos);
}

TEST(ExportTest, JsonSegregatesSimFromWall) {
  MetricsRegistry reg;
  reg.counter("det", Kind::kSim).add(1);
  reg.counter("clock", Kind::kWall).add(2);
  const std::string json = to_json(reg.snapshot());
  const std::size_t sim = json.find("\"sim\":");
  const std::size_t wall = json.find("\"wall\":");
  ASSERT_NE(sim, std::string::npos);
  ASSERT_NE(wall, std::string::npos);
  const std::size_t det = json.find("\"det\":1");
  const std::size_t clock = json.find("\"clock\":2");
  ASSERT_NE(det, std::string::npos);
  ASSERT_NE(clock, std::string::npos);
  EXPECT_TRUE(sim < det && det < wall);
  EXPECT_TRUE(wall < clock);
}

TEST(ExportTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace fbdcsim::telemetry
