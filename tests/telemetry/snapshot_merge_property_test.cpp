// Property tests for telemetry::Snapshot::merge — the combine step behind
// every multi-registry aggregation (bench JSON reports, sharded capture
// summaries). Counters and histogram bins must sum, gauges must take the
// max, and the whole operation must commute and associate with the empty
// snapshot as identity, for hundreds of seeded random snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "fbdcsim/core/rng.h"
#include "fbdcsim/telemetry/metrics.h"

namespace fbdcsim::telemetry {
namespace {

constexpr int kCases = 200;

// Name pools are pre-sorted: merge_sorted expects sections sorted by name,
// the invariant MetricsRegistry::snapshot() maintains.
const std::vector<std::string> kCounterNames{"a.events", "b.drops", "c.bytes", "d.rows",
                                             "e.retries", "f.flows"};
const std::vector<std::string> kGaugeNames{"g.depth", "h.watermark", "i.width"};
const std::vector<std::string> kHistNames{"x.latency", "y.size"};

Snapshot random_snapshot(core::RngStream& rng) {
  Snapshot snap;
  for (const std::string& name : kCounterNames) {
    if (rng.bernoulli(0.6)) {
      snap.counters.push_back({name, Kind::kSim, rng.uniform_int(0, 1'000'000)});
    }
  }
  for (const std::string& name : kGaugeNames) {
    if (rng.bernoulli(0.6)) {
      snap.gauges.push_back({name, Kind::kSim, rng.uniform_int(-100, 1'000)});
    }
  }
  for (const std::string& name : kHistNames) {
    if (!rng.bernoulli(0.6)) continue;
    Snapshot::HistogramValue h;
    h.name = name;
    h.kind = Kind::kSim;
    h.count = rng.uniform_int(0, 500);
    if (h.count > 0) {
      h.min = rng.uniform_int(0, 10);
      h.max = h.min + rng.uniform_int(0, 1'000);
      h.sum = static_cast<double>(h.count) * rng.uniform(1.0, 100.0);
      h.bins.resize(static_cast<std::size_t>(rng.uniform_int(1, 16)));
      std::int64_t left = h.count;
      for (std::size_t b = 0; b + 1 < h.bins.size() && left > 0; ++b) {
        h.bins[b] = rng.uniform_int(0, left);
        left -= h.bins[b];
      }
      h.bins.back() = left;
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void expect_equivalent(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    ASSERT_EQ(a.counters[i].name, b.counters[i].name);
    ASSERT_EQ(a.counters[i].kind, b.counters[i].kind);
    ASSERT_EQ(a.counters[i].value, b.counters[i].value) << a.counters[i].name;
  }
  ASSERT_EQ(a.gauges.size(), b.gauges.size());
  for (std::size_t i = 0; i < a.gauges.size(); ++i) {
    ASSERT_EQ(a.gauges[i].name, b.gauges[i].name);
    ASSERT_EQ(a.gauges[i].value, b.gauges[i].value) << a.gauges[i].name;
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    const auto& ha = a.histograms[i];
    const auto& hb = b.histograms[i];
    ASSERT_EQ(ha.name, hb.name);
    ASSERT_EQ(ha.count, hb.count) << ha.name;
    if (ha.count > 0) {
      ASSERT_EQ(ha.min, hb.min) << ha.name;
      ASSERT_EQ(ha.max, hb.max) << ha.name;
      ASSERT_NEAR(ha.sum, hb.sum, 1e-9 * std::max(1.0, std::abs(ha.sum))) << ha.name;
    }
    // Bin counts match up to trailing zeros (merge only grows as needed).
    const std::size_t bins = std::max(ha.bins.size(), hb.bins.size());
    for (std::size_t b = 0; b < bins; ++b) {
      const std::int64_t va = b < ha.bins.size() ? ha.bins[b] : 0;
      const std::int64_t vb = b < hb.bins.size() ? hb.bins[b] : 0;
      ASSERT_EQ(va, vb) << ha.name << " bin " << b;
    }
  }
}

TEST(SnapshotMergeLawsTest, MergeCommutes) {
  core::RngStream rng{301};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    const Snapshot a = random_snapshot(rng);
    const Snapshot b = random_snapshot(rng);
    Snapshot ab = a;
    ab.merge(b);
    Snapshot ba = b;
    ba.merge(a);
    expect_equivalent(ab, ba);
  }
}

TEST(SnapshotMergeLawsTest, MergeAssociates) {
  core::RngStream rng{302};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    const Snapshot a = random_snapshot(rng);
    const Snapshot b = random_snapshot(rng);
    const Snapshot d = random_snapshot(rng);
    Snapshot left = a;  // (a + b) + d
    left.merge(b);
    left.merge(d);
    Snapshot bd = b;  // a + (b + d)
    bd.merge(d);
    Snapshot right = a;
    right.merge(bd);
    expect_equivalent(left, right);
  }
}

TEST(SnapshotMergeLawsTest, EmptyIsIdentity) {
  core::RngStream rng{303};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    const Snapshot a = random_snapshot(rng);
    Snapshot left;  // empty + a
    left.merge(a);
    Snapshot right = a;  // a + empty
    right.merge(Snapshot{});
    expect_equivalent(left, a);
    expect_equivalent(right, a);
  }
}

TEST(SnapshotMergeLawsTest, DisjointNamesUnionAndStaySorted) {
  Snapshot a;
  a.counters.push_back({"alpha", Kind::kSim, 1});
  a.counters.push_back({"gamma", Kind::kSim, 3});
  Snapshot b;
  b.counters.push_back({"beta", Kind::kWall, 2});
  b.counters.push_back({"delta", Kind::kSim, 4});
  a.merge(b);
  ASSERT_EQ(a.counters.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      a.counters.begin(), a.counters.end(),
      [](const auto& x, const auto& y) { return x.name < y.name; }));
  EXPECT_EQ(a.counter("beta")->value, 2);
  EXPECT_EQ(a.counter("beta")->kind, Kind::kWall);
  EXPECT_EQ(a.counter("gamma")->value, 3);
}

TEST(SnapshotMergeLawsTest, CountersSumAndGaugesTakeMax) {
  Snapshot a;
  a.counters.push_back({"events", Kind::kSim, 40});
  a.gauges.push_back({"depth", Kind::kSim, 7});
  Snapshot b;
  b.counters.push_back({"events", Kind::kSim, 2});
  b.gauges.push_back({"depth", Kind::kSim, 3});
  a.merge(b);
  EXPECT_EQ(a.counter("events")->value, 42);
  EXPECT_EQ(a.gauge("depth")->value, 7);  // max, not sum
}

TEST(SnapshotMergeLawsTest, EmptyHistogramSideKeepsPopulatedStats) {
  Snapshot a;
  Snapshot::HistogramValue empty;
  empty.name = "lat";
  a.histograms.push_back(empty);
  Snapshot b;
  Snapshot::HistogramValue full;
  full.name = "lat";
  full.count = 5;
  full.min = 2;
  full.max = 9;
  full.sum = 25.0;
  full.bins = {1, 4};
  b.histograms.push_back(full);
  a.merge(b);
  const auto* h = a.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5);
  EXPECT_EQ(h->min, 2);  // not the empty side's sentinel zero
  EXPECT_EQ(h->max, 9);
  EXPECT_DOUBLE_EQ(h->sum, 25.0);
}

TEST(SnapshotMergeLawsTest, MismatchedKindsThrow) {
  Snapshot a;
  a.counters.push_back({"events", Kind::kSim, 1});
  Snapshot b;
  b.counters.push_back({"events", Kind::kWall, 1});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace fbdcsim::telemetry
