// Concurrency semantics of the sharded metric primitives. These tests run
// in the Debug+TSan CI job alongside the runtime/ suite: the sharded cells
// and merge-on-snapshot discipline must be provably race-free, not just
// numerically right.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "fbdcsim/telemetry/telemetry.h"

namespace fbdcsim::telemetry {
namespace {

class EnabledGuard {
 public:
  EnabledGuard() : was_{Telemetry::enabled()} {}
  ~EnabledGuard() { Telemetry::set_enabled(was_); }

 private:
  bool was_;
};

TEST(TelemetryConcurrencyTest, ConcurrentCounterAddsLoseNothing) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c", Kind::kSim);
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::int64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(TelemetryConcurrencyTest, ConcurrentHistogramObservesSumExactly) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", Kind::kWall);
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) h.observe(t + 1);
    });
  }
  for (auto& t : threads) t.join();
  const Snapshot snap = reg.snapshot();
  const auto* hv = snap.histogram("h");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(hv->sum, static_cast<double>(kPerThread) * (1 + 2 + 3 + 4));
  EXPECT_EQ(hv->min, 1);
  EXPECT_EQ(hv->max, kThreads);
}

TEST(TelemetryConcurrencyTest, SnapshotDuringMutationIsRaceFree) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c", Kind::kSim);
  Gauge& g = reg.gauge("g", Kind::kWall);
  Histogram& h = reg.histogram("h", Kind::kWall);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (std::int64_t i = 0; i < 20'000; ++i) {
        c.add();
        g.update_max(i);
        h.observe(i & 1023);
      }
    });
  }
  std::int64_t last_seen = 0;
  for (int i = 0; i < 50; ++i) {
    const Snapshot snap = reg.snapshot();
    const std::int64_t now = snap.counter("c")->value;
    EXPECT_GE(now, last_seen);  // counters only grow
    last_seen = now;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(reg.snapshot().counter("c")->value, 4 * 20'000);
}

TEST(TelemetryConcurrencyTest, RegistrationRacesResolveToOneHandle) {
  MetricsRegistry reg;
  std::vector<Counter*> handles(8, nullptr);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < handles.size(); ++t) {
    threads.emplace_back([&reg, &handles, t] {
      handles[t] = &reg.counter("shared", Kind::kSim);
      handles[t]->add();
    });
  }
  for (auto& t : threads) t.join();
  for (const Counter* h : handles) EXPECT_EQ(h, handles[0]);
  EXPECT_EQ(handles[0]->value(), 8);
}

TEST(TelemetryConcurrencyTest, SpansOnManyThreadsAllRecord) {
  const EnabledGuard guard;
  Telemetry::set_enabled(true);
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan outer{"outer", tracer};
        TraceSpan inner{"inner", tracer};
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  // Depth bookkeeping is per thread: every event is depth 0 or 1, never
  // contaminated by a sibling thread.
  for (const TraceEvent& e : events) EXPECT_LE(e.depth, 1u);
}

}  // namespace
}  // namespace fbdcsim::telemetry
