// End-to-end integration tests: the paper's headline findings must emerge
// from the full pipeline (service models -> rack switch -> port mirror ->
// analysis), at reduced scale so the suite stays fast. Each test is one row
// of Table 1 or one §4-§6 claim, with loose tolerances — these lock in
// *shapes*, not golden numbers.
#include <gtest/gtest.h>

#include "fbdcsim/analysis/concurrency.h"
#include "fbdcsim/analysis/heavy_hitters.h"
#include "fbdcsim/analysis/locality.h"
#include "fbdcsim/analysis/packet_stats.h"
#include "fbdcsim/monitoring/fbflow.h"
#include "fbdcsim/topology/standard_fleet.h"
#include "fbdcsim/workload/baseline.h"
#include "fbdcsim/workload/fleet_flows.h"
#include "fbdcsim/workload/presets.h"

namespace fbdcsim {
namespace {

using core::Duration;
using core::HostRole;
using core::Locality;

/// Shared scaled-down fixture: one fleet, one capture per role, reused by
/// every test in the suite.
class PaperFindingsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topology::StandardFleetConfig cfg;
    cfg.sites = 2;
    cfg.datacenters_per_site = 1;
    cfg.frontend_clusters = 1;
    cfg.cache_clusters = 1;
    cfg.hadoop_clusters = 1;
    cfg.database_clusters = 1;
    cfg.service_clusters = 1;
    cfg.racks_per_cluster = 48;
    cfg.hosts_per_rack = 8;
    cfg.frontend_web_racks = 36;
    cfg.frontend_cache_racks = 9;
    cfg.frontend_multifeed_racks = 2;
    fleet_ = new topology::Fleet{topology::build_standard_fleet(cfg)};
    resolver_ = new analysis::AddrResolver{*fleet_};
  }

  static void TearDownTestSuite() {
    delete resolver_;
    delete fleet_;
    resolver_ = nullptr;
    fleet_ = nullptr;
  }

  static workload::RackSimResult capture(HostRole role, double seconds,
                                         bool pooling = true) {
    workload::RackSimConfig cfg = workload::default_rack_config(
        *fleet_, role, Duration::from_seconds(seconds));
    cfg.warmup = Duration::millis(500);
    cfg.background_rate_scale = 0.05;
    // Reduced rates keep the suite quick; ratios preserved. Hadoop phases
    // are shortened so short captures see both phases.
    cfg.mix.cache_follower.gets_served_per_sec = 20'000.0;
    cfg.mix.cache_leader.coherency_msgs_per_sec = 10'000.0;
    cfg.mix.web.user_requests_per_sec = 120.0;
    cfg.mix.hadoop.quiet_period_mean = Duration::millis(600);
    cfg.mix.hadoop.busy_period_mean = Duration::seconds(3);
    cfg.mix.connection_pooling_enabled = pooling;
    workload::RackSimulation sim{*fleet_, cfg};
    return sim.run();
  }

  static core::Ipv4Addr addr_of(HostRole role) {
    return fleet_->host(workload::monitored_host(*fleet_, role)).addr;
  }

  static topology::Fleet* fleet_;
  static analysis::AddrResolver* resolver_;
};

topology::Fleet* PaperFindingsTest::fleet_ = nullptr;
analysis::AddrResolver* PaperFindingsTest::resolver_ = nullptr;

// Table 1 row 1 / §4: traffic is neither rack-local nor all-to-all.
TEST_F(PaperFindingsTest, FrontendTrafficIsNeitherRackLocalNorAllToAll) {
  const auto result = capture(HostRole::kCacheFollower, 3.0);
  const auto shares =
      analysis::locality_shares(result.trace, addr_of(HostRole::kCacheFollower), *resolver_);
  // Not rack-local (literature: 50-80% rack-local).
  EXPECT_LT(shares[static_cast<int>(Locality::kIntraRack)], 5.0);
  // Not all-to-all either: the cluster dominates.
  EXPECT_GT(shares[static_cast<int>(Locality::kIntraCluster)], 50.0);
}

TEST_F(PaperFindingsTest, HadoopIsRackAndClusterLocal) {
  const auto result = capture(HostRole::kHadoop, 3.0);
  const auto shares =
      analysis::locality_shares(result.trace, addr_of(HostRole::kHadoop), *resolver_);
  EXPECT_GT(shares[static_cast<int>(Locality::kIntraRack)], 40.0);
  EXPECT_GT(shares[static_cast<int>(Locality::kIntraRack)] +
                shares[static_cast<int>(Locality::kIntraCluster)],
            97.0);
}

TEST_F(PaperFindingsTest, CacheLeaderCrossesDatacenters) {
  const auto result = capture(HostRole::kCacheLeader, 3.0);
  const auto shares =
      analysis::locality_shares(result.trace, addr_of(HostRole::kCacheLeader), *resolver_);
  EXPECT_GT(shares[static_cast<int>(Locality::kIntraDatacenter)] +
                shares[static_cast<int>(Locality::kInterDatacenter)],
            60.0);
}

// Table 1 row 3 / §6.1: small packets outside Hadoop; Hadoop bimodal.
TEST_F(PaperFindingsTest, MedianPacketSmallForCache) {
  const auto result = capture(HostRole::kCacheFollower, 2.0);
  EXPECT_LT(analysis::packet_size_cdf(result.trace).median(), 300.0);
}

TEST_F(PaperFindingsTest, HadoopPacketsBimodal) {
  const auto result = capture(HostRole::kHadoop, 3.0);
  const auto cdf = analysis::packet_size_cdf(result.trace);
  // Both modes present and dominant.
  const double ack_frac = cdf.fraction_at_or_below(64.0);
  const double below_mtu = cdf.fraction_at_or_below(1500.0);
  EXPECT_GT(ack_frac, 0.15);
  EXPECT_GT(1.0 - below_mtu + ack_frac, 0.7);
}

// §6.2: arrivals are continuous, not ON/OFF — unlike the literature model.
TEST_F(PaperFindingsTest, ArrivalsAreNotOnOff) {
  const auto result = capture(HostRole::kHadoop, 3.0);
  const double fb_idle = analysis::idle_bin_fraction(result.trace, Duration::millis(15));
  EXPECT_LT(fb_idle, 0.10);

  workload::LiteratureWorkloadConfig lit_cfg;
  lit_cfg.off_period_median_ms = 20.0;  // clearly ON/OFF at the 15-ms scale
  const auto lit = workload::generate_literature_trace(
      *fleet_, workload::monitored_host(*fleet_, HostRole::kHadoop), Duration::seconds(3),
      lit_cfg);
  const double lit_idle = analysis::idle_bin_fraction(lit, Duration::millis(15));
  EXPECT_GT(lit_idle, 0.3);
  EXPECT_GT(lit_idle, 5.0 * fb_idle);
}

// §5.3 / Table 1 row 2: 5-tuple heavy hitters are unstable; rack-level
// aggregation is the only (moderately) stable one.
TEST_F(PaperFindingsTest, HeavyHitterStabilityGrowsWithAggregation) {
  const auto result = capture(HostRole::kCacheFollower, 3.0);
  const auto span = result.capture_end - result.capture_start;
  const core::Ipv4Addr self = addr_of(HostRole::kCacheFollower);

  auto median_persistence = [&](analysis::AggLevel level) {
    const auto binned = analysis::bin_outbound(result.trace, self, *resolver_, level,
                                               Duration::millis(100),
                                               result.capture_start, span);
    core::Cdf cdf;
    cdf.add_all(analysis::hh_persistence(binned));
    return cdf.median();
  };
  const double flow_p = median_persistence(analysis::AggLevel::kFlow);
  const double rack_p = median_persistence(analysis::AggLevel::kRack);
  EXPECT_LT(flow_p, 40.0);
  EXPECT_GT(rack_p, flow_p);
}

// §6.4: many concurrent destinations for cache; few for Hadoop.
TEST_F(PaperFindingsTest, ConcurrencyContrast) {
  const auto cache = capture(HostRole::kCacheFollower, 2.0);
  const auto cache_conc =
      analysis::concurrent_connections(cache.trace, addr_of(HostRole::kCacheFollower));
  EXPECT_GT(cache_conc.tuples.median(), 60.0);

  const auto hadoop = capture(HostRole::kHadoop, 2.0);
  const auto hadoop_conc =
      analysis::concurrent_connections(hadoop.trace, addr_of(HostRole::kHadoop));
  EXPECT_LT(hadoop_conc.tuples.median(), 50.0);
  EXPECT_GT(hadoop_conc.tuples.median(), 5.0);
}

// §5.1: connection pooling is why flows are long-lived; ablation inverts it.
TEST_F(PaperFindingsTest, PoolingMakesFlowsLongLived) {
  const core::Ipv4Addr self = addr_of(HostRole::kWeb);
  const auto pooled = capture(HostRole::kWeb, 2.0, /*pooling=*/true);
  const auto unpooled = capture(HostRole::kWeb, 2.0, /*pooling=*/false);

  auto syn_count = [&](const workload::RackSimResult& r) {
    std::int64_t syns = 0;
    for (const auto& pkt : r.trace) {
      if (pkt.tuple.src_ip == self && pkt.flags.syn && !pkt.flags.ack) ++syns;
    }
    return syns;
  };
  EXPECT_GT(syn_count(unpooled), 5 * syn_count(pooled));
}

// Table 2's structure: each service's bytes go where the paper says.
TEST_F(PaperFindingsTest, Table2Structure) {
  const auto web = capture(HostRole::kWeb, 2.0);
  const auto web_shares =
      analysis::outbound_role_shares(web.trace, addr_of(HostRole::kWeb), *resolver_);
  double cache_pct = 0;
  for (const auto& s : web_shares) {
    if (s.role == HostRole::kCacheFollower) cache_pct = s.percent;
  }
  EXPECT_GT(cache_pct, 45.0);  // paper: 63.1

  const auto hadoop = capture(HostRole::kHadoop, 2.0);
  const auto h_shares =
      analysis::outbound_role_shares(hadoop.trace, addr_of(HostRole::kHadoop), *resolver_);
  double hadoop_pct = 0;
  for (const auto& s : h_shares) {
    if (s.role == HostRole::kHadoop) hadoop_pct = s.percent;
  }
  EXPECT_GT(hadoop_pct, 99.0);  // paper: 99.8
}

// Fbflow end-to-end: fleet flows -> sampling -> Table 3's key orderings.
TEST_F(PaperFindingsTest, FbflowLocalityOrderings) {
  workload::FleetGenConfig cfg;
  cfg.horizon = Duration::hours(1);
  cfg.epoch = Duration::minutes(30);
  cfg.rate_scale = 0.01;  // shares are scale-free; bounds sample volume
  cfg.seed = 3;
  const workload::FleetFlowGenerator gen{*fleet_, cfg};
  monitoring::FbflowPipeline fbflow{*fleet_, 1'000, core::RngStream{8}};
  gen.generate([&](const core::FlowRecord& f) { fbflow.offer_flow(f); });
  ASSERT_GT(fbflow.scuba().size(), 1000u);

  const auto fe = fbflow.scuba()
                      .locality_bytes_for_cluster_type(*fleet_, topology::ClusterType::kFrontend,
                                                       1'000)
                      .percentages();
  EXPECT_GT(fe[static_cast<int>(Locality::kIntraCluster)], 60.0);
  EXPECT_LT(fe[static_cast<int>(Locality::kIntraRack)], 15.0);

  const auto cache = fbflow.scuba()
                         .locality_bytes_for_cluster_type(*fleet_, topology::ClusterType::kCache,
                                                          1'000)
                         .percentages();
  EXPECT_LT(cache[static_cast<int>(Locality::kIntraRack)], 5.0);
  EXPECT_GT(cache[static_cast<int>(Locality::kIntraDatacenter)] +
                cache[static_cast<int>(Locality::kInterDatacenter)],
            60.0);

  const auto hadoop = fbflow.scuba()
                          .locality_bytes_for_cluster_type(*fleet_,
                                                           topology::ClusterType::kHadoop, 1'000)
                          .percentages();
  EXPECT_GT(hadoop[static_cast<int>(Locality::kIntraRack)] +
                hadoop[static_cast<int>(Locality::kIntraCluster)],
            90.0);
}

// Capture-buffer failure injection: an undersized collection host loses
// packets and reports it (the paper sized pinned RAM to avoid this).
TEST_F(PaperFindingsTest, UndersizedCaptureHostReportsLoss) {
  workload::RackSimConfig cfg = workload::default_rack_config(
      *fleet_, HostRole::kCacheFollower, Duration::seconds(1));
  cfg.warmup = Duration::millis(200);
  cfg.background_rate_scale = 0.05;
  cfg.mix.cache_follower.gets_served_per_sec = 20'000.0;
  cfg.capture_memory_bytes = 1000 * monitoring::CaptureBuffer::kRecordBytes;
  workload::RackSimulation sim{*fleet_, cfg};
  const auto result = sim.run();
  EXPECT_EQ(result.trace.size(), 1000u);
  EXPECT_GT(result.capture_dropped, 0);
}

}  // namespace
}  // namespace fbdcsim
