// Edge-case and failure-injection tests that cut across modules.
#include <gtest/gtest.h>

#include "fbdcsim/analysis/concurrency.h"
#include "fbdcsim/analysis/heavy_hitters.h"
#include "fbdcsim/analysis/locality.h"
#include "fbdcsim/analysis/packet_stats.h"
#include "fbdcsim/analysis/te_eval.h"
#include "fbdcsim/topology/standard_fleet.h"
#include "fbdcsim/workload/fleet_flows.h"
#include "fbdcsim/workload/presets.h"

namespace fbdcsim {
namespace {

using core::Duration;
using core::HostRole;

topology::Fleet tiny_fleet() {
  topology::StandardFleetConfig cfg;
  cfg.sites = 1;
  cfg.datacenters_per_site = 1;
  cfg.frontend_clusters = 1;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 1;
  cfg.database_clusters = 1;
  cfg.service_clusters = 1;
  cfg.racks_per_cluster = 4;
  cfg.hosts_per_rack = 2;
  cfg.frontend_web_racks = 2;
  cfg.frontend_cache_racks = 1;
  cfg.frontend_multifeed_racks = 1;
  return topology::build_standard_fleet(cfg);
}

// Analyses over empty traces must be safe no-ops, not crashes.
TEST(EmptyTraceTest, AllAnalysesHandleEmptyInput) {
  const topology::Fleet fleet = tiny_fleet();
  const analysis::AddrResolver resolver{fleet};
  const core::Ipv4Addr self = fleet.hosts()[0].addr;
  const std::span<const core::PacketHeader> empty;

  EXPECT_TRUE(analysis::FlowTable::outbound_flows(empty, self).empty());
  EXPECT_TRUE(analysis::locality_timeseries(empty, self, resolver).empty());
  const auto shares = analysis::locality_shares(empty, self, resolver);
  for (const double s : shares) EXPECT_DOUBLE_EQ(s, 0.0);
  EXPECT_TRUE(analysis::packet_size_cdf(empty).empty());
  EXPECT_TRUE(analysis::syn_interarrival_cdf(empty, self).empty());
  EXPECT_TRUE(analysis::arrival_counts(empty, Duration::millis(15)).empty());
  EXPECT_TRUE(analysis::concurrent_racks(empty, self, resolver).all.empty());
  const auto rates = analysis::per_rack_second_rates(empty, self, resolver,
                                                     core::TimePoint::zero(),
                                                     Duration::seconds(1));
  EXPECT_TRUE(rates.rack_keys.empty());
  const auto te = analysis::evaluate_reactive_te(empty, self, resolver,
                                                 analysis::AggLevel::kRack,
                                                 Duration::millis(100),
                                                 core::TimePoint::zero(), Duration::seconds(1));
  EXPECT_EQ(te.intervals, 0);
}

// A single-site fleet has no inter-datacenter destinations: models that
// want remote peers must degrade gracefully, not crash or spin.
TEST(DegenerateFleetTest, SingleSiteFleetStillSimulates) {
  const topology::Fleet fleet = tiny_fleet();
  workload::RackSimConfig cfg = workload::default_rack_config(
      fleet, HostRole::kCacheLeader, Duration::millis(500));
  cfg.warmup = Duration::millis(100);
  cfg.mix.cache_leader.coherency_msgs_per_sec = 2'000.0;
  workload::RackSimulation sim{fleet, cfg};
  const auto result = sim.run();
  EXPECT_GT(result.trace.size(), 50u);
  // No inter-DC bytes can exist.
  const analysis::AddrResolver resolver{fleet};
  const auto shares = analysis::locality_shares(
      result.trace, fleet.host(cfg.monitored_host).addr, resolver);
  EXPECT_DOUBLE_EQ(shares[static_cast<int>(core::Locality::kInterDatacenter)], 0.0);
}

// A one-host rack: no rack-local peers at all.
TEST(DegenerateFleetTest, SingleHostRacks) {
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 1;
  cfg.racks_per_cluster = 3;
  cfg.hosts_per_rack = 1;
  cfg.frontend_web_racks = 1;
  cfg.frontend_cache_racks = 1;
  cfg.frontend_multifeed_racks = 1;
  const topology::Fleet fleet = topology::build_standard_fleet(cfg);

  workload::RackSimConfig rack_cfg = workload::default_rack_config(
      fleet, HostRole::kHadoop, Duration::millis(500));
  rack_cfg.warmup = Duration::millis(100);
  workload::RackSimulation sim{fleet, rack_cfg};
  const auto result = sim.run();
  const analysis::AddrResolver resolver{fleet};
  const auto shares = analysis::locality_shares(
      result.trace, fleet.host(rack_cfg.monitored_host).addr, resolver);
  EXPECT_DOUBLE_EQ(shares[static_cast<int>(core::Locality::kIntraRack)], 0.0);
}

// Fleet generation over a horizon shorter than one epoch still works.
TEST(FleetFlowsEdgeTest, SubEpochHorizon) {
  const topology::Fleet fleet = tiny_fleet();
  workload::FleetGenConfig cfg;
  cfg.horizon = Duration::minutes(10);
  cfg.epoch = Duration::minutes(30);  // horizon < epoch: zero epochs
  const workload::FleetFlowGenerator gen{fleet, cfg};
  std::int64_t flows = 0;
  gen.generate([&](const core::FlowRecord&) { ++flows; });
  EXPECT_EQ(flows, 0);
}

// Flow records never escape the configured horizon.
TEST(FleetFlowsEdgeTest, FlowsStayInsideHorizon) {
  const topology::Fleet fleet = tiny_fleet();
  workload::FleetGenConfig cfg;
  cfg.horizon = Duration::hours(1);
  cfg.epoch = Duration::minutes(20);
  const workload::FleetFlowGenerator gen{fleet, cfg};
  gen.generate([&](const core::FlowRecord& f) {
    EXPECT_GE(f.start.count_nanos(), 0);
    EXPECT_LE(f.end().count_nanos(), cfg.horizon.count_nanos());
  });
}

// Zero-length captures produce empty but well-formed results.
TEST(RackSimEdgeTest, ZeroLengthCapture) {
  const topology::Fleet fleet = tiny_fleet();
  workload::RackSimConfig cfg =
      workload::default_rack_config(fleet, HostRole::kWeb, Duration{});
  cfg.warmup = Duration::millis(100);
  workload::RackSimulation sim{fleet, cfg};
  const auto result = sim.run();
  EXPECT_TRUE(result.trace.empty());
  EXPECT_EQ(result.capture_start, result.capture_end);
}

// Heavy-hitter helpers tolerate bins full of zero-byte entries.
TEST(HeavyHitterEdgeTest, ZeroByteBins) {
  std::unordered_map<std::uint64_t, double> bin{{1, 0.0}, {2, 0.0}};
  const auto hh = analysis::heavy_hitters_of(bin);
  EXPECT_TRUE(hh.empty());  // zero total: nothing covers anything
}

}  // namespace
}  // namespace fbdcsim
