// Property-style invariant sweeps across modules (parameterized gtest).
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "fbdcsim/analysis/heavy_hitters.h"
#include "fbdcsim/monitoring/fbflow.h"
#include "fbdcsim/services/connections.h"
#include "fbdcsim/switching/switch.h"
#include "fbdcsim/topology/fabric.h"
#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim {
namespace {

using core::DataSize;
using core::Duration;
using core::TimePoint;

// ---------------------------------------------------------------------------
// Switch conservation: every enqueued byte is transmitted, dropped, or
// still queued — under randomized arrivals, rates, and buffer configs.
// ---------------------------------------------------------------------------

struct SwitchSweepParam {
  std::uint64_t seed;
  std::int64_t buffer_bytes;
  double alpha;
  int ports;
};

class SwitchConservationSweep : public ::testing::TestWithParam<SwitchSweepParam> {};

TEST_P(SwitchConservationSweep, BytesConserved) {
  const SwitchSweepParam param = GetParam();
  core::RngStream rng{param.seed};
  sim::Simulator sim;
  switching::SwitchConfig cfg;
  cfg.num_ports = static_cast<std::size_t>(param.ports);
  cfg.buffer_total = DataSize::bytes(param.buffer_bytes);
  cfg.dt_alpha = param.alpha;
  cfg.port_rate = core::DataRate::gigabits_per_sec(1);

  std::int64_t delivered_bytes = 0;
  std::int64_t delivered_packets = 0;
  switching::SharedBufferSwitch sw{
      sim, cfg, [&](std::size_t, const switching::SimPacket& pkt) {
        delivered_bytes += pkt.header.frame_bytes;
        ++delivered_packets;
      }};

  std::int64_t offered_bytes = 0;
  std::int64_t accepted_bytes = 0;
  const int kPackets = 3000;
  for (int i = 0; i < kPackets; ++i) {
    switching::SimPacket pkt;
    pkt.header.frame_bytes = rng.uniform_int(64, 1514);
    offered_bytes += pkt.header.frame_bytes;
    const auto port = static_cast<std::size_t>(rng.uniform_int(0, param.ports - 1));
    if (sw.enqueue(port, pkt)) accepted_bytes += pkt.header.frame_bytes;
    // Randomly advance time so queues partially drain.
    if (rng.bernoulli(0.3)) {
      sim.run_until(sim.now() + Duration::micros(rng.uniform_int(1, 50)));
    }
  }
  sim.run();  // drain everything

  std::int64_t dropped_bytes = 0;
  std::int64_t enqueued_packets = 0;
  std::int64_t dropped_packets = 0;
  std::int64_t tx_packets = 0;
  for (std::size_t p = 0; p < sw.num_ports(); ++p) {
    dropped_bytes += sw.counters(p).dropped_bytes;
    dropped_packets += sw.counters(p).dropped_packets;
    enqueued_packets += sw.counters(p).enqueued_packets;
    tx_packets += sw.counters(p).tx_packets;
  }
  EXPECT_EQ(delivered_bytes, accepted_bytes);
  EXPECT_EQ(accepted_bytes + dropped_bytes, offered_bytes);
  EXPECT_EQ(enqueued_packets, tx_packets);
  EXPECT_EQ(enqueued_packets + dropped_packets, kPackets);
  EXPECT_EQ(delivered_packets, tx_packets);
  EXPECT_EQ(sw.buffer_occupancy(), DataSize::bytes(0));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SwitchConservationSweep,
    ::testing::Values(SwitchSweepParam{1, 10'000, 1.0, 4},
                      SwitchSweepParam{2, 1'000'000, 2.0, 16},
                      SwitchSweepParam{3, 5'000, 0.1, 2},
                      SwitchSweepParam{4, 200'000, 8.0, 20},
                      SwitchSweepParam{5, 3'000, 1.0, 1}));

// ---------------------------------------------------------------------------
// Wire conservation: send/receive emit exactly the payload requested, for
// any payload size.
// ---------------------------------------------------------------------------

class WireConservationSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(WireConservationSweep, PayloadConserved) {
  const auto fleet = topology::build_single_cluster_fleet(topology::ClusterType::kHadoop, 2, 2);
  sim::Simulator sim;
  std::int64_t out_payload = 0;
  std::int64_t in_payload = 0;

  class Sink : public services::TrafficSink {
   public:
    Sink(std::int64_t& out, std::int64_t& in) : out_{out}, in_{in} {}
    void host_send(const services::SimPacket& pkt) override {
      out_ += pkt.header.payload_bytes;
    }
    void host_receive(const services::SimPacket& pkt) override {
      in_ += pkt.header.payload_bytes;
    }

   private:
    std::int64_t& out_;
    std::int64_t& in_;
  } sink{out_payload, in_payload};

  const core::HostId self = fleet.hosts()[0].id;
  const core::HostId peer = fleet.hosts()[3].id;
  services::ConnectionTable table{fleet, self};
  services::Wire wire{sim, sink, self};
  const services::Connection& conn = table.pooled(peer, 80);

  const std::int64_t payload = GetParam();
  wire.send(conn, DataSize::bytes(payload), TimePoint::zero(), Duration::micros(1), false);
  wire.receive(conn, DataSize::bytes(payload), TimePoint::zero(), Duration::micros(1), false);
  sim.run();
  EXPECT_EQ(out_payload, payload);
  EXPECT_EQ(in_payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WireConservationSweep,
                         ::testing::Values(1, 64, 1460, 1461, 2920, 10'000, 1'000'000));

// ---------------------------------------------------------------------------
// Analytic sampling is unbiased across sampling rates: the estimated byte
// volume (samples x rate x mean frame) tracks the true volume.
// ---------------------------------------------------------------------------

class SamplerUnbiasednessSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SamplerUnbiasednessSweep, VolumeEstimateUnbiased) {
  const auto fleet = topology::build_single_cluster_fleet(topology::ClusterType::kFrontend, 4, 4);
  const std::int64_t rate = GetParam();
  monitoring::FbflowPipeline pipeline{fleet, rate, core::RngStream{21}};

  const std::int64_t per_flow_payload = 1'000'000;
  const std::int64_t packets_per_flow = 1'000;  // 1000 B payload each
  const int flows = 600;
  double true_frame_bytes = 0;
  for (int i = 0; i < flows; ++i) {
    core::FlowRecord f;
    f.tuple = core::FiveTuple{fleet.hosts()[0].addr,
                              fleet.hosts()[static_cast<std::size_t>(1 + i % 15)].addr,
                              static_cast<core::Port>(40000 + i), 80, core::Protocol::kTcp};
    f.src_host = fleet.hosts()[0].id;
    f.dst_host = fleet.hosts()[static_cast<std::size_t>(1 + i % 15)].id;
    f.start = TimePoint::zero();
    f.duration = Duration::seconds(10);
    f.bytes = DataSize::bytes(per_flow_payload);
    f.packets = packets_per_flow;
    pipeline.offer_flow(f);
    true_frame_bytes += static_cast<double>(packets_per_flow) *
                        static_cast<double>(core::wire::tcp_frame_bytes(1000));
  }
  const double estimated = pipeline.scuba().locality_bytes(rate).total();
  // Relative error shrinks with sample count; allow 4 sigma.
  const double expected_samples =
      static_cast<double>(flows) * packets_per_flow / static_cast<double>(rate);
  const double rel_sigma = 1.0 / std::sqrt(expected_samples);
  EXPECT_NEAR(estimated / true_frame_bytes, 1.0, 4.0 * rel_sigma)
      << "rate 1:" << rate << " samples " << pipeline.scuba().size();
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplerUnbiasednessSweep,
                         ::testing::Values(10, 100, 1'000, 10'000));

// ---------------------------------------------------------------------------
// Heavy-hitter algebra: for any random bin, the selected set is minimal
// and covers >= the requested fraction.
// ---------------------------------------------------------------------------

class HeavyHitterPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeavyHitterPropertySweep, MinimalCoverage) {
  core::RngStream rng{GetParam()};
  std::unordered_map<std::uint64_t, double> bin;
  const int keys = static_cast<int>(rng.uniform_int(1, 400));
  double total = 0;
  for (int k = 0; k < keys; ++k) {
    const double v = rng.exponential(1.0) * rng.uniform(1.0, 100.0);
    bin[static_cast<std::uint64_t>(k)] = v;
    total += v;
  }
  const auto hh = analysis::heavy_hitters_of(bin, 0.5);
  double covered = 0;
  double smallest_selected = 1e300;
  for (const auto key : hh) {
    covered += bin.at(key);
    smallest_selected = std::min(smallest_selected, bin.at(key));
  }
  EXPECT_GE(covered, 0.5 * total * (1 - 1e-12));
  // Minimality: dropping the smallest selected key must fall below 50%.
  EXPECT_LT(covered - smallest_selected, 0.5 * total);
  // No unselected key is strictly bigger than a selected one.
  double biggest_unselected = 0;
  const std::unordered_set<std::uint64_t> selected{hh.begin(), hh.end()};
  for (const auto& [key, v] : bin) {
    if (!selected.contains(key)) biggest_unselected = std::max(biggest_unselected, v);
  }
  EXPECT_GE(smallest_selected, biggest_unselected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeavyHitterPropertySweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Router validity across topologies: every (src, dst) pair yields a
// contiguous path from src's NIC to dst's NIC, on both 4-post and Fabric.
// ---------------------------------------------------------------------------

class RouterValiditySweep : public ::testing::TestWithParam<bool> {};

TEST_P(RouterValiditySweep, RandomPairsAreRoutable) {
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 2;
  cfg.racks_per_cluster = 4;
  cfg.hosts_per_rack = 2;
  cfg.frontend_web_racks = 2;
  cfg.frontend_cache_racks = 1;
  cfg.frontend_multifeed_racks = 1;
  const auto fleet = topology::build_standard_fleet(cfg);
  const topology::Network net = GetParam() ? topology::FabricBuilder{}.build(fleet)
                                           : topology::FourPostBuilder{}.build(fleet);
  const topology::Router router{fleet, net};

  core::RngStream rng{5};
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(fleet.num_hosts()) - 1));
    const auto b = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(fleet.num_hosts()) - 1));
    if (a == b) continue;
    const core::FiveTuple tuple{fleet.host(core::HostId{a}).addr,
                                fleet.host(core::HostId{b}).addr,
                                static_cast<core::Port>(30000 + i), 80, core::Protocol::kTcp};
    const auto path = router.route(core::HostId{a}, core::HostId{b}, tuple);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(net.link(path.front()).from, topology::NodeRef::host(core::HostId{a}));
    EXPECT_EQ(net.link(path.back()).to, topology::NodeRef::host(core::HostId{b}));
    for (std::size_t h = 1; h < path.size(); ++h) {
      EXPECT_EQ(net.link(path[h - 1]).to, net.link(path[h]).from);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, RouterValiditySweep, ::testing::Bool());

}  // namespace
}  // namespace fbdcsim
