# Golden comparison for the anchor scorecard's deterministic metrics.
#
# Runs bench_anchor_scorecard with pinned knobs (1-second captures,
# telemetry on, faults off) and compares the "sim" metric section of its
# JSON report byte-for-byte against the committed golden file. Sim-kind
# metrics are defined to be bit-identical across thread counts and runs
# (DESIGN.md §7), so any diff here is a real behavior change — wall-kind
# metrics (timings, pool width) are excluded by construction.
#
# Invoked by the golden_scorecard_sim_metrics ctest; expects -DBENCH,
# -DGOLDEN, and -DOUT_DIR.

file(MAKE_DIRECTORY "${OUT_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
    FBDCSIM_BENCH_SECONDS=1
    FBDCSIM_TELEMETRY=1
    FBDCSIM_FAULTS=off
    --unset=FBDCSIM_THREADS
    "FBDCSIM_BENCH_OUT=${OUT_DIR}/"
    "${BENCH}"
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
# The scorecard's exit code counts failed anchors; 1-second captures are too
# short for every anchor band, so the code is informational here — the JSON
# report is what this test gates on.
message(STATUS "scorecard exited ${bench_rc} (informational at 1 s)")

set(report_path "${OUT_DIR}/bench_anchor_scorecard.json")
if(NOT EXISTS "${report_path}")
  message(FATAL_ERROR "scorecard wrote no report at ${report_path}\n"
    "stdout:\n${bench_out}\nstderr:\n${bench_err}")
endif()
file(READ "${report_path}" report)

string(FIND "${report}" "\"sim\":" sim_start)
string(FIND "${report}" ",\"wall\":" wall_start)
if(sim_start EQUAL -1 OR wall_start EQUAL -1)
  message(FATAL_ERROR "report JSON has no sim/wall metric sections:\n${report}")
endif()
math(EXPR sim_len "${wall_start} - ${sim_start}")
string(SUBSTRING "${report}" ${sim_start} ${sim_len} sim_json)

if(sim_json STREQUAL "\"sim\":{\"counters\":{},\"gauges\":{},\"histograms\":{}}")
  # FBDCSIM_TELEMETRY=OFF builds compile the instrumentation out entirely;
  # there is nothing to compare, and failing would make that configuration
  # untestable.
  message(STATUS "telemetry compiled out; skipping golden comparison")
  return()
endif()

file(READ "${GOLDEN}" golden)
string(STRIP "${golden}" golden)
if(NOT sim_json STREQUAL golden)
  message(FATAL_ERROR
    "scorecard sim metrics diverge from the committed golden.\n"
    "If the change is intentional, regenerate per tests/golden/README.md.\n"
    "---- measured ----\n${sim_json}\n"
    "---- golden ----\n${golden}")
endif()
message(STATUS "scorecard sim metrics match golden (${sim_len} bytes)")
