// Golden generator for the scripted-transport differential gate.
//
// Prints one line per (role, faults) preset: the order-sensitive
// fingerprint of a default-config rack capture (the same presets the
// engine-differential harness runs). The committed golden
// (tests/golden/transport_scripted.golden.txt) was produced by this tool
// on the tree BEFORE the transport/ subsystem landed; the
// TransportScriptedGolden test re-runs the presets with
// RackSimConfig::transport = kScripted and compares, proving the opt-in
// TCP path leaves the scripted path byte-identical to pre-transport
// output. Regenerate (only when a PR deliberately changes scripted
// output) with:
//
//   cmake --build build --target gen_transport_scripted
//   ./build/tests/gen_transport_scripted > tests/golden/transport_scripted.golden.txt
//
// With `--tcp` the same presets run with RackSimConfig::transport = kTcp
// (default TcpParams, i.e. cc = kNewReno), producing the golden for the
// flow-level default path:
//
//   ./build/tests/gen_transport_scripted --tcp > tests/golden/transport_newreno.golden.txt
//
// That file was generated on the tree BEFORE the DCTCP/ECN + topology-RTT
// variant landed; DctcpGolden.NewRenoDefaultMatchesPrePrOutput re-runs the
// presets and compares, proving the kNewReno default stayed byte-identical.
// tests/golden/transport_recovery_newreno.golden.txt is the same presets
// generated on the tree BEFORE the SACK recovery variant landed (it equals
// transport_newreno.golden.txt by construction); SackGolden re-runs them
// with TcpParams::recovery = kNewReno explicit and compares.
//
// With `--sack` the kTcp presets run with TcpParams::recovery = kSack —
// handy for eyeballing the variant's fingerprints; no golden commits this
// output (the SACK differential pins bit-identity across engines and
// thread counts instead).
#include <cstdio>
#include <cstring>

#include "../support/rack_fingerprint.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/workload/presets.h"

using namespace fbdcsim;

int main(int argc, char** argv) {
  const bool sack = argc > 1 && std::strcmp(argv[1], "--sack") == 0;
  const bool tcp = sack || (argc > 1 && std::strcmp(argv[1], "--tcp") == 0);
  const core::HostRole kRoles[] = {core::HostRole::kWeb, core::HostRole::kCacheFollower,
                                   core::HostRole::kCacheLeader, core::HostRole::kHadoop};
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  const faults::FaultPlan heavy{faults::heavy_profile()};
  for (const core::HostRole role : kRoles) {
    for (const bool faulted : {false, true}) {
      workload::RackSimConfig cfg =
          workload::default_rack_config(fleet, role, core::Duration::millis(300));
      cfg.warmup = core::Duration::millis(100);
      cfg.sample_buffer = true;
      if (tcp) cfg.transport = workload::Transport::kTcp;
      if (sack) cfg.tcp.recovery = transport::LossRecovery::kSack;
      if (faulted) cfg.faults = &heavy;
      workload::RackSimulation rack{fleet, cfg};
      const workload::RackSimResult result = rack.run();
      std::printf("%s %s %016llx %zu %llu\n", core::to_string(role),
                  faulted ? "heavy" : "off",
                  static_cast<unsigned long long>(tests::fingerprint(result)),
                  result.trace.size(), static_cast<unsigned long long>(result.events));
    }
  }
  return 0;
}
