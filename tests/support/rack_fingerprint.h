// Shared order-sensitive fingerprints of rack-simulation output, used by
// the engine-differential harness, the transport differential tests, and
// the scripted-path golden generator. A fingerprint covers everything a
// run produces: the packet trace (timestamps, tuples, sizes, flags),
// buffer-occupancy seconds, aggregated port counters, capture-loss
// counters, and the executed-event count — so two runs with equal
// fingerprints are bit-identical for every analysis downstream.
#pragma once

#include <cstdint>
#include <string>

#include "fbdcsim/telemetry/export.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/workload/rack_sim.h"

namespace fbdcsim::tests {

inline std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Order-sensitive fingerprint of everything a rack run produces.
inline std::uint64_t fingerprint(const workload::RackSimResult& r) {
  std::uint64_t h = 0;
  for (const core::PacketHeader& p : r.trace) {
    h = mix64(h, static_cast<std::uint64_t>(p.timestamp.count_nanos()));
    h = mix64(h, p.tuple.src_ip.value());
    h = mix64(h, p.tuple.dst_ip.value());
    h = mix64(h, (static_cast<std::uint64_t>(p.tuple.src_port) << 16) | p.tuple.dst_port);
    h = mix64(h, static_cast<std::uint64_t>(p.tuple.protocol));
    h = mix64(h, static_cast<std::uint64_t>(p.frame_bytes));
    h = mix64(h, static_cast<std::uint64_t>(p.payload_bytes));
    // ece (bit 5) is zero on every scripted/NewReno path, so including it
    // leaves the pre-DCTCP goldens untouched while letting the DCTCP
    // differential catch echo-path divergence.
    h = mix64(h, static_cast<std::uint64_t>(p.flags.syn) |
                     (static_cast<std::uint64_t>(p.flags.ack) << 1) |
                     (static_cast<std::uint64_t>(p.flags.fin) << 2) |
                     (static_cast<std::uint64_t>(p.flags.rst) << 3) |
                     (static_cast<std::uint64_t>(p.flags.psh) << 4) |
                     (static_cast<std::uint64_t>(p.flags.ece) << 5));
  }
  for (const auto& s : r.buffer_seconds) {
    h = mix64(h, static_cast<std::uint64_t>(s.second));
    h = mix64(h, static_cast<std::uint64_t>(s.median_fraction * 1e12));
    h = mix64(h, static_cast<std::uint64_t>(s.max_fraction * 1e12));
  }
  for (const switching::PortCounters& c : {r.uplink, r.downlinks}) {
    h = mix64(h, static_cast<std::uint64_t>(c.tx_packets));
    h = mix64(h, static_cast<std::uint64_t>(c.tx_bytes));
    h = mix64(h, static_cast<std::uint64_t>(c.enqueued_packets));
    h = mix64(h, static_cast<std::uint64_t>(c.dropped_packets));
    h = mix64(h, static_cast<std::uint64_t>(c.dropped_bytes));
    h = mix64(h, static_cast<std::uint64_t>(c.queuing_delay_ns));
    h = mix64(h, static_cast<std::uint64_t>(c.max_queuing_delay_ns));
  }
  h = mix64(h, static_cast<std::uint64_t>(r.capture_dropped));
  h = mix64(h, static_cast<std::uint64_t>(r.capture_injected_dropped));
  h = mix64(h, r.events);
  return h;
}

/// The deterministic (Kind::kSim) section of the global metrics snapshot,
/// as the byte-stable JSON the golden gate uses.
inline std::string sim_metrics_json() {
  const std::string json =
      telemetry::to_json(telemetry::MetricsRegistry::global().snapshot());
  const std::size_t sim = json.find("\"sim\":");
  const std::size_t wall = json.find(",\"wall\":");
  if (sim == std::string::npos || wall == std::string::npos) return json;
  return json.substr(sim, wall - sim);
}

}  // namespace fbdcsim::tests
