// Deterministic scripted-loss harness for the flow-level TCP engine: a
// loopback TrafficSink (standing in for the RSW, like mux_test's) whose
// drop decisions come from a per-segment, per-attempt script instead of a
// modulo counter or a fault plan. Drops are SILENT — no on_dropped
// notification — so the sender learns about them exactly the way it would
// about fabric loss: dupacks, SACK blocks, or the retransmission timer.
// The loss-scenario conformance suite builds every scenario (single hole,
// spaced holes, tail loss, burst loss, lost retransmission) on top of this
// one fixture, once per LossRecovery law.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/services/traffic_model.h"
#include "fbdcsim/sim/simulator.h"
#include "fbdcsim/telemetry/flow_ledger.h"
#include "fbdcsim/topology/entities.h"
#include "fbdcsim/transport/mux.h"
#include "fbdcsim/transport/params.h"
#include "fbdcsim/workload/presets.h"

namespace fbdcsim::tests {

/// Drop decision for one transmission attempt of one data segment.
/// `segment` is the MSS-aligned index (seq / mss); `attempt` counts
/// transmissions of that same seq, 1-based (attempt 1 is the original).
using ScriptedDrop = std::function<bool(std::int64_t segment, int attempt)>;

/// Loopback sink with scripted silent loss on the host's outbound data
/// frames (the app_send direction). ACKs and inbound frames are never
/// dropped: the scenarios script the data path and leave the feedback
/// channel clean so recovery-time bounds are exact.
class ScriptedLossSink final : public services::TrafficSink {
 public:
  void host_send(const core::SimPacket& packet) override { route(packet, true); }
  void host_receive(const core::SimPacket& packet) override { route(packet, false); }

  sim::Simulator* sim{nullptr};
  transport::TransportMux* mux{nullptr};
  core::Duration wire_delay = core::Duration::micros(1);
  std::int64_t mss{0};
  ScriptedDrop drop;
  std::int64_t target_bytes{0};  // completion is when delivery reaches this
  /// Optional flow ledger: scripted drops stay silent toward the mux but
  /// are recorded as FlowDropCause::kScripted, so the attribution tests can
  /// pin a known drop to the retransmission that repairs it.
  telemetry::FlowLedger* ledger{nullptr};

  std::int64_t dropped_frames{0};
  std::int64_t data_frames{0};
  core::TimePoint completion;  // zero until target_bytes delivered
  bool completed{false};

 private:
  void route(const core::SimPacket& packet, bool outbound) {
    if (outbound && packet.header.payload_bytes > 0) {
      ++data_frames;
      const int attempt = ++attempts_[packet.seq];
      if (drop && drop(packet.seq / mss, attempt)) {
        ++dropped_frames;
        if (ledger != nullptr) {
          ledger->on_drop(packet.flow_tag, sim->now().count_nanos(), /*dir=*/0,
                          packet.seq, packet.header.payload_bytes,
                          telemetry::FlowDropCause::kScripted, /*switch_id=*/0,
                          /*port=*/-1, /*fault_epoch=*/-1);
        }
        return;  // silent: the sender only finds out via ACKs or the RTO
      }
    }
    const core::SimPacket copy = packet;
    sim->schedule_after(wire_delay, [this, copy] {
      mux->on_delivered(copy);
      if (!completed && target_bytes > 0 &&
          mux->stats().bytes_delivered >= target_bytes) {
        completed = true;
        completion = sim->now();
      }
    });
  }

  std::unordered_map<std::int64_t, int> attempts_;
};

struct ScenarioOutcome {
  transport::TransportMux::Stats stats;
  core::Duration completion;  // app-send start -> last byte delivered
  std::int64_t dropped_frames{0};
  bool completed{false};
};

/// Runs one scripted-loss scenario: `segments` MSS-sized segments pushed at
/// t0 over an intra-rack connection (reply_delay = stack turnaround only,
/// so RTT is microseconds and min_rto = 200 ms dominates any timeout).
///
/// The congestion window is capped at `window_segments` (default 9): the
/// receiver's bounded reorder buffer holds kMaxOooRanges = 8 out-of-order
/// SEGMENTS (ranges are not coalesced on arrival), so keeping the flight
/// behind any hole within 8 segments means the sink's script is the ONLY
/// loss in the system and every retransmit count is exact. Wider windows
/// shed far-ahead segments at the receiver and turn scripted single-hole
/// runs into multi-loss recoveries.
inline ScenarioOutcome run_loss_scenario(transport::LossRecovery recovery,
                                         std::int64_t segments, ScriptedDrop drop,
                                         core::Duration horizon = core::Duration::seconds(10),
                                         int window_segments = 9,
                                         telemetry::FlowLedger* ledger = nullptr) {
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  sim::Simulator sim;
  ScriptedLossSink sink;
  transport::TcpParams params;
  params.recovery = recovery;
  params.max_cwnd = core::DataSize::bytes(window_segments * params.mss_bytes);
  params.initial_window_segments = window_segments;
  transport::TransportMux mux{sim, fleet, sink, params, /*faults=*/nullptr, /*seed=*/1};
  if (ledger != nullptr) mux.set_flow_ledger(ledger);
  sink.sim = &sim;
  sink.mux = &mux;
  sink.mss = params.mss_bytes;
  sink.drop = std::move(drop);
  sink.target_bytes = segments * params.mss_bytes;
  sink.ledger = ledger;

  const auto& hosts = fleet.rack(fleet.host(core::HostId{0}).rack).hosts;
  const core::HostId self = hosts[0];
  const core::HostId peer = hosts[1];
  const core::FiveTuple tuple{fleet.host(self).addr, fleet.host(peer).addr, 40'000,
                              11'211, core::Protocol::kTcp};
  const core::TimePoint t0 = core::TimePoint::zero() + core::Duration::micros(10);
  mux.app_send(tuple, self, peer, sink.target_bytes, t0, core::Duration::nanos(0));
  sim.run_until(core::TimePoint::zero() + horizon);

  ScenarioOutcome out;
  out.stats = mux.stats();
  out.completed = sink.completed;
  out.completion = sink.completed ? sink.completion - t0 : horizon;
  out.dropped_frames = sink.dropped_frames;
  return out;
}

}  // namespace fbdcsim::tests
