#include "fbdcsim/core/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace fbdcsim::core {
namespace {

TEST(LogNormalTest, MedianMatchesParameter) {
  LogNormal d{1000.0, 1.0};
  RngStream rng{3};
  std::vector<double> samples;
  for (int i = 0; i < 100'000; ++i) samples.push_back(d.sample(rng));
  std::sort(samples.begin(), samples.end());
  const double median = samples[samples.size() / 2];
  EXPECT_NEAR(median / 1000.0, 1.0, 0.05);
}

TEST(LogNormalTest, MeanFormula) {
  LogNormal d{100.0, 0.5};
  EXPECT_NEAR(d.mean(), 100.0 * std::exp(0.125), 1e-9);
  EXPECT_DOUBLE_EQ(d.median(), 100.0);
}

TEST(LogNormalTest, RejectsBadParams) {
  EXPECT_THROW(LogNormal(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogNormal(1.0, -0.1), std::invalid_argument);
}

TEST(BoundedParetoTest, SamplesWithinBounds) {
  BoundedPareto d{1.2, 10.0, 1e6};
  RngStream rng{4};
  for (int i = 0; i < 10'000; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 1e6);
  }
}

TEST(BoundedParetoTest, HeavyTailOrdering) {
  // Lower alpha -> heavier tail -> larger p99.
  RngStream rng1{5};
  RngStream rng2{5};
  BoundedPareto heavy{0.8, 1.0, 1e9};
  BoundedPareto light{2.5, 1.0, 1e9};
  std::vector<double> hs, ls;
  for (int i = 0; i < 20'000; ++i) {
    hs.push_back(heavy.sample(rng1));
    ls.push_back(light.sample(rng2));
  }
  std::sort(hs.begin(), hs.end());
  std::sort(ls.begin(), ls.end());
  EXPECT_GT(hs[static_cast<std::size_t>(0.99 * 20'000)],
            ls[static_cast<std::size_t>(0.99 * 20'000)]);
}

TEST(BoundedParetoTest, RejectsBadParams) {
  EXPECT_THROW(BoundedPareto(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.0, 2.0, 1.0), std::invalid_argument);
}

TEST(ZipfTest, RankZeroMostPopular) {
  Zipf z{100, 1.0};
  RngStream rng{6};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfTest, PmfSumsToOne) {
  Zipf z{50, 0.9};
  double sum = 0.0;
  for (std::size_t k = 0; k < 50; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(z.pmf(50), 0.0);
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  Zipf z{10, 1.2};
  RngStream rng{8};
  std::vector<int> counts(10, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k), 0.01);
  }
}

TEST(EmpiricalCdfTest, InterpolatesKnots) {
  EmpiricalCdf cdf{{{0.0, 100.0}, {0.5, 1000.0}, {1.0, 100000.0}}};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100000.0);
  // Log-linear midpoint between 100 and 1000 is ~316.
  EXPECT_NEAR(cdf.quantile(0.25), 316.2, 1.0);
}

TEST(EmpiricalCdfTest, RejectsBadKnots) {
  using Knots = std::vector<EmpiricalCdf::Knot>;
  EXPECT_THROW((EmpiricalCdf{Knots{{0.0, 1.0}}}), std::invalid_argument);
  EXPECT_THROW(EmpiricalCdf{(Knots{{0.1, 1.0}, {1.0, 2.0}})}, std::invalid_argument);
  EXPECT_THROW(EmpiricalCdf{(Knots{{0.0, 2.0}, {1.0, 1.0}})}, std::invalid_argument);
}

TEST(DiscreteChoiceTest, ProbabilitiesNormalized) {
  DiscreteChoice d{{1.0, 3.0}};
  EXPECT_NEAR(d.probability(0), 0.25, 1e-9);
  EXPECT_NEAR(d.probability(1), 0.75, 1e-9);
  EXPECT_EQ(d.probability(2), 0.0);
}

TEST(DiscreteChoiceTest, EmpiricalFrequencies) {
  DiscreteChoice d{{63.1, 15.2, 5.6, 16.1}};  // Table 2 Web row
  RngStream rng{9};
  std::vector<int> counts(4, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[d.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.631, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.161, 0.01);
}

TEST(DiscreteChoiceTest, RejectsBadWeights) {
  EXPECT_THROW((DiscreteChoice{std::vector<double>{}}), std::invalid_argument);
  EXPECT_THROW((DiscreteChoice{std::vector<double>{-1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW((DiscreteChoice{std::vector<double>{0.0, 0.0}}), std::invalid_argument);
}

TEST(DiurnalProfileTest, PeakToTroughRatio) {
  DiurnalProfile profile{{.peak_to_trough = 2.0, .peak_hour = 12.0, .weekend_factor = 1.0}};
  const double peak = profile.factor_at(Duration::hours(12));
  const double trough = profile.factor_at(Duration::hours(0));
  EXPECT_NEAR(peak / trough, 2.0, 1e-6);
}

TEST(DiurnalProfileTest, WeekendDip) {
  DiurnalProfile profile{{.peak_to_trough = 1.5, .peak_hour = 12.0, .weekend_factor = 0.8}};
  const double weekday = profile.factor_at(Duration::hours(12));
  const double weekend = profile.factor_at(Duration::hours(12 + 24 * 5));
  EXPECT_NEAR(weekend / weekday, 0.8, 1e-6);
}

TEST(DiurnalProfileTest, RejectsBadRatio) {
  EXPECT_THROW(DiurnalProfile({.peak_to_trough = 0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace fbdcsim::core
