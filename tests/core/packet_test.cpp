#include "fbdcsim/core/packet.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace fbdcsim::core {
namespace {

FiveTuple tuple_a() {
  return FiveTuple{Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 0, 0, 2}, 32768, 80, Protocol::kTcp};
}

TEST(FiveTupleTest, ReversedSwapsEndpoints) {
  const FiveTuple t = tuple_a();
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_ip, t.src_ip);
  EXPECT_EQ(r.src_port, t.dst_port);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.protocol, t.protocol);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTupleTest, EqualityAndHash) {
  std::unordered_set<std::size_t> hashes;
  const FiveTuple t = tuple_a();
  EXPECT_EQ(t, tuple_a());
  EXPECT_NE(t, t.reversed());
  hashes.insert(std::hash<FiveTuple>{}(t));
  hashes.insert(std::hash<FiveTuple>{}(t.reversed()));
  FiveTuple other = t;
  other.dst_port = 81;
  hashes.insert(std::hash<FiveTuple>{}(other));
  EXPECT_EQ(hashes.size(), 3u);
}

TEST(WireTest, TcpFrameSizes) {
  // Pure ACK: padded to the Ethernet minimum.
  EXPECT_EQ(wire::tcp_frame_bytes(0), wire::kMinFrameBytes);
  // Full MSS payload: exactly MTU + Ethernet header.
  EXPECT_EQ(wire::tcp_frame_bytes(wire::kMaxTcpPayloadBytes),
            wire::kMtuBytes + wire::kEthernetHeaderBytes);
  // Small payload: headers + payload.
  EXPECT_EQ(wire::tcp_frame_bytes(100), 54 + 100);
}

TEST(WireTest, MssIsConsistent) {
  EXPECT_EQ(wire::kMaxTcpPayloadBytes,
            wire::kMtuBytes - wire::kIpv4HeaderBytes - wire::kTcpHeaderBytes);
}

TEST(PacketHeaderTest, SizeAccessors) {
  PacketHeader pkt;
  pkt.frame_bytes = 1514;
  pkt.payload_bytes = 1460;
  EXPECT_EQ(pkt.frame_size(), DataSize::bytes(1514));
  EXPECT_EQ(pkt.payload_size(), DataSize::bytes(1460));
}

TEST(FiveTupleTest, ToStringFormat) {
  EXPECT_EQ(tuple_a().to_string(), "10.0.0.1:32768->10.0.0.2:80/tcp");
}

}  // namespace
}  // namespace fbdcsim::core
