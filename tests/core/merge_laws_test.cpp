// Property tests for the sharded-accumulator merge laws. The parallel
// runtime is only correct if merging per-shard accumulators is associative
// and commutative with an identity — these suites drive core::Cdf::merge
// and OnlineStats::merge through hundreds of seeded random cases per law.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "fbdcsim/core/rng.h"
#include "fbdcsim/core/stats.h"

namespace fbdcsim::core {
namespace {

constexpr int kCases = 200;

/// A random Cdf with 0..64 samples drawn from a mix of scales (flow sizes
/// span ~6 orders of magnitude in the paper's figures).
Cdf random_cdf(RngStream& rng) {
  Cdf cdf;
  const std::int64_t n = rng.uniform_int(0, 64);
  for (std::int64_t i = 0; i < n; ++i) {
    cdf.add(rng.uniform() * std::pow(10.0, static_cast<double>(rng.uniform_int(0, 6))));
  }
  return cdf;
}

/// Exact multiset equality via the sorted sample views.
void expect_same_samples(const Cdf& a, const Cdf& b) {
  const auto sa = a.sorted_samples();
  const auto sb = b.sorted_samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i], sb[i]) << "sample " << i;
  }
}

TEST(CdfMergeLawsTest, MergeCommutes) {
  RngStream rng{101};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    const Cdf a = random_cdf(rng);
    const Cdf b = random_cdf(rng);
    Cdf ab = a;
    ab.merge(b);
    Cdf ba = b;
    ba.merge(a);
    expect_same_samples(ab, ba);
    if (!ab.empty()) {
      for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_EQ(ab.quantile(q), ba.quantile(q)) << q;
      }
    }
  }
}

TEST(CdfMergeLawsTest, MergeAssociates) {
  RngStream rng{102};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    const Cdf a = random_cdf(rng);
    const Cdf b = random_cdf(rng);
    const Cdf d = random_cdf(rng);
    Cdf left = a;  // (a + b) + d
    left.merge(b);
    left.merge(d);
    Cdf bd = b;  // a + (b + d)
    bd.merge(d);
    Cdf right = a;
    right.merge(bd);
    expect_same_samples(left, right);
  }
}

TEST(CdfMergeLawsTest, EmptyIsIdentity) {
  RngStream rng{103};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    const Cdf a = random_cdf(rng);
    Cdf left;  // empty + a
    left.merge(a);
    Cdf right = a;  // a + empty
    right.merge(Cdf{});
    expect_same_samples(left, a);
    expect_same_samples(right, a);
  }
}

TEST(CdfMergeLawsTest, AnyMergeOrderMatchesBulkConstruction) {
  RngStream rng{104};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    // Split one sample set into 5 shards, merge shards in a random order,
    // and compare against the Cdf built from all samples at once.
    std::vector<double> all;
    std::vector<Cdf> shards{5};
    const std::int64_t n = rng.uniform_int(0, 200);
    for (std::int64_t i = 0; i < n; ++i) {
      const double x = rng.exponential(1000.0);
      all.push_back(x);
      shards[static_cast<std::size_t>(rng.uniform_int(0, 4))].add(x);
    }
    std::vector<std::size_t> order(shards.size());
    std::iota(order.begin(), order.end(), 0u);
    std::shuffle(order.begin(), order.end(), rng.engine());

    Cdf merged;
    for (const std::size_t s : order) merged.merge(shards[s]);
    const Cdf bulk{all};
    expect_same_samples(merged, bulk);
    if (!bulk.empty()) {
      EXPECT_EQ(merged.median(), bulk.median());
      EXPECT_EQ(merged.p99(), bulk.p99());
    }
  }
}

TEST(OnlineStatsMergeLawsTest, MergeCommutesWithinTolerance) {
  RngStream rng{105};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    OnlineStats a;
    OnlineStats b;
    const std::int64_t na = rng.uniform_int(0, 50);
    const std::int64_t nb = rng.uniform_int(0, 50);
    for (std::int64_t i = 0; i < na; ++i) a.add(rng.normal(100.0, 25.0));
    for (std::int64_t i = 0; i < nb; ++i) b.add(rng.normal(500.0, 50.0));
    OnlineStats ab = a;
    ab.merge(b);
    OnlineStats ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.count(), ba.count());
    EXPECT_EQ(ab.min(), ba.min());
    EXPECT_EQ(ab.max(), ba.max());
    EXPECT_NEAR(ab.mean(), ba.mean(), 1e-9 * std::max(1.0, std::abs(ab.mean())));
    EXPECT_NEAR(ab.variance(), ba.variance(), 1e-6 * std::max(1.0, ab.variance()));
  }
}

TEST(OnlineStatsMergeLawsTest, ShardedMergeMatchesSerialAccumulation) {
  RngStream rng{106};
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE(c);
    OnlineStats serial;
    std::vector<OnlineStats> shards{4};
    const std::int64_t n = rng.uniform_int(1, 120);
    for (std::int64_t i = 0; i < n; ++i) {
      const double x = rng.exponential(50.0);
      serial.add(x);
      shards[static_cast<std::size_t>(rng.uniform_int(0, 3))].add(x);
    }
    OnlineStats merged = shards[0];
    for (std::size_t s = 1; s < shards.size(); ++s) merged.merge(shards[s]);
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_EQ(merged.min(), serial.min());
    EXPECT_EQ(merged.max(), serial.max());
    EXPECT_NEAR(merged.sum(), serial.sum(), 1e-9 * std::max(1.0, serial.sum()));
    EXPECT_NEAR(merged.mean(), serial.mean(), 1e-9 * std::max(1.0, serial.mean()));
    EXPECT_NEAR(merged.stddev(), serial.stddev(), 1e-6 * std::max(1.0, serial.stddev()));
  }
}

}  // namespace
}  // namespace fbdcsim::core
