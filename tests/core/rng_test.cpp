#include "fbdcsim/core/rng.h"

#include <gtest/gtest.h>

namespace fbdcsim::core {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  RngStream a{123};
  RngStream b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  RngStream a{1};
  RngStream b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsIndependentOfDrawCount) {
  // Forking must depend only on the seed, not on how many values were
  // drawn — this is what guarantees adding a component doesn't perturb
  // existing ones.
  RngStream a{99};
  RngStream b{99};
  (void)b.uniform();
  (void)b.uniform();
  RngStream fa = a.fork("child");
  RngStream fb = b.fork("child");
  EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
}

TEST(RngTest, NamedForksAreIndependent) {
  RngStream root{7};
  RngStream a = root.fork("alpha");
  RngStream b = root.fork("beta");
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(RngTest, IndexedForksAreIndependent) {
  RngStream root{7};
  RngStream a = root.fork("host", 0);
  RngStream b = root.fork("host", 1);
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(RngTest, UniformIntInRange) {
  RngStream rng{5};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformRange) {
  RngStream rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  RngStream rng{5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMean) {
  RngStream rng{11};
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, PoissonMean) {
  RngStream rng{13};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(9.0));
  EXPECT_NEAR(sum / n, 9.0, 0.1);
}

TEST(SplitMixTest, Deterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
}

TEST(HashNameTest, DistinctNames) {
  EXPECT_NE(hash_name("a"), hash_name("b"));
  EXPECT_EQ(hash_name("same"), hash_name("same"));
}

}  // namespace
}  // namespace fbdcsim::core
