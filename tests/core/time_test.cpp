#include "fbdcsim/core/time.h"

#include <gtest/gtest.h>

namespace fbdcsim::core {
namespace {

TEST(DurationTest, FactoryUnitsConvert) {
  EXPECT_EQ(Duration::nanos(1).count_nanos(), 1);
  EXPECT_EQ(Duration::micros(1).count_nanos(), 1'000);
  EXPECT_EQ(Duration::millis(1).count_nanos(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1).count_nanos(), 1'000'000'000);
  EXPECT_EQ(Duration::minutes(1).count_nanos(), 60'000'000'000);
  EXPECT_EQ(Duration::hours(1).count_nanos(), 3'600'000'000'000);
}

TEST(DurationTest, FromSecondsRoundsToNearestNano) {
  EXPECT_EQ(Duration::from_seconds(1.5).count_nanos(), 1'500'000'000);
  EXPECT_EQ(Duration::from_seconds(1e-9).count_nanos(), 1);
  EXPECT_EQ(Duration::from_seconds(0.49e-9).count_nanos(), 0);
  EXPECT_EQ(Duration::from_seconds(-1.5).count_nanos(), -1'500'000'000);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::millis(3);
  const Duration b = Duration::millis(2);
  EXPECT_EQ((a + b).count_nanos(), 5'000'000);
  EXPECT_EQ((a - b).count_nanos(), 1'000'000);
  EXPECT_EQ((a * 4).count_nanos(), 12'000'000);
  EXPECT_EQ((a / 3).count_nanos(), 1'000'000);
  EXPECT_EQ(a / b, 1);
  EXPECT_EQ((a % b).count_nanos(), 1'000'000);
  EXPECT_EQ((-a).count_nanos(), -3'000'000);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
  EXPECT_TRUE(Duration{}.is_zero());
  EXPECT_TRUE((Duration::millis(-1)).is_negative());
}

TEST(DurationTest, ConversionsToFloating) {
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).to_millis(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::nanos(3500).to_micros(), 3.5);
}

TEST(DurationTest, ToStringPicksAdaptiveUnit) {
  EXPECT_EQ(Duration::seconds(2).to_string(), "2s");
  EXPECT_EQ(Duration::millis(12).to_string(), "12ms");
  EXPECT_EQ(Duration::micros(7).to_string(), "7us");
  EXPECT_EQ(Duration::nanos(42).to_string(), "42ns");
}

TEST(TimePointTest, EpochAndOffsets) {
  const TimePoint t0 = TimePoint::zero();
  EXPECT_EQ(t0.count_nanos(), 0);
  const TimePoint t1 = t0 + Duration::seconds(3);
  EXPECT_EQ(t1.count_nanos(), 3'000'000'000);
  EXPECT_EQ((t1 - t0), Duration::seconds(3));
  EXPECT_EQ((t1 - Duration::seconds(1)).count_nanos(), 2'000'000'000);
}

TEST(TimePointTest, BinIndex) {
  const Duration bin = Duration::millis(10);
  EXPECT_EQ(TimePoint::zero().bin_index(bin), 0);
  EXPECT_EQ(TimePoint::from_nanos(9'999'999).bin_index(bin), 0);
  EXPECT_EQ(TimePoint::from_nanos(10'000'000).bin_index(bin), 1);
  EXPECT_EQ(TimePoint::from_seconds(1.0).bin_index(bin), 100);
}

TEST(TimePointTest, Ordering) {
  EXPECT_LT(TimePoint::from_seconds(1.0), TimePoint::from_seconds(2.0));
  EXPECT_EQ(TimePoint::from_seconds(1.0), TimePoint::from_nanos(1'000'000'000));
}

}  // namespace
}  // namespace fbdcsim::core
