#include "fbdcsim/core/units.h"

#include <gtest/gtest.h>

namespace fbdcsim::core {
namespace {

TEST(DataSizeTest, FactoriesAndConversions) {
  EXPECT_EQ(DataSize::bytes(1).count_bytes(), 1);
  EXPECT_EQ(DataSize::kilobytes(2).count_bytes(), 2'000);
  EXPECT_EQ(DataSize::megabytes(3).count_bytes(), 3'000'000);
  EXPECT_EQ(DataSize::gigabytes(4).count_bytes(), 4'000'000'000);
  EXPECT_EQ(DataSize::bytes(5).count_bits(), 40);
  EXPECT_DOUBLE_EQ(DataSize::bytes(1500).to_kilobytes(), 1.5);
}

TEST(DataSizeTest, Arithmetic) {
  const DataSize a = DataSize::kilobytes(3);
  const DataSize b = DataSize::kilobytes(1);
  EXPECT_EQ((a + b).count_bytes(), 4'000);
  EXPECT_EQ((a - b).count_bytes(), 2'000);
  EXPECT_EQ((a * 2).count_bytes(), 6'000);
  EXPECT_EQ((a / 3).count_bytes(), 1'000);
  EXPECT_EQ(a / b, 3);
}

TEST(DataRateTest, TransmissionTime) {
  // 1500 bytes at 10 Gbps = 1.2 us.
  const DataRate r = DataRate::gigabits_per_sec(10);
  EXPECT_EQ(r.transmission_time(DataSize::bytes(1500)), Duration::nanos(1200));
  // 1 GB at 1 Gbps = 8 s.
  EXPECT_EQ(DataRate::gigabits_per_sec(1).transmission_time(DataSize::gigabytes(1)),
            Duration::seconds(8));
}

TEST(DataRateTest, TransferredIn) {
  const DataRate r = DataRate::megabits_per_sec(8);  // 1 MB/s
  EXPECT_EQ(r.transferred_in(Duration::seconds(2)).count_bytes(), 2'000'000);
  EXPECT_EQ(r.transferred_in(Duration::millis(1)).count_bytes(), 1'000);
}

TEST(DataRateTest, RateOf) {
  EXPECT_EQ(rate_of(DataSize::bytes(1'000'000), Duration::seconds(1)),
            DataRate::megabits_per_sec(8));
  EXPECT_TRUE(rate_of(DataSize::bytes(100), Duration{}).is_zero());
}

TEST(DataRateTest, ToString) {
  EXPECT_EQ(DataRate::gigabits_per_sec(10).to_string(), "10Gbps");
  EXPECT_EQ(DataRate::megabits_per_sec(2).to_string(), "2Mbps");
  EXPECT_EQ(DataSize::megabytes(1).to_string(), "1MB");
}

}  // namespace
}  // namespace fbdcsim::core
