#include "fbdcsim/core/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace fbdcsim::core {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  std::vector<std::byte*> blocks;
  for (int i = 1; i <= 64; ++i) {
    auto* p = static_cast<std::byte*>(arena.allocate(static_cast<std::size_t>(i), 8));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    std::memset(p, i, static_cast<std::size_t>(i));  // ASan catches overlap/OOB
    blocks.push_back(p);
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(static_cast<int>(blocks[i][0]), static_cast<int>(i + 1));
  }
}

TEST(ArenaTest, MaxAlignRequestsAreHonored) {
  Arena arena;
  arena.allocate(1, 1);  // knock the bump pointer off alignment
  void* p = arena.allocate(32, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::max_align_t), 0u);
}

TEST(ArenaTest, GrowsBeyondOneChunk) {
  Arena arena{Arena::kDefaultChunkBytes};
  const std::int64_t before = arena.bytes_from_system();
  for (int i = 0; i < 3000; ++i) arena.allocate(64, 8);  // ~192 KiB total
  EXPECT_GT(arena.bytes_from_system(), before);
  EXPECT_GE(arena.bytes_from_system(), 3 * 64 * 1024);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena;
  auto* p = static_cast<std::byte*>(arena.allocate(1 << 20, 8));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 1 << 20);
}

TEST(ArenaTest, ResetRecyclesChunksWithoutNewSystemMemory) {
  Arena arena;
  for (int i = 0; i < 3000; ++i) arena.allocate(64, 8);
  const std::int64_t grown = arena.bytes_from_system();
  const std::int64_t reused_before = arena.chunks_reused();
  arena.reset();
  for (int i = 0; i < 3000; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.bytes_from_system(), grown);  // no new mallocs
  EXPECT_GT(arena.chunks_reused(), reused_before);
}

TEST(PoolTest, CreateDestroyRecyclesSlots) {
  Arena arena;
  Pool<std::int64_t> pool{arena};
  std::int64_t* a = pool.create(41);
  EXPECT_EQ(*a, 41);
  EXPECT_EQ(pool.live(), 1);
  pool.destroy(a);
  EXPECT_EQ(pool.live(), 0);
  std::int64_t* b = pool.create(42);
  EXPECT_EQ(b, a);  // freed slot comes back first
  EXPECT_EQ(*b, 42);
  EXPECT_EQ(pool.reused(), 1);
  pool.destroy(b);
}

TEST(PoolTest, DestructorsRunExactlyOnce) {
  struct Probe {
    int* destroyed;
    explicit Probe(int* d) : destroyed{d} {}
    ~Probe() { ++*destroyed; }
  };
  int destroyed = 0;
  Arena arena;
  Pool<Probe> pool{arena};
  Probe* p = pool.create(&destroyed);
  pool.destroy(p);
  EXPECT_EQ(destroyed, 1);
}

TEST(PoolQueueTest, FifoOrder) {
  Arena arena;
  Pool<PoolQueue<int>::Node> pool{arena};
  PoolQueue<int> q;
  q.attach(pool);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(pool.live(), 0);
}

TEST(PoolQueueTest, SteadyStateReusesNodes) {
  Arena arena;
  Pool<PoolQueue<int>::Node> pool{arena};
  PoolQueue<int> q;
  q.attach(pool);
  q.push_back(0);
  const std::int64_t grown = arena.bytes_from_system();
  for (int i = 1; i <= 10'000; ++i) {
    q.push_back(i);
    q.pop_front();
  }
  // The first loop push allocates a second slot (nothing freed yet); every
  // later push reuses it.
  EXPECT_EQ(arena.bytes_from_system(), grown);
  EXPECT_GE(pool.reused(), 9'999);
  q.clear();
}

TEST(PoolQueueTest, ClearDestroysAllValues) {
  struct Probe {
    int* destroyed;
    ~Probe() { ++*destroyed; }
  };
  int destroyed = 0;
  Arena arena;
  Pool<PoolQueue<Probe>::Node> pool{arena};
  {
    PoolQueue<Probe> q;
    q.attach(pool);
    for (int i = 0; i < 5; ++i) q.push_back(Probe{&destroyed});
    destroyed = 0;  // ignore temporaries moved from during push_back
    q.clear();
    EXPECT_EQ(destroyed, 5);
  }
  EXPECT_EQ(pool.live(), 0);
}

TEST(PoolQueueTest, MoveTransfersOwnership) {
  Arena arena;
  Pool<PoolQueue<int>::Node> pool{arena};
  PoolQueue<int> a;
  a.attach(pool);
  a.push_back(7);
  a.push_back(8);
  PoolQueue<int> b{std::move(a)};
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): moved-from is empty by contract
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.front(), 7);
  b.clear();
}

}  // namespace
}  // namespace fbdcsim::core
