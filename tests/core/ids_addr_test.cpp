#include <gtest/gtest.h>

#include <unordered_set>

#include "fbdcsim/core/addr.h"
#include "fbdcsim/core/ids.h"

namespace fbdcsim::core {
namespace {

TEST(IdTest, DefaultIsInvalid) {
  HostId id;
  EXPECT_FALSE(id.is_valid());
  EXPECT_EQ(id, HostId::invalid());
}

TEST(IdTest, ValueRoundTrip) {
  const RackId id{42};
  EXPECT_TRUE(id.is_valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(IdTest, Ordering) {
  EXPECT_LT(HostId{1}, HostId{2});
  EXPECT_EQ(HostId{7}, HostId{7});
}

TEST(IdTest, Hashable) {
  std::unordered_set<ClusterId> set;
  set.insert(ClusterId{1});
  set.insert(ClusterId{2});
  set.insert(ClusterId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ipv4AddrTest, OctetConstruction) {
  const Ipv4Addr a{10, 1, 2, 3};
  EXPECT_EQ(a.value(), 0x0A010203u);
  EXPECT_EQ(a.octet(0), 10);
  EXPECT_EQ(a.octet(1), 1);
  EXPECT_EQ(a.octet(2), 2);
  EXPECT_EQ(a.octet(3), 3);
}

TEST(Ipv4AddrTest, ToStringRoundTrip) {
  const Ipv4Addr a{192, 168, 0, 1};
  EXPECT_EQ(a.to_string(), "192.168.0.1");
  EXPECT_EQ(Ipv4Addr::parse("192.168.0.1"), a);
}

TEST(Ipv4AddrTest, TryParseRejectsGarbage) {
  Ipv4Addr out;
  EXPECT_FALSE(Ipv4Addr::try_parse("not.an.ip", out));
  EXPECT_FALSE(Ipv4Addr::try_parse("1.2.3.4.5", out));
  EXPECT_FALSE(Ipv4Addr::try_parse("256.0.0.1", out));
  EXPECT_FALSE(Ipv4Addr::try_parse("", out));
  EXPECT_TRUE(Ipv4Addr::try_parse("0.0.0.0", out));
  EXPECT_TRUE(Ipv4Addr::try_parse("255.255.255.255", out));
}

}  // namespace
}  // namespace fbdcsim::core
