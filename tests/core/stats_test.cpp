#include "fbdcsim/core/stats.h"

#include <gtest/gtest.h>

namespace fbdcsim::core {
namespace {

TEST(OnlineStatsTest, BasicMoments) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37;
    a.add(v);
    all.add(v);
  }
  for (int i = 50; i < 120; ++i) {
    const double v = i * 0.37;
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(CdfTest, QuantilesOfKnownData) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 100.0);
  EXPECT_NEAR(cdf.median(), 50.5, 1e-9);
  EXPECT_NEAR(cdf.p10(), 10.9, 1e-9);
  EXPECT_NEAR(cdf.p90(), 90.1, 1e-9);
}

TEST(CdfTest, EmptyReturnsZero) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.median(), 0.0);
}

TEST(CdfTest, SingleSample) {
  Cdf cdf;
  cdf.add(42.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 42.0);
}

TEST(CdfTest, FractionAtOrBelow) {
  Cdf cdf{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 1.0);
}

TEST(CdfTest, SeriesIsMonotonic) {
  Cdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(static_cast<double>((i * 7919) % 513));
  const auto series = cdf.series(51);
  ASSERT_EQ(series.size(), 51u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].value, series[i].value);
    EXPECT_LT(series[i - 1].quantile, series[i].quantile);
  }
}

TEST(CdfTest, AddAllAndUnsortedInput) {
  Cdf cdf;
  const std::vector<double> vals{5.0, 1.0, 3.0};
  cdf.add_all(vals);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
}

TEST(CdfTest, MergeCombinesSampleSets) {
  Cdf a;
  a.add_all(std::vector<double>{1.0, 2.0, 3.0});
  Cdf b;
  b.add_all(std::vector<double>{10.0, 20.0});
  a.merge(b);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
  EXPECT_DOUBLE_EQ(a.median(), 3.0);
  // The merged-into CDF is equivalent to one built from all samples at once.
  Cdf all;
  all.add_all(std::vector<double>{1.0, 2.0, 3.0, 10.0, 20.0});
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q)) << q;
  }
  // The source is untouched.
  EXPECT_EQ(b.size(), 2u);
}

TEST(CdfTest, MergeEmptyIsNoOp) {
  Cdf a;
  a.add(4.0);
  a.merge(Cdf{});
  EXPECT_EQ(a.size(), 1u);
  Cdf empty;
  empty.merge(a);
  EXPECT_EQ(empty.size(), 1u);
  EXPECT_DOUBLE_EQ(empty.median(), 4.0);
}

TEST(LogHistogramTest, BinBoundaries) {
  LogHistogram h{1.0, 10.0, 5};  // [1,10), [10,100), ...
  EXPECT_EQ(h.bin_of(0.5), 0u);
  EXPECT_EQ(h.bin_of(5.0), 0u);
  EXPECT_EQ(h.bin_of(10.0), 1u);
  EXPECT_EQ(h.bin_of(99.0), 1u);
  EXPECT_EQ(h.bin_of(1e12), 4u);  // clamps to last bin
  EXPECT_DOUBLE_EQ(h.bin_lower(2), 100.0);
}

TEST(LogHistogramTest, CountsAndWeights) {
  LogHistogram h{1.0, 2.0, 10};
  h.add(1.5);
  h.add(3.0, 5);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(1), 5);
  EXPECT_EQ(h.total(), 6);
}

TEST(LogHistogramTest, RejectsBadParams) {
  EXPECT_THROW(LogHistogram(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 2.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fbdcsim::core
