// TransportMux behavioral tests against a loopback TrafficSink.
//
// The loopback sink stands in for the RSW: every packet a half-stream
// emits is delivered back to the mux after a fixed wire delay (the switch
// calls on_delivered at egress in the real wiring), and the harness can
// drop every Nth data frame to emulate shared-buffer loss. This isolates
// the TCP machinery — handshakes, ACK clocking, fast retransmit, RTO,
// teardown, bytes conservation — from the service models and the switch.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fbdcsim/core/packet.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/services/traffic_model.h"
#include "fbdcsim/sim/simulator.h"
#include "fbdcsim/topology/entities.h"
#include "fbdcsim/transport/mux.h"
#include "fbdcsim/workload/presets.h"

namespace fbdcsim::transport {
namespace {

using core::Duration;
using core::SimPacket;
using core::TimePoint;

/// Delivers every emitted packet back to the mux after `wire_delay`,
/// recording it; optionally drops every Nth data frame sent by the host
/// (mimicking a DT admission reject, which notifies via on_dropped and
/// never delivers).
class LoopbackSink final : public services::TrafficSink {
 public:
  void host_send(const SimPacket& packet) override {
    sent.push_back(packet);
    route(packet);
  }
  void host_receive(const SimPacket& packet) override {
    received.push_back(packet);
    route(packet);
  }

  sim::Simulator* sim{nullptr};
  TransportMux* mux{nullptr};
  Duration wire_delay = Duration::micros(1);
  std::int64_t drop_every{0};  // 0 = lossless
  std::vector<SimPacket> sent;      // host NIC -> RSW
  std::vector<SimPacket> received;  // RSW downlink -> host

 private:
  void route(const SimPacket& packet) {
    if (drop_every > 0 && packet.header.payload_bytes > 0 &&
        ++data_frames_ % drop_every == 0) {
      mux->on_dropped(/*port=*/0, packet);
      return;
    }
    const SimPacket copy = packet;
    sim->schedule_after(wire_delay, [this, copy] { mux->on_delivered(copy); });
  }

  std::int64_t data_frames_{0};
};

struct Harness {
  explicit Harness(const faults::FaultPlan* faults = nullptr)
      : fleet{workload::build_rack_experiment_fleet()},
        mux{sim, fleet, sink, TcpParams{}, faults, /*seed=*/1} {
    sink.sim = &sim;
    sink.mux = &mux;
    // Two hosts of the same rack: zero beyond-RSW delay, fastest loops.
    const auto& hosts = fleet.rack(fleet.host(core::HostId{0}).rack).hosts;
    self = hosts[0];
    peer = hosts[1];
    tuple = core::FiveTuple{fleet.host(self).addr, fleet.host(peer).addr, 40'000, 11'211,
                            core::Protocol::kTcp};
  }

  void run(Duration horizon = Duration::seconds(5)) {
    sim.run_until(TimePoint::zero() + horizon);
  }

  [[nodiscard]] int count_sent(bool syn, bool fin, bool data) const {
    int n = 0;
    for (const SimPacket& p : sink.sent) {
      if (p.header.flags.syn == syn && p.header.flags.fin == fin &&
          (p.header.payload_bytes > 0) == data) {
        ++n;
      }
    }
    return n;
  }

  topology::Fleet fleet;
  sim::Simulator sim;
  LoopbackSink sink;
  TransportMux mux;
  core::HostId self, peer;
  core::FiveTuple tuple;
};

TEST(TransportMux, HandshakeEmitsRealSynSynAckAck) {
  Harness h;
  h.mux.open(h.tuple, h.self, h.peer, TimePoint::zero() + Duration::micros(10));
  h.run();

  EXPECT_EQ(h.mux.stats().handshakes_completed, 1);
  EXPECT_EQ(h.count_sent(/*syn=*/true, /*fin=*/false, /*data=*/false), 1)
      << "exactly one SYN leaves the host";
  int syn_acks_in = 0;
  int pure_acks_out = 0;
  for (const SimPacket& p : h.sink.received) {
    if (p.header.flags.syn && p.header.flags.ack) ++syn_acks_in;
  }
  for (const SimPacket& p : h.sink.sent) {
    if (!p.header.flags.syn && p.header.flags.ack && p.header.payload_bytes == 0) {
      ++pure_acks_out;
    }
  }
  EXPECT_EQ(syn_acks_in, 1) << "the peer's SYN-ACK traverses the downlink";
  EXPECT_GE(pure_acks_out, 1) << "the final handshake ACK is a real packet";
  const TcpConnection* conn = h.mux.find_connection(h.tuple);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->state, ConnState::kEstablished);
}

TEST(TransportMux, InboundHandshakeCompletes) {
  Harness h;
  h.mux.open_inbound(h.tuple, h.self, h.peer, TimePoint::zero() + Duration::micros(10));
  h.run();
  EXPECT_EQ(h.mux.stats().handshakes_completed, 1);
  int syns_in = 0;
  for (const SimPacket& p : h.sink.received) {
    if (p.header.flags.syn && !p.header.flags.ack) ++syns_in;
  }
  EXPECT_EQ(syns_in, 1) << "the peer's SYN arrives through the downlink";
  EXPECT_EQ(h.count_sent(/*syn=*/true, /*fin=*/false, /*data=*/false), 1)
      << "self answers with a SYN-ACK (syn bit set on the sent frame)";
}

TEST(TransportMux, PooledConnectionsSkipTheHandshake) {
  Harness h;
  const std::int64_t bytes = 10 * 1460;
  h.mux.app_send(h.tuple, h.self, h.peer, bytes, TimePoint::zero() + Duration::micros(10),
                 Duration::nanos(0));
  h.run();
  EXPECT_EQ(h.count_sent(/*syn=*/true, /*fin=*/false, /*data=*/false), 0)
      << "pooled connections' handshakes predate the run";
  EXPECT_EQ(h.mux.stats().handshakes_completed, 0);
  EXPECT_EQ(h.mux.stats().bytes_delivered, bytes);
}

TEST(TransportMux, BytesConservationLossless) {
  Harness h;
  const std::int64_t bytes = 1'000'000;
  h.mux.app_send(h.tuple, h.self, h.peer, bytes, TimePoint::zero() + Duration::micros(10),
                 Duration::nanos(0));
  h.run();
  const TransportMux::Stats& s = h.mux.stats();
  EXPECT_EQ(s.bytes_demanded, bytes);
  EXPECT_EQ(s.bytes_delivered, bytes);
  EXPECT_EQ(s.retransmit_segments, 0) << "no loss, no retransmissions";
  EXPECT_EQ(s.rto_fired, 0);
  const std::int64_t mss = TcpParams{}.mss_bytes;
  EXPECT_EQ(s.segments_sent, (bytes + mss - 1) / mss) << "MSS segmentation exactly";
  // Every data frame is MSS-sized except possibly the last.
  for (const SimPacket& p : h.sink.sent) {
    if (p.header.payload_bytes > 0) {
      EXPECT_LE(p.header.payload_bytes, mss);
    }
  }
}

TEST(TransportMux, AppReceiveDrivesTheInboundHalf) {
  Harness h;
  const std::int64_t bytes = 500'000;
  h.mux.app_receive(h.tuple, h.self, h.peer, bytes,
                    TimePoint::zero() + Duration::micros(10), Duration::nanos(0));
  h.run();
  EXPECT_EQ(h.mux.stats().bytes_delivered, bytes);
  std::int64_t data_in = 0;
  int acks_out = 0;
  for (const SimPacket& p : h.sink.received) data_in += p.header.payload_bytes;
  for (const SimPacket& p : h.sink.sent) {
    if (p.header.payload_bytes == 0 && p.header.flags.ack) ++acks_out;
  }
  EXPECT_GE(data_in, bytes) << "the remote sender's segments enter via the downlink";
  EXPECT_GT(acks_out, 0) << "self acknowledges with real packets";
}

TEST(TransportMux, SwitchDropsTriggerRetransmissionAndRecovery) {
  Harness h;
  h.sink.drop_every = 13;
  const std::int64_t bytes = 2'000'000;
  h.mux.app_send(h.tuple, h.self, h.peer, bytes, TimePoint::zero() + Duration::micros(10),
                 Duration::nanos(0));
  h.run(Duration::seconds(30));  // room for RTO-driven tail recovery
  const TransportMux::Stats& s = h.mux.stats();
  EXPECT_EQ(s.bytes_delivered, bytes) << "loss recovery must deliver everything";
  EXPECT_GT(s.retransmit_segments, 0);
  EXPECT_GT(s.switch_drop_notifications, 0);
  EXPECT_GT(s.fast_retransmits + s.rto_fired, 0)
      << "recovery happens via dupacks or timeout";
}

TEST(TransportMux, CloseDrainsThenFinExchangeReleasesTheConnection) {
  Harness h;
  const TimePoint t0 = TimePoint::zero() + Duration::micros(10);
  h.mux.open(h.tuple, h.self, h.peer, t0);
  h.mux.app_send(h.tuple, h.self, h.peer, 100'000, t0 + Duration::micros(50),
                 Duration::nanos(0));
  h.mux.app_close(h.tuple, h.self, h.peer, t0 + Duration::micros(60));
  h.run();
  const TransportMux::Stats& s = h.mux.stats();
  EXPECT_EQ(s.bytes_delivered, 100'000);
  EXPECT_EQ(h.count_sent(/*syn=*/false, /*fin=*/true, /*data=*/false), 1)
      << "FIN only after the stream drains";
  EXPECT_EQ(s.connections_destroyed, 1);
  EXPECT_EQ(h.mux.live_connections(), 0);
  EXPECT_EQ(h.mux.find_connection(h.tuple), nullptr);
}

TEST(TransportMux, PathLossIsRecoveredAndCounted) {
  faults::FaultConfig cfg = faults::heavy_profile();
  cfg.path_loss_prob = 0.05;  // hot enough to hit within one transfer
  const faults::FaultPlan plan{cfg};
  Harness h{&plan};
  // A cross-cluster peer so packets traverse the lossy fabric.
  core::HostId remote = h.peer;
  for (std::uint32_t i = 0; i < h.fleet.num_hosts(); ++i) {
    const core::HostId cand{i};
    if (h.fleet.locality(h.self, cand) == core::Locality::kIntraDatacenter) {
      remote = cand;
      break;
    }
  }
  ASSERT_NE(remote, h.peer) << "fleet must contain a cross-cluster host";
  const core::FiveTuple tuple{h.fleet.host(h.self).addr, h.fleet.host(remote).addr,
                              40'001, 11'211, core::Protocol::kTcp};
  const std::int64_t bytes = 400'000;
  h.mux.app_send(tuple, h.self, remote, bytes, TimePoint::zero() + Duration::micros(10),
                 Duration::nanos(0));
  h.run(Duration::seconds(30));
  const TransportMux::Stats& s = h.mux.stats();
  EXPECT_EQ(s.bytes_delivered, bytes);
  EXPECT_GT(s.path_loss_drops, 0) << "the fault plan's loss decisions fired";
  EXPECT_GT(s.retransmit_segments, 0);
}

TEST(TransportMux, RunsAreDeterministic) {
  auto run_once = [] {
    Harness h;
    h.sink.drop_every = 17;
    const TimePoint t0 = TimePoint::zero() + Duration::micros(10);
    h.mux.open(h.tuple, h.self, h.peer, t0);
    h.mux.app_send(h.tuple, h.self, h.peer, 750'000, t0 + Duration::micros(40),
                   Duration::nanos(0));
    h.mux.app_receive(h.tuple, h.self, h.peer, 250'000, t0 + Duration::micros(45),
                      Duration::nanos(0));
    h.run(Duration::seconds(30));
    std::uint64_t hash = h.sink.sent.size() * 1'000'003 + h.sink.received.size();
    for (const SimPacket& p : h.sink.sent) {
      hash = hash * 1'000'003 +
             static_cast<std::uint64_t>(p.header.timestamp.count_nanos()) +
             static_cast<std::uint64_t>(p.header.payload_bytes) + p.seq + p.ack;
    }
    return std::pair<std::uint64_t, std::int64_t>{hash, h.mux.stats().bytes_delivered};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first) << "identical packet streams across runs";
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace fbdcsim::transport
