// Property suite for the pure SACK laws in transport/tcp.h (RFC 2018
// receiver block generation, RFC 6675 sender scoreboard). These are the
// functions the mux applies on every block-carrying ACK; the suite drives
// them with seeded random inputs (200 cases per property) against
// independent per-byte models, so the scoreboard invariants hold over the
// whole operating envelope, not just the trajectories rack runs visit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fbdcsim/core/rng.h"
#include "fbdcsim/transport/tcp.h"

namespace fbdcsim::transport {
namespace {

constexpr int kCases = 200;

TcpParams params() { return TcpParams{}; }

/// Structural invariants every reachable scoreboard satisfies: sorted by
/// lo, strictly non-empty ranges, pairwise disjoint AND non-adjacent
/// (adjacent ranges must have merged), bounded, and nothing below snd_una.
void expect_scoreboard_well_formed(const HalfStream& h) {
  ASSERT_LE(h.sack_count, HalfStream::kMaxSackRanges);
  for (int i = 0; i < h.sack_count; ++i) {
    EXPECT_LT(h.sack_lo[i], h.sack_hi[i]) << "empty range at " << i;
    EXPECT_GE(h.sack_lo[i], h.snd_una) << "sacked range below snd_una at " << i;
    if (i > 0) {
      EXPECT_GT(h.sack_lo[i], h.sack_hi[i - 1])
          << "ranges must stay sorted, disjoint, and non-adjacent";
    }
  }
}

bool scoreboard_sacked(const HalfStream& h, std::int64_t byte) {
  for (int i = 0; i < h.sack_count; ++i) {
    if (h.sack_lo[i] <= byte && byte < h.sack_hi[i]) return true;
  }
  return false;
}

TEST(SackLaws, RecordClampsMergesAndReturnsNewlySackedBytes) {
  // Random block sequences against a per-byte model. The model applies the
  // same bounded-list drop rule the law documents (full + unmergeable ->
  // the NEW block is dropped), so the two must agree byte for byte.
  constexpr std::int64_t kSent = 2'000;
  for (int c = 0; c < kCases; ++c) {
    core::RngStream rng{0x5AC0 + static_cast<std::uint64_t>(c)};
    HalfStream h;
    h.snd_una = 0;
    h.snd_nxt = h.max_sent = kSent;
    std::vector<bool> model(kSent, false);
    for (int op = 0; op < 30; ++op) {
      // Deliberately overshoot both ends to exercise the clamps.
      const std::int64_t lo = rng.uniform_int(-200, kSent + 200);
      const std::int64_t hi = lo + rng.uniform_int(0, 400);
      const std::int64_t clo = std::max<std::int64_t>(lo, 0);
      const std::int64_t chi = std::min(hi, kSent);
      std::int64_t would_add = 0;
      for (std::int64_t b = clo; b < chi; ++b) would_add += model[b] ? 0 : 1;

      const std::int64_t before = sack_sacked_bytes(h);
      const std::int64_t got = sack_record(h, lo, hi);
      expect_scoreboard_well_formed(h);
      if (got == 0 && would_add > 0) {
        // The bounded list refused the block: it must actually be full and
        // the block must touch no existing range (otherwise it would merge).
        EXPECT_EQ(h.sack_count, HalfStream::kMaxSackRanges);
        for (int i = 0; i < h.sack_count; ++i) {
          EXPECT_FALSE(h.sack_lo[i] <= chi && h.sack_hi[i] >= clo)
              << "a mergeable block must never be dropped";
        }
        EXPECT_EQ(sack_sacked_bytes(h), before) << "a dropped block changes nothing";
        continue;  // the model skips the update too, staying in sync
      }
      EXPECT_EQ(got, would_add) << "return value is exactly the newly-sacked bytes";
      for (std::int64_t b = clo; b < chi; ++b) model[b] = true;
      EXPECT_EQ(sack_sacked_bytes(h), before + got);
      std::int64_t mismatch = -1;
      for (std::int64_t b = 0; b < kSent && mismatch < 0; ++b) {
        if (scoreboard_sacked(h, b) != static_cast<bool>(model[b])) mismatch = b;
      }
      ASSERT_EQ(mismatch, -1) << "case " << c << " op " << op
                              << ": scoreboard diverges from the model at that byte";
    }
  }
}

TEST(SackLaws, SackedBytesAreMonotoneUnderRecordOnly) {
  // The monotonicity law the eviction policy exists to protect: without a
  // cumulative-ACK advance, no sequence of recorded blocks (in-window,
  // stale, duplicate, or overflowing the bounded list) ever un-sacks a byte.
  for (int c = 0; c < kCases; ++c) {
    core::RngStream rng{0xB10C + static_cast<std::uint64_t>(c)};
    HalfStream h;
    h.snd_una = rng.uniform_int(0, 10'000);
    h.snd_nxt = h.max_sent = h.snd_una + rng.uniform_int(1, 40'000);
    std::int64_t prev = 0;
    for (int op = 0; op < 60; ++op) {
      const std::int64_t lo = h.snd_una + rng.uniform_int(-500, 41'000);
      const std::int64_t ret = sack_record(h, lo, lo + rng.uniform_int(0, 900));
      const std::int64_t now = sack_sacked_bytes(h);
      EXPECT_GE(ret, 0);
      EXPECT_GE(now, prev) << "sacked bytes never decrease under record";
      EXPECT_EQ(now - prev, ret);
      prev = now;
    }
  }
}

TEST(SackLaws, OnlyCumulativeAckAdvanceUnSacks) {
  // sack_advance is the single transition that removes sacked bytes, and
  // it removes exactly the bytes below the new snd_una: everything at or
  // above it stays sacked, nothing new appears.
  constexpr std::int64_t kSent = 4'000;
  for (int c = 0; c < kCases; ++c) {
    core::RngStream rng{0xADA + static_cast<std::uint64_t>(c)};
    HalfStream h;
    h.snd_una = 0;
    h.snd_nxt = h.max_sent = kSent;
    for (int op = 0; op < 12; ++op) {
      const std::int64_t lo = rng.uniform_int(0, kSent);
      (void)sack_record(h, lo, lo + rng.uniform_int(1, 600));
    }
    std::vector<bool> before(kSent, false);
    for (std::int64_t b = 0; b < kSent; ++b) before[b] = scoreboard_sacked(h, b);

    h.snd_una = rng.uniform_int(0, kSent);
    sack_advance(h);
    expect_scoreboard_well_formed(h);
    std::int64_t mismatch = -1;
    for (std::int64_t b = 0; b < kSent && mismatch < 0; ++b) {
      const bool want = b >= h.snd_una && before[b];
      if (scoreboard_sacked(h, b) != want) mismatch = b;
    }
    ASSERT_EQ(mismatch, -1) << "advance to " << h.snd_una
                            << " must crop exactly the bytes below it";
  }
}

TEST(SackLaws, PipeIdentityMatchesPerByteRecomputationAndIsBounded) {
  // RFC-6675-style pipe on reachable states: recompute sacked / lost /
  // rtx_out by classifying every in-flight byte independently, then check
  // each law and the identity pipe == inflight - sacked - lost + rtx_out,
  // plus 0 <= pipe <= inflight.
  for (int c = 0; c < kCases; ++c) {
    core::RngStream rng{0x919E + static_cast<std::uint64_t>(c)};
    HalfStream h;
    h.snd_una = rng.uniform_int(0, 5'000);
    h.snd_nxt = h.max_sent = h.snd_una + rng.uniform_int(0, 6'000);
    for (int op = 0; op < 10; ++op) {
      const std::int64_t lo = h.snd_una + rng.uniform_int(0, 6'000);
      (void)sack_record(h, lo, lo + rng.uniform_int(1, 800));
    }
    // high_rtx may sit anywhere, including stale values outside the window
    // (the laws clamp it); rescue retransmits never move it.
    h.high_rtx = rng.uniform_int(h.snd_una - 1'000, h.snd_nxt + 1'000);

    const std::int64_t fack = sack_fack(h);
    const std::int64_t rtx_ceil = std::clamp(h.high_rtx, h.snd_una, fack);
    std::int64_t sacked = 0;
    std::int64_t lost = 0;
    std::int64_t rtx_out = 0;
    for (std::int64_t b = h.snd_una; b < h.snd_nxt; ++b) {
      const bool s = scoreboard_sacked(h, b);
      if (s) ++sacked;
      if (!s && b < fack) ++lost;
      if (!s && b < rtx_ceil) ++rtx_out;
    }
    EXPECT_EQ(sack_sacked_bytes(h), sacked);
    EXPECT_EQ(sack_lost_bytes(h), lost);
    EXPECT_EQ(sack_rtx_out_bytes(h), rtx_out);
    const std::int64_t pipe = sack_pipe(h);
    EXPECT_EQ(pipe, h.inflight() - sacked - lost + rtx_out) << "pipe identity";
    EXPECT_GE(pipe, 0);
    EXPECT_LE(pipe, h.inflight());
    EXPECT_GE(fack, h.snd_una);
    EXPECT_LE(fack, h.snd_nxt) << "fack cannot pass the send high-water";
  }
}

TEST(SackLaws, BoundedListDropsUnmergeableBlocksWhenFull) {
  HalfStream h;
  h.snd_una = 0;
  h.snd_nxt = h.max_sent = 10'000;
  // Fill all 16 slots with disjoint, non-adjacent unit ranges.
  for (int i = 0; i < HalfStream::kMaxSackRanges; ++i) {
    EXPECT_EQ(sack_record(h, 100 + 20 * i, 100 + 20 * i + 5), 5);
  }
  ASSERT_EQ(h.sack_count, HalfStream::kMaxSackRanges);
  const std::int64_t sacked = sack_sacked_bytes(h);

  // An unmergeable block (strictly inside a gap, touching nothing) is
  // dropped whole; the scoreboard is untouched.
  HalfStream snapshot = h;
  EXPECT_EQ(sack_record(h, 110, 112), 0);
  EXPECT_EQ(h.sack_count, HalfStream::kMaxSackRanges);
  EXPECT_EQ(sack_sacked_bytes(h), sacked);
  for (int i = 0; i < h.sack_count; ++i) {
    EXPECT_EQ(h.sack_lo[i], snapshot.sack_lo[i]);
    EXPECT_EQ(h.sack_hi[i], snapshot.sack_hi[i]);
  }

  // A mergeable block still lands even at capacity: extending range 3
  // ([160, 165)) adds exactly the new bytes without growing the count.
  EXPECT_EQ(sack_record(h, 165, 170), 5);
  EXPECT_EQ(h.sack_count, HalfStream::kMaxSackRanges);
  EXPECT_EQ(sack_sacked_bytes(h), sacked + 5);

  // A spanning block collapses everything it bridges into one range.
  EXPECT_EQ(sack_record(h, 100, 100 + 20 * 16), 20 * 16 - sacked - 5);
  EXPECT_EQ(h.sack_count, 1);
  expect_scoreboard_well_formed(h);
}

TEST(SackLaws, RtoClearsTheScoreboardAndFallsBackToGoBackN) {
  core::RngStream rng{0x4707};
  const TcpParams p = params();
  for (int i = 0; i < kCases; ++i) {
    HalfStream h;
    h.snd_una = rng.uniform_int(0, 1'000'000);
    h.snd_nxt = h.max_sent = h.snd_una + rng.uniform_int(1, 64) * p.mss_bytes;
    h.cwnd = rng.uniform_int(p.mss_bytes, p.max_cwnd.count_bytes());
    h.in_recovery = rng.bernoulli(0.5);
    h.rescue_done = rng.bernoulli(0.5);
    h.high_rtx = rng.uniform_int(h.snd_una, h.snd_nxt);
    for (int op = 0; op < 6; ++op) {
      const std::int64_t lo = h.snd_una + rng.uniform_int(0, 40) * p.mss_bytes;
      (void)sack_record(h, lo, lo + p.mss_bytes);
    }
    const int backoff_before = static_cast<int>(rng.uniform_int(0, p.max_backoff + 2));
    h.backoff = backoff_before;

    apply_rto_sack(h, p);
    EXPECT_EQ(h.sack_count, 0) << "a timeout must not trust sacked ranges";
    EXPECT_EQ(sack_sacked_bytes(h), 0);
    EXPECT_FALSE(h.rescue_done);
    EXPECT_EQ(h.high_rtx, h.snd_una);
    EXPECT_EQ(h.snd_nxt, h.snd_una) << "go-back-N restarts from snd_una";
    EXPECT_EQ(h.cwnd, p.mss_bytes);
    EXPECT_FALSE(h.in_recovery);
    EXPECT_EQ(h.rtx_next, -1);
    EXPECT_EQ(h.backoff, std::min(backoff_before + 1, p.max_backoff));
  }
}

TEST(SackLaws, EnterSackRecoveryInvariants) {
  core::RngStream rng{0xE57E};
  const TcpParams p = params();
  for (int i = 0; i < kCases; ++i) {
    HalfStream h;
    h.snd_una = rng.uniform_int(0, 1'000'000);
    h.snd_nxt = h.max_sent = h.snd_una + rng.uniform_int(1, 64) * p.mss_bytes;
    h.cwnd = rng.uniform_int(p.mss_bytes, p.max_cwnd.count_bytes());
    h.dupacks = p.dupack_threshold;
    h.rescue_done = true;
    h.high_rtx = h.snd_nxt;  // stale episode state must be reset
    const std::int64_t inflight = h.inflight();

    enter_sack_recovery(h, p);
    EXPECT_TRUE(h.in_recovery);
    EXPECT_EQ(h.recover, h.snd_nxt) << "recovery point is the send high-water";
    EXPECT_EQ(h.ssthresh, ssthresh_on_loss(inflight, p.mss_bytes));
    EXPECT_EQ(h.cwnd, h.ssthresh) << "no dupack inflation: sack_pipe gates sending";
    EXPECT_EQ(h.high_rtx, h.snd_una);
    EXPECT_FALSE(h.rescue_done);
    EXPECT_EQ(h.dupacks, 0);
    EXPECT_EQ(h.rtx_next, -1) << "the NewReno hole cursor stays out of SACK episodes";
  }
}

TEST(SackLaws, ShouldEnterRecoveryTriggers) {
  const TcpParams p = params();
  const std::int64_t mss = p.mss_bytes;
  // Classic threshold: dupack_threshold dupacks suffice, scoreboard or not.
  {
    HalfStream h;
    h.snd_una = 0;
    h.snd_nxt = h.max_sent = 64 * mss;
    h.dupacks = p.dupack_threshold;
    EXPECT_TRUE(sack_should_enter_recovery(h, p));
    h.dupacks = p.dupack_threshold - 1;
    EXPECT_FALSE(sack_should_enter_recovery(h, p))
        << "an empty scoreboard adds no earlier trigger";
  }
  // RFC 6675 IsLost: dupack_threshold segments sacked above the hole prove
  // the loss before the dupack counter gets there.
  {
    HalfStream h;
    h.snd_una = 0;
    h.snd_nxt = h.max_sent = 64 * mss;
    h.dupacks = 1;
    (void)sack_record(h, mss, mss + p.dupack_threshold * mss);
    EXPECT_TRUE(sack_should_enter_recovery(h, p));
    HalfStream less;
    less.snd_una = 0;
    less.snd_nxt = less.max_sent = 64 * mss;
    less.dupacks = 1;
    (void)sack_record(less, mss, mss + (p.dupack_threshold * mss - 1));
    EXPECT_FALSE(sack_should_enter_recovery(less, p));
  }
  // RFC 5827 early retransmit: a 2-segment window can never yield 3
  // dupacks; one dupack plus one sacked segment is proof enough.
  {
    HalfStream h;
    h.snd_una = 0;
    h.snd_nxt = h.max_sent = 2 * mss;
    h.dupacks = 1;
    (void)sack_record(h, mss, 2 * mss);
    EXPECT_TRUE(sack_should_enter_recovery(h, p));
  }
  // Early retransmit never fires without SACK evidence (a lone dupack on a
  // tiny window could be reordering), nor on windows of 4+ segments.
  {
    HalfStream bare;
    bare.snd_una = 0;
    bare.snd_nxt = bare.max_sent = 2 * mss;
    bare.dupacks = 2;
    EXPECT_FALSE(sack_should_enter_recovery(bare, p));
    HalfStream wide;
    wide.snd_una = 0;
    wide.snd_nxt = wide.max_sent = 8 * mss;
    wide.dupacks = 1;
    (void)sack_record(wide, mss, 2 * mss);
    EXPECT_FALSE(sack_should_enter_recovery(wide, p));
  }
}

TEST(SackLaws, NextSegPrefersTheLowestHoleAboveHighRtx) {
  // Random scoreboards against a per-byte model of RFC 6675 NextSeg rule 1:
  // the chosen segment starts at the first unsacked byte at/above
  // max(snd_una, high_rtx) that precedes a sacked range, and never crosses
  // into sacked territory.
  for (int c = 0; c < kCases; ++c) {
    core::RngStream rng{0x6675 + static_cast<std::uint64_t>(c)};
    const std::int64_t mss = 100;
    HalfStream h;
    h.snd_una = rng.uniform_int(0, 2'000);
    h.demand = h.snd_una + rng.uniform_int(0, 8'000);
    h.snd_nxt = h.max_sent = std::min(h.demand, h.snd_una + rng.uniform_int(0, 8'000));
    for (int op = 0; op < 8; ++op) {
      const std::int64_t lo = h.snd_una + rng.uniform_int(0, 8'000);
      (void)sack_record(h, lo, lo + rng.uniform_int(1, 700));
    }
    h.high_rtx = rng.uniform_int(h.snd_una, h.snd_nxt + 1);
    h.in_recovery = true;
    h.recover = h.snd_nxt;
    h.rescue_done = true;  // isolate rules 1 and 2 from the rescue path

    const std::int64_t fack = sack_fack(h);
    std::int64_t hole = -1;
    for (std::int64_t b = std::max(h.snd_una, h.high_rtx); b < fack; ++b) {
      if (!scoreboard_sacked(h, b)) {
        hole = b;
        break;
      }
    }
    const SackNextSeg seg = sack_next_seg(h, mss);
    if (hole >= 0) {
      EXPECT_TRUE(seg.is_rtx);
      EXPECT_FALSE(seg.rescue);
      EXPECT_EQ(seg.seq, hole);
      EXPECT_GT(seg.len, 0);
      EXPECT_LE(seg.len, mss);
      for (std::int64_t b = seg.seq; b < seg.seq + seg.len; ++b) {
        ASSERT_FALSE(scoreboard_sacked(h, b))
            << "a retransmission must never resend sacked bytes";
      }
    } else if (h.snd_nxt < h.demand) {
      EXPECT_FALSE(seg.is_rtx) << "no holes left: send new data";
      EXPECT_EQ(seg.seq, h.snd_nxt);
      EXPECT_EQ(seg.len, std::min(mss, h.demand - h.snd_nxt));
    } else {
      EXPECT_LT(seg.seq, 0) << "nothing sendable";
    }
  }
}

TEST(SackLaws, RescueFiresOncePerEpisodeAndTargetsTheTail) {
  const TcpParams p = params();
  const std::int64_t mss = p.mss_bytes;
  HalfStream h;
  h.snd_una = 0;
  h.demand = h.snd_nxt = h.max_sent = 10 * mss;
  h.dupacks = p.dupack_threshold;
  enter_sack_recovery(h, p);
  // Everything below the recovery point is sacked except the tail segment:
  // no rule-1 hole (high_rtx past the front), no new data — only the
  // rescue can touch the unsacked tail.
  (void)sack_record(h, 0, 9 * mss);
  h.high_rtx = 9 * mss;

  const SackNextSeg rescue = sack_next_seg(h, mss);
  ASSERT_GE(rescue.seq, 0);
  EXPECT_TRUE(rescue.rescue);
  EXPECT_TRUE(rescue.is_rtx);
  EXPECT_EQ(rescue.seq, 9 * mss) << "the last unsacked chunk below recover";
  EXPECT_EQ(rescue.seq + rescue.len, h.recover);
  EXPECT_GE(rescue.seq, sack_fack(h));

  // One per episode: after the mux marks it done, the law yields nothing.
  h.rescue_done = true;
  EXPECT_LT(sack_next_seg(h, mss).seq, 0);
  // And a fully-sacked recovery window never needs one.
  HalfStream full = h;
  full.rescue_done = false;
  (void)sack_record(full, 9 * mss, 10 * mss);
  EXPECT_LT(sack_next_seg(full, mss).seq, 0);
}

TEST(SackLaws, ReceiverSackBlockReportsTheMaximalContiguousRange) {
  const TcpParams p = params();
  const std::int64_t mss = p.mss_bytes;
  // Deterministic walk first: the block always covers the out-of-order
  // segment that just landed, grown to its maximal contiguous extent.
  HalfStream h;
  receiver_deliver(h, 0, mss, false);
  EXPECT_EQ(receiver_sack_block(h, 0, mss).hi, 0) << "in-order data: no block";
  receiver_deliver(h, 3 * mss, mss, false);
  SackBlock b = receiver_sack_block(h, 3 * mss, 4 * mss);
  EXPECT_EQ(b.lo, 3 * mss);
  EXPECT_EQ(b.hi, 4 * mss);
  receiver_deliver(h, 5 * mss, mss, false);
  b = receiver_sack_block(h, 5 * mss, 6 * mss);
  EXPECT_EQ(b.lo, 5 * mss) << "the block tracks the segment that triggered the ACK";
  EXPECT_EQ(b.hi, 6 * mss);
  receiver_deliver(h, 4 * mss, mss, false);
  b = receiver_sack_block(h, 4 * mss, 5 * mss);
  EXPECT_EQ(b.lo, 3 * mss) << "bridging segment merges to the maximal range";
  EXPECT_EQ(b.hi, 6 * mss);
  // A duplicate of already-consumed data reports the lowest buffered range
  // (the hole in front of it is what the sender must repair).
  b = receiver_sack_block(h, 0, mss);
  EXPECT_EQ(b.lo, 3 * mss);
  EXPECT_EQ(b.hi, 6 * mss);
  receiver_deliver(h, mss, 2 * mss, false);  // fill the hole
  EXPECT_EQ(h.rcv_nxt, 6 * mss);
  EXPECT_EQ(h.ooo_count, 0);
  EXPECT_EQ(receiver_sack_block(h, mss, 3 * mss).hi, 0) << "nothing buffered: no block";

  // Randomized: whatever arrival order, a reported block never overlaps
  // the consumed prefix and only ever names delivered bytes.
  for (int c = 0; c < kCases; ++c) {
    core::RngStream rng{0x0B10 + static_cast<std::uint64_t>(c)};
    HalfStream r;
    const int nseg = static_cast<int>(rng.uniform_int(2, 16));
    std::vector<bool> delivered(static_cast<std::size_t>(nseg), false);
    for (int op = 0; op < 3 * nseg; ++op) {
      const std::int64_t seg = rng.uniform_int(0, nseg - 1);
      const std::int64_t seq = seg * mss;
      receiver_deliver(r, seq, mss, false);
      delivered[static_cast<std::size_t>(seg)] = true;
      const SackBlock blk = receiver_sack_block(r, seq, seq + mss);
      if (r.ooo_count == 0) {
        EXPECT_EQ(blk.hi, blk.lo);
        continue;
      }
      ASSERT_GT(blk.hi, blk.lo);
      EXPECT_GE(blk.lo, r.rcv_nxt) << "blocks never overlap the cumulative prefix";
      EXPECT_EQ(blk.lo % mss, 0);
      for (std::int64_t byte_seg = blk.lo / mss; byte_seg < (blk.hi + mss - 1) / mss;
           ++byte_seg) {
        ASSERT_TRUE(delivered[static_cast<std::size_t>(byte_seg)])
            << "a block may only name bytes that actually arrived";
      }
    }
  }
}

}  // namespace
}  // namespace fbdcsim::transport
