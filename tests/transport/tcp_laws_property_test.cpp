// Property suite for the pure congestion-control laws in transport/tcp.h.
// These are the functions the mux applies on every ACK / loss signal; the
// suite drives them with seeded random inputs (200 cases per property) so
// the Reno/NewReno invariants hold over the whole operating envelope, not
// just the handful of trajectories the rack simulations happen to visit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "fbdcsim/core/rng.h"
#include "fbdcsim/transport/tcp.h"

namespace fbdcsim::transport {
namespace {

constexpr int kCases = 200;

TcpParams params() { return TcpParams{}; }

TEST(TcpLaws, CwndAfterAckIsMonotoneNonDecreasingAndCapped) {
  core::RngStream rng{0xC0FFEE};
  const TcpParams p = params();
  const std::int64_t cap = p.max_cwnd.count_bytes();
  for (int i = 0; i < kCases; ++i) {
    const std::int64_t cwnd = rng.uniform_int(1, cap);
    const std::int64_t ssthresh = rng.uniform_int(2 * p.mss_bytes, cap);
    const std::int64_t acked = rng.uniform_int(0, 4 * p.mss_bytes);
    const std::int64_t next = cwnd_after_ack(cwnd, ssthresh, acked, p.mss_bytes, cap);
    EXPECT_GE(next, cwnd) << "cwnd must never shrink on an ACK";
    EXPECT_LE(next, cap) << "cwnd must respect the max_cwnd cap";
    if (acked > 0 && cwnd < cap) {
      EXPECT_GT(next, cwnd) << "growth never stalls below the cap";
    }
    if (acked == 0) {
      EXPECT_EQ(next, cwnd);
    }
  }
}

TEST(TcpLaws, SlowStartDoublesPerRttCongestionAvoidanceIsLinear) {
  const TcpParams p = params();
  const std::int64_t cap = p.max_cwnd.count_bytes();
  // Slow start: acking a full cwnd of data in MSS chunks doubles cwnd.
  std::int64_t cwnd = 10 * p.mss_bytes;
  const std::int64_t ssthresh = 1'000 * p.mss_bytes;
  std::int64_t acked_total = cwnd;
  std::int64_t start = cwnd;
  while (acked_total > 0) {
    cwnd = cwnd_after_ack(cwnd, ssthresh, p.mss_bytes, p.mss_bytes, cap);
    acked_total -= p.mss_bytes;
  }
  EXPECT_EQ(cwnd, 2 * start);

  // Congestion avoidance: one RTT of full-MSS ACKs grows cwnd ~one MSS.
  std::int64_t ca = 100 * p.mss_bytes;  // above ssthresh below
  const std::int64_t before = ca;
  const int acks = static_cast<int>(before / p.mss_bytes);
  for (int i = 0; i < acks; ++i) {
    ca = cwnd_after_ack(ca, 2 * p.mss_bytes, p.mss_bytes, p.mss_bytes, cap);
  }
  EXPECT_NEAR(static_cast<double>(ca - before), static_cast<double>(p.mss_bytes),
              static_cast<double>(p.mss_bytes) * 0.10);
}

TEST(TcpLaws, SsthreshOnLossHalvesInflightWithFloor) {
  core::RngStream rng{0xBEEF};
  const TcpParams p = params();
  for (int i = 0; i < kCases; ++i) {
    const std::int64_t inflight = rng.uniform_int(0, 1'000'000);
    const std::int64_t s = ssthresh_on_loss(inflight, p.mss_bytes);
    EXPECT_GE(s, 2 * p.mss_bytes) << "floor of two segments";
    EXPECT_GE(s, inflight / 2);
    if (inflight / 2 >= 2 * p.mss_bytes) {
      EXPECT_EQ(s, inflight / 2);
    }
  }
}

TEST(TcpLaws, FastRecoveryEntryInvariants) {
  core::RngStream rng{0xFACE};
  const TcpParams p = params();
  for (int i = 0; i < kCases; ++i) {
    HalfStream h;
    h.snd_una = rng.uniform_int(0, 1'000'000);
    h.snd_nxt = h.snd_una + rng.uniform_int(0, 64) * p.mss_bytes;
    h.max_sent = h.snd_nxt;
    h.cwnd = rng.uniform_int(p.mss_bytes, p.max_cwnd.count_bytes());
    h.dupacks = p.dupack_threshold;
    enter_fast_recovery(h, p);
    EXPECT_TRUE(h.in_recovery);
    EXPECT_EQ(h.recover, h.snd_nxt) << "recovery point is the send high-water";
    EXPECT_EQ(h.rtx_next, h.snd_una) << "the first hole retransmits immediately";
    EXPECT_EQ(h.cwnd, h.ssthresh + p.dupack_threshold * p.mss_bytes)
        << "window inflates by the dupack threshold";
    EXPECT_EQ(h.dupacks, 0);
    EXPECT_EQ(h.ssthresh, ssthresh_on_loss(h.inflight(), p.mss_bytes));
  }
}

TEST(TcpLaws, RtoCollapsesWindowAndRewindsGoBackN) {
  core::RngStream rng{0xD00D};
  const TcpParams p = params();
  for (int i = 0; i < kCases; ++i) {
    HalfStream h;
    h.snd_una = rng.uniform_int(0, 1'000'000);
    h.snd_nxt = h.snd_una + rng.uniform_int(1, 64) * p.mss_bytes;
    h.max_sent = h.snd_nxt;
    h.cwnd = rng.uniform_int(p.mss_bytes, p.max_cwnd.count_bytes());
    h.in_recovery = rng.bernoulli(0.5);
    h.rtx_next = rng.bernoulli(0.5) ? h.snd_una : -1;
    const int backoff_before = static_cast<int>(rng.uniform_int(0, p.max_backoff + 2));
    h.backoff = backoff_before;
    apply_rto(h, p);
    EXPECT_EQ(h.cwnd, p.mss_bytes) << "RTO collapses cwnd to one segment";
    EXPECT_EQ(h.snd_nxt, h.snd_una) << "go-back-N restarts from snd_una";
    EXPECT_FALSE(h.in_recovery);
    EXPECT_EQ(h.rtx_next, -1);
    EXPECT_EQ(h.backoff, std::min(backoff_before + 1, p.max_backoff))
        << "backoff exponent grows but saturates";
  }
}

TEST(TcpLaws, ReceiverDeliversEveryPermutationExactlyOnce) {
  // Bytes conservation at the receiver: any arrival order of the segments
  // of a stream (with duplicates sprinkled in) ends with rcv_nxt == total
  // and no leftover out-of-order state. 200 seeded shuffles.
  const TcpParams p = params();
  for (int c = 0; c < kCases; ++c) {
    core::RngStream rng{0x5EED + static_cast<std::uint64_t>(c)};
    const int nseg = static_cast<int>(rng.uniform_int(1, 24));
    std::vector<int> order(static_cast<std::size_t>(nseg));
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng.engine());

    HalfStream h;
    const std::int64_t total = static_cast<std::int64_t>(nseg) * p.mss_bytes;
    // The bounded reorder buffer (8 ranges) can drop far-ahead segments;
    // real senders retransmit. Loop delivery rounds until drained.
    int rounds = 0;
    while (h.rcv_nxt < total && rounds < 64) {
      ++rounds;
      for (const int seg : order) {
        const std::int64_t seq = static_cast<std::int64_t>(seg) * p.mss_bytes;
        if (seq + p.mss_bytes <= h.rcv_nxt && !rng.bernoulli(0.2)) continue;
        receiver_deliver(h, seq, p.mss_bytes, seg == nseg - 1);
      }
    }
    EXPECT_EQ(h.rcv_nxt, total) << "seed case " << c;
    EXPECT_EQ(h.ooo_count, 0) << "no out-of-order residue once in-order";
  }
}

TEST(TcpLaws, ReceiverAckPolicy) {
  const TcpParams p = params();
  HalfStream h;
  // In-order, no PSH: delayed ACK fires on every second segment.
  EXPECT_FALSE(receiver_deliver(h, 0, p.mss_bytes, false));
  EXPECT_TRUE(receiver_deliver(h, p.mss_bytes, p.mss_bytes, false));
  EXPECT_FALSE(receiver_deliver(h, 2 * p.mss_bytes, p.mss_bytes, false));
  // PSH forces an immediate ACK.
  EXPECT_TRUE(receiver_deliver(h, 3 * p.mss_bytes, p.mss_bytes, true));
  // A gap forces an immediate (duplicate) ACK and does not advance.
  EXPECT_TRUE(receiver_deliver(h, 6 * p.mss_bytes, p.mss_bytes, false));
  EXPECT_EQ(h.rcv_nxt, 4 * p.mss_bytes);
  // Filling the gap merges and ACKs immediately.
  EXPECT_TRUE(receiver_deliver(h, 4 * p.mss_bytes, 2 * p.mss_bytes, false));
  EXPECT_EQ(h.rcv_nxt, 7 * p.mss_bytes);
  EXPECT_EQ(h.ooo_count, 0);
  // A pure duplicate re-ACKs immediately.
  EXPECT_TRUE(receiver_deliver(h, 0, p.mss_bytes, false));
  EXPECT_EQ(h.rcv_nxt, 7 * p.mss_bytes);
}

}  // namespace
}  // namespace fbdcsim::transport
