// Property suite for the pure DCTCP laws (transport/tcp.h) and the switch
// marking predicate (switching/switch.h). Same discipline as
// tcp_laws_property_test: 200 seeded cases per property, exercising the
// whole operating envelope rather than the trajectories rack runs visit.
// The rack-level counterpart (kDctcp with marking disabled bitwise equal
// to kNewReno end to end) lives in dctcp_differential_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fbdcsim/core/rng.h"
#include "fbdcsim/switching/switch.h"
#include "fbdcsim/transport/tcp.h"

namespace fbdcsim::transport {
namespace {

constexpr int kCases = 200;

TEST(DctcpLaws, AlphaStaysWithinUnitBounds) {
  core::RngStream rng{0xD0C7C9};
  for (int i = 0; i < kCases; ++i) {
    // Adversarial inputs: out-of-range alpha, marked > acked, zero acked.
    const std::int64_t alpha = rng.uniform_int(-kDctcpAlphaUnit, 3 * kDctcpAlphaUnit);
    const std::int64_t acked = rng.uniform_int(0, 1 << 22);
    const std::int64_t marked = rng.uniform_int(-1000, (1 << 22) + 1000);
    const int gain = static_cast<int>(rng.uniform_int(1, 8));
    const std::int64_t next = dctcp_alpha_update(alpha, marked, acked, gain);
    EXPECT_GE(next, 0) << "alpha must never go negative";
    EXPECT_LE(next, kDctcpAlphaUnit) << "alpha must never exceed 1.0";
  }
}

TEST(DctcpLaws, AlphaConvergesToConstantMarkFraction) {
  core::RngStream rng{0xA1FA};
  const TcpParams p;
  for (int i = 0; i < kCases; ++i) {
    const std::int64_t acked = rng.uniform_int(1460, 64 * 1460);
    const std::int64_t marked = rng.uniform_int(0, acked);
    std::int64_t alpha = rng.uniform_int(0, kDctcpAlphaUnit);
    // A few hundred windows at the default gain (1/16) is far past the
    // EWMA's time constant; the fixed point of
    //   alpha' = alpha - alpha/2^g + F/2^g
    // is F, up to the 2^g-unit quantization of the two shift terms.
    for (int step = 0; step < 512; ++step) {
      alpha = dctcp_alpha_update(alpha, marked, acked, p.dctcp_gain_shift);
    }
    const std::int64_t fraction_q16 = marked * kDctcpAlphaUnit / acked;
    EXPECT_NEAR(static_cast<double>(alpha), static_cast<double>(fraction_q16),
                static_cast<double>(2 << p.dctcp_gain_shift))
        << "alpha must settle at the steady mark fraction (F=" << fraction_q16 << ")";
  }
}

TEST(DctcpLaws, AlphaWithZeroMarksDecaysMonotonicallyToExactlyZero) {
  core::RngStream rng{0x2E80};
  const TcpParams p;
  for (int i = 0; i < kCases; ++i) {
    std::int64_t alpha = rng.uniform_int(1, kDctcpAlphaUnit);
    const std::int64_t acked = rng.uniform_int(1, 1 << 22);
    std::int64_t prev = alpha;
    int steps = 0;
    while (alpha > 0 && steps < 100'000) {
      alpha = dctcp_alpha_update(alpha, 0, acked, p.dctcp_gain_shift);
      EXPECT_LT(alpha, prev) << "zero-mark windows must strictly decay alpha";
      prev = alpha;
      ++steps;
    }
    EXPECT_EQ(alpha, 0) << "alpha must reach exactly 0, not stall on the integer floor";
  }
}

TEST(DctcpLaws, CwndAfterMarkNeverBelowOneMssAndNeverGrows) {
  core::RngStream rng{0xC0DE};
  const TcpParams p;
  for (int i = 0; i < kCases; ++i) {
    const std::int64_t cwnd = rng.uniform_int(1, p.max_cwnd.count_bytes());
    const std::int64_t alpha = rng.uniform_int(-1000, kDctcpAlphaUnit + 1000);
    const std::int64_t next = dctcp_cwnd_after_mark(cwnd, alpha, p.mss_bytes);
    EXPECT_GE(next, p.mss_bytes) << "reduction must floor at one MSS";
    EXPECT_LE(next, std::max(cwnd, p.mss_bytes)) << "a mark must never grow cwnd";
  }
}

TEST(DctcpLaws, FullAlphaHalvesLikeRenoZeroAlphaIsIdentity) {
  core::RngStream rng{0x50F7};
  const TcpParams p;
  for (int i = 0; i < kCases; ++i) {
    const std::int64_t cwnd = rng.uniform_int(2 * p.mss_bytes, p.max_cwnd.count_bytes());
    // alpha = 1.0: cwnd(1 - 1/2) — the Reno halving.
    EXPECT_EQ(dctcp_cwnd_after_mark(cwnd, kDctcpAlphaUnit, p.mss_bytes),
              std::max(p.mss_bytes, cwnd - cwnd / 2));
    // alpha = 0: a DCTCP sender that has seen no marks reacts to a stray
    // ECE with the identity — the law-level half of the "zero marks is
    // bitwise NewReno" property (the growth path shares cwnd_after_ack).
    EXPECT_EQ(dctcp_cwnd_after_mark(cwnd, 0, p.mss_bytes), cwnd);
  }
}

TEST(DctcpLaws, ZeroMarkWindowsShareTheNewRenoGrowthLawBitwise) {
  core::RngStream rng{0x1DE7};
  const TcpParams p;
  const std::int64_t cap = p.max_cwnd.count_bytes();
  for (int i = 0; i < kCases; ++i) {
    // Two senders — one Reno, one DCTCP with zero marks — fed the same
    // random ACK trajectory. The DCTCP sender additionally runs its alpha
    // EWMA each window; its cwnd must stay bitwise equal throughout
    // because an unmarked window never touches cwnd outside
    // cwnd_after_ack.
    std::int64_t reno_cwnd = rng.uniform_int(p.mss_bytes, cap);
    std::int64_t dctcp_cwnd = reno_cwnd;
    std::int64_t alpha = rng.uniform_int(0, kDctcpAlphaUnit);
    const std::int64_t ssthresh = rng.uniform_int(2 * p.mss_bytes, cap);
    for (int step = 0; step < 64; ++step) {
      const std::int64_t acked = rng.uniform_int(1, 3 * p.mss_bytes);
      reno_cwnd = cwnd_after_ack(reno_cwnd, ssthresh, acked, p.mss_bytes, cap);
      dctcp_cwnd = cwnd_after_ack(dctcp_cwnd, ssthresh, acked, p.mss_bytes, cap);
      alpha = dctcp_alpha_update(alpha, 0, acked, p.dctcp_gain_shift);
      ASSERT_EQ(dctcp_cwnd, reno_cwnd) << "step " << step;
    }
  }
}

TEST(DctcpLaws, MarkingThresholdIsMonotone) {
  core::RngStream rng{0xECEC};
  for (int i = 0; i < kCases; ++i) {
    // A random occupancy trajectory marked under two thresholds K1 < K2:
    // everything marked at the laxer K2 must also mark at K1 — raising K
    // never marks a packet the lower threshold spared.
    const std::int64_t k1 = rng.uniform_int(1, 1 << 22);
    const std::int64_t k2 = k1 + rng.uniform_int(1, 1 << 22);
    for (int s = 0; s < 32; ++s) {
      const std::int64_t occupancy = rng.uniform_int(0, 1 << 23);
      const core::Ecn ecn = rng.uniform_int(0, 1) != 0 ? core::Ecn::kEct : core::Ecn::kNotEct;
      const bool low = switching::ecn_should_mark(occupancy, k1, ecn);
      const bool high = switching::ecn_should_mark(occupancy, k2, ecn);
      EXPECT_LE(high, low) << "K=" << k2 << " marked a packet K=" << k1 << " spared";
      if (ecn == core::Ecn::kNotEct) {
        EXPECT_FALSE(low) << "non-ECT packets must never be marked";
      }
      EXPECT_FALSE(switching::ecn_should_mark(occupancy, 0, ecn))
          << "threshold 0 disables marking entirely";
    }
  }
}

}  // namespace
}  // namespace fbdcsim::transport
