// Loss-scenario conformance suite: deterministic scripted-loss runs (see
// tests/support/scripted_loss.h) pinning how each LossRecovery law repairs
// canonical loss shapes — single hole, clustered holes, independent spaced
// holes, a contiguous burst, full tail loss, penultimate-segment loss, and
// a lost retransmission. Every scenario runs under BOTH laws and asserts
// exact retransmit counts, timeout counts, and recovery-time bounds; the
// intra-rack RTT is microseconds while min_rto is 200 ms, so "repaired by
// dupacks" versus "waited for the timer" differ by three orders of
// magnitude and the bounds have enormous margins.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "../support/scripted_loss.h"
#include "fbdcsim/transport/params.h"

namespace fbdcsim::transport {
namespace {

using tests::ScenarioOutcome;
using tests::run_loss_scenario;

const core::Duration kMinRto = TcpParams{}.min_rto;

/// Drops attempt 1 of every listed segment.
tests::ScriptedDrop drop_once(std::vector<std::int64_t> segments) {
  return [segments = std::move(segments)](std::int64_t segment, int attempt) {
    if (attempt != 1) return false;
    for (const std::int64_t s : segments) {
      if (s == segment) return true;
    }
    return false;
  };
}

TEST(LossScenario, LosslessBaselineIsIdenticalAcrossRecoveryLaws) {
  // With nothing to recover, the two laws must not differ by a single
  // segment or nanosecond — the scoreboard only engages on loss evidence.
  const ScenarioOutcome reno = run_loss_scenario(LossRecovery::kNewReno, 60, nullptr);
  const ScenarioOutcome sack = run_loss_scenario(LossRecovery::kSack, 60, nullptr);
  for (const ScenarioOutcome* o : {&reno, &sack}) {
    EXPECT_TRUE(o->completed);
    EXPECT_EQ(o->stats.retransmit_segments, 0);
    EXPECT_EQ(o->stats.rto_fired, 0);
    EXPECT_EQ(o->stats.sack_blocks_recorded, 0);
    EXPECT_EQ(o->stats.sack_retransmits, 0);
  }
  EXPECT_EQ(sack.stats.segments_sent, reno.stats.segments_sent);
  EXPECT_EQ(sack.completion.count_nanos(), reno.completion.count_nanos());
}

TEST(LossScenario, SingleHoleRepairsByDupacksWithoutTimeout) {
  // One lost segment mid-stream: both laws see the dupack burst from the
  // eight segments behind the hole, retransmit exactly the hole (dupack
  // kind), and never touch the timer.
  for (const LossRecovery rec : {LossRecovery::kNewReno, LossRecovery::kSack}) {
    const ScenarioOutcome o = run_loss_scenario(rec, 60, drop_once({20}));
    ASSERT_TRUE(o.completed) << to_string(rec);
    EXPECT_EQ(o.dropped_frames, 1) << to_string(rec);
    EXPECT_EQ(o.stats.retransmit_segments, 1) << to_string(rec);
    EXPECT_EQ(o.stats.rtx_dupack_segments, 1) << to_string(rec);
    EXPECT_EQ(o.stats.rtx_rto_segments, 0) << to_string(rec);
    EXPECT_EQ(o.stats.fast_retransmits, 1) << to_string(rec);
    EXPECT_EQ(o.stats.rto_fired, 0) << to_string(rec);
    EXPECT_LT(o.completion.count_nanos(), kMinRto.count_nanos()) << to_string(rec);
    if (rec == LossRecovery::kSack) {
      EXPECT_GT(o.stats.sack_blocks_recorded, 0) << "dupacks must carry blocks";
      EXPECT_EQ(o.stats.sack_retransmits, 1);
      EXPECT_EQ(o.stats.sack_rescue_retransmits, 0);
    }
  }
}

TEST(LossScenario, TwoHolesInOneWindowAreOneEpisode) {
  // Two holes three segments apart, both inside one window: a single
  // fast-recovery episode repairs both. NewReno learns the second hole
  // only from the partial ACK; the scoreboard exposes it immediately —
  // identical retransmit counts, and SACK finishes no later.
  const auto drop = drop_once({20, 23});
  const ScenarioOutcome reno = run_loss_scenario(LossRecovery::kNewReno, 60, drop);
  const ScenarioOutcome sack = run_loss_scenario(LossRecovery::kSack, 60, drop);
  for (const auto& [name, o] :
       {std::pair<const char*, const ScenarioOutcome&>{"newreno", reno}, {"sack", sack}}) {
    ASSERT_TRUE(o.completed) << name;
    EXPECT_EQ(o.dropped_frames, 2) << name;
    EXPECT_EQ(o.stats.retransmit_segments, 2) << name;
    EXPECT_EQ(o.stats.rtx_dupack_segments, 2) << name;
    EXPECT_EQ(o.stats.fast_retransmits, 1) << name << ": one episode covers both holes";
    EXPECT_EQ(o.stats.rto_fired, 0) << name;
    EXPECT_LT(o.completion.count_nanos(), kMinRto.count_nanos()) << name;
  }
  EXPECT_EQ(sack.stats.sack_retransmits, 2);
  EXPECT_LE(sack.completion.count_nanos(), reno.completion.count_nanos());
}

TEST(LossScenario, SpacedHolesAreIndependentEpisodes) {
  // Three holes wider apart than the window: three separate fast-recovery
  // episodes, one retransmission each, no timeout — under both laws.
  const auto drop = drop_once({20, 35, 50});
  const ScenarioOutcome reno = run_loss_scenario(LossRecovery::kNewReno, 60, drop);
  const ScenarioOutcome sack = run_loss_scenario(LossRecovery::kSack, 60, drop);
  for (const auto& [name, o] :
       {std::pair<const char*, const ScenarioOutcome&>{"newreno", reno}, {"sack", sack}}) {
    ASSERT_TRUE(o.completed) << name;
    EXPECT_EQ(o.dropped_frames, 3) << name;
    EXPECT_EQ(o.stats.retransmit_segments, 3) << name;
    EXPECT_EQ(o.stats.rtx_dupack_segments, 3) << name;
    EXPECT_EQ(o.stats.fast_retransmits, 3) << name << ": one episode per hole";
    EXPECT_EQ(o.stats.rto_fired, 0) << name;
    EXPECT_LT(o.completion.count_nanos(), kMinRto.count_nanos()) << name;
  }
  EXPECT_EQ(sack.stats.sack_retransmits, 3);
  EXPECT_LE(sack.completion.count_nanos(), reno.completion.count_nanos());
}

TEST(LossScenario, BurstLossSackNeverResendsDeliveredBytes) {
  // Four contiguous losses in one window. NewReno's partial-ACK loop goes
  // blind after the first hole and re-sends segments the receiver already
  // buffered (the classic multiple-loss inefficiency); the scoreboard
  // proves exactly which bytes are missing, so SACK retransmits the four
  // holes and nothing else, and finishes strictly sooner.
  const auto drop = drop_once({20, 21, 22, 23});
  const ScenarioOutcome reno = run_loss_scenario(LossRecovery::kNewReno, 60, drop);
  const ScenarioOutcome sack = run_loss_scenario(LossRecovery::kSack, 60, drop);

  ASSERT_TRUE(reno.completed);
  ASSERT_TRUE(sack.completed);
  EXPECT_EQ(reno.dropped_frames, 4);
  EXPECT_EQ(sack.dropped_frames, 4);
  EXPECT_EQ(reno.stats.rto_fired, 0);
  EXPECT_EQ(sack.stats.rto_fired, 0);
  EXPECT_GT(reno.stats.retransmit_segments, 4)
      << "NewReno must pay spurious retransmissions for a burst";
  EXPECT_EQ(sack.stats.retransmit_segments, 4) << "SACK resends the holes, exactly";
  EXPECT_EQ(sack.stats.sack_retransmits, 4);
  EXPECT_LT(sack.stats.retransmit_segments, reno.stats.retransmit_segments);
  EXPECT_LT(sack.completion.count_nanos(), reno.completion.count_nanos());
  EXPECT_LT(reno.completion.count_nanos(), kMinRto.count_nanos())
      << "even NewReno repairs the burst without the timer";
}

TEST(LossScenario, FullTailLossWaitsForTheTimerUnderBothLaws) {
  // The last three segments all vanish: nothing arrives after the holes,
  // so no dupacks and no SACK blocks exist — selective acknowledgments
  // cannot beat physics. Both laws wait out min_rto, then go-back-N
  // resends the tail (the three lost segments plus the delayed-ACK
  // straggler in front of them that was never cumulatively acknowledged).
  for (const LossRecovery rec : {LossRecovery::kNewReno, LossRecovery::kSack}) {
    const ScenarioOutcome o = run_loss_scenario(rec, 30, drop_once({27, 28, 29}));
    ASSERT_TRUE(o.completed) << to_string(rec);
    EXPECT_EQ(o.dropped_frames, 3) << to_string(rec);
    EXPECT_EQ(o.stats.rto_fired, 1) << to_string(rec);
    EXPECT_EQ(o.stats.retransmit_segments, 4) << to_string(rec);
    EXPECT_EQ(o.stats.rtx_rto_segments, 4) << to_string(rec);
    EXPECT_EQ(o.stats.rtx_dupack_segments, 0) << to_string(rec);
    EXPECT_GE(o.completion.count_nanos(), kMinRto.count_nanos()) << to_string(rec);
    EXPECT_LT(o.completion.count_nanos(), 2 * kMinRto.count_nanos()) << to_string(rec);
    if (rec == LossRecovery::kSack) {
      EXPECT_EQ(o.stats.sack_blocks_recorded, 0)
          << "nothing arrived above the hole: no blocks to report";
      EXPECT_EQ(o.stats.sack_retransmits, 0);
    }
  }
}

TEST(LossScenario, PenultimateLossSackEarlyRetransmitBeatsNewRenoTimeout) {
  // The second-to-last segment is lost; exactly one segment lands above
  // the hole, producing ONE dupack carrying one SACK block. NewReno's
  // blind 3-dupack threshold can never fire, so it eats a 200 ms timeout.
  // The scoreboard knows only two segments are outstanding (RFC 5827
  // early retransmit) and repairs within the RTT — the headline case
  // where SACK converts an RTO stall into dupack-driven repair.
  const auto drop = drop_once({28});
  const ScenarioOutcome reno = run_loss_scenario(LossRecovery::kNewReno, 30, drop);
  const ScenarioOutcome sack = run_loss_scenario(LossRecovery::kSack, 30, drop);

  ASSERT_TRUE(reno.completed);
  EXPECT_EQ(reno.stats.rto_fired, 1) << "one dupack < threshold: NewReno must time out";
  EXPECT_EQ(reno.stats.rtx_dupack_segments, 0);
  EXPECT_GE(reno.completion.count_nanos(), kMinRto.count_nanos());

  ASSERT_TRUE(sack.completed);
  EXPECT_EQ(sack.stats.rto_fired, 0) << "early retransmit must preempt the timer";
  EXPECT_EQ(sack.stats.retransmit_segments, 1);
  EXPECT_EQ(sack.stats.rtx_dupack_segments, 1);
  EXPECT_EQ(sack.stats.sack_retransmits, 1);
  EXPECT_EQ(sack.stats.sack_blocks_recorded, 1);
  EXPECT_LT(sack.completion.count_nanos(), kMinRto.count_nanos());
  EXPECT_LT(sack.completion.count_nanos(), reno.completion.count_nanos());
}

TEST(LossScenario, LostRetransmissionFallsBackToTheTimerUnderBothLaws) {
  // The fast retransmission of the hole is ALSO lost (attempts 1 and 2
  // both dropped). Neither law re-retransmits on dupack evidence alone —
  // RFC 6675's high_rtx excludes re-sent holes precisely to avoid
  // retransmission storms — so both wait for the timer, whose go-back-N
  // resend (attempt 3) finally lands. The recovery COST differs sharply:
  // NewReno's inflated window keeps pushing new data the stalled receiver
  // must shed (its reorder buffer is bounded), all of which go-back-N then
  // re-sends; SACK's pipe accounting keeps the episode small.
  auto drop = [](std::int64_t segment, int attempt) {
    return segment == 20 && attempt <= 2;
  };
  const ScenarioOutcome reno = run_loss_scenario(LossRecovery::kNewReno, 60, drop);
  const ScenarioOutcome sack = run_loss_scenario(LossRecovery::kSack, 60, drop);
  for (const auto& [name, o] :
       {std::pair<const char*, const ScenarioOutcome&>{"newreno", reno}, {"sack", sack}}) {
    ASSERT_TRUE(o.completed) << name;
    EXPECT_EQ(o.dropped_frames, 2) << name;
    EXPECT_EQ(o.stats.rto_fired, 1) << name;
    EXPECT_EQ(o.stats.rtx_dupack_segments, 1)
        << name << ": exactly the dropped fast retransmit";
    EXPECT_GE(o.completion.count_nanos(), kMinRto.count_nanos()) << name;
  }
  EXPECT_EQ(sack.stats.sack_retransmits, 1);
  EXPECT_LT(sack.stats.retransmit_segments, reno.stats.retransmit_segments)
      << "pipe accounting must shrink the post-timeout go-back-N stream";
  EXPECT_LT(sack.stats.segments_sent, reno.stats.segments_sent)
      << "no inflation flood while the retransmission is in limbo";
}

}  // namespace
}  // namespace fbdcsim::transport
