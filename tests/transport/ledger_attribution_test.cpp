// Exact-pin causal attribution (DESIGN.md §14): a scripted drop with a
// known segment index must surface in the FlowLedger as a drop event with
// that exact seq/len and cause "scripted", claimed by the retransmission
// that repairs it — through fast recovery (dupack path) and through a tail
// RTO (go-back-N path) alike.
#include <cstdint>

#include <gtest/gtest.h>

#include "../support/scripted_loss.h"
#include "fbdcsim/telemetry/flow_ledger.h"
#include "fbdcsim/transport/params.h"

namespace fbdcsim::tests {
namespace {

using telemetry::FlowDropCause;
using telemetry::FlowEpisodeKind;
using telemetry::FlowLedger;
using telemetry::FlowLedgerDump;
using telemetry::FlowLedgerRecord;
using telemetry::FlowRtxKind;

constexpr std::int64_t kMss = transport::TcpParams{}.mss_bytes;

FlowLedgerRecord single_record(FlowLedger& ledger) {
  ledger.finalize(0);
  const FlowLedgerDump dump = ledger.snapshot();
  EXPECT_EQ(dump.records.size(), 1u);
  EXPECT_EQ(dump.stray_events, 0);
  return dump.records.empty() ? FlowLedgerRecord{} : dump.records[0];
}

TEST(LedgerAttributionPin, ScriptedHoleClaimedByFastRetransmit) {
  FlowLedger ledger{/*source_id=*/0, 64};
  const ScenarioOutcome out = run_loss_scenario(
      transport::LossRecovery::kSack, /*segments=*/8,
      [](std::int64_t segment, int attempt) { return segment == 3 && attempt == 1; },
      core::Duration::seconds(10), /*window_segments=*/9, &ledger);
  ASSERT_TRUE(out.completed);
  ASSERT_EQ(out.dropped_frames, 1);

  const FlowLedgerRecord r = single_record(ledger);
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.bytes, 8 * kMss);
  // Exactly the scripted drop, at exactly segment 3's sequence range.
  ASSERT_EQ(r.drop_count, 1u);
  EXPECT_EQ(r.drops_total, 1);
  EXPECT_EQ(r.drops[0].seq, 3 * kMss);
  EXPECT_EQ(r.drops[0].len, kMss);
  EXPECT_EQ(r.drops[0].cause, FlowDropCause::kScripted);
  EXPECT_EQ(r.drops[0].port, -1);
  EXPECT_EQ(r.drops[0].switch_id, 0u);
  EXPECT_EQ(r.drops[0].fault_epoch, -1);
  EXPECT_TRUE(r.drops[0].claimed);
  // The dupack-path retransmission repairs it and carries its id. The
  // scoreboard also fires its rescue retransmission of the tail segment —
  // data that was never dropped, so it correctly carries NO attribution
  // (the negative control: repairs of undropped bytes stay cause-less).
  ASSERT_EQ(r.rtx_count, 2u);
  EXPECT_EQ(r.rtx_total, 2);
  EXPECT_EQ(r.rtxs[0].seq, 3 * kMss);
  EXPECT_EQ(r.rtxs[0].len, kMss);
  EXPECT_EQ(r.rtxs[0].kind, FlowRtxKind::kDupack);
  EXPECT_EQ(r.rtxs[0].cause_id, r.drops[0].id);
  EXPECT_GT(r.rtxs[0].t_ns, r.drops[0].t_ns);
  EXPECT_EQ(r.rtxs[1].seq, 7 * kMss);
  EXPECT_EQ(r.rtxs[1].cause_id, -1);
  EXPECT_EQ(r.rto_count, 0);
  // The repair ran inside a closed SACK-recovery episode.
  ASSERT_GE(r.episode_count, 1u);
  EXPECT_EQ(r.episodes[0].kind, FlowEpisodeKind::kSackRecovery);
  EXPECT_GE(r.episodes[0].end_ns, r.episodes[0].start_ns);
  EXPECT_LE(r.episodes[0].start_ns, r.rtxs[0].t_ns);
  EXPECT_GE(r.episodes[0].end_ns, r.rtxs[0].t_ns);
}

TEST(LedgerAttributionPin, TailLossRtoInheritsScriptedCause) {
  // Dropping the LAST segment leaves no later data to generate dupacks:
  // recovery must come from the retransmission timer, and the go-back-N
  // resend inherits the pinned scripted drop as its cause.
  FlowLedger ledger{0, 64};
  const ScenarioOutcome out = run_loss_scenario(
      transport::LossRecovery::kNewReno, /*segments=*/4,
      [](std::int64_t segment, int attempt) { return segment == 3 && attempt == 1; },
      core::Duration::seconds(10), /*window_segments=*/9, &ledger);
  ASSERT_TRUE(out.completed);
  ASSERT_EQ(out.dropped_frames, 1);

  const FlowLedgerRecord r = single_record(ledger);
  EXPECT_TRUE(r.completed());
  ASSERT_EQ(r.drop_count, 1u);
  EXPECT_EQ(r.drops[0].seq, 3 * kMss);
  EXPECT_EQ(r.drops[0].cause, FlowDropCause::kScripted);
  EXPECT_TRUE(r.drops[0].claimed);
  EXPECT_EQ(r.rto_count, 1);
  // Delayed ACKs can hold snd_una a segment below the hole, so the
  // go-back-N stream may start with delivered-but-unacked data; those
  // resends stay unattributed. The resend of the dropped range itself must
  // claim the scripted drop, exactly once.
  ASSERT_GE(r.rtx_count, 1u);
  int claims = 0;
  for (std::size_t i = 0; i < r.rtx_count; ++i) {
    EXPECT_EQ(r.rtxs[i].kind, FlowRtxKind::kRto) << "rtx " << i;
    if (r.rtxs[i].cause_id == r.drops[0].id) {
      ++claims;
      EXPECT_EQ(r.rtxs[i].seq, 3 * kMss);
      EXPECT_EQ(r.rtxs[i].len, kMss);
    } else {
      EXPECT_EQ(r.rtxs[i].cause_id, -1) << "rtx " << i;
      EXPECT_LT(r.rtxs[i].seq, 3 * kMss) << "only pre-hole resends may be cause-less";
    }
  }
  EXPECT_EQ(claims, 1);
  // The timeout left its point episode with the backoff step.
  bool saw_rto_episode = false;
  for (std::size_t i = 0; i < r.episode_count; ++i) {
    if (r.episodes[i].kind == FlowEpisodeKind::kRto) {
      saw_rto_episode = true;
      EXPECT_EQ(r.episodes[i].start_ns, r.episodes[i].end_ns);
    }
  }
  EXPECT_TRUE(saw_rto_episode);
}

TEST(LedgerAttributionPin, LostRetransmissionClaimsBothDropsInOrder) {
  // Segment 2 lost twice: the fast retransmit claims the original drop;
  // its own loss is repaired by the timer's go-back-N resend, which claims
  // the second drop (the earliest still-unclaimed overlap). Ids pin which
  // transmission each retransmission pays for, even when the go-back-N
  // stream resends more than the hole.
  FlowLedger ledger{0, 64};
  const ScenarioOutcome out = run_loss_scenario(
      transport::LossRecovery::kSack, /*segments=*/8,
      [](std::int64_t segment, int attempt) { return segment == 2 && attempt <= 2; },
      core::Duration::seconds(10), /*window_segments=*/9, &ledger);
  ASSERT_TRUE(out.completed);
  ASSERT_EQ(out.dropped_frames, 2);

  const FlowLedgerRecord r = single_record(ledger);
  ASSERT_EQ(r.drop_count, 2u);
  EXPECT_EQ(r.drops[0].seq, 2 * kMss);
  EXPECT_EQ(r.drops[1].seq, 2 * kMss);
  EXPECT_LT(r.drops[0].id, r.drops[1].id);
  EXPECT_TRUE(r.drops[0].claimed);
  EXPECT_TRUE(r.drops[1].claimed);
  ASSERT_GE(r.rtx_count, 2u);
  // First repair: the dupack-path retransmission, charged to the original.
  EXPECT_EQ(r.rtxs[0].kind, FlowRtxKind::kDupack);
  EXPECT_EQ(r.rtxs[0].seq, 2 * kMss);
  EXPECT_EQ(r.rtxs[0].cause_id, r.drops[0].id);
  // Exactly one later retransmission is charged to the lost repair.
  int charged_to_second = 0;
  for (std::size_t i = 1; i < r.rtx_count; ++i) {
    if (r.rtxs[i].cause_id == r.drops[1].id) {
      ++charged_to_second;
      EXPECT_EQ(r.rtxs[i].seq, 2 * kMss);
      EXPECT_EQ(r.rtxs[i].kind, FlowRtxKind::kRto);
    }
  }
  EXPECT_EQ(charged_to_second, 1);
  EXPECT_EQ(r.rto_count, 1);
}

}  // namespace
}  // namespace fbdcsim::tests
