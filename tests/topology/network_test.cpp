#include "fbdcsim/topology/network.h"

#include <gtest/gtest.h>

#include "fbdcsim/topology/fabric.h"
#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::topology {
namespace {

Fleet small_fleet() {
  StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 1;
  cfg.frontend_clusters = 1;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 1;
  cfg.database_clusters = 0;
  cfg.service_clusters = 1;
  cfg.racks_per_cluster = 4;
  cfg.hosts_per_rack = 4;
  cfg.frontend_web_racks = 2;
  cfg.frontend_cache_racks = 1;
  cfg.frontend_multifeed_racks = 1;
  return build_standard_fleet(cfg);
}

TEST(FourPostBuilderTest, SwitchInventory) {
  const Fleet f = small_fleet();
  const Network net = FourPostBuilder{}.build(f);

  std::size_t rsw = 0, csw = 0, fc = 0, agg = 0, dr = 0;
  for (const Switch& s : net.switches()) {
    switch (s.kind) {
      case SwitchKind::kRsw: ++rsw; break;
      case SwitchKind::kCsw: ++csw; break;
      case SwitchKind::kFc: ++fc; break;
      case SwitchKind::kSiteAgg: ++agg; break;
      case SwitchKind::kDr: ++dr; break;
    }
  }
  EXPECT_EQ(rsw, f.num_racks());
  EXPECT_EQ(csw, f.clusters().size() * 4);
  EXPECT_EQ(fc, f.datacenters().size() * 4);
  EXPECT_EQ(agg, f.sites().size() * 2);
  EXPECT_EQ(dr, f.datacenters().size());
}

TEST(FourPostBuilderTest, EveryHostHasAccessLinks) {
  const Fleet f = small_fleet();
  const Network net = FourPostBuilder{}.build(f);
  for (const Host& h : f.hosts()) {
    const Link& up = net.link(net.access_uplink(h.id));
    const Link& down = net.link(net.access_downlink(h.id));
    EXPECT_EQ(up.from, NodeRef::host(h.id));
    EXPECT_EQ(up.to, NodeRef::sw(net.rsw_of(h.rack)));
    EXPECT_EQ(down.from, NodeRef::sw(net.rsw_of(h.rack)));
    EXPECT_EQ(down.to, NodeRef::host(h.id));
    EXPECT_EQ(up.capacity, core::DataRate::gigabits_per_sec(10));
  }
}

TEST(FourPostBuilderTest, RswConnectsToAllFourCsws) {
  const Fleet f = small_fleet();
  const Network net = FourPostBuilder{}.build(f);
  for (const Rack& rack : f.racks()) {
    const SwitchId rsw = net.rsw_of(rack.id);
    for (const SwitchId csw : net.csws_of(rack.cluster)) {
      EXPECT_NO_THROW((void)net.find_link(NodeRef::sw(rsw), NodeRef::sw(csw)));
      EXPECT_NO_THROW((void)net.find_link(NodeRef::sw(csw), NodeRef::sw(rsw)));
    }
  }
}

class RouterLocalityTest : public ::testing::TestWithParam<core::Locality> {};

TEST_P(RouterLocalityTest, PathsAreWellFormed) {
  const Fleet f = small_fleet();
  const Network net = FourPostBuilder{}.build(f);
  const Router router{f, net};

  // Find a host pair with the requested locality and route between them.
  const core::Locality want = GetParam();
  bool found = false;
  for (const Host& a : f.hosts()) {
    for (const Host& b : f.hosts()) {
      if (a.id == b.id || f.locality(a.id, b.id) != want) continue;
      const core::FiveTuple tuple{a.addr, b.addr, 40000, 80, core::Protocol::kTcp};
      const auto path = router.route(a.id, b.id, tuple);
      ASSERT_FALSE(path.empty());
      // First link leaves the source host; last link enters the dest host.
      EXPECT_EQ(net.link(path.front()).from, NodeRef::host(a.id));
      EXPECT_EQ(net.link(path.back()).to, NodeRef::host(b.id));
      // Adjacent links share the intermediate node.
      for (std::size_t i = 1; i < path.size(); ++i) {
        EXPECT_EQ(net.link(path[i - 1]).to, net.link(path[i]).from);
      }
      // Path length matches the locality's hop structure.
      switch (want) {
        case core::Locality::kIntraRack: EXPECT_EQ(path.size(), 2u); break;
        case core::Locality::kIntraCluster: EXPECT_EQ(path.size(), 4u); break;
        case core::Locality::kIntraDatacenter: EXPECT_EQ(path.size(), 6u); break;
        case core::Locality::kInterDatacenter: EXPECT_GE(path.size(), 6u); break;
      }
      found = true;
      break;
    }
    if (found) break;
  }
  EXPECT_TRUE(found) << "no host pair with locality " << to_string(want);
}

INSTANTIATE_TEST_SUITE_P(AllLocalities, RouterLocalityTest,
                         ::testing::Values(core::Locality::kIntraRack,
                                           core::Locality::kIntraCluster,
                                           core::Locality::kIntraDatacenter,
                                           core::Locality::kInterDatacenter));

TEST(RouterTest, SameHostIsEmptyPath) {
  const Fleet f = small_fleet();
  const Network net = FourPostBuilder{}.build(f);
  const Router router{f, net};
  const Host& h = f.hosts().front();
  EXPECT_TRUE(router.route(h.id, h.id, {}).empty());
}

TEST(RouterTest, EcmpIsDeterministicPerTuple) {
  const Fleet f = small_fleet();
  const Network net = FourPostBuilder{}.build(f);
  const Router router{f, net};
  const Host& a = f.hosts().front();
  // A cross-cluster pair.
  const Host* b = nullptr;
  for (const Host& h : f.hosts()) {
    if (f.locality(a.id, h.id) == core::Locality::kIntraDatacenter) {
      b = &h;
      break;
    }
  }
  ASSERT_NE(b, nullptr);
  const core::FiveTuple t1{a.addr, b->addr, 40000, 80, core::Protocol::kTcp};
  EXPECT_EQ(router.route(a.id, b->id, t1), router.route(a.id, b->id, t1));

  // Different tuples should (eventually) pick different CSWs.
  bool diverged = false;
  const auto base = router.route(a.id, b->id, t1);
  for (core::Port p = 40001; p < 40064; ++p) {
    const core::FiveTuple t2{a.addr, b->addr, p, 80, core::Protocol::kTcp};
    if (router.route(a.id, b->id, t2) != base) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(FabricBuilderTest, BuildsPodFabric) {
  const Fleet f = small_fleet();
  const Network net = FabricBuilder{}.build(f);
  // Fabric reuses the level structure: per-pod aggregation exists and the
  // Router still produces valid paths.
  const Router router{f, net};
  const Host& a = f.hosts().front();
  const Host& b = f.hosts().back();
  const core::FiveTuple tuple{a.addr, b.addr, 40000, 80, core::Protocol::kTcp};
  const auto path = router.route(a.id, b.id, tuple);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(net.link(path.front()).from, NodeRef::host(a.id));
  EXPECT_EQ(net.link(path.back()).to, NodeRef::host(b.id));
  // Fabric uplinks are 40 Gbps.
  EXPECT_EQ(net.link(path[1]).capacity, core::DataRate::gigabits_per_sec(40));
}

TEST(StandardFleetTest, TypeMixMatchesConfig) {
  const Fleet f = small_fleet();
  std::size_t frontend = 0;
  for (const Cluster& c : f.clusters()) {
    if (c.type == ClusterType::kFrontend) ++frontend;
  }
  EXPECT_EQ(frontend, 2u);  // one per DC, two DCs
}

TEST(StandardFleetTest, RejectsBadConfig) {
  StandardFleetConfig cfg;
  cfg.racks_per_cluster = 4;
  cfg.frontend_web_racks = 10;  // exceeds cluster size
  EXPECT_THROW(build_standard_fleet(cfg), std::invalid_argument);
  StandardFleetConfig zero;
  zero.sites = 0;
  EXPECT_THROW(build_standard_fleet(zero), std::invalid_argument);
}

TEST(StandardFleetTest, SingleClusterFleet) {
  const Fleet f = build_single_cluster_fleet(ClusterType::kHadoop, 8, 4);
  EXPECT_EQ(f.clusters().size(), 1u);
  EXPECT_EQ(f.num_racks(), 8u);
  EXPECT_EQ(f.num_hosts(), 32u);
  for (const Host& h : f.hosts()) EXPECT_EQ(h.role, core::HostRole::kHadoop);
}

}  // namespace
}  // namespace fbdcsim::topology
