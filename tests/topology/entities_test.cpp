#include "fbdcsim/topology/entities.h"

#include <gtest/gtest.h>

#include <set>

#include "fbdcsim/topology/addressing.h"

namespace fbdcsim::topology {
namespace {

Fleet two_dc_fleet() {
  FleetBuilder b;
  const SiteId site = b.add_site("s0");
  const DatacenterId dc0 = b.add_datacenter(site);
  const DatacenterId dc1 = b.add_datacenter(site);
  const ClusterId c0 = b.add_cluster(dc0, ClusterType::kFrontend);
  const ClusterId c1 = b.add_cluster(dc0, ClusterType::kHadoop);
  const ClusterId c2 = b.add_cluster(dc1, ClusterType::kCache);
  b.add_rack_of(c0, core::HostRole::kWeb, 4);
  b.add_rack_of(c0, core::HostRole::kCacheFollower, 4);
  b.add_rack_of(c1, core::HostRole::kHadoop, 4);
  b.add_rack_of(c2, core::HostRole::kCacheLeader, 4);
  return b.build();
}

TEST(FleetBuilderTest, CountsAndHierarchy) {
  const Fleet f = two_dc_fleet();
  EXPECT_EQ(f.sites().size(), 1u);
  EXPECT_EQ(f.datacenters().size(), 2u);
  EXPECT_EQ(f.clusters().size(), 3u);
  EXPECT_EQ(f.num_racks(), 4u);
  EXPECT_EQ(f.num_hosts(), 16u);

  const Host& h = f.host(core::HostId{0});
  EXPECT_EQ(h.role, core::HostRole::kWeb);
  EXPECT_EQ(f.rack(h.rack).cluster, h.cluster);
  EXPECT_EQ(f.cluster(h.cluster).datacenter, h.datacenter);
  EXPECT_EQ(f.datacenter(h.datacenter).site, h.site);
}

TEST(FleetBuilderTest, RacksAreRoleHomogeneous) {
  const Fleet f = two_dc_fleet();
  for (const Rack& rack : f.racks()) {
    for (const core::HostId h : rack.hosts) {
      EXPECT_EQ(f.host(h).role, rack.role);
    }
  }
}

TEST(FleetBuilderTest, AddressesAreUniqueAndResolvable) {
  const Fleet f = two_dc_fleet();
  std::set<std::uint32_t> addrs;
  for (const Host& h : f.hosts()) {
    EXPECT_TRUE(addrs.insert(h.addr.value()).second) << "duplicate " << h.addr.to_string();
    EXPECT_EQ(f.host_by_addr(h.addr), h.id);
  }
}

TEST(FleetBuilderTest, UnknownAddressResolvesInvalid) {
  const Fleet f = two_dc_fleet();
  EXPECT_FALSE(f.host_by_addr(core::Ipv4Addr{192, 168, 0, 1}).is_valid());
  EXPECT_FALSE(f.host_by_addr(core::Ipv4Addr{10, 200, 0, 0}).is_valid());
}

TEST(FleetTest, LocalityClassification) {
  const Fleet f = two_dc_fleet();
  // Hosts 0..3 are rack 0 (cluster 0, dc 0); 4..7 rack 1 (cluster 0);
  // 8..11 rack 2 (cluster 1, dc 0); 12..15 rack 3 (cluster 2, dc 1).
  using core::HostId;
  using core::Locality;
  EXPECT_EQ(f.locality(HostId{0}, HostId{1}), Locality::kIntraRack);
  EXPECT_EQ(f.locality(HostId{0}, HostId{4}), Locality::kIntraCluster);
  EXPECT_EQ(f.locality(HostId{0}, HostId{8}), Locality::kIntraDatacenter);
  EXPECT_EQ(f.locality(HostId{0}, HostId{12}), Locality::kInterDatacenter);
}

TEST(FleetTest, LocalityIsSymmetricInClass) {
  const Fleet f = two_dc_fleet();
  for (std::uint32_t a = 0; a < f.num_hosts(); a += 3) {
    for (std::uint32_t b = 0; b < f.num_hosts(); b += 5) {
      if (a == b) continue;
      EXPECT_EQ(f.locality(core::HostId{a}, core::HostId{b}),
                f.locality(core::HostId{b}, core::HostId{a}));
    }
  }
}

TEST(FleetTest, HostsWithRole) {
  const Fleet f = two_dc_fleet();
  EXPECT_EQ(f.hosts_with_role(core::HostRole::kWeb).size(), 4u);
  EXPECT_EQ(f.hosts_with_role(core::HostRole::kHadoop).size(), 4u);
  EXPECT_EQ(f.hosts_with_role(core::HostRole::kDatabase).size(), 0u);
  const auto web_in_c0 =
      f.hosts_with_role_in_cluster(core::HostRole::kWeb, core::ClusterId{0});
  EXPECT_EQ(web_in_c0.size(), 4u);
  EXPECT_TRUE(
      f.hosts_with_role_in_cluster(core::HostRole::kWeb, core::ClusterId{1}).empty());
}

TEST(AddressPlanTest, RoundTrip) {
  const core::Ipv4Addr a = AddressPlan::address_for(3, 100, 7);
  const auto coords = AddressPlan::coordinates_of(a);
  ASSERT_TRUE(coords.has_value());
  EXPECT_EQ(coords->dc_index, 3u);
  EXPECT_EQ(coords->rack_in_dc, 100u);
  EXPECT_EQ(coords->host_in_rack, 7u);
}

TEST(AddressPlanTest, RejectsOutOfRange) {
  EXPECT_THROW((void)AddressPlan::address_for(32, 0, 0), std::out_of_range);
  EXPECT_THROW((void)AddressPlan::address_for(0, 2048, 0), std::out_of_range);
  EXPECT_THROW((void)AddressPlan::address_for(0, 0, 256), std::out_of_range);
}

TEST(AddressPlanTest, NonTenSlashEightIsNotOurs) {
  EXPECT_FALSE(AddressPlan::coordinates_of(core::Ipv4Addr{192, 168, 1, 1}).has_value());
}

}  // namespace
}  // namespace fbdcsim::topology
