// Topology-derived RTT laws (topology/path_delay.h): the closed-form hop
// count must agree with the real Router on a built 4-post Network, the
// delay must be linear in the per-hop latency, and the defaults must
// reproduce the legacy locality-class constants where the tables say they
// coincide (intra-cluster and inter-site).
#include "fbdcsim/topology/path_delay.h"

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <utility>

#include "fbdcsim/topology/network.h"
#include "fbdcsim/topology/standard_fleet.h"
#include "fbdcsim/transport/params.h"

namespace fbdcsim::topology {
namespace {

/// Two sites x two datacenters each, so every locality class of the hop
/// table exists — including inter-DC-same-site, which the four-value
/// core::Locality enum cannot distinguish from inter-site.
Fleet five_class_fleet() {
  StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 2;
  cfg.frontend_clusters = 1;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 1;
  cfg.database_clusters = 0;
  cfg.service_clusters = 1;
  cfg.racks_per_cluster = 4;
  cfg.hosts_per_rack = 4;
  cfg.frontend_web_racks = 2;
  cfg.frontend_cache_racks = 1;
  cfg.frontend_multifeed_racks = 1;
  return build_standard_fleet(cfg);
}

using HostPair = std::pair<core::HostId, core::HostId>;

std::optional<HostPair> find_pair(const Fleet& f,
                                  const std::function<bool(const Host&, const Host&)>& want) {
  for (const Host& a : f.hosts()) {
    for (const Host& b : f.hosts()) {
      if (a.id != b.id && want(a, b)) return HostPair{a.id, b.id};
    }
  }
  return std::nullopt;
}

struct LocalityCase {
  const char* name;
  int expect_hops;
  std::function<bool(const Host&, const Host&)> want;
};

const LocalityCase kCases[] = {
    {"intra-rack", 0, [](const Host& a, const Host& b) { return a.rack == b.rack; }},
    {"intra-cluster", 2,
     [](const Host& a, const Host& b) { return a.rack != b.rack && a.cluster == b.cluster; }},
    {"intra-datacenter", 4,
     [](const Host& a, const Host& b) {
       return a.cluster != b.cluster && a.datacenter == b.datacenter;
     }},
    {"inter-dc-same-site", 4,
     [](const Host& a, const Host& b) {
       return a.datacenter != b.datacenter && a.site == b.site;
     }},
    {"inter-site", 5, [](const Host& a, const Host& b) { return a.site != b.site; }},
};

TEST(PathDelay, HopsMatchRouterRouteLinkCount) {
  // The closed form versus the real router: a route is
  //   host -> RSW, <hops beyond-RSW links>, RSW' -> host
  // so hops_beyond_rsw must equal route().size() - 2 — for every locality
  // class and regardless of which equal-cost path ECMP hashes onto.
  const Fleet f = five_class_fleet();
  const Network net = FourPostBuilder{}.build(f);
  const Router router{f, net};
  for (const LocalityCase& c : kCases) {
    const auto pair = find_pair(f, c.want);
    ASSERT_TRUE(pair.has_value()) << c.name << ": no such host pair in the fleet";
    const auto [src, dst] = *pair;
    EXPECT_EQ(hops_beyond_rsw(f, src, dst), c.expect_hops) << c.name;
    for (core::Port sport = 40'000; sport < 40'008; ++sport) {
      const core::FiveTuple tuple{f.host(src).addr, f.host(dst).addr, sport, 80,
                                  core::Protocol::kTcp};
      const auto path = router.route(src, dst, tuple);
      ASSERT_GE(path.size(), 2u) << c.name;
      EXPECT_EQ(hops_beyond_rsw(f, src, dst), static_cast<int>(path.size()) - 2)
          << c.name << " sport=" << sport;
    }
  }
}

TEST(PathDelay, DelayIsLinearInPerHopPlusInterSiteExtra) {
  const Fleet f = five_class_fleet();
  for (const LocalityCase& c : kCases) {
    const auto pair = find_pair(f, c.want);
    ASSERT_TRUE(pair.has_value()) << c.name;
    const auto [src, dst] = *pair;
    for (const std::int64_t per_hop_ns : {0LL, 1LL, 12'500LL, 1'000'000LL}) {
      const core::Duration extra = core::Duration::micros(300);
      const core::Duration got = one_way_beyond_rsw(
          f, src, dst, core::Duration::nanos(per_hop_ns), extra);
      std::int64_t want_ns = c.expect_hops * per_hop_ns;
      if (f.host(src).site != f.host(dst).site) want_ns += extra.count_nanos();
      EXPECT_EQ(got.count_nanos(), want_ns) << c.name << " per_hop=" << per_hop_ns;
    }
  }
}

TEST(PathDelay, DefaultsReproduceLegacyConstantsWhereTheTablesCoincide) {
  // The default per-hop / inter-site values are chosen so the topology mode
  // agrees with the legacy locality-class constants at the two anchor
  // points: the 2-hop intra-cluster path (2 x 12.5 us = 25 us) and the
  // 5-hop inter-site path (5 x 12.5 us + 17'437.5 us = 17'500 us). The
  // 4-hop intra-DC path deliberately diverges (50 us vs the legacy 75 us).
  const Fleet f = five_class_fleet();
  const transport::TcpParams p;
  auto one_way = [&](const LocalityCase& c) {
    const auto pair = find_pair(f, c.want);
    EXPECT_TRUE(pair.has_value()) << c.name;
    return one_way_beyond_rsw(f, pair->first, pair->second, p.per_hop_one_way,
                              p.inter_site_one_way);
  };
  EXPECT_EQ(one_way(kCases[0]).count_nanos(), 0);
  EXPECT_EQ(one_way(kCases[1]).count_nanos(), p.cluster_one_way.count_nanos());
  EXPECT_EQ(one_way(kCases[4]).count_nanos(), p.interdc_one_way.count_nanos());
  EXPECT_EQ(one_way(kCases[2]).count_nanos(), 50'000);
  EXPECT_EQ(one_way(kCases[3]).count_nanos(), 50'000);
}

TEST(PathDelay, DegenerateSingleRackFleetIsAlwaysZeroHops) {
  // A one-rack fleet has no beyond-RSW fabric at all: every pair (and the
  // self-pair) must be 0 hops with zero delay, whatever the constants.
  const Fleet f = build_single_cluster_fleet(ClusterType::kHadoop, 1, 4);
  for (const Host& a : f.hosts()) {
    for (const Host& b : f.hosts()) {
      EXPECT_EQ(hops_beyond_rsw(f, a.id, b.id), 0);
      EXPECT_EQ(one_way_beyond_rsw(f, a.id, b.id, core::Duration::millis(1),
                                   core::Duration::millis(100))
                    .count_nanos(),
                0);
    }
  }
}

TEST(PathDelay, SingleClusterFleetNeverLeavesTheClusterFabric) {
  const Fleet f = build_single_cluster_fleet(ClusterType::kFrontend, 8, 2);
  for (const Host& a : f.hosts()) {
    for (const Host& b : f.hosts()) {
      const int hops = hops_beyond_rsw(f, a.id, b.id);
      EXPECT_EQ(hops, a.rack == b.rack ? 0 : 2);
    }
  }
}

}  // namespace
}  // namespace fbdcsim::topology
