#include "fbdcsim/switching/switch.h"

#include <gtest/gtest.h>

#include <vector>

namespace fbdcsim::switching {
namespace {

using core::DataRate;
using core::DataSize;
using core::Duration;
using core::TimePoint;

SimPacket packet_of(std::int64_t frame_bytes, core::Port src_port = 40000) {
  SimPacket pkt;
  pkt.header.frame_bytes = frame_bytes;
  pkt.header.payload_bytes = frame_bytes - 54;
  pkt.header.tuple.src_port = src_port;
  return pkt;
}

TEST(SharedBufferSwitchTest, DeliversAfterSerialization) {
  sim::Simulator sim;
  std::vector<TimePoint> deliveries;
  SwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.port_rate = DataRate::gigabits_per_sec(10);
  SharedBufferSwitch sw{sim, cfg,
                        [&](std::size_t, const SimPacket&) { deliveries.push_back(sim.now()); }};

  // 1250 bytes at 10 Gbps = 1 us.
  EXPECT_TRUE(sw.enqueue(0, packet_of(1250)));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], TimePoint::from_nanos(1000));
}

TEST(SharedBufferSwitchTest, FifoWithinPort) {
  sim::Simulator sim;
  std::vector<core::Port> order;
  SwitchConfig cfg;
  cfg.num_ports = 1;
  SharedBufferSwitch sw{sim, cfg, [&](std::size_t, const SimPacket& p) {
                          order.push_back(p.header.tuple.src_port);
                        }};
  EXPECT_TRUE(sw.enqueue(0, packet_of(1500, 1)));
  EXPECT_TRUE(sw.enqueue(0, packet_of(1500, 2)));
  EXPECT_TRUE(sw.enqueue(0, packet_of(1500, 3)));
  sim.run();
  EXPECT_EQ(order, (std::vector<core::Port>{1, 2, 3}));
}

TEST(SharedBufferSwitchTest, PortsDrainIndependently) {
  sim::Simulator sim;
  int delivered = 0;
  SwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.port_rate = DataRate::gigabits_per_sec(10);
  SharedBufferSwitch sw{sim, cfg, [&](std::size_t, const SimPacket&) { ++delivered; }};
  EXPECT_TRUE(sw.enqueue(0, packet_of(1250)));
  EXPECT_TRUE(sw.enqueue(1, packet_of(1250)));
  sim.run_until(TimePoint::from_nanos(1000));
  EXPECT_EQ(delivered, 2);  // both finish at 1 us — no head-of-line blocking
}

TEST(SharedBufferSwitchTest, BufferOccupancyTracksQueues) {
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 1;
  SharedBufferSwitch sw{sim, cfg, [](std::size_t, const SimPacket&) {}};
  EXPECT_TRUE(sw.enqueue(0, packet_of(1000)));
  EXPECT_TRUE(sw.enqueue(0, packet_of(500)));
  EXPECT_EQ(sw.buffer_occupancy(), DataSize::bytes(1500));
  sim.run();
  EXPECT_EQ(sw.buffer_occupancy(), DataSize::bytes(0));
}

TEST(SharedBufferSwitchTest, DropsWhenBufferFull) {
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 1;
  cfg.buffer_total = DataSize::bytes(3000);
  cfg.dt_alpha = 1e9;  // effectively disable DT so only the hard cap binds
  cfg.port_rate = DataRate::bits_per_sec(1);  // drain never completes in test
  SharedBufferSwitch sw{sim, cfg, [](std::size_t, const SimPacket&) {}};
  EXPECT_TRUE(sw.enqueue(0, packet_of(1500)));
  EXPECT_TRUE(sw.enqueue(0, packet_of(1500)));
  EXPECT_FALSE(sw.enqueue(0, packet_of(1500)));
  EXPECT_EQ(sw.counters(0).dropped_packets, 1);
  EXPECT_EQ(sw.counters(0).dropped_bytes, 1500);
}

TEST(SharedBufferSwitchTest, DynamicThresholdProtectsSharedBuffer) {
  // With alpha=1, a single queue may use at most half the buffer (its
  // queue must stay below the free space).
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 2;
  cfg.buffer_total = DataSize::bytes(10'000);
  cfg.dt_alpha = 1.0;
  cfg.port_rate = DataRate::bits_per_sec(1);
  SharedBufferSwitch sw{sim, cfg, [](std::size_t, const SimPacket&) {}};
  std::int64_t accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (sw.enqueue(0, packet_of(1000))) ++accepted;
  }
  EXPECT_GE(accepted, 4);
  EXPECT_LE(accepted, 6);  // ~half of 10 kB in 1 kB packets
  // The other port can still accept traffic.
  EXPECT_TRUE(sw.enqueue(1, packet_of(1000)));
}

TEST(SharedBufferSwitchTest, CountersAccumulate) {
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 1;
  SharedBufferSwitch sw{sim, cfg, [](std::size_t, const SimPacket&) {}};
  EXPECT_TRUE(sw.enqueue(0, packet_of(1000)));
  EXPECT_TRUE(sw.enqueue(0, packet_of(500)));
  sim.run();
  EXPECT_EQ(sw.counters(0).tx_packets, 2);
  EXPECT_EQ(sw.counters(0).tx_bytes, 1500);
  EXPECT_EQ(sw.counters(0).enqueued_packets, 2);
}

TEST(SharedBufferSwitchTest, RejectsBadConfig) {
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 0;
  EXPECT_THROW(SharedBufferSwitch(sim, cfg, [](std::size_t, const SimPacket&) {}),
               std::invalid_argument);
}

TEST(BufferOccupancySamplerTest, SamplesPerSecondStats) {
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 1;
  cfg.buffer_total = DataSize::bytes(100'000);
  cfg.port_rate = DataRate::bits_per_sec(8);  // 1 byte/s: queue persists
  SharedBufferSwitch sw{sim, cfg, [](std::size_t, const SimPacket&) {}};
  BufferOccupancySampler sampler{sim, sw, Duration::millis(1)};

  // Fill 50% of the buffer and hold it for >1 second.
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(sw.enqueue(0, packet_of(1000)));
  sim.run_until(TimePoint::from_seconds(2.0));
  sampler.finish();

  ASSERT_GE(sampler.per_second().size(), 1u);
  const auto& first = sampler.per_second().front();
  EXPECT_NEAR(first.median_fraction, 0.5, 0.01);
  EXPECT_NEAR(first.max_fraction, 0.5, 0.01);
  EXPECT_GT(sampler.samples_taken(), 1000);
}

TEST(BufferOccupancySamplerTest, EmptySwitchIsZero) {
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 1;
  SharedBufferSwitch sw{sim, cfg, [](std::size_t, const SimPacket&) {}};
  BufferOccupancySampler sampler{sim, sw, Duration::millis(10)};
  sim.run_until(TimePoint::from_seconds(1.5));
  sampler.finish();
  ASSERT_GE(sampler.per_second().size(), 1u);
  EXPECT_LT(sampler.per_second().front().median_fraction, 0.001);
  EXPECT_EQ(sampler.per_second().front().max_fraction, 0.0);
}

}  // namespace
}  // namespace fbdcsim::switching
