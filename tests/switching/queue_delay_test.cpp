#include <gtest/gtest.h>

#include "fbdcsim/switching/switch.h"

namespace fbdcsim::switching {
namespace {

using core::DataRate;
using core::DataSize;
using core::TimePoint;

SimPacket sized(std::int64_t frame_bytes) {
  SimPacket pkt;
  pkt.header.frame_bytes = frame_bytes;
  return pkt;
}

TEST(QueueDelayTest, UncontendedPacketHasZeroDelay) {
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 1;
  SharedBufferSwitch sw{sim, cfg, [](std::size_t, const SimPacket&) {}};
  EXPECT_TRUE(sw.enqueue(0, sized(1250)));
  sim.run();
  EXPECT_EQ(sw.counters(0).queuing_delay_ns, 0);
  EXPECT_EQ(sw.counters(0).max_queuing_delay_ns, 0);
}

TEST(QueueDelayTest, QueuedPacketWaitsForHead) {
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 1;
  cfg.port_rate = DataRate::gigabits_per_sec(10);
  SharedBufferSwitch sw{sim, cfg, [](std::size_t, const SimPacket&) {}};
  // Two back-to-back 1250-B packets: the second waits exactly one
  // serialization time (1 us at 10G).
  EXPECT_TRUE(sw.enqueue(0, sized(1250)));
  EXPECT_TRUE(sw.enqueue(0, sized(1250)));
  sim.run();
  EXPECT_EQ(sw.counters(0).queuing_delay_ns, 1000);
  EXPECT_EQ(sw.counters(0).max_queuing_delay_ns, 1000);
}

TEST(QueueDelayTest, DelaysAccumulateAcrossBurst) {
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 1;
  cfg.port_rate = DataRate::gigabits_per_sec(10);
  SharedBufferSwitch sw{sim, cfg, [](std::size_t, const SimPacket&) {}};
  // N packets arriving at once: delays are 0, 1, 2, ... us.
  const int n = 5;
  for (int i = 0; i < n; ++i) EXPECT_TRUE(sw.enqueue(0, sized(1250)));
  sim.run();
  EXPECT_EQ(sw.counters(0).queuing_delay_ns, (0 + 1 + 2 + 3 + 4) * 1000);
  EXPECT_EQ(sw.counters(0).max_queuing_delay_ns, 4000);
  EXPECT_EQ(sw.counters(0).tx_packets, n);
}

TEST(QueueDelayTest, LaterArrivalWaitsResidual) {
  sim::Simulator sim;
  SwitchConfig cfg;
  cfg.num_ports = 1;
  cfg.port_rate = DataRate::gigabits_per_sec(10);
  SharedBufferSwitch sw{sim, cfg, [](std::size_t, const SimPacket&) {}};
  EXPECT_TRUE(sw.enqueue(0, sized(1250)));  // tx 0..1000 ns
  sim.schedule_at(TimePoint::from_nanos(600), [&] {
    EXPECT_TRUE(sw.enqueue(0, sized(1250)));  // waits 400 ns
  });
  sim.run();
  EXPECT_EQ(sw.counters(0).queuing_delay_ns, 400);
}

}  // namespace
}  // namespace fbdcsim::switching
