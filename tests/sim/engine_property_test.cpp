// Property tests for the event-engine ordering laws (DESIGN.md §6/§9).
//
// Each seeded case generates a random schedule — batches of events across
// bucket and wheel-window boundaries, children scheduled from inside
// running actions, horizon-bounded runs, occasional mid-action clear() —
// executes it on both engines, and asserts:
//
//   1. the bucketed log is identical to the reference-engine log
//      (same events, same order, same timestamps);
//   2. execution times are globally nondecreasing;
//   3. equal-time events fire in schedule order (ids strictly increase
//      within every equal-time run);
//   4. run_until(h) executes exactly the events with time <= h, pins the
//      clock to h, and leaves strictly-later events pending.
//
// The five instantiations below total 200 seeded cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "fbdcsim/sim/simulator.h"

namespace fbdcsim::sim {
namespace {

struct LogEntry {
  std::int64_t at_ns;
  std::uint64_t id;
  bool operator==(const LogEntry&) const = default;
};

enum class Style {
  kMixed,     // deltas from sub-bucket to beyond the wheel window
  kFifo,      // few distinct times, many equal-time events
  kHorizon,   // interleaves many bounded runs with scheduling
  kClear,     // some actions call Simulator::clear()
  kBoundary,  // times pinned to bucket-boundary multiples +/- 1 ns
  kOverflow,  // mostly far-future events (overflow heap + migration)
};

constexpr std::int64_t kBucketNs = 4096;          // engine bucket width
constexpr std::int64_t kWindowNs = 1024 * kBucketNs;  // wheel span

struct Driver {
  Simulator sim;
  std::mt19937_64 rng;
  Style style;
  std::vector<LogEntry> log;
  std::uint64_t next_id{0};
  std::uint64_t event_budget{600};

  Driver(Simulator::Engine engine, std::uint64_t seed, Style s)
      : sim{engine}, rng{seed}, style{s} {}

  std::int64_t draw_delta() {
    switch (style) {
      case Style::kFifo:
        // 4 distinct times reused heavily -> long equal-time runs.
        return (rng() % 4) * 50'000;
      case Style::kBoundary: {
        const std::int64_t base = static_cast<std::int64_t>(1 + rng() % 2000) * kBucketNs;
        const std::int64_t jitter = static_cast<std::int64_t>(rng() % 3) - 1;
        return base + jitter;  // lands at a bucket edge, or 1 ns either side
      }
      case Style::kOverflow:
        if (rng() % 4 != 0) {
          // Beyond the wheel window: 1x..32x the span.
          return kWindowNs + static_cast<std::int64_t>(rng() % (31 * kWindowNs));
        }
        return static_cast<std::int64_t>(rng() % kWindowNs);
      case Style::kMixed:
      case Style::kHorizon:
      case Style::kClear:
      default:
        switch (rng() % 4) {
          case 0: return static_cast<std::int64_t>(rng() % 8);          // same/near time
          case 1: return static_cast<std::int64_t>(rng() % kBucketNs);  // within bucket
          case 2: return static_cast<std::int64_t>(rng() % kWindowNs);  // within wheel
          default: return static_cast<std::int64_t>(rng() % (8 * kWindowNs));  // overflow
        }
    }
  }

  void schedule_one() {
    if (next_id >= event_budget) return;
    const std::uint64_t id = next_id++;
    const bool allow_clear = style == Style::kClear && rng() % 37 == 0;
    const int children = static_cast<int>(rng() % 3);
    sim.schedule_after(Duration::nanos(draw_delta()), [this, id, children, allow_clear] {
      log.push_back(LogEntry{sim.now().count_nanos(), id});
      if (allow_clear) sim.clear();
      for (int c = 0; c < children; ++c) schedule_one();
    });
  }

  void run_scenario() {
    const int batches = 4;
    for (int b = 0; b < batches; ++b) {
      const std::uint64_t batch = 20 + rng() % 40;
      for (std::uint64_t i = 0; i < batch; ++i) schedule_one();
      if (style == Style::kHorizon || rng() % 2 == 0) {
        sim.run_until(sim.now() + Duration::nanos(draw_delta()));
      }
    }
    sim.run();
  }
};

class EnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static Style style_for_suite(const std::string& suite) {
    if (suite.find("EqualTimeFifo") != std::string::npos) return Style::kFifo;
    if (suite.find("Horizon") != std::string::npos) return Style::kHorizon;
    if (suite.find("Clear") != std::string::npos) return Style::kClear;
    if (suite.find("Boundary") != std::string::npos) return Style::kBoundary;
    if (suite.find("Overflow") != std::string::npos) return Style::kOverflow;
    return Style::kMixed;
  }

  void check_laws(const std::vector<LogEntry>& log) {
    for (std::size_t i = 1; i < log.size(); ++i) {
      ASSERT_GE(log[i].at_ns, log[i - 1].at_ns) << "time went backwards at index " << i;
      if (log[i].at_ns == log[i - 1].at_ns) {
        ASSERT_GT(log[i].id, log[i - 1].id)
            << "equal-time events out of schedule order at index " << i;
      }
    }
  }

  void run_and_compare() {
    const std::uint64_t seed = GetParam();
    const Style style = style_for_suite(
        ::testing::UnitTest::GetInstance()->current_test_info()->test_suite_name());

    Driver bucketed{Simulator::Engine::kBucketed, seed, style};
    bucketed.run_scenario();
    Driver reference{Simulator::Engine::kReference, seed, style};
    reference.run_scenario();

    ASSERT_FALSE(bucketed.log.empty());
    ASSERT_EQ(bucketed.log.size(), reference.log.size());
    EXPECT_EQ(bucketed.log, reference.log);
    check_laws(bucketed.log);
    EXPECT_EQ(bucketed.sim.executed_events(), reference.sim.executed_events());
    EXPECT_EQ(bucketed.sim.pending_events(), 0u);
    EXPECT_EQ(bucketed.sim.now(), reference.sim.now());
  }
};

using MixedSchedules = EnginePropertyTest;
TEST_P(MixedSchedules, MatchesReferenceAndOrderLaws) { run_and_compare(); }
INSTANTIATE_TEST_SUITE_P(Seeds, MixedSchedules, ::testing::Range<std::uint64_t>(0, 64));

using EqualTimeFifo = EnginePropertyTest;
TEST_P(EqualTimeFifo, MatchesReferenceAndOrderLaws) { run_and_compare(); }
INSTANTIATE_TEST_SUITE_P(Seeds, EqualTimeFifo, ::testing::Range<std::uint64_t>(100, 132));

using HorizonRuns = EnginePropertyTest;
TEST_P(HorizonRuns, MatchesReferenceAndOrderLaws) { run_and_compare(); }
INSTANTIATE_TEST_SUITE_P(Seeds, HorizonRuns, ::testing::Range<std::uint64_t>(200, 232));

using ClearDuringRun = EnginePropertyTest;
TEST_P(ClearDuringRun, MatchesReferenceAndOrderLaws) { run_and_compare(); }
INSTANTIATE_TEST_SUITE_P(Seeds, ClearDuringRun, ::testing::Range<std::uint64_t>(300, 324));

using BucketBoundary = EnginePropertyTest;
TEST_P(BucketBoundary, MatchesReferenceAndOrderLaws) { run_and_compare(); }
INSTANTIATE_TEST_SUITE_P(Seeds, BucketBoundary, ::testing::Range<std::uint64_t>(400, 424));

using OverflowHeap = EnginePropertyTest;
TEST_P(OverflowHeap, MatchesReferenceAndOrderLaws) { run_and_compare(); }
INSTANTIATE_TEST_SUITE_P(Seeds, OverflowHeap, ::testing::Range<std::uint64_t>(500, 524));

// The horizon law needs direct inspection too (the differential comparison
// alone can't see *which* events stayed pending).
class HorizonLawTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HorizonLawTest, StrictlyLaterEventsStayQueuedAndClockPins) {
  std::mt19937_64 rng{GetParam()};
  Simulator sim;
  std::vector<std::int64_t> times;
  for (int i = 0; i < 200; ++i) {
    const auto t = static_cast<std::int64_t>(rng() % (4 * kWindowNs));
    times.push_back(t);
    sim.schedule_at(TimePoint::from_nanos(t), [] {});
  }
  const auto horizon = static_cast<std::int64_t>(rng() % (4 * kWindowNs));
  sim.run_until(TimePoint::from_nanos(horizon));

  std::size_t expect_executed = 0;
  for (const std::int64_t t : times) {
    if (t <= horizon) ++expect_executed;
  }
  EXPECT_EQ(sim.executed_events(), expect_executed);
  EXPECT_EQ(sim.pending_events(), times.size() - expect_executed);
  EXPECT_EQ(sim.now(), TimePoint::from_nanos(horizon));

  sim.run();
  EXPECT_EQ(sim.executed_events(), times.size());
  EXPECT_EQ(sim.pending_events(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HorizonLawTest, ::testing::Range<std::uint64_t>(600, 632));

}  // namespace
}  // namespace fbdcsim::sim
