// Differential engine harness, part 2: thread counts.
//
// One Simulator is strictly single-threaded, but the runtime layer runs
// many captures concurrently (ParallelCaptureRunner), and DESIGN.md §7
// promises Kind::kSim telemetry is bit-identical across thread counts.
// This suite runs the same 4-capture batch on pools of 1, 2, and 8 workers
// (the FBDCSIM_THREADS settings the issue names) for BOTH engines and
// asserts every per-capture fingerprint and the merged sim-metric JSON are
// identical across all six (engine × width) combinations.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "../support/rack_fingerprint.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/runtime/parallel_capture.h"
#include "fbdcsim/runtime/thread_pool.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/topology/standard_fleet.h"
#include "fbdcsim/workload/presets.h"
#include "fbdcsim/workload/rack_sim.h"

namespace fbdcsim::workload {
namespace {

using core::HostRole;
using tests::fingerprint;
using tests::sim_metrics_json;

struct BatchOutcome {
  std::vector<std::uint64_t> fingerprints;
  std::string sim_metrics;
};

BatchOutcome run_batch(const topology::Fleet& fleet, sim::Simulator::Engine engine,
                       int workers, const faults::FaultPlan* plan) {
  const std::vector<HostRole> roles{HostRole::kWeb, HostRole::kCacheFollower,
                                    HostRole::kCacheLeader, HostRole::kHadoop};
  std::vector<std::function<std::uint64_t()>> tasks;
  tasks.reserve(roles.size());
  for (const HostRole role : roles) {
    tasks.push_back([&fleet, engine, plan, role] {
      RackSimConfig cfg = default_rack_config(fleet, role, core::Duration::millis(200));
      cfg.warmup = core::Duration::millis(100);
      cfg.engine = engine;
      cfg.faults = plan;
      RackSimulation rack{fleet, cfg};
      return fingerprint(rack.run());
    });
  }

  telemetry::MetricsRegistry::global().reset();
  BatchOutcome out;
  {
    // Scope the pool so workers are joined before the snapshot: a worker
    // bumps runtime.pool.tasks_completed after delivering its result, so
    // snapshotting while the pool lives would race that last increment.
    runtime::ThreadPool pool{workers};
    runtime::ParallelCaptureRunner runner{pool};
    out.fingerprints = runner.run(tasks);
  }
  out.sim_metrics = sim_metrics_json();
  return out;
}

class EngineDifferentialThreads : public ::testing::TestWithParam<bool> {};

TEST_P(EngineDifferentialThreads, IdenticalAcrossEnginesAndPoolWidths) {
  const bool heavy = GetParam();
  const topology::Fleet fleet = build_rack_experiment_fleet();
  faults::FaultPlan plan{faults::heavy_profile()};
  const faults::FaultPlan* faults = heavy ? &plan : nullptr;

  const BatchOutcome baseline =
      run_batch(fleet, sim::Simulator::Engine::kReference, 1, faults);
  ASSERT_EQ(baseline.fingerprints.size(), 4u);

  for (const auto engine :
       {sim::Simulator::Engine::kReference, sim::Simulator::Engine::kBucketed}) {
    for (const int workers : {1, 2, 8}) {
      if (engine == sim::Simulator::Engine::kReference && workers == 1) continue;
      const BatchOutcome got = run_batch(fleet, engine, workers, faults);
      EXPECT_EQ(got.fingerprints, baseline.fingerprints)
          << "engine=" << static_cast<int>(engine) << " workers=" << workers;
      EXPECT_EQ(got.sim_metrics, baseline.sim_metrics)
          << "engine=" << static_cast<int>(engine) << " workers=" << workers;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Faults, EngineDifferentialThreads, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& p) {
                           return p.param ? std::string{"Heavy"} : std::string{"Off"};
                         });

}  // namespace
}  // namespace fbdcsim::workload
