#include "fbdcsim/sim/inline_action.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "fbdcsim/core/time.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/topology/standard_fleet.h"
#include "fbdcsim/workload/presets.h"
#include "fbdcsim/workload/rack_sim.h"

namespace fbdcsim::sim {
namespace {

/// A callable padded to exactly `Bytes` of capture state.
template <std::size_t Bytes>
struct Padded {
  std::array<std::byte, Bytes> pad{};
  int* hits;
  explicit Padded(int* h) : hits{h} {}
  void operator()() { ++*hits; }
};

TEST(InlineActionTest, SmallCaptureIsInlineAndInvokes) {
  int hits = 0;
  InlineAction a{[&hits] { ++hits; }};
  EXPECT_TRUE(a.is_inline());
  a();
  a();
  EXPECT_EQ(hits, 2);
}

TEST(InlineActionTest, CaptureSizesStraddlingThreshold) {
  int hits = 0;
  // sizeof(Padded<B>) = B + sizeof(int*); the inline boundary is
  // kInlineBytes total object size, not capture payload.
  InlineAction at_limit{Padded<InlineAction::kInlineBytes - sizeof(int*)>{&hits}};
  EXPECT_TRUE(at_limit.is_inline());
  InlineAction over_limit{Padded<InlineAction::kInlineBytes>{&hits}};
  EXPECT_FALSE(over_limit.is_inline());
  at_limit();
  over_limit();
  EXPECT_EQ(hits, 2);
}

TEST(InlineActionTest, InlineThresholdCoversIssueFloor) {
  // The issue requires >= 48 bytes of inline capture; the hot-path lambdas
  // (Wire emit, Hadoop stream chunks) capture exactly that much.
  static_assert(InlineAction::kInlineBytes >= 48);
  struct HotPathShape {  // [this, tuple, peer, payload, flags]-sized capture
    void* a;
    std::uint64_t b[4];
    std::uint32_t c;
    void operator()() {}
  };
  static_assert(InlineAction::fits_inline<HotPathShape>);
}

TEST(InlineActionTest, MoveOnlyCapture) {
  auto owned = std::make_unique<int>(99);
  int seen = 0;
  InlineAction a{[p = std::move(owned), &seen] { seen = *p; }};
  EXPECT_TRUE(a.is_inline());
  a();
  EXPECT_EQ(seen, 99);
}

TEST(InlineActionTest, MoveOnlyHeapFallback) {
  auto owned = std::make_unique<int>(7);
  std::array<std::byte, InlineAction::kInlineBytes> pad{};
  int seen = 0;
  InlineAction a{[p = std::move(owned), pad, &seen] { seen = *p + static_cast<int>(pad[0]); }};
  EXPECT_FALSE(a.is_inline());
  a();
  EXPECT_EQ(seen, 7);
}

struct DestructionProbe {
  int* destroyed;
  explicit DestructionProbe(int* d) : destroyed{d} {}
  DestructionProbe(DestructionProbe&& o) noexcept : destroyed{o.destroyed} { o.destroyed = nullptr; }
  DestructionProbe(const DestructionProbe& o) = default;
  ~DestructionProbe() {
    if (destroyed != nullptr) ++*destroyed;
  }
  void operator()() {}
};

TEST(InlineActionTest, DestroysInlineCaptureExactlyOnce) {
  int destroyed = 0;
  {
    InlineAction a{DestructionProbe{&destroyed}};
    EXPECT_TRUE(a.is_inline());
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineActionTest, DestroysHeapCaptureExactlyOnce) {
  struct BigProbe : DestructionProbe {
    std::array<std::byte, InlineAction::kInlineBytes> pad{};
    using DestructionProbe::DestructionProbe;
    void operator()() {}
  };
  int destroyed = 0;
  {
    InlineAction a{BigProbe{&destroyed}};
    EXPECT_FALSE(a.is_inline());
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineActionTest, MoveConstructRelocatesWithoutDoubleDestroy) {
  int destroyed = 0;
  int hits = 0;
  {
    InlineAction a{[probe = DestructionProbe{&destroyed}, &hits] { ++hits; }};
    InlineAction b{std::move(a)};
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): empty by contract
    EXPECT_TRUE(static_cast<bool>(b));
    b();
  }
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineActionTest, MoveAssignDestroysPreviousTarget) {
  int first_destroyed = 0;
  int second_destroyed = 0;
  InlineAction a{DestructionProbe{&first_destroyed}};
  a = InlineAction{DestructionProbe{&second_destroyed}};
  EXPECT_EQ(first_destroyed, 1);
  EXPECT_EQ(second_destroyed, 0);
  a = InlineAction{};
  EXPECT_EQ(second_destroyed, 1);
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(InlineActionTest, EmptyActionIsFalsy) {
  InlineAction a;
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_FALSE(a.is_inline());
}

#if FBDCSIM_TELEMETRY_ENABLED
TEST(InlineActionTest, RackHotPathSchedulesAreAllInline) {
  // A scorecard-style 1-second rack capture: every schedule made by
  // rack_sim, the switch, the service models, and PeriodicTimer must take
  // the inline path. gtest_discover_tests runs each TEST in its own
  // process, so resetting the global registry is safe here.
  telemetry::MetricsRegistry::global().reset();
  const topology::Fleet fleet = workload::build_rack_experiment_fleet();
  workload::RackSimConfig cfg = workload::default_rack_config(
      fleet, core::HostRole::kCacheFollower, core::Duration::seconds(1));
  cfg.warmup = core::Duration::millis(100);
  workload::RackSimulation rack{fleet, cfg};
  const workload::RackSimResult result = rack.run();
  ASSERT_GT(result.events, 0u);

  const telemetry::Snapshot snap = telemetry::MetricsRegistry::global().snapshot();
  const auto* heap = snap.counter("sim.events_heap");
  const auto* inline_events = snap.counter("sim.events_inline");
  ASSERT_NE(heap, nullptr);
  ASSERT_NE(inline_events, nullptr);
  EXPECT_EQ(heap->value, 0);
  EXPECT_GT(inline_events->value, static_cast<std::int64_t>(result.events) / 2);
}
#endif

}  // namespace
}  // namespace fbdcsim::sim
