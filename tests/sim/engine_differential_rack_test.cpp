// Differential engine harness, part 1: workload presets × fault profiles.
//
// Every monitored-role preset runs twice — once on the reference heap
// engine (the pre-rewrite binary-heap/std::function implementation, kept
// verbatim as Engine::kReference) and once on the bucketed engine — and
// the results must be bit-identical: the packet trace, every switch
// counter, executed_events(), and the Kind::kSim section of the telemetry
// snapshot (the same JSON section the golden scorecard gate compares).
// Fault profiles off and heavy both run, so the fault-injection paths
// (shrunken buffers, failed uplinks, mirror drops) are covered too.
//
// gtest_discover_tests runs each case in its own process, so resetting the
// global metrics registry between the two engine runs is safe.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "../support/rack_fingerprint.h"
#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/topology/standard_fleet.h"
#include "fbdcsim/workload/presets.h"
#include "fbdcsim/workload/rack_sim.h"

namespace fbdcsim::workload {
namespace {

using core::HostRole;
using tests::fingerprint;
using tests::sim_metrics_json;

struct Outcome {
  std::uint64_t fingerprint;
  std::uint64_t events;
  std::size_t trace_len;
  std::string sim_metrics;
};

Outcome run_once(sim::Simulator::Engine engine, HostRole role, bool heavy_faults) {
  const topology::Fleet fleet = build_rack_experiment_fleet();
  RackSimConfig cfg = default_rack_config(fleet, role, core::Duration::millis(300));
  cfg.warmup = core::Duration::millis(100);
  cfg.engine = engine;
  cfg.sample_buffer = true;
  faults::FaultConfig fault_cfg = faults::heavy_profile();
  faults::FaultPlan plan{fault_cfg};
  if (heavy_faults) cfg.faults = &plan;

  telemetry::MetricsRegistry::global().reset();
  RackSimulation rack{fleet, cfg};
  const RackSimResult result = rack.run();
  return Outcome{fingerprint(result), result.events, result.trace.size(),
                 sim_metrics_json()};
}

using RackParam = std::tuple<HostRole, bool>;

std::string rack_param_name(const ::testing::TestParamInfo<RackParam>& info) {
  std::string name{core::to_string(std::get<0>(info.param))};  // "Cache-f" -> "Cachef"
  std::erase_if(name, [](char c) { return c == '-'; });
  return name + (std::get<1>(info.param) ? "FaultsHeavy" : "FaultsOff");
}

class EngineDifferentialRack : public ::testing::TestWithParam<RackParam> {};

TEST_P(EngineDifferentialRack, BucketedEngineIsBitIdenticalToReference) {
  const auto [role, heavy] = GetParam();
  const Outcome reference = run_once(sim::Simulator::Engine::kReference, role, heavy);
  const Outcome bucketed = run_once(sim::Simulator::Engine::kBucketed, role, heavy);

  ASSERT_GT(reference.trace_len, 0u);
  EXPECT_EQ(bucketed.trace_len, reference.trace_len);
  EXPECT_EQ(bucketed.events, reference.events);
  EXPECT_EQ(bucketed.fingerprint, reference.fingerprint);
  EXPECT_EQ(bucketed.sim_metrics, reference.sim_metrics);
}

INSTANTIATE_TEST_SUITE_P(
    Presets, EngineDifferentialRack,
    ::testing::Combine(::testing::Values(HostRole::kWeb, HostRole::kCacheFollower,
                                         HostRole::kCacheLeader, HostRole::kHadoop),
                       ::testing::Values(false, true)),
    rack_param_name);

}  // namespace
}  // namespace fbdcsim::workload
